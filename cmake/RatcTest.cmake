# ratc_add_test(<name> SOURCES <src>... [LABELS <label>...] [LIBS <lib>...]
#                [TIMEOUT <seconds>])
#
# Builds one GTest binary and registers it with CTest.  Labels become CTest
# labels so subsets can be run with `ctest -L unit`, `ctest -L integration`,
# or `ctest -L random`.  Every test additionally carries the `ratc` label.
#
# TIMEOUT values are multiplied by RATC_TEST_TIMEOUT_SCALE: the nightly
# deep-sweep CI job raises the scale together with RATC_SWEEP_SEEDS so
# hundreds-of-seeds sweeps keep a proportionate budget, while a hung seed
# still fails the job with its repro line instead of stalling the runner.
set(RATC_TEST_TIMEOUT_SCALE "1" CACHE STRING
    "Multiplier applied to ratc_add_test TIMEOUT properties")

function(ratc_add_test name)
  cmake_parse_arguments(RT "" "TIMEOUT" "SOURCES;LABELS;LIBS" ${ARGN})
  if(NOT RT_SOURCES)
    message(FATAL_ERROR "ratc_add_test(${name}): SOURCES is required")
  endif()
  add_executable(${name} ${RT_SOURCES})
  target_link_libraries(${name} PRIVATE ratc GTest::gtest GTest::gtest_main
                        ${RT_LIBS})
  add_test(NAME ${name} COMMAND ${name})
  set(labels ratc ${RT_LABELS})
  set_tests_properties(${name} PROPERTIES LABELS "${labels}")
  if(RT_TIMEOUT)
    math(EXPR rt_timeout "${RT_TIMEOUT} * ${RATC_TEST_TIMEOUT_SCALE}")
    set_tests_properties(${name} PROPERTIES TIMEOUT ${rt_timeout})
  endif()
endfunction()
