// Quickstart: build a two-shard system with f+1 = 2 replicas per shard,
// certify a cross-shard transaction and a conflicting one, and watch the
// decisions come back.
//
//   $ ./examples/quickstart
#include <cstdio>

#include "commit/cluster.h"

using namespace ratc;

int main() {
  // A cluster bundles the simulator, the network, the configuration
  // service, the replicas (+spares) and the invariant monitor.
  commit::Cluster cluster({
      .seed = 1,
      .num_shards = 2,
      .shard_size = 2,  // f+1 replicas: tolerates f=1 failure via reconfiguration
  });
  commit::Client& client = cluster.add_client();

  // Transaction 1: reads objects 0 (shard 0) and 1 (shard 1) at version 0,
  // writes both.  Submitted through a co-located coordinator replica.
  tcs::Payload transfer;
  transfer.reads = {{0, 0}, {1, 0}};
  transfer.writes = {{0, 100}, {1, 200}};
  transfer.commit_version = 1;

  TxnId t1 = cluster.next_txn_id();
  client.certify_colocated(cluster.replica(0, 1), t1, transfer);
  cluster.sim().run();
  std::printf("txn%llu (cross-shard write)      -> %s in %llu message delays\n",
              (unsigned long long)t1, tcs::to_string(*client.decision(t1)),
              (unsigned long long)*client.latency(t1));

  // Transaction 2 conflicts: it read version 0 of object 0, which t1
  // overwrote, so certification aborts it.
  tcs::Payload stale;
  stale.reads = {{0, 0}};
  stale.writes = {{0, 999}};
  stale.commit_version = 1;

  TxnId t2 = cluster.next_txn_id();
  client.certify_colocated(cluster.replica(0, 1), t2, stale);
  cluster.sim().run();
  std::printf("txn%llu (stale read of object 0) -> %s\n", (unsigned long long)t2,
              tcs::to_string(*client.decision(t2)));

  // Transaction 3 read the freshly installed version: commits.
  tcs::Payload fresh;
  fresh.reads = {{0, 1}};
  fresh.writes = {{0, 555}};
  fresh.commit_version = 2;

  TxnId t3 = cluster.next_txn_id();
  client.certify_colocated(cluster.replica(0, 1), t3, fresh);
  cluster.sim().run();
  std::printf("txn%llu (fresh read of object 0) -> %s\n", (unsigned long long)t3,
              tcs::to_string(*client.decision(t3)));

  // The monitor checked the paper's invariants throughout; the TCS-LL
  // checker validates the whole history.
  std::string problems = cluster.verify();
  std::printf("verification: %s\n", problems.empty() ? "all invariants hold" : problems.c_str());
  return problems.empty() ? 0 : 1;
}
