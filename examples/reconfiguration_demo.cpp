// Self-healing demo (paper Fig. 2b): a heartbeat failure detector watches
// the replicas; when a shard leader dies mid-workload, a surviving replica
// reconfigures the shard through the configuration service — probing the
// old membership, CAS-ing the new epoch, transferring state to a fresh
// spare — and certification resumes.
//
//   $ ./examples/reconfiguration_demo
#include <cstdio>

#include "commit/cluster.h"
#include "fd/failure_detector.h"
#include "store/frontends.h"
#include "store/runner.h"
#include "store/workload.h"

using namespace ratc;

namespace {

/// Watches all replicas; on suspicion, asks a surviving member of the
/// affected shard to reconfigure it (Fig. 1 line 33: "any process can
/// initiate a reconfiguration of the shard").
class Watchdog : public sim::Process {
 public:
  Watchdog(commit::Cluster& cluster, ProcessId id)
      : Process(cluster.sim(), id, "watchdog"),
        cluster_(cluster),
        monitor_(cluster.sim(), cluster.net(), id,
                 fd::PingMonitor::Options{.ping_every = 10, .suspect_after = 40}) {
    monitor_.on_suspect = [this](ProcessId pid) { react(pid); };
    for (ShardId s = 0; s < cluster_.num_shards(); ++s) {
      for (ProcessId m : cluster_.initial_members(s)) monitor_.watch(m);
    }
    monitor_.start();
  }

  void on_message(ProcessId from, const sim::AnyMessage& msg) override {
    monitor_.handle(from, msg);
  }

 private:
  void react(ProcessId suspect) {
    for (ShardId s = 0; s < cluster_.num_shards(); ++s) {
      configsvc::ShardConfig cfg = cluster_.current_config(s);
      if (!cfg.has_member(suspect)) continue;
      for (ProcessId m : cfg.members) {
        if (m == suspect || cluster_.sim().crashed(m)) continue;
        std::printf("  [t=%llu] watchdog: %s suspected; asking %s to reconfigure shard %u\n",
                    (unsigned long long)sim().now(), process_name(suspect).c_str(),
                    process_name(m).c_str(), s);
        cluster_.replica_by_pid(m).reconfigure(s);
        monitor_.unwatch(suspect);
        for (ProcessId nm : cfg.members) {
          if (!monitor_.watching(nm) && nm != suspect) monitor_.watch(nm);
        }
        return;
      }
    }
  }

  commit::Cluster& cluster_;
  fd::PingMonitor monitor_;
};

}  // namespace

int main() {
  commit::Cluster cluster({.seed = 3,
                           .num_shards = 2,
                           .shard_size = 2,
                           .spares_per_shard = 2,
                           .retry_timeout = 120});
  Watchdog watchdog(cluster, 7777);
  cluster.sim().add_process(&watchdog);

  store::CommitFrontend frontend(cluster);
  store::VersionedStore db;
  store::WorkloadGenerator gen({.objects = 64, .ops_per_txn = 3}, 5);
  store::WorkloadRunner runner(
      cluster.sim(), frontend, db,
      [&](const store::VersionedStore& d) { return gen.next(d); });

  std::printf("phase 1: 200 transactions on the initial configuration (epoch 1)\n");
  store::RunnerStats s1 = runner.run(200);
  std::printf("  committed=%zu aborted=%zu\n", s1.committed, s1.aborted);

  ProcessId doomed = cluster.leader_of(0);
  std::printf("phase 2: crashing shard 0's leader %s\n", process_name(doomed).c_str());
  cluster.crash(doomed);
  // Let the failure detector notice and the reconfiguration complete.
  cluster.await_active_epoch(0, 2, 1'000'000);
  configsvc::ShardConfig cfg = cluster.current_config(0);
  std::printf("  [t=%llu] shard 0 now at epoch %llu: leader %s, members",
              (unsigned long long)cluster.sim().now(), (unsigned long long)cfg.epoch,
              process_name(cfg.leader).c_str());
  for (ProcessId m : cfg.members) std::printf(" %s", process_name(m).c_str());
  std::printf("\n");

  std::printf("phase 3: 200 more transactions on the new configuration\n");
  store::RunnerStats s2 = runner.run(200);
  std::printf("  committed=%zu aborted=%zu undecided=%zu\n", s2.committed, s2.aborted,
              s2.undecided);

  std::string problems = cluster.verify();
  std::printf("verification: %s\n", problems.empty() ? "all invariants hold" : problems.c_str());
  bool ok = problems.empty() && cfg.epoch >= 2 && s2.committed > s1.committed;
  return ok ? 0 : 1;
}
