// Self-healing demo (paper Fig. 2b): the autonomous reconfiguration
// controllers (src/ctrl/) watch every shard's members through a heartbeat
// failure detector; when a shard leader dies mid-workload, the shard's
// controller probes the old membership, picks the surviving replica as the
// new leader, replaces the dead member with a fresh spare (PlacementPolicy)
// and CAS-es the new epoch into the configuration service — and
// certification resumes, with no omniscient test-harness lever involved.
//
//   $ ./examples/reconfiguration_demo
#include <cstdio>

#include "commit/cluster.h"
#include "store/frontends.h"
#include "store/runner.h"
#include "store/workload.h"

using namespace ratc;

int main() {
  commit::Cluster cluster({.seed = 3,
                           .num_shards = 2,
                           .shard_size = 2,
                           .spares_per_shard = 2,
                           .retry_timeout = 120,
                           .enable_controller = true});

  store::CommitFrontend frontend(cluster);
  store::VersionedStore db;
  store::WorkloadGenerator gen({.objects = 64, .ops_per_txn = 3}, 5);
  store::WorkloadRunner runner(
      cluster.sim(), frontend, db,
      [&](const store::VersionedStore& d) { return gen.next(d); });

  std::printf("phase 1: 200 transactions on the initial configuration (epoch 1)\n");
  store::RunnerStats s1 = runner.run(200);
  std::printf("  committed=%zu aborted=%zu\n", s1.committed, s1.aborted);

  ProcessId doomed = cluster.leader_of(0);
  std::printf("phase 2: crashing shard 0's leader %s\n", process_name(doomed).c_str());
  cluster.crash(doomed);
  // No harness repair: the controller's failure detector must notice and
  // the autonomous reconfiguration must complete.
  cluster.await_active_epoch(0, 2, 1'000'000);
  configsvc::ShardConfig cfg = cluster.current_config(0);
  std::printf("  [t=%llu] shard 0 now at epoch %llu: leader %s, members",
              (unsigned long long)cluster.sim().now(), (unsigned long long)cfg.epoch,
              process_name(cfg.leader).c_str());
  for (ProcessId m : cfg.members) std::printf(" %s", process_name(m).c_str());
  std::printf("\n");
  const ctrl::ReconController::Stats& cs = cluster.controller(0).stats();
  std::printf("  controller/s0: %zu suspicion(s), %zu attempt(s), %zu epoch(s) installed\n",
              cs.suspicions, cs.attempts, cs.epochs_initiated);

  std::printf("phase 3: 200 more transactions on the new configuration\n");
  store::RunnerStats s2 = runner.run(200);
  std::printf("  committed=%zu aborted=%zu undecided=%zu\n", s2.committed, s2.aborted,
              s2.undecided);

  std::string problems = cluster.verify();
  std::printf("verification: %s\n", problems.empty() ? "all invariants hold" : problems.c_str());
  bool ok = problems.empty() && cfg.epoch >= 2 && s2.committed > s1.committed &&
            cs.epochs_initiated >= 1;
  return ok ? 0 : 1;
}
