// Bank transfers across shards: the classical atomic-commit scenario.
// Accounts are partitioned over 4 shards; every transfer touches two
// (usually different) shards and must commit atomically on both or abort on
// both.  Conservation of money is the end-to-end correctness witness.
//
//   $ ./examples/bank_transfers
#include <cstdio>

#include "checker/conflict_graph.h"
#include "store/frontends.h"
#include "store/runner.h"
#include "store/workload.h"

using namespace ratc;

int main() {
  commit::Cluster cluster({.seed = 7, .num_shards = 4, .shard_size = 2});
  store::CommitFrontend frontend(cluster);

  store::VersionedStore db;
  store::BankWorkload bank(/*accounts=*/32, /*initial_balance=*/1000, /*seed=*/11);
  db.apply(bank.seed_payload());

  std::printf("bank: %llu accounts x 1000 = %lld total, over 4 shards\n",
              (unsigned long long)bank.accounts(), (long long)bank.expected_total());

  store::WorkloadRunner runner(
      cluster.sim(), frontend, db,
      [&](const store::VersionedStore& d) { return bank.next_transfer(d); },
      /*window=*/6);
  store::RunnerStats stats = runner.run(1000);

  std::printf("transfers: %zu submitted, %zu committed, %zu aborted (%.1f%% abort rate)\n",
              stats.submitted, stats.committed, stats.aborted, 100 * stats.abort_rate());
  std::printf("mean decision latency: %.1f message delays\n", stats.mean_latency());

  long long total = bank.total_balance(db);
  std::printf("total balance after transfers: %lld (%s)\n", total,
              total == bank.expected_total() ? "conserved" : "VIOLATED");

  auto cg = checker::check_conflict_graph(cluster.history());
  std::printf("serializability (conflict graph): %s\n", cg.ok ? "acyclic" : cg.error.c_str());
  std::string problems = cluster.verify();
  std::printf("protocol invariants + TCS-LL: %s\n",
              problems.empty() ? "all hold" : problems.c_str());

  bool ok = total == bank.expected_total() && cg.ok && problems.empty();
  return ok ? 0 : 1;
}
