// The RDMA story (paper Sec. 5): the same certification flow over one-sided
// RDMA writes, the Figure 4a counter-example showing why per-shard
// reconfiguration becomes UNSAFE with RDMA, and the corrected global
// protocol (Fig. 4b) surviving the identical schedule.
//
//   $ ./examples/rdma_demo
#include <cstdio>

#include "rdma/cluster.h"

using namespace ratc;

namespace {

rdma::Cluster::Options scenario(rdma::ReconfigMode mode) {
  rdma::Cluster::Options opt;
  opt.seed = 42;
  opt.num_shards = 3;
  opt.shard_size = 2;
  opt.mode = mode;
  // The race of Fig. 4a: the coordinator's RDMA write to p201 crawls, and
  // the coordinator hears about configuration changes very late.
  opt.link_delay = [](ProcessId from, ProcessId to) -> Duration {
    if (from == 301 && to == 201) return 60;
    if (from == 9000 && to == 301) return 200;
    return 0;
  };
  return opt;
}

int run_figure4a(rdma::ReconfigMode mode, const char* label) {
  std::printf("--- %s ---\n", label);
  rdma::Cluster cluster(scenario(mode));
  rdma::Client& client = cluster.add_client();
  rdma::Replica& pc = cluster.replica(2, 1);  // the coordinator "pc"
  TxnId t = cluster.next_txn_id();

  tcs::Payload payload;
  payload.reads = {{0, 0}, {1, 0}};
  payload.writes = {{0, 7}, {1, 9}};
  payload.commit_version = 1;

  client.certify_remote(pc.id(), t, payload);
  cluster.sim().run_until(4);
  std::printf("t=4: txn%llu prepared at both leaders; ACCEPT to p201 in flight\n",
              (unsigned long long)t);

  cluster.crash(cluster.replica(1, 0).id());
  std::printf("t=4: leader of shard 1 (p200) crashes\n");
  if (mode == rdma::ReconfigMode::kPerShardUnsafe) {
    cluster.replica(1, 1).reconfigure_shard(1);
    cluster.await_active_shard_epoch(1, 2);
    std::printf("t=%llu: shard 1 reconfigured ALONE; p201 promoted to leader\n",
                (unsigned long long)cluster.sim().now());
  } else {
    cluster.replica(1, 1).reconfigure();
    cluster.await_active_epoch(2);
    std::printf("t=%llu: GLOBAL reconfiguration: every process probed, connections\n"
                "        closed, CONFIG_PREPARE disseminated, epoch 2 activated\n",
                (unsigned long long)cluster.sim().now());
  }

  // Shard 0's leader retries the stuck transaction at the new leader of
  // shard 1, which never saw it -> abort.
  rdma::Replica& leader0 = cluster.replica_by_pid(cluster.leader_of(0));
  Slot k = leader0.log().slot_of(t);
  if (k != kNoSlot) {
    leader0.retry(k);
  }
  cluster.sim().run_until_pred([&] { return client.decided(t); }, 200000);
  if (client.decided(t)) {
    std::printf("t=%llu: retry path externalizes '%s'\n",
                (unsigned long long)cluster.sim().now(),
                tcs::to_string(*client.decision(t)));
  }

  // Run past the landing time of pc's stale RDMA write.
  cluster.sim().run();

  int contradictory = 0;
  bool commit_seen = false, abort_seen = false;
  for (const auto& [txn, d] : client.observations()) {
    if (txn != t) continue;
    commit_seen |= d == tcs::Decision::kCommit;
    abort_seen |= d == tcs::Decision::kAbort;
  }
  contradictory = commit_seen && abort_seen;
  if (contradictory) {
    std::printf("RESULT: SAFETY VIOLATION — the client saw BOTH abort and commit\n");
    std::printf("monitor caught:\n%s", cluster.monitor().violations().summary().c_str());
  } else {
    std::printf("RESULT: exactly one decision externalized (%zu stale RDMA write(s) "
                "rejected by closed connections)\n",
                cluster.fabric().writes_rejected());
  }
  std::printf("\n");
  return contradictory;
}

}  // namespace

int main() {
  std::printf("Reproducing the paper's Figure 4a counter-example and its fix.\n\n");
  int unsafe_violated =
      run_figure4a(rdma::ReconfigMode::kPerShardUnsafe,
                   "strawman: RDMA data path + per-shard reconfiguration (Fig. 4a)");
  int safe_violated = run_figure4a(
      rdma::ReconfigMode::kGlobalSafe,
      "paper protocol: RDMA data path + global reconfiguration (Fig. 4b / Fig. 8)");

  std::printf("summary: strawman %s, corrected protocol %s\n",
              unsafe_violated ? "violated safety (as the paper proves)"
                              : "UNEXPECTEDLY survived",
              safe_violated ? "UNEXPECTEDLY violated safety" : "stayed safe");
  // Success = the strawman violates and the corrected protocol does not.
  return (unsafe_violated == 1 && safe_violated == 0) ? 0 : 1;
}
