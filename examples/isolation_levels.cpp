// Isolation-level parametricity (paper Sec. 2): the same protocol runs with
// any pair of shard-local certification functions (f_s, g_s).  This example
// runs one contended workload under serializability and under snapshot
// isolation and compares abort rates — SI commits read-write conflicts that
// serializability must reject.
//
//   $ ./examples/isolation_levels
#include <cstdio>

#include "store/frontends.h"
#include "store/runner.h"
#include "store/workload.h"

using namespace ratc;

namespace {

store::RunnerStats run_with(const std::string& isolation) {
  commit::Cluster cluster({.seed = 9,
                           .num_shards = 2,
                           .shard_size = 2,
                           .isolation = isolation});
  store::CommitFrontend frontend(cluster);
  store::VersionedStore db;
  store::WorkloadGenerator gen(
      {.objects = 24, .zipf_theta = 0.9, .ops_per_txn = 4, .write_fraction = 0.4}, 17);
  store::WorkloadRunner runner(
      cluster.sim(), frontend, db,
      [&](const store::VersionedStore& d) { return gen.next(d); });
  store::RunnerStats stats = runner.run(800);
  std::string problems = cluster.verify();
  if (!problems.empty()) {
    std::printf("UNEXPECTED verification failure under %s:\n%s", isolation.c_str(),
                problems.c_str());
  }
  return stats;
}

}  // namespace

int main() {
  std::printf("same workload (zipfian 0.9 over 24 objects, 40%% writes), two isolation levels\n\n");
  store::RunnerStats ser = run_with("serializability");
  store::RunnerStats si = run_with("snapshot-isolation");

  std::printf("%-20s %10s %10s %12s\n", "isolation", "committed", "aborted", "abort-rate");
  std::printf("%-20s %10zu %10zu %11.1f%%\n", "serializability", ser.committed,
              ser.aborted, 100 * ser.abort_rate());
  std::printf("%-20s %10zu %10zu %11.1f%%\n", "snapshot-isolation", si.committed,
              si.aborted, 100 * si.abort_rate());

  bool ok = si.abort_rate() <= ser.abort_rate();
  std::printf("\nsnapshot isolation aborts %s often than serializability (expected: no more)\n",
              ok ? "no more" : "MORE");
  return ok ? 0 : 1;
}
