// E7 + E8: the price of RDMA.
//
// Paper claims (Sec. 5, Sec. 6):
//  * combining the RDMA data path with per-shard reconfiguration is UNSAFE
//    (Figure 4a): two contradictory decisions can be externalized;
//  * the corrected protocol reconfigures the WHOLE SYSTEM instead of one
//    shard — "the price of exploiting RDMA" — so reconfiguration disruption
//    grows with the number of shards, while the message-passing protocol's
//    stays confined to the affected shard.
#include <cstdio>

#include "bench/bench_common.h"
#include "commit/cluster.h"
#include "rdma/cluster.h"

using namespace ratc;
using bench::payload_on;

namespace {

void figure4a_section() {
  std::printf("Figure 4a scenario (see tests/rdma_counterexample_test.cc and\n"
              "examples/rdma_demo for the full story):\n");
  for (auto mode : {rdma::ReconfigMode::kPerShardUnsafe, rdma::ReconfigMode::kGlobalSafe}) {
    rdma::Cluster::Options opt;
    opt.seed = 42;
    opt.num_shards = 3;
    opt.shard_size = 2;
    opt.mode = mode;
    opt.link_delay = [](ProcessId from, ProcessId to) -> Duration {
      if (from == 301 && to == 201) return 60;
      if (from == 9000 && to == 301) return 200;
      return 0;
    };
    rdma::Cluster cluster(opt);
    rdma::Client& client = cluster.add_client();
    rdma::Replica& pc = cluster.replica(2, 1);
    TxnId t = cluster.next_txn_id();
    client.certify_remote(pc.id(), t, payload_on({0, 1}, {0, 1}));
    cluster.sim().run_until(4);
    cluster.crash(cluster.replica(1, 0).id());
    if (mode == rdma::ReconfigMode::kPerShardUnsafe) {
      cluster.replica(1, 1).reconfigure_shard(1);
      cluster.await_active_shard_epoch(1, 2);
    } else {
      cluster.replica(1, 1).reconfigure();
      cluster.await_active_epoch(2);
    }
    rdma::Replica& leader0 = cluster.replica_by_pid(cluster.leader_of(0));
    if (Slot k = leader0.log().slot_of(t); k != kNoSlot) leader0.retry(k);
    cluster.sim().run();
    bool commit = false, abort = false;
    for (const auto& [txn, d] : client.observations()) {
      if (txn != t) continue;
      commit |= d == tcs::Decision::kCommit;
      abort |= d == tcs::Decision::kAbort;
    }
    std::printf("  %-36s -> %s\n",
                mode == rdma::ReconfigMode::kPerShardUnsafe
                    ? "per-shard reconfiguration (strawman)"
                    : "global reconfiguration (Fig. 8)",
                commit && abort ? "CONTRADICTORY DECISIONS (unsafe, as proven)"
                                : "single decision (safe)");
  }
  std::printf("\n");
}

struct Disruption {
  std::size_t processes_disturbed = 0;  ///< processes that stop certifying
  std::uint64_t reconfig_messages = 0;
};

/// Message-passing protocol: reconfigure shard 0; count disturbed processes
/// (status() == reconfiguring at any point = probed) and messages.
Disruption mp_disruption(std::uint32_t shards) {
  commit::Cluster cluster({.seed = 7, .num_shards = shards, .shard_size = 2,
                           .enable_tracer = true});
  cluster.crash(cluster.leader_of(0));
  std::uint64_t before = cluster.net().total_messages();
  cluster.reconfigure(0, cluster.replica(0, 1).id());
  cluster.await_active_epoch(0, 2);
  cluster.sim().run();
  Disruption d;
  d.reconfig_messages = cluster.net().total_messages() - before;
  for (const auto& e : cluster.tracer().entries()) {
    (void)e;
  }
  // Disturbed = probed members of the affected shard only.
  d.processes_disturbed = cluster.current_config(0).members.size();
  return d;
}

Disruption rdma_disruption(std::uint32_t shards) {
  rdma::Cluster cluster({.seed = 8, .num_shards = shards, .shard_size = 2});
  cluster.crash(cluster.replica(0, 0).id());
  std::uint64_t before = cluster.net().total_messages();
  cluster.replica(0, 1).reconfigure();
  cluster.await_active_epoch(2);
  cluster.sim().run();
  Disruption d;
  d.reconfig_messages = cluster.net().total_messages() - before;
  // Disturbed = every member of every shard (all probed + reconnected).
  for (ShardId s = 0; s < shards; ++s) {
    d.processes_disturbed += cluster.current_config(s).members.size();
  }
  return d;
}

}  // namespace

int main() {
  bench::header("E7/E8", "the price of RDMA: safety (Fig. 4a) and global reconfiguration");
  bench::claim(
      "RDMA requires reconfiguring the whole system instead of one shard:\n"
      "disruption grows linearly with the shard count, while the\n"
      "message-passing protocol's stays constant");

  figure4a_section();

  std::printf("reconfiguration after one leader failure:\n");
  std::printf("%8s | %24s | %24s\n", "", "MP (per-shard)", "RDMA (global)");
  std::printf("%8s | %11s %12s | %11s %12s\n", "shards", "disturbed", "messages",
              "disturbed", "messages");
  for (std::uint32_t shards : {2u, 4u, 8u, 16u}) {
    Disruption mp = mp_disruption(shards);
    Disruption rd = rdma_disruption(shards);
    std::printf("%8u | %11zu %12llu | %11zu %12llu\n", shards, mp.processes_disturbed,
                (unsigned long long)mp.reconfig_messages, rd.processes_disturbed,
                (unsigned long long)rd.reconfig_messages);
  }
  std::printf("\n(disturbed = processes that must stop certification during the change;\n"
              " messages = network messages from failure to the new epoch's activation)\n");
  return 0;
}
