// E3: load on shard leaders — the potential bottleneck the protocol is
// designed to relieve by delegating replication to coordinators.
//
// Paper claim (Sec. 3): "each involved leader only has to receive one
// PREPARE and one DECISION message, and send one PREPARE_ACK message"; the
// network-intensive persisting of transactions is spread over coordinators.
// The baseline's Paxos leader instead relays 2 replication rounds (prepare
// + decision) per transaction to 2f followers each.
#include <cstdio>

#include "baseline/cluster.h"
#include "bench/bench_common.h"
#include "commit/cluster.h"

using namespace ratc;
using bench::payload_on;

namespace {

constexpr int kTxns = 500;

struct Load {
  double leader_in = 0, leader_out = 0;      // messages/txn at the shard leader
  double coordinator_out = 0;                // messages/txn at coordinators (ours)
};

Load measure_ours() {
  commit::Cluster cluster({.seed = 1, .num_shards = 1, .shard_size = 3});
  commit::Client& client = cluster.add_client();
  for (int i = 0; i < kTxns; ++i) {
    // Coordinator is a follower: the leader only certifies.
    client.certify_colocated(cluster.replica(0, 1), cluster.next_txn_id(),
                             payload_on({static_cast<ObjectId>(i)},
                                        {static_cast<ObjectId>(i)}));
  }
  cluster.sim().run();
  const auto& leader = cluster.net().traffic(cluster.leader_of(0));
  const auto& coord = cluster.net().traffic(cluster.replica(0, 1).id());
  Load load;
  load.leader_in = static_cast<double>(leader.msgs_received) / kTxns;
  load.leader_out = static_cast<double>(leader.msgs_sent) / kTxns;
  load.coordinator_out = static_cast<double>(coord.msgs_sent) / kTxns;
  return load;
}

Load measure_baseline() {
  baseline::BaselineCluster cluster({.seed = 2, .num_shards = 1, .shard_size = 3});
  baseline::BaselineClient& client = cluster.add_client();
  for (int i = 0; i < kTxns; ++i) {
    tcs::Payload p = payload_on({static_cast<ObjectId>(i)}, {static_cast<ObjectId>(i)});
    client.certify(cluster.coordinator_for(p), cluster.next_txn_id(), p);
  }
  cluster.sim().run();
  // The baseline leader = shard server 0 + its Paxos replica (one machine).
  const auto& server = cluster.net().traffic(cluster.server(0, 0).id());
  const auto& paxos = cluster.net().traffic(cluster.server(0, 0).paxos().id());
  Load load;
  load.leader_in =
      static_cast<double>(server.msgs_received + paxos.msgs_received) / kTxns;
  load.leader_out = static_cast<double>(server.msgs_sent + paxos.msgs_sent) / kTxns;
  load.coordinator_out = load.leader_out;  // leader IS the coordinator
  return load;
}

}  // namespace

int main() {
  bench::header("E3", "per-transaction message load on the shard leader");
  bench::claim(
      "leader handles 3 messages per transaction (PREPARE in, PREPARE_ACK\n"
      "out, DECISION in); replication fan-out is delegated to coordinators");

  Load ours = measure_ours();
  Load base = measure_baseline();

  std::printf("%-28s %12s %12s %18s\n", "system (f=1)", "leader in", "leader out",
              "coordinator out");
  std::printf("%-28s %12.2f %12.2f %18.2f\n", "this work (MP)", ours.leader_in,
              ours.leader_out, ours.coordinator_out);
  std::printf("%-28s %12.2f %12.2f %18s\n", "baseline 2PC/Paxos", base.leader_in,
              base.leader_out, "(= leader)");
  std::printf("\nleader total: %.2f msgs/txn (ours) vs %.2f msgs/txn (baseline) => %.1fx\n",
              ours.leader_in + ours.leader_out, base.leader_in + base.leader_out,
              (base.leader_in + base.leader_out) /
                  (ours.leader_in + ours.leader_out));
  return 0;
}
