// Persisted bench results: a tiny dependency-free JSON emitter so every
// bench run leaves a machine-readable BENCH_<name>.json next to its stdout
// tables.  CI uploads these as artifacts on every push, giving the repo a
// perf trajectory over time instead of numbers trapped in scrollback.
//
// Schema (documented for consumers in tests/README.md):
//
//   {
//     "bench": "<name>",
//     "rows": [ { "<col>": <string|number|bool>, ... }, ... ]
//   }
//
// Rows preserve insertion order and a run's output is a pure function of
// its inputs (no timestamps), so two runs of the same binary diff cleanly.
//
// The output directory is RATC_BENCH_JSON_DIR when set, else the working
// directory; RATC_BENCH_TXNS scales down transaction counts for smoke runs
// (see bench_txns).
#pragma once

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "store/runner.h"

namespace ratc::bench {

/// One result table destined for BENCH_<name>.json.
class BenchReport {
 public:
  /// One row of named columns; values keep insertion order.
  class Row {
   public:
    Row& set(const std::string& key, const std::string& value);
    Row& set(const std::string& key, const char* value);
    Row& set(const std::string& key, double value);
    Row& set(const std::string& key, std::uint64_t value);
    Row& set(const std::string& key, std::int64_t value);
    Row& set(const std::string& key, bool value);

   private:
    friend class BenchReport;
    /// key -> already-JSON-encoded value.
    std::vector<std::pair<std::string, std::string>> cells_;
  };

  explicit BenchReport(std::string name) : name_(std::move(name)) {}

  Row& add_row() {
    rows_.emplace_back();
    return rows_.back();
  }

  const std::string& name() const { return name_; }
  std::size_t row_count() const { return rows_.size(); }

  /// The serialized document.
  std::string render() const;

  /// Writes BENCH_<name>.json into RATC_BENCH_JSON_DIR (or the working
  /// directory) and reports the path on stdout; false on I/O failure.
  bool write() const;

 private:
  std::string name_;
  std::vector<Row> rows_;
};

/// Fills the standard closed-loop columns shared by every runner-driven
/// bench row: identification (stack/shards/batch_size/window/txns) plus
/// throughput, latency (mean/p50/p99), outcome counts, the committed
/// fraction, and the censored-latency count (see RunnerStats::undecided).
BenchReport::Row& fill_runner_row(BenchReport::Row& row,
                                  const std::string& stack,
                                  std::uint32_t shards, std::size_t batch_size,
                                  std::size_t window,
                                  const store::RunnerStats& stats);

/// Transaction count for a bench: `default_txns` unless RATC_BENCH_TXNS
/// overrides it (CI smoke runs set a tiny count to exercise the full
/// pipeline without the full cost).
std::size_t bench_txns(std::size_t default_txns);

}  // namespace ratc::bench
