// E1 + E2: commit latency in message delays.
//
// Paper claims (Sec. 1, Sec. 3):
//  * "our protocol allows the client to learn a decision on a transaction
//    in 5 message delays, instead of 7 required by vanilla protocols that
//    use Paxos as a black box";
//  * "we can further reduce this to 4 by co-locating the client with the
//    transaction coordinator";
//  * the failure-free message flow is Fig. 2a:
//    PREPARE -> PREPARE_ACK -> ACCEPT -> ACCEPT_ACK -> DECISION.
#include <cstdio>

#include "baseline/cluster.h"
#include "bench/bench_common.h"
#include "commit/cluster.h"
#include "rdma/cluster.h"

using namespace ratc;
using bench::payload_on;

namespace {

Duration ours_colocated(std::uint32_t shards) {
  commit::Cluster cluster({.seed = 1, .num_shards = shards, .shard_size = 2});
  commit::Client& client = cluster.add_client();
  std::vector<ObjectId> objs;
  for (std::uint32_t s = 0; s < shards; ++s) objs.push_back(s);
  TxnId t = cluster.next_txn_id();
  client.certify_colocated(cluster.replica(0, 1), t, payload_on(objs, objs));
  cluster.sim().run();
  return *client.latency(t);
}

Duration ours_remote(std::uint32_t shards) {
  commit::Cluster cluster({.seed = 2, .num_shards = shards, .shard_size = 2});
  commit::Client& client = cluster.add_client();
  std::vector<ObjectId> objs;
  for (std::uint32_t s = 0; s < shards; ++s) objs.push_back(s);
  TxnId t = cluster.next_txn_id();
  client.certify_remote(cluster.replica(0, 1).id(), t, payload_on(objs, objs));
  cluster.sim().run();
  return *client.latency(t);
}

Duration rdma_colocated(std::uint32_t shards) {
  rdma::Cluster cluster({.seed = 3, .num_shards = shards, .shard_size = 2});
  rdma::Client& client = cluster.add_client();
  std::vector<ObjectId> objs;
  for (std::uint32_t s = 0; s < shards; ++s) objs.push_back(s);
  TxnId t = cluster.next_txn_id();
  client.certify_colocated(cluster.replica(0, 1), t, payload_on(objs, objs));
  cluster.sim().run();
  return *client.latency(t);
}

Duration baseline_remote(std::uint32_t shards) {
  baseline::BaselineCluster cluster({.seed = 4, .num_shards = shards, .shard_size = 3});
  baseline::BaselineClient& client = cluster.add_client();
  std::vector<ObjectId> objs;
  for (std::uint32_t s = 0; s < shards; ++s) objs.push_back(s);
  TxnId t = cluster.next_txn_id();
  tcs::Payload p = payload_on(objs, objs);
  client.certify(cluster.coordinator_for(p), t, p);
  cluster.sim().run();
  return *client.latency(t);
}

void figure_2a_trace() {
  std::printf("Figure 2a message flow (2 shards, one transaction):\n");
  commit::Cluster cluster(
      {.seed = 5, .num_shards = 2, .shard_size = 2, .enable_tracer = true});
  commit::Client& client = cluster.add_client();
  TxnId t = cluster.next_txn_id();
  client.certify_colocated(cluster.replica(0, 1), t, payload_on({0, 1}, {0, 1}));
  cluster.sim().run();
  for (const auto& e : cluster.tracer().entries()) {
    if (e.kind != sim::TraceEntry::Kind::kDeliver) continue;
    std::printf("  t=%llu  %-12s %s -> %s\n", (unsigned long long)e.time,
                e.type.c_str(), process_name(e.from).c_str(),
                process_name(e.to).c_str());
  }
  std::printf("\n");
}

}  // namespace

int main() {
  bench::header("E1/E2", "commit latency in message delays (unit-delay network)");
  bench::claim(
      "5 delays from the coordinator (4 with co-located client) vs 7 for\n"
      "2PC-over-Paxos; independent of the number of shards involved");

  figure_2a_trace();

  std::printf("%-34s %8s %8s %8s %14s\n", "system (client placement)", "1 shard",
              "2 shards", "4 shards", "paper (coord.)");
  std::printf("%-34s %8llu %8llu %8llu %14s\n", "this work, MP (co-located)",
              (unsigned long long)ours_colocated(1), (unsigned long long)ours_colocated(2),
              (unsigned long long)ours_colocated(4), "4");
  std::printf("%-34s %8llu %8llu %8llu %14s\n", "this work, MP (remote, -1 submit)",
              (unsigned long long)(ours_remote(1) - 1),
              (unsigned long long)(ours_remote(2) - 1),
              (unsigned long long)(ours_remote(4) - 1), "5");
  std::printf("%-34s %8llu %8llu %8llu %14s\n", "this work, RDMA (co-located)",
              (unsigned long long)rdma_colocated(1), (unsigned long long)rdma_colocated(2),
              (unsigned long long)rdma_colocated(4), "4");
  std::printf("%-34s %8llu %8llu %8llu %14s\n", "baseline 2PC/Paxos (remote, -1)",
              (unsigned long long)(baseline_remote(1) - 1),
              (unsigned long long)(baseline_remote(2) - 1),
              (unsigned long long)(baseline_remote(4) - 1), "7");
  std::printf("\n(single-shard baseline still pays two Paxos round trips: 5 delays)\n");
  return 0;
}
