// E9: abort rates under contention — why FARM ships votes with RDMA.
//
// Paper claim (Sec. 5): "persisting a transaction t at followers using RDMA
// minimizes the time during which the transaction is prepared at leaders,
// which requires them to vote abort on all transactions conflicting with t
// [...]; this results in lower abort rates".
//
// The effect comes from two-sided messaging paying a CPU/software cost that
// one-sided writes avoid.  We model it with a cpu-cost knob c: every
// two-sided message takes 1+c ticks, while one-sided RDMA writes and NIC
// acks take 1 tick.  Transactions arrive OPEN-LOOP at a fixed rate, so as c
// grows the message-passing protocol's prepared-but-undecided window
// stretches relative to the arrival interval and its abort rate climbs,
// while the RDMA protocol's window (dominated by one-sided writes) stays
// nearly flat.
// A second experiment (E9b) rides along: the abort-rate cost of 2PC's
// blocking.  A coordinator crash mid-run leaves prepared-but-undecided
// witnesses that force leaders to vote abort on every conflicting
// transaction *forever*.  Cooperative termination (baseline/termination.h)
// resolves the in-doubt transactions whose peers decided and releases
// their objects, so the post-crash abort rate recovers.
#include <cstdio>
#include <map>

#include "baseline/cluster.h"
#include "bench/bench_common.h"
#include "commit/cluster.h"
#include "rdma/cluster.h"
#include "store/executor.h"
#include "store/versioned_store.h"
#include "tcs/decision.h"

using namespace ratc;

namespace {

constexpr int kTxns = 400;
constexpr Duration kArrivalEvery = 6;  // open-loop inter-arrival time (ticks)
constexpr ObjectId kObjects = 40;

struct OpenLoopResult {
  double abort_rate = 0;
  double mean_latency = 0;
};

/// Generates one random read-modify-write transaction against the store.
tcs::Payload make_txn(Rng& rng, const store::VersionedStore& db) {
  store::TransactionExecutor exec(db);
  for (int i = 0; i < 2; ++i) {
    ObjectId obj = rng.below(kObjects);
    Value v = exec.read(obj);
    exec.write(obj, v + 1);
  }
  return exec.finish();
}

template <typename Cluster, typename Client, typename PickCoordinator>
OpenLoopResult drive(Cluster& cluster, Client& client, PickCoordinator pick) {
  store::VersionedStore db;
  Rng rng(99);
  std::map<TxnId, tcs::Payload> payloads;
  std::size_t committed = 0, aborted = 0;
  Duration total_latency = 0;

  client.on_decision = [&](TxnId t, tcs::Decision d) {
    if (d == tcs::Decision::kCommit) {
      db.apply(payloads[t]);
      ++committed;
    } else {
      ++aborted;
    }
    total_latency += *client.latency(t);
  };

  // Open-loop arrivals: one transaction every kArrivalEvery ticks, no
  // matter how long decisions take.
  for (int i = 0; i < kTxns; ++i) {
    cluster.sim().schedule(static_cast<Duration>(i) * kArrivalEvery, [&, i] {
      (void)i;
      tcs::Payload p = make_txn(rng, db);
      TxnId t = cluster.next_txn_id();
      payloads[t] = p;
      client.certify_colocated(*pick(), t, p);
    });
  }
  cluster.sim().run();

  OpenLoopResult r;
  std::size_t decided = committed + aborted;
  r.abort_rate = decided ? static_cast<double>(aborted) / decided : 0;
  r.mean_latency = decided ? static_cast<double>(total_latency) / decided : 0;
  return r;
}

OpenLoopResult mp_run(Duration cpu_cost) {
  commit::Cluster cluster({.seed = 31, .num_shards = 2, .shard_size = 2,
                           .link_delay = [cpu_cost](ProcessId, ProcessId) {
                             return 1 + cpu_cost;
                           },
                           .enable_monitor = false});
  commit::Client& client = cluster.add_client();
  std::size_t rr = 0;
  auto pick = [&]() {
    ShardId s = static_cast<ShardId>(rr++ % 2);
    return &cluster.replica(s, 1);
  };
  return drive(cluster, client, pick);
}

OpenLoopResult rdma_run(Duration cpu_cost) {
  rdma::Cluster::Options opt;
  opt.seed = 31;
  opt.num_shards = 2;
  opt.shard_size = 2;
  // Two-sided traffic (PREPARE/PREPARE_ACK) pays the CPU cost; one-sided
  // ACCEPT/DECISION writes and their NIC acks do not.
  opt.link_delay = [cpu_cost](ProcessId, ProcessId) { return 1 + cpu_cost; };
  opt.fabric_delay = [](ProcessId, ProcessId) -> Duration { return 1; };
  rdma::Cluster cluster(opt);
  rdma::Client& client = cluster.add_client();
  std::size_t rr = 0;
  auto pick = [&]() {
    ShardId s = static_cast<ShardId>(rr++ % 2);
    return &cluster.replica(s, 1);
  };
  return drive(cluster, client, pick);
}

// --- E9b: the baseline's poisoned-object abort rate -----------------------------

struct CrashRunResult {
  double abort_rate = 0;       ///< among decided transactions
  std::size_t undecided = 0;   ///< blocked forever (classical 2PC)
  std::size_t committed = 0;
};

/// Open-loop run against the 2PC baseline with a coordinator crash (plus
/// leader failover) one third in; with cooperative termination the stranded
/// transactions resolve and their objects unpoison.
CrashRunResult baseline_crash_run(bool cooperative_termination) {
  baseline::BaselineCluster cluster({.seed = 41, .num_shards = 2, .shard_size = 3,
                                     .cooperative_termination = cooperative_termination});
  baseline::BaselineClient& client = cluster.add_client();
  store::VersionedStore db;
  Rng rng(99);
  std::map<TxnId, tcs::Payload> payloads;
  std::size_t committed = 0, aborted = 0;
  client.on_decision = [&](TxnId t, tcs::Decision d) {
    if (d == tcs::Decision::kCommit) {
      db.apply(payloads[t]);
      ++committed;
    } else {
      ++aborted;
    }
  };
  // One decision-window strike per shard: past one third of the run, the
  // first arrival coordinated by a not-yet-struck shard gets its
  // coordinator crashed 4 ticks later — prepare-acks are in, the decision
  // is not yet broadcast — and leadership fails over to a survivor.
  std::map<ShardId, bool> struck;
  for (int i = 0; i < kTxns; ++i) {
    cluster.sim().schedule(static_cast<Duration>(i) * kArrivalEvery, [&, i] {
      tcs::Payload p = make_txn(rng, db);
      ProcessId coordinator = cluster.coordinator_for(p);
      if (cluster.sim().crashed(coordinator)) return;  // never submitted
      TxnId t = cluster.next_txn_id();
      payloads[t] = p;
      client.certify(coordinator, t, p);
      ShardId s = cluster.shard_map().shards_of(p).front();
      if (i >= kTxns / 3 && !struck[s]) {
        struck[s] = true;
        cluster.sim().schedule(4, [&cluster, s] { cluster.fail_over(s, 1); });
      }
    });
  }
  cluster.sim().run();

  CrashRunResult r;
  std::size_t decided = committed + aborted;
  r.abort_rate = decided ? static_cast<double>(aborted) / decided : 0;
  r.undecided = payloads.size() - decided;
  r.committed = committed;
  return r;
}

}  // namespace

int main() {
  bench::header("E9", "abort rate vs CPU cost of two-sided messaging (open-loop arrivals)");
  bench::claim(
      "RDMA shortens the prepared-but-undecided window at leaders, lowering\n"
      "abort rates under contention; the gap grows with the CPU cost that\n"
      "two-sided messaging pays and one-sided writes avoid");

  std::printf("%-16s | %13s %10s | %13s %10s\n", "cpu cost", "MP abort", "MP lat",
              "RDMA abort", "RDMA lat");
  for (Duration c : {0u, 1u, 2u, 4u, 8u}) {
    OpenLoopResult mp = mp_run(c);
    OpenLoopResult rd = rdma_run(c);
    std::printf("%-16llu | %12.1f%% %10.1f | %12.1f%% %10.1f\n",
                (unsigned long long)c, 100 * mp.abort_rate, mp.mean_latency,
                100 * rd.abort_rate, rd.mean_latency);
  }
  std::printf("\n(2 objects read-modify-write per txn over %llu objects; one arrival\n"
              " every %llu ticks; latency in ticks)\n",
              (unsigned long long)kObjects, (unsigned long long)kArrivalEvery);

  bench::header("E9b", "2PC poisoning: abort rate after a coordinator crash");
  bench::claim(
      "a crashed 2PC coordinator strands prepared witnesses that abort every\n"
      "conflicting transaction forever; cooperative termination resolves the\n"
      "in-doubt transactions whose peers decided and releases their objects");
  std::printf("%-24s | %10s %10s %10s\n", "baseline variant", "abort", "undecided",
              "committed");
  CrashRunResult classical = baseline_crash_run(false);
  CrashRunResult coop = baseline_crash_run(true);
  std::printf("%-24s | %9.1f%% %10zu %10zu\n", "classical 2PC",
              100 * classical.abort_rate, classical.undecided, classical.committed);
  std::printf("%-24s | %9.1f%% %10zu %10zu\n", "cooperative termination",
              100 * coop.abort_rate, coop.undecided, coop.committed);
  std::printf("\n(same open-loop workload; past txn %d each shard's leader is crashed\n"
              " 4 ticks after the first arrival it coordinates — mid decision window —\n"
              " with failover to a survivor; undecided = blocked forever)\n",
              kTxns / 3);
  return 0;
}
