#include "bench/bench_report.h"

#include <cstdio>
#include <cstdlib>

namespace ratc::bench {

namespace {

std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 2);
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      case '\r': out += "\\r"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

std::string json_number(double v) {
  // %.6g keeps the output stable across runs and compact; JSON has no
  // inf/nan, so degenerate ratios serialize as 0.
  if (v != v || v > 1e308 || v < -1e308) return "0";
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.6g", v);
  return buf;
}

}  // namespace

BenchReport::Row& BenchReport::Row::set(const std::string& key,
                                        const std::string& value) {
  cells_.emplace_back(key, "\"" + json_escape(value) + "\"");
  return *this;
}

BenchReport::Row& BenchReport::Row::set(const std::string& key,
                                        const char* value) {
  return set(key, std::string(value));
}

BenchReport::Row& BenchReport::Row::set(const std::string& key, double value) {
  cells_.emplace_back(key, json_number(value));
  return *this;
}

BenchReport::Row& BenchReport::Row::set(const std::string& key,
                                        std::uint64_t value) {
  cells_.emplace_back(key, std::to_string(value));
  return *this;
}

BenchReport::Row& BenchReport::Row::set(const std::string& key,
                                        std::int64_t value) {
  cells_.emplace_back(key, std::to_string(value));
  return *this;
}

BenchReport::Row& BenchReport::Row::set(const std::string& key, bool value) {
  cells_.emplace_back(key, value ? "true" : "false");
  return *this;
}

std::string BenchReport::render() const {
  std::string out = "{\n  \"bench\": \"" + json_escape(name_) + "\",\n  \"rows\": [";
  for (std::size_t i = 0; i < rows_.size(); ++i) {
    out += i == 0 ? "\n" : ",\n";
    out += "    {";
    const auto& cells = rows_[i].cells_;
    for (std::size_t j = 0; j < cells.size(); ++j) {
      if (j != 0) out += ", ";
      out += "\"" + json_escape(cells[j].first) + "\": " + cells[j].second;
    }
    out += "}";
  }
  out += rows_.empty() ? "]\n}\n" : "\n  ]\n}\n";
  return out;
}

bool BenchReport::write() const {
  const char* dir = std::getenv("RATC_BENCH_JSON_DIR");
  std::string path = (dir != nullptr && *dir != '\0')
                         ? std::string(dir) + "/BENCH_" + name_ + ".json"
                         : "BENCH_" + name_ + ".json";
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "bench_report: cannot open %s\n", path.c_str());
    return false;
  }
  std::string doc = render();
  std::size_t written = std::fwrite(doc.data(), 1, doc.size(), f);
  std::fclose(f);
  if (written != doc.size()) {
    std::fprintf(stderr, "bench_report: short write to %s\n", path.c_str());
    return false;
  }
  std::printf("wrote %s (%zu rows)\n", path.c_str(), rows_.size());
  return true;
}

BenchReport::Row& fill_runner_row(BenchReport::Row& row,
                                  const std::string& stack,
                                  std::uint32_t shards, std::size_t batch_size,
                                  std::size_t window,
                                  const store::RunnerStats& stats) {
  return row.set("stack", stack)
      .set("shards", static_cast<std::uint64_t>(shards))
      .set("batch_size", batch_size)
      .set("window", window)
      .set("txns", stats.submitted)
      .set("throughput", stats.throughput())
      .set("mean_latency", stats.mean_latency())
      .set("p50_latency", static_cast<std::uint64_t>(stats.p50_latency()))
      .set("p99_latency", static_cast<std::uint64_t>(stats.p99_latency()))
      .set("committed", stats.committed)
      .set("aborted", stats.aborted)
      .set("latency_censored", stats.latency_censored())
      .set("committed_fraction", stats.committed_fraction());
}

std::size_t bench_txns(std::size_t default_txns) {
  const char* env = std::getenv("RATC_BENCH_TXNS");
  if (env == nullptr || *env == '\0') return default_txns;
  long n = std::atol(env);
  return n > 0 ? static_cast<std::size_t>(n) : default_txns;
}

}  // namespace ratc::bench
