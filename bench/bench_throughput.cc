// E11: throughput scaling with the number of shards — the motivation for
// partitioning data into independently managed shards (paper Sec. 1).
//
// Single-shard transactions scale near-linearly with shards (independent
// certification orders + coordinator-delegated replication); cross-shard
// transactions pay coordination but still scale.  The 2f+1 baseline's
// leaders saturate earlier at equal offered load.
#include <cstdio>

#include "bench/bench_common.h"

using namespace ratc;

namespace {

constexpr std::size_t kTxns = 800;

store::WorkloadOptions workload_for(std::uint32_t shards) {
  return {.objects = 400 * shards, .ops_per_txn = 3, .write_fraction = 0.5};
}

store::RunnerStats run_ours(std::uint32_t shards, std::size_t window) {
  bench::CommitRig rig({.seed = 17, .num_shards = shards, .shard_size = 2,
                        .enable_monitor = false},
                       workload_for(shards), 3, window);
  return rig.run(kTxns);
}

store::RunnerStats run_baseline(std::uint32_t shards, std::size_t window,
                                bool cooperative_termination) {
  bench::BaselineRig rig({.seed = 18, .num_shards = shards, .shard_size = 3,
                          .cooperative_termination = cooperative_termination},
                         workload_for(shards), 3, window);
  return rig.run(kTxns);
}

}  // namespace

int main() {
  bench::header("E11", "throughput scaling with shard count (committed txns / 1000 ticks)");
  bench::claim(
      "sharding scales certification; the f+1 protocol sustains higher\n"
      "throughput than 2f+1 Paxos at equal offered load (window = 32) —\n"
      "and bolting cooperative termination onto the baseline costs nothing\n"
      "in failure-free runs (the fix only speaks when coordinators die)");

  std::printf("%8s | %22s | %22s | %22s\n", "", "this work (MP, f=1)",
              "baseline (2f+1)", "baseline + coop term");
  std::printf("%8s | %10s %11s | %10s %11s | %10s %11s\n", "shards", "tput",
              "mean lat", "tput", "mean lat", "tput", "mean lat");
  for (std::uint32_t shards : {1u, 2u, 4u, 8u}) {
    store::RunnerStats ours = run_ours(shards, 32);
    store::RunnerStats base = run_baseline(shards, 32, false);
    store::RunnerStats coop = run_baseline(shards, 32, true);
    std::printf("%8u | %10.1f %11.1f | %10.1f %11.1f | %10.1f %11.1f\n", shards,
                ours.throughput(), ours.mean_latency(), base.throughput(),
                base.mean_latency(), coop.throughput(), coop.mean_latency());
  }
  std::printf("\nwindow sweep at 4 shards (this work):\n");
  std::printf("%10s %12s %12s\n", "window", "tput", "mean lat");
  for (std::size_t w : {4u, 16u, 64u, 256u}) {
    store::RunnerStats s = run_ours(4, w);
    std::printf("%10zu %12.1f %12.1f\n", w, s.throughput(), s.mean_latency());
  }
  return 0;
}
