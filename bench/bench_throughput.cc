// E11: throughput scaling with the number of shards — the motivation for
// partitioning data into independently managed shards (paper Sec. 1) —
// plus the certification batch-size sweep: requirement (1)'s distributive
// vote lets a coordinator certify a whole batch in one PREPARE round per
// shard leader (and the baseline in one Paxos append per shard), so
// batching amortizes the protocol's fixed per-round cost at the price of
// per-transaction latency.
//
// Single-shard transactions scale near-linearly with shards (independent
// certification orders + coordinator-delegated replication); cross-shard
// transactions pay coordination but still scale.  The 2f+1 baseline's
// leaders saturate earlier at equal offered load.
//
// The read-mix section exercises the CSN snapshot-read fast path: a 95/5
// read-heavy phase per stack in which every read-only transaction is
// resolved locally at a consistent snapshot.  The binary ASSERTS that the
// message trace grows by zero entries during the read phase — no CERTIFY,
// no PREPARE, nothing on the wire — and exits nonzero otherwise.
//
// Results are persisted to BENCH_throughput.json and BENCH_readmix.json
// (bench/bench_report.h); RATC_BENCH_TXNS trims the per-cell transaction
// count for smoke runs.
#include <algorithm>
#include <cstdio>

#include "bench/bench_common.h"
#include "bench/bench_report.h"
#include "common/random.h"

using namespace ratc;

namespace {

std::size_t txns() { return bench::bench_txns(800); }

store::WorkloadOptions workload_for(std::uint32_t shards) {
  return {.objects = 400 * shards, .ops_per_txn = 3, .write_fraction = 0.5};
}

store::RunnerStats run_ours(std::uint32_t shards, std::size_t window,
                            std::size_t batch = 1) {
  bench::CommitRig rig({.seed = 17, .num_shards = shards, .shard_size = 2,
                        .enable_monitor = false},
                       workload_for(shards), 3, window, batch);
  return rig.run(txns());
}

store::RunnerStats run_rdma(std::uint32_t shards, std::size_t window,
                            std::size_t batch = 1) {
  bench::RdmaRig rig({.seed = 19, .num_shards = shards, .shard_size = 2},
                     workload_for(shards), 3, window, batch);
  return rig.run(txns());
}

store::RunnerStats run_baseline(std::uint32_t shards, std::size_t window,
                                bool cooperative_termination,
                                std::size_t batch = 1) {
  bench::BaselineRig rig({.seed = 18, .num_shards = shards, .shard_size = 3,
                          .cooperative_termination = cooperative_termination},
                         workload_for(shards), 3, window, batch);
  return rig.run(txns());
}

}  // namespace

int main() {
  bench::BenchReport report("throughput");

  bench::header("E11", "throughput scaling with shard count (committed txns / 1000 ticks)");
  bench::claim(
      "sharding scales certification; the f+1 protocol sustains higher\n"
      "throughput than 2f+1 Paxos at equal offered load (window = 32) —\n"
      "and bolting cooperative termination onto the baseline costs nothing\n"
      "in failure-free runs (the fix only speaks when coordinators die)");

  std::printf("%8s | %22s | %22s | %22s\n", "", "this work (MP, f=1)",
              "baseline (2f+1)", "baseline + coop term");
  std::printf("%8s | %10s %11s | %10s %11s | %10s %11s\n", "shards", "tput",
              "mean lat", "tput", "mean lat", "tput", "mean lat");
  for (std::uint32_t shards : {1u, 2u, 4u, 8u}) {
    store::RunnerStats ours = run_ours(shards, 32);
    store::RunnerStats base = run_baseline(shards, 32, false);
    store::RunnerStats coop = run_baseline(shards, 32, true);
    std::printf("%8u | %10.1f %11.1f | %10.1f %11.1f | %10.1f %11.1f\n", shards,
                ours.throughput(), ours.mean_latency(), base.throughput(),
                base.mean_latency(), coop.throughput(), coop.mean_latency());
    bench::fill_runner_row(report.add_row(), "commit", shards, 1, 32, ours)
        .set("sweep", "shards");
    bench::fill_runner_row(report.add_row(), "baseline", shards, 1, 32, base)
        .set("sweep", "shards");
    bench::fill_runner_row(report.add_row(), "baseline-coop", shards, 1, 32, coop)
        .set("sweep", "shards");
  }

  std::printf("\nwindow sweep at 4 shards (this work):\n");
  std::printf("%10s %12s %12s\n", "window", "tput", "mean lat");
  for (std::size_t w : {4u, 16u, 64u, 256u}) {
    store::RunnerStats s = run_ours(4, w);
    std::printf("%10zu %12.1f %12.1f\n", w, s.throughput(), s.mean_latency());
    bench::fill_runner_row(report.add_row(), "commit", 4, 1, w, s)
        .set("sweep", "window");
  }

  // Batch-size sweep: one certification round per coordinator per batch.
  // The window is held at 256 so the batcher can actually fill large
  // batches; batch 1 is the scalar path (bit-identical to the pre-batching
  // runner) and anchors the comparison.
  std::printf(
      "\nbatch-size sweep at 4 shards, window 256 (one CERTIFY round per "
      "batch):\n");
  std::printf("%10s | %9s | %10s %8s %8s %8s | %9s\n", "stack", "batch",
              "tput", "mean", "p50", "p99", "committed");
  for (std::size_t batch : {1u, 4u, 16u, 64u}) {
    struct NamedRun {
      const char* stack;
      store::RunnerStats stats;
    };
    NamedRun runs[] = {{"commit", run_ours(4, 256, batch)},
                       {"rdma", run_rdma(4, 256, batch)},
                       {"baseline", run_baseline(4, 256, false, batch)}};
    for (const NamedRun& r : runs) {
      std::printf("%10s | %9zu | %10.1f %8.1f %8llu %8llu | %8.1f%%\n",
                  r.stack, batch, r.stats.throughput(), r.stats.mean_latency(),
                  static_cast<unsigned long long>(r.stats.p50_latency()),
                  static_cast<unsigned long long>(r.stats.p99_latency()),
                  100.0 * r.stats.committed_fraction());
      bench::fill_runner_row(report.add_row(), r.stack, 4, batch, 256, r.stats)
          .set("sweep", "batch_size");
    }
  }

  report.write();

  // Read-mix 95/5: after an update phase, each stack serves 19 read-only
  // snapshot transactions per decided update (the 95/5 mix) through its
  // TcsFrontend.  Reads resolve against the replicas' multi-version stores
  // below the CSN watermark, so the trace delta across the whole read
  // phase must be exactly zero messages.  The reconfigurable stacks rotate
  // the serving member (follower reads); the baseline serves only at
  // caught-up Paxos leaders.
  bench::BenchReport readmix("readmix");
  bench::header("E12", "read-mix 95/5: CSN snapshot reads, zero messages");
  bench::claim(
      "read-only transactions execute at a consistent snapshot on any\n"
      "replica with ZERO certification messages — the read phase leaves\n"
      "the wire untouched on all three stacks");
  std::printf("%10s | %9s %9s %9s %8s | %13s\n", "stack", "updates", "reads",
              "served", "served%", "msgs in reads");
  bool wire_silent = true;
  auto read_phase = [&](const char* stack, auto& rig,
                        const store::RunnerStats& updates) {
    Rng rng(23);
    const std::size_t objects = workload_for(4).objects;
    std::size_t decided = updates.committed + updates.aborted;
    std::size_t attempts = 19 * decided;
    std::size_t before = rig.cluster.tracer().entries().size();
    std::size_t served = 0;
    for (std::size_t i = 0; i < attempts; ++i) {
      std::vector<ObjectId> objs;
      std::uint64_t n = 1 + rng.below(3);
      for (std::uint64_t j = 0; j < n; ++j) {
        ObjectId o = static_cast<ObjectId>(rng.below(objects));
        if (std::find(objs.begin(), objs.end(), o) == objs.end())
          objs.push_back(o);
      }
      if (rig.frontend.submit_read_only(objs).has_value()) ++served;
    }
    std::size_t msgs = rig.cluster.tracer().entries().size() - before;
    if (msgs != 0) wire_silent = false;
    std::printf("%10s | %9zu %9zu %9zu %7.1f%% | %13zu%s\n", stack, decided,
                attempts, served,
                attempts == 0 ? 0.0 : 100.0 * served / attempts, msgs,
                msgs == 0 ? "" : "  <-- FAIL");
    readmix.add_row()
        .set("stack", stack)
        .set("shards", std::uint64_t{4})
        .set("updates_decided", std::uint64_t{decided})
        .set("reads_attempted", std::uint64_t{attempts})
        .set("reads_served", std::uint64_t{served})
        .set("served_fraction",
             attempts == 0 ? 0.0 : static_cast<double>(served) / attempts)
        .set("read_messages", std::uint64_t{msgs});
  };
  // enable_tracer: the zero-message claim is checked against the trace.
  {
    bench::CommitRig rig({.seed = 17, .num_shards = 4, .shard_size = 2,
                          .enable_monitor = false, .enable_tracer = true},
                         workload_for(4), 3, 32);
    store::RunnerStats updates = rig.run(txns());
    read_phase("commit", rig, updates);
  }
  {
    bench::RdmaRig rig({.seed = 19, .num_shards = 4, .shard_size = 2,
                        .enable_tracer = true},
                       workload_for(4), 3, 32);
    store::RunnerStats updates = rig.run(txns());
    read_phase("rdma", rig, updates);
  }
  {
    bench::BaselineRig rig({.seed = 18, .num_shards = 4, .shard_size = 3,
                            .enable_tracer = true},
                           workload_for(4), 3, 32);
    store::RunnerStats updates = rig.run(txns());
    read_phase("baseline", rig, updates);
  }
  readmix.write();
  if (!wire_silent) {
    std::fprintf(stderr,
                 "FAIL: snapshot reads put messages on the wire — the "
                 "zero-certification fast path regressed\n");
    return 1;
  }
  return 0;
}
