// E11: throughput scaling with the number of shards — the motivation for
// partitioning data into independently managed shards (paper Sec. 1) —
// plus the certification batch-size sweep: requirement (1)'s distributive
// vote lets a coordinator certify a whole batch in one PREPARE round per
// shard leader (and the baseline in one Paxos append per shard), so
// batching amortizes the protocol's fixed per-round cost at the price of
// per-transaction latency.
//
// Single-shard transactions scale near-linearly with shards (independent
// certification orders + coordinator-delegated replication); cross-shard
// transactions pay coordination but still scale.  The 2f+1 baseline's
// leaders saturate earlier at equal offered load.
//
// The read-mix section exercises the CSN snapshot-read fast path: a 95/5
// read-heavy phase per stack in which every read-only transaction is
// resolved locally at a consistent snapshot.  The binary ASSERTS that the
// message trace grows by zero entries during the read phase — no CERTIFY,
// no PREPARE, nothing on the wire — and exits nonzero otherwise.
//
// The ladder section (E13) runs the full strawman ladder — classical 2PC,
// 2PC + cooperative termination, Paxos Commit, and the paper protocol —
// through an identical coordinator-crash strike schedule and reports
// messages/txn, p50/p99 commit latency, committed fraction and blocked
// termination rounds per rung.
//
// Results are persisted to BENCH_throughput.json, BENCH_ladder.json and
// BENCH_readmix.json (bench/bench_report.h); RATC_BENCH_TXNS trims the
// per-cell transaction count for smoke runs.
#include <algorithm>
#include <cstdio>
#include <map>
#include <vector>

#include "bench/bench_common.h"
#include "bench/bench_report.h"
#include "common/random.h"

using namespace ratc;

namespace {

std::size_t txns() { return bench::bench_txns(800); }

store::WorkloadOptions workload_for(std::uint32_t shards) {
  return {.objects = 400 * shards, .ops_per_txn = 3, .write_fraction = 0.5};
}

store::RunnerStats run_ours(std::uint32_t shards, std::size_t window,
                            std::size_t batch = 1) {
  bench::CommitRig rig({.seed = 17, .num_shards = shards, .shard_size = 2,
                        .enable_monitor = false},
                       workload_for(shards), 3, window, batch);
  return rig.run(txns());
}

store::RunnerStats run_rdma(std::uint32_t shards, std::size_t window,
                            std::size_t batch = 1) {
  bench::RdmaRig rig({.seed = 19, .num_shards = shards, .shard_size = 2},
                     workload_for(shards), 3, window, batch);
  return rig.run(txns());
}

store::RunnerStats run_baseline(std::uint32_t shards, std::size_t window,
                                bool cooperative_termination,
                                std::size_t batch = 1) {
  bench::BaselineRig rig({.seed = 18, .num_shards = shards, .shard_size = 3,
                          .cooperative_termination = cooperative_termination},
                         workload_for(shards), 3, window, batch);
  return rig.run(txns());
}

store::RunnerStats run_pc(std::uint32_t shards, std::size_t window,
                          std::size_t batch = 1) {
  bench::PcRig rig({.seed = 20, .num_shards = shards, .shard_size = 3},
                   workload_for(shards), 3, window, batch);
  return rig.run(txns());
}

}  // namespace

int main() {
  bench::BenchReport report("throughput");

  bench::header("E11", "throughput scaling with shard count (committed txns / 1000 ticks)");
  bench::claim(
      "sharding scales certification; the f+1 protocol sustains higher\n"
      "throughput than 2f+1 Paxos at equal offered load (window = 32) —\n"
      "and bolting cooperative termination onto the baseline costs nothing\n"
      "in failure-free runs (the fix only speaks when coordinators die)");

  std::printf("%8s | %22s | %22s | %22s | %22s\n", "", "this work (MP, f=1)",
              "baseline (2f+1)", "baseline + coop term", "paxos commit (2f+1)");
  std::printf("%8s | %10s %11s | %10s %11s | %10s %11s | %10s %11s\n", "shards",
              "tput", "mean lat", "tput", "mean lat", "tput", "mean lat", "tput",
              "mean lat");
  for (std::uint32_t shards : {1u, 2u, 4u, 8u}) {
    store::RunnerStats ours = run_ours(shards, 32);
    store::RunnerStats base = run_baseline(shards, 32, false);
    store::RunnerStats coop = run_baseline(shards, 32, true);
    store::RunnerStats paxc = run_pc(shards, 32);
    std::printf(
        "%8u | %10.1f %11.1f | %10.1f %11.1f | %10.1f %11.1f | %10.1f %11.1f\n",
        shards, ours.throughput(), ours.mean_latency(), base.throughput(),
        base.mean_latency(), coop.throughput(), coop.mean_latency(),
        paxc.throughput(), paxc.mean_latency());
    bench::fill_runner_row(report.add_row(), "commit", shards, 1, 32, ours)
        .set("sweep", "shards");
    bench::fill_runner_row(report.add_row(), "baseline", shards, 1, 32, base)
        .set("sweep", "shards");
    bench::fill_runner_row(report.add_row(), "baseline-coop", shards, 1, 32, coop)
        .set("sweep", "shards");
    bench::fill_runner_row(report.add_row(), "paxos-commit", shards, 1, 32, paxc)
        .set("sweep", "shards");
  }

  std::printf("\nwindow sweep at 4 shards (this work):\n");
  std::printf("%10s %12s %12s\n", "window", "tput", "mean lat");
  for (std::size_t w : {4u, 16u, 64u, 256u}) {
    store::RunnerStats s = run_ours(4, w);
    std::printf("%10zu %12.1f %12.1f\n", w, s.throughput(), s.mean_latency());
    bench::fill_runner_row(report.add_row(), "commit", 4, 1, w, s)
        .set("sweep", "window");
  }

  // Batch-size sweep: one certification round per coordinator per batch.
  // The window is held at 256 so the batcher can actually fill large
  // batches; batch 1 is the scalar path (bit-identical to the pre-batching
  // runner) and anchors the comparison.
  std::printf(
      "\nbatch-size sweep at 4 shards, window 256 (one CERTIFY round per "
      "batch):\n");
  std::printf("%10s | %9s | %10s %8s %8s %8s | %9s\n", "stack", "batch",
              "tput", "mean", "p50", "p99", "committed");
  for (std::size_t batch : {1u, 4u, 16u, 64u}) {
    struct NamedRun {
      const char* stack;
      store::RunnerStats stats;
    };
    NamedRun runs[] = {{"commit", run_ours(4, 256, batch)},
                       {"rdma", run_rdma(4, 256, batch)},
                       {"baseline", run_baseline(4, 256, false, batch)}};
    for (const NamedRun& r : runs) {
      std::printf("%10s | %9zu | %10.1f %8.1f %8llu %8llu | %8.1f%%\n",
                  r.stack, batch, r.stats.throughput(), r.stats.mean_latency(),
                  static_cast<unsigned long long>(r.stats.p50_latency()),
                  static_cast<unsigned long long>(r.stats.p99_latency()),
                  100.0 * r.stats.committed_fraction());
      bench::fill_runner_row(report.add_row(), r.stack, 4, batch, 256, r.stats)
          .set("sweep", "batch_size");
    }
  }

  report.write();

  // E13: the strawman ladder under coordinator-crash strikes.  All four
  // rungs run the identical workload — cross-shard transactions over two
  // shards on disjoint objects, one submission every 4 ticks — and take the
  // identical strike schedule: at 1/4, 2/4 and 3/4 of the run the
  // coordinating shard's leader is crashed mid-protocol and a survivor
  // takes over (the reconfigurable stack crashes a member and reconfigures
  // onto a spare, its own repair lever).  Groups are sized to tolerate the
  // strikes: 2f+1 = 5 for the consensus-per-shard rungs, f+1 = 3 plus two
  // spares for the paper protocol.
  bench::BenchReport ladder("ladder");
  bench::header("E13",
                "the strawman ladder under coordinator-crash strikes");
  bench::claim(
      "classical 2PC strands fully-prepared transactions when the\n"
      "coordinator dies; cooperative termination recovers all but the\n"
      "all-prepared window; Paxos Commit replicates the votes and never\n"
      "blocks; the paper protocol keeps non-blocking termination at f+1\n"
      "replicas");

  struct LadderCell {
    double msgs_per_txn = 0;
    Duration p50 = 0;
    Duration p99 = 0;
    double committed = 0;
    double decided = 0;
    std::uint64_t blocked = 0;
  };
  const std::size_t ladder_txns = std::max<std::size_t>(40, txns() / 4);
  auto drive = [ladder_txns](auto& cluster, store::TcsFrontend& frontend,
                             auto strike) {
    LadderCell cell;
    std::map<TxnId, Time> sent;
    std::vector<Duration> latencies;
    std::size_t committed = 0;
    frontend.on_decision = [&](TxnId txn, tcs::Decision d) {
      auto it = sent.find(txn);
      if (it == sent.end()) return;
      latencies.push_back(cluster.sim().now() - it->second);
      if (d == tcs::Decision::kCommit) ++committed;
    };
    // Bursts of 8 keep several transactions in flight at once, so a strike
    // catches them in mixed 2PC stages — some all-prepared (nobody but a
    // vote-replicating stack can save those), some prepared at only one
    // shard (cooperative termination's bread and butter).
    const std::size_t kBurst = 8;
    const std::size_t bursts = (ladder_txns + kBurst - 1) / kBurst;
    const std::size_t q = bursts / 4;
    std::size_t submitted = 0;
    for (std::size_t b = 0; b < bursts; ++b) {
      for (std::size_t j = 0; j < kBurst && submitted < ladder_txns; ++j) {
        const std::size_t i = submitted++;
        tcs::Payload p = bench::payload_on(
            {static_cast<ObjectId>(2 * i), static_cast<ObjectId>(2 * i + 1)},
            {static_cast<ObjectId>(2 * i)});
        TxnId txn = frontend.next_txn_id();
        sent[txn] = cluster.sim().now();
        frontend.submit(txn, p);
        // One tick between submissions: at strike time the burst spans the
        // whole protocol — newest still un-prepared, oldest all-prepared.
        cluster.sim().run_until(cluster.sim().now() + 1);
      }
      if (b == q || b == 2 * q || b == 3 * q) {
        strike(static_cast<ShardId>(b == 2 * q ? 1 : 0));
      }
      cluster.sim().run_until(cluster.sim().now() + 12);
    }
    cluster.sim().run();  // drain: recovery machinery finishes the backlog
    cell.msgs_per_txn =
        static_cast<double>(cluster.net().total_messages()) / ladder_txns;
    std::sort(latencies.begin(), latencies.end());
    auto pct = [&latencies](double p) -> Duration {
      if (latencies.empty()) return 0;
      std::size_t rank = std::min(latencies.size() - 1,
                                  static_cast<std::size_t>(p * latencies.size()));
      return latencies[rank];
    };
    cell.p50 = pct(0.50);
    cell.p99 = pct(0.99);
    cell.committed = static_cast<double>(committed) / ladder_txns;
    cell.decided = static_cast<double>(latencies.size()) / ladder_txns;
    return cell;
  };
  // Crash the shard's leader and promote the first surviving member — the
  // strike shape all three consensus-per-shard rungs share.
  auto strike_leader = [](auto& cluster, ShardId s) {
    ProcessId lead = cluster.leader_server(s);
    if (cluster.sim().crashed(lead)) return;
    cluster.crash_server(lead);
    for (ProcessId m : cluster.shard_servers(s)) {
      if (!cluster.sim().crashed(m)) {
        cluster.elect_leader(s, m);
        break;
      }
    }
  };
  auto baseline_rung = [&](bool coop) {
    baseline::BaselineCluster cluster({.seed = 29, .num_shards = 2,
                                       .shard_size = 5,
                                       .cooperative_termination = coop});
    store::BaselineFrontend frontend(cluster);
    LadderCell cell = drive(cluster, frontend, [&](ShardId s) {
      strike_leader(cluster, s);
    });
    cell.blocked = cluster.termination_stats().blocked;
    return cell;
  };
  auto pc_rung = [&] {
    pc::PcCluster cluster({.seed = 29, .num_shards = 2, .shard_size = 5});
    store::PaxosCommitFrontend frontend(cluster);
    LadderCell cell = drive(cluster, frontend, [&](ShardId s) {
      strike_leader(cluster, s);
    });
    cell.blocked = cluster.termination_stats().blocked;
    return cell;
  };
  auto commit_rung = [&] {
    commit::Cluster cluster({.seed = 29, .num_shards = 2, .shard_size = 3,
                             .spares_per_shard = 2, .enable_monitor = false});
    store::CommitFrontend frontend(cluster);
    LadderCell cell = drive(cluster, frontend, [&](ShardId s) {
      configsvc::ShardConfig cfg = cluster.current_config(s);
      ProcessId victim = kNoProcess;
      ProcessId healer = kNoProcess;
      for (ProcessId m : cfg.members) {
        if (cluster.sim().crashed(m)) continue;
        if (victim == kNoProcess) {
          victim = m;
        } else {
          healer = m;
          break;
        }
      }
      if (victim == kNoProcess || healer == kNoProcess) return;
      cluster.crash(victim);
      cluster.reconfigure(s, healer);
    });
    // No vote-query machinery to give up: reconfiguration is the recovery
    // path, and stranded submissions surface as undecided, not blocked.
    cell.blocked = 0;
    return cell;
  };

  std::printf("%14s | %9s %6s %6s | %10s %9s | %8s\n", "stack", "msgs/txn",
              "p50", "p99", "committed", "decided", "blocked");
  struct NamedCell {
    const char* stack;
    LadderCell cell;
  };
  NamedCell cells[] = {{"baseline-2pc", baseline_rung(false)},
                       {"baseline-coop", baseline_rung(true)},
                       {"paxos-commit", pc_rung()},
                       {"commit", commit_rung()}};
  for (const NamedCell& c : cells) {
    std::printf("%14s | %9.1f %6llu %6llu | %9.1f%% %8.1f%% | %8llu\n",
                c.stack, c.cell.msgs_per_txn,
                static_cast<unsigned long long>(c.cell.p50),
                static_cast<unsigned long long>(c.cell.p99),
                100.0 * c.cell.committed, 100.0 * c.cell.decided,
                static_cast<unsigned long long>(c.cell.blocked));
    ladder.add_row()
        .set("stack", c.stack)
        .set("txns", static_cast<std::uint64_t>(ladder_txns))
        .set("strikes", std::uint64_t{3})
        .set("msgs_per_txn", c.cell.msgs_per_txn)
        .set("p50_latency", static_cast<std::uint64_t>(c.cell.p50))
        .set("p99_latency", static_cast<std::uint64_t>(c.cell.p99))
        .set("committed_fraction", c.cell.committed)
        .set("decided_fraction", c.cell.decided)
        .set("term_blocked", c.cell.blocked);
  }
  ladder.write();

  // Read-mix 95/5: after an update phase, each stack serves 19 read-only
  // snapshot transactions per decided update (the 95/5 mix) through its
  // TcsFrontend.  Reads resolve against the replicas' multi-version stores
  // below the CSN watermark, so the trace delta across the whole read
  // phase must be exactly zero messages.  The reconfigurable stacks rotate
  // the serving member (follower reads); the baseline serves only at
  // caught-up Paxos leaders.
  bench::BenchReport readmix("readmix");
  bench::header("E12", "read-mix 95/5: CSN snapshot reads, zero messages");
  bench::claim(
      "read-only transactions execute at a consistent snapshot on any\n"
      "replica with ZERO certification messages — the read phase leaves\n"
      "the wire untouched on all three stacks");
  std::printf("%10s | %9s %9s %9s %8s | %13s\n", "stack", "updates", "reads",
              "served", "served%", "msgs in reads");
  bool wire_silent = true;
  auto read_phase = [&](const char* stack, auto& rig,
                        const store::RunnerStats& updates) {
    Rng rng(23);
    const std::size_t objects = workload_for(4).objects;
    std::size_t decided = updates.committed + updates.aborted;
    std::size_t attempts = 19 * decided;
    std::size_t before = rig.cluster.tracer().entries().size();
    std::size_t served = 0;
    for (std::size_t i = 0; i < attempts; ++i) {
      std::vector<ObjectId> objs;
      std::uint64_t n = 1 + rng.below(3);
      for (std::uint64_t j = 0; j < n; ++j) {
        ObjectId o = static_cast<ObjectId>(rng.below(objects));
        if (std::find(objs.begin(), objs.end(), o) == objs.end())
          objs.push_back(o);
      }
      if (rig.frontend.submit_read_only(objs).has_value()) ++served;
    }
    std::size_t msgs = rig.cluster.tracer().entries().size() - before;
    if (msgs != 0) wire_silent = false;
    std::printf("%10s | %9zu %9zu %9zu %7.1f%% | %13zu%s\n", stack, decided,
                attempts, served,
                attempts == 0 ? 0.0 : 100.0 * served / attempts, msgs,
                msgs == 0 ? "" : "  <-- FAIL");
    readmix.add_row()
        .set("stack", stack)
        .set("shards", std::uint64_t{4})
        .set("updates_decided", std::uint64_t{decided})
        .set("reads_attempted", std::uint64_t{attempts})
        .set("reads_served", std::uint64_t{served})
        .set("served_fraction",
             attempts == 0 ? 0.0 : static_cast<double>(served) / attempts)
        .set("read_messages", std::uint64_t{msgs});
  };
  // enable_tracer: the zero-message claim is checked against the trace.
  {
    bench::CommitRig rig({.seed = 17, .num_shards = 4, .shard_size = 2,
                          .enable_monitor = false, .enable_tracer = true},
                         workload_for(4), 3, 32);
    store::RunnerStats updates = rig.run(txns());
    read_phase("commit", rig, updates);
  }
  {
    bench::RdmaRig rig({.seed = 19, .num_shards = 4, .shard_size = 2,
                        .enable_tracer = true},
                       workload_for(4), 3, 32);
    store::RunnerStats updates = rig.run(txns());
    read_phase("rdma", rig, updates);
  }
  {
    bench::BaselineRig rig({.seed = 18, .num_shards = 4, .shard_size = 3,
                            .enable_tracer = true},
                           workload_for(4), 3, 32);
    store::RunnerStats updates = rig.run(txns());
    read_phase("baseline", rig, updates);
  }
  readmix.write();
  if (!wire_silent) {
    std::fprintf(stderr,
                 "FAIL: snapshot reads put messages on the wire — the "
                 "zero-certification fast path regressed\n");
    return 1;
  }
  return 0;
}
