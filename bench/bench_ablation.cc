// E14 (ablation): coordinator-delegated vs leader-driven replication.
//
// The paper (Sec. 3) delegates the ACCEPT fan-out to transaction
// coordinators "since it minimizes the load on the leaders, which are the
// main potential performance bottleneck", citing Corfu and FARM.  The
// alternative — the leader ships ACCEPTs itself right after preparing — is
// one message delay FASTER but concentrates the replication fan-out on the
// leader.  This ablation quantifies that trade-off, which is exactly why
// the design choice exists (and why the paper accepts the resulting
// complications: certification-order holes and lost undecided
// transactions).
#include <cstdio>

#include "bench/bench_common.h"
#include "commit/cluster.h"

using namespace ratc;
using bench::payload_on;

namespace {

struct Result {
  Duration latency = 0;        // co-located client, message delays
  double leader_out = 0;       // messages sent by the leader per txn
  double leader_total = 0;     // in + out
};

Result measure(bool leader_ships, std::size_t shard_size) {
  commit::Cluster cluster({.seed = 1,
                           .num_shards = 1,
                           .shard_size = shard_size,
                           .leader_ships_accepts = leader_ships});
  commit::Client& client = cluster.add_client();
  const int kTxns = 200;
  TxnId last = 0;
  for (int i = 0; i < kTxns; ++i) {
    last = cluster.next_txn_id();
    client.certify_colocated(cluster.replica(0, 1), last,
                             payload_on({static_cast<ObjectId>(i)},
                                        {static_cast<ObjectId>(i)}));
  }
  cluster.sim().run();
  Result r;
  r.latency = *client.latency(last);
  const auto& t = cluster.net().traffic(cluster.leader_of(0));
  r.leader_out = static_cast<double>(t.msgs_sent) / kTxns;
  r.leader_total = static_cast<double>(t.msgs_sent + t.msgs_received) / kTxns;
  // Correctness must hold in both modes.
  std::string problems = cluster.verify();
  if (!problems.empty()) {
    std::printf("UNEXPECTED verification failure:\n%s", problems.c_str());
  }
  return r;
}

}  // namespace

int main() {
  bench::header("E14", "ablation: who ships the ACCEPTs (Sec. 3 design choice)");
  bench::claim(
      "delegating replication to coordinators costs 1 message delay but\n"
      "keeps the leader at 3 messages/txn regardless of the replication\n"
      "factor; leader-driven replication is faster but the leader's fan-out\n"
      "grows with f");

  std::printf("%-6s | %28s | %28s\n", "", "coordinator-delegated (paper)",
              "leader-driven (ablation)");
  std::printf("%-6s | %8s %9s %9s | %8s %9s %9s\n", "f+1", "latency", "ldr out",
              "ldr tot", "latency", "ldr out", "ldr tot");
  for (std::size_t n : {2u, 3u, 5u, 9u}) {
    Result paper = measure(false, n);
    Result ablation = measure(true, n);
    std::printf("%-6zu | %8llu %9.2f %9.2f | %8llu %9.2f %9.2f\n", n,
                (unsigned long long)paper.latency, paper.leader_out,
                paper.leader_total, (unsigned long long)ablation.latency,
                ablation.leader_out, ablation.leader_total);
  }
  std::printf("\n(single shard; leader-driven latency is 1 delay lower, but its\n"
              " leader send-load grows ~f per transaction while the paper's stays 1)\n");
  return 0;
}
