// Shared helpers for the experiment binaries.  Each bench names its
// experiment (E1-E14) in its header comment and prints the paper claim it
// exercises; ROADMAP.md carries the experiment roadmap, and the benches
// that persist results write BENCH_<name>.json via bench/bench_report.h
// (schema documented in tests/README.md).
#pragma once

#include <cstdio>
#include <string>
#include <vector>

#include "common/types.h"
#include "store/frontends.h"
#include "store/runner.h"
#include "store/workload.h"
#include "tcs/payload.h"

namespace ratc::bench {

/// One fully wired closed-loop experiment: cluster + TcsFrontend + store +
/// workload generator + WorkloadRunner.  Every closed-loop bench used to
/// repeat this five-object dance per stack; instantiate a Rig instead.
/// FrontendT must be constructible from ClusterT& (see store/frontends.h).
/// Not movable: the runner's payload callback captures `this`.
template <typename ClusterT, typename FrontendT>
class Rig {
 public:
  /// `batch_size` groups submissions into batched certification rounds
  /// (1 = scalar submission; see store::WorkloadRunner).
  Rig(typename ClusterT::Options cluster_options,
      store::WorkloadOptions workload_options, std::uint64_t workload_seed,
      std::size_t window = 8, std::size_t batch_size = 1)
      : cluster(std::move(cluster_options)),
        frontend(cluster),
        gen(workload_options, workload_seed),
        runner(
            cluster.sim(), frontend, db,
            [this](const store::VersionedStore& d) { return gen.next(d); },
            window, batch_size) {}

  Rig(const Rig&) = delete;
  Rig& operator=(const Rig&) = delete;

  store::RunnerStats run(std::size_t txns) { return runner.run(txns); }

  ClusterT cluster;
  FrontendT frontend;
  store::VersionedStore db;
  store::WorkloadGenerator gen;
  store::WorkloadRunner runner;
};

using CommitRig = Rig<commit::Cluster, store::CommitFrontend>;
using RdmaRig = Rig<rdma::Cluster, store::RdmaFrontend>;
using BaselineRig = Rig<baseline::BaselineCluster, store::BaselineFrontend>;
using PcRig = Rig<pc::PcCluster, store::PaxosCommitFrontend>;

/// Payload reading (and optionally writing) one object per listed id.
inline tcs::Payload payload_on(std::vector<ObjectId> reads, std::vector<ObjectId> writes,
                               Version read_version = 0, Version commit_version = 1) {
  tcs::Payload p;
  for (ObjectId o : reads) p.reads.push_back({o, read_version});
  for (ObjectId o : writes) p.writes.push_back({o, static_cast<Value>(o)});
  p.commit_version = commit_version;
  return p;
}

inline void header(const std::string& id, const std::string& title) {
  std::printf("\n==============================================================\n");
  std::printf("%s  %s\n", id.c_str(), title.c_str());
  std::printf("==============================================================\n");
}

inline void claim(const std::string& text) {
  std::printf("paper claim: %s\n\n", text.c_str());
}

}  // namespace ratc::bench
