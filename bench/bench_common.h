// Shared helpers for the experiment binaries (see DESIGN.md Sec. 3 for the
// experiment index E1-E13 and EXPERIMENTS.md for recorded results).
#pragma once

#include <cstdio>
#include <string>
#include <vector>

#include "common/types.h"
#include "tcs/payload.h"

namespace ratc::bench {

/// Payload reading (and optionally writing) one object per listed id.
inline tcs::Payload payload_on(std::vector<ObjectId> reads, std::vector<ObjectId> writes,
                               Version read_version = 0, Version commit_version = 1) {
  tcs::Payload p;
  for (ObjectId o : reads) p.reads.push_back({o, read_version});
  for (ObjectId o : writes) p.writes.push_back({o, static_cast<Value>(o)});
  p.commit_version = commit_version;
  return p;
}

inline void header(const std::string& id, const std::string& title) {
  std::printf("\n==============================================================\n");
  std::printf("%s  %s\n", id.c_str(), title.c_str());
  std::printf("==============================================================\n");
}

inline void claim(const std::string& text) {
  std::printf("paper claim: %s\n\n", text.c_str());
}

}  // namespace ratc::bench
