// E4: replication cost — f+1 replicas per shard (this work) vs 2f+1
// (the vanilla scheme).
//
// Paper claim (Sec. 1): "if transaction data are written to all replicas of
// the shard, only f+1 replicas are needed for the data to survive
// failures"; using 2f+1 wastes messages and storage.  We measure messages
// and payload bytes shipped per committed transaction as f grows.
#include <cstdio>

#include "baseline/cluster.h"
#include "bench/bench_common.h"
#include "commit/cluster.h"

using namespace ratc;
using bench::payload_on;

namespace {

constexpr int kTxns = 300;

struct Cost {
  double msgs_per_txn = 0;
  double bytes_per_txn = 0;
  std::size_t replicas = 0;
};

Cost measure_ours(std::size_t f) {
  commit::Cluster cluster({.seed = 1, .num_shards = 2,
                           .shard_size = f + 1, .enable_monitor = false});
  commit::Client& client = cluster.add_client();
  for (int i = 0; i < kTxns; ++i) {
    client.certify_colocated(
        cluster.replica(0, 0), cluster.next_txn_id(),
        payload_on({static_cast<ObjectId>(2 * i), static_cast<ObjectId>(2 * i + 1)},
                   {static_cast<ObjectId>(2 * i)}));
  }
  cluster.sim().run();
  Cost c;
  c.replicas = 2 * (f + 1);
  c.msgs_per_txn = static_cast<double>(cluster.net().total_messages()) / kTxns;
  c.bytes_per_txn = static_cast<double>(cluster.net().total_bytes()) / kTxns;
  return c;
}

Cost measure_baseline(std::size_t f) {
  baseline::BaselineCluster cluster({.seed = 2, .num_shards = 2,
                                     .shard_size = 2 * f + 1});
  baseline::BaselineClient& client = cluster.add_client();
  for (int i = 0; i < kTxns; ++i) {
    tcs::Payload p =
        payload_on({static_cast<ObjectId>(2 * i), static_cast<ObjectId>(2 * i + 1)},
                   {static_cast<ObjectId>(2 * i)});
    client.certify(cluster.coordinator_for(p), cluster.next_txn_id(), p);
  }
  cluster.sim().run();
  Cost c;
  c.replicas = 2 * (2 * f + 1);
  c.msgs_per_txn = static_cast<double>(cluster.net().total_messages()) / kTxns;
  c.bytes_per_txn = static_cast<double>(cluster.net().total_bytes()) / kTxns;
  return c;
}

}  // namespace

int main() {
  bench::header("E4", "replication cost per committed transaction, f+1 vs 2f+1");
  bench::claim(
      "storing data at f+1 replicas + reconfiguration beats 2f+1 Paxos\n"
      "replication in replicas provisioned, messages and bytes shipped");

  std::printf("%3s | %28s | %28s\n", "", "this work (f+1 per shard)",
              "baseline (2f+1 per shard)");
  std::printf("%3s | %8s %9s %9s | %8s %9s %9s\n", "f", "replicas", "msgs/txn",
              "bytes/txn", "replicas", "msgs/txn", "bytes/txn");
  for (std::size_t f = 0; f <= 3; ++f) {
    Cost ours = measure_ours(f);
    // The baseline needs at least 1 replica; f=0 means a single unreplicated
    // process there too (degenerate but comparable).
    Cost base = measure_baseline(f);
    std::printf("%3zu | %8zu %9.1f %9.0f | %8zu %9.1f %9.0f\n", f, ours.replicas,
                ours.msgs_per_txn, ours.bytes_per_txn, base.replicas,
                base.msgs_per_txn, base.bytes_per_txn);
  }
  std::printf("\n(two shards; every transaction spans both; 2-object payloads)\n");
  return 0;
}
