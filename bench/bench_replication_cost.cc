// E4: replication cost — f+1 replicas per shard (this work) vs 2f+1
// (the vanilla scheme and Paxos Commit).
//
// Paper claim (Sec. 1): "if transaction data are written to all replicas of
// the shard, only f+1 replicas are needed for the data to survive
// failures"; using 2f+1 wastes messages and storage.  We measure messages
// and payload bytes shipped per committed transaction as f grows, across
// the paper protocol, the 2PC-over-Paxos baseline, and Paxos Commit (which
// buys non-blocking termination but still pays for 2f+1 vote replication).
//
// Results are persisted to BENCH_replication_cost.json
// (bench/bench_report.h); RATC_BENCH_TXNS trims the transaction count for
// smoke runs.
#include <cstdio>

#include "baseline/cluster.h"
#include "bench/bench_common.h"
#include "bench/bench_report.h"
#include "commit/cluster.h"
#include "pc/cluster.h"

using namespace ratc;
using bench::payload_on;

namespace {

std::size_t txns() { return bench::bench_txns(300); }

struct Cost {
  double msgs_per_txn = 0;
  double bytes_per_txn = 0;
  std::size_t replicas = 0;
};

Cost measure_ours(std::size_t f) {
  commit::Cluster cluster({.seed = 1, .num_shards = 2,
                           .shard_size = f + 1, .enable_monitor = false});
  commit::Client& client = cluster.add_client();
  const std::size_t n = txns();
  for (std::size_t i = 0; i < n; ++i) {
    client.certify_colocated(
        cluster.replica(0, 0), cluster.next_txn_id(),
        payload_on({static_cast<ObjectId>(2 * i), static_cast<ObjectId>(2 * i + 1)},
                   {static_cast<ObjectId>(2 * i)}));
  }
  cluster.sim().run();
  Cost c;
  c.replicas = 2 * (f + 1);
  c.msgs_per_txn = static_cast<double>(cluster.net().total_messages()) / n;
  c.bytes_per_txn = static_cast<double>(cluster.net().total_bytes()) / n;
  return c;
}

Cost measure_baseline(std::size_t f) {
  baseline::BaselineCluster cluster({.seed = 2, .num_shards = 2,
                                     .shard_size = 2 * f + 1});
  baseline::BaselineClient& client = cluster.add_client();
  const std::size_t n = txns();
  for (std::size_t i = 0; i < n; ++i) {
    tcs::Payload p =
        payload_on({static_cast<ObjectId>(2 * i), static_cast<ObjectId>(2 * i + 1)},
                   {static_cast<ObjectId>(2 * i)});
    client.certify(cluster.coordinator_for(p), cluster.next_txn_id(), p);
  }
  cluster.sim().run();
  Cost c;
  c.replicas = 2 * (2 * f + 1);
  c.msgs_per_txn = static_cast<double>(cluster.net().total_messages()) / n;
  c.bytes_per_txn = static_cast<double>(cluster.net().total_bytes()) / n;
  return c;
}

Cost measure_paxos_commit(std::size_t f) {
  pc::PcCluster cluster({.seed = 3, .num_shards = 2, .shard_size = 2 * f + 1});
  pc::PcClient& client = cluster.add_client();
  const std::size_t n = txns();
  for (std::size_t i = 0; i < n; ++i) {
    tcs::Payload p =
        payload_on({static_cast<ObjectId>(2 * i), static_cast<ObjectId>(2 * i + 1)},
                   {static_cast<ObjectId>(2 * i)});
    client.certify(cluster.coordinator_for(p), cluster.next_txn_id(), p);
  }
  cluster.sim().run();
  Cost c;
  c.replicas = 2 * (2 * f + 1);
  c.msgs_per_txn = static_cast<double>(cluster.net().total_messages()) / n;
  c.bytes_per_txn = static_cast<double>(cluster.net().total_bytes()) / n;
  return c;
}

void add_row(bench::BenchReport& report, std::size_t f, const char* stack,
             const Cost& c) {
  report.add_row()
      .set("f", static_cast<std::uint64_t>(f))
      .set("stack", stack)
      .set("replicas", static_cast<std::uint64_t>(c.replicas))
      .set("msgs_per_txn", c.msgs_per_txn)
      .set("bytes_per_txn", c.bytes_per_txn);
}

}  // namespace

int main() {
  bench::BenchReport report("replication_cost");
  bench::header("E4", "replication cost per committed transaction, f+1 vs 2f+1");
  bench::claim(
      "storing data at f+1 replicas + reconfiguration beats 2f+1 Paxos\n"
      "replication in replicas provisioned, messages and bytes shipped —\n"
      "Paxos Commit removes 2PC blocking but keeps the 2f+1 bill");

  std::printf("%3s | %28s | %28s | %28s\n", "", "this work (f+1 per shard)",
              "baseline (2f+1 per shard)", "paxos commit (2f+1)");
  std::printf("%3s | %8s %9s %9s | %8s %9s %9s | %8s %9s %9s\n", "f",
              "replicas", "msgs/txn", "bytes/txn", "replicas", "msgs/txn",
              "bytes/txn", "replicas", "msgs/txn", "bytes/txn");
  for (std::size_t f = 0; f <= 3; ++f) {
    Cost ours = measure_ours(f);
    // The baseline needs at least 1 replica; f=0 means a single unreplicated
    // process there too (degenerate but comparable).
    Cost base = measure_baseline(f);
    Cost paxc = measure_paxos_commit(f);
    std::printf("%3zu | %8zu %9.1f %9.0f | %8zu %9.1f %9.0f | %8zu %9.1f %9.0f\n",
                f, ours.replicas, ours.msgs_per_txn, ours.bytes_per_txn,
                base.replicas, base.msgs_per_txn, base.bytes_per_txn,
                paxc.replicas, paxc.msgs_per_txn, paxc.bytes_per_txn);
    add_row(report, f, "commit", ours);
    add_row(report, f, "baseline", base);
    add_row(report, f, "paxos-commit", paxc);
  }
  std::printf("\n(two shards; every transaction spans both; 2-object payloads)\n");
  report.write();
  return 0;
}
