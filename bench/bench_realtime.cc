// Real-time throughput of the commit stack on rt::ThreadedRuntime: the
// same replica/certifier/frontend code the simulator runs, measured in
// wall-clock transactions per second instead of virtual ticks.
//
// Sweeps worker threads (1/2/4/8) against the certification batch size:
// more workers spread shard leaders, followers and coordinators across
// cores; batching amortizes the per-round protocol cost exactly as in the
// virtual-time bench_throughput sweep.  Expected shape: txn/s grows
// monotonically 1 -> 4 threads and batching multiplies throughput at every
// thread count.
//
// Results go to BENCH_realtime.json.  Knobs:
//   RATC_BENCH_TXNS      total transactions per cell (default 20000)
//   RATC_RT_MAX_THREADS  truncates the thread sweep (CI smoke uses 2)
//   RATC_RT_CLIENTS      closed-loop clients (default 256)
//   RATC_RT_KEYSPACE     object universe (default 1<<20)
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <thread>
#include <vector>

#include "bench/bench_common.h"
#include "bench/bench_report.h"
#include "rt/commit_system.h"
#include "rt/loadgen.h"
#include "rt/threaded_runtime.h"

using namespace ratc;

namespace {

std::size_t env_or(const char* name, std::size_t fallback) {
  const char* v = std::getenv(name);
  if (v == nullptr || *v == '\0') return fallback;
  return static_cast<std::size_t>(std::strtoull(v, nullptr, 10));
}

Duration percentile(std::vector<Duration>& sorted, double p) {
  if (sorted.empty()) return 0;
  std::size_t idx = static_cast<std::size_t>(p * (sorted.size() - 1));
  return sorted[idx];
}

struct CellResult {
  double wall_s = 0;
  double txn_per_s = 0;
  std::size_t decided = 0;
  std::size_t committed = 0;
  std::size_t target = 0;
  Duration p50_us = 0;
  Duration p99_us = 0;
  double mean_us = 0;
  std::uint64_t messages = 0;
};

CellResult run_cell(std::size_t threads, std::size_t batch, std::size_t clients,
                    std::size_t total_txns, ObjectId keyspace) {
  rt::ThreadedRuntime::Options topt;
  topt.threads = threads;
  topt.seed = 42 + threads * 13 + batch;
  rt::ThreadedRuntime trt(topt);

  rt::CommitSystem::Options copt;
  copt.num_shards = 4;
  copt.shard_size = 2;
  copt.enable_monitor = false;  // pure-throughput cell; rt_test checks safety
  rt::CommitSystem system(trt, copt);

  rt::LoadGen::Options lopt;
  lopt.clients = std::min(clients, std::max<std::size_t>(total_txns, 1));
  lopt.txns_per_client = std::max<std::size_t>(total_txns / lopt.clients, 1);
  lopt.batch_size = batch;
  lopt.window = 4;
  lopt.keyspace = keyspace;
  lopt.seed = topt.seed;
  lopt.first_pid = rt::CommitSystem::kClientBase;
  rt::LoadGen gen(trt, system.coordinators(), lopt);

  auto t0 = std::chrono::steady_clock::now();
  trt.start();
  gen.start();
  // Poll from the main thread; a cell that stalls (it should not: reliable
  // in-process transport, no crashes) is cut off rather than hanging CI.
  const auto deadline = t0 + std::chrono::seconds(120);
  while (!gen.done() && std::chrono::steady_clock::now() < deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  auto t1 = std::chrono::steady_clock::now();
  trt.stop();

  CellResult r;
  r.wall_s = std::chrono::duration<double>(t1 - t0).count();
  r.decided = gen.decided();
  r.committed = gen.committed();
  r.target = gen.target_txns();
  r.txn_per_s = r.wall_s > 0 ? r.decided / r.wall_s : 0;
  r.messages = trt.delivered_count();
  std::vector<Duration> lat = gen.latencies();
  std::sort(lat.begin(), lat.end());
  r.p50_us = percentile(lat, 0.50);
  r.p99_us = percentile(lat, 0.99);
  double sum = 0;
  for (Duration l : lat) sum += static_cast<double>(l);
  r.mean_us = lat.empty() ? 0 : sum / lat.size();
  return r;
}

}  // namespace

int main() {
  bench::BenchReport report("realtime");

  const std::size_t total_txns = bench::bench_txns(20000);
  const std::size_t clients = env_or("RATC_RT_CLIENTS", 256);
  const ObjectId keyspace =
      static_cast<ObjectId>(env_or("RATC_RT_KEYSPACE", 1u << 20));
  const std::size_t max_threads = env_or("RATC_RT_MAX_THREADS", 8);

  bench::header("RT", "wall-clock throughput on the threaded runtime");
  bench::claim(
      "the commit stack behind the runtime seam sustains real multithreaded\n"
      "load: txn/s scales with worker threads and certification batching\n"
      "multiplies throughput, with microsecond-grade p50/p99 latencies");

  std::printf("machine: %u hardware thread(s)%s\n\n",
              std::thread::hardware_concurrency(),
              std::thread::hardware_concurrency() <= 1
                  ? " — thread scaling cannot manifest on this box"
                  : "");
  std::printf("%8s | %6s | %10s | %9s %9s %9s | %9s | %8s\n", "threads",
              "batch", "txn/s", "mean us", "p50 us", "p99 us", "committed",
              "wall s");
  for (std::size_t threads : {1u, 2u, 4u, 8u}) {
    if (threads > max_threads) continue;
    for (std::size_t batch : {1u, 8u}) {
      CellResult r = run_cell(threads, batch, clients, total_txns, keyspace);
      double committed_frac = r.decided > 0
                                  ? static_cast<double>(r.committed) / r.decided
                                  : 0.0;
      std::printf("%8zu | %6zu | %10.0f | %9.1f %9llu %9llu | %8.1f%% | %8.2f\n",
                  threads, batch, r.txn_per_s, r.mean_us,
                  static_cast<unsigned long long>(r.p50_us),
                  static_cast<unsigned long long>(r.p99_us),
                  100.0 * committed_frac, r.wall_s);
      report.add_row()
          .set("threads", static_cast<std::uint64_t>(threads))
          .set("hw_threads",
               static_cast<std::uint64_t>(std::thread::hardware_concurrency()))
          .set("batch_size", static_cast<std::uint64_t>(batch))
          .set("clients", static_cast<std::uint64_t>(clients))
          .set("txns", static_cast<std::uint64_t>(r.target))
          .set("decided", static_cast<std::uint64_t>(r.decided))
          .set("committed", static_cast<std::uint64_t>(r.committed))
          .set("txn_per_s", r.txn_per_s)
          .set("mean_us", r.mean_us)
          .set("p50_us", static_cast<std::uint64_t>(r.p50_us))
          .set("p99_us", static_cast<std::uint64_t>(r.p99_us))
          .set("wall_s", r.wall_s)
          .set("messages", r.messages);
    }
  }

  report.write();
  return 0;
}
