// E5 + E6: reconfiguration — the Fig. 2b message flow, the availability gap
// a failure causes, and probing descent through dead epochs.
//
// Paper claims: reconfiguration is per-shard and non-disruptive to other
// shards (Sec. 3); "upon a single failure, our protocols have to stop
// processing transactions while the system is reconfigured" (Sec. 6, the
// price of f+1); probing walks epochs downward and completes under
// Assumption 1 (Theorems 4.2/4.3).
// MTTR rows are persisted to BENCH_reconfiguration.json
// (bench/bench_report.h) so CI tracks the recovery-time trajectory.
#include <cstdio>

#include "bench/bench_common.h"
#include "bench/bench_report.h"
#include "commit/cluster.h"

using namespace ratc;
using bench::payload_on;

namespace {

void figure_2b_trace() {
  std::printf("Figure 2b message flow (reconfiguration of one shard):\n");
  commit::Cluster cluster(
      {.seed = 1, .num_shards = 1, .shard_size = 2, .enable_tracer = true});
  cluster.crash(cluster.leader_of(0));
  cluster.tracer().clear();
  cluster.reconfigure(0, cluster.replica(0, 1).id());
  cluster.await_active_epoch(0, 2);
  for (const auto& e : cluster.tracer().entries()) {
    if (e.kind != sim::TraceEntry::Kind::kDeliver) continue;
    std::printf("  t=%llu  %-18s %s -> %s\n", (unsigned long long)e.time,
                e.type.c_str(), process_name(e.from).c_str(),
                process_name(e.to).c_str());
  }
  std::printf("\n");
}

/// Time from leader crash to the first commit decided in the new epoch.
Duration availability_gap(Duration probe_patience) {
  commit::Cluster cluster({.seed = 2,
                           .num_shards = 2,
                           .shard_size = 2,
                           .retry_timeout = 30,
                           .probe_patience = probe_patience});
  commit::Client& client = cluster.add_client();
  // Warm up.  (Bounded runs throughout: the retry timers re-arm forever.)
  TxnId warm = cluster.next_txn_id();
  client.certify_colocated(cluster.replica(1, 1), warm, payload_on({0, 1}, {0}));
  cluster.sim().run_until_pred([&] { return client.decided(warm); });

  Time crash_at = cluster.sim().now();
  cluster.crash(cluster.leader_of(0));
  // Detection is immediate here (the follower is told); the gap measured is
  // pure reconfiguration + resume time.
  cluster.reconfigure(0, cluster.replica(0, 1).id());
  cluster.await_active_epoch(0, 2);

  TxnId t = cluster.next_txn_id();
  client.certify_colocated(cluster.replica(0, 1), t, payload_on({2, 3}, {2}));
  cluster.sim().run_until_pred([&] { return client.decided(t); });
  return cluster.sim().now() - crash_at;
}

/// MTTR / unavailability window: time from the crash of shard 0's leader to
/// the first post-crash commit in the affected shard, comparing
/// harness-driven recovery (the omniscient test lever: reconfigure fires
/// the instant the crash happens) against controller-driven recovery
/// (src/ctrl/: the per-shard ReconController must first *detect* the crash
/// through its failure detector, then run the same reconfiguration).  The
/// difference is the price of closing the loop inside the system —
/// dominated by the FD silence threshold.
Duration mttr(bool controller_driven, Duration suspect_after,
              recon::PlacementPolicy* policy = nullptr, std::size_t num_zones = 0) {
  commit::Cluster::Options o;
  o.seed = 7;
  o.num_shards = 2;
  o.shard_size = 2;
  o.spares_per_shard = 2;
  o.retry_timeout = 30;
  o.enable_controller = controller_driven;
  o.controller_tuning.fd = {.ping_every = suspect_after / 2,
                            .suspect_after = suspect_after};
  o.placement_policy = policy;
  o.num_zones = num_zones;
  commit::Cluster cluster(o);
  commit::Client& client = cluster.add_client();
  TxnId warm = cluster.next_txn_id();
  client.certify_colocated(cluster.replica(1, 1), warm, payload_on({0, 1}, {0}));
  cluster.sim().run_until_pred([&] { return client.decided(warm); }, 1'000'000);

  Time crash_at = cluster.sim().now();
  cluster.crash(cluster.leader_of(0));
  if (!controller_driven) {
    // Omniscient: the harness knows about the crash with zero latency.
    cluster.reconfigure(0, cluster.replica(0, 1).id());
  }
  cluster.await_active_epoch(0, 2);

  TxnId t = cluster.next_txn_id();
  client.certify_colocated(cluster.replica_by_pid(cluster.current_config(0).leader),
                           t, payload_on({2, 3}, {2}));
  cluster.sim().run_until_pred([&] { return client.decided(t); }, 1'000'000);
  return cluster.sim().now() - crash_at;
}

void mttr_comparison(bench::BenchReport& report) {
  std::printf("MTTR: leader crash -> first post-crash commit in the affected shard\n");
  std::printf("%-38s %18s\n", "recovery mode", "MTTR (ticks)");
  Duration omniscient = mttr(false, 50);
  std::printf("%-38s %18llu\n", "harness-driven (omniscient)",
              (unsigned long long)omniscient);
  report.add_row()
      .set("mode", "harness-driven")
      .set("suspect_after", std::uint64_t{0})
      .set("mttr", static_cast<std::uint64_t>(omniscient));
  for (Duration suspect_after : {50u, 30u, 15u}) {
    char label[64];
    std::snprintf(label, sizeof(label), "controller-driven (suspect_after=%llu)",
                  (unsigned long long)suspect_after);
    Duration d = mttr(true, suspect_after);
    std::printf("%-38s %18llu\n", label, (unsigned long long)d);
    report.add_row()
        .set("mode", "controller-driven")
        .set("suspect_after", static_cast<std::uint64_t>(suspect_after))
        .set("mttr", static_cast<std::uint64_t>(d));
  }
  std::printf("\n");
}

/// MTTR under the two shipped placement policies (recon/placement.h),
/// controller-driven with identical detector settings and 3 zone labels.
/// Placement decides WHO joins the new epoch, not how fast probing and the
/// CAS run, so the columns should be close — the table documents that the
/// zone-aware policy buys failure-domain spread at no recovery-time cost.
void mttr_by_placement_policy(bench::BenchReport& report) {
  std::printf("MTTR by placement policy (controller-driven, suspect_after=30, 3 zones)\n");
  std::printf("%-38s %18s\n", "policy", "MTTR (ticks)");
  recon::ReplaceSuspectsPolicy replace;
  recon::ZoneAntiAffinityPolicy zone;
  for (recon::PlacementPolicy* policy :
       {static_cast<recon::PlacementPolicy*>(&replace),
        static_cast<recon::PlacementPolicy*>(&zone)}) {
    Duration d = mttr(true, 30, policy, 3);
    std::printf("%-38s %18llu\n", policy->name(), (unsigned long long)d);
    report.add_row()
        .set("mode", "controller-driven")
        .set("policy", policy->name())
        .set("suspect_after", std::uint64_t{30})
        .set("mttr", static_cast<std::uint64_t>(d));
  }
  std::printf("\n");
}

/// Other shards keep certifying while shard 0 reconfigures.
void non_disruption() {
  commit::Cluster cluster({.seed = 3, .num_shards = 4, .shard_size = 2});
  commit::Client& client = cluster.add_client();
  cluster.crash(cluster.leader_of(0));
  cluster.reconfigure(0, cluster.replica(0, 1).id());
  // While the reconfiguration is in flight, submit to shards 1..3 only.
  std::vector<TxnId> txns;
  for (int i = 0; i < 30; ++i) {
    ShardId s = 1 + static_cast<ShardId>(i % 3);
    TxnId t = cluster.next_txn_id();
    txns.push_back(t);
    client.certify_colocated(cluster.replica(s, 1), t,
                             payload_on({static_cast<ObjectId>(4 * i + s)},
                                        {static_cast<ObjectId>(4 * i + s)}));
  }
  cluster.await_active_epoch(0, 2);
  cluster.sim().run();
  std::size_t decided = 0;
  for (TxnId t : txns) decided += client.decided(t) ? 1 : 0;
  std::printf("shards 1-3 during shard 0's reconfiguration: %zu/%zu transactions decided\n",
              decided, txns.size());
}

/// Probing descent: epochs whose leaders died before activation are walked
/// through; measured as CS get() calls + probe rounds.
void probing_descent() {
  commit::Cluster cluster({.seed = 4, .num_shards = 1, .shard_size = 2,
                           .spares_per_shard = 4, .enable_tracer = true});
  commit::Client& client = cluster.add_client();
  TxnId t1 = cluster.next_txn_id();
  client.certify_colocated(cluster.replica(0, 1), t1, payload_on({0}, {0}));
  cluster.sim().run();

  ProcessId reconfigurer = cluster.spares(0)[3];
  // Create a stored-but-never-activated epoch 2 (its leader dies at CAS).
  cluster.reconfigure(0, reconfigurer);
  cluster.sim().run_until_pred([&] { return cluster.current_config(0).epoch == 2; });
  ProcessId epoch2_leader = cluster.current_config(0).leader;
  cluster.crash(epoch2_leader);
  cluster.sim().run();

  Time start = cluster.sim().now();
  cluster.tracer().clear();
  cluster.reconfigure(0, reconfigurer);
  bool ok = cluster.await_active_epoch(0, 3);
  Duration took = cluster.sim().now() - start;

  int probes = 0, probe_acks = 0;
  for (const auto& e : cluster.tracer().entries()) {
    if (e.kind != sim::TraceEntry::Kind::kDeliver) continue;
    if (e.type == "PROBE") ++probes;
    if (e.type == "PROBE_ACK") ++probe_acks;
  }
  std::printf("probing descent through a dead epoch: %s in %llu ticks "
              "(%d PROBEs delivered, %d acks)\n",
              ok ? "recovered" : "FAILED", (unsigned long long)took, probes, probe_acks);
}

}  // namespace

int main() {
  bench::header("E5/E6", "reconfiguration: flow, availability gap, descent");
  bench::claim(
      "reconfiguration affects only the failed shard; probing walks epochs\n"
      "downward past never-activated configurations (Vertical Paxos I style);\n"
      "certification stalls only for the duration of the reconfiguration");

  figure_2b_trace();

  std::printf("%-28s %18s\n", "probe_patience (ticks)", "availability gap (ticks)");
  for (Duration patience : {2u, 5u, 10u, 20u}) {
    std::printf("%-28llu %18llu\n", (unsigned long long)patience,
                (unsigned long long)availability_gap(patience));
  }
  std::printf("\n");
  bench::BenchReport report("reconfiguration");
  mttr_comparison(report);
  mttr_by_placement_policy(report);
  non_disruption();
  probing_descent();
  report.write();
  return 0;
}
