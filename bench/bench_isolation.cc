// E10: isolation-level parametricity (paper Sec. 2) — the same protocol
// with serializability vs snapshot-isolation certification functions.
// Snapshot isolation only aborts on write-write conflicts, so its abort
// rate sits below serializability's at every contention level.
#include <cstdio>

#include "bench/bench_common.h"

using namespace ratc;

namespace {

double abort_rate(const std::string& isolation, double theta, double write_fraction) {
  bench::CommitRig rig({.seed = 23, .num_shards = 2, .shard_size = 2,
                        .isolation = isolation, .enable_monitor = false},
                       {.objects = 64,
                        .zipf_theta = theta,
                        .ops_per_txn = 4,
                        .write_fraction = write_fraction},
                       9);
  return rig.run(500).abort_rate();
}

}  // namespace

int main() {
  bench::header("E10", "abort rates: serializability vs snapshot isolation");
  bench::claim(
      "the protocol is parametric in (f_s, g_s); snapshot isolation's\n"
      "write-write-only checks abort no more than serializability's");

  std::printf("%-12s %-10s %16s %16s\n", "zipf theta", "writes", "serializability",
              "snapshot-isol.");
  for (double theta : {0.5, 0.8, 0.95}) {
    for (double wf : {0.3, 0.7}) {
      double ser = abort_rate("serializability", theta, wf);
      double si = abort_rate("snapshot-isolation", theta, wf);
      std::printf("%-12.2f %-10.0f%% %15.1f%% %15.1f%%\n", theta, 100 * wf, 100 * ser,
                  100 * si);
    }
  }
  return 0;
}
