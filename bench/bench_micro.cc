// Microbenchmarks (google-benchmark) for the hot paths: certification
// checks, payload projection, the simulator's event loop, the end-to-end
// certification pipeline and the history checkers.
#include <benchmark/benchmark.h>

#include "checker/linearization.h"
#include "commit/cluster.h"
#include "common/random.h"
#include "sim/network.h"
#include "sim/simulator.h"
#include "tcs/certifier.h"
#include "tcs/shard_map.h"

namespace ratc {
namespace {

tcs::Payload random_payload(Rng& rng, std::uint64_t objects) {
  tcs::Payload p;
  std::uint64_t n = 1 + rng.below(4);
  Version maxv = 0;
  for (std::uint64_t i = 0; i < n; ++i) {
    ObjectId obj = rng.below(objects);
    if (p.reads_object(obj)) continue;
    Version v = rng.below(100);
    p.reads.push_back({obj, v});
    maxv = std::max(maxv, v);
  }
  for (const auto& r : p.reads) {
    if (rng.chance(0.5)) p.writes.push_back({r.object, 1});
  }
  p.commit_version = maxv + 1;
  return p;
}

void BM_SerializabilityCheck(benchmark::State& state) {
  Rng rng(1);
  tcs::SerializabilityCertifier cert;
  std::vector<tcs::Payload> committed;
  for (int i = 0; i < 64; ++i) committed.push_back(random_payload(rng, 100));
  tcs::Payload l = random_payload(rng, 100);
  for (auto _ : state) {
    benchmark::DoNotOptimize(cert.committed_set(committed, l));
  }
}
BENCHMARK(BM_SerializabilityCheck);

void BM_SnapshotIsolationCheck(benchmark::State& state) {
  Rng rng(2);
  tcs::SnapshotIsolationCertifier cert;
  std::vector<tcs::Payload> committed;
  for (int i = 0; i < 64; ++i) committed.push_back(random_payload(rng, 100));
  tcs::Payload l = random_payload(rng, 100);
  for (auto _ : state) {
    benchmark::DoNotOptimize(cert.committed_set(committed, l));
  }
}
BENCHMARK(BM_SnapshotIsolationCheck);

void BM_PayloadProjection(benchmark::State& state) {
  Rng rng(3);
  tcs::ShardMap sm(8);
  tcs::Payload p = random_payload(rng, 1000);
  for (auto _ : state) {
    for (ShardId s = 0; s < 8; ++s) benchmark::DoNotOptimize(sm.project(p, s));
  }
}
BENCHMARK(BM_PayloadProjection);

void BM_SimulatorEventLoop(benchmark::State& state) {
  for (auto _ : state) {
    sim::Simulator sim(1);
    int counter = 0;
    for (int i = 0; i < 1000; ++i) {
      sim.schedule(static_cast<Duration>(i % 17), [&counter] { ++counter; });
    }
    sim.run();
    benchmark::DoNotOptimize(counter);
  }
}
BENCHMARK(BM_SimulatorEventLoop);

void BM_SimulatorEventQueueChurn(benchmark::State& state) {
  // Pins the event queue's move-only push/pop: every closure captures a
  // shared_ptr (the shape Network::send produces when it captures an
  // AnyMessage).  A queue that copied std::function on push or pop would
  // pay an extra atomic refcount round trip per event and show up here.
  auto payload = std::make_shared<std::string>(64, 'x');
  for (auto _ : state) {
    sim::Simulator sim(7);
    std::uint64_t sum = 0;
    for (int i = 0; i < 4096; ++i) {
      sim.schedule(static_cast<Duration>(i & 31),
                   [payload, &sum] { sum += payload->size(); });
    }
    sim.run();
    benchmark::DoNotOptimize(sum);
  }
  state.SetItemsProcessed(state.iterations() * 4096);
}
BENCHMARK(BM_SimulatorEventQueueChurn);

void BM_EndToEndCertification(benchmark::State& state) {
  // Full protocol round trips per iteration batch: 2 shards x 2 replicas.
  for (auto _ : state) {
    state.PauseTiming();
    commit::Cluster cluster({.seed = 4, .num_shards = 2, .shard_size = 2,
                             .enable_monitor = false});
    commit::Client& client = cluster.add_client();
    state.ResumeTiming();
    for (int i = 0; i < 100; ++i) {
      tcs::Payload p;
      p.reads = {{static_cast<ObjectId>(2 * i), 0}, {static_cast<ObjectId>(2 * i + 1), 0}};
      p.writes = {{static_cast<ObjectId>(2 * i), 1}};
      p.commit_version = 1;
      client.certify_colocated(cluster.replica(0, 1), cluster.next_txn_id(), p);
    }
    cluster.sim().run();
  }
  state.SetItemsProcessed(state.iterations() * 100);
}
BENCHMARK(BM_EndToEndCertification);

void BM_LinearizationChecker(benchmark::State& state) {
  // 16 committed transactions with a mix of dependencies.
  tcs::History h;
  Rng rng(5);
  Version version = 0;
  for (TxnId t = 1; t <= 16; ++t) {
    tcs::Payload p;
    p.reads = {{t % 4, version}};
    p.writes = {{t % 4, static_cast<Value>(t)}};
    p.commit_version = version + 1;
    h.record_certify(2 * t, t, p);
    h.record_decide(2 * t + 1, t, tcs::Decision::kCommit);
    ++version;
  }
  tcs::SerializabilityCertifier cert;
  for (auto _ : state) {
    benchmark::DoNotOptimize(checker::check_linearization(h, cert));
  }
}
BENCHMARK(BM_LinearizationChecker);

}  // namespace
}  // namespace ratc

BENCHMARK_MAIN();
