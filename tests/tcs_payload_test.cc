#include <gtest/gtest.h>

#include "tcs/history.h"
#include "tcs/payload.h"
#include "tcs/shard_map.h"

namespace ratc::tcs {
namespace {

Payload make_payload(std::vector<ReadEntry> reads, std::vector<WriteEntry> writes,
                     Version vc) {
  Payload p;
  p.reads = std::move(reads);
  p.writes = std::move(writes);
  p.commit_version = vc;
  return p;
}

TEST(Payload, EmptyPayloadIsEpsilon) {
  Payload p = empty_payload();
  EXPECT_TRUE(p.is_empty());
  EXPECT_TRUE(p.well_formed());
}

TEST(Payload, ReadWriteAccessors) {
  Payload p = make_payload({{1, 5}, {2, 3}}, {{1, 42}}, 6);
  EXPECT_TRUE(p.reads_object(1));
  EXPECT_TRUE(p.reads_object(2));
  EXPECT_FALSE(p.reads_object(3));
  EXPECT_TRUE(p.writes_object(1));
  EXPECT_FALSE(p.writes_object(2));
  EXPECT_EQ(p.read_version(1), 5u);
  EXPECT_EQ(p.read_version(2), 3u);
  EXPECT_FALSE(p.read_version(9).has_value());
}

TEST(Payload, WellFormedAcceptsReadOnly) {
  Payload p = make_payload({{1, 5}}, {}, 0);
  EXPECT_TRUE(p.well_formed());
}

TEST(Payload, WellFormedRejectsWriteWithoutRead) {
  Payload p = make_payload({{1, 5}}, {{2, 9}}, 6);
  EXPECT_FALSE(p.well_formed());
}

TEST(Payload, WellFormedRejectsDuplicateReads) {
  Payload p = make_payload({{1, 5}, {1, 6}}, {}, 7);
  EXPECT_FALSE(p.well_formed());
}

TEST(Payload, WellFormedRejectsDuplicateWrites) {
  Payload p = make_payload({{1, 5}}, {{1, 9}, {1, 10}}, 6);
  EXPECT_FALSE(p.well_formed());
}

TEST(Payload, WellFormedRequiresCommitVersionAboveReads) {
  Payload p = make_payload({{1, 5}}, {{1, 9}}, 5);
  EXPECT_FALSE(p.well_formed());
  p.commit_version = 6;
  EXPECT_TRUE(p.well_formed());
}

TEST(Payload, WireSizeGrowsWithSets) {
  Payload small = make_payload({{1, 5}}, {}, 0);
  Payload big = make_payload({{1, 5}, {2, 5}, {3, 5}}, {{1, 1}, {2, 2}}, 6);
  EXPECT_GT(big.wire_size(), small.wire_size());
}

TEST(ShardMap, ProjectionSplitsByShard) {
  ShardMap sm(2);
  // Objects 2,4 -> shard 0; objects 1,3 -> shard 1.
  Payload p = make_payload({{1, 5}, {2, 7}, {3, 1}}, {{1, 10}, {2, 20}}, 8);
  Payload p0 = sm.project(p, 0);
  Payload p1 = sm.project(p, 1);
  EXPECT_EQ(p0.reads.size(), 1u);
  EXPECT_EQ(p0.reads[0].object, 2u);
  EXPECT_EQ(p0.writes.size(), 1u);
  EXPECT_EQ(p0.writes[0].object, 2u);
  EXPECT_EQ(p1.reads.size(), 2u);
  EXPECT_EQ(p1.writes.size(), 1u);
  EXPECT_EQ(p0.commit_version, 8u);
  EXPECT_EQ(p1.commit_version, 8u);
}

TEST(ShardMap, ProjectionToUninvolvedShardIsEmpty) {
  ShardMap sm(4);
  Payload p = make_payload({{0, 1}, {4, 2}}, {{0, 9}}, 3);  // both objects on shard 0
  EXPECT_TRUE(sm.project(p, 1).is_empty());
  EXPECT_TRUE(sm.project(p, 2).is_empty());
  EXPECT_FALSE(sm.project(p, 0).is_empty());
}

TEST(ShardMap, ShardsOfCollectsInvolvedShards) {
  ShardMap sm(3);
  Payload p = make_payload({{0, 1}, {1, 1}, {3, 1}}, {{1, 5}}, 2);
  // objects 0,3 -> shard 0; object 1 -> shard 1.
  auto shards = sm.shards_of(p);
  EXPECT_EQ(shards, (std::vector<ShardId>{0, 1}));
}

TEST(ShardMap, EmptyPayloadTouchesNoShards) {
  ShardMap sm(3);
  EXPECT_TRUE(sm.shards_of(empty_payload()).empty());
}

TEST(History, RecordsAndQueries) {
  History h;
  Payload p = make_payload({{1, 0}}, {{1, 7}}, 1);
  h.record_certify(10, 1, p);
  EXPECT_TRUE(h.certified(1));
  EXPECT_FALSE(h.complete());
  h.record_decide(15, 1, Decision::kCommit);
  EXPECT_TRUE(h.complete());
  EXPECT_EQ(h.decision_of(1), Decision::kCommit);
  EXPECT_EQ(h.committed_txns(), (std::vector<TxnId>{1}));
  EXPECT_EQ(h.aborted_count(), 0u);
  ASSERT_NE(h.payload_of(1), nullptr);
  EXPECT_EQ(*h.payload_of(1), p);
}

TEST(History, FirstDecisionWinsAndConflictsDetected) {
  History h;
  h.record_certify(1, 1, empty_payload());
  h.record_decide(2, 1, Decision::kCommit);
  h.record_decide(3, 1, Decision::kAbort);  // contradictory externalization
  EXPECT_EQ(h.decision_of(1), Decision::kCommit);
  EXPECT_EQ(h.conflicting_decisions(), (std::vector<TxnId>{1}));
}

TEST(History, DuplicateConsistentDecisionsAreFine) {
  History h;
  h.record_certify(1, 1, empty_payload());
  h.record_decide(2, 1, Decision::kAbort);
  h.record_decide(3, 1, Decision::kAbort);
  EXPECT_TRUE(h.conflicting_decisions().empty());
  EXPECT_EQ(h.aborted_count(), 1u);
}

TEST(History, ToStringMentionsActions) {
  History h;
  h.record_certify(1, 42, empty_payload());
  h.record_decide(2, 42, Decision::kCommit);
  auto s = h.to_string();
  EXPECT_NE(s.find("certify(txn42"), std::string::npos);
  EXPECT_NE(s.find("decide(txn42, commit"), std::string::npos);
}

}  // namespace
}  // namespace ratc::tcs
