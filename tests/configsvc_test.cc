#include <gtest/gtest.h>

#include <memory>
#include <optional>

#include "configsvc/client.h"
#include "configsvc/replicated_service.h"
#include "configsvc/simple_service.h"
#include "sim/network.h"
#include "sim/simulator.h"

namespace ratc::configsvc {
namespace {

/// A process that drives a CsClient and records callback results.
class CsUser : public sim::Process {
 public:
  CsUser(sim::Simulator& sim, sim::Network& net, ProcessId id,
         std::vector<ProcessId> endpoints)
      : Process(sim, id, "cs-user"), client(sim, net, id, std::move(endpoints)) {}

  void on_message(ProcessId, const sim::AnyMessage& msg) override {
    client.handle(msg);
  }

  CsClient client;
};

ShardConfig make_config(Epoch e, std::vector<ProcessId> members) {
  ShardConfig c;
  c.epoch = e;
  c.leader = members.front();
  c.members = std::move(members);
  return c;
}

TEST(SimpleConfigService, GetLastOnEmptyReturnsInvalid) {
  sim::Simulator sim(1);
  sim::Network net(sim);
  SimpleConfigService cs(sim, net, 1);
  sim.add_process(&cs);
  CsUser user(sim, net, 2, {cs.id()});
  sim.add_process(&user);

  std::optional<ShardConfig> got;
  user.client.get_last(0, [&](const ShardConfig& c) { got = c; });
  sim.run();
  ASSERT_TRUE(got.has_value());
  EXPECT_FALSE(got->valid());
}

TEST(SimpleConfigService, CasStoresAndNotifies) {
  sim::Simulator sim(2);
  sim::Network net(sim);
  SimpleConfigService cs(sim, net, 1);
  sim.add_process(&cs);
  CsUser user(sim, net, 2, {cs.id()});
  sim.add_process(&user);

  // Another process subscribed to notifications.
  struct Sub : sim::Process {
    using Process::Process;
    int changes = 0;
    void on_message(ProcessId, const sim::AnyMessage& msg) override {
      if (msg.is<ConfigChange>()) ++changes;
    }
  } sub(sim, 3, "sub");
  sim.add_process(&sub);
  cs.subscribe(sub.id());

  std::optional<bool> ok;
  user.client.cas(7, kNoEpoch, make_config(1, {10, 11}), [&](bool r) { ok = r; });
  sim.run();
  ASSERT_TRUE(ok.has_value());
  EXPECT_TRUE(*ok);
  EXPECT_EQ(cs.last(7).epoch, 1u);
  EXPECT_EQ(sub.changes, 1);
}

TEST(SimpleConfigService, CasFailsOnWrongExpectedEpoch) {
  sim::Simulator sim(3);
  sim::Network net(sim);
  SimpleConfigService cs(sim, net, 1);
  sim.add_process(&cs);
  cs.bootstrap(0, make_config(3, {10, 11}));
  CsUser user(sim, net, 2, {cs.id()});
  sim.add_process(&user);

  std::optional<bool> ok;
  user.client.cas(0, 1, make_config(4, {10, 12}), [&](bool r) { ok = r; });
  sim.run();
  ASSERT_TRUE(ok.has_value());
  EXPECT_FALSE(*ok);
  EXPECT_EQ(cs.last(0).epoch, 3u);
}

TEST(SimpleConfigService, CasRequiresHigherEpoch) {
  sim::Simulator sim(4);
  sim::Network net(sim);
  SimpleConfigService cs(sim, net, 1);
  sim.add_process(&cs);
  cs.bootstrap(0, make_config(3, {10, 11}));
  CsUser user(sim, net, 2, {cs.id()});
  sim.add_process(&user);

  std::optional<bool> ok;
  user.client.cas(0, 3, make_config(3, {10, 12}), [&](bool r) { ok = r; });
  sim.run();
  ASSERT_TRUE(ok.has_value());
  EXPECT_FALSE(*ok);
}

TEST(SimpleConfigService, ConcurrentCasOnlyOneWins) {
  sim::Simulator sim(5);
  sim::Network net(sim);
  SimpleConfigService cs(sim, net, 1);
  sim.add_process(&cs);
  cs.bootstrap(0, make_config(1, {10, 11}));
  CsUser u1(sim, net, 2, {cs.id()});
  CsUser u2(sim, net, 3, {cs.id()});
  sim.add_process(&u1);
  sim.add_process(&u2);

  int wins = 0, losses = 0;
  u1.client.cas(0, 1, make_config(2, {10, 12}), [&](bool r) { r ? ++wins : ++losses; });
  u2.client.cas(0, 1, make_config(2, {11, 13}), [&](bool r) { r ? ++wins : ++losses; });
  sim.run();
  EXPECT_EQ(wins, 1);
  EXPECT_EQ(losses, 1);
  EXPECT_EQ(cs.last(0).epoch, 2u);
}

TEST(SimpleConfigService, GetSpecificEpoch) {
  sim::Simulator sim(6);
  sim::Network net(sim);
  SimpleConfigService cs(sim, net, 1);
  sim.add_process(&cs);
  cs.bootstrap(0, make_config(1, {10, 11}));
  cs.bootstrap(0, make_config(2, {10, 12}));
  CsUser user(sim, net, 2, {cs.id()});
  sim.add_process(&user);

  std::optional<ShardConfig> got;
  bool found = false;
  user.client.get(0, 1, [&](bool f, const ShardConfig& c) {
    found = f;
    got = c;
  });
  sim.run();
  EXPECT_TRUE(found);
  EXPECT_EQ(got->members, (std::vector<ProcessId>{10, 11}));

  bool found_missing = true;
  user.client.get(0, 9, [&](bool f, const ShardConfig&) { found_missing = f; });
  sim.run();
  EXPECT_FALSE(found_missing);
}

TEST(SimpleGlobalConfigService, CasAndGet) {
  sim::Simulator sim(7);
  sim::Network net(sim);
  SimpleGlobalConfigService gcs(sim, net, 1);
  sim.add_process(&gcs);

  GlobalConfig boot;
  boot.epoch = 1;
  boot.members[0] = {10, 11};
  boot.members[1] = {20, 21};
  boot.leaders[0] = 10;
  boot.leaders[1] = 20;
  gcs.bootstrap(boot);

  struct GUser : sim::Process {
    GUser(sim::Simulator& s, sim::Network& n, ProcessId id, std::vector<ProcessId> eps)
        : Process(s, id, "gcs-user"), client(s, n, id, std::move(eps)) {}
    void on_message(ProcessId, const sim::AnyMessage& msg) override { client.handle(msg); }
    GcsClient client;
  } user(sim, net, 2, {gcs.id()});
  sim.add_process(&user);

  std::optional<GlobalConfig> got;
  user.client.get_last([&](const GlobalConfig& c) { got = c; });
  sim.run();
  ASSERT_TRUE(got.has_value());
  EXPECT_EQ(got->epoch, 1u);
  EXPECT_EQ(got->shard(1).leader, 20u);

  GlobalConfig next = *got;
  next.epoch = 2;
  next.leaders[0] = 11;
  std::optional<bool> ok;
  user.client.cas(1, next, [&](bool r) { ok = r; });
  sim.run();
  ASSERT_TRUE(ok.has_value());
  EXPECT_TRUE(*ok);
  EXPECT_EQ(gcs.last().epoch, 2u);

  // Wrong expected epoch fails.
  next.epoch = 3;
  user.client.cas(1, next, [&](bool r) { ok = r; });
  sim.run();
  EXPECT_FALSE(*ok);
}

TEST(ReplicatedConfigService, EndToEndCasAndQueries) {
  sim::Simulator sim(8);
  sim::Network net(sim);
  ReplicatedConfigService rcs(sim, net, {});
  CsUser user(sim, net, 2, rcs.endpoints());
  sim.add_process(&user);

  std::optional<bool> ok;
  user.client.cas(0, kNoEpoch, make_config(1, {10, 11}), [&](bool r) { ok = r; });
  sim.run();
  ASSERT_TRUE(ok.has_value());
  EXPECT_TRUE(*ok);

  std::optional<ShardConfig> got;
  user.client.get_last(0, [&](const ShardConfig& c) { got = c; });
  sim.run();
  ASSERT_TRUE(got.has_value());
  EXPECT_EQ(got->epoch, 1u);
}

TEST(ReplicatedConfigService, SurvivesLeaderCrashWithClientRetry) {
  sim::Simulator sim(9);
  sim::Network net(sim);
  ReplicatedConfigService rcs(sim, net, {});
  rcs.bootstrap(0, make_config(1, {10, 11}));
  CsUser user(sim, net, 2, rcs.endpoints());
  sim.add_process(&user);

  // Crash the initial leader (server 0) and elect server 1.
  rcs.crash_server(sim, 0);
  rcs.paxos(1).start_election();

  std::optional<bool> ok;
  user.client.cas(0, 1, make_config(2, {10, 12}), [&](bool r) { ok = r; });
  sim.run();
  ASSERT_TRUE(ok.has_value());
  EXPECT_TRUE(*ok);
  EXPECT_EQ(rcs.server(1).last(0).epoch, 2u);
  EXPECT_EQ(rcs.server(2).last(0).epoch, 2u);
}

TEST(ReplicatedConfigService, NotifiesSubscribers) {
  sim::Simulator sim(10);
  sim::Network net(sim);
  ReplicatedConfigService rcs(sim, net, {});
  struct Sub : sim::Process {
    using Process::Process;
    int changes = 0;
    void on_message(ProcessId, const sim::AnyMessage& msg) override {
      if (msg.is<ConfigChange>()) ++changes;
    }
  } sub(sim, 3, "sub");
  sim.add_process(&sub);
  rcs.subscribe(sub.id());

  CsUser user(sim, net, 2, rcs.endpoints());
  sim.add_process(&user);
  std::optional<bool> ok;
  user.client.cas(0, kNoEpoch, make_config(1, {10, 11}), [&](bool r) { ok = r; });
  sim.run();
  ASSERT_TRUE(ok.has_value());
  EXPECT_EQ(sub.changes, 1);
}

}  // namespace
}  // namespace ratc::configsvc
