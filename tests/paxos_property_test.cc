// Property tests for the Multi-Paxos substrate: agreement and log
// convergence under randomized crash/election churn and random delays.
// The replicated configuration service and the 2PC baseline both stand on
// this module, so it gets its own adversarial sweep.
#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "common/random.h"
#include "paxos/replica.h"
#include "sim/network.h"
#include "sim/simulator.h"

namespace ratc::paxos {
namespace {

struct Cmd {
  static constexpr const char* kName = "CMD";
  int value = 0;
};

class ChaosHarness {
 public:
  ChaosHarness(std::uint64_t seed, std::size_t n, bool exponential)
      : sim_(seed),
        net_(sim_, exponential ? sim::Network::exponential_delay_options(4.0)
                               : sim::Network::unit_delay_options()),
        rng_(seed ^ 0xc0ffee) {
    std::vector<ProcessId> ids;
    for (std::size_t i = 0; i < n; ++i) ids.push_back(static_cast<ProcessId>(100 + i));
    applied_.resize(n);
    for (std::size_t i = 0; i < n; ++i) {
      PaxosReplica::Options opt;
      opt.group = ids;
      opt.initial_leader = ids[0];
      auto& log = applied_[i];
      replicas_.push_back(std::make_unique<PaxosReplica>(
          sim_, net_, ids[i], "p" + std::to_string(i), opt,
          [&log](Slot, const sim::AnyMessage& cmd) {
            log.push_back(cmd.as<Cmd>()->value);
          }));
      sim_.add_process(replicas_.back().get());
    }
  }

  void run_chaos(int commands, int crash_budget) {
    int next_value = 0;
    int crashes = 0;
    while (next_value < commands) {
      // Submit a small burst at the current leader (or any alive replica —
      // forwarding must handle it).
      std::size_t idx = pick_alive();
      for (int j = 0; j < 3 && next_value < commands; ++j) {
        replicas_[idx]->submit(sim::AnyMessage(Cmd{next_value++}));
      }
      sim_.run_until(sim_.now() + rng_.range(5, 40));
      // Occasionally crash the current leader (keeping a majority) and
      // elect a random survivor.
      if (crashes < crash_budget && rng_.chance(0.3)) {
        std::size_t leader = SIZE_MAX;
        for (std::size_t i = 0; i < replicas_.size(); ++i) {
          if (!sim_.crashed(replicas_[i]->id()) && replicas_[i]->is_leader()) leader = i;
        }
        if (leader != SIZE_MAX && alive_count() > majority()) {
          sim_.crash(replicas_[leader]->id());
          ++crashes;
          replicas_[pick_alive()]->start_election();
          sim_.run_until(sim_.now() + 200);
        }
      }
    }
    // Give elections/retries time to settle, then drain.
    for (int rounds = 0; rounds < 5; ++rounds) {
      sim_.run();
      // A final election nudge if no leader survived with pending backlog.
      replicas_[pick_alive()]->start_election();
      sim_.run();
    }
  }

  /// All alive replicas applied the same sequence; no value twice.
  void verify(int commands) {
    const std::vector<int>* reference = nullptr;
    for (std::size_t i = 0; i < replicas_.size(); ++i) {
      if (sim_.crashed(replicas_[i]->id())) continue;
      if (reference == nullptr) {
        reference = &applied_[i];
      } else {
        EXPECT_EQ(applied_[i], *reference) << "replica " << i << " diverged";
      }
    }
    ASSERT_NE(reference, nullptr);
    std::set<int> unique(reference->begin(), reference->end());
    EXPECT_EQ(unique.size(), reference->size()) << "duplicate application";
    // Liveness is best-effort without client retry: commands buffered at a
    // crashed leader (or forwarded to a stale leader hint) are legitimately
    // lost.  Agreement above is the safety property; here we only require
    // that churn didn't wedge the group entirely.
    EXPECT_GE(reference->size() * 2, static_cast<std::size_t>(commands));
  }

 private:
  std::size_t alive_count() const {
    std::size_t n = 0;
    for (const auto& r : replicas_) n += sim_.crashed(r->id()) ? 0 : 1;
    return n;
  }
  std::size_t majority() const { return replicas_.size() / 2 + 1; }
  std::size_t pick_alive() {
    while (true) {
      std::size_t i = rng_.below(replicas_.size());
      if (!sim_.crashed(replicas_[i]->id())) return i;
    }
  }

  sim::Simulator sim_;
  sim::Network net_;
  Rng rng_;
  std::vector<std::unique_ptr<PaxosReplica>> replicas_;
  std::vector<std::vector<int>> applied_;
};

class PaxosChaos : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(PaxosChaos, FiveReplicasUnitDelays) {
  ChaosHarness h(GetParam(), 5, false);
  h.run_chaos(60, 2);
  h.verify(60);
}

TEST_P(PaxosChaos, FiveReplicasExponentialDelays) {
  ChaosHarness h(GetParam() * 7 + 1, 5, true);
  h.run_chaos(60, 2);
  h.verify(60);
}

TEST_P(PaxosChaos, SevenReplicasThreeCrashes) {
  ChaosHarness h(GetParam() * 13 + 5, 7, true);
  h.run_chaos(80, 3);
  h.verify(80);
}

INSTANTIATE_TEST_SUITE_P(Seeds, PaxosChaos, ::testing::Values(1, 2, 3, 4, 5),
                         [](const auto& info) {
                           return "seed" + std::to_string(info.param);
                         });

}  // namespace
}  // namespace ratc::paxos
