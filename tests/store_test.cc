// Versioned store, executor, workload generators, and the end-to-end
// pipeline: store -> optimistic execution -> TCS -> committed writes back,
// with conflict-graph serializability as the oracle.
#include <gtest/gtest.h>

#include "checker/conflict_graph.h"
#include "checker/linearization.h"
#include "store/frontends.h"
#include "store/runner.h"
#include "store/workload.h"

namespace ratc::store {
namespace {

using tcs::Decision;

TEST(VersionedStore, ReadNeverWrittenDefaults) {
  VersionedStore db;
  EXPECT_EQ(db.read(1).version, 0u);
  EXPECT_EQ(db.read(1).value, 0);
}

TEST(VersionedStore, ApplyInstallsVersions) {
  VersionedStore db;
  tcs::Payload p;
  p.writes = {{1, 42}};
  p.commit_version = 3;
  db.apply(p);
  EXPECT_EQ(db.read(1).value, 42);
  EXPECT_EQ(db.read(1).version, 3u);
}

TEST(VersionedStore, StaleApplyIgnored) {
  VersionedStore db;
  tcs::Payload newer;
  newer.writes = {{1, 42}};
  newer.commit_version = 5;
  db.apply(newer);
  tcs::Payload older;
  older.writes = {{1, 7}};
  older.commit_version = 3;
  db.apply(older);
  EXPECT_EQ(db.read(1).value, 42);
  EXPECT_EQ(db.read(1).version, 5u);
}

TEST(Executor, ProducesWellFormedPayloads) {
  VersionedStore db;
  tcs::Payload init;
  init.writes = {{1, 10}, {2, 20}};
  init.commit_version = 1;
  db.apply(init);

  TransactionExecutor exec(db);
  EXPECT_EQ(exec.read(1), 10);
  exec.write(2, 99);
  exec.write(3, 7);  // auto-reads first
  tcs::Payload p = exec.finish();
  EXPECT_TRUE(p.well_formed());
  EXPECT_EQ(p.reads.size(), 3u);
  EXPECT_EQ(p.writes.size(), 2u);
  EXPECT_EQ(p.commit_version, 2u);  // above version 1 read
}

TEST(Executor, ReadYourWrites) {
  VersionedStore db;
  TransactionExecutor exec(db);
  exec.write(5, 123);
  EXPECT_EQ(exec.read(5), 123);
}

TEST(Executor, ReadOnlyTransactionHasZeroCommitVersion) {
  VersionedStore db;
  TransactionExecutor exec(db);
  exec.read(1);
  tcs::Payload p = exec.finish();
  EXPECT_TRUE(p.writes.empty());
  EXPECT_EQ(p.commit_version, 0u);
  EXPECT_TRUE(p.well_formed());
}

TEST(Workload, GeneratesWellFormedPayloads) {
  VersionedStore db;
  WorkloadGenerator gen({.objects = 50, .zipf_theta = 0.9}, 7);
  for (int i = 0; i < 500; ++i) {
    tcs::Payload p = gen.next(db);
    EXPECT_TRUE(p.well_formed()) << p.to_string();
    if (p.well_formed() && !p.writes.empty()) db.apply(p);
  }
}

TEST(Bank, TransfersPreserveTotalWhenAppliedSequentially) {
  VersionedStore db;
  BankWorkload bank(10, 100, 3);
  db.apply(bank.seed_payload());
  ASSERT_EQ(bank.total_balance(db), bank.expected_total());
  for (int i = 0; i < 200; ++i) {
    db.apply(bank.next_transfer(db));
    ASSERT_EQ(bank.total_balance(db), bank.expected_total()) << "after transfer " << i;
  }
}

// --- end-to-end through the three TCS implementations -------------------------

TEST(EndToEnd, CommitProtocolSerializable) {
  commit::Cluster cluster({.seed = 11, .num_shards = 3, .shard_size = 2});
  CommitFrontend frontend(cluster);
  VersionedStore db;
  WorkloadGenerator gen({.objects = 30, .zipf_theta = 0.8, .ops_per_txn = 3}, 5);
  WorkloadRunner runner(cluster.sim(), frontend, db,
                        [&](const VersionedStore& d) { return gen.next(d); });
  RunnerStats stats = runner.run(300);
  EXPECT_EQ(stats.committed + stats.aborted, 300u);
  EXPECT_GT(stats.committed, 50u);  // heavily contended zipfian mix
  EXPECT_EQ(cluster.verify(), "");
  auto cg = checker::check_conflict_graph(cluster.history());
  EXPECT_TRUE(cg.ok) << cg.error;
}

TEST(EndToEnd, RdmaProtocolSerializable) {
  rdma::Cluster cluster({.seed = 12, .num_shards = 3, .shard_size = 2});
  RdmaFrontend frontend(cluster);
  VersionedStore db;
  WorkloadGenerator gen({.objects = 30, .zipf_theta = 0.8, .ops_per_txn = 3}, 6);
  WorkloadRunner runner(cluster.sim(), frontend, db,
                        [&](const VersionedStore& d) { return gen.next(d); });
  RunnerStats stats = runner.run(300);
  EXPECT_EQ(stats.committed + stats.aborted, 300u);
  EXPECT_GT(stats.committed, 40u);
  EXPECT_EQ(cluster.verify(), "");
  auto cg = checker::check_conflict_graph(cluster.history());
  EXPECT_TRUE(cg.ok) << cg.error;
}

TEST(EndToEnd, BaselineSerializable) {
  baseline::BaselineCluster cluster({.seed = 13, .num_shards = 3, .shard_size = 3});
  BaselineFrontend frontend(cluster);
  VersionedStore db;
  WorkloadGenerator gen({.objects = 30, .zipf_theta = 0.8, .ops_per_txn = 3}, 7);
  WorkloadRunner runner(cluster.sim(), frontend, db,
                        [&](const VersionedStore& d) { return gen.next(d); });
  RunnerStats stats = runner.run(300);
  EXPECT_EQ(stats.committed + stats.aborted, 300u);
  EXPECT_GT(stats.committed, 50u);
  auto cg = checker::check_conflict_graph(cluster.history());
  EXPECT_TRUE(cg.ok) << cg.error;
}

TEST(EndToEnd, BankTransfersConserveMoneyAcrossShards) {
  commit::Cluster cluster({.seed = 14, .num_shards = 4, .shard_size = 2});
  CommitFrontend frontend(cluster);
  VersionedStore db;
  BankWorkload bank(20, 1000, 9);
  db.apply(bank.seed_payload());
  WorkloadRunner runner(cluster.sim(), frontend, db,
                        [&](const VersionedStore& d) { return bank.next_transfer(d); });
  RunnerStats stats = runner.run(400);
  EXPECT_EQ(stats.committed + stats.aborted, 400u);
  EXPECT_EQ(bank.total_balance(db), bank.expected_total());
  EXPECT_EQ(cluster.verify(), "");
}

TEST(EndToEnd, AbortRateGrowsWithContention) {
  auto abort_rate_for = [](double theta, std::uint64_t objects) {
    commit::Cluster cluster({.seed = 15, .num_shards = 2, .shard_size = 2});
    CommitFrontend frontend(cluster);
    VersionedStore db;
    WorkloadGenerator gen(
        {.objects = objects, .zipf_theta = theta, .ops_per_txn = 4,
         .write_fraction = 0.7},
        21);
    WorkloadRunner runner(cluster.sim(), frontend, db,
                          [&](const VersionedStore& d) { return gen.next(d); });
    return runner.run(300).abort_rate();
  };
  double low = abort_rate_for(0.0, 2000);
  double high = abort_rate_for(0.99, 20);
  EXPECT_LT(low, high);
  EXPECT_GT(high, 0.05);
}

TEST(EndToEnd, SurvivesReconfigurationMidWorkload) {
  commit::Cluster cluster(
      {.seed = 16, .num_shards = 2, .shard_size = 2, .retry_timeout = 100});
  CommitFrontend frontend(cluster);
  VersionedStore db;
  WorkloadGenerator gen({.objects = 40, .ops_per_txn = 3}, 11);
  WorkloadRunner runner(cluster.sim(), frontend, db,
                        [&](const VersionedStore& d) { return gen.next(d); });
  RunnerStats first = runner.run(100);
  EXPECT_EQ(first.committed + first.aborted, 100u);

  cluster.crash_leader(0);
  cluster.reconfigure(0, cluster.replica(0, 1).id());
  ASSERT_TRUE(cluster.await_active_epoch(0, 2));

  RunnerStats second = runner.run(100);
  EXPECT_GE(second.committed + second.aborted, 195u);  // window may carry over
  EXPECT_EQ(cluster.verify(), "");
  auto cg = checker::check_conflict_graph(cluster.history());
  EXPECT_TRUE(cg.ok) << cg.error;
}

}  // namespace
}  // namespace ratc::store
