// Cooperative termination for the baseline 2PC stack: the decision-inference
// rules enumerated state-by-state (baseline/termination.h is pure, so every
// peer-state combination is checked exhaustively), plus staged protocol
// scenarios on a live cluster — a decision stranded in the coordinator's
// shard log, a stranded participant whose decision message was lost, the
// never-prepared abort rule, and the irreducible all-prepared window.
#include <gtest/gtest.h>

#include "baseline/cluster.h"
#include "baseline/termination.h"
#include "harness/nemesis.h"

namespace ratc::baseline {
namespace {

using tcs::Decision;
using tcs::Payload;

// --- inference rules, enumerated -----------------------------------------------

using Answers = std::map<ShardId, PeerTxnState>;

TEST(TerminationInference, AnyCommittedAnswerResolvesCommit) {
  // Rule 1: a surviving COMMIT decision is adopted, whatever else peers say
  // (a conflicting ABORT cannot coexist — that would be the 2PC safety
  // violation the checkers hunt).
  EXPECT_EQ(infer_termination({{0, PeerTxnState::kCommitted}}, 3),
            TerminationOutcome::kCommit);
  EXPECT_EQ(infer_termination({{0, PeerTxnState::kPrepared},
                               {1, PeerTxnState::kCommitted}},
                              3),
            TerminationOutcome::kCommit);
  EXPECT_EQ(infer_termination({{0, PeerTxnState::kPrepared},
                               {1, PeerTxnState::kCommitted},
                               {2, PeerTxnState::kPrepared}},
                              3),
            TerminationOutcome::kCommit);
}

TEST(TerminationInference, AnyAbortedOrNeverPreparedAnswerResolvesAbort) {
  // Rule 2: an applied ABORT, a NO vote (answered as kAborted), or a
  // never-prepared peer (which tombstoned the txn before answering) all
  // foreclose commit.
  EXPECT_EQ(infer_termination({{1, PeerTxnState::kAborted}}, 3),
            TerminationOutcome::kAbort);
  EXPECT_EQ(infer_termination({{1, PeerTxnState::kNeverPrepared}}, 3),
            TerminationOutcome::kAbort);
  EXPECT_EQ(infer_termination({{0, PeerTxnState::kPrepared},
                               {1, PeerTxnState::kPrepared},
                               {2, PeerTxnState::kNeverPrepared}},
                              3),
            TerminationOutcome::kAbort);
}

TEST(TerminationInference, AllPreparedAndCoordinatorDeadRemainsBlocked) {
  // Rule 3: every participant in doubt (prepared, voted YES, no decision)
  // is exactly the window classical 2PC cannot escape.
  EXPECT_EQ(infer_termination({{0, PeerTxnState::kPrepared},
                               {1, PeerTxnState::kPrepared},
                               {2, PeerTxnState::kPrepared}},
                              3),
            TerminationOutcome::kBlocked);
  // Degenerate single-participant case: the lone shard is in doubt.
  EXPECT_EQ(infer_termination({{0, PeerTxnState::kPrepared}}, 1),
            TerminationOutcome::kBlocked);
}

TEST(TerminationInference, OutstandingAnswersStayUnknown) {
  EXPECT_EQ(infer_termination({}, 3), TerminationOutcome::kUnknown);
  EXPECT_EQ(infer_termination({{0, PeerTxnState::kPrepared}}, 3),
            TerminationOutcome::kUnknown);
  EXPECT_EQ(infer_termination({{0, PeerTxnState::kPrepared},
                               {2, PeerTxnState::kPrepared}},
                              3),
            TerminationOutcome::kUnknown);
}

TEST(TerminationInference, ExhaustiveThreeParticipantEnumeration) {
  // Every complete three-answer combination, checked against the rule
  // priority: commit > abort > blocked.
  const PeerTxnState kStates[] = {
      PeerTxnState::kNeverPrepared, PeerTxnState::kPrepared,
      PeerTxnState::kCommitted, PeerTxnState::kAborted};
  for (PeerTxnState a : kStates) {
    for (PeerTxnState b : kStates) {
      for (PeerTxnState c : kStates) {
        Answers answers{{0, a}, {1, b}, {2, c}};
        TerminationOutcome expected = TerminationOutcome::kBlocked;
        bool committed = false, foreclosed = false;
        for (PeerTxnState s : {a, b, c}) {
          committed |= s == PeerTxnState::kCommitted;
          foreclosed |= s == PeerTxnState::kAborted ||
                        s == PeerTxnState::kNeverPrepared;
        }
        if (committed) {
          expected = TerminationOutcome::kCommit;
        } else if (foreclosed) {
          expected = TerminationOutcome::kAbort;
        }
        EXPECT_EQ(infer_termination(answers, 3), expected)
            << to_string(a) << "/" << to_string(b) << "/" << to_string(c);
      }
    }
  }
}

// --- staged protocol scenarios ---------------------------------------------------

Payload make_payload(std::vector<ObjectId> reads, std::vector<ObjectId> writes,
                     Version read_version, Version commit_version) {
  Payload p;
  for (ObjectId o : reads) p.reads.push_back({o, read_version});
  for (ObjectId o : writes) p.writes.push_back({o, static_cast<Value>(o)});
  p.commit_version = commit_version;
  return p;
}

BaselineCluster::Options coop_options(std::uint64_t seed, bool coop) {
  return {.seed = seed,
          .num_shards = 2,
          .shard_size = 3,
          .cooperative_termination = coop};
}

TEST(TerminationProtocol, RecoversDecisionStrandedInCoordinatorShardLog) {
  // Crash the coordinator one tick after the last participant prepared: the
  // decision command is in flight inside the coordinator's own Paxos group
  // and survives via election re-proposal, but the crashed coordinator
  // never propagates it.  Cooperative termination adopts the surviving
  // COMMIT; classical 2PC strands the peer shard and the client forever.
  for (bool coop : {false, true}) {
    BaselineCluster cluster(coop_options(1, coop));
    BaselineClient& client = cluster.add_client();
    TxnId t = cluster.next_txn_id();
    Payload p = make_payload({0, 1}, {0, 1}, 0, 1);
    ProcessId coordinator = cluster.coordinator_for(p);
    client.certify(coordinator, t, p);
    ASSERT_TRUE(cluster.sim().run_until_pred(
        [&] { return cluster.server(1, 0).has_prepared(t); }));
    cluster.sim().run_until(cluster.sim().now() + 1);
    cluster.crash_server(coordinator);
    cluster.elect_leader(0, cluster.shard_servers(0)[1]);
    cluster.sim().run();

    // The decision survived inside shard 0 either way (guard assertion: the
    // staging hit the intended window).
    ASSERT_TRUE(cluster.server(0, 1).has_decided(t));
    EXPECT_EQ(cluster.verify(), "");
    TerminationStats stats = cluster.termination_stats();
    if (coop) {
      EXPECT_EQ(client.decision(t), Decision::kCommit);
      EXPECT_TRUE(cluster.server(1, 0).has_decided(t));
      EXPECT_EQ(cluster.server(1, 0).decision_of(t), Decision::kCommit);
      // Recovered either by the successor leader adopting the orphaned
      // coordination outright, or by a peer's termination query — whichever
      // the failure detector's timing reached first.
      EXPECT_GE(stats.resolved_commits + stats.adopted_coordinations, 1u);
      EXPECT_EQ(stats.resolved_aborts, 0u);
    } else {
      EXPECT_FALSE(client.decided(t));  // classical 2PC blocks
      EXPECT_FALSE(cluster.server(1, 0).has_decided(t));
      EXPECT_EQ(stats.resolved(), 0u);
    }
  }
}

TEST(TerminationProtocol, StrandedParticipantResolvesViaInDoubtTimeout) {
  // The coordinator survives, but its decision message to the peer shard is
  // eaten by a lossy one-way partition and the baseline never retransmits.
  // The stranded participant's in-doubt timer queries the peers and adopts
  // the committed outcome; without termination the prepared witness poisons
  // the object forever.
  for (bool coop : {false, true}) {
    BaselineCluster cluster(coop_options(2, coop));
    BaselineClient& client = cluster.add_client();
    harness::Nemesis nemesis(cluster.sim(), 7);
    cluster.net().set_fault_injector(&nemesis);
    TxnId t = cluster.next_txn_id();
    Payload p = make_payload({0, 1}, {0, 1}, 0, 1);
    client.certify(cluster.coordinator_for(p), t, p);
    ASSERT_TRUE(cluster.sim().run_until_pred(
        [&] { return cluster.server(1, 0).has_prepared(t); }));
    nemesis.isolate_one_way(
        {cluster.leader_server(1), cluster.paxos_twin(cluster.leader_server(1))},
        40, /*inbound_blocked=*/true, /*lossy=*/true);
    cluster.sim().run();
    // Let the partition window expire before probing with T2.
    cluster.sim().run_until(cluster.sim().now() + 60);

    // The coordinator decided and told the client in both modes (guard).
    ASSERT_EQ(client.decision(t), Decision::kCommit);
    EXPECT_EQ(cluster.server(1, 0).has_decided(t), coop);

    // T2 conflicts with T1's write on shard 1.  Classical: T1's prepared
    // witness is still live there — poisoned, T2 aborts.  Coop: the shard
    // adopted the commit, so T2 reads the new version and commits.
    TxnId t2 = cluster.next_txn_id();
    Payload p2 = make_payload({1}, {1}, coop ? 1 : 0, 2);
    client.certify(cluster.coordinator_for(p2), t2, p2);
    cluster.sim().run();
    ASSERT_TRUE(client.decided(t2));
    EXPECT_EQ(client.decision(t2), coop ? Decision::kCommit : Decision::kAbort);
    EXPECT_EQ(cluster.verify(), "");
  }
}

TEST(TerminationProtocol, NeverPreparedPeerForeclosesAbortAndReleasesObjects) {
  // The prepare for shard 1 dies in a lossy partition, then the coordinator
  // crashes: shard 0 holds an in-doubt prepared record, shard 1 has never
  // heard of the transaction.  The termination query makes shard 1 durably
  // tombstone it (kNeverPrepared), the querier resolves ABORT, and the
  // poisoned object on shard 0 is released for later transactions.
  for (bool coop : {false, true}) {
    BaselineCluster cluster(coop_options(3, coop));
    BaselineClient& client = cluster.add_client();
    harness::Nemesis nemesis(cluster.sim(), 9);
    cluster.net().set_fault_injector(&nemesis);
    TxnId t = cluster.next_txn_id();
    Payload p = make_payload({0, 1}, {0, 1}, 0, 1);
    ProcessId coordinator = cluster.coordinator_for(p);
    nemesis.isolate(
        {cluster.leader_server(1), cluster.paxos_twin(cluster.leader_server(1))},
        30, /*lossy=*/true);
    client.certify(coordinator, t, p);
    ASSERT_TRUE(cluster.sim().run_until_pred(
        [&] { return cluster.server(0, 1).has_prepared(t); }));
    cluster.sim().run_until(cluster.sim().now() + 1);
    cluster.crash_server(coordinator);
    cluster.elect_leader(0, cluster.shard_servers(0)[1]);
    cluster.sim().run();

    ASSERT_FALSE(cluster.server(1, 0).has_prepared(t));  // guard: prepare lost
    TerminationStats stats = cluster.termination_stats();
    if (coop) {
      EXPECT_EQ(client.decision(t), Decision::kAbort);
      EXPECT_TRUE(cluster.server(1, 0).has_decided(t));  // tombstoned
      EXPECT_GE(stats.tombstones, 1u);
      EXPECT_GE(stats.resolved_aborts, 1u);
      EXPECT_EQ(stats.resolved_commits, 0u);
    } else {
      EXPECT_FALSE(client.decided(t));
      EXPECT_EQ(stats.resolved(), 0u);
    }

    // T2 touches T1's object on shard 0: poisoned iff T1 stays prepared.
    TxnId t2 = cluster.next_txn_id();
    Payload p2 = make_payload({0}, {0}, 0, 2);
    client.certify(cluster.coordinator_for(p2), t2, p2);
    cluster.sim().run();
    ASSERT_TRUE(client.decided(t2));
    EXPECT_EQ(client.decision(t2), coop ? Decision::kCommit : Decision::kAbort);
    EXPECT_EQ(cluster.verify(), "");
  }
}

TEST(TerminationProtocol, AllPreparedWindowRemainsBlockedButSafe) {
  // Crash the coordinator at the exact beat the last participant prepared:
  // every vote was YES, no decision exists anywhere, and only the dead
  // coordinator could have known the outcome.  Cooperative termination must
  // NOT invent a decision — the transaction stays blocked (the irreducible
  // 2PC window) and the give-up counter records it.
  BaselineCluster cluster(coop_options(4, /*coop=*/true));
  BaselineClient& client = cluster.add_client();
  TxnId t = cluster.next_txn_id();
  Payload p = make_payload({0, 1}, {0, 1}, 0, 1);
  ProcessId coordinator = cluster.coordinator_for(p);
  client.certify(coordinator, t, p);
  ASSERT_TRUE(cluster.sim().run_until_pred(
      [&] { return cluster.server(1, 0).has_prepared(t); }));
  cluster.crash_server(coordinator);
  cluster.elect_leader(0, cluster.shard_servers(0)[1]);
  cluster.sim().run();  // termination rounds run and give up; queue drains

  EXPECT_FALSE(client.decided(t));
  EXPECT_FALSE(cluster.server(1, 0).has_decided(t));
  TerminationStats stats = cluster.termination_stats();
  EXPECT_GE(stats.queries_sent, 1u);
  EXPECT_GE(stats.blocked, 1u);
  EXPECT_EQ(stats.resolved(), 0u);
  EXPECT_EQ(cluster.verify(), "");
}

TEST(TerminationProtocol, ToggleOffKeepsStatsZeroAndFailureFreeRunsIdentical) {
  // Failure-free runs decide every transaction identically with and without
  // the toggle, and the classical cluster reports all-zero metrics.
  for (bool coop : {false, true}) {
    BaselineCluster cluster(coop_options(5, coop));
    BaselineClient& client = cluster.add_client();
    std::vector<TxnId> txns;
    for (int i = 0; i < 20; ++i) {
      TxnId t = cluster.next_txn_id();
      txns.push_back(t);
      ObjectId a = static_cast<ObjectId>(2 * i);
      ObjectId b = static_cast<ObjectId>(2 * i + 1);
      Payload p = make_payload({a, b}, {a}, 0, 1);
      client.certify(cluster.coordinator_for(p), t, p);
    }
    cluster.sim().run();
    for (TxnId t : txns) EXPECT_EQ(client.decision(t), Decision::kCommit);
    TerminationStats stats = cluster.termination_stats();
    EXPECT_EQ(stats.resolved(), 0u);
    EXPECT_EQ(stats.blocked, 0u);
    if (!coop) {
      EXPECT_EQ(stats.queries_sent, 0u);
      EXPECT_EQ(stats.answers_sent, 0u);
    }
    EXPECT_EQ(cluster.verify(), "");
  }
}

}  // namespace
}  // namespace ratc::baseline
