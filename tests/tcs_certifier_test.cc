// Unit and property tests for the certification functions, including the
// paper's requirements: distributivity (1), local/global matching (3), and
// the f_s/g_s relationships (4) and (5).
#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "common/random.h"
#include "tcs/certifier.h"
#include "tcs/shard_map.h"

namespace ratc::tcs {
namespace {

Payload make_payload(std::vector<ReadEntry> reads, std::vector<WriteEntry> writes,
                     Version vc) {
  Payload p;
  p.reads = std::move(reads);
  p.writes = std::move(writes);
  p.commit_version = vc;
  return p;
}

// --- Serializability: directed cases -------------------------------------

TEST(Serializability, CommitWhenNoConflict) {
  SerializabilityCertifier c;
  Payload committed = make_payload({{1, 0}}, {{1, 5}}, 1);
  Payload l = make_payload({{2, 0}}, {{2, 9}}, 1);
  EXPECT_EQ(c.against_committed(committed, l), Decision::kCommit);
}

TEST(Serializability, AbortWhenReadOverwritten) {
  SerializabilityCertifier c;
  // l read object 1 at version 0; a committed txn wrote it at version 1.
  Payload committed = make_payload({{1, 0}}, {{1, 5}}, 1);
  Payload l = make_payload({{1, 0}}, {}, 0);
  EXPECT_EQ(c.against_committed(committed, l), Decision::kAbort);
}

TEST(Serializability, CommitWhenReadSawTheWrite) {
  SerializabilityCertifier c;
  // l read version 1, which is exactly what the committed txn installed.
  Payload committed = make_payload({{1, 0}}, {{1, 5}}, 1);
  Payload l = make_payload({{1, 1}}, {}, 0);
  EXPECT_EQ(c.against_committed(committed, l), Decision::kCommit);
}

TEST(Serializability, PreparedWriteBlocksReader) {
  SerializabilityCertifier c;
  Payload prepared = make_payload({{1, 0}}, {{1, 5}}, 1);
  Payload l = make_payload({{1, 0}}, {}, 0);
  EXPECT_EQ(c.against_prepared(prepared, l), Decision::kAbort);
}

TEST(Serializability, PreparedReadBlocksWriter) {
  SerializabilityCertifier c;
  Payload prepared = make_payload({{1, 0}}, {}, 0);
  Payload l = make_payload({{1, 0}}, {{1, 3}}, 1);
  EXPECT_EQ(c.against_prepared(prepared, l), Decision::kAbort);
}

TEST(Serializability, PreparedDisjointCommits) {
  SerializabilityCertifier c;
  Payload prepared = make_payload({{1, 0}}, {{1, 5}}, 1);
  Payload l = make_payload({{2, 0}}, {{2, 3}}, 1);
  EXPECT_EQ(c.against_prepared(prepared, l), Decision::kCommit);
}

TEST(Serializability, EmptyPayloadAlwaysCommits) {
  SerializabilityCertifier c;
  Payload committed = make_payload({{1, 0}}, {{1, 5}}, 1);
  EXPECT_EQ(c.against_committed(committed, empty_payload()), Decision::kCommit);
  EXPECT_EQ(c.against_prepared(committed, empty_payload()), Decision::kCommit);
}

// --- Snapshot isolation: directed cases ----------------------------------

TEST(SnapshotIsolation, ReadWriteConflictAllowed) {
  SnapshotIsolationCertifier c;
  // Write skew shape: l read an object the committed txn wrote, but writes
  // elsewhere -> SI commits where serializability aborts.
  Payload committed = make_payload({{1, 0}}, {{1, 5}}, 1);
  Payload l = make_payload({{1, 0}, {2, 0}}, {{2, 9}}, 1);
  EXPECT_EQ(c.against_committed(committed, l), Decision::kCommit);
  SerializabilityCertifier ser;
  EXPECT_EQ(ser.against_committed(committed, l), Decision::kAbort);
}

TEST(SnapshotIsolation, FirstCommitterWinsOnWriteWrite) {
  SnapshotIsolationCertifier c;
  Payload committed = make_payload({{1, 0}}, {{1, 5}}, 1);
  Payload l = make_payload({{1, 0}}, {{1, 7}}, 1);  // wrote 1 from snapshot v0
  EXPECT_EQ(c.against_committed(committed, l), Decision::kAbort);
}

TEST(SnapshotIsolation, SequentialWritersCommit) {
  SnapshotIsolationCertifier c;
  Payload committed = make_payload({{1, 0}}, {{1, 5}}, 1);
  Payload l = make_payload({{1, 1}}, {{1, 7}}, 2);  // snapshot saw version 1
  EXPECT_EQ(c.against_committed(committed, l), Decision::kCommit);
}

TEST(SnapshotIsolation, PreparedWriteWriteBlocks) {
  SnapshotIsolationCertifier c;
  Payload prepared = make_payload({{1, 0}}, {{1, 5}}, 1);
  Payload l = make_payload({{1, 0}}, {{1, 7}}, 1);
  EXPECT_EQ(c.against_prepared(prepared, l), Decision::kAbort);
}

TEST(SnapshotIsolation, PreparedReadOnlyDoesNotBlock) {
  SnapshotIsolationCertifier c;
  Payload prepared = make_payload({{1, 0}}, {}, 0);
  Payload l = make_payload({{1, 0}}, {{1, 7}}, 1);
  EXPECT_EQ(c.against_prepared(prepared, l), Decision::kCommit);
}

TEST(MakeCertifier, ByName) {
  EXPECT_STREQ(make_certifier("serializability")->name(), "serializability");
  EXPECT_STREQ(make_certifier("snapshot-isolation")->name(), "snapshot-isolation");
  EXPECT_THROW(make_certifier("nope"), std::invalid_argument);
}

// --- Set folding (distributivity by construction) -------------------------

TEST(CertifierSets, MeetOverSets) {
  SerializabilityCertifier c;
  Payload a = make_payload({{1, 0}}, {{1, 5}}, 1);
  Payload b = make_payload({{2, 0}}, {{2, 5}}, 1);
  Payload l = make_payload({{1, 0}}, {}, 0);
  std::vector<Payload> both{a, b};
  std::vector<Payload> only_b{b};
  EXPECT_EQ(c.committed_set(both, l), Decision::kAbort);
  EXPECT_EQ(c.committed_set(only_b, l), Decision::kCommit);
  EXPECT_EQ(c.committed_set(std::vector<Payload>{}, l), Decision::kCommit);
}

TEST(CertifierSets, VoteCombinesBothChecks) {
  SerializabilityCertifier c;
  Payload committed = make_payload({{1, 0}}, {{1, 5}}, 1);
  Payload prepared = make_payload({{2, 0}}, {{2, 5}}, 1);
  Payload ok = make_payload({{3, 0}}, {{3, 5}}, 1);
  std::vector<Payload> L1{committed}, L2{prepared};
  EXPECT_EQ(c.vote(L1, L2, ok), Decision::kCommit);
  Payload reads1 = make_payload({{1, 0}}, {}, 0);
  EXPECT_EQ(c.vote(L1, L2, reads1), Decision::kAbort);
  Payload reads2 = make_payload({{2, 0}}, {}, 0);
  EXPECT_EQ(c.vote(L1, L2, reads2), Decision::kAbort);
}

// --- Property tests over random payloads ---------------------------------

class CertifierProperties : public ::testing::TestWithParam<
                                std::tuple<std::string, std::uint64_t>> {
 protected:
  void SetUp() override {
    cert_ = make_certifier(std::get<0>(GetParam()));
    rng_ = std::make_unique<Rng>(std::get<1>(GetParam()));
  }

  /// Random well-formed payload over a small object universe (high conflict
  /// probability).
  Payload random_payload() {
    Payload p;
    std::uint64_t nreads = 1 + rng_->below(4);
    Version maxv = 0;
    for (std::uint64_t i = 0; i < nreads; ++i) {
      ObjectId obj = rng_->below(6);
      if (p.reads_object(obj)) continue;
      Version v = rng_->below(5);
      p.reads.push_back({obj, v});
      maxv = std::max(maxv, v);
    }
    for (const auto& r : p.reads) {
      if (rng_->chance(0.5)) {
        p.writes.push_back({r.object, static_cast<Value>(rng_->below(100))});
      }
    }
    p.commit_version = maxv + 1 + rng_->below(3);
    return p;
  }

  std::unique_ptr<Certifier> cert_;
  std::unique_ptr<Rng> rng_;
};

TEST_P(CertifierProperties, PayloadGeneratorYieldsWellFormed) {
  for (int i = 0; i < 500; ++i) EXPECT_TRUE(random_payload().well_formed());
}

// Requirement (4): g_s(L, l) = commit ⟹ f_s(L, l) = commit.
TEST_P(CertifierProperties, PreparedCheckNoWeakerThanCommitted) {
  for (int i = 0; i < 2000; ++i) {
    Payload other = random_payload();
    Payload l = random_payload();
    if (cert_->against_prepared(other, l) == Decision::kCommit) {
      EXPECT_EQ(cert_->against_committed(other, l), Decision::kCommit)
          << "other=" << other.to_string() << " l=" << l.to_string();
    }
  }
}

// Requirement (5): g_s({l}, l') = commit ⟹ f_s({l'}, l) = commit.
TEST_P(CertifierProperties, PreparedCommutativity) {
  for (int i = 0; i < 2000; ++i) {
    Payload l = random_payload();
    Payload lp = random_payload();
    if (cert_->against_prepared(l, lp) == Decision::kCommit) {
      EXPECT_EQ(cert_->against_committed(lp, l), Decision::kCommit)
          << "l=" << l.to_string() << " l'=" << lp.to_string();
    }
  }
}

// Requirement (1): distributivity over set union (holds by construction;
// verified against an independent fold order).
TEST_P(CertifierProperties, Distributive) {
  for (int i = 0; i < 300; ++i) {
    std::vector<Payload> l1, l2;
    for (std::uint64_t j = 0; j < rng_->below(4); ++j) l1.push_back(random_payload());
    for (std::uint64_t j = 0; j < rng_->below(4); ++j) l2.push_back(random_payload());
    Payload l = random_payload();
    std::vector<Payload> joined = l1;
    joined.insert(joined.end(), l2.begin(), l2.end());
    EXPECT_EQ(cert_->committed_set(joined, l),
              meet(cert_->committed_set(l1, l), cert_->committed_set(l2, l)));
    EXPECT_EQ(cert_->prepared_set(joined, l),
              meet(cert_->prepared_set(l1, l), cert_->prepared_set(l2, l)));
  }
}

// Requirement (3): f(L, l) = commit ⟺ ∀s. f_s(L|s, l|s) = commit.
// With pairwise-defined certifiers this reduces to the projection identity,
// which we verify explicitly over random shard counts.
TEST_P(CertifierProperties, GlobalLocalMatching) {
  for (int i = 0; i < 1000; ++i) {
    std::uint32_t nshards = 1 + static_cast<std::uint32_t>(rng_->below(4));
    ShardMap sm(nshards);
    Payload committed = random_payload();
    Payload l = random_payload();
    Decision global = cert_->against_committed(committed, l);
    Decision local = Decision::kCommit;
    for (ShardId s = 0; s < nshards; ++s) {
      local = meet(local, cert_->against_committed(sm.project(committed, s),
                                                   sm.project(l, s)));
    }
    EXPECT_EQ(global, local) << "committed=" << committed.to_string()
                             << " l=" << l.to_string() << " shards=" << nshards;
  }
}

// ε commits against anything (paper requires f_s(L, ε) = commit).
TEST_P(CertifierProperties, EmptyPayloadCommits) {
  for (int i = 0; i < 500; ++i) {
    Payload other = random_payload();
    EXPECT_EQ(cert_->against_committed(other, empty_payload()), Decision::kCommit);
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllCertifiers, CertifierProperties,
    ::testing::Combine(::testing::Values("serializability", "snapshot-isolation"),
                       ::testing::Values(1u, 2u, 3u, 4u, 5u)),
    [](const auto& info) {
      return std::get<0>(info.param) == "serializability"
                 ? "ser_seed" + std::to_string(std::get<1>(info.param))
                 : "si_seed" + std::to_string(std::get<1>(info.param));
    });

}  // namespace
}  // namespace ratc::tcs
