// Batched certification and the indexed certifier hot path.
//
// Four properties pin the batching/index PR:
//   1. The witness index (commit/witness_index.h) computes the same vote
//      and the same slot-ordered T_s/P_s sets as the flat L1/L2 log scan,
//      on randomized logs, for both shipped certifiers, both via
//      incremental maintenance and after rebuild().
//   2. RunnerStats latency accounting: percentiles are nearest-rank over
//      decided transactions only, and undecided transactions are reported
//      as censored rather than silently averaged in.
//   3. Batched runs stay a pure function of the seed across all three
//      stacks, and batch_size > 1 genuinely changes the wire trace (the
//      batch path is exercised, not silently degenerate).  With
//      check_certifier_index set, every vote is cross-checked against the
//      flat scan in-process — surviving the sweep IS the assertion, since
//      divergence aborts.
//   4. Regression for the prepared_at_ wholesale clear on NEW_STATE: a
//      prepared-undecided slot whose coordinator died must still be
//      re-driven by the line-70 retry after the log travels through two
//      reconfigurations (every live holder received it via NEW_STATE).
#include <gtest/gtest.h>

#include <set>
#include <vector>

#include "commit/cluster.h"
#include "commit/log.h"
#include "commit/witness_index.h"
#include "common/random.h"
#include "rdma/cluster.h"
#include "harness/schedule.h"
#include "harness/sweep.h"
#include "store/runner.h"
#include "tcs/certifier.h"

namespace ratc {
namespace {

using commit::LogEntry;
using commit::Phase;
using commit::ReplicaLog;
using commit::WitnessIndex;
using tcs::Decision;
using tcs::Payload;

// --- 1. witness index == flat scan, randomized ------------------------------

/// The flat collect of Fig. 1's L1/L2 (what commit::Replica::collect_witnesses
/// does), reproduced here as the independent oracle.
WitnessIndex::Witnesses flat_collect(const ReplicaLog& log, Slot slot) {
  WitnessIndex::Witnesses w;
  for (Slot k = 1; k < slot; ++k) {
    const LogEntry* e = log.find(k);
    if (e == nullptr || !e->filled()) continue;
    if (e->phase == Phase::kDecided && e->dec == Decision::kCommit) {
      w.l1.push_back(&e->payload);
      w.committed.push_back(e->txn);
    } else if (e->phase == Phase::kPrepared && e->vote == Decision::kCommit) {
      w.l2.push_back(&e->payload);
      w.prepared.push_back(e->txn);
    }
  }
  return w;
}

/// Random well-formed payload over a small object universe (contended, so
/// aborts actually happen and the committed-writer threshold is exercised).
Payload random_payload(Rng& rng, ObjectId universe) {
  Payload p;
  std::size_t n_reads = 1 + rng.below(3);
  std::set<ObjectId> objects;
  while (objects.size() < n_reads) objects.insert(static_cast<ObjectId>(rng.below(universe)));
  Version max_read = 0;
  for (ObjectId o : objects) {
    Version v = static_cast<Version>(rng.below(6));
    max_read = std::max(max_read, v);
    p.reads.push_back({o, v});
    if (rng.chance(0.6)) p.writes.push_back({o, static_cast<Value>(o)});
  }
  p.commit_version = max_read + 1 + static_cast<Version>(rng.below(3));
  return p;
}

void expect_same_witnesses(const WitnessIndex::Witnesses& idx,
                           const WitnessIndex::Witnesses& flat, Slot at) {
  ASSERT_EQ(idx.committed, flat.committed) << "T_s diverged before slot " << at;
  ASSERT_EQ(idx.prepared, flat.prepared) << "P_s diverged before slot " << at;
  ASSERT_EQ(idx.l1.size(), flat.l1.size());
  ASSERT_EQ(idx.l2.size(), flat.l2.size());
  for (std::size_t i = 0; i < idx.l1.size(); ++i) {
    EXPECT_EQ(*idx.l1[i], *flat.l1[i]) << "L1 payload " << i << " before slot " << at;
  }
  for (std::size_t i = 0; i < idx.l2.size(); ++i) {
    EXPECT_EQ(*idx.l2[i], *flat.l2[i]) << "L2 payload " << i << " before slot " << at;
  }
}

/// Grows a random log slot by slot the way a leader does — vote on the new
/// payload first, then index it — while randomly deciding earlier prepared
/// slots.  At every step the incremental index must agree with the flat
/// scan on the vote and the witness sets.
void run_index_equivalence(const tcs::Certifier& cert, std::uint64_t seed) {
  Rng rng(seed);
  ReplicaLog log;
  WitnessIndex idx;
  constexpr Slot kSlots = 120;
  constexpr ObjectId kUniverse = 12;
  std::vector<Slot> prepared_slots;
  for (Slot k = 1; k <= kSlots; ++k) {
    Payload l = random_payload(rng, kUniverse);
    // Vote before the slot is indexed (the leader votes on the fresh top).
    Decision indexed = idx.vote(cert, log, l);
    WitnessIndex::Witnesses flat = flat_collect(log, k);
    Decision expected = cert.vote(flat.l1, flat.l2, l);
    ASSERT_EQ(indexed, expected)
        << cert.name() << " vote diverged at slot " << k << " (seed " << seed << ")";
    expect_same_witnesses(idx.collect(log, k), flat, k);

    LogEntry& e = log.at(k);
    e.txn = static_cast<TxnId>(k);
    e.payload = l;
    e.vote = indexed;
    e.phase = Phase::kPrepared;
    idx.on_prepared(log, k);
    prepared_slots.push_back(k);

    // Decide a random earlier prepared slot about half the time.  A commit
    // decision requires a commit vote (the global decision is the meet of
    // the shard votes); abort decisions may land on either.
    if (!prepared_slots.empty() && rng.chance(0.5)) {
      std::size_t pick = rng.below(prepared_slots.size());
      Slot j = prepared_slots[pick];
      prepared_slots.erase(prepared_slots.begin() + static_cast<std::ptrdiff_t>(pick));
      LogEntry& d = log.at(j);
      d.dec = (d.vote == Decision::kCommit && rng.chance(0.8)) ? Decision::kCommit
                                                               : Decision::kAbort;
      d.phase = Phase::kDecided;
      idx.on_decided(log, j);
    }
  }

  // rebuild() over the final log must agree with the incrementally
  // maintained index (NEW_STATE / takeover path).
  WitnessIndex rebuilt;
  rebuilt.rebuild(log);
  EXPECT_EQ(rebuilt.committed_size(), idx.committed_size());
  EXPECT_EQ(rebuilt.prepared_size(), idx.prepared_size());
  Slot top = static_cast<Slot>(log.size() + 1);
  expect_same_witnesses(rebuilt.collect(log, top), flat_collect(log, top), top);
  for (int probe = 0; probe < 20; ++probe) {
    Payload l = random_payload(rng, kUniverse);
    WitnessIndex::Witnesses flat = flat_collect(log, top);
    Decision expected = cert.vote(flat.l1, flat.l2, l);
    EXPECT_EQ(idx.vote(cert, log, l), expected) << "incremental probe " << probe;
    EXPECT_EQ(rebuilt.vote(cert, log, l), expected) << "rebuilt probe " << probe;
  }
}

TEST(WitnessIndexEquivalence, SerializabilityMatchesFlatScan) {
  tcs::SerializabilityCertifier cert;
  for (std::uint64_t seed = 1; seed <= 8; ++seed) run_index_equivalence(cert, seed);
}

TEST(WitnessIndexEquivalence, SnapshotIsolationMatchesFlatScan) {
  tcs::SnapshotIsolationCertifier cert;
  for (std::uint64_t seed = 1; seed <= 8; ++seed) run_index_equivalence(cert, seed);
}

// --- 2. RunnerStats: percentiles and censoring ------------------------------

TEST(RunnerStats, NearestRankPercentilesOverDecidedOnly) {
  store::RunnerStats s;
  for (Duration d : {10u, 20u, 30u, 40u, 50u, 60u, 70u, 80u, 90u, 100u}) {
    s.latency_samples.push_back(d);
  }
  s.submitted = 12;
  s.committed = 8;
  s.aborted = 2;
  s.undecided = 2;
  EXPECT_EQ(s.p50_latency(), 50u);
  EXPECT_EQ(s.p99_latency(), 100u);
  EXPECT_EQ(s.latency_percentile(0.0), 10u);
  EXPECT_EQ(s.latency_percentile(1.0), 100u);
  // The two stranded transactions are reported as censored, not averaged in.
  EXPECT_EQ(s.latency_censored(), 2u);
  EXPECT_DOUBLE_EQ(s.committed_fraction(), 8.0 / 12.0);
}

TEST(RunnerStats, EmptyAndDegenerateRunsDoNotDivide) {
  store::RunnerStats s;
  EXPECT_EQ(s.p50_latency(), 0u);
  EXPECT_EQ(s.p99_latency(), 0u);
  EXPECT_DOUBLE_EQ(s.mean_latency(), 0.0);
  EXPECT_DOUBLE_EQ(s.committed_fraction(), 0.0);
  EXPECT_DOUBLE_EQ(s.throughput(), 0.0);
  s.latency_samples = {7};
  EXPECT_EQ(s.p50_latency(), 7u);
  EXPECT_EQ(s.p99_latency(), 7u);
}

// --- 3. batched runs: deterministic and genuinely batched -------------------

harness::ScheduleOptions batch_schedule() {
  harness::ScheduleOptions s;
  s.crashes = 1;
  s.reconfigures = 1;
  s.partitions = 1;
  s.delay_windows = 1;
  s.window_hi = 150;
  return s;
}

TEST(BatchDeterminism, CommitSameSeedIdenticalTrace) {
  harness::CommitWorkloadOptions w;
  w.total_txns = 60;
  w.drain = 4000;
  w.batch_size = 4;
  for (std::uint64_t seed : {3ULL, 11ULL}) {
    Rng r1(seed), r2(seed);
    harness::RunResult a =
        run_commit_workload(seed, w, generate_schedule(r1, batch_schedule()));
    harness::RunResult b =
        run_commit_workload(seed, w, generate_schedule(r2, batch_schedule()));
    EXPECT_EQ(a.fingerprint, b.fingerprint) << "seed " << seed;
    EXPECT_EQ(a.decided, b.decided);
    EXPECT_EQ(a.problems, b.problems);
  }
}

TEST(BatchDeterminism, RdmaSameSeedIdenticalTrace) {
  harness::RdmaWorkloadOptions w;
  w.total_txns = 50;
  w.drain = 4000;
  w.batch_size = 4;
  Rng r1(5), r2(5);
  harness::RunResult a =
      run_rdma_workload(5, w, generate_schedule(r1, batch_schedule()));
  harness::RunResult b =
      run_rdma_workload(5, w, generate_schedule(r2, batch_schedule()));
  EXPECT_EQ(a.fingerprint, b.fingerprint);
  EXPECT_EQ(a.decided, b.decided);
  EXPECT_EQ(a.problems, b.problems);
}

TEST(BatchDeterminism, BaselineSameSeedIdenticalTrace) {
  harness::BaselineWorkloadOptions w;
  w.total_txns = 50;
  w.drain = 4000;
  w.batch_size = 4;
  Rng r1(5), r2(5);
  harness::RunResult a =
      run_baseline_workload(5, w, generate_schedule(r1, batch_schedule()));
  harness::RunResult b =
      run_baseline_workload(5, w, generate_schedule(r2, batch_schedule()));
  EXPECT_EQ(a.fingerprint, b.fingerprint);
  EXPECT_EQ(a.decided, b.decided);
  EXPECT_EQ(a.problems, b.problems);
}

TEST(BatchDeterminism, BatchingChangesTheTrace) {
  // batch_size > 1 must actually take the batched wire path: the grouped
  // CERTIFY/Paxos-append messages separate the trace from the scalar run.
  // (batch_size == 1 IS the scalar path by construction — WorkloadRunner
  // and FaultDriver fall back to submit() for singleton batches.)
  harness::CommitWorkloadOptions scalar;
  scalar.total_txns = 60;
  scalar.drain = 4000;
  harness::CommitWorkloadOptions batched = scalar;
  batched.batch_size = 4;
  Rng r1(7), r2(7);
  harness::RunResult a =
      run_commit_workload(7, scalar, generate_schedule(r1, batch_schedule()));
  harness::RunResult b =
      run_commit_workload(7, batched, generate_schedule(r2, batch_schedule()));
  EXPECT_NE(a.fingerprint, b.fingerprint);
  EXPECT_EQ(b.submitted, static_cast<std::size_t>(batched.total_txns));
}

TEST(BatchDeterminism, IndexCrossCheckSurvivesBatchedSweeps) {
  // check_certifier_index recomputes every vote with the flat scan and
  // aborts the process on divergence — completing the runs is the
  // assertion.  Exercised with batching and faults on both index-bearing
  // stacks.
  harness::CommitWorkloadOptions cw;
  cw.total_txns = 60;
  cw.drain = 4000;
  cw.batch_size = 4;
  cw.check_certifier_index = true;
  // Calibrated (not the 0.9 StackWorkload default): the sweep is
  // deterministic, and with batched decisions routed back to their origin
  // clients a 50-seed census decides 60/60 on EVERY seed (the pre-fix worst
  // was 0.95).  The floor sits one lost transaction below that so a
  // scheduling regression that strands even one batch item trips it.
  cw.min_decided_fraction = 0.98;
  for (std::uint64_t seed = 1; seed <= 3; ++seed) {
    Rng r(seed);
    harness::RunResult res =
        run_commit_workload(seed, cw, generate_schedule(r, batch_schedule()));
    EXPECT_EQ(res.problems, "") << "commit seed " << seed;
  }
  harness::RdmaWorkloadOptions rw;
  rw.total_txns = 50;
  rw.drain = 4000;
  rw.batch_size = 4;
  rw.check_certifier_index = true;
  // Batching widens the known coordinator-crash availability hole (see
  // rdma::Replica::redrive_coordinations): one crashed coordinator now takes
  // a whole batch of in-flight transactions with it.  Calibrated after the
  // origin-client decision-routing fix: seeds 1-3 decide 50/50 (pre-fix
  // 50/48/48); a wider 50-seed census bottoms out at 0.82 when a crash
  // lands mid-batch, so the floor stays one batch (4 txns) below the
  // in-sweep worst rather than at the pre-fix 0.86.
  rw.min_decided_fraction = 0.92;
  for (std::uint64_t seed = 1; seed <= 3; ++seed) {
    Rng r(seed);
    harness::RunResult res =
        run_rdma_workload(seed, rw, generate_schedule(r, batch_schedule()));
    EXPECT_EQ(res.problems, "") << "rdma seed " << seed;
  }
}

TEST(BatchDeterminism, BatchedClientFollowsScalarDecisions) {
  // A conflicting batch through certify_batch_colocated (one CERTIFY round)
  // must reach the same decisions as the same payloads submitted one by one
  // — the sequential fold over the batch is the distributive vote of
  // requirement (1).  check_certifier_index keeps the flat scan asserting
  // along the way.
  auto decisions = [](bool batched) {
    commit::Cluster cluster({.seed = 21,
                             .num_shards = 2,
                             .shard_size = 2,
                             .check_certifier_index = true});
    commit::Client& client = cluster.add_client();
    std::vector<std::pair<TxnId, Payload>> batch;
    for (int i = 0; i < 6; ++i) {
      Payload p;
      // Pairs of transactions contend on the same object with the same
      // read version: within each pair the second must abort.
      ObjectId o = static_cast<ObjectId>(i / 2);
      p.reads = {{o, 0}};
      p.writes = {{o, static_cast<Value>(i)}};
      p.commit_version = 1;
      batch.emplace_back(cluster.next_txn_id(), p);
    }
    if (batched) {
      client.certify_batch_colocated(cluster.replica(0, 1), batch);
    } else {
      for (const auto& [t, p] : batch) {
        client.certify_colocated(cluster.replica(0, 1), t, p);
      }
    }
    cluster.sim().run();
    EXPECT_EQ(cluster.verify(), "");
    std::vector<Decision> out;
    for (const auto& [t, p] : batch) {
      EXPECT_TRUE(client.decided(t));
      out.push_back(client.decision(t).value_or(Decision::kAbort));
    }
    return out;
  };
  EXPECT_EQ(decisions(true), decisions(false));
}

// --- 4. regression: prepared_at_ survives NEW_STATE -------------------------

TEST(RetryRearm, PreparedSlotRedrivenAfterDoubleReconfiguration) {
  // A coordinator dies right after the shard-1 leader prepares its
  // transaction; the slot is prepared-undecided and only the line-70 retry
  // can finish it.  The log then travels through TWO reconfigurations, so
  // every live holder of the slot received it via NEW_STATE — before the
  // fix, handle_new_state cleared prepared_at_ wholesale and never
  // re-armed, dropping the slot from the retry contract forever.
  commit::Cluster cluster({.seed = 33,
                           .num_shards = 2,
                           .shard_size = 2,
                           .spares_per_shard = 4,
                           .retry_timeout = 200});
  commit::Client& client = cluster.add_client();

  // Object 1 lives on shard 1; the coordinator is shard 1's follower.
  Payload p;
  p.reads = {{1, 0}};
  p.writes = {{1, 7}};
  p.commit_version = 1;
  TxnId t = cluster.next_txn_id();
  commit::Replica& coordinator = cluster.replica(1, 1);
  client.certify_colocated(coordinator, t, p);

  // Run until the leader holds the transaction prepared, then kill the
  // coordinator before it can collect the PREPARE_ACK and decide.
  ProcessId r0 = cluster.leader_of(1);
  ASSERT_TRUE(cluster.sim().run_until_pred([&] {
    Slot k = cluster.replica_by_pid(r0).log().slot_of(t);
    return k != kNoSlot &&
           cluster.replica_by_pid(r0).log().find(k)->phase == Phase::kPrepared;
  }));
  cluster.crash(coordinator.id());

  // Reconfiguration 1: the old leader carries the log; the joining spare
  // learns the prepared slot only through NEW_STATE.
  cluster.reconfigure(1, r0);
  ASSERT_TRUE(cluster.await_active_epoch(1, 2));
  configsvc::ShardConfig cfg2 = cluster.current_config(1);
  ProcessId survivor = kNoProcess;
  for (ProcessId m : cfg2.members) {
    if (m != r0) survivor = m;
  }
  ASSERT_NE(survivor, kNoProcess);

  // Reconfiguration 2: kill the last replica that prepared the slot
  // natively.  From here on, every holder got it via NEW_STATE.
  cluster.crash(r0);
  cluster.reconfigure(1, survivor);
  ASSERT_TRUE(cluster.await_active_epoch(1, 3));

  // The re-armed retry timer must re-drive the orphaned slot to a decision
  // on the current leader.  (The client callback died with the coordinator,
  // so the replica log is the observable.)
  ProcessId leader = cluster.leader_of(1);
  bool decided = cluster.sim().run_until_pred(
      [&] {
        Slot k = cluster.replica_by_pid(leader).log().slot_of(t);
        return k != kNoSlot &&
               cluster.replica_by_pid(leader).log().find(k)->phase == Phase::kDecided;
      },
      2'000'000);
  EXPECT_TRUE(decided) << "orphaned prepared slot was never re-driven";
  EXPECT_EQ(cluster.verify(), "");
}

// --- 5. batched coordinator crash: the whole batch must be recovered ---------

/// Builds a 4-item batch of single-object transactions spanning both shards
/// (objects 0..3; shard = object % 2).
template <typename ClusterT>
std::vector<std::pair<TxnId, Payload>> disjoint_batch(ClusterT& cluster) {
  std::vector<std::pair<TxnId, Payload>> batch;
  for (int i = 0; i < 4; ++i) {
    Payload p;
    ObjectId o = static_cast<ObjectId>(i);
    p.reads = {{o, 0}};
    p.writes = {{o, static_cast<Value>(i)}};
    p.commit_version = 1;
    batch.emplace_back(cluster.next_txn_id(), p);
  }
  return batch;
}

/// True when every batch item is held at its shard leader in `phase`.
template <typename ClusterT>
bool batch_in_phase(ClusterT& cluster,
                    const std::vector<std::pair<TxnId, Payload>>& batch,
                    Phase phase) {
  for (const auto& [t, p] : batch) {
    ShardId s = p.writes.front().object % 2;
    const auto& log = cluster.replica_by_pid(cluster.leader_of(s)).log();
    Slot k = log.slot_of(t);
    if (k == kNoSlot || log.find(k)->phase != phase) return false;
  }
  return true;
}

TEST(BatchCrashStrike, CommitRedrivesEveryItemOfAnOrphanedBatch) {
  // One coordinator drives a 4-item batch; it dies after every item is
  // prepared at its shard leader but before any decision lands.  The
  // line-70 retry must re-drive EACH item independently — a successor that
  // recovered only "the batch head" would strand the other three.
  commit::Cluster cluster({.seed = 41,
                           .num_shards = 2,
                           .shard_size = 2,
                           .spares_per_shard = 4,
                           .retry_timeout = 200});
  commit::Client& client = cluster.add_client();
  auto batch = disjoint_batch(cluster);
  commit::Replica& coordinator = cluster.replica(0, 1);
  client.certify_batch_colocated(coordinator, batch);
  ASSERT_TRUE(cluster.sim().run_until_pred(
      [&] { return batch_in_phase(cluster, batch, Phase::kPrepared); }));
  // The dead coordinator is also a shard-0 member: under the all-follower-
  // ack rule nothing can decide until reconfiguration removes it
  // (Assumption 1), mirroring RetryRearm above.
  ProcessId survivor = cluster.leader_of(0);
  cluster.crash(coordinator.id());
  cluster.reconfigure(0, survivor);
  ASSERT_TRUE(cluster.await_active_epoch(0, 2));
  bool all_decided = cluster.sim().run_until_pred(
      [&] { return batch_in_phase(cluster, batch, Phase::kDecided); },
      2'000'000);
  EXPECT_TRUE(all_decided) << "some batch item was never re-driven";
  EXPECT_EQ(cluster.verify(), "");
}

TEST(BatchCrashStrike, RdmaRedrivesEveryItemOfAnOrphanedBatch) {
  rdma::Cluster cluster({.seed = 42,
                         .num_shards = 2,
                         .shard_size = 2,
                         .spares_per_shard = 4,
                         .retry_timeout = 200});
  rdma::Client& client = cluster.add_client();
  auto batch = disjoint_batch(cluster);
  rdma::Replica& coordinator = cluster.replica(0, 1);
  client.certify_batch_colocated(coordinator, batch);
  ASSERT_TRUE(cluster.sim().run_until_pred(
      [&] { return batch_in_phase(cluster, batch, Phase::kPrepared); }));
  // Same Assumption-1 shape, via the RDMA stack's global reconfiguration.
  ProcessId survivor = cluster.leader_of(0);
  Epoch before = cluster.current_epoch();
  cluster.crash(coordinator.id());
  cluster.replica_by_pid(survivor).reconfigure();
  ASSERT_TRUE(cluster.await_active_epoch(before + 1, 200'000));
  bool all_decided = cluster.sim().run_until_pred(
      [&] { return batch_in_phase(cluster, batch, Phase::kDecided); },
      2'000'000);
  EXPECT_TRUE(all_decided) << "some batch item was never re-driven";
  EXPECT_EQ(cluster.verify(), "");
}

TEST(BatchCrashStrike, BaselineCoopDominatesClassicalUnderBatchedCrashes) {
  // The baseline has NO redrive: a crashed 2PC coordinator takes its whole
  // in-flight batch down with it.  Cooperative termination covers exactly
  // the recoverable part — items whose outcome some peer already applied
  // get resolved per item; items where every participant is still prepared
  // and in doubt stay blocked (the classical 2PC window the paper's
  // protocols remove).  BaselineCoopHarness shares the workload salt and
  // pacing with BaselineHarness, so per seed the two variants face the
  // identical batched workload and crash schedule: cooperative termination
  // must never decide fewer transactions, and across the sweep it must
  // strictly recover some batch the classical run lost.
  harness::ScheduleOptions strike;
  strike.crashes = 3;
  strike.reconfigures = 0;
  strike.partitions = 0;
  strike.delay_windows = 0;
  std::size_t coop_total = 0;
  std::size_t classical_total = 0;
  for (std::uint64_t seed = 1; seed <= 8; ++seed) {
    harness::BaselineWorkloadOptions bw;
    bw.total_txns = 50;
    bw.batch_size = 4;
    bw.drain = 6000;
    bw.min_decided_fraction = 0;  // the decided counts ARE the assertion
    harness::BaselineCoopWorkloadOptions cw;
    cw.total_txns = 50;
    cw.batch_size = 4;
    cw.drain = 6000;
    cw.min_decided_fraction = 0;
    Rng r1(seed), r2(seed);
    harness::RunResult classical =
        run_baseline_workload(seed, bw, generate_schedule(r1, strike));
    harness::RunResult coop =
        run_baseline_coop_workload(seed, cw, generate_schedule(r2, strike));
    EXPECT_EQ(classical.problems, "") << "seed " << seed;
    EXPECT_EQ(coop.problems, "") << "seed " << seed;
    EXPECT_GE(coop.decided, classical.decided) << "seed " << seed;
    coop_total += coop.decided;
    classical_total += classical.decided;
  }
  EXPECT_GT(coop_total, classical_total)
      << "cooperative termination never recovered a batch the classical "
         "baseline lost";
}

}  // namespace
}  // namespace ratc
