// Paxos Commit TCS (src/pc/): basic commit/abort flows, the latency edge
// over the baseline (the client reply waits only for the votes to be
// chosen, not for the decision to apply), log-order arbitration between
// prepares and recovery force-aborts, and the headline property — a
// crashed coordinator never strands a fully-prepared transaction, because
// the votes are replicated facts any recovery proposer can read.
#include <gtest/gtest.h>

#include "checker/linearization.h"
#include "pc/cluster.h"
#include "pc/votes.h"

namespace ratc::pc {
namespace {

using tcs::Decision;
using tcs::Payload;

Payload make_payload(std::vector<ObjectId> reads, std::vector<ObjectId> writes,
                     Version read_version, Version commit_version) {
  Payload p;
  for (ObjectId o : reads) p.reads.push_back({o, read_version});
  for (ObjectId o : writes) p.writes.push_back({o, static_cast<Value>(o)});
  p.commit_version = commit_version;
  return p;
}

// --- vote inference (pc/votes.h) ----------------------------------------------

TEST(PcVotes, InferOutcomeEnumeration) {
  using enum VoteState;
  // All participants answered a chosen PREPARED vote: the outcome is the
  // deterministic meet of exactly these values — COMMIT, even though no
  // decision record exists anywhere (the non-blocking rule 2PC lacks).
  EXPECT_EQ(infer_outcome({{0, kVoteCommit}, {1, kVoteCommit}}, 2),
            VoteOutcome::kCommit);
  // Any chosen ABORT vote aborts immediately.
  EXPECT_EQ(infer_outcome({{0, kVoteCommit}, {1, kVoteAbort}}, 2),
            VoteOutcome::kAbort);
  EXPECT_EQ(infer_outcome({{1, kVoteAbort}}, 2), VoteOutcome::kAbort);
  // A peer that already applied a decision short-circuits the inference.
  EXPECT_EQ(infer_outcome({{0, kDecidedCommit}}, 2), VoteOutcome::kCommit);
  EXPECT_EQ(infer_outcome({{0, kDecidedAbort}}, 2), VoteOutcome::kAbort);
  // Missing answers keep the round open (never guess from a subset).
  EXPECT_EQ(infer_outcome({{0, kVoteCommit}}, 2), VoteOutcome::kUnknown);
  EXPECT_EQ(infer_outcome({}, 2), VoteOutcome::kUnknown);
  EXPECT_EQ(infer_outcome({}, 0), VoteOutcome::kUnknown);
}

// --- basic flows --------------------------------------------------------------

TEST(PaxosCommit, SingleShardCommit) {
  PcCluster cluster({.seed = 1, .num_shards = 1, .shard_size = 3});
  PcClient& client = cluster.add_client();
  TxnId t = cluster.next_txn_id();
  Payload p = make_payload({0}, {0}, 0, 1);
  client.certify(cluster.coordinator_for(p), t, p);
  cluster.sim().run();
  EXPECT_EQ(client.decision(t), Decision::kCommit);
  EXPECT_EQ(cluster.verify(), "");
}

TEST(PaxosCommit, CrossShardCommitWithAllReplicasApplying) {
  PcCluster cluster({.seed = 2, .num_shards = 2, .shard_size = 3});
  PcClient& client = cluster.add_client();
  TxnId t = cluster.next_txn_id();
  Payload p = make_payload({0, 1}, {0, 1}, 0, 1);
  client.certify(cluster.coordinator_for(p), t, p);
  cluster.sim().run();
  ASSERT_EQ(client.decision(t), Decision::kCommit);
  // Every replica of both shards applied the decision (state machine).
  for (ShardId s = 0; s < 2; ++s) {
    for (std::size_t i = 0; i < 3; ++i) {
      EXPECT_TRUE(cluster.server(s, i).has_decided(t)) << "s" << s << " idx " << i;
      EXPECT_EQ(cluster.server(s, i).decision_of(t), Decision::kCommit);
    }
  }
  EXPECT_EQ(cluster.verify(), "");
}

TEST(PaxosCommit, ConflictAborts) {
  PcCluster cluster({.seed = 3, .num_shards = 1, .shard_size = 3});
  PcClient& client = cluster.add_client();
  TxnId t1 = cluster.next_txn_id(), t2 = cluster.next_txn_id();
  Payload p1 = make_payload({0}, {0}, 0, 1);
  Payload p2 = make_payload({0}, {0}, 0, 1);
  client.certify(cluster.coordinator_for(p1), t1, p1);
  client.certify(cluster.coordinator_for(p2), t2, p2);
  cluster.sim().run();
  int commits = (client.decision(t1) == Decision::kCommit ? 1 : 0) +
                (client.decision(t2) == Decision::kCommit ? 1 : 0);
  EXPECT_EQ(commits, 1);
  auto lin = checker::check_linearization(cluster.history(), cluster.certifier());
  EXPECT_TRUE(lin.ok) << lin.error;
}

TEST(PaxosCommit, ManyTransactionsAcrossShards) {
  PcCluster cluster({.seed = 7, .num_shards = 3, .shard_size = 3});
  PcClient& client = cluster.add_client();
  std::vector<TxnId> txns;
  for (int i = 0; i < 60; ++i) {
    TxnId t = cluster.next_txn_id();
    txns.push_back(t);
    ObjectId a = static_cast<ObjectId>(3 * i);
    ObjectId b = static_cast<ObjectId>(3 * i + 1);
    Payload p = make_payload({a, b}, {a}, 0, 1);
    client.certify(cluster.coordinator_for(p), t, p);
  }
  cluster.sim().run();
  for (TxnId t : txns) EXPECT_EQ(client.decision(t), Decision::kCommit);
  auto lin = checker::check_linearization(cluster.history(), cluster.certifier());
  EXPECT_TRUE(lin.ok) << lin.error;
  EXPECT_EQ(cluster.verify(), "");
}

// --- the latency edge ---------------------------------------------------------

TEST(PaxosCommit, CrossShardLatencyBeatsBaselineEightDelays) {
  // The baseline replies after 1 submit + 7 protocol delays (its decision
  // must replicate through the coordinator's shard before the reply).  In
  // Paxos Commit the chosen votes ARE the decision, so the coordinator
  // replies as soon as the last vote lands: submit + SUBMIT_PREPARE +
  // Phase2a + Phase2b + vote + reply = 6 delays, two fewer.
  PcCluster cluster({.seed = 4, .num_shards = 2, .shard_size = 3});
  PcClient& client = cluster.add_client();
  TxnId t = cluster.next_txn_id();
  Payload p = make_payload({0, 1}, {0}, 0, 1);
  client.certify(cluster.coordinator_for(p), t, p);
  cluster.sim().run();
  ASSERT_TRUE(client.decided(t));
  EXPECT_EQ(client.latency(t), 6u);
  EXPECT_EQ(cluster.verify(), "");
}

TEST(PaxosCommit, SingleShardLatencyIsOnePaxosRound) {
  // Single-shard: the coordinator IS the only participant's leader, so the
  // reply waits for one Paxos append of the prepare (the vote), not a
  // second round for the decision: submit + Phase2a + Phase2b + reply = 4
  // (baseline: 6).
  PcCluster cluster({.seed = 5, .num_shards = 1, .shard_size = 3});
  PcClient& client = cluster.add_client();
  TxnId t = cluster.next_txn_id();
  Payload p = make_payload({0}, {0}, 0, 1);
  client.certify(cluster.coordinator_for(p), t, p);
  cluster.sim().run();
  ASSERT_TRUE(client.decided(t));
  EXPECT_EQ(client.latency(t), 4u);
}

// --- recovery: the reason this stack exists -----------------------------------

TEST(PaxosCommit, CoordinatorCrashInAllPreparedWindowStillCommits) {
  // The 2PC killer scenario: every participant voted PREPARED, then the
  // coordinator died before externalizing anything.  Classical 2PC blocks
  // forever; cooperative termination gives up (all-prepared is exactly its
  // undecidable window).  Here the votes are chosen Paxos values, so the
  // surviving shards' recovery proposers read them back, infer COMMIT, and
  // finish the transaction — client included.
  PcCluster cluster({.seed = 11, .num_shards = 2, .shard_size = 3});
  PcClient& client = cluster.add_client();
  TxnId t = cluster.next_txn_id();
  Payload p = make_payload({0, 1}, {0, 1}, 0, 1);
  ProcessId coordinator = cluster.coordinator_for(p);
  client.certify(coordinator, t, p);

  // Step tick by tick until the remote shard's leader has applied the
  // prepare (its vote is now chosen) but no decision exists anywhere; the
  // PC_VOTE message is still in flight toward the coordinator.
  Participant& remote = cluster.server_by_pid(cluster.leader_server(1));
  while (!remote.has_prepared(t) && cluster.sim().now() < 100) {
    cluster.sim().run_until(cluster.sim().now() + 1);
  }
  ASSERT_TRUE(remote.has_prepared(t));
  ASSERT_FALSE(remote.has_decided(t));

  // Kill the coordinator machine; a survivor takes over shard 0.
  cluster.crash_server(coordinator);
  for (ProcessId m : cluster.shard_servers(0)) {
    if (!cluster.sim().crashed(m)) {
      cluster.elect_leader(0, m);
      break;
    }
  }
  cluster.sim().run();

  // Non-blocking termination: the client learns COMMIT and every surviving
  // replica of both shards applies it.
  EXPECT_EQ(client.decision(t), Decision::kCommit);
  for (ShardId s = 0; s < 2; ++s) {
    for (ProcessId pid : cluster.shard_servers(s)) {
      if (cluster.sim().crashed(pid)) continue;
      EXPECT_TRUE(cluster.server_by_pid(pid).has_decided(t)) << "pid " << pid;
      EXPECT_EQ(cluster.server_by_pid(pid).decision_of(t), Decision::kCommit);
    }
  }
  TerminationStats stats = cluster.termination_stats();
  EXPECT_GE(stats.resolved_commits, 1u);
  EXPECT_EQ(stats.blocked, 0u);
  EXPECT_EQ(cluster.verify(), "");
}

TEST(PaxosCommit, ForceAbortTombstoneWinsRaceAgainstLatePrepare) {
  // Log-order arbitration, recovery side first: a recovery proposer forces
  // txn t's vote instance closed (ABORT) before any prepare reaches the
  // shard.  The tombstone is the chosen value, so a late prepare for t must
  // vote ABORT and the transaction aborts globally.
  PcCluster cluster({.seed = 12, .num_shards = 2, .shard_size = 3});
  PcClient& client = cluster.add_client();
  TxnId t = cluster.next_txn_id();
  Payload p = make_payload({0, 1}, {0, 1}, 0, 1);

  // Close the instance on shard 1 (a remote participant of p) directly
  // through its Paxos log, as a recovery proposer would.
  Participant& s1_leader = cluster.server_by_pid(cluster.leader_server(1));
  s1_leader.paxos().submit(sim::AnyMessage(PcCmdForceAbort{t, kNoProcess}));
  cluster.sim().run();

  client.certify(cluster.coordinator_for(p), t, p);
  cluster.sim().run();
  EXPECT_EQ(client.decision(t), Decision::kAbort);
  EXPECT_EQ(cluster.verify(), "");
}

TEST(PaxosCommit, LateForceAbortCannotOverturnChosenVote) {
  // Log-order arbitration, prepare side first: once a transaction has
  // committed, a straggling recovery force-abort must be a no-op — the
  // first vote-determining log entry wins.
  PcCluster cluster({.seed = 13, .num_shards = 2, .shard_size = 3});
  PcClient& client = cluster.add_client();
  TxnId t = cluster.next_txn_id();
  Payload p = make_payload({0, 1}, {0, 1}, 0, 1);
  client.certify(cluster.coordinator_for(p), t, p);
  cluster.sim().run();
  ASSERT_EQ(client.decision(t), Decision::kCommit);

  Participant& s1_leader = cluster.server_by_pid(cluster.leader_server(1));
  s1_leader.paxos().submit(sim::AnyMessage(PcCmdForceAbort{t, kNoProcess}));
  cluster.sim().run();
  for (ShardId s = 0; s < 2; ++s) {
    for (std::size_t i = 0; i < 3; ++i) {
      EXPECT_EQ(cluster.server(s, i).decision_of(t), Decision::kCommit);
    }
  }
  EXPECT_EQ(cluster.verify(), "");
}

// --- failover and reads -------------------------------------------------------

TEST(PaxosCommit, SurvivesMinorityFailureViaElection) {
  PcCluster cluster({.seed = 8, .num_shards = 2, .shard_size = 3});
  PcClient& client = cluster.add_client();
  TxnId t1 = cluster.next_txn_id();
  Payload p1 = make_payload({0, 1}, {0}, 0, 1);
  client.certify(cluster.coordinator_for(p1), t1, p1);
  cluster.sim().run();
  ASSERT_EQ(client.decision(t1), Decision::kCommit);

  // Crash shard 0's leader; replica 1 takes over (2f+1 = 3, f = 1).
  cluster.fail_over(0, 1);
  cluster.sim().run();

  TxnId t2 = cluster.next_txn_id();
  Payload p2 = make_payload({2, 3}, {2}, 0, 1);
  client.certify(cluster.coordinator_for(p2), t2, p2);
  cluster.sim().run();
  EXPECT_EQ(client.decision(t2), Decision::kCommit);
  // The new leader's state machine retains t1's commit.
  EXPECT_TRUE(cluster.server(0, 1).has_decided(t1));
  EXPECT_EQ(cluster.verify(), "");
}

TEST(PaxosCommit, SnapshotReadServesCommittedState) {
  PcCluster cluster({.seed = 9, .num_shards = 2, .shard_size = 3});
  PcClient& client = cluster.add_client();
  TxnId t = cluster.next_txn_id();
  Payload p = make_payload({0, 1}, {0, 1}, 0, 1);
  client.certify(cluster.coordinator_for(p), t, p);
  cluster.sim().run();
  ASSERT_EQ(client.decision(t), Decision::kCommit);

  // Zero-message CSN read across both shards: served by the caught-up
  // leaders at the min of their watermarks, which now covers t's commit.
  std::optional<tcs::Csn> snap = cluster.snapshot_read({0, 1});
  ASSERT_TRUE(snap.has_value());
  EXPECT_GE(snap->ts, 1u);
  EXPECT_EQ(cluster.verify(), "");
}

TEST(PaxosCommit, SnapshotIsolationVariant) {
  PcCluster cluster(
      {.seed = 10, .num_shards = 1, .shard_size = 3, .isolation = "snapshot-isolation"});
  PcClient& client = cluster.add_client();
  TxnId t1 = cluster.next_txn_id(), t2 = cluster.next_txn_id();
  // Write skew commits under SI.
  Payload p1 = make_payload({0, 2}, {0}, 0, 1);
  Payload p2 = make_payload({0, 2}, {2}, 0, 1);
  client.certify(cluster.coordinator_for(p1), t1, p1);
  client.certify(cluster.coordinator_for(p2), t2, p2);
  cluster.sim().run();
  EXPECT_EQ(client.decision(t1), Decision::kCommit);
  EXPECT_EQ(client.decision(t2), Decision::kCommit);
}

TEST(PaxosCommit, BatchCertifyScalarFallbackAndGrouping) {
  PcCluster cluster({.seed = 14, .num_shards = 2, .shard_size = 3});
  PcClient& client = cluster.add_client();
  // Batch of three sharing a coordinator: one PC_CERTIFY_BATCH; a batch of
  // one degrades to the scalar PC_CERTIFY message.
  std::vector<std::pair<TxnId, Payload>> batch;
  for (int i = 0; i < 3; ++i) {
    batch.emplace_back(cluster.next_txn_id(),
                       make_payload({static_cast<ObjectId>(2 * i)},
                                    {static_cast<ObjectId>(2 * i)}, 0, 1));
  }
  ProcessId coordinator = cluster.coordinator_for(batch.front().second);
  client.certify_batch(coordinator, batch);
  TxnId solo = cluster.next_txn_id();
  Payload sp = make_payload({6}, {6}, 0, 1);
  client.certify_batch(cluster.coordinator_for(sp), {{solo, sp}});
  cluster.sim().run();
  for (const auto& [txn, payload] : batch) {
    EXPECT_EQ(client.decision(txn), Decision::kCommit) << "txn " << txn;
  }
  EXPECT_EQ(client.decision(solo), Decision::kCommit);
  const auto& traffic = cluster.net().traffic(client.id());
  EXPECT_EQ(traffic.sent_by_type.at("PC_CERTIFY_BATCH"), 1u);
  EXPECT_EQ(traffic.sent_by_type.at("PC_CERTIFY"), 1u);
  EXPECT_EQ(cluster.verify(), "");
}

}  // namespace
}  // namespace ratc::pc
