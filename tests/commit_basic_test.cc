// Failure-free behaviour of the atomic commit protocol (Fig. 1, Fig. 2a):
// certification, votes, decisions, message flow, and latency claims.
#include <gtest/gtest.h>

#include "checker/linearization.h"
#include "commit/cluster.h"

namespace ratc::commit {
namespace {

using tcs::Decision;
using tcs::Payload;

/// Payload reading `objs` at version `v` and writing those in `writes`.
Payload make_payload(std::vector<ObjectId> reads, std::vector<ObjectId> writes,
                     Version read_version, Version commit_version) {
  Payload p;
  for (ObjectId o : reads) p.reads.push_back({o, read_version});
  for (ObjectId o : writes) p.writes.push_back({o, static_cast<Value>(o * 10)});
  p.commit_version = commit_version;
  return p;
}

TEST(CommitBasic, SingleShardCommit) {
  Cluster cluster({.seed = 1, .num_shards = 1, .shard_size = 2});
  Client& client = cluster.add_client();
  TxnId t = cluster.next_txn_id();
  client.certify_colocated(cluster.replica(0, 1), t, make_payload({0}, {0}, 0, 1));
  cluster.sim().run();
  EXPECT_EQ(client.decision(t), Decision::kCommit);
  EXPECT_EQ(cluster.verify(), "");
}

TEST(CommitBasic, CrossShardCommit) {
  Cluster cluster({.seed = 2, .num_shards = 3, .shard_size = 2});
  Client& client = cluster.add_client();
  TxnId t = cluster.next_txn_id();
  // Objects 0,1,2 live on shards 0,1,2.
  client.certify_colocated(cluster.replica(0, 1), t,
                           make_payload({0, 1, 2}, {0, 1}, 0, 1));
  cluster.sim().run();
  EXPECT_EQ(client.decision(t), Decision::kCommit);
  // Every member of every involved shard learned the decision.
  for (ShardId s = 0; s < 3; ++s) {
    for (std::size_t i = 0; i < 2; ++i) {
      const Replica& r = cluster.replica(s, i);
      Slot k = r.log().slot_of(t);
      ASSERT_NE(k, kNoSlot) << "s" << s << " replica " << i;
      EXPECT_EQ(r.log().find(k)->phase, Phase::kDecided);
      EXPECT_EQ(r.log().find(k)->dec, Decision::kCommit);
    }
  }
  EXPECT_EQ(cluster.verify(), "");
}

TEST(CommitBasic, ConflictingTransactionAborts) {
  Cluster cluster({.seed = 3, .num_shards = 1, .shard_size = 2});
  Client& client = cluster.add_client();
  TxnId t1 = cluster.next_txn_id();
  TxnId t2 = cluster.next_txn_id();
  // Both read object 0 at version 0 and write it: the second one certified
  // must abort (g_s lock-conflict check while t1 is prepared, or f_s version
  // check after t1 commits).
  client.certify_colocated(cluster.replica(0, 1), t1, make_payload({0}, {0}, 0, 1));
  client.certify_colocated(cluster.replica(0, 1), t2, make_payload({0}, {0}, 0, 1));
  cluster.sim().run();
  EXPECT_EQ(client.decision(t1), Decision::kCommit);
  EXPECT_EQ(client.decision(t2), Decision::kAbort);
  EXPECT_EQ(cluster.verify(), "");
}

TEST(CommitBasic, NonConflictingTransactionsAllCommit) {
  Cluster cluster({.seed = 4, .num_shards = 2, .shard_size = 2});
  Client& client = cluster.add_client();
  std::vector<TxnId> txns;
  for (int i = 0; i < 20; ++i) {
    TxnId t = cluster.next_txn_id();
    txns.push_back(t);
    // Disjoint objects: 2*i and 2*i+1 (shards 0 and 1).
    client.certify_colocated(cluster.replica(0, 1), t,
                             make_payload({static_cast<ObjectId>(2 * i),
                                           static_cast<ObjectId>(2 * i + 1)},
                                          {static_cast<ObjectId>(2 * i)}, 0, 1));
  }
  cluster.sim().run();
  for (TxnId t : txns) EXPECT_EQ(client.decision(t), Decision::kCommit);
  EXPECT_EQ(cluster.verify(), "");
  // The committed projection is linearizable (black-box TCS check).
  auto lin = checker::check_linearization(cluster.history(), cluster.certifier());
  EXPECT_TRUE(lin.ok) << lin.error;
}

TEST(CommitBasic, SequentialConflictHandledByVersionBump) {
  Cluster cluster({.seed = 5, .num_shards = 1, .shard_size = 2});
  Client& client = cluster.add_client();
  TxnId t1 = cluster.next_txn_id();
  client.certify_colocated(cluster.replica(0, 1), t1, make_payload({0}, {0}, 0, 1));
  cluster.sim().run();
  ASSERT_EQ(client.decision(t1), Decision::kCommit);
  // t2 read the version t1 installed: no conflict.
  TxnId t2 = cluster.next_txn_id();
  client.certify_colocated(cluster.replica(0, 1), t2, make_payload({0}, {0}, 1, 2));
  cluster.sim().run();
  EXPECT_EQ(client.decision(t2), Decision::kCommit);
  EXPECT_EQ(cluster.verify(), "");
}

TEST(CommitBasic, ColocatedClientLearnsInFourDelays) {
  // Paper Sec. 3: "We can further reduce this to 4 by co-locating the
  // client with the transaction coordinator."
  Cluster cluster({.seed = 6, .num_shards = 2, .shard_size = 2});
  Client& client = cluster.add_client();
  TxnId t = cluster.next_txn_id();
  client.certify_colocated(cluster.replica(0, 1), t, make_payload({0, 1}, {0}, 0, 1));
  cluster.sim().run();
  ASSERT_TRUE(client.decided(t));
  EXPECT_EQ(client.latency(t), 4u);
}

TEST(CommitBasic, RemoteClientLearnsInFiveDelaysAfterCoordinator) {
  // Paper Sec. 3: 5 message delays from when the coordinator starts; the
  // client-observed latency adds the submission hop.
  Cluster cluster({.seed = 7, .num_shards = 2, .shard_size = 2});
  Client& client = cluster.add_client();
  TxnId t = cluster.next_txn_id();
  client.certify_remote(cluster.replica(0, 1).id(), t, make_payload({0, 1}, {0}, 0, 1));
  cluster.sim().run();
  ASSERT_TRUE(client.decided(t));
  EXPECT_EQ(client.latency(t), 6u);  // 1 (submit) + 5 (protocol)
}

TEST(CommitBasic, Figure2aMessageFlow) {
  // The delivered message sequence for one transaction matches Fig. 2a:
  // PREPARE -> PREPARE_ACK -> ACCEPT -> ACCEPT_ACK -> DECISION.
  Cluster cluster({.seed = 8, .num_shards = 2, .shard_size = 2, .enable_tracer = true});
  Client& client = cluster.add_client();
  TxnId t = cluster.next_txn_id();
  client.certify_colocated(cluster.replica(0, 1), t, make_payload({0, 1}, {0}, 0, 1));
  cluster.sim().run();
  ASSERT_TRUE(client.decided(t));
  auto types = cluster.tracer().delivered_types();
  // Two shards: 2 PREPAREs, 2 PREPARE_ACKs, 2 ACCEPTs (one follower each),
  // 2 ACCEPT_ACKs, then DECISIONs; strictly phased under unit delays.
  std::vector<std::string> expect{"PREPARE",    "PREPARE",    "PREPARE_ACK",
                                  "PREPARE_ACK", "ACCEPT",     "ACCEPT",
                                  "ACCEPT_ACK", "ACCEPT_ACK"};
  ASSERT_GE(types.size(), expect.size());
  for (std::size_t i = 0; i < expect.size(); ++i) EXPECT_EQ(types[i], expect[i]);
  for (std::size_t i = expect.size(); i < types.size(); ++i) {
    EXPECT_EQ(types[i], "DECISION");
  }
}

TEST(CommitBasic, LeaderLoadIsThreeMessagesPerTransaction) {
  // Paper Sec. 3: "each involved leader only has to receive one PREPARE and
  // one DECISION message, and send one PREPARE_ACK message."
  Cluster cluster({.seed = 9, .num_shards = 1, .shard_size = 3});
  Client& client = cluster.add_client();
  const int kTxns = 50;
  for (int i = 0; i < kTxns; ++i) {
    client.certify_colocated(cluster.replica(0, 1), cluster.next_txn_id(),
                             make_payload({static_cast<ObjectId>(i)},
                                          {static_cast<ObjectId>(i)}, 0, 1));
  }
  cluster.sim().run();
  const auto& leader_traffic = cluster.net().traffic(cluster.leader_of(0));
  EXPECT_EQ(leader_traffic.received_by_type.at("PREPARE"), kTxns);
  EXPECT_EQ(leader_traffic.received_by_type.at("DECISION"), kTxns);
  EXPECT_EQ(leader_traffic.sent_by_type.at("PREPARE_ACK"), kTxns);
  // The leader never ships ACCEPTs — the coordinator does.
  EXPECT_EQ(leader_traffic.sent_by_type.count("ACCEPT"), 0u);
  EXPECT_EQ(cluster.verify(), "");
}

TEST(CommitBasic, SingleReplicaShards) {
  // f = 0: one replica per shard, no followers to wait for.
  Cluster cluster({.seed = 10, .num_shards = 2, .shard_size = 1});
  Client& client = cluster.add_client();
  TxnId t = cluster.next_txn_id();
  client.certify_colocated(cluster.replica(0, 0), t, make_payload({0, 1}, {1}, 0, 1));
  cluster.sim().run();
  EXPECT_EQ(client.decision(t), Decision::kCommit);
  EXPECT_EQ(cluster.verify(), "");
}

TEST(CommitBasic, LargerShardsStillDecide) {
  Cluster cluster({.seed = 11, .num_shards = 2, .shard_size = 4});
  Client& client = cluster.add_client();
  TxnId t = cluster.next_txn_id();
  client.certify_colocated(cluster.replica(1, 2), t, make_payload({0, 1}, {0, 1}, 0, 1));
  cluster.sim().run();
  EXPECT_EQ(client.decision(t), Decision::kCommit);
  EXPECT_EQ(cluster.verify(), "");
}

TEST(CommitBasic, ManyClientsInterleaved) {
  Cluster cluster({.seed = 12, .num_shards = 2, .shard_size = 2});
  std::vector<Client*> clients;
  for (int i = 0; i < 4; ++i) clients.push_back(&cluster.add_client());
  // All clients race on the same object; exactly one write per version can
  // win at each step, but with concurrent submission only one commits.
  std::vector<TxnId> txns;
  for (int i = 0; i < 4; ++i) {
    TxnId t = cluster.next_txn_id();
    txns.push_back(t);
    clients[static_cast<std::size_t>(i)]->certify_colocated(
        cluster.replica(0, static_cast<std::size_t>(i % 2)), t,
        make_payload({0}, {0}, 0, 1));
  }
  cluster.sim().run();
  int commits = 0;
  for (std::size_t i = 0; i < 4; ++i) {
    ASSERT_TRUE(clients[i]->decided(txns[i]));
    if (clients[i]->decision(txns[i]) == Decision::kCommit) ++commits;
  }
  EXPECT_EQ(commits, 1);
  EXPECT_EQ(cluster.verify(), "");
  auto lin = checker::check_linearization(cluster.history(), cluster.certifier());
  EXPECT_TRUE(lin.ok) << lin.error;
}

TEST(CommitBasic, SnapshotIsolationAllowsWriteSkew) {
  Cluster cluster(
      {.seed = 13, .num_shards = 1, .shard_size = 2, .isolation = "snapshot-isolation"});
  Client& client = cluster.add_client();
  // Write skew: t1 reads {0,2} writes 0; t2 reads {0,2} writes 2.
  TxnId t1 = cluster.next_txn_id(), t2 = cluster.next_txn_id();
  Payload p1 = make_payload({0, 2}, {0}, 0, 1);
  Payload p2 = make_payload({0, 2}, {2}, 0, 1);
  client.certify_colocated(cluster.replica(0, 1), t1, p1);
  client.certify_colocated(cluster.replica(0, 1), t2, p2);
  cluster.sim().run();
  EXPECT_EQ(client.decision(t1), Decision::kCommit);
  EXPECT_EQ(client.decision(t2), Decision::kCommit);  // SI commits both
  EXPECT_EQ(cluster.verify(), "");
}

TEST(CommitBasic, SerializabilityRejectsWriteSkew) {
  Cluster cluster({.seed = 14, .num_shards = 1, .shard_size = 2});
  Client& client = cluster.add_client();
  TxnId t1 = cluster.next_txn_id(), t2 = cluster.next_txn_id();
  client.certify_colocated(cluster.replica(0, 1), t1, make_payload({0, 2}, {0}, 0, 1));
  client.certify_colocated(cluster.replica(0, 1), t2, make_payload({0, 2}, {2}, 0, 1));
  cluster.sim().run();
  // One of them must abort under serializability.
  int commits = (client.decision(t1) == Decision::kCommit ? 1 : 0) +
                (client.decision(t2) == Decision::kCommit ? 1 : 0);
  EXPECT_EQ(commits, 1);
  EXPECT_EQ(cluster.verify(), "");
}

TEST(CommitBasic, ExponentialDelaysStillCorrect) {
  Cluster cluster({.seed = 15,
                   .num_shards = 3,
                   .shard_size = 2,
                   .exponential_delays = true,
                   .delay_mean = 7.0});
  Client& client = cluster.add_client();
  std::vector<TxnId> txns;
  for (int i = 0; i < 30; ++i) {
    TxnId t = cluster.next_txn_id();
    txns.push_back(t);
    client.certify_colocated(
        cluster.replica(static_cast<ShardId>(i % 3), 1), t,
        make_payload({static_cast<ObjectId>(i), static_cast<ObjectId>(i + 30)},
                     {static_cast<ObjectId>(i)}, 0, 1));
  }
  cluster.sim().run();
  for (TxnId t : txns) EXPECT_TRUE(client.decided(t));
  EXPECT_EQ(cluster.verify(), "");
}

TEST(CommitBasic, HistoryRecordsAreComplete) {
  Cluster cluster({.seed = 16, .num_shards = 2, .shard_size = 2});
  Client& client = cluster.add_client();
  for (int i = 0; i < 10; ++i) {
    client.certify_colocated(cluster.replica(0, 0), cluster.next_txn_id(),
                             make_payload({static_cast<ObjectId>(i)}, {}, 0, 0));
  }
  cluster.sim().run();
  EXPECT_TRUE(cluster.history().complete());
  EXPECT_EQ(cluster.history().committed_count() + cluster.history().aborted_count(),
            10u);
}

}  // namespace
}  // namespace ratc::commit
