// Baseline 2PC-over-Paxos TCS: correctness and the 7-message-delay latency
// the paper's introduction cites for the vanilla scheme.
#include <gtest/gtest.h>

#include "baseline/cluster.h"
#include "checker/linearization.h"

namespace ratc::baseline {
namespace {

using tcs::Decision;
using tcs::Payload;

Payload make_payload(std::vector<ObjectId> reads, std::vector<ObjectId> writes,
                     Version read_version, Version commit_version) {
  Payload p;
  for (ObjectId o : reads) p.reads.push_back({o, read_version});
  for (ObjectId o : writes) p.writes.push_back({o, static_cast<Value>(o)});
  p.commit_version = commit_version;
  return p;
}

TEST(Baseline, SingleShardCommit) {
  BaselineCluster cluster({.seed = 1, .num_shards = 1, .shard_size = 3});
  BaselineClient& client = cluster.add_client();
  TxnId t = cluster.next_txn_id();
  Payload p = make_payload({0}, {0}, 0, 1);
  client.certify(cluster.coordinator_for(p), t, p);
  cluster.sim().run();
  EXPECT_EQ(client.decision(t), Decision::kCommit);
}

TEST(Baseline, CrossShardCommitWithAllReplicasApplying) {
  BaselineCluster cluster({.seed = 2, .num_shards = 2, .shard_size = 3});
  BaselineClient& client = cluster.add_client();
  TxnId t = cluster.next_txn_id();
  Payload p = make_payload({0, 1}, {0, 1}, 0, 1);
  client.certify(cluster.coordinator_for(p), t, p);
  cluster.sim().run();
  ASSERT_EQ(client.decision(t), Decision::kCommit);
  // Every replica of both shards applied the decision (state machine).
  for (ShardId s = 0; s < 2; ++s) {
    for (std::size_t i = 0; i < 3; ++i) {
      EXPECT_TRUE(cluster.server(s, i).has_decided(t)) << "s" << s << " idx " << i;
      EXPECT_EQ(cluster.server(s, i).decision_of(t), Decision::kCommit);
    }
  }
}

TEST(Baseline, ConflictAborts) {
  BaselineCluster cluster({.seed = 3, .num_shards = 1, .shard_size = 3});
  BaselineClient& client = cluster.add_client();
  TxnId t1 = cluster.next_txn_id(), t2 = cluster.next_txn_id();
  Payload p1 = make_payload({0}, {0}, 0, 1);
  Payload p2 = make_payload({0}, {0}, 0, 1);
  client.certify(cluster.coordinator_for(p1), t1, p1);
  client.certify(cluster.coordinator_for(p2), t2, p2);
  cluster.sim().run();
  int commits = (client.decision(t1) == Decision::kCommit ? 1 : 0) +
                (client.decision(t2) == Decision::kCommit ? 1 : 0);
  EXPECT_EQ(commits, 1);
  auto lin = checker::check_linearization(cluster.history(), cluster.certifier());
  EXPECT_TRUE(lin.ok) << lin.error;
}

TEST(Baseline, CrossShardLatencyIsSevenDelaysPlusSubmission) {
  // Paper Sec. 1/3: the vanilla scheme takes 7 message delays to learn a
  // decision (from the coordinator; +1 for the client's submission hop).
  BaselineCluster cluster({.seed = 4, .num_shards = 2, .shard_size = 3});
  BaselineClient& client = cluster.add_client();
  TxnId t = cluster.next_txn_id();
  Payload p = make_payload({0, 1}, {0}, 0, 1);
  client.certify(cluster.coordinator_for(p), t, p);
  cluster.sim().run();
  ASSERT_TRUE(client.decided(t));
  EXPECT_EQ(client.latency(t), 8u);  // 1 submit + 7 protocol
}

TEST(Baseline, SingleShardFastPathStillNeedsDurableDecision) {
  // Even single-shard transactions pay two Paxos round trips (prepare +
  // decision) before the reply: 4 delays + reply, +1 submit.
  BaselineCluster cluster({.seed = 5, .num_shards = 1, .shard_size = 3});
  BaselineClient& client = cluster.add_client();
  TxnId t = cluster.next_txn_id();
  Payload p = make_payload({0}, {0}, 0, 1);
  client.certify(cluster.coordinator_for(p), t, p);
  cluster.sim().run();
  ASSERT_TRUE(client.decided(t));
  EXPECT_EQ(client.latency(t), 6u);  // submit + 2x(phase2a+phase2b) + reply
}

TEST(Baseline, PaxosLeaderCarriesReplicationLoad) {
  // Unlike the paper's protocol (coordinator ships ACCEPTs), the baseline
  // leader relays every replication round: 2 Phase2a fan-outs per
  // transaction it hosts.
  BaselineCluster cluster({.seed = 6, .num_shards = 1, .shard_size = 3});
  BaselineClient& client = cluster.add_client();
  const int kTxns = 20;
  for (int i = 0; i < kTxns; ++i) {
    TxnId t = cluster.next_txn_id();
    Payload p = make_payload({static_cast<ObjectId>(i)}, {static_cast<ObjectId>(i)},
                             0, 1);
    client.certify(cluster.coordinator_for(p), t, p);
  }
  cluster.sim().run();
  // The shard's Paxos leader sent 2 commands * 2 followers Phase2a messages
  // per transaction.
  const auto& t = cluster.net().traffic(cluster.server(0, 0).paxos().id());
  EXPECT_GE(t.sent_by_type.at("PAXOS_2A"), 2u * 2u * kTxns);
}

TEST(Baseline, ManyTransactionsAcrossShards) {
  BaselineCluster cluster({.seed = 7, .num_shards = 3, .shard_size = 3});
  BaselineClient& client = cluster.add_client();
  std::vector<TxnId> txns;
  for (int i = 0; i < 60; ++i) {
    TxnId t = cluster.next_txn_id();
    txns.push_back(t);
    ObjectId a = static_cast<ObjectId>(3 * i);
    ObjectId b = static_cast<ObjectId>(3 * i + 1);
    Payload p = make_payload({a, b}, {a}, 0, 1);
    client.certify(cluster.coordinator_for(p), t, p);
  }
  cluster.sim().run();
  for (TxnId t : txns) EXPECT_EQ(client.decision(t), Decision::kCommit);
  auto lin = checker::check_linearization(cluster.history(), cluster.certifier());
  EXPECT_TRUE(lin.ok) << lin.error;
}

TEST(Baseline, SurvivesMinorityFailureViaElection) {
  BaselineCluster cluster({.seed = 8, .num_shards = 2, .shard_size = 3});
  BaselineClient& client = cluster.add_client();
  TxnId t1 = cluster.next_txn_id();
  Payload p1 = make_payload({0, 1}, {0}, 0, 1);
  client.certify(cluster.coordinator_for(p1), t1, p1);
  cluster.sim().run();
  ASSERT_EQ(client.decision(t1), Decision::kCommit);

  // Crash shard 0's leader; replica 1 takes over (2f+1 = 3, f = 1).
  cluster.fail_over(0, 1);
  cluster.sim().run();

  TxnId t2 = cluster.next_txn_id();
  Payload p2 = make_payload({2, 3}, {2}, 0, 1);
  client.certify(cluster.coordinator_for(p2), t2, p2);
  cluster.sim().run();
  EXPECT_EQ(client.decision(t2), Decision::kCommit);
  // The new leader's state machine retains t1's commit.
  EXPECT_TRUE(cluster.server(0, 1).has_decided(t1));
}

TEST(Baseline, SnapshotIsolationVariant) {
  BaselineCluster cluster(
      {.seed = 9, .num_shards = 1, .shard_size = 3, .isolation = "snapshot-isolation"});
  BaselineClient& client = cluster.add_client();
  TxnId t1 = cluster.next_txn_id(), t2 = cluster.next_txn_id();
  // Write skew commits under SI.
  Payload p1 = make_payload({0, 2}, {0}, 0, 1);
  Payload p2 = make_payload({0, 2}, {2}, 0, 1);
  client.certify(cluster.coordinator_for(p1), t1, p1);
  client.certify(cluster.coordinator_for(p2), t2, p2);
  cluster.sim().run();
  EXPECT_EQ(client.decision(t1), Decision::kCommit);
  EXPECT_EQ(client.decision(t2), Decision::kCommit);
}

}  // namespace
}  // namespace ratc::baseline
