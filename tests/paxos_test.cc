#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <vector>

#include "paxos/replica.h"
#include "sim/network.h"
#include "sim/simulator.h"

namespace ratc::paxos {
namespace {

struct Cmd {
  static constexpr const char* kName = "CMD";
  int value = 0;
};

/// Harness: a group of Paxos replicas recording what they apply.
class Group {
 public:
  Group(sim::Simulator& sim, sim::Network& net, std::size_t n) {
    std::vector<ProcessId> ids;
    for (std::size_t i = 0; i < n; ++i) ids.push_back(static_cast<ProcessId>(100 + i));
    applied.resize(n);
    for (std::size_t i = 0; i < n; ++i) {
      PaxosReplica::Options opt;
      opt.group = ids;
      opt.initial_leader = ids[0];
      auto& log = applied[i];
      replicas.push_back(std::make_unique<PaxosReplica>(
          sim, net, ids[i], "paxos" + std::to_string(i), opt,
          [&log](Slot, const sim::AnyMessage& cmd) {
            log.push_back(cmd.as<Cmd>()->value);
          }));
      sim.add_process(replicas.back().get());
    }
  }

  PaxosReplica& operator[](std::size_t i) { return *replicas[i]; }

  std::vector<std::unique_ptr<PaxosReplica>> replicas;
  std::vector<std::vector<int>> applied;
};

TEST(Paxos, ReplicatesInOrder) {
  sim::Simulator sim(1);
  sim::Network net(sim);
  Group g(sim, net, 3);
  for (int i = 0; i < 10; ++i) g[0].submit(sim::AnyMessage(Cmd{i}));
  sim.run();
  std::vector<int> expect{0, 1, 2, 3, 4, 5, 6, 7, 8, 9};
  for (auto& log : g.applied) EXPECT_EQ(log, expect);
}

TEST(Paxos, ForwardsSubmissionsToLeader) {
  sim::Simulator sim(2);
  sim::Network net(sim);
  Group g(sim, net, 3);
  g[1].submit(sim::AnyMessage(Cmd{7}));  // non-leader
  g[2].submit(sim::AnyMessage(Cmd{8}));  // non-leader
  sim.run();
  for (auto& log : g.applied) {
    ASSERT_EQ(log.size(), 2u);
  }
  EXPECT_EQ(g.applied[0], g.applied[1]);
  EXPECT_EQ(g.applied[0], g.applied[2]);
}

TEST(Paxos, SingleReplicaGroupWorks) {
  sim::Simulator sim(3);
  sim::Network net(sim);
  Group g(sim, net, 1);
  g[0].submit(sim::AnyMessage(Cmd{1}));
  g[0].submit(sim::AnyMessage(Cmd{2}));
  sim.run();
  EXPECT_EQ(g.applied[0], (std::vector<int>{1, 2}));
}

TEST(Paxos, LeaderFailoverPreservesChosenCommands) {
  sim::Simulator sim(4);
  sim::Network net(sim);
  Group g(sim, net, 3);
  for (int i = 0; i < 5; ++i) g[0].submit(sim::AnyMessage(Cmd{i}));
  sim.run();
  ASSERT_EQ(g.applied[1].size(), 5u);

  sim.crash(g[0].id());
  g[1].start_election();
  sim.run();
  EXPECT_TRUE(g[1].is_leader());

  for (int i = 5; i < 8; ++i) g[1].submit(sim::AnyMessage(Cmd{i}));
  sim.run();
  std::vector<int> expect{0, 1, 2, 3, 4, 5, 6, 7};
  EXPECT_EQ(g.applied[1], expect);
  EXPECT_EQ(g.applied[2], expect);
}

TEST(Paxos, FailoverRecoversInFlightCommand) {
  sim::Simulator sim(5);
  sim::Network net(sim);
  Group g(sim, net, 3);
  // Let the group settle with one committed command.
  g[0].submit(sim::AnyMessage(Cmd{1}));
  sim.run();
  // Submit another and crash the leader after the Phase2a messages go out
  // (run exactly to the point where acceptors stored it but the commit
  // hasn't been learned everywhere).
  g[0].submit(sim::AnyMessage(Cmd{2}));
  sim.run_until(sim.now() + 1);  // Phase2a delivered, acks in flight
  sim.crash(g[0].id());
  g[1].start_election();
  sim.run();
  ASSERT_TRUE(g[1].is_leader());
  // The new leader must have re-proposed the accepted command.
  EXPECT_EQ(g.applied[1], (std::vector<int>{1, 2}));
  EXPECT_EQ(g.applied[2], (std::vector<int>{1, 2}));
}

TEST(Paxos, CompetingCandidatesConverge) {
  sim::Simulator sim(6);
  sim::Network net(sim);
  Group g(sim, net, 5);
  for (int i = 0; i < 3; ++i) g[0].submit(sim::AnyMessage(Cmd{i}));
  sim.run();
  sim.crash(g[0].id());
  // Two candidates race.
  g[1].start_election();
  g[2].start_election();
  sim.run();
  // At most one winner; chosen prefix preserved at the winner.
  int leaders = (g[1].is_leader() ? 1 : 0) + (g[2].is_leader() ? 1 : 0);
  ASSERT_GE(leaders, 1);
  // The higher ballot (p2's, by tie-break on process id) wins if both raced
  // at the same round; either way submissions continue safely.
  PaxosReplica& winner = g[2].is_leader() ? g[2] : g[1];
  winner.submit(sim::AnyMessage(Cmd{99}));
  sim.run();
  for (std::size_t i = 1; i < 5; ++i) {
    ASSERT_EQ(g.applied[i].size(), 4u) << "replica " << i;
    EXPECT_EQ(g.applied[i].back(), 99);
    EXPECT_EQ((std::vector<int>(g.applied[i].begin(), g.applied[i].begin() + 3)),
              (std::vector<int>{0, 1, 2}));
  }
}

TEST(Paxos, CompetingProposersOnSameSlotConvergeOnOneValue) {
  // Two replicas both believe they may lead and propose DIFFERENT commands
  // that land on the same slot — the exact shape of a contended Paxos
  // Commit vote instance (a late prepare racing a recovery force-abort).
  // Acceptors must choose exactly one value for the slot and every replica
  // must apply the same sequence.
  sim::Simulator sim(8);
  sim::Network net(sim);
  Group g(sim, net, 5);
  for (int i = 0; i < 3; ++i) g[0].submit(sim::AnyMessage(Cmd{i}));
  sim.run();
  sim.crash(g[0].id());

  // g[1] takes over cleanly first.
  g[1].start_election();
  sim.run();
  ASSERT_TRUE(g[1].is_leader());

  // g[2] starts a competing (higher-ballot) election; while its phase 1 is
  // in flight, both proposers get a submission.  Both target the same next
  // slot: g[1] proposes under its established ballot, g[2] buffers and
  // proposes once its phase 1 completes.
  g[2].start_election();
  g[1].submit(sim::AnyMessage(Cmd{10}));
  g[2].submit(sim::AnyMessage(Cmd{20}));
  sim.run();

  // Probe through whoever won so stragglers get filled/committed.
  PaxosReplica& winner = g[2].is_leader() ? g[2] : g[1];
  winner.submit(sim::AnyMessage(Cmd{99}));
  sim.run();

  // Convergence: all alive replicas applied the identical sequence, the
  // shared prefix survived, the probe landed, and no command was applied
  // twice (one value per slot).
  for (std::size_t i = 2; i < 5; ++i) {
    EXPECT_EQ(g.applied[i], g.applied[1]) << "replica " << i;
  }
  const std::vector<int>& log = g.applied[1];
  ASSERT_GE(log.size(), 4u);
  EXPECT_EQ((std::vector<int>(log.begin(), log.begin() + 3)),
            (std::vector<int>{0, 1, 2}));
  EXPECT_EQ(log.back(), 99);
  for (int contested : {10, 20, 99}) {
    EXPECT_LE(std::count(log.begin(), log.end(), contested), 1)
        << "command " << contested << " chosen for more than one slot";
  }
}

TEST(Paxos, CaughtUpGateClosesAcrossLeaderCrash) {
  // The leader gate CSN snapshot reads rely on: caught_up() must be false
  // while an election is in progress (a fresh leader has not necessarily
  // applied its predecessors' chosen commands yet) and true again once the
  // new leader has applied everything.
  sim::Simulator sim(9);
  sim::Network net(sim);
  Group g(sim, net, 3);
  for (int i = 0; i < 5; ++i) g[0].submit(sim::AnyMessage(Cmd{i}));
  sim.run();
  EXPECT_TRUE(g[0].caught_up());
  EXPECT_TRUE(g[1].caught_up());  // followers apply too

  // Crash the leader with a command in flight (acceptors stored it, the
  // commit is not yet learned everywhere).
  g[0].submit(sim::AnyMessage(Cmd{5}));
  sim.run_until(sim.now() + 1);
  sim.crash(g[0].id());

  // The gate must already be closed on the candidate the moment it starts
  // electing — before any message flows.
  g[1].start_election();
  EXPECT_FALSE(g[1].is_leader());
  EXPECT_FALSE(g[1].caught_up());

  sim.run();
  // Election done: the new leader recovered the in-flight command, applied
  // the full prefix, and may serve reads again.
  ASSERT_TRUE(g[1].is_leader());
  EXPECT_TRUE(g[1].caught_up());
  EXPECT_EQ(g.applied[1], (std::vector<int>{0, 1, 2, 3, 4, 5}));
  EXPECT_EQ(g.applied[2], g.applied[1]);
}

TEST(Paxos, NoDivergentLogsUnderRepeatedFailover) {
  sim::Simulator sim(7);
  sim::Network net(sim);
  Group g(sim, net, 5);
  int next_value = 0;
  for (int round = 0; round < 3; ++round) {
    std::size_t leader_idx = 0;
    for (std::size_t i = 0; i < 5; ++i) {
      if (!sim.crashed(g[i].id()) && g[i].is_leader()) leader_idx = i;
    }
    for (int i = 0; i < 3; ++i) g[leader_idx].submit(sim::AnyMessage(Cmd{next_value++}));
    sim.run();
    if (round < 2) {
      sim.crash(g[leader_idx].id());
      // Next alive replica becomes candidate.
      for (std::size_t i = 0; i < 5; ++i) {
        if (!sim.crashed(g[i].id())) {
          g[i].start_election();
          break;
        }
      }
      sim.run();
    }
  }
  // All alive replicas agree on the full applied sequence.
  std::vector<int>* reference = nullptr;
  for (std::size_t i = 0; i < 5; ++i) {
    if (sim.crashed(g[i].id())) continue;
    if (reference == nullptr) {
      reference = &g.applied[i];
    } else {
      EXPECT_EQ(g.applied[i], *reference) << "replica " << i;
    }
  }
  ASSERT_NE(reference, nullptr);
  EXPECT_EQ(reference->size(), 9u);
}

}  // namespace
}  // namespace ratc::paxos
