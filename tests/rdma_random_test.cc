// Randomized property tests for the RDMA-based protocol: random contended
// workloads with global reconfigurations injected mid-stream.  Verifies
// decision uniqueness (Invariant 4), property (*) / Invariant 13 (no stale
// ACCEPT ever lands), and linearizability of small committed projections.
#include <gtest/gtest.h>

#include <map>

#include "checker/linearization.h"
#include "common/random.h"
#include "rdma/cluster.h"

namespace ratc::rdma {
namespace {

using tcs::Decision;
using tcs::Payload;

struct DriverConfig {
  std::uint64_t seed = 1;
  std::uint32_t num_shards = 3;
  int total_txns = 200;
  int reconfigure_every = 50;  ///< global reconfiguration period (txns)
  ObjectId objects = 24;
};

class RdmaDriver {
 public:
  explicit RdmaDriver(const DriverConfig& cfg)
      : cfg_(cfg),
        cluster_({.seed = cfg.seed,
                  .num_shards = cfg.num_shards,
                  .shard_size = 2,
                  .spares_per_shard = 4,
                  .retry_timeout = 100}),
        rng_(cfg.seed ^ 0x5eed) {
    client_ = &cluster_.add_client();
    client_->on_decision = [this](TxnId t, Decision d) {
      if (d != Decision::kCommit) return;
      auto it = payloads_.find(t);
      if (it == payloads_.end()) return;
      for (const auto& w : it->second.writes) {
        versions_[w.object] = std::max(versions_[w.object], it->second.commit_version);
      }
    };
  }

  void run() {
    int since_reconfig = 0;
    for (int i = 0; i < cfg_.total_txns; ++i) {
      submit_one();
      cluster_.sim().run_until(cluster_.sim().now() + rng_.range(0, 5));
      if (++since_reconfig >= cfg_.reconfigure_every) {
        since_reconfig = 0;
        inject_failure_and_reconfigure();
      }
    }
    cluster_.sim().run_until(cluster_.sim().now() + 5000);
  }

  void verify() {
    EXPECT_EQ(cluster_.verify(), "") << "seed " << cfg_.seed;
    EXPECT_GE(client_->decided_count() * 10, payloads_.size() * 9)
        << "seed " << cfg_.seed << ": " << client_->decided_count() << "/"
        << payloads_.size() << " decided";
    if (cluster_.history().committed_txns().size() <= 25) {
      auto lin = checker::check_linearization(cluster_.history(), cluster_.certifier());
      EXPECT_TRUE(lin.ok) << lin.error;
    }
  }

 private:
  void submit_one() {
    Payload p;
    std::uint64_t n = 1 + rng_.below(3);
    Version maxv = 0;
    for (std::uint64_t j = 0; j < n; ++j) {
      ObjectId obj = rng_.below(cfg_.objects);
      if (p.reads_object(obj)) continue;
      Version v = versions_.count(obj) ? versions_[obj] : 0;
      p.reads.push_back({obj, v});
      maxv = std::max(maxv, v);
    }
    for (const auto& r : p.reads) {
      if (rng_.chance(0.6)) {
        p.writes.push_back({r.object, static_cast<Value>(rng_.below(1000))});
      }
    }
    p.commit_version = maxv + 1;

    Replica* coord = pick_coordinator();
    if (coord == nullptr) return;
    TxnId t = cluster_.next_txn_id();
    payloads_[t] = p;
    client_->certify_colocated(*coord, t, p);
  }

  Replica* pick_coordinator() {
    for (int attempts = 0; attempts < 20; ++attempts) {
      ShardId s = static_cast<ShardId>(rng_.below(cfg_.num_shards));
      configsvc::ShardConfig cfg = cluster_.current_config(s);
      if (cfg.members.empty()) continue;
      ProcessId pid = cfg.members[rng_.below(cfg.members.size())];
      if (cluster_.sim().crashed(pid)) continue;
      Replica& r = cluster_.replica_by_pid(pid);
      if (r.epoch() != cfg.epoch) continue;
      return &r;
    }
    return nullptr;
  }

  void inject_failure_and_reconfigure() {
    // Crash one follower somewhere, then reconfigure GLOBALLY from a
    // surviving member (the only option the safe protocol has).
    ShardId s = static_cast<ShardId>(rng_.below(cfg_.num_shards));
    configsvc::ShardConfig cfg = cluster_.current_config(s);
    std::vector<ProcessId> alive;
    for (ProcessId m : cfg.members) {
      if (!cluster_.sim().crashed(m)) alive.push_back(m);
    }
    if (alive.size() <= 1) return;
    ProcessId victim = alive[rng_.below(alive.size())];
    cluster_.crash(victim);
    ProcessId survivor = victim == alive[0] ? alive[1] : alive[0];
    Epoch before = cluster_.current_epoch();
    cluster_.replica_by_pid(survivor).reconfigure();
    cluster_.await_active_epoch(before + 1, 500000);
  }

  DriverConfig cfg_;
  Cluster cluster_;
  Rng rng_;
  Client* client_ = nullptr;
  std::map<TxnId, Payload> payloads_;
  std::map<ObjectId, Version> versions_;
};

class RdmaRandom : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(RdmaRandom, FailureFreeWorkloadIsCorrect) {
  DriverConfig cfg;
  cfg.seed = GetParam();
  cfg.reconfigure_every = 1 << 30;
  RdmaDriver driver(cfg);
  driver.run();
  driver.verify();
}

TEST_P(RdmaRandom, GlobalReconfigurationChurnIsCorrect) {
  DriverConfig cfg;
  cfg.seed = GetParam() * 13 + 3;
  cfg.total_txns = 180;
  cfg.reconfigure_every = 60;
  RdmaDriver driver(cfg);
  driver.run();
  driver.verify();
}

INSTANTIATE_TEST_SUITE_P(Seeds, RdmaRandom, ::testing::Values(1, 2, 3, 4),
                         [](const auto& info) {
                           return "seed" + std::to_string(info.param);
                         });

}  // namespace
}  // namespace ratc::rdma
