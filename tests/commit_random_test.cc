// Randomized property tests (experiment E12): under random workloads,
// crashes, reconfigurations and coordinator recovery, every execution must
// satisfy the Figure 3/5 invariants (checked online by the monitor) and the
// TCS-LL constraints of Figure 6 (checked post-hoc), and histories must
// stay linearizable.
#include <gtest/gtest.h>

#include <map>
#include <vector>

#include "checker/linearization.h"
#include "commit/cluster.h"
#include "common/random.h"

namespace ratc::commit {
namespace {

using tcs::Decision;
using tcs::Payload;

struct DriverConfig {
  std::uint64_t seed = 1;
  std::uint32_t num_shards = 3;
  std::size_t shard_size = 2;
  std::size_t spares_per_shard = 4;
  int total_txns = 300;
  /// Every `crash_every` transactions, crash one replica and reconfigure.
  int crash_every = 60;
  ObjectId object_universe = 24;
  std::string isolation = "serializability";
  /// Exponential link delays widen the space of explored schedules far
  /// beyond the unit-delay lockstep.
  bool exponential_delays = false;
};

/// Drives a cluster with a contended random workload and failure injection.
class RandomDriver {
 public:
  explicit RandomDriver(const DriverConfig& cfg)
      : cfg_(cfg),
        cluster_({.seed = cfg.seed,
                  .num_shards = cfg.num_shards,
                  .shard_size = cfg.shard_size,
                  .spares_per_shard = cfg.spares_per_shard,
                  .isolation = cfg.isolation,
                  .retry_timeout = cfg.exponential_delays ? Duration{400} : Duration{80},
                  .exponential_delays = cfg.exponential_delays,
                  .delay_mean = 4.0}),
        rng_(cfg.seed ^ 0xabcdef) {
    client_ = &cluster_.add_client();
    client_->on_decision = [this](TxnId t, Decision d) {
      if (d == Decision::kCommit) {
        auto it = payloads_.find(t);
        if (it != payloads_.end()) {
          for (const auto& w : it->second.writes) {
            versions_[w.object] = std::max(versions_[w.object],
                                           it->second.commit_version);
          }
        }
      }
    };
  }

  void run() {
    int since_crash = 0;
    for (int i = 0; i < cfg_.total_txns; ++i) {
      submit_one();
      // Let the system breathe a random number of ticks so submissions
      // overlap in interesting ways.
      cluster_.sim().run_until(cluster_.sim().now() + rng_.range(0, 6));
      if (++since_crash >= cfg_.crash_every) {
        since_crash = 0;
        inject_failure();
      }
    }
    // Drain: bounded because retry timers re-arm forever.
    cluster_.sim().run_until(cluster_.sim().now() + 5000);
  }

  void verify() {
    std::string problems = cluster_.verify();
    EXPECT_EQ(problems, "") << "seed " << cfg_.seed;
    // Most transactions must decide (some may be lost with their
    // coordinators, which the paper allows).
    EXPECT_GE(client_->decided_count() * 10, payloads_.size() * 9)
        << "seed " << cfg_.seed << ": only " << client_->decided_count() << " of "
        << payloads_.size() << " decided";
    std::vector<TxnId> committed = cluster_.history().committed_txns();
    if (committed.size() <= 25) {
      auto lin = checker::check_linearization(cluster_.history(), cluster_.certifier());
      EXPECT_TRUE(lin.ok) << lin.error;
    }
  }

  Cluster& cluster() { return cluster_; }
  std::size_t submitted() const { return payloads_.size(); }
  std::size_t decided() const { return client_->decided_count(); }

 private:
  void submit_one() {
    Payload p;
    std::uint64_t nobjs = 1 + rng_.below(3);
    Version maxv = 0;
    for (std::uint64_t j = 0; j < nobjs; ++j) {
      ObjectId obj = rng_.below(cfg_.object_universe);
      if (p.reads_object(obj)) continue;
      Version v = versions_.count(obj) ? versions_[obj] : 0;
      p.reads.push_back({obj, v});
      maxv = std::max(maxv, v);
    }
    for (const auto& r : p.reads) {
      if (rng_.chance(0.6)) {
        p.writes.push_back({r.object, static_cast<Value>(rng_.below(1000))});
      }
    }
    p.commit_version = maxv + 1;

    Replica* coord = pick_alive_coordinator();
    if (coord == nullptr) return;
    TxnId t = cluster_.next_txn_id();
    payloads_[t] = p;
    client_->certify_colocated(*coord, t, p);
  }

  Replica* pick_alive_coordinator() {
    for (int attempts = 0; attempts < 20; ++attempts) {
      ShardId s = static_cast<ShardId>(rng_.below(cfg_.num_shards));
      configsvc::ShardConfig cfg = cluster_.current_config(s);
      if (cfg.members.empty()) continue;
      ProcessId pid = cfg.members[rng_.below(cfg.members.size())];
      if (cluster_.sim().crashed(pid)) continue;
      Replica& r = cluster_.replica_by_pid(pid);
      // Must have a current view of its own shard to coordinate.
      if (r.epoch() != cfg.epoch) continue;
      return &r;
    }
    return nullptr;
  }

  void inject_failure() {
    ShardId s = static_cast<ShardId>(rng_.below(cfg_.num_shards));
    configsvc::ShardConfig cfg = cluster_.current_config(s);
    // Keep at least one live member so Assumption 1 holds.
    std::vector<ProcessId> alive;
    for (ProcessId m : cfg.members) {
      if (!cluster_.sim().crashed(m)) alive.push_back(m);
    }
    if (alive.size() < cfg.members.size() || alive.size() <= 1) return;
    ProcessId victim = alive[rng_.below(alive.size())];
    cluster_.crash(victim);
    ProcessId survivor = kNoProcess;
    for (ProcessId m : alive) {
      if (m != victim) survivor = m;
    }
    cluster_.reconfigure(s, survivor);
    cluster_.await_active_epoch(s, cfg.epoch + 1, 500000);
  }

  DriverConfig cfg_;
  Cluster cluster_;
  Rng rng_;
  Client* client_ = nullptr;
  std::map<TxnId, Payload> payloads_;
  std::map<ObjectId, Version> versions_;
};

class CommitRandom : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(CommitRandom, FailureFreeWorkloadIsCorrect) {
  DriverConfig cfg;
  cfg.seed = GetParam();
  cfg.total_txns = 250;
  cfg.crash_every = 1 << 30;  // no failures
  RandomDriver driver(cfg);
  driver.run();
  driver.verify();
  // Without failures every transaction decides.
  EXPECT_EQ(driver.decided(), driver.submitted());
}

TEST_P(CommitRandom, CrashyWorkloadIsCorrect) {
  DriverConfig cfg;
  cfg.seed = GetParam() * 77 + 5;
  cfg.total_txns = 260;
  cfg.crash_every = 55;
  RandomDriver driver(cfg);
  driver.run();
  driver.verify();
}

TEST_P(CommitRandom, ExponentialDelaysWithCrashesAreCorrect) {
  DriverConfig cfg;
  cfg.seed = GetParam() * 101 + 9;
  cfg.total_txns = 200;
  cfg.crash_every = 80;
  cfg.exponential_delays = true;
  RandomDriver driver(cfg);
  driver.run();
  driver.verify();
}

TEST_P(CommitRandom, SnapshotIsolationWorkloadIsCorrect) {
  DriverConfig cfg;
  cfg.seed = GetParam() * 31 + 1;
  cfg.total_txns = 200;
  cfg.crash_every = 70;
  cfg.isolation = "snapshot-isolation";
  RandomDriver driver(cfg);
  driver.run();
  driver.verify();
}

INSTANTIATE_TEST_SUITE_P(Seeds, CommitRandom, ::testing::Values(1, 2, 3, 4, 5, 6),
                         [](const auto& info) {
                           return "seed" + std::to_string(info.param);
                         });

TEST(CommitRandomBig, LargeContendedRun) {
  DriverConfig cfg;
  cfg.seed = 424242;
  cfg.total_txns = 2000;
  cfg.crash_every = 400;
  cfg.num_shards = 4;
  cfg.object_universe = 40;
  RandomDriver driver(cfg);
  driver.run();
  driver.verify();
}

TEST(CommitRandomBig, SingleMemberShardsUnderChurn) {
  // f = 0: reconfiguration replaces the only replica wholesale.
  DriverConfig cfg;
  cfg.seed = 77;
  cfg.num_shards = 2;
  cfg.shard_size = 1;
  cfg.total_txns = 150;
  cfg.crash_every = 1 << 30;  // crashing the only member loses the shard
  RandomDriver driver(cfg);
  driver.run();
  driver.verify();
}

}  // namespace
}  // namespace ratc::commit
