// Fault-injection sweeps (the harness's reason to exist): N-seed sweeps of
// nemesis schedules — crash-stop, mid-transaction reconfiguration, network
// partitions (single-victim, majority splits, asymmetric one-way), clock
// skew, message drops and delay spikes — over the commit, RDMA, baseline
// (classical and cooperative-termination), Paxos Commit (see
// pc_random_test.cc for its dedicated sweeps) and Paxos stacks, all
// through the same templated driver.  Every run is
// validated by the checkers its stack enumerates: the online invariant
// monitor (Fig. 3/5), the TCS-LL checker (Fig. 6), and, when the committed
// projection is small enough for the exact DFS, the linearization checker.
//
// Sweeps run on a thread pool (parallel_sweep_seeds); every run is
// seed-isolated, and aggregation is in seed order, so results are
// independent of the thread count (harness_determinism_test enforces it).
//
// Reproducing a failure: every RunResult names its seed; re-run the same
// TEST with that seed (see tests/README.md).
#include <gtest/gtest.h>

#include "harness/schedule.h"
#include "harness/sweep.h"

namespace ratc::harness {
namespace {

constexpr std::uint64_t kFirstSeed = 1;
// Sweep convention: >= 20 seeds.  The nightly deep-sweep CI job raises the
// count to hundreds per schedule shape via RATC_SWEEP_SEEDS (sweep.h).
const int kSweepSeeds = sweep_seed_count(24);
const int kSmallSweepSeeds = sweep_seed_count(20);

Schedule schedule_for(std::uint64_t seed, const ScheduleOptions& opt) {
  Rng rng(seed * 0x9e3779b97f4a7c15ULL + 0x5eedULL);
  return generate_schedule(rng, opt);
}

// --- commit stack -------------------------------------------------------------

TEST(CommitFaultSweep, CrashAndReconfigureSchedules) {
  ScheduleOptions opt;
  opt.crashes = 3;
  opt.reconfigures = 2;
  opt.partitions = 0;
  opt.delay_windows = 0;
  CommitWorkloadOptions w;
  w.total_txns = 150;
  // Every vote recomputed through the flat L1/L2 scan: divergence from the
  // witness index aborts the run (tests/README.md "Batched certification").
  w.check_certifier_index = true;
  SweepResult sweep =
      parallel_sweep_seeds(kFirstSeed, kSweepSeeds, [&](std::uint64_t seed) {
        return run_commit_workload(seed, w, schedule_for(seed, opt));
      });
  EXPECT_TRUE(sweep.ok()) << sweep.report();
}

TEST(CommitFaultSweep, PartitionSchedules) {
  // Held-back partitions: eventual delivery preserved, so liveness after
  // healing is still required.  The bar is lower than the crash sweep's: a
  // partitioned coordinator stalls a backlog of transactions, and a
  // subsequent crash legitimately loses all of them (paper Sec. 3).
  ScheduleOptions opt;
  opt.crashes = 1;
  opt.reconfigures = 1;
  opt.partitions = 2;
  opt.delay_windows = 1;
  CommitWorkloadOptions w;
  w.total_txns = 150;
  w.min_decided_fraction = 0.6;
  SweepResult sweep =
      parallel_sweep_seeds(kFirstSeed, kSweepSeeds, [&](std::uint64_t seed) {
        return run_commit_workload(seed, w, schedule_for(seed, opt));
      });
  EXPECT_TRUE(sweep.ok()) << sweep.report();
}

TEST(CommitFaultSweep, MajoritySplitAndAsymmetricSchedules) {
  // The new shapes: a cluster-wide two-sided split, a one-way partition
  // (victim deaf or mute but not both), and a clock-skew window.  All held
  // back, so eventual delivery holds and decent liveness is still owed —
  // but a split or half-link can stall a coordinator for a full window, so
  // the bar sits below the crash sweep's.
  ScheduleOptions opt;
  opt.crashes = 1;
  opt.reconfigures = 1;
  opt.partitions = 0;
  opt.delay_windows = 0;
  opt.majority_splits = 1;
  opt.one_way_partitions = 1;
  opt.clock_skews = 1;
  CommitWorkloadOptions w;
  w.total_txns = 150;
  w.min_decided_fraction = 0.6;
  SweepResult sweep =
      parallel_sweep_seeds(kFirstSeed, kSweepSeeds, [&](std::uint64_t seed) {
        return run_commit_workload(seed, w, schedule_for(seed, opt));
      });
  EXPECT_TRUE(sweep.ok()) << sweep.report();
}

TEST(CommitFaultSweep, LossyNetworkSchedulesAreSafe) {
  // Message drops violate the paper's reliable-link assumption, so only
  // safety is asserted (the monitor invariants, TCS-LL and decision
  // uniqueness must survive arbitrary loss); liveness is best-effort.
  // Lossy majority splits and one-way partitions ride along.
  ScheduleOptions opt;
  opt.crashes = 1;
  opt.partitions = 1;
  opt.lossy_partitions = true;
  opt.drop_windows = 2;
  opt.drop_probability = 0.08;
  opt.delay_windows = 1;
  opt.majority_splits = 1;
  opt.one_way_partitions = 1;
  CommitWorkloadOptions w;
  w.total_txns = 120;
  w.min_decided_fraction = 0.0;
  SweepResult sweep =
      parallel_sweep_seeds(kFirstSeed, kSweepSeeds, [&](std::uint64_t seed) {
        return run_commit_workload(seed, w, schedule_for(seed, opt));
      });
  EXPECT_TRUE(sweep.ok()) << sweep.report();
}

TEST(CommitFaultSweep, SmallContendedRunsAreLinearizable) {
  // Small committed projections so the exact linearization DFS runs on
  // every seed (the big sweeps only get it when few transactions commit).
  ScheduleOptions opt;
  opt.crashes = 1;
  opt.reconfigures = 1;
  opt.partitions = 1;
  opt.window_hi = 120;
  CommitWorkloadOptions w;
  w.total_txns = 18;
  w.object_universe = 6;  // heavy contention => aborts => interesting DFS
  // Tiny runs have high variance: one partitioned-then-crashed coordinator
  // can take a third of the workload with it.
  w.min_decided_fraction = 0.5;
  SweepResult sweep =
      parallel_sweep_seeds(kFirstSeed, kSweepSeeds, [&](std::uint64_t seed) {
        return run_commit_workload(seed, w, schedule_for(seed, opt));
      });
  EXPECT_TRUE(sweep.ok()) << sweep.report();
  EXPECT_EQ(sweep.linearization_checks, static_cast<std::size_t>(kSweepSeeds));
}

TEST(CommitFaultSweep, SnapshotIsolationChaos) {
  ScheduleOptions opt;
  opt.crashes = 2;
  opt.reconfigures = 1;
  opt.partitions = 1;
  opt.delay_windows = 1;
  CommitWorkloadOptions w;
  w.total_txns = 120;
  w.isolation = "snapshot-isolation";
  // Floor calibrated against the nightly 250-seed census (worst seed 0.575:
  // a partitioned-then-crashed coordinator strands a chunk of the run).
  w.min_decided_fraction = 0.5;
  SweepResult sweep = parallel_sweep_seeds(kFirstSeed, kSmallSweepSeeds, [&](std::uint64_t seed) {
    return run_commit_workload(seed, w, schedule_for(seed, opt));
  });
  EXPECT_TRUE(sweep.ok()) << sweep.report();
}

TEST(CommitFaultSweep, ExponentialDelayChaos) {
  ScheduleOptions opt;
  opt.crashes = 2;
  opt.reconfigures = 1;
  opt.partitions = 1;
  opt.delay_windows = 2;
  opt.delay_hi = 60;
  CommitWorkloadOptions w;
  w.total_txns = 100;
  w.exponential_delays = true;
  w.retry_timeout = 400;
  w.drain = 20000;
  // Nightly 250-seed census worst seed: 0.66.
  w.min_decided_fraction = 0.6;
  SweepResult sweep = parallel_sweep_seeds(kFirstSeed, kSmallSweepSeeds, [&](std::uint64_t seed) {
    return run_commit_workload(seed, w, schedule_for(seed, opt));
  });
  EXPECT_TRUE(sweep.ok()) << sweep.report();
}

// --- rdma stack ---------------------------------------------------------------

TEST(RdmaFaultSweep, CrashAndGlobalReconfiguration) {
  ScheduleOptions opt;
  opt.crashes = 2;
  opt.reconfigures = 1;
  opt.partitions = 0;
  opt.delay_windows = 1;
  RdmaWorkloadOptions w;
  w.total_txns = 120;
  // Nightly 250-seed census worst seed: 0.84.
  w.min_decided_fraction = 0.8;
  // Indexed certifier cross-checked against the flat scan on every vote.
  w.check_certifier_index = true;
  SweepResult sweep =
      parallel_sweep_seeds(kFirstSeed, kSweepSeeds, [&](std::uint64_t seed) {
        return run_rdma_workload(seed, w, schedule_for(seed, opt));
      });
  EXPECT_TRUE(sweep.ok()) << sweep.report();
}

TEST(RdmaFaultSweep, PartitionAndFabricDelaySchedulesAreSafe) {
  // Partitions here also hold back one-sided RDMA writes; a write landing
  // after the victim reconnects hits a newer queue-pair generation and is
  // rejected — exactly the race the corrected protocol (Fig. 4b) must win.
  // One-way partitions and clock skew sharpen it: an ACCEPT write can now
  // be in flight while the (deaf but not mute) victim drives a
  // reconfiguration, and property (*) must still hold on every landing —
  // self-writes included, now that they are synchronous local stores.
  ScheduleOptions opt;
  opt.crashes = 1;
  opt.reconfigures = 1;
  opt.partitions = 1;
  opt.delay_windows = 1;
  opt.one_way_partitions = 1;
  opt.clock_skews = 1;
  RdmaWorkloadOptions w;
  w.total_txns = 100;
  // Nightly 250-seed census worst seed: 0.44.
  w.min_decided_fraction = 0.35;
  SweepResult sweep = parallel_sweep_seeds(kFirstSeed, kSmallSweepSeeds, [&](std::uint64_t seed) {
    return run_rdma_workload(seed, w, schedule_for(seed, opt));
  });
  EXPECT_TRUE(sweep.ok()) << sweep.report();
}

// --- baseline stack ------------------------------------------------------------
//
// The 2PC-over-Paxos strawman, swept by the exact same driver.  Its safety
// obligations (replica agreement, atomic cross-shard decisions, legal
// linearizations) must survive every schedule; its *liveness* is strictly
// weaker than the paper protocol's — a crashed coordinator blocks its
// in-flight transactions forever — which the tuned-down decided fractions
// and the BaselineVsCommit test below document.

TEST(BaselineFaultSweep, CrashAndFailoverSchedules) {
  ScheduleOptions opt;
  opt.crashes = 2;
  opt.reconfigures = 1;  // leadership handover, the baseline's only lever
  opt.partitions = 0;
  opt.delay_windows = 1;
  BaselineWorkloadOptions w;
  w.total_txns = 120;
  SweepResult sweep =
      parallel_sweep_seeds(kFirstSeed, kSweepSeeds, [&](std::uint64_t seed) {
        return run_baseline_workload(seed, w, schedule_for(seed, opt));
      });
  EXPECT_TRUE(sweep.ok()) << sweep.report();
}

TEST(BaselineFaultSweep, PartitionSchedulesIncludingNewShapes) {
  // Held-back partitions of all three shapes.  Eventual delivery holds, so
  // most transactions still decide — but a partitioned leader stalls both
  // its Paxos group and every 2PC round it coordinates for the full window.
  ScheduleOptions opt;
  opt.crashes = 1;
  opt.reconfigures = 1;
  opt.partitions = 1;
  opt.majority_splits = 1;
  opt.one_way_partitions = 1;
  opt.clock_skews = 1;
  BaselineWorkloadOptions w;
  w.total_txns = 120;
  w.min_decided_fraction = 0.4;
  SweepResult sweep =
      parallel_sweep_seeds(kFirstSeed, kSweepSeeds, [&](std::uint64_t seed) {
        return run_baseline_workload(seed, w, schedule_for(seed, opt));
      });
  EXPECT_TRUE(sweep.ok()) << sweep.report();
}

TEST(BaselineFaultSweep, LossySchedulesAreSafe) {
  // Without retransmission above Paxos, message loss can block 2PC rounds
  // outright; only safety is asserted.
  ScheduleOptions opt;
  opt.crashes = 1;
  opt.partitions = 1;
  opt.lossy_partitions = true;
  opt.drop_windows = 2;
  opt.drop_probability = 0.08;
  opt.delay_windows = 1;
  BaselineWorkloadOptions w;
  w.total_txns = 100;
  w.min_decided_fraction = 0.0;
  SweepResult sweep = parallel_sweep_seeds(kFirstSeed, kSmallSweepSeeds, [&](std::uint64_t seed) {
    return run_baseline_workload(seed, w, schedule_for(seed, opt));
  });
  EXPECT_TRUE(sweep.ok()) << sweep.report();
}

// --- baseline + cooperative termination ----------------------------------------
//
// The strawman with the classical fix (baseline/termination.h): in-doubt
// participants query their peers and adopt any surviving decision.  Same
// safety obligations as the classical baseline, strictly better liveness —
// only all-prepared transactions still block.

TEST(BaselineCoopFaultSweep, CrashAndFailoverSchedules) {
  ScheduleOptions opt;
  opt.crashes = 2;
  opt.reconfigures = 1;
  opt.partitions = 0;
  opt.delay_windows = 1;
  BaselineCoopWorkloadOptions w;
  w.total_txns = 120;
  w.min_decided_fraction = 0.6;  // above the classical baseline's 0.5
  SweepResult sweep =
      parallel_sweep_seeds(kFirstSeed, kSweepSeeds, [&](std::uint64_t seed) {
        return run_baseline_coop_workload(seed, w, schedule_for(seed, opt));
      });
  EXPECT_TRUE(sweep.ok()) << sweep.report();
}

TEST(BaselineCoopFaultSweep, PartitionSchedulesIncludingNewShapes) {
  // Partition shapes stress the false-suspicion path: a held-back leader
  // looks dead to its peers, termination rounds race its live decisions,
  // and the tombstone/log-order arbitration must keep everyone agreed.
  ScheduleOptions opt;
  opt.crashes = 1;
  opt.reconfigures = 1;
  opt.partitions = 1;
  opt.majority_splits = 1;
  opt.one_way_partitions = 1;
  opt.clock_skews = 1;
  BaselineCoopWorkloadOptions w;
  w.total_txns = 120;
  w.min_decided_fraction = 0.4;
  SweepResult sweep =
      parallel_sweep_seeds(kFirstSeed, kSweepSeeds, [&](std::uint64_t seed) {
        return run_baseline_coop_workload(seed, w, schedule_for(seed, opt));
      });
  EXPECT_TRUE(sweep.ok()) << sweep.report();
}

TEST(BaselineCoopFaultSweep, LossySchedulesAreSafe) {
  // Arbitrary loss can eat queries, answers and tombstone answers alike;
  // the bounded rounds must give up cleanly and every safety check hold.
  ScheduleOptions opt;
  opt.crashes = 1;
  opt.partitions = 1;
  opt.lossy_partitions = true;
  opt.drop_windows = 2;
  opt.drop_probability = 0.08;
  opt.delay_windows = 1;
  BaselineCoopWorkloadOptions w;
  w.total_txns = 100;
  w.min_decided_fraction = 0.0;
  SweepResult sweep =
      parallel_sweep_seeds(kFirstSeed, kSmallSweepSeeds, [&](std::uint64_t seed) {
        return run_baseline_coop_workload(seed, w, schedule_for(seed, opt));
      });
  EXPECT_TRUE(sweep.ok()) << sweep.report();
}

TEST(BaselineVsCommit, FourWayCoordinatorCrashCommittedFractionOrdering) {
  // The paper's motivating comparison, now four-way: identical crash-only
  // schedules against classical 2PC, cooperative-termination 2PC, Paxos
  // Commit, and the paper protocol.  The reconfigurable protocol recovers
  // every coordinator crash (the shard reconfigures and replicas re-certify
  // through the new epoch).  Classical 2PC loses the coordinator state with
  // the crashed leader, and the damage shows twice: its in-flight
  // transactions never decide, and their prepared witnesses poison every
  // object they touch, aborting all later conflicting transactions.
  // Cooperative termination resolves the in-doubt transactions whose peers
  // decided (or never prepared) and releases their objects, landing
  // strictly between the other two.  Paxos Commit replicates each vote
  // through the shard's own Paxos group, so the all-prepared window that
  // still blocks the cooperative variant terminates too — the ladder this
  // test pins (classical < coop <= paxos-commit, commit near the top), with
  // margins loose enough that the fixed seed set stays portable.
  ScheduleOptions opt;
  opt.crashes = 2;
  opt.reconfigures = 0;
  opt.partitions = 0;
  opt.delay_windows = 0;
  CommitWorkloadOptions cw;
  cw.total_txns = 120;
  cw.min_decided_fraction = 0.95;
  SweepResult commit =
      parallel_sweep_seeds(kFirstSeed, kSweepSeeds, [&](std::uint64_t seed) {
        return run_commit_workload(seed, cw, schedule_for(seed, opt));
      });
  EXPECT_TRUE(commit.ok()) << commit.report();

  BaselineWorkloadOptions bw;
  bw.total_txns = 120;
  bw.min_decided_fraction = 0.0;  // liveness is exactly what it lacks
  SweepResult baseline =
      parallel_sweep_seeds(kFirstSeed, kSweepSeeds, [&](std::uint64_t seed) {
        return run_baseline_workload(seed, bw, schedule_for(seed, opt));
      });
  EXPECT_TRUE(baseline.ok()) << baseline.report();  // safety still holds

  BaselineCoopWorkloadOptions pw;
  pw.total_txns = 120;
  pw.min_decided_fraction = 0.0;  // the all-prepared window still blocks
  SweepResult coop =
      parallel_sweep_seeds(kFirstSeed, kSweepSeeds, [&](std::uint64_t seed) {
        return run_baseline_coop_workload(seed, pw, schedule_for(seed, opt));
      });
  EXPECT_TRUE(coop.ok()) << coop.report();

  PaxosCommitWorkloadOptions xw;
  xw.total_txns = 120;
  xw.min_decided_fraction = 0.75;  // non-blocking: termination always lands
  SweepResult pc =
      parallel_sweep_seeds(kFirstSeed, kSweepSeeds, [&](std::uint64_t seed) {
        return run_paxos_commit_workload(seed, xw, schedule_for(seed, opt));
      });
  EXPECT_TRUE(pc.ok()) << pc.report();

  // Some classical-baseline transactions blocked outright (never decided),
  // and cooperative termination resolved part of that backlog.
  EXPECT_LT(baseline.total_decided, baseline.total_submitted);
  EXPECT_GE(coop.total_decided, baseline.total_decided);

  auto fraction = [](const SweepResult& r) {
    return static_cast<double>(r.total_committed) /
           static_cast<double>(r.total_submitted);
  };
  double commit_fraction = fraction(commit);
  double baseline_fraction = fraction(baseline);
  double coop_fraction = fraction(coop);
  double pc_fraction = fraction(pc);
  // The pinned ordering: classical < coop <= paxos-commit, with the paper
  // protocol at or near the top.  The classical gap to the paper protocol
  // stays wide; the coop variant must sit strictly above classical (it
  // unpoisons the resolvable objects) and at most negligibly above Paxos
  // Commit and the paper protocol.
  EXPECT_GT(commit_fraction, baseline_fraction + 0.03)
      << "commit committed fraction " << commit_fraction
      << " vs baseline " << baseline_fraction;
  EXPECT_GT(coop_fraction, baseline_fraction)
      << "coop committed fraction " << coop_fraction
      << " vs baseline " << baseline_fraction;
  EXPECT_LE(coop_fraction, commit_fraction + 0.01)
      << "coop committed fraction " << coop_fraction
      << " vs commit " << commit_fraction;
  EXPECT_LE(coop_fraction, pc_fraction + 0.01)
      << "coop committed fraction " << coop_fraction
      << " vs paxos-commit " << pc_fraction;
  // Paxos Commit never gives up on an in-doubt transaction: zero
  // termination give-ups across the whole sweep, unlike the cooperative
  // variant, whose all-prepared windows surface as blocked > 0 in the aimed
  // decision-window test (baseline_termination_random_test.cc).
  EXPECT_EQ(pc.total_term_blocked, 0u);
}

// --- paxos substrate ----------------------------------------------------------

TEST(PaxosFaultSweep, CrashElectionChurn) {
  ScheduleOptions opt;
  opt.crashes = 2;
  opt.reconfigures = 2;  // forced elections
  opt.partitions = 0;
  opt.delay_windows = 1;
  PaxosWorkloadOptions w;
  SweepResult sweep =
      parallel_sweep_seeds(kFirstSeed, kSweepSeeds, [&](std::uint64_t seed) {
        return run_paxos_workload(seed, w, schedule_for(seed, opt));
      });
  EXPECT_TRUE(sweep.ok()) << sweep.report();
}

TEST(PaxosFaultSweep, MinorityPartitionsAndLossyLinks) {
  // Paxos must stay safe under arbitrary message loss; applied logs of all
  // survivors must remain prefix-consistent.  Majority splits and one-way
  // partitions join the mix: a 5-replica group split 2/3 must keep making
  // progress on the majority side or stall safely.
  ScheduleOptions opt;
  opt.crashes = 1;
  opt.partitions = 2;
  opt.lossy_partitions = true;
  opt.drop_windows = 1;
  opt.drop_probability = 0.1;
  opt.delay_windows = 1;
  opt.majority_splits = 1;
  opt.one_way_partitions = 1;
  PaxosWorkloadOptions w;
  // Nightly 250-seed census worst seed: 0.15 (lossy links can eat most of
  // a 60-command run; safety is the real assertion here).
  w.min_decided_fraction = 0.1;
  SweepResult sweep =
      parallel_sweep_seeds(kFirstSeed, kSweepSeeds, [&](std::uint64_t seed) {
        return run_paxos_workload(seed, w, schedule_for(seed, opt));
      });
  EXPECT_TRUE(sweep.ok()) << sweep.report();
}

}  // namespace
}  // namespace ratc::harness
