// Fault-injection sweeps (the harness's reason to exist): N-seed sweeps of
// nemesis schedules — crash-stop, mid-transaction reconfiguration, network
// partitions (single-victim, majority splits, asymmetric one-way), clock
// skew, message drops and delay spikes — over the commit, RDMA, baseline
// and Paxos stacks, all through the same templated driver.  Every run is
// validated by the checkers its stack enumerates: the online invariant
// monitor (Fig. 3/5), the TCS-LL checker (Fig. 6), and, when the committed
// projection is small enough for the exact DFS, the linearization checker.
//
// Sweeps run on a thread pool (parallel_sweep_seeds); every run is
// seed-isolated, and aggregation is in seed order, so results are
// independent of the thread count (harness_determinism_test enforces it).
//
// Reproducing a failure: every RunResult names its seed; re-run the same
// TEST with that seed (see tests/README.md).
#include <gtest/gtest.h>

#include "harness/schedule.h"
#include "harness/sweep.h"

namespace ratc::harness {
namespace {

constexpr std::uint64_t kFirstSeed = 1;
constexpr int kSweepSeeds = 24;  // sweep convention: >= 20 seeds

Schedule schedule_for(std::uint64_t seed, const ScheduleOptions& opt) {
  Rng rng(seed * 0x9e3779b97f4a7c15ULL + 0x5eedULL);
  return generate_schedule(rng, opt);
}

// --- commit stack -------------------------------------------------------------

TEST(CommitFaultSweep, CrashAndReconfigureSchedules) {
  ScheduleOptions opt;
  opt.crashes = 3;
  opt.reconfigures = 2;
  opt.partitions = 0;
  opt.delay_windows = 0;
  CommitWorkloadOptions w;
  w.total_txns = 150;
  SweepResult sweep =
      parallel_sweep_seeds(kFirstSeed, kSweepSeeds, [&](std::uint64_t seed) {
        return run_commit_workload(seed, w, schedule_for(seed, opt));
      });
  EXPECT_TRUE(sweep.ok()) << sweep.report();
}

TEST(CommitFaultSweep, PartitionSchedules) {
  // Held-back partitions: eventual delivery preserved, so liveness after
  // healing is still required.  The bar is lower than the crash sweep's: a
  // partitioned coordinator stalls a backlog of transactions, and a
  // subsequent crash legitimately loses all of them (paper Sec. 3).
  ScheduleOptions opt;
  opt.crashes = 1;
  opt.reconfigures = 1;
  opt.partitions = 2;
  opt.delay_windows = 1;
  CommitWorkloadOptions w;
  w.total_txns = 150;
  w.min_decided_fraction = 0.6;
  SweepResult sweep =
      parallel_sweep_seeds(kFirstSeed, kSweepSeeds, [&](std::uint64_t seed) {
        return run_commit_workload(seed, w, schedule_for(seed, opt));
      });
  EXPECT_TRUE(sweep.ok()) << sweep.report();
}

TEST(CommitFaultSweep, MajoritySplitAndAsymmetricSchedules) {
  // The new shapes: a cluster-wide two-sided split, a one-way partition
  // (victim deaf or mute but not both), and a clock-skew window.  All held
  // back, so eventual delivery holds and decent liveness is still owed —
  // but a split or half-link can stall a coordinator for a full window, so
  // the bar sits below the crash sweep's.
  ScheduleOptions opt;
  opt.crashes = 1;
  opt.reconfigures = 1;
  opt.partitions = 0;
  opt.delay_windows = 0;
  opt.majority_splits = 1;
  opt.one_way_partitions = 1;
  opt.clock_skews = 1;
  CommitWorkloadOptions w;
  w.total_txns = 150;
  w.min_decided_fraction = 0.6;
  SweepResult sweep =
      parallel_sweep_seeds(kFirstSeed, kSweepSeeds, [&](std::uint64_t seed) {
        return run_commit_workload(seed, w, schedule_for(seed, opt));
      });
  EXPECT_TRUE(sweep.ok()) << sweep.report();
}

TEST(CommitFaultSweep, LossyNetworkSchedulesAreSafe) {
  // Message drops violate the paper's reliable-link assumption, so only
  // safety is asserted (the monitor invariants, TCS-LL and decision
  // uniqueness must survive arbitrary loss); liveness is best-effort.
  // Lossy majority splits and one-way partitions ride along.
  ScheduleOptions opt;
  opt.crashes = 1;
  opt.partitions = 1;
  opt.lossy_partitions = true;
  opt.drop_windows = 2;
  opt.drop_probability = 0.08;
  opt.delay_windows = 1;
  opt.majority_splits = 1;
  opt.one_way_partitions = 1;
  CommitWorkloadOptions w;
  w.total_txns = 120;
  w.min_decided_fraction = 0.0;
  SweepResult sweep =
      parallel_sweep_seeds(kFirstSeed, kSweepSeeds, [&](std::uint64_t seed) {
        return run_commit_workload(seed, w, schedule_for(seed, opt));
      });
  EXPECT_TRUE(sweep.ok()) << sweep.report();
}

TEST(CommitFaultSweep, SmallContendedRunsAreLinearizable) {
  // Small committed projections so the exact linearization DFS runs on
  // every seed (the big sweeps only get it when few transactions commit).
  ScheduleOptions opt;
  opt.crashes = 1;
  opt.reconfigures = 1;
  opt.partitions = 1;
  opt.window_hi = 120;
  CommitWorkloadOptions w;
  w.total_txns = 18;
  w.object_universe = 6;  // heavy contention => aborts => interesting DFS
  // Tiny runs have high variance: one partitioned-then-crashed coordinator
  // can take a third of the workload with it.
  w.min_decided_fraction = 0.5;
  SweepResult sweep =
      parallel_sweep_seeds(kFirstSeed, kSweepSeeds, [&](std::uint64_t seed) {
        return run_commit_workload(seed, w, schedule_for(seed, opt));
      });
  EXPECT_TRUE(sweep.ok()) << sweep.report();
  EXPECT_EQ(sweep.linearization_checks, static_cast<std::size_t>(kSweepSeeds));
}

TEST(CommitFaultSweep, SnapshotIsolationChaos) {
  ScheduleOptions opt;
  opt.crashes = 2;
  opt.reconfigures = 1;
  opt.partitions = 1;
  opt.delay_windows = 1;
  CommitWorkloadOptions w;
  w.total_txns = 120;
  w.isolation = "snapshot-isolation";
  w.min_decided_fraction = 0.75;
  SweepResult sweep = parallel_sweep_seeds(kFirstSeed, 20, [&](std::uint64_t seed) {
    return run_commit_workload(seed, w, schedule_for(seed, opt));
  });
  EXPECT_TRUE(sweep.ok()) << sweep.report();
}

TEST(CommitFaultSweep, ExponentialDelayChaos) {
  ScheduleOptions opt;
  opt.crashes = 2;
  opt.reconfigures = 1;
  opt.partitions = 1;
  opt.delay_windows = 2;
  opt.delay_hi = 60;
  CommitWorkloadOptions w;
  w.total_txns = 100;
  w.exponential_delays = true;
  w.retry_timeout = 400;
  w.drain = 20000;
  w.min_decided_fraction = 0.7;
  SweepResult sweep = parallel_sweep_seeds(kFirstSeed, 20, [&](std::uint64_t seed) {
    return run_commit_workload(seed, w, schedule_for(seed, opt));
  });
  EXPECT_TRUE(sweep.ok()) << sweep.report();
}

// --- rdma stack ---------------------------------------------------------------

TEST(RdmaFaultSweep, CrashAndGlobalReconfiguration) {
  ScheduleOptions opt;
  opt.crashes = 2;
  opt.reconfigures = 1;
  opt.partitions = 0;
  opt.delay_windows = 1;
  RdmaWorkloadOptions w;
  w.total_txns = 120;
  w.min_decided_fraction = 0.85;
  SweepResult sweep =
      parallel_sweep_seeds(kFirstSeed, kSweepSeeds, [&](std::uint64_t seed) {
        return run_rdma_workload(seed, w, schedule_for(seed, opt));
      });
  EXPECT_TRUE(sweep.ok()) << sweep.report();
}

TEST(RdmaFaultSweep, PartitionAndFabricDelaySchedulesAreSafe) {
  // Partitions here also hold back one-sided RDMA writes; a write landing
  // after the victim reconnects hits a newer queue-pair generation and is
  // rejected — exactly the race the corrected protocol (Fig. 4b) must win.
  // One-way partitions and clock skew sharpen it: an ACCEPT write can now
  // be in flight while the (deaf but not mute) victim drives a
  // reconfiguration, and property (*) must still hold on every landing —
  // self-writes included, now that they are synchronous local stores.
  ScheduleOptions opt;
  opt.crashes = 1;
  opt.reconfigures = 1;
  opt.partitions = 1;
  opt.delay_windows = 1;
  opt.one_way_partitions = 1;
  opt.clock_skews = 1;
  RdmaWorkloadOptions w;
  w.total_txns = 100;
  w.min_decided_fraction = 0.5;
  SweepResult sweep = parallel_sweep_seeds(kFirstSeed, 20, [&](std::uint64_t seed) {
    return run_rdma_workload(seed, w, schedule_for(seed, opt));
  });
  EXPECT_TRUE(sweep.ok()) << sweep.report();
}

// --- baseline stack ------------------------------------------------------------
//
// The 2PC-over-Paxos strawman, swept by the exact same driver.  Its safety
// obligations (replica agreement, atomic cross-shard decisions, legal
// linearizations) must survive every schedule; its *liveness* is strictly
// weaker than the paper protocol's — a crashed coordinator blocks its
// in-flight transactions forever — which the tuned-down decided fractions
// and the BaselineVsCommit test below document.

TEST(BaselineFaultSweep, CrashAndFailoverSchedules) {
  ScheduleOptions opt;
  opt.crashes = 2;
  opt.reconfigures = 1;  // leadership handover, the baseline's only lever
  opt.partitions = 0;
  opt.delay_windows = 1;
  BaselineWorkloadOptions w;
  w.total_txns = 120;
  SweepResult sweep =
      parallel_sweep_seeds(kFirstSeed, kSweepSeeds, [&](std::uint64_t seed) {
        return run_baseline_workload(seed, w, schedule_for(seed, opt));
      });
  EXPECT_TRUE(sweep.ok()) << sweep.report();
}

TEST(BaselineFaultSweep, PartitionSchedulesIncludingNewShapes) {
  // Held-back partitions of all three shapes.  Eventual delivery holds, so
  // most transactions still decide — but a partitioned leader stalls both
  // its Paxos group and every 2PC round it coordinates for the full window.
  ScheduleOptions opt;
  opt.crashes = 1;
  opt.reconfigures = 1;
  opt.partitions = 1;
  opt.majority_splits = 1;
  opt.one_way_partitions = 1;
  opt.clock_skews = 1;
  BaselineWorkloadOptions w;
  w.total_txns = 120;
  w.min_decided_fraction = 0.4;
  SweepResult sweep =
      parallel_sweep_seeds(kFirstSeed, kSweepSeeds, [&](std::uint64_t seed) {
        return run_baseline_workload(seed, w, schedule_for(seed, opt));
      });
  EXPECT_TRUE(sweep.ok()) << sweep.report();
}

TEST(BaselineFaultSweep, LossySchedulesAreSafe) {
  // Without retransmission above Paxos, message loss can block 2PC rounds
  // outright; only safety is asserted.
  ScheduleOptions opt;
  opt.crashes = 1;
  opt.partitions = 1;
  opt.lossy_partitions = true;
  opt.drop_windows = 2;
  opt.drop_probability = 0.08;
  opt.delay_windows = 1;
  BaselineWorkloadOptions w;
  w.total_txns = 100;
  w.min_decided_fraction = 0.0;
  SweepResult sweep = parallel_sweep_seeds(kFirstSeed, 20, [&](std::uint64_t seed) {
    return run_baseline_workload(seed, w, schedule_for(seed, opt));
  });
  EXPECT_TRUE(sweep.ok()) << sweep.report();
}

TEST(BaselineVsCommit, CoordinatorCrashBlocksStrawmanButNotPaperProtocol) {
  // The paper's motivating comparison, as a sweep: identical crash-only
  // schedules against both stacks.  The reconfigurable protocol recovers
  // every coordinator crash (the shard reconfigures and replicas
  // re-certify through the new epoch); classical 2PC loses the coordinator
  // state with the crashed leader.  The damage shows twice: the in-flight
  // transactions it coordinated never decide, and their prepared witnesses
  // stay in every participant's certification state forever, aborting all
  // later conflicting transactions — so the committed fraction is where
  // the strawman's blocking really bites.
  ScheduleOptions opt;
  opt.crashes = 2;
  opt.reconfigures = 0;
  opt.partitions = 0;
  opt.delay_windows = 0;
  CommitWorkloadOptions cw;
  cw.total_txns = 120;
  cw.min_decided_fraction = 0.95;
  SweepResult commit =
      parallel_sweep_seeds(kFirstSeed, kSweepSeeds, [&](std::uint64_t seed) {
        return run_commit_workload(seed, cw, schedule_for(seed, opt));
      });
  EXPECT_TRUE(commit.ok()) << commit.report();

  BaselineWorkloadOptions bw;
  bw.total_txns = 120;
  bw.min_decided_fraction = 0.0;  // liveness is exactly what it lacks
  SweepResult baseline =
      parallel_sweep_seeds(kFirstSeed, kSweepSeeds, [&](std::uint64_t seed) {
        return run_baseline_workload(seed, bw, schedule_for(seed, opt));
      });
  EXPECT_TRUE(baseline.ok()) << baseline.report();  // safety still holds

  // Some baseline transactions blocked outright (never decided)...
  EXPECT_LT(baseline.total_decided, baseline.total_submitted);
  // ...and the poisoned objects cost it a clearly lower commit rate than
  // the recovering protocol under the very same schedules.
  double commit_fraction = static_cast<double>(commit.total_committed) /
                           static_cast<double>(commit.total_submitted);
  double baseline_fraction = static_cast<double>(baseline.total_committed) /
                             static_cast<double>(baseline.total_submitted);
  EXPECT_GT(commit_fraction, baseline_fraction + 0.03)
      << "commit committed fraction " << commit_fraction
      << " vs baseline " << baseline_fraction;
}

// --- paxos substrate ----------------------------------------------------------

TEST(PaxosFaultSweep, CrashElectionChurn) {
  ScheduleOptions opt;
  opt.crashes = 2;
  opt.reconfigures = 2;  // forced elections
  opt.partitions = 0;
  opt.delay_windows = 1;
  PaxosWorkloadOptions w;
  SweepResult sweep =
      parallel_sweep_seeds(kFirstSeed, kSweepSeeds, [&](std::uint64_t seed) {
        return run_paxos_workload(seed, w, schedule_for(seed, opt));
      });
  EXPECT_TRUE(sweep.ok()) << sweep.report();
}

TEST(PaxosFaultSweep, MinorityPartitionsAndLossyLinks) {
  // Paxos must stay safe under arbitrary message loss; applied logs of all
  // survivors must remain prefix-consistent.  Majority splits and one-way
  // partitions join the mix: a 5-replica group split 2/3 must keep making
  // progress on the majority side or stall safely.
  ScheduleOptions opt;
  opt.crashes = 1;
  opt.partitions = 2;
  opt.lossy_partitions = true;
  opt.drop_windows = 1;
  opt.drop_probability = 0.1;
  opt.delay_windows = 1;
  opt.majority_splits = 1;
  opt.one_way_partitions = 1;
  PaxosWorkloadOptions w;
  w.min_decided_fraction = 0.25;
  SweepResult sweep =
      parallel_sweep_seeds(kFirstSeed, kSweepSeeds, [&](std::uint64_t seed) {
        return run_paxos_workload(seed, w, schedule_for(seed, opt));
      });
  EXPECT_TRUE(sweep.ok()) << sweep.report();
}

}  // namespace
}  // namespace ratc::harness
