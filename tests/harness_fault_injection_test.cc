// Fault-injection sweeps (the harness's reason to exist): N-seed sweeps of
// nemesis schedules — crash-stop, mid-transaction reconfiguration, network
// partitions, message drops and delay spikes — over the commit, RDMA and
// Paxos stacks.  Every run is validated by the existing checkers: the
// online invariant monitor (Fig. 3/5), the TCS-LL checker (Fig. 6), and,
// when the committed projection is small enough for the exact DFS, the
// linearization checker.
//
// Reproducing a failure: every RunResult names its seed; re-run the same
// TEST with that seed (see tests/README.md).
#include <gtest/gtest.h>

#include "harness/schedule.h"
#include "harness/sweep.h"

namespace ratc::harness {
namespace {

constexpr std::uint64_t kFirstSeed = 1;
constexpr int kSweepSeeds = 24;  // ISSUE acceptance: >= 20 seeds

Schedule schedule_for(std::uint64_t seed, const ScheduleOptions& opt) {
  Rng rng(seed * 0x9e3779b97f4a7c15ULL + 0x5eedULL);
  return generate_schedule(rng, opt);
}

// --- commit stack -------------------------------------------------------------

TEST(CommitFaultSweep, CrashAndReconfigureSchedules) {
  ScheduleOptions opt;
  opt.crashes = 3;
  opt.reconfigures = 2;
  opt.partitions = 0;
  opt.delay_windows = 0;
  CommitWorkloadOptions w;
  w.total_txns = 150;
  SweepResult sweep =
      sweep_seeds(kFirstSeed, kSweepSeeds, [&](std::uint64_t seed) {
        return run_commit_workload(seed, w, schedule_for(seed, opt));
      });
  EXPECT_TRUE(sweep.ok()) << sweep.report();
}

TEST(CommitFaultSweep, PartitionSchedules) {
  // Held-back partitions: eventual delivery preserved, so liveness after
  // healing is still required.  The bar is lower than the crash sweep's: a
  // partitioned coordinator stalls a backlog of transactions, and a
  // subsequent crash legitimately loses all of them (paper Sec. 3).
  ScheduleOptions opt;
  opt.crashes = 1;
  opt.reconfigures = 1;
  opt.partitions = 2;
  opt.delay_windows = 1;
  CommitWorkloadOptions w;
  w.total_txns = 150;
  w.min_decided_fraction = 0.6;
  SweepResult sweep =
      sweep_seeds(kFirstSeed, kSweepSeeds, [&](std::uint64_t seed) {
        return run_commit_workload(seed, w, schedule_for(seed, opt));
      });
  EXPECT_TRUE(sweep.ok()) << sweep.report();
}

TEST(CommitFaultSweep, LossyNetworkSchedulesAreSafe) {
  // Message drops violate the paper's reliable-link assumption, so only
  // safety is asserted (the monitor invariants, TCS-LL and decision
  // uniqueness must survive arbitrary loss); liveness is best-effort.
  ScheduleOptions opt;
  opt.crashes = 1;
  opt.partitions = 1;
  opt.lossy_partitions = true;
  opt.drop_windows = 2;
  opt.drop_probability = 0.08;
  opt.delay_windows = 1;
  CommitWorkloadOptions w;
  w.total_txns = 120;
  w.min_decided_fraction = 0.0;
  SweepResult sweep =
      sweep_seeds(kFirstSeed, kSweepSeeds, [&](std::uint64_t seed) {
        return run_commit_workload(seed, w, schedule_for(seed, opt));
      });
  EXPECT_TRUE(sweep.ok()) << sweep.report();
}

TEST(CommitFaultSweep, SmallContendedRunsAreLinearizable) {
  // Small committed projections so the exact linearization DFS runs on
  // every seed (the big sweeps only get it when few transactions commit).
  ScheduleOptions opt;
  opt.crashes = 1;
  opt.reconfigures = 1;
  opt.partitions = 1;
  opt.window_hi = 120;
  CommitWorkloadOptions w;
  w.total_txns = 18;
  w.object_universe = 6;  // heavy contention => aborts => interesting DFS
  // Tiny runs have high variance: one partitioned-then-crashed coordinator
  // can take a third of the workload with it.
  w.min_decided_fraction = 0.5;
  int lin_checked = 0;
  SweepResult sweep =
      sweep_seeds(kFirstSeed, kSweepSeeds, [&](std::uint64_t seed) {
        RunResult r = run_commit_workload(seed, w, schedule_for(seed, opt));
        lin_checked += r.linearization_checked ? 1 : 0;
        return r;
      });
  EXPECT_TRUE(sweep.ok()) << sweep.report();
  EXPECT_EQ(lin_checked, kSweepSeeds);
}

TEST(CommitFaultSweep, SnapshotIsolationChaos) {
  ScheduleOptions opt;
  opt.crashes = 2;
  opt.reconfigures = 1;
  opt.partitions = 1;
  opt.delay_windows = 1;
  CommitWorkloadOptions w;
  w.total_txns = 120;
  w.isolation = "snapshot-isolation";
  w.min_decided_fraction = 0.75;
  SweepResult sweep = sweep_seeds(kFirstSeed, 20, [&](std::uint64_t seed) {
    return run_commit_workload(seed, w, schedule_for(seed, opt));
  });
  EXPECT_TRUE(sweep.ok()) << sweep.report();
}

TEST(CommitFaultSweep, ExponentialDelayChaos) {
  ScheduleOptions opt;
  opt.crashes = 2;
  opt.reconfigures = 1;
  opt.partitions = 1;
  opt.delay_windows = 2;
  opt.delay_hi = 60;
  CommitWorkloadOptions w;
  w.total_txns = 100;
  w.exponential_delays = true;
  w.retry_timeout = 400;
  w.drain = 20000;
  w.min_decided_fraction = 0.7;
  SweepResult sweep = sweep_seeds(kFirstSeed, 20, [&](std::uint64_t seed) {
    return run_commit_workload(seed, w, schedule_for(seed, opt));
  });
  EXPECT_TRUE(sweep.ok()) << sweep.report();
}

// --- rdma stack ---------------------------------------------------------------

TEST(RdmaFaultSweep, CrashAndGlobalReconfiguration) {
  ScheduleOptions opt;
  opt.crashes = 2;
  opt.reconfigures = 1;
  opt.partitions = 0;
  opt.delay_windows = 1;
  RdmaWorkloadOptions w;
  w.total_txns = 120;
  w.min_decided_fraction = 0.85;
  SweepResult sweep =
      sweep_seeds(kFirstSeed, kSweepSeeds, [&](std::uint64_t seed) {
        return run_rdma_workload(seed, w, schedule_for(seed, opt));
      });
  EXPECT_TRUE(sweep.ok()) << sweep.report();
}

TEST(RdmaFaultSweep, PartitionAndFabricDelaySchedulesAreSafe) {
  // Partitions here also hold back one-sided RDMA writes; a write landing
  // after the victim reconnects hits a newer queue-pair generation and is
  // rejected — exactly the race the corrected protocol (Fig. 4b) must win.
  ScheduleOptions opt;
  opt.crashes = 1;
  opt.reconfigures = 1;
  opt.partitions = 2;
  opt.delay_windows = 1;
  RdmaWorkloadOptions w;
  w.total_txns = 100;
  w.min_decided_fraction = 0.5;
  SweepResult sweep = sweep_seeds(kFirstSeed, 20, [&](std::uint64_t seed) {
    return run_rdma_workload(seed, w, schedule_for(seed, opt));
  });
  EXPECT_TRUE(sweep.ok()) << sweep.report();
}

// --- paxos substrate ----------------------------------------------------------

TEST(PaxosFaultSweep, CrashElectionChurn) {
  ScheduleOptions opt;
  opt.crashes = 2;
  opt.reconfigures = 2;  // forced elections
  opt.partitions = 0;
  opt.delay_windows = 1;
  PaxosWorkloadOptions w;
  SweepResult sweep =
      sweep_seeds(kFirstSeed, kSweepSeeds, [&](std::uint64_t seed) {
        return run_paxos_workload(seed, w, schedule_for(seed, opt));
      });
  EXPECT_TRUE(sweep.ok()) << sweep.report();
}

TEST(PaxosFaultSweep, MinorityPartitionsAndLossyLinks) {
  // Paxos must stay safe under arbitrary message loss; applied logs of all
  // survivors must remain prefix-consistent.
  ScheduleOptions opt;
  opt.crashes = 1;
  opt.partitions = 2;
  opt.lossy_partitions = true;
  opt.drop_windows = 1;
  opt.drop_probability = 0.1;
  opt.delay_windows = 1;
  PaxosWorkloadOptions w;
  w.min_applied_fraction = 0.25;
  SweepResult sweep =
      sweep_seeds(kFirstSeed, kSweepSeeds, [&](std::uint64_t seed) {
        return run_paxos_workload(seed, w, schedule_for(seed, opt));
      });
  EXPECT_TRUE(sweep.ok()) << sweep.report();
}

}  // namespace
}  // namespace ratc::harness
