// Unit and stress tests for the threaded runtime (src/rt/): inbox FIFO in
// both queue modes, timer ordering, crash-stop semantics matching
// Simulator::crash, graceful shutdown with mail in flight — plus the
// sim-vs-threaded twin tests: the same commit-protocol workload runs on the
// deterministic simulator and on real threads, and the threaded histories
// must satisfy the same monitor / TCS-LL / linearization checkers.
//
// The whole file runs under -DRATC_SANITIZE=THREAD in CI; the stress cases
// exist mainly to give TSan interleavings to chew on.
// RATC_RT_STRESS_TXNS scales the big stress run (default 10000).
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdlib>
#include <map>
#include <thread>
#include <vector>

#include "checker/conflict_graph.h"
#include "checker/linearization.h"
#include "checker/tcsll.h"
#include "commit/client.h"
#include "commit/cluster.h"
#include "rt/commit_system.h"
#include "rt/inbox.h"
#include "rt/loadgen.h"
#include "rt/threaded_runtime.h"
#include "store/stack_harness.h"

namespace ratc {
namespace {

using namespace std::chrono_literals;

struct SeqMsg {
  static constexpr const char* kName = "SEQ";
  ProcessId producer = 0;
  std::uint64_t n = 0;
};

std::size_t stress_txns() {
  const char* v = std::getenv("RATC_RT_STRESS_TXNS");
  if (v == nullptr || *v == '\0') return 10000;
  return static_cast<std::size_t>(std::strtoull(v, nullptr, 10));
}

/// Polls `pred` until true or `limit` elapses.
template <typename Pred>
bool eventually(Pred pred, std::chrono::milliseconds limit = 30s) {
  auto deadline = std::chrono::steady_clock::now() + limit;
  while (!pred()) {
    if (std::chrono::steady_clock::now() > deadline) return false;
    std::this_thread::sleep_for(1ms);
  }
  return true;
}

// --- Inbox ------------------------------------------------------------------

/// Per-(sender,receiver) FIFO under multi-producer load, both queue modes.
void inbox_fifo_mode(bool lock_free) {
  rt::Inbox inbox({lock_free, 1 << 10});
  constexpr std::size_t kProducers = 4;
  constexpr std::uint64_t kPerProducer = 20000;
  std::vector<std::thread> producers;
  for (std::size_t p = 0; p < kProducers; ++p) {
    producers.emplace_back([&inbox, p] {
      for (std::uint64_t n = 0; n < kPerProducer; ++n) {
        inbox.push(rt::Envelope{static_cast<ProcessId>(p),
                                sim::AnyMessage(SeqMsg{static_cast<ProcessId>(p), n})});
      }
    });
  }
  std::map<ProcessId, std::uint64_t> next_expected;
  std::uint64_t received = 0;
  rt::Envelope e;
  while (received < kProducers * kPerProducer) {
    if (!inbox.try_pop(e)) {
      std::this_thread::yield();
      continue;
    }
    const SeqMsg* m = e.msg.as<SeqMsg>();
    ASSERT_NE(m, nullptr);
    ASSERT_EQ(m->producer, e.from);
    // The FIFO contract: per sender, strictly sequential.
    ASSERT_EQ(m->n, next_expected[e.from]) << "sender " << e.from;
    ++next_expected[e.from];
    ++received;
  }
  for (auto& t : producers) t.join();
  EXPECT_TRUE(inbox.empty());
}

TEST(Inbox, FifoPerSenderLockFree) { inbox_fifo_mode(true); }
TEST(Inbox, FifoPerSenderMutex) { inbox_fifo_mode(false); }

TEST(Inbox, BackpressureBlocksInsteadOfReordering) {
  // Capacity 4: the producer must block on the full ring, and the consumer
  // must still see a gapless sequence.
  rt::Inbox inbox({true, 4});
  constexpr std::uint64_t kTotal = 1000;
  std::thread producer([&inbox] {
    for (std::uint64_t n = 0; n < kTotal; ++n) {
      inbox.push(rt::Envelope{1, sim::AnyMessage(SeqMsg{1, n})});
    }
  });
  rt::Envelope e;
  for (std::uint64_t n = 0; n < kTotal;) {
    if (!inbox.try_pop(e)) continue;
    ASSERT_EQ(e.msg.as<SeqMsg>()->n, n);
    ++n;
  }
  producer.join();
}

// --- ThreadedRuntime primitives ---------------------------------------------

/// Records deliveries; used as both counter and echo.
class Recorder : public sim::Process {
 public:
  Recorder(rt::Runtime& rt, ProcessId id, bool echo = false)
      : Process(rt, id, "recorder" + std::to_string(id)), echo_(echo) {}

  void on_message(ProcessId from, const sim::AnyMessage& msg) override {
    received_.fetch_add(1, std::memory_order_acq_rel);
    if (echo_) rt().send(id(), from, msg);
  }

  std::uint64_t received() const { return received_.load(std::memory_order_acquire); }

 private:
  bool echo_;
  std::atomic<std::uint64_t> received_{0};
};

TEST(ThreadedRuntime, TimersFireInDeadlineOrder) {
  rt::ThreadedRuntime trt({.threads = 2, .tick_us = 200, .seed = 7});
  Recorder owner(trt, 1);
  trt.spawn(&owner);
  // Only the owner's worker fires these, so `order` needs no lock.
  std::vector<int> order;
  std::atomic<std::size_t> fired{0};
  auto arm = [&](Duration delay, int tag) {
    trt.schedule_for(1, delay, [&order, &fired, tag] {
      order.push_back(tag);
      fired.fetch_add(1, std::memory_order_acq_rel);
    });
  };
  arm(50, 50);
  arm(10, 10);
  arm(30, 30);
  arm(20, 20);
  arm(40, 40);
  arm(10, 11);  // same deadline: submission order breaks the tie
  trt.start();
  ASSERT_TRUE(eventually([&] { return fired.load() == 6; }));
  trt.stop();
  EXPECT_EQ(order, (std::vector<int>{10, 11, 20, 30, 40, 50}));
}

TEST(ThreadedRuntime, CrashStopsDeliveriesAndTimers) {
  rt::ThreadedRuntime trt({.threads = 2, .seed = 3});
  Recorder a(trt, 1);
  Recorder b(trt, 2);
  trt.spawn(&a);
  trt.spawn(&b);
  trt.start();
  for (int i = 0; i < 10; ++i) trt.send(2, 1, sim::AnyMessage(SeqMsg{2, 0}));
  ASSERT_TRUE(eventually([&] { return a.received() == 10; }));

  EXPECT_FALSE(trt.crashed(1));
  trt.crash(1);
  EXPECT_TRUE(trt.crashed(1));
  // Like Simulator::crash: no further deliveries, timers are discarded at
  // fire time, and a crashed sender sends nothing.
  std::atomic<bool> timer_fired{false};
  trt.schedule_for(1, 1, [&] { timer_fired.store(true); });
  for (int i = 0; i < 10; ++i) trt.send(2, 1, sim::AnyMessage(SeqMsg{2, 0}));
  std::uint64_t b_before = b.received();
  trt.send(1, 2, sim::AnyMessage(SeqMsg{1, 0}));  // crashed sender
  std::this_thread::sleep_for(50ms);
  trt.stop();
  EXPECT_EQ(a.received(), 10u);
  EXPECT_EQ(b.received(), b_before);
  EXPECT_FALSE(timer_fired.load());
  EXPECT_GE(trt.dropped_count(), 10u);
}

TEST(ThreadedRuntime, GracefulShutdownWithMailInFlight) {
  // Echo storm: every delivery sends the message back, so mail is always in
  // flight; stop() must cut it off without hanging or crashing.
  rt::ThreadedRuntime trt({.threads = 4, .seed = 11});
  std::vector<std::unique_ptr<Recorder>> procs;
  for (ProcessId id = 1; id <= 8; ++id) {
    procs.push_back(std::make_unique<Recorder>(trt, id, /*echo=*/true));
    trt.spawn(procs.back().get());
  }
  trt.start();
  for (ProcessId id = 1; id <= 8; ++id) {
    trt.send(id, (id % 8) + 1, sim::AnyMessage(SeqMsg{id, 0}));
  }
  ASSERT_TRUE(eventually([&] { return trt.delivered_count() > 10000; }));
  trt.stop();
  std::uint64_t delivered = trt.delivered_count();
  EXPECT_GT(delivered, 10000u);
  std::this_thread::sleep_for(20ms);
  EXPECT_EQ(trt.delivered_count(), delivered);  // really stopped
  trt.stop();  // idempotent
}

// --- sim-vs-threaded twins ---------------------------------------------------

std::vector<std::pair<TxnId, tcs::Payload>> conflict_free_workload(std::size_t n) {
  // Disjoint read/write sets: every certifier must commit every item, on
  // either runtime, under any interleaving — exact decision agreement.
  std::vector<std::pair<TxnId, tcs::Payload>> out;
  for (std::size_t i = 0; i < n; ++i) {
    tcs::Payload p;
    p.reads = {{static_cast<ObjectId>(2 * i), 0}, {static_cast<ObjectId>(2 * i + 1), 0}};
    p.writes = {{static_cast<ObjectId>(2 * i), 1}};
    p.commit_version = 1;
    out.emplace_back(static_cast<TxnId>(i + 1), p);
  }
  return out;
}

TEST(SimVsThreaded, DecisionAgreementOnConflictFreeWorkload) {
  auto workload = conflict_free_workload(20);

  // Simulator twin.
  std::map<TxnId, tcs::Decision> sim_decisions;
  {
    commit::Cluster cluster({.seed = 5, .num_shards = 2, .shard_size = 2});
    commit::Client& client = cluster.add_client();
    for (const auto& [txn, p] : workload) {
      client.certify_remote(cluster.replica(0, 1).id(), txn, p);
    }
    ASSERT_TRUE(cluster.sim().run_until_pred(
        [&] { return client.decided_count() == workload.size(); }, 1'000'000));
    EXPECT_EQ(cluster.verify(), "");
    for (const auto& [txn, p] : workload) {
      (void)p;
      sim_decisions[txn] = *client.decision(txn);
    }
    auto lin = checker::check_linearization(cluster.history(), cluster.certifier());
    EXPECT_TRUE(lin.ok) << lin.error;
  }

  // Threaded twin: same payloads, same topology, real threads, with the
  // monitor tapping sends/deliveries exactly as the sim network does.
  std::map<TxnId, tcs::Decision> rt_decisions;
  {
    rt::ThreadedRuntime trt({.threads = 4, .seed = 5});
    rt::CommitSystem system(trt, {.num_shards = 2, .shard_size = 2});
    trt.add_observer(system.monitor());
    tcs::History history;
    commit::Client client(trt, rt::CommitSystem::kClientBase, &history);
    trt.spawn(&client);
    std::atomic<std::size_t> decided{0};
    client.on_decision = [&](TxnId, tcs::Decision) {
      decided.fetch_add(1, std::memory_order_acq_rel);
    };
    ProcessId coordinator = system.replica(0, 1).id();
    for (std::size_t i = 0; i < workload.size(); ++i) {
      auto [txn, p] = workload[i];
      trt.schedule_for(client.id(), static_cast<Duration>(i + 1),
                       [&client, coordinator, txn, p] {
                         client.certify_remote(coordinator, txn, p);
                       });
    }
    trt.start();
    ASSERT_TRUE(eventually([&] { return decided.load() == workload.size(); }));
    trt.stop();

    // Post-stop, the workers are joined: client/monitor state is plain data.
    EXPECT_TRUE(system.monitor()->violations().empty())
        << system.monitor()->violations().summary();
    EXPECT_TRUE(history.complete());
    EXPECT_TRUE(history.conflicting_decisions().empty());
    auto tcsll = checker::check_tcsll(system.monitor()->tcsll_input(
        history, system.shard_map(), system.certifier()));
    EXPECT_TRUE(tcsll.ok) << tcsll.summary();
    auto lin = checker::check_linearization(history, system.certifier());
    EXPECT_TRUE(lin.ok) << lin.error;
    for (const auto& [txn, p] : workload) {
      (void)p;
      ASSERT_TRUE(history.decision_of(txn).has_value());
      rt_decisions[txn] = *history.decision_of(txn);
    }
  }

  // Exact agreement: conflict-free, so both runtimes must commit everything.
  EXPECT_EQ(sim_decisions, rt_decisions);
  for (const auto& [txn, d] : rt_decisions) {
    EXPECT_EQ(d, tcs::Decision::kCommit) << "txn " << txn;
  }
}

TEST(SimVsThreaded, ContendedWorkloadPassesCheckersOnThreads) {
  // Contended mix via the load generator (real aborts, real races between
  // coordinators), full safety-checker stack on the threaded history.
  rt::ThreadedRuntime trt({.threads = 4, .seed = 23});
  rt::CommitSystem system(trt, {.num_shards = 2, .shard_size = 2});
  trt.add_observer(system.monitor());
  rt::LoadGen gen(trt, system.coordinators(),
                  {.clients = 8, .txns_per_client = 2, .batch_size = 1,
                   .window = 1, .keyspace = 6, .seed = 23});
  trt.start();
  gen.start();
  ASSERT_TRUE(eventually([&] { return gen.done(); }));
  trt.stop();

  EXPECT_TRUE(system.monitor()->violations().empty())
      << system.monitor()->violations().summary();
  tcs::History history = gen.merged_history();
  EXPECT_TRUE(history.complete());
  EXPECT_TRUE(history.conflicting_decisions().empty());
  auto tcsll = checker::check_tcsll(system.monitor()->tcsll_input(
      history, system.shard_map(), system.certifier()));
  EXPECT_TRUE(tcsll.ok) << tcsll.summary();
  auto lin = checker::check_linearization(history, system.certifier());
  EXPECT_TRUE(lin.ok) << lin.error;
}

// --- stress ------------------------------------------------------------------

TEST(ThreadedStress, TenThousandTxnsSatisfySerializability) {
  const std::size_t txns = stress_txns();
  rt::ThreadedRuntime trt({.threads = 4, .seed = 99});
  rt::CommitSystem system(trt, {.num_shards = 4, .shard_size = 2});
  trt.add_observer(system.monitor());
  rt::LoadGen::Options lopt;
  lopt.clients = 32;
  lopt.txns_per_client = std::max<std::size_t>(txns / 32, 1);
  lopt.batch_size = 4;
  lopt.window = 2;
  lopt.keyspace = 4096;
  lopt.seed = 99;
  rt::LoadGen gen(trt, system.coordinators(), lopt);
  trt.start();
  gen.start();
  ASSERT_TRUE(eventually([&] { return gen.done(); }, 300s));
  trt.stop();

  EXPECT_TRUE(system.monitor()->violations().empty())
      << system.monitor()->violations().summary();
  tcs::History history = gen.merged_history();
  EXPECT_TRUE(history.complete());
  EXPECT_TRUE(history.conflicting_decisions().empty());
  EXPECT_EQ(history.all_txns().size(), gen.target_txns());
  // The exact linearization checker is exponential; at 10k transactions the
  // polynomial conflict-graph oracle (MVSG acyclicity) is the right tool.
  auto cg = checker::check_conflict_graph(history);
  EXPECT_TRUE(cg.ok) << cg.error;
  // TCS-LL is polynomial and runs at full size.
  auto tcsll = checker::check_tcsll(system.monitor()->tcsll_input(
      history, system.shard_map(), system.certifier()));
  EXPECT_TRUE(tcsll.ok) << tcsll.summary();
}

TEST(ThreadedStress, MutexInboxModeSurvivesLoad) {
  // Same system, mutex+deque inboxes: the two queue modes must be
  // behaviorally interchangeable.
  rt::ThreadedRuntime trt(
      {.threads = 4, .lock_free_inbox = false, .seed = 31});
  rt::CommitSystem system(trt, {.num_shards = 2, .shard_size = 2,
                                .enable_monitor = false});
  rt::LoadGen gen(trt, system.coordinators(),
                  {.clients = 8, .txns_per_client = 50, .batch_size = 2,
                   .window = 2, .keyspace = 1024, .seed = 31});
  trt.start();
  gen.start();
  ASSERT_TRUE(eventually([&] { return gen.done(); }, 120s));
  trt.stop();
  tcs::History history = gen.merged_history();
  EXPECT_TRUE(history.complete());
  EXPECT_TRUE(history.conflicting_decisions().empty());
  auto cg = checker::check_conflict_graph(history);
  EXPECT_TRUE(cg.ok) << cg.error;
}

}  // namespace
}  // namespace ratc
