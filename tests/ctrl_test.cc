// The autonomous reconfiguration controller (src/ctrl/): staged scenarios.
//
// Each test builds a cluster with enable_controller and breaks it WITHOUT
// the omniscient harness levers — no crash_and_reconfigure, no
// reconfigure(s, by) — so any recovery observed is the control plane's own:
// FD suspicion -> PlacementPolicy -> CS CAS -> epoch handover.
#include <gtest/gtest.h>

#include "commit/cluster.h"
#include "harness/nemesis.h"
#include "rdma/cluster.h"

namespace ratc::ctrl {
namespace {

using commit::Cluster;

tcs::Payload payload_on(std::initializer_list<ObjectId> reads,
                        std::initializer_list<ObjectId> writes) {
  tcs::Payload p;
  for (ObjectId o : reads) p.reads.push_back({o, 0});
  for (ObjectId o : writes) p.writes.push_back({o, 1});
  p.commit_version = 1;
  return p;
}

TEST(ReconController, HealsCrashedFollowerAutonomously) {
  Cluster cluster({.seed = 11,
                   .num_shards = 2,
                   .shard_size = 2,
                   .spares_per_shard = 2,
                   .retry_timeout = 60,
                   .enable_controller = true});
  commit::Client& client = cluster.add_client();
  TxnId warm = cluster.next_txn_id();
  client.certify_colocated(cluster.replica(0, 0), warm, payload_on({0, 9}, {0}));
  ASSERT_TRUE(cluster.sim().run_until_pred([&] { return client.decided(warm); },
                                           1'000'000));

  ProcessId victim = cluster.replica(0, 1).id();  // follower of shard 0
  cluster.crash(victim);
  ASSERT_TRUE(cluster.await_active_epoch(0, 2));

  configsvc::ShardConfig cfg = cluster.current_config(0);
  EXPECT_FALSE(cfg.has_member(victim));
  EXPECT_EQ(cfg.members.size(), 2u);
  const ReconController::Stats& s = cluster.controller(0).stats();
  EXPECT_GE(s.suspicions, 1u);
  EXPECT_EQ(s.epochs_initiated, 1u);
  // The sibling shard's controller had no grievance and did nothing.
  EXPECT_EQ(cluster.controller(1).stats().attempts, 0u);

  TxnId post = cluster.next_txn_id();
  client.certify_colocated(cluster.replica_by_pid(cfg.leader), post,
                          payload_on({1, 10}, {1}));
  EXPECT_TRUE(cluster.sim().run_until_pred([&] { return client.decided(post); },
                                           1'000'000));
  EXPECT_EQ(cluster.verify(), "");
}

TEST(ReconController, HealsCrashedLeaderAndStrandedTransactionsRecover) {
  Cluster cluster({.seed = 12,
                   .num_shards = 2,
                   .shard_size = 2,
                   .spares_per_shard = 2,
                   .retry_timeout = 60,
                   .enable_controller = true});
  commit::Client& client = cluster.add_client();

  // A cross-shard transaction coordinated from shard 1; shard 0's leader
  // dies with the PREPARE in flight.  Shard 1 holds a prepared witness, so
  // after the controller heals shard 0, the retry path (line 70) re-drives
  // the transaction through the new epoch and it decides.
  ProcessId doomed = cluster.leader_of(0);
  TxnId stranded = cluster.next_txn_id();
  client.certify_colocated(cluster.replica(1, 0), stranded, payload_on({0, 1}, {1}));
  cluster.crash(doomed);

  ASSERT_TRUE(cluster.await_active_epoch(0, 2));
  configsvc::ShardConfig cfg = cluster.current_config(0);
  EXPECT_FALSE(cfg.has_member(doomed));
  EXPECT_NE(cfg.leader, doomed);

  EXPECT_TRUE(cluster.sim().run_until_pred([&] { return client.decided(stranded); },
                                           4'000'000));
  EXPECT_EQ(cluster.verify(), "");
}

TEST(ReconController, HealsRepeatedCrashesAcrossEpochs) {
  Cluster cluster({.seed = 13,
                   .num_shards = 1,
                   .shard_size = 2,
                   .spares_per_shard = 4,
                   .retry_timeout = 60,
                   .enable_controller = true});
  for (Epoch target = 2; target <= 4; ++target) {
    configsvc::ShardConfig cfg = cluster.current_config(0);
    // Crash the current leader each round; a fresh spare must backfill.
    cluster.crash(cfg.leader);
    ASSERT_TRUE(cluster.await_active_epoch(0, target)) << "epoch " << target;
  }
  EXPECT_EQ(cluster.controller(0).stats().epochs_initiated, 3u);
  EXPECT_EQ(cluster.verify(), "");
}

TEST(ReconController, RacesReplicaDrivenReconfigurationSafely) {
  // The controller and a replica-driven reconfigurer (the pre-existing
  // path) race for the same epoch through the CS CAS; exactly one wins and
  // every invariant holds.
  Cluster cluster({.seed = 14,
                   .num_shards = 1,
                   .shard_size = 2,
                   .spares_per_shard = 2,
                   .retry_timeout = 60,
                   .enable_controller = true});
  ProcessId victim = cluster.replica(0, 1).id();
  ProcessId survivor = cluster.replica(0, 0).id();
  cluster.crash(victim);
  // Let the controller's suspicion form (its attempt starts), THEN fire the
  // replica-driven reconfiguration so the two reconfigurers genuinely
  // overlap.  The CS CAS admits exactly one epoch-2 winner.
  ASSERT_TRUE(cluster.sim().run_until_pred(
      [&] { return cluster.controller(0).suspects(victim); }, 1'000'000));
  cluster.reconfigure(0, survivor);
  ASSERT_TRUE(cluster.await_active_epoch(0, 2));
  cluster.sim().run_until(cluster.sim().now() + 500);
  configsvc::ShardConfig cfg = cluster.current_config(0);
  EXPECT_EQ(cfg.epoch, 2u);  // one winner; the loser backed off cleanly
  EXPECT_FALSE(cfg.has_member(victim));
  EXPECT_EQ(cluster.verify(), "");
}

TEST(ReconController, FalseSuspicionCostsBoundedEpochsAndNoSafety) {
  // A one-way-partitioned follower is alive but silent towards the
  // controller: the controller may legitimately replace it (it cannot tell
  // the difference), but hysteresis must keep the epoch churn bounded and
  // every safety check must hold throughout.
  Cluster cluster({.seed = 15,
                   .num_shards = 2,
                   .shard_size = 2,
                   .spares_per_shard = 2,
                   .retry_timeout = 60,
                   .enable_controller = true});
  harness::Nemesis nemesis(cluster.sim(), 99);
  cluster.net().set_fault_injector(&nemesis);

  ProcessId muted = cluster.replica(0, 1).id();
  nemesis.isolate_one_way({muted}, 400, /*inbound_blocked=*/true);
  cluster.sim().run_until(cluster.sim().now() + 1500);

  const ReconController::Stats& s = cluster.controller(0).stats();
  EXPECT_GE(s.suspicions, 1u);
  EXPECT_LE(s.attempts, 3u) << "hysteresis failed to bound the churn";
  std::size_t attempts_after_heal = s.attempts;
  cluster.sim().run_until(cluster.sim().now() + 2000);
  // Once the suspect is replaced (or the partition healed), no further
  // controller activity: the churn does not continue unboundedly.
  EXPECT_EQ(cluster.controller(0).stats().attempts, attempts_after_heal);
  EXPECT_EQ(cluster.controller(1).stats().attempts, 0u);
  EXPECT_EQ(cluster.verify(), "");
}

TEST(ReconController, UnresolvedAttemptRetriesUntilAnEpochLands) {
  // The nasty interleaving: probes freeze the probed replicas (they stop
  // certifying until a NEW_CONFIG/NEW_STATE arrives), every ProbeAck is
  // lost, and then the suspicion is retracted.  Without the
  // pending-attempt tracking the controller would see no grievance and
  // never retry — leaving the shard frozen forever.  Staged with a lossy
  // mute-but-not-deaf partition of the whole shard: members hear the
  // probes (and freeze) but their acks and pongs are dropped; after the
  // window heals, pongs retract the suspicion.
  Cluster cluster({.seed = 17,
                   .num_shards = 1,
                   .shard_size = 2,
                   .spares_per_shard = 2,
                   .retry_timeout = 60,
                   .enable_controller = true});
  harness::Nemesis nemesis(cluster.sim(), 5);
  cluster.net().set_fault_injector(&nemesis);
  nemesis.isolate_one_way(cluster.initial_members(0), 250,
                          /*inbound_blocked=*/false, /*lossy=*/true);
  ASSERT_TRUE(cluster.await_active_epoch(0, 2, 4'000'000))
      << "frozen shard never re-driven to a new epoch";
  EXPECT_EQ(cluster.verify(), "");
}

TEST(ReconController, CustomPlacementPolicyIsConsulted) {
  // The PlacementPolicy extension point (ctrl/placement.h): a custom policy
  // that shrinks the shard to a singleton — the controller must install
  // exactly what the policy proposed.
  class SingletonPolicy final : public PlacementPolicy {
   public:
    const char* name() const override { return "singleton"; }
    configsvc::ShardConfig plan(
        const PlacementInput& in,
        const std::function<std::vector<ProcessId>(std::size_t)>&) override {
      ++invocations;
      configsvc::ShardConfig next;
      next.epoch = in.next_epoch;
      next.leader = in.leader_candidate;
      next.members = {in.leader_candidate};
      return next;
    }
    int invocations = 0;
  };
  SingletonPolicy policy;
  Cluster::Options opts{.seed = 16,
                        .num_shards = 1,
                        .shard_size = 2,
                        .spares_per_shard = 2,
                        .retry_timeout = 60,
                        .enable_controller = true};
  opts.controller_tuning.policy = &policy;
  Cluster cluster(opts);
  ProcessId victim = cluster.replica(0, 1).id();
  ProcessId survivor = cluster.replica(0, 0).id();
  cluster.crash(victim);
  ASSERT_TRUE(cluster.await_active_epoch(0, 2));
  EXPECT_GE(policy.invocations, 1);
  configsvc::ShardConfig cfg = cluster.current_config(0);
  EXPECT_EQ(cfg.members, std::vector<ProcessId>{survivor});
  EXPECT_EQ(cfg.leader, survivor);
  EXPECT_EQ(cluster.verify(), "");
}

TEST(ReconControllerRdma, NudgeHealsCrashedMemberGlobally) {
  rdma::Cluster cluster({.seed = 21,
                         .num_shards = 2,
                         .shard_size = 2,
                         .spares_per_shard = 2,
                         .retry_timeout = 100,
                         .enable_controller = true});
  rdma::Client& client = cluster.add_client();
  TxnId warm = cluster.next_txn_id();
  client.certify_colocated(cluster.replica(0, 0), warm, payload_on({0, 9}, {0}));
  ASSERT_TRUE(cluster.sim().run_until_pred([&] { return client.decided(warm); },
                                           1'000'000));

  ProcessId victim = cluster.replica(1, 1).id();
  cluster.crash(victim);
  // The shard-1 controller suspects the member, nudges a live replica, and
  // the replica-run global reconfiguration (Fig. 8) installs epoch 2.
  ASSERT_TRUE(cluster.await_active_epoch(2));
  configsvc::ShardConfig cfg = cluster.current_config(1);
  EXPECT_FALSE(cfg.has_member(victim));
  EXPECT_GE(cluster.controller(1).stats().nudges, 1u);

  TxnId post = cluster.next_txn_id();
  client.certify_colocated(cluster.replica_by_pid(cluster.current_config(0).leader),
                          post, payload_on({2, 8}, {2}));
  EXPECT_TRUE(cluster.sim().run_until_pred([&] { return client.decided(post); },
                                           1'000'000));
  EXPECT_EQ(cluster.verify(), "");
}

TEST(ReconControllerRdma, FalseSuspicionBoundedUnderOneWayPartition) {
  rdma::Cluster cluster({.seed = 22,
                         .num_shards = 2,
                         .shard_size = 2,
                         .spares_per_shard = 2,
                         .retry_timeout = 100,
                         .enable_controller = true});
  harness::Nemesis nemesis(cluster.sim(), 77);
  cluster.net().set_fault_injector(&nemesis);
  ProcessId muted = cluster.replica(0, 1).id();
  nemesis.isolate_one_way({muted}, 400, /*inbound_blocked=*/false);
  cluster.sim().run_until(cluster.sim().now() + 1500);
  EXPECT_LE(cluster.controller(0).stats().attempts, 3u);
  cluster.sim().run_until(cluster.sim().now() + 2000);
  EXPECT_LE(cluster.controller(0).stats().attempts, 3u);
  EXPECT_EQ(cluster.verify(), "");
}

}  // namespace
}  // namespace ratc::ctrl
