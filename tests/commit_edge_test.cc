// Edge cases of the commit protocol: duplicate/stale message handling, the
// guards the pseudocode's preconditions encode, multiple concurrent
// coordinators, and the leader-driven replication ablation.
#include <gtest/gtest.h>

#include "commit/cluster.h"

namespace ratc::commit {
namespace {

using tcs::Decision;
using tcs::Payload;

Payload one_object(ObjectId o, Version v = 0) {
  Payload p;
  p.reads = {{o, v}};
  p.writes = {{o, static_cast<Value>(o + 1)}};
  p.commit_version = v + 1;
  return p;
}

TEST(CommitEdge, DuplicatePrepareIsResentNotReprepared) {
  // Fig. 1 lines 6-7: a PREPARE for an already-certified transaction gets
  // the stored result back; the log does not grow.
  Cluster cluster({.seed = 1, .num_shards = 1, .shard_size = 2});
  Client& client = cluster.add_client();
  TxnId t = cluster.next_txn_id();
  client.certify_colocated(cluster.replica(0, 1), t, one_object(0));
  cluster.sim().run();
  ASSERT_EQ(client.decision(t), Decision::kCommit);

  Replica& leader = cluster.replica(0, 0);
  Slot before = leader.log().max_filled();

  Prepare dup;
  dup.txn = t;
  dup.has_payload = true;
  dup.payload = one_object(0);
  dup.meta.txn = t;
  dup.meta.participants = {0};
  dup.meta.client = client.id();
  cluster.net().send_msg(client.id(), leader.id(), dup);
  cluster.sim().run();
  EXPECT_EQ(leader.log().max_filled(), before);  // no new slot
  EXPECT_EQ(cluster.verify(), "");
}

TEST(CommitEdge, PrepareAtNonLeaderIsDropped) {
  // Line 5 pre: status = leader.
  Cluster cluster({.seed = 2, .num_shards = 1, .shard_size = 2});
  Client& client = cluster.add_client();
  Replica& follower = cluster.replica(0, 1);
  Prepare p;
  p.txn = 42;
  p.has_payload = true;
  p.payload = one_object(0);
  p.meta.txn = 42;
  p.meta.participants = {0};
  p.meta.client = client.id();
  cluster.net().send_msg(client.id(), follower.id(), p);
  cluster.sim().run();
  EXPECT_EQ(follower.log().slot_of(42), kNoSlot);
}

TEST(CommitEdge, StaleEpochAcceptRejected) {
  // Line 22 pre: epoch[s0] = e — the guard the RDMA variant cannot have.
  Cluster cluster({.seed = 3, .num_shards = 1, .shard_size = 2});
  Client& client = cluster.add_client();
  Replica& follower = cluster.replica(0, 1);
  Accept acc;
  acc.epoch = 99;  // from the future
  acc.shard = 0;
  acc.slot = 1;
  acc.txn = 42;
  acc.payload = one_object(0);
  acc.vote = Decision::kCommit;
  acc.meta.txn = 42;
  acc.meta.participants = {0};
  acc.meta.client = client.id();
  cluster.net().send_msg(client.id(), follower.id(), acc);
  cluster.sim().run();
  EXPECT_EQ(follower.log().slot_of(42), kNoSlot);
}

TEST(CommitEdge, StaleDecisionEpochRejected) {
  // Line 31 pre: epoch[s0] >= e.
  Cluster cluster({.seed = 4, .num_shards = 1, .shard_size = 2});
  Client& client = cluster.add_client();
  Replica& leader = cluster.replica(0, 0);
  DecisionMsg d;
  d.epoch = 99;
  d.shard = 0;
  d.slot = 1;
  d.txn = 42;
  d.decision = Decision::kCommit;
  cluster.net().send_msg(client.id(), leader.id(), d);
  cluster.sim().run();
  const LogEntry* e = leader.log().find(1);
  EXPECT_TRUE(e == nullptr || e->phase != Phase::kDecided);
}

TEST(CommitEdge, AbortDecisionOnHoleIsTolerated) {
  // A follower that missed the ACCEPT (hole) still records an abort
  // decision for the slot (line 32 writes unconditionally).
  Cluster cluster({.seed = 5, .num_shards = 1, .shard_size = 2});
  Client& client = cluster.add_client();
  Replica& follower = cluster.replica(0, 1);
  DecisionMsg d;
  d.epoch = 1;
  d.shard = 0;
  d.slot = 3;
  d.txn = 42;
  d.decision = Decision::kAbort;
  cluster.net().send_msg(client.id(), follower.id(), d);
  cluster.sim().run();
  const LogEntry* e = follower.log().find(3);
  ASSERT_NE(e, nullptr);
  EXPECT_EQ(e->phase, Phase::kDecided);
  EXPECT_EQ(e->dec, Decision::kAbort);
}

TEST(CommitEdge, TwoConcurrentCoordinatorsAgree) {
  // "Our protocol allows any number of processes to become coordinators of
  // a transaction at the same time ... they will all reach the same
  // decision" (Invariant 4).
  Cluster cluster({.seed = 6, .num_shards = 2, .shard_size = 2});
  Client& client = cluster.add_client();
  TxnId t = cluster.next_txn_id();
  client.certify_remote(cluster.spares(0)[0], t, Payload{{{0, 0}, {1, 0}},
                                                         {{0, 5}, {1, 5}},
                                                         1});
  // Let both leaders prepare, then have BOTH of them retry concurrently.
  cluster.sim().run_until(2);
  Replica& l0 = cluster.replica(0, 0);
  Replica& l1 = cluster.replica(1, 0);
  ASSERT_NE(l0.log().slot_of(t), kNoSlot);
  ASSERT_NE(l1.log().slot_of(t), kNoSlot);
  l0.retry(l0.log().slot_of(t));
  l1.retry(l1.log().slot_of(t));
  cluster.sim().run();
  ASSERT_TRUE(client.decided(t));
  // The monitor checked Invariant 4a/4b across the three coordinators'
  // DECISION messages; the history has no conflicting decisions.
  EXPECT_EQ(cluster.verify(), "");
}

TEST(CommitEdge, RetryOfDecidedSlotIsNoop) {
  // Line 71 pre: phase[k] = prepared.
  Cluster cluster({.seed = 7, .num_shards = 1, .shard_size = 2});
  Client& client = cluster.add_client();
  TxnId t = cluster.next_txn_id();
  client.certify_colocated(cluster.replica(0, 1), t, one_object(0));
  cluster.sim().run();
  ASSERT_EQ(client.decision(t), Decision::kCommit);
  Replica& leader = cluster.replica(0, 0);
  std::uint64_t msgs_before = cluster.net().total_messages();
  leader.retry(leader.log().slot_of(t));
  cluster.sim().run();
  EXPECT_EQ(cluster.net().total_messages(), msgs_before);  // nothing sent
}

TEST(CommitEdge, EmptyParticipantsCommitsImmediately) {
  Cluster cluster({.seed = 8, .num_shards = 2, .shard_size = 2});
  Client& client = cluster.add_client();
  TxnId t = cluster.next_txn_id();
  client.certify_colocated(cluster.replica(0, 0), t, tcs::empty_payload());
  // Decided synchronously: no messages needed.
  EXPECT_EQ(client.decision(t), Decision::kCommit);
  EXPECT_EQ(*client.latency(t), 0u);
}

TEST(CommitEdge, ConfigChangeWithStaleEpochIgnored) {
  // Line 68 pre: epoch[s] < e.
  Cluster cluster({.seed = 9, .num_shards = 2, .shard_size = 2});
  Replica& r = cluster.replica(1, 0);
  ASSERT_EQ(r.view(0).epoch, 1u);
  configsvc::ConfigChange stale;
  stale.shard = 0;
  stale.config.epoch = 1;  // not newer
  stale.config.members = {12345};
  stale.config.leader = 12345;
  cluster.net().send_msg(9000, r.id(), stale);
  cluster.sim().run();
  EXPECT_NE(r.view(0).leader, 12345u);  // unchanged
}

TEST(CommitEdge, LeaderDrivenAblationIsCorrectAndFaster) {
  Cluster cluster({.seed = 10,
                   .num_shards = 2,
                   .shard_size = 3,
                   .leader_ships_accepts = true});
  Client& client = cluster.add_client();
  std::vector<TxnId> txns;
  for (int i = 0; i < 30; ++i) {
    TxnId t = cluster.next_txn_id();
    txns.push_back(t);
    client.certify_colocated(cluster.replica(0, 1), t,
                             one_object(static_cast<ObjectId>(i)));
  }
  cluster.sim().run();
  for (TxnId t : txns) {
    ASSERT_TRUE(client.decided(t));
    EXPECT_EQ(*client.latency(t), 3u);  // one delay faster than the paper's 4
  }
  EXPECT_EQ(cluster.verify(), "");
}

TEST(CommitEdge, LeaderDrivenAblationSurvivesReconfiguration) {
  Cluster cluster({.seed = 11,
                   .num_shards = 1,
                   .shard_size = 2,
                   .leader_ships_accepts = true});
  Client& client = cluster.add_client();
  TxnId t1 = cluster.next_txn_id();
  client.certify_colocated(cluster.replica(0, 1), t1, one_object(0));
  cluster.sim().run();
  ASSERT_EQ(client.decision(t1), Decision::kCommit);

  cluster.crash(cluster.leader_of(0));
  cluster.reconfigure(0, cluster.replica(0, 1).id());
  ASSERT_TRUE(cluster.await_active_epoch(0, 2));
  TxnId t2 = cluster.next_txn_id();
  client.certify_colocated(cluster.replica(0, 1), t2, one_object(2));
  cluster.sim().run();
  EXPECT_EQ(client.decision(t2), Decision::kCommit);
  EXPECT_EQ(cluster.verify(), "");
}

}  // namespace
}  // namespace ratc::commit
