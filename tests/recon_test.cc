// The shared reconfigurer core (src/recon/): placement-policy semantics,
// the engine's attempt lifecycle against scripted hooks (probe/descend,
// CAS win/loss, the allocated-spares ledger, pending-target tracking), and
// the cluster-level wiring of the policy seam into replica-driven
// reconfigurations.
#include <gtest/gtest.h>

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "commit/cluster.h"
#include "recon/engine.h"
#include "recon/placement.h"
#include "sim/simulator.h"

namespace ratc::recon {
namespace {

// --- placement policies -------------------------------------------------------

PlacementInput input_with(ProcessId leader, std::vector<ProcessId> responders,
                          std::set<ProcessId> suspected, std::size_t target) {
  PlacementInput in;
  in.shard = 0;
  in.next_epoch = 2;
  in.leader_candidate = leader;
  in.responders = std::move(responders);
  in.target_size = target;
  in.context.suspected = std::move(suspected);
  return in;
}

/// allocate_fresh backed by a finite pool, recording consumption.
struct Pool {
  std::vector<ProcessId> spares;
  std::vector<ProcessId> handed_out;

  std::function<std::vector<ProcessId>(std::size_t)> allocator() {
    return [this](std::size_t n) {
      std::vector<ProcessId> out;
      while (!spares.empty() && out.size() < n) {
        out.push_back(spares.front());
        spares.erase(spares.begin());
      }
      handed_out.insert(handed_out.end(), out.begin(), out.end());
      return out;
    };
  }
};

TEST(ReplaceSuspectsPolicy, HappyPathRetainsRespondersInPidOrder) {
  ReplaceSuspectsPolicy policy;
  Pool pool{.spares = {50}};
  auto cfg = policy.plan(input_with(10, {10, 11, 12}, {}, 3), pool.allocator());
  EXPECT_EQ(cfg.leader, 10u);
  EXPECT_EQ(cfg.members, (std::vector<ProcessId>{10, 11, 12}));
  EXPECT_TRUE(pool.handed_out.empty());  // no spare needed
}

TEST(ReplaceSuspectsPolicy, AllMembersSuspectedBackfillsWithFreshSpares) {
  // Every responder besides the leader candidate is suspect: the proposal
  // must keep only the (mandatory) leader and draw the rest fresh.
  ReplaceSuspectsPolicy policy;
  Pool pool{.spares = {50, 51, 52}};
  auto cfg =
      policy.plan(input_with(10, {10, 11, 12}, {10, 11, 12}, 3), pool.allocator());
  EXPECT_EQ(cfg.leader, 10u);
  EXPECT_EQ(cfg.members, (std::vector<ProcessId>{10, 50, 51}));
  EXPECT_EQ(pool.handed_out, (std::vector<ProcessId>{50, 51}));
}

TEST(ReplaceSuspectsPolicy, SparePoolExhaustedProposesUndersizedConfig) {
  // The pool cannot cover the deficit: the policy proposes what exists
  // rather than stalling — an undersized epoch beats a frozen shard (the
  // paper's constraints allow any size >= 1 containing the leader).
  ReplaceSuspectsPolicy policy;
  Pool pool{.spares = {50}};  // need 2, have 1
  auto cfg = policy.plan(input_with(10, {10, 11}, {11}, 3), pool.allocator());
  EXPECT_EQ(cfg.members, (std::vector<ProcessId>{10, 50}));
  EXPECT_EQ(cfg.members.size(), 2u);  // undersized but valid
  EXPECT_TRUE(pool.spares.empty());
}

TEST(ReplaceSuspectsPolicy, SuspectSupersetOfRespondersKeepsLeaderOnly) {
  // Suspicion can outrun probing (asymmetric partitions): even when every
  // responder — including the leader candidate — is suspect, the candidate
  // is the only process known to hold the shard state, so it stays and
  // leads; everyone else is replaced.
  ReplaceSuspectsPolicy policy;
  Pool pool{.spares = {50}};
  auto cfg =
      policy.plan(input_with(10, {10, 11}, {10, 11, 12, 13}, 2), pool.allocator());
  EXPECT_EQ(cfg.leader, 10u);
  EXPECT_EQ(cfg.members, (std::vector<ProcessId>{10, 50}));
}

TEST(ReplaceSuspectsPolicy, NoAllocatorProposesRespondersOnly) {
  ReplaceSuspectsPolicy policy;
  auto cfg = policy.plan(input_with(10, {10}, {}, 3), nullptr);
  EXPECT_EQ(cfg.members, (std::vector<ProcessId>{10}));
}

PlacementInput zoned_input(ProcessId leader, std::vector<ProcessId> responders,
                           std::map<ProcessId, std::string> zones,
                           std::size_t target) {
  PlacementInput in = input_with(leader, std::move(responders), {}, target);
  in.context.zones = std::move(zones);
  return in;
}

TEST(ZoneAntiAffinityPolicy, PrefersUnrepresentedZonesOverPidOrder) {
  // Leader in z0; responders 11 (z0) and 12 (z1); one seat left.  Pid order
  // would take 11; zone anti-affinity takes 12.
  ZoneAntiAffinityPolicy policy;
  auto cfg = policy.plan(
      zoned_input(10, {10, 11, 12}, {{10, "z0"}, {11, "z0"}, {12, "z1"}}, 2),
      nullptr);
  EXPECT_EQ(cfg.members, (std::vector<ProcessId>{10, 12}));
}

TEST(ZoneAntiAffinityPolicy, FillsFromSameZoneWhenNoAlternative) {
  // All responders share the leader's zone: degrade to pid order rather
  // than burning fresh spares (responders are known-recently-alive).
  ZoneAntiAffinityPolicy policy;
  Pool pool{.spares = {50}};
  auto cfg = policy.plan(
      zoned_input(10, {10, 11, 12}, {{10, "z0"}, {11, "z0"}, {12, "z0"}}, 2),
      pool.allocator());
  EXPECT_EQ(cfg.members, (std::vector<ProcessId>{10, 11}));
  EXPECT_TRUE(pool.handed_out.empty());
}

TEST(ZoneAntiAffinityPolicy, UnlabeledRespondersDegradeToReplaceSuspects) {
  ZoneAntiAffinityPolicy zone;
  ReplaceSuspectsPolicy base;
  PlacementInput in = input_with(10, {10, 11, 12, 13}, {12}, 3);
  auto a = zone.plan(in, nullptr);
  auto b = base.plan(in, nullptr);
  EXPECT_EQ(a.members, b.members);
  EXPECT_EQ(a.leader, b.leader);
}

TEST(ZoneAntiAffinityPolicy, SkipsSuspectsInBothPasses) {
  ZoneAntiAffinityPolicy policy;
  PlacementInput in = zoned_input(
      10, {10, 11, 12}, {{10, "z0"}, {11, "z1"}, {12, "z1"}}, 3);
  in.context.suspected = {11};
  Pool pool{.spares = {50}};
  auto cfg = policy.plan(in, pool.allocator());
  // 11 (z1, suspect) is skipped in the spread pass AND the fill pass; 12
  // (z1, healthy) takes the diverse seat, the spare fills the last one.
  EXPECT_EQ(cfg.members, (std::vector<ProcessId>{10, 12, 50}));
}

// --- the engine against scripted hooks ----------------------------------------

/// Scripted substrate: configs served from a map, probes recorded, CAS
/// outcomes queued by the test.
class ScriptedHooks : public StackHooks {
 public:
  // shard -> epoch -> members.  latest[s] names the top stored epoch.
  std::map<ShardId, std::map<Epoch, std::vector<ProcessId>>> stored;
  Pool pool;
  std::vector<std::pair<ProcessId, Epoch>> probes;
  std::vector<Proposal> submitted;
  std::vector<Proposal> activated;
  std::map<ShardId, std::vector<ProcessId>> released;
  /// Pending CAS continuations, resolved explicitly by the test.
  std::vector<std::function<void(bool)>> cas_waiting;
  PlacementContext context;

  void fetch_latest(const std::vector<ShardId>& shards,
                    std::function<void(bool, Snapshot)> cb) override {
    Snapshot snap;
    for (ShardId s : shards) {
      auto it = stored.find(s);
      if (it == stored.end() || it->second.empty()) {
        cb(false, {});
        return;
      }
      snap.epoch = it->second.rbegin()->first;
      snap.members[s] = it->second.rbegin()->second;
    }
    cb(snap.valid(), snap);
  }

  void fetch_members_at(ShardId shard, Epoch epoch,
                        std::function<void(bool, std::vector<ProcessId>)> cb) override {
    auto it = stored.find(shard);
    if (it == stored.end() || it->second.count(epoch) == 0) {
      cb(false, {});
      return;
    }
    cb(true, it->second.at(epoch));
  }

  void send_probe(ProcessId target, Epoch new_epoch) override {
    probes.emplace_back(target, new_epoch);
  }

  std::vector<ProcessId> reserve_spares(ShardId, std::size_t n) override {
    return pool.allocator()(n);
  }

  void release_spares(ShardId shard, const std::vector<ProcessId>& spares) override {
    auto& r = released[shard];
    r.insert(r.end(), spares.begin(), spares.end());
  }

  void submit(const Proposal& proposal, std::function<void(bool)> done) override {
    submitted.push_back(proposal);
    cas_waiting.push_back(std::move(done));
  }

  void activate(const Proposal& proposal) override { activated.push_back(proposal); }

  PlacementContext placement_context(ShardId) override { return context; }

  void resolve_cas(bool won) {
    ASSERT_FALSE(cas_waiting.empty());
    auto done = cas_waiting.front();
    cas_waiting.erase(cas_waiting.begin());
    done(won);
  }
};

constexpr ProcessId kOwner = 7;

TEST(ReconEngine, HappyPathProposesClampedConfigAndActivates) {
  sim::Simulator sim(1);
  ScriptedHooks hooks;
  hooks.stored[0][1] = {10, 11};
  Engine engine(sim, kOwner, hooks, {.target_shard_size = 2});

  ASSERT_TRUE(engine.start({0}));
  EXPECT_FALSE(engine.start({0}));  // one attempt at a time
  ASSERT_EQ(hooks.probes.size(), 2u);
  EXPECT_EQ(hooks.probes[0], (std::pair<ProcessId, Epoch>{10, 2}));
  EXPECT_EQ(engine.pending_target(), 2u);
  EXPECT_EQ(engine.attempt_epoch(), 2u);

  engine.on_probe_ack(11, 0, 2, /*initialized=*/true);
  EXPECT_FALSE(engine.in_flight());  // proposed: attempt over, CAS pending
  ASSERT_EQ(hooks.submitted.size(), 1u);
  const configsvc::ShardConfig& cfg = hooks.submitted[0].shards.at(0);
  EXPECT_EQ(cfg.epoch, 2u);
  EXPECT_EQ(cfg.leader, 11u);   // the initialized responder leads (clamped)
  EXPECT_TRUE(cfg.has_member(11));

  hooks.resolve_cas(true);
  ASSERT_EQ(hooks.activated.size(), 1u);
  EXPECT_EQ(engine.stats().cas_wins, 1u);
  EXPECT_TRUE(engine.ledger_balanced());
}

TEST(ReconEngine, DescendsThroughNeverActivatedEpoch) {
  sim::Simulator sim(2);
  ScriptedHooks hooks;
  hooks.stored[0][1] = {10, 11};
  hooks.stored[0][2] = {20};  // stored but never activated; 20 uninitialized
  Engine engine(sim, kOwner, hooks, {.target_shard_size = 2, .probe_patience = 5});

  ASSERT_TRUE(engine.start({0}));
  ASSERT_EQ(hooks.probes.size(), 1u);  // probes epoch 2's membership first
  EXPECT_EQ(hooks.probes[0].first, 20u);
  EXPECT_EQ(hooks.probes[0].second, 3u);

  engine.on_probe_ack(20, 0, 3, /*initialized=*/false);
  sim.run_until(sim.now() + 10);  // probe_patience elapses -> descend
  ASSERT_EQ(hooks.probes.size(), 3u);  // epoch 1's two members, same target
  EXPECT_EQ(engine.stats().descents, 1u);

  engine.on_probe_ack(10, 0, 3, true);
  ASSERT_EQ(hooks.submitted.size(), 1u);
  EXPECT_EQ(hooks.submitted[0].epoch, 3u);
  EXPECT_EQ(hooks.submitted[0].shards.at(0).leader, 10u);
  // Responders accumulate across the descent: the uninitialized epoch-2
  // member is a valid follower (never-activated epochs accepted nothing).
  EXPECT_TRUE(hooks.submitted[0].shards.at(0).has_member(20));
}

TEST(ReconEngine, GivesUpBelowTheFirstEpoch) {
  sim::Simulator sim(3);
  ScriptedHooks hooks;
  hooks.stored[0][1] = {10};
  Engine engine(sim, kOwner, hooks, {.probe_patience = 5});

  ASSERT_TRUE(engine.start({0}));
  engine.on_probe_ack(10, 0, 2, /*initialized=*/false);
  sim.run_until(sim.now() + 10);
  EXPECT_FALSE(engine.in_flight());
  EXPECT_EQ(engine.stats().abandoned, 1u);
  // The target survives the give-up: probes froze epoch 1's members, and
  // only an observed stored epoch may clear the obligation.
  EXPECT_EQ(engine.pending_target(), 2u);
}

TEST(ReconEngine, SwallowedProbesKeepTheAttemptInFlight) {
  // No acks at all (whole shard crashed): the engine stays probing forever
  // — the paper's "stuck reconfigurer" under an Assumption 1 violation —
  // unless an embedder watchdog abandons it.
  sim::Simulator sim(4);
  ScriptedHooks hooks;
  hooks.stored[0][1] = {10, 11};
  Engine engine(sim, kOwner, hooks, {.probe_patience = 5});
  ASSERT_TRUE(engine.start({0}));
  sim.run_until(2000);
  EXPECT_TRUE(engine.in_flight());
  engine.abandon();
  EXPECT_FALSE(engine.in_flight());
  EXPECT_EQ(engine.pending_target(), 2u);
  engine.observe_epoch(0, 2);
  EXPECT_EQ(engine.pending_target(), kNoEpoch);
}

TEST(ReconEngine, CasLossReleasesEveryReservedSpare) {
  sim::Simulator sim(5);
  ScriptedHooks hooks;
  hooks.stored[0][1] = {10, 11};
  hooks.pool.spares = {50, 51};
  Engine engine(sim, kOwner, hooks, {.target_shard_size = 3});

  ASSERT_TRUE(engine.start({0}));
  engine.on_probe_ack(10, 0, 2, true);  // sole responder: 2 spares reserved
  EXPECT_EQ(engine.stats().spares_reserved, 2u);
  EXPECT_EQ(engine.spares_pending(), 2u);
  EXPECT_TRUE(engine.ledger_balanced());

  hooks.resolve_cas(false);
  EXPECT_EQ(engine.stats().cas_losses, 1u);
  EXPECT_EQ(engine.stats().spares_released, 2u);
  EXPECT_EQ(engine.spares_pending(), 0u);
  EXPECT_EQ(hooks.released[0], (std::vector<ProcessId>{50, 51}));
  EXPECT_TRUE(engine.ledger_balanced());
  EXPECT_TRUE(hooks.activated.empty());
}

TEST(ReconEngine, CasWinInstallsUsedAndReleasesUnusedSpares) {
  // A trimming policy reserves more than it installs: the surplus must go
  // back to the pool even on a WIN, and the ledger must account for both.
  class OverAllocatingPolicy final : public PlacementPolicy {
   public:
    const char* name() const override { return "over-allocating"; }
    configsvc::ShardConfig plan(
        const PlacementInput& in,
        const std::function<std::vector<ProcessId>(std::size_t)>& allocate_fresh)
        override {
      configsvc::ShardConfig next;
      next.epoch = in.next_epoch;
      next.leader = in.leader_candidate;
      next.members = {in.leader_candidate};
      std::vector<ProcessId> spares = allocate_fresh(2);  // takes 2, uses 1
      if (!spares.empty()) next.members.push_back(spares.front());
      return next;
    }
  };
  OverAllocatingPolicy policy;
  sim::Simulator sim(6);
  ScriptedHooks hooks;
  hooks.stored[0][1] = {10};
  hooks.pool.spares = {50, 51};
  Engine engine(sim, kOwner, hooks, {.target_shard_size = 2, .policy = &policy});

  ASSERT_TRUE(engine.start({0}));
  engine.on_probe_ack(10, 0, 2, true);
  hooks.resolve_cas(true);
  EXPECT_EQ(engine.stats().spares_reserved, 2u);
  EXPECT_EQ(engine.stats().spares_installed, 1u);
  EXPECT_EQ(engine.stats().spares_released, 1u);
  EXPECT_EQ(hooks.released[0], (std::vector<ProcessId>{51}));
  EXPECT_TRUE(engine.ledger_balanced());
}

TEST(ReconEngine, ObservedNewerEpochSupersedesInFlightAttempt) {
  sim::Simulator sim(7);
  ScriptedHooks hooks;
  hooks.stored[0][1] = {10, 11};
  Engine engine(sim, kOwner, hooks, {});

  ASSERT_TRUE(engine.start({0}));
  engine.observe_epoch(0, 2);  // someone else installed our target epoch
  EXPECT_FALSE(engine.in_flight());
  EXPECT_EQ(engine.pending_target(), kNoEpoch);
  // A late ack must not resurrect the attempt.
  engine.on_probe_ack(10, 0, 2, true);
  EXPECT_TRUE(hooks.submitted.empty());
}

TEST(ReconEngine, GlobalAttemptWaitsForEveryShardsCandidate) {
  // The Fig. 8 shape: one attempt across two shards; the proposal may only
  // go out once an initialized responder answered in BOTH.
  sim::Simulator sim(8);
  ScriptedHooks hooks;
  hooks.stored[0][1] = {10, 11};
  hooks.stored[1][1] = {20, 21};
  Engine engine(sim, kOwner, hooks, {.target_shard_size = 2});

  ASSERT_TRUE(engine.start({0, 1}));
  ASSERT_EQ(hooks.probes.size(), 4u);
  engine.on_probe_ack(10, 0, 2, true);
  EXPECT_TRUE(hooks.submitted.empty());  // shard 1 still pending
  engine.on_probe_ack(21, 1, 2, true);
  ASSERT_EQ(hooks.submitted.size(), 1u);
  EXPECT_EQ(hooks.submitted[0].shards.size(), 2u);
  EXPECT_EQ(hooks.submitted[0].shards.at(0).leader, 10u);
  EXPECT_EQ(hooks.submitted[0].shards.at(1).leader, 21u);
}

TEST(ReconEngine, PlacementContextReachesThePolicy) {
  class ContextProbePolicy final : public PlacementPolicy {
   public:
    const char* name() const override { return "context-probe"; }
    configsvc::ShardConfig plan(
        const PlacementInput& in,
        const std::function<std::vector<ProcessId>(std::size_t)>&) override {
      seen = in.context;
      configsvc::ShardConfig next;
      next.epoch = in.next_epoch;
      next.leader = in.leader_candidate;
      next.members = {in.leader_candidate};
      return next;
    }
    PlacementContext seen;
  };
  ContextProbePolicy policy;
  sim::Simulator sim(9);
  ScriptedHooks hooks;
  hooks.stored[0][1] = {10};
  hooks.context.spare_pool = 3;
  hooks.context.zones[10] = "z1";
  hooks.context.load[10] = 42;
  Engine engine(sim, kOwner, hooks, {.policy = &policy});
  ASSERT_TRUE(engine.start({0}));
  engine.on_probe_ack(10, 0, 2, true);
  EXPECT_EQ(policy.seen.spare_pool, 3u);
  EXPECT_EQ(policy.seen.zones.at(10), "z1");
  EXPECT_EQ(policy.seen.load.at(10), 42u);
}

// --- cluster wiring: replica-driven reconfigurations use the policy seam -------

TEST(ReconClusterWiring, ReplicaReconfigurerConsultsClusterPolicy) {
  // The policy seam used to exist only in the controller; the commit
  // replica's reconfigurer role must consult it too now that both run on
  // the shared engine.
  class SingletonPolicy final : public PlacementPolicy {
   public:
    const char* name() const override { return "singleton"; }
    configsvc::ShardConfig plan(
        const PlacementInput& in,
        const std::function<std::vector<ProcessId>(std::size_t)>&) override {
      ++invocations;
      configsvc::ShardConfig next;
      next.epoch = in.next_epoch;
      next.leader = in.leader_candidate;
      next.members = {in.leader_candidate};
      return next;
    }
    int invocations = 0;
  };
  SingletonPolicy policy;
  commit::Cluster::Options opts{
      .seed = 31, .num_shards = 1, .shard_size = 2, .spares_per_shard = 2};
  opts.placement_policy = &policy;
  commit::Cluster cluster(opts);
  ProcessId victim = cluster.replica(0, 1).id();
  ProcessId survivor = cluster.replica(0, 0).id();
  cluster.crash(victim);
  cluster.reconfigure(0, survivor);
  ASSERT_TRUE(cluster.await_active_epoch(0, 2));
  EXPECT_GE(policy.invocations, 1);
  configsvc::ShardConfig cfg = cluster.current_config(0);
  EXPECT_EQ(cfg.members, std::vector<ProcessId>{survivor});
  EXPECT_EQ(cluster.verify(), "");
  EXPECT_EQ(cluster.spare_ledger_verdict(), "");
}

TEST(ReconClusterWiring, ZoneLabelsAndLoadFlowIntoTheContext) {
  recon::ZoneAntiAffinityPolicy zone_policy;
  commit::Cluster::Options opts{
      .seed = 32, .num_shards = 1, .shard_size = 2, .spares_per_shard = 2};
  opts.placement_policy = &zone_policy;
  opts.num_zones = 2;
  commit::Cluster cluster(opts);
  PlacementContext ctx = cluster.placement_context(0);
  EXPECT_EQ(ctx.spare_pool, 2u);
  EXPECT_EQ(ctx.zones.at(cluster.replica(0, 0).id()), "z0");
  EXPECT_EQ(ctx.zones.at(cluster.replica(0, 1).id()), "z1");
  EXPECT_EQ(ctx.zones.size(), 4u);  // members + spares all labeled
  EXPECT_EQ(ctx.load.size(), 4u);

  // End to end: a crash heals under the zone policy with the ledger clean.
  cluster.crash(cluster.replica(0, 1).id());
  cluster.reconfigure(0, cluster.replica(0, 0).id());
  ASSERT_TRUE(cluster.await_active_epoch(0, 2));
  EXPECT_EQ(cluster.verify(), "");
  EXPECT_EQ(cluster.spare_ledger_verdict(), "");
  EXPECT_GE(cluster.engine_stats().cas_wins, 1u);
}

}  // namespace
}  // namespace ratc::recon
