// Determinism guarantees of the fault-injection harness: a run is a pure
// function of its seed.  Same seed => identical schedule, identical message
// trace (sim::Tracer fingerprint), identical outcome counters, across all
// three protocol stacks; different seeds explore different executions.
#include <gtest/gtest.h>

#include <set>

#include "harness/nemesis.h"
#include "harness/schedule.h"
#include "harness/sweep.h"
#include "sim/network.h"
#include "sim/simulator.h"
#include "sim/trace.h"

namespace ratc::harness {
namespace {

struct Pulse {
  static constexpr const char* kName = "PULSE";
  int n = 0;
};

ScheduleOptions small_schedule() {
  ScheduleOptions s;
  s.crashes = 1;
  s.reconfigures = 1;
  s.partitions = 1;
  s.delay_windows = 1;
  s.window_hi = 150;
  return s;
}

TEST(ScheduleDeterminism, SameSeedSameSchedule) {
  ScheduleOptions opt = small_schedule();
  opt.drop_windows = 2;
  Rng a(42), b(42);
  EXPECT_EQ(generate_schedule(a, opt).describe(),
            generate_schedule(b, opt).describe());
}

TEST(ScheduleDeterminism, DifferentSeedsDifferentSchedules) {
  ScheduleOptions opt = small_schedule();
  Rng a(1), b(2);
  EXPECT_NE(generate_schedule(a, opt).describe(),
            generate_schedule(b, opt).describe());
}

TEST(ScheduleDeterminism, EventsSortedAndMidWorkload) {
  Rng rng(7);
  ScheduleOptions opt = small_schedule();
  opt.crashes = 3;
  opt.partitions = 2;
  Schedule s = generate_schedule(rng, opt);
  ASSERT_FALSE(s.events.empty());
  for (std::size_t i = 1; i < s.events.size(); ++i) {
    EXPECT_LE(s.events[i - 1].at, s.events[i].at);
  }
  for (const auto& e : s.events) {
    EXPECT_GE(e.at, 0.0);
    EXPECT_LT(e.at, 1.0);
  }
}

CommitWorkloadOptions small_commit_workload() {
  CommitWorkloadOptions w;
  w.total_txns = 60;
  w.drain = 4000;
  return w;
}

TEST(CommitDeterminism, SameSeedIdenticalTrace) {
  CommitWorkloadOptions w = small_commit_workload();
  for (std::uint64_t seed : {3ULL, 11ULL}) {
    Rng r1(seed), r2(seed);
    ScheduleOptions opt = small_schedule();
    Schedule s1 = generate_schedule(r1, opt);
    Schedule s2 = generate_schedule(r2, opt);
    RunResult a = run_commit_workload(seed, w, s1);
    RunResult b = run_commit_workload(seed, w, s2);
    EXPECT_EQ(a.fingerprint, b.fingerprint) << "seed " << seed;
    EXPECT_EQ(a.submitted, b.submitted);
    EXPECT_EQ(a.decided, b.decided);
    EXPECT_EQ(a.committed, b.committed);
    EXPECT_EQ(a.dropped, b.dropped);
    EXPECT_EQ(a.problems, b.problems);
  }
}

TEST(CommitDeterminism, DifferentSeedsDifferentTraces) {
  CommitWorkloadOptions w = small_commit_workload();
  std::set<std::uint64_t> fingerprints;
  for (std::uint64_t seed = 1; seed <= 4; ++seed) {
    Rng r(seed);
    Schedule s = generate_schedule(r, small_schedule());
    fingerprints.insert(run_commit_workload(seed, w, s).fingerprint);
  }
  // All four seeds must explore distinct executions.
  EXPECT_EQ(fingerprints.size(), 4u);
}

TEST(CommitDeterminism, NewScheduleShapesAreDeterministicToo) {
  CommitWorkloadOptions w = small_commit_workload();
  ScheduleOptions opt = small_schedule();
  opt.partitions = 0;
  opt.majority_splits = 1;
  opt.one_way_partitions = 1;
  opt.clock_skews = 1;
  Rng r1(21), r2(21);
  RunResult a = run_commit_workload(21, w, generate_schedule(r1, opt));
  RunResult b = run_commit_workload(21, w, generate_schedule(r2, opt));
  EXPECT_EQ(a.fingerprint, b.fingerprint);
  EXPECT_EQ(a.problems, b.problems);
}

TEST(BaselineDeterminism, SameSeedIdenticalTrace) {
  BaselineWorkloadOptions w;
  w.total_txns = 50;
  w.drain = 4000;
  Rng r1(5), r2(5);
  Schedule s1 = generate_schedule(r1, small_schedule());
  Schedule s2 = generate_schedule(r2, small_schedule());
  RunResult a = run_baseline_workload(5, w, s1);
  RunResult b = run_baseline_workload(5, w, s2);
  EXPECT_EQ(a.fingerprint, b.fingerprint);
  EXPECT_EQ(a.decided, b.decided);
  EXPECT_EQ(a.problems, b.problems);
}

TEST(BaselineDeterminism, CoopTerminationSameSeedIdenticalTrace) {
  // The termination machinery (failure-detector pings, in-doubt timers,
  // query rounds) must stay a pure function of the seed too.
  BaselineCoopWorkloadOptions w;
  w.total_txns = 50;
  w.drain = 4000;
  Rng r1(5), r2(5);
  Schedule s1 = generate_schedule(r1, small_schedule());
  Schedule s2 = generate_schedule(r2, small_schedule());
  RunResult a = run_baseline_coop_workload(5, w, s1);
  RunResult b = run_baseline_coop_workload(5, w, s2);
  EXPECT_EQ(a.fingerprint, b.fingerprint);
  EXPECT_EQ(a.decided, b.decided);
  EXPECT_EQ(a.problems, b.problems);
  // The coop variant explores a different execution than the classical
  // baseline on the same seed and workload (the FD traffic alone separates
  // the traces).
  BaselineWorkloadOptions cw;
  cw.total_txns = w.total_txns;
  cw.drain = w.drain;
  RunResult classical = run_baseline_workload(5, cw, s1);
  EXPECT_NE(a.fingerprint, classical.fingerprint);
}

TEST(RdmaDeterminism, SameSeedIdenticalTrace) {
  RdmaWorkloadOptions w;
  w.total_txns = 50;
  w.drain = 4000;
  Rng r1(5), r2(5);
  Schedule s1 = generate_schedule(r1, small_schedule());
  Schedule s2 = generate_schedule(r2, small_schedule());
  RunResult a = run_rdma_workload(5, w, s1);
  RunResult b = run_rdma_workload(5, w, s2);
  EXPECT_EQ(a.fingerprint, b.fingerprint);
  EXPECT_EQ(a.decided, b.decided);
  EXPECT_EQ(a.problems, b.problems);
}

TEST(PaxosDeterminism, SameSeedIdenticalTrace) {
  PaxosWorkloadOptions w;
  w.total_txns = 30;
  Rng r1(9), r2(9);
  Schedule s1 = generate_schedule(r1, small_schedule());
  Schedule s2 = generate_schedule(r2, small_schedule());
  RunResult a = run_paxos_workload(9, w, s1);
  RunResult b = run_paxos_workload(9, w, s2);
  EXPECT_EQ(a.fingerprint, b.fingerprint);
  EXPECT_EQ(a.decided, b.decided);
  EXPECT_EQ(a.problems, b.problems);
}

TEST(ParallelSweepDeterminism, PerSeedFingerprintsIndependentOfThreadCount) {
  // Every run is seed-isolated, so the thread pool must be invisible: the
  // same sweep on 1 thread, 2 threads and hardware concurrency yields the
  // same per-seed fingerprints and the same aggregate.
  constexpr int kSeeds = 8;
  CommitWorkloadOptions w = small_commit_workload();
  // Liveness is not under test here; a partitioned-then-crashed coordinator
  // may legitimately strand a chunk of a 60-txn run.
  w.min_decided_fraction = 0.5;
  ScheduleOptions opt = small_schedule();
  auto fingerprints = [&](unsigned threads) {
    std::vector<std::uint64_t> fp(kSeeds, 0);
    SweepResult sweep = parallel_sweep_seeds(
        1, kSeeds,
        [&](std::uint64_t seed) {
          Rng r(seed);
          RunResult res = run_commit_workload(seed, w, generate_schedule(r, opt));
          fp[seed - 1] = res.fingerprint;  // distinct slot per seed: race-free
          return res;
        },
        threads);
    EXPECT_TRUE(sweep.ok()) << sweep.report();
    EXPECT_EQ(sweep.runs, kSeeds);
    return fp;
  };
  std::vector<std::uint64_t> one = fingerprints(1);
  EXPECT_EQ(one, fingerprints(2));
  EXPECT_EQ(one, fingerprints(0));  // 0 = hardware concurrency
  for (std::uint64_t f : one) EXPECT_NE(f, 0u);
}

TEST(ParallelSweepDeterminism, AggregatesMatchSequentialSweep) {
  constexpr int kSeeds = 6;
  BaselineWorkloadOptions w;
  w.total_txns = 40;
  w.drain = 4000;
  ScheduleOptions opt = small_schedule();
  auto run = [&](std::uint64_t seed) {
    Rng r(seed);
    return run_baseline_workload(seed, w, generate_schedule(r, opt));
  };
  SweepResult seq = sweep_seeds(1, kSeeds, run);
  SweepResult par = parallel_sweep_seeds(1, kSeeds, run, 3);
  EXPECT_EQ(seq.runs, par.runs);
  EXPECT_EQ(seq.total_submitted, par.total_submitted);
  EXPECT_EQ(seq.total_decided, par.total_decided);
  EXPECT_EQ(seq.total_committed, par.total_committed);
  EXPECT_EQ(seq.failures.size(), par.failures.size());
}

/// Message sink: records who delivered and when.
class Sink : public sim::Process {
 public:
  Sink(sim::Simulator& sim, ProcessId id)
      : Process(sim, id, "sink" + std::to_string(id)) {}
  void on_message(ProcessId from, const sim::AnyMessage&) override {
    arrivals.emplace_back(from, rt().now());
  }
  std::vector<std::pair<ProcessId, Time>> arrivals;
};

TEST(NemesisWindows, OneWayPartitionBlocksOnlyOneDirection) {
  sim::Simulator sim(11);
  sim::Network net(sim, sim::Network::unit_delay_options());
  Sink a(sim, 1), b(sim, 2);
  sim.add_process(&a);
  sim.add_process(&b);
  Nemesis nemesis(sim, 11);
  net.set_fault_injector(&nemesis);
  // Victim 2 is deaf (inbound blocked) but not mute.
  nemesis.isolate_one_way({2}, 100, /*inbound_blocked=*/true, /*lossy=*/true);
  for (int i = 0; i < 10; ++i) {
    net.send_msg(1, 2, Pulse{i});  // blocked
    net.send_msg(2, 1, Pulse{i});  // flows
  }
  sim.run();
  EXPECT_EQ(nemesis.dropped(), 10u);
  EXPECT_EQ(b.arrivals.size(), 0u);   // deaf
  EXPECT_EQ(a.arrivals.size(), 10u);  // but not mute
}

TEST(NemesisWindows, ClockSkewDelaysOnlyTheSkewedSender) {
  sim::Simulator sim(13);
  sim::Network net(sim, sim::Network::unit_delay_options());
  Sink sink(sim, 3);
  sim.add_process(&sink);
  Nemesis nemesis(sim, 13);
  net.set_fault_injector(&nemesis);
  nemesis.skew_clocks({2}, /*skew=*/40, /*len=*/100);
  net.send_msg(1, 3, Pulse{0});
  net.send_msg(2, 3, Pulse{1});
  sim.run();
  EXPECT_EQ(nemesis.skewed(), 1u);
  ASSERT_EQ(sink.arrivals.size(), 2u);
  for (const auto& [from, at] : sink.arrivals) {
    if (from == 1) EXPECT_EQ(at, 1u);   // unit delay, unaffected
    if (from == 2) EXPECT_EQ(at, 41u);  // unit delay + 40 ticks of skew
  }
}

TEST(NemesisDeterminism, IdleInjectorDoesNotPerturbExecution) {
  // Run identical traffic with and without an installed (idle) nemesis.
  // Every message flows through Nemesis::on_message in the second run, yet
  // the fault-free execution — delay samples from the simulator's Rng and
  // the resulting trace — must be bit-identical to the first.
  auto run = [](bool with_nemesis) {
    sim::Simulator sim(123);
    sim::Network net(sim, sim::Network::exponential_delay_options(3.0));
    sim::Tracer tracer;
    net.add_observer(&tracer);
    Nemesis nemesis(sim, 99);
    if (with_nemesis) net.set_fault_injector(&nemesis);
    for (int i = 0; i < 50; ++i) {
      net.send_msg(1, 2, Pulse{i});
      net.send_msg(2, 1, Pulse{i});
      sim.run();
    }
    return std::make_pair(tracer.render(), sim.rng().next());
  };
  EXPECT_EQ(run(false), run(true));
}

TEST(NemesisDeterminism, ActiveWindowsDrawOnlyFromOwnRng) {
  // An active drop window consults the nemesis's own Rng per message; two
  // nemeses with the same seed over the same traffic must drop the exact
  // same messages.
  auto run = [] {
    sim::Simulator sim(7);
    sim::Network net(sim, sim::Network::unit_delay_options());
    sim::Tracer tracer;
    net.add_observer(&tracer);
    Nemesis nemesis(sim, 7);
    net.set_fault_injector(&nemesis);
    nemesis.drop_messages(0.3, 1'000'000);
    for (int i = 0; i < 200; ++i) net.send_msg(1, 2, Pulse{i});
    sim.run();
    return std::make_pair(tracer.render(), nemesis.dropped());
  };
  auto a = run();
  auto b = run();
  EXPECT_EQ(a, b);
  EXPECT_GT(a.second, 0u);
  EXPECT_LT(a.second, 200u);
}

TEST(NemesisWindows, HeldMessagesAreExemptFromDropWindows) {
  // A non-lossy partition guarantees eventual delivery; an overlapping drop
  // window must not eat the held-back messages.
  sim::Simulator sim(3);
  sim::Network net(sim, sim::Network::unit_delay_options());
  sim::Tracer tracer;
  net.add_observer(&tracer);
  Nemesis nemesis(sim, 3);
  net.set_fault_injector(&nemesis);
  nemesis.isolate({2}, 100, /*lossy=*/false);
  nemesis.drop_messages(1.0, 100);  // would drop everything if consulted
  for (int i = 0; i < 20; ++i) net.send_msg(1, 2, Pulse{i});
  sim.run();
  EXPECT_EQ(nemesis.dropped(), 0u);
  EXPECT_EQ(nemesis.held_at_partition(), 20u);
}

TEST(NemesisWindows, PartitionExpiresOnItsOwn) {
  sim::Simulator sim(1);
  Nemesis nemesis(sim, 1);
  nemesis.isolate({7}, 50);
  EXPECT_TRUE(nemesis.partition_active());
  sim.schedule(60, [] {});
  sim.run();
  EXPECT_FALSE(nemesis.partition_active());
}

}  // namespace
}  // namespace ratc::harness
