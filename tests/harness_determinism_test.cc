// Determinism guarantees of the fault-injection harness: a run is a pure
// function of its seed.  Same seed => identical schedule, identical message
// trace (sim::Tracer fingerprint), identical outcome counters, across all
// three protocol stacks; different seeds explore different executions.
#include <gtest/gtest.h>

#include <set>

#include "harness/nemesis.h"
#include "harness/schedule.h"
#include "harness/sweep.h"
#include "sim/network.h"
#include "sim/simulator.h"
#include "sim/trace.h"

namespace ratc::harness {
namespace {

struct Pulse {
  static constexpr const char* kName = "PULSE";
  int n = 0;
};

ScheduleOptions small_schedule() {
  ScheduleOptions s;
  s.crashes = 1;
  s.reconfigures = 1;
  s.partitions = 1;
  s.delay_windows = 1;
  s.window_hi = 150;
  return s;
}

TEST(ScheduleDeterminism, SameSeedSameSchedule) {
  ScheduleOptions opt = small_schedule();
  opt.drop_windows = 2;
  Rng a(42), b(42);
  EXPECT_EQ(generate_schedule(a, opt).describe(),
            generate_schedule(b, opt).describe());
}

TEST(ScheduleDeterminism, DifferentSeedsDifferentSchedules) {
  ScheduleOptions opt = small_schedule();
  Rng a(1), b(2);
  EXPECT_NE(generate_schedule(a, opt).describe(),
            generate_schedule(b, opt).describe());
}

TEST(ScheduleDeterminism, EventsSortedAndMidWorkload) {
  Rng rng(7);
  ScheduleOptions opt = small_schedule();
  opt.crashes = 3;
  opt.partitions = 2;
  Schedule s = generate_schedule(rng, opt);
  ASSERT_FALSE(s.events.empty());
  for (std::size_t i = 1; i < s.events.size(); ++i) {
    EXPECT_LE(s.events[i - 1].at, s.events[i].at);
  }
  for (const auto& e : s.events) {
    EXPECT_GE(e.at, 0.0);
    EXPECT_LT(e.at, 1.0);
  }
}

CommitWorkloadOptions small_commit_workload() {
  CommitWorkloadOptions w;
  w.total_txns = 60;
  w.drain = 4000;
  return w;
}

TEST(CommitDeterminism, SameSeedIdenticalTrace) {
  CommitWorkloadOptions w = small_commit_workload();
  for (std::uint64_t seed : {3ULL, 11ULL}) {
    Rng r1(seed), r2(seed);
    ScheduleOptions opt = small_schedule();
    Schedule s1 = generate_schedule(r1, opt);
    Schedule s2 = generate_schedule(r2, opt);
    RunResult a = run_commit_workload(seed, w, s1);
    RunResult b = run_commit_workload(seed, w, s2);
    EXPECT_EQ(a.fingerprint, b.fingerprint) << "seed " << seed;
    EXPECT_EQ(a.submitted, b.submitted);
    EXPECT_EQ(a.decided, b.decided);
    EXPECT_EQ(a.committed, b.committed);
    EXPECT_EQ(a.dropped, b.dropped);
    EXPECT_EQ(a.problems, b.problems);
  }
}

TEST(CommitDeterminism, DifferentSeedsDifferentTraces) {
  CommitWorkloadOptions w = small_commit_workload();
  std::set<std::uint64_t> fingerprints;
  for (std::uint64_t seed = 1; seed <= 4; ++seed) {
    Rng r(seed);
    Schedule s = generate_schedule(r, small_schedule());
    fingerprints.insert(run_commit_workload(seed, w, s).fingerprint);
  }
  // All four seeds must explore distinct executions.
  EXPECT_EQ(fingerprints.size(), 4u);
}

TEST(RdmaDeterminism, SameSeedIdenticalTrace) {
  RdmaWorkloadOptions w;
  w.total_txns = 50;
  w.drain = 4000;
  Rng r1(5), r2(5);
  Schedule s1 = generate_schedule(r1, small_schedule());
  Schedule s2 = generate_schedule(r2, small_schedule());
  RunResult a = run_rdma_workload(5, w, s1);
  RunResult b = run_rdma_workload(5, w, s2);
  EXPECT_EQ(a.fingerprint, b.fingerprint);
  EXPECT_EQ(a.decided, b.decided);
  EXPECT_EQ(a.problems, b.problems);
}

TEST(PaxosDeterminism, SameSeedIdenticalTrace) {
  PaxosWorkloadOptions w;
  w.commands = 30;
  Rng r1(9), r2(9);
  Schedule s1 = generate_schedule(r1, small_schedule());
  Schedule s2 = generate_schedule(r2, small_schedule());
  RunResult a = run_paxos_workload(9, w, s1);
  RunResult b = run_paxos_workload(9, w, s2);
  EXPECT_EQ(a.fingerprint, b.fingerprint);
  EXPECT_EQ(a.decided, b.decided);
  EXPECT_EQ(a.problems, b.problems);
}

TEST(NemesisDeterminism, IdleInjectorDoesNotPerturbExecution) {
  // Run identical traffic with and without an installed (idle) nemesis.
  // Every message flows through Nemesis::on_message in the second run, yet
  // the fault-free execution — delay samples from the simulator's Rng and
  // the resulting trace — must be bit-identical to the first.
  auto run = [](bool with_nemesis) {
    sim::Simulator sim(123);
    sim::Network net(sim, sim::Network::exponential_delay_options(3.0));
    sim::Tracer tracer;
    net.add_observer(&tracer);
    Nemesis nemesis(sim, 99);
    if (with_nemesis) net.set_fault_injector(&nemesis);
    for (int i = 0; i < 50; ++i) {
      net.send_msg(1, 2, Pulse{i});
      net.send_msg(2, 1, Pulse{i});
      sim.run();
    }
    return std::make_pair(tracer.render(), sim.rng().next());
  };
  EXPECT_EQ(run(false), run(true));
}

TEST(NemesisDeterminism, ActiveWindowsDrawOnlyFromOwnRng) {
  // An active drop window consults the nemesis's own Rng per message; two
  // nemeses with the same seed over the same traffic must drop the exact
  // same messages.
  auto run = [] {
    sim::Simulator sim(7);
    sim::Network net(sim, sim::Network::unit_delay_options());
    sim::Tracer tracer;
    net.add_observer(&tracer);
    Nemesis nemesis(sim, 7);
    net.set_fault_injector(&nemesis);
    nemesis.drop_messages(0.3, 1'000'000);
    for (int i = 0; i < 200; ++i) net.send_msg(1, 2, Pulse{i});
    sim.run();
    return std::make_pair(tracer.render(), nemesis.dropped());
  };
  auto a = run();
  auto b = run();
  EXPECT_EQ(a, b);
  EXPECT_GT(a.second, 0u);
  EXPECT_LT(a.second, 200u);
}

TEST(NemesisWindows, HeldMessagesAreExemptFromDropWindows) {
  // A non-lossy partition guarantees eventual delivery; an overlapping drop
  // window must not eat the held-back messages.
  sim::Simulator sim(3);
  sim::Network net(sim, sim::Network::unit_delay_options());
  sim::Tracer tracer;
  net.add_observer(&tracer);
  Nemesis nemesis(sim, 3);
  net.set_fault_injector(&nemesis);
  nemesis.isolate({2}, 100, /*lossy=*/false);
  nemesis.drop_messages(1.0, 100);  // would drop everything if consulted
  for (int i = 0; i < 20; ++i) net.send_msg(1, 2, Pulse{i});
  sim.run();
  EXPECT_EQ(nemesis.dropped(), 0u);
  EXPECT_EQ(nemesis.held_at_partition(), 20u);
}

TEST(NemesisWindows, PartitionExpiresOnItsOwn) {
  sim::Simulator sim(1);
  Nemesis nemesis(sim, 1);
  nemesis.isolate({7}, 50);
  EXPECT_TRUE(nemesis.partition_active());
  sim.schedule(60, [] {});
  sim.run();
  EXPECT_FALSE(nemesis.partition_active());
}

}  // namespace
}  // namespace ratc::harness
