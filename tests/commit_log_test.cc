// Unit tests for the replica-side certification log (the paper's txn /
// payload / vote / dec / phase arrays with holes).
#include <gtest/gtest.h>

#include "commit/log.h"

namespace ratc::commit {
namespace {

using tcs::Decision;

TEST(ReplicaLog, EmptyLog) {
  ReplicaLog log;
  EXPECT_EQ(log.max_filled(), 0u);
  EXPECT_EQ(log.slot_of(1), kNoSlot);
  EXPECT_EQ(log.find(1), nullptr);
  EXPECT_EQ(log.size(), 0u);
}

TEST(ReplicaLog, AtGrowsAndFills) {
  ReplicaLog log;
  LogEntry& e = log.at(3);
  e.txn = 42;
  e.phase = Phase::kPrepared;
  EXPECT_EQ(log.size(), 3u);
  EXPECT_EQ(log.max_filled(), 3u);
  EXPECT_EQ(log.slot_of(42), 3u);
  // Slots 1 and 2 are holes.
  EXPECT_FALSE(log.find(1)->filled());
  EXPECT_FALSE(log.find(2)->filled());
}

TEST(ReplicaLog, MaxFilledSkipsTrailingHoles) {
  ReplicaLog log;
  log.at(1).phase = Phase::kPrepared;
  log.at(1).txn = 1;
  log.at(5);  // grows but stays a hole
  EXPECT_EQ(log.size(), 5u);
  EXPECT_EQ(log.max_filled(), 1u);
}

TEST(ReplicaLog, SlotOfIgnoresHoles) {
  ReplicaLog log;
  log.at(2).txn = 7;  // phase still kStart: not "filled"
  EXPECT_EQ(log.slot_of(7), kNoSlot);
  log.at(2).phase = Phase::kDecided;
  EXPECT_EQ(log.slot_of(7), 2u);
}

TEST(ReplicaLog, FindOutOfRange) {
  ReplicaLog log;
  log.at(2).phase = Phase::kPrepared;
  EXPECT_EQ(log.find(0), nullptr);   // slot 0 invalid
  EXPECT_EQ(log.find(3), nullptr);   // beyond the end
  EXPECT_NE(log.find(2), nullptr);
}

TEST(ReplicaLog, CopySemanticsForStateTransfer) {
  // NEW_STATE copies the whole log; the copy must be independent.
  ReplicaLog log;
  log.at(1).txn = 1;
  log.at(1).phase = Phase::kPrepared;
  log.at(1).vote = Decision::kCommit;
  ReplicaLog copy = log;
  copy.at(1).vote = Decision::kAbort;
  copy.at(2).txn = 2;
  copy.at(2).phase = Phase::kPrepared;
  EXPECT_EQ(log.find(1)->vote, Decision::kCommit);
  EXPECT_EQ(log.size(), 1u);
  EXPECT_EQ(copy.size(), 2u);
}

TEST(ReplicaLog, WireSizeGrowsWithPayloads) {
  ReplicaLog small, big;
  small.at(1).phase = Phase::kPrepared;
  big.at(1).phase = Phase::kPrepared;
  big.at(1).payload.reads = {{1, 0}, {2, 0}, {3, 0}};
  big.at(2).phase = Phase::kPrepared;
  EXPECT_GT(big.wire_size(), small.wire_size());
}

TEST(TxnMetaEquality, UsedByResendPaths) {
  TxnMeta a{1, {0, 2}, 77};
  TxnMeta b{1, {0, 2}, 77};
  TxnMeta c{1, {0, 1}, 77};
  EXPECT_EQ(a, b);
  EXPECT_FALSE(a == c);
}

}  // namespace
}  // namespace ratc::commit
