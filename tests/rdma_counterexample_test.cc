// Executable reproduction of the paper's Figure 4a counter-example
// (experiment E7): combining the RDMA data path with PER-SHARD
// reconfiguration externalizes two contradictory decisions for the same
// transaction; the corrected GLOBAL reconfiguration protocol (Fig. 4b /
// Fig. 8) prevents it under the identical schedule.
//
// Cast (paper -> this test):
//   shard s1 = shard 0 {p100 leader, p101 follower}
//   shard s2 = shard 1 {p200 leader = paper's p3, p201 follower = paper's p4}
//   third shard = shard 2 {p300, p301};  p301 is the coordinator "pc"
//   p250 = the fresh process p5 joining s2 after reconfiguration
//
// Schedule knobs: the RDMA write pc -> p4 is slow (60 ticks), and the
// configuration-change notification CS -> pc is slower still, so pc keeps
// believing in the old configuration — exactly the Fig. 4a race.
#include <gtest/gtest.h>

#include "rdma/cluster.h"

namespace ratc::rdma {
namespace {

using tcs::Decision;
using tcs::Payload;

Payload cross_shard_payload() {
  // Objects 0 (shard 0) and 1 (shard 1) with 3 shards.
  Payload p;
  p.reads = {{0, 0}, {1, 0}};
  p.writes = {{0, 7}, {1, 9}};
  p.commit_version = 1;
  return p;
}

Cluster::Options scenario_options(ReconfigMode mode) {
  Cluster::Options opt;
  opt.seed = 42;
  opt.num_shards = 3;
  opt.shard_size = 2;
  opt.spares_per_shard = 2;
  opt.mode = mode;
  opt.link_delay = [](ProcessId from, ProcessId to) -> Duration {
    if (from == 301 && to == 201) return 60;   // pc's ACCEPT write to p4 (step 6)
    if (from == 9000 && to == 301) return 200; // CS notification to pc delayed
    return 0;                                  // default (1 tick)
  };
  return opt;
}

TEST(Figure4a, UnsafePerShardReconfigurationViolatesSafety) {
  Cluster cluster(scenario_options(ReconfigMode::kPerShardUnsafe));
  Client& client = cluster.add_client();
  Replica& pc = cluster.replica(2, 1);  // the coordinator "pc"
  TxnId t = cluster.next_txn_id();

  // Step 1-2: prepare at both leaders; persist s0's vote at p101; the write
  // to p201 is in flight for 60 ticks.
  client.certify_remote(pc.id(), t, cross_shard_payload());
  cluster.sim().run_until(4);
  ASSERT_NE(cluster.replica(0, 0).log().slot_of(t), kNoSlot);
  ASSERT_NE(cluster.replica(1, 0).log().slot_of(t), kNoSlot);
  ASSERT_EQ(cluster.replica(1, 1).log().slot_of(t), kNoSlot);
  ASSERT_FALSE(client.decided(t));

  // p3 (leader of shard 1) is suspected of failure; p4 reconfigures the
  // shard, becoming its leader with fresh follower p5.
  cluster.crash(cluster.replica(1, 0).id());
  cluster.replica(1, 1).reconfigure_shard(1);
  ASSERT_TRUE(cluster.await_active_shard_epoch(1, 2));
  ASSERT_EQ(cluster.current_config(1).leader, cluster.replica(1, 1).id());

  // Step 3-5: shard 0's leader learns the new configuration and retries t;
  // the new leader of shard 1 does not know t => abort externalized.
  Replica& leader0 = cluster.replica(0, 0);
  ASSERT_TRUE(cluster.sim().run_until_pred(
      [&] { return leader0.leader_of(1) == cluster.replica(1, 1).id(); }));
  leader0.retry(leader0.log().slot_of(t));
  ASSERT_TRUE(cluster.sim().run_until_pred([&] { return client.decided(t); }));
  EXPECT_EQ(client.decision(t), Decision::kAbort);

  // Step 6-7: pc, who never heard about the reconfiguration, persists the
  // old commit vote at p4 via RDMA — p4 cannot reject it — and commits.
  cluster.sim().run();
  ASSERT_GE(client.observations().size(), 2u);
  bool saw_abort = false, saw_commit = false;
  for (const auto& [txn, d] : client.observations()) {
    if (txn != t) continue;
    saw_abort |= d == Decision::kAbort;
    saw_commit |= d == Decision::kCommit;
  }
  EXPECT_TRUE(saw_abort);
  EXPECT_TRUE(saw_commit) << "the Fig. 4a race should have committed via the "
                             "stale RDMA write";

  // The violation is caught by every layer of checking.
  EXPECT_EQ(cluster.history().conflicting_decisions(),
            std::vector<TxnId>{t});
  std::string violations = cluster.monitor().violations().summary();
  EXPECT_NE(violations.find("Invariant4b"), std::string::npos) << violations;
  EXPECT_NE(violations.find("Invariant13"), std::string::npos) << violations;
}

TEST(Figure4b, GlobalReconfigurationPreventsTheViolation) {
  Cluster cluster(scenario_options(ReconfigMode::kGlobalSafe));
  Client& client = cluster.add_client();
  Replica& pc = cluster.replica(2, 1);
  TxnId t = cluster.next_txn_id();

  client.certify_remote(pc.id(), t, cross_shard_payload());
  cluster.sim().run_until(4);
  ASSERT_NE(cluster.replica(0, 0).log().slot_of(t), kNoSlot);
  ASSERT_FALSE(client.decided(t));

  // Same failure, but the reconfiguration is global: every process is
  // probed (closing its connections) and told the new configuration before
  // it activates.
  cluster.crash(cluster.replica(1, 0).id());
  cluster.replica(1, 1).reconfigure();
  ASSERT_TRUE(cluster.await_active_epoch(2));

  // Shard 0's leader retries t in the new epoch.
  Replica& leader0 = cluster.replica_by_pid(cluster.leader_of(0));
  Slot k = leader0.log().slot_of(t);
  ASSERT_NE(k, kNoSlot);
  leader0.retry(k);
  ASSERT_TRUE(cluster.sim().run_until_pred([&] { return client.decided(t); }));

  // Run well past the point where pc's stale write would land (t=62+).
  cluster.sim().run_until(cluster.sim().now() + 300);
  cluster.sim().run();

  // Exactly one decision was ever externalized; the stale write was
  // rejected by the closed/reincarnated connection.
  std::size_t decisions_for_t = 0;
  for (const auto& [txn, d] : client.observations()) {
    (void)d;
    if (txn == t) ++decisions_for_t;
  }
  EXPECT_EQ(decisions_for_t, 1u);
  EXPECT_TRUE(cluster.history().conflicting_decisions().empty());
  EXPECT_EQ(cluster.verify(), "") << cluster.monitor().violations().summary();
  EXPECT_GT(cluster.fabric().writes_rejected(), 0u);  // the stale write died
}

}  // namespace
}  // namespace ratc::rdma
