#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "sim/network.h"
#include "sim/simulator.h"
#include "sim/trace.h"

namespace ratc::sim {
namespace {

struct Ping {
  static constexpr const char* kName = "PING";
  int seq = 0;
};
struct Pong {
  static constexpr const char* kName = "PONG";
  int seq = 0;
};

/// Records everything it receives; optionally replies to pings.
class Echo : public Process {
 public:
  Echo(Simulator& sim, ProcessId id, Network* net, bool reply)
      : Process(sim, id, "echo" + std::to_string(id)), net_(net), reply_(reply) {}

  void on_message(ProcessId from, const AnyMessage& msg) override {
    if (const auto* ping = msg.as<Ping>()) {
      received.push_back(ping->seq);
      receive_times.push_back(rt().now());
      if (reply_) net_->send_msg(id(), from, Pong{ping->seq});
    }
    if (const auto* pong = msg.as<Pong>()) {
      pongs.push_back(pong->seq);
    }
  }

  std::vector<int> received;
  std::vector<Time> receive_times;
  std::vector<int> pongs;

 private:
  Network* net_;
  bool reply_;
};

TEST(AnyMessage, TypedAccess) {
  AnyMessage m{Ping{7}};
  ASSERT_NE(m.as<Ping>(), nullptr);
  EXPECT_EQ(m.as<Ping>()->seq, 7);
  EXPECT_EQ(m.as<Pong>(), nullptr);
  EXPECT_TRUE(m.is<Ping>());
  EXPECT_STREQ(m.type_name(), "PING");
}

TEST(Simulator, UnitDelayDelivery) {
  Simulator sim(1);
  Network net(sim);
  Echo a(sim, 1, &net, false), b(sim, 2, &net, true);
  sim.add_process(&a);
  sim.add_process(&b);

  net.send_msg(a.id(), b.id(), Ping{1});
  sim.run();
  ASSERT_EQ(b.received.size(), 1u);
  EXPECT_EQ(b.receive_times[0], 1u);   // one message delay
  ASSERT_EQ(a.pongs.size(), 1u);       // round trip
  EXPECT_EQ(sim.now(), 2u);            // two message delays total
}

TEST(Simulator, FifoPerChannelUnderRandomDelays) {
  Simulator sim(3);
  auto opts = Network::exponential_delay_options(5.0);
  Network net(sim, opts);
  Echo a(sim, 1, &net, false), b(sim, 2, &net, false);
  sim.add_process(&a);
  sim.add_process(&b);
  for (int i = 0; i < 200; ++i) net.send_msg(a.id(), b.id(), Ping{i});
  sim.run();
  ASSERT_EQ(b.received.size(), 200u);
  for (int i = 0; i < 200; ++i) EXPECT_EQ(b.received[static_cast<size_t>(i)], i);
}

TEST(Simulator, CrashStopsDeliveryAndSends) {
  Simulator sim(5);
  Network net(sim);
  Echo a(sim, 1, &net, false), b(sim, 2, &net, true);
  sim.add_process(&a);
  sim.add_process(&b);

  net.send_msg(a.id(), b.id(), Ping{1});
  sim.crash(b.id());
  net.send_msg(a.id(), b.id(), Ping{2});
  sim.run();
  EXPECT_TRUE(b.received.empty());  // in-flight message dropped at delivery
  EXPECT_TRUE(a.pongs.empty());

  // Sends from a crashed process are discarded at the source.
  sim.crash(a.id());
  net.send_msg(a.id(), b.id(), Ping{3});
  EXPECT_EQ(sim.run(), 0u);
}

TEST(Simulator, TimersSkippedForCrashedOwner) {
  Simulator sim(7);
  int fired = 0;
  Network net(sim);
  Echo a(sim, 1, &net, false);
  sim.add_process(&a);
  sim.schedule_for(a.id(), 10, [&] { ++fired; });
  sim.schedule_for(a.id(), 20, [&] { ++fired; });
  sim.schedule(15, [&] { sim.crash(a.id()); });
  sim.run();
  EXPECT_EQ(fired, 1);  // only the pre-crash timer fired
}

TEST(Simulator, DeterministicTieBreak) {
  auto run_once = [](std::uint64_t seed) {
    Simulator sim(seed);
    Network net(sim);
    Echo a(sim, 1, &net, false), b(sim, 2, &net, false);
    sim.add_process(&a);
    sim.add_process(&b);
    // Two messages scheduled for the same tick must arrive in send order.
    net.send_msg(a.id(), b.id(), Ping{1});
    net.send_msg(a.id(), b.id(), Ping{2});
    sim.run();
    return b.received;
  };
  EXPECT_EQ(run_once(1), (std::vector<int>{1, 2}));
  EXPECT_EQ(run_once(99), (std::vector<int>{1, 2}));
}

TEST(Simulator, RunUntilPred) {
  Simulator sim(9);
  Network net(sim);
  Echo a(sim, 1, &net, false), b(sim, 2, &net, false);
  sim.add_process(&a);
  sim.add_process(&b);
  for (int i = 0; i < 10; ++i) net.send_msg(a.id(), b.id(), Ping{i});
  bool ok = sim.run_until_pred([&] { return b.received.size() >= 3; });
  EXPECT_TRUE(ok);
  EXPECT_GE(b.received.size(), 3u);
  EXPECT_LT(b.received.size(), 10u);
  sim.run();
  EXPECT_EQ(b.received.size(), 10u);
}

TEST(Simulator, RunUntilAdvancesClock) {
  Simulator sim(11);
  sim.run_until(500);
  EXPECT_EQ(sim.now(), 500u);
}

TEST(Network, TrafficStats) {
  Simulator sim(13);
  Network net(sim);
  Echo a(sim, 1, &net, false), b(sim, 2, &net, true);
  sim.add_process(&a);
  sim.add_process(&b);
  for (int i = 0; i < 5; ++i) net.send_msg(a.id(), b.id(), Ping{i});
  sim.run();
  EXPECT_EQ(net.traffic(a.id()).msgs_sent, 5u);
  EXPECT_EQ(net.traffic(b.id()).msgs_received, 5u);
  EXPECT_EQ(net.traffic(b.id()).msgs_sent, 5u);  // pongs
  EXPECT_EQ(net.traffic(a.id()).sent_by_type.at("PING"), 5u);
  EXPECT_EQ(net.traffic(b.id()).received_by_type.at("PING"), 5u);
  EXPECT_EQ(net.total_messages(), 10u);
  EXPECT_GT(net.total_bytes(), 0u);
}

TEST(Network, TracerSeesFlow) {
  Simulator sim(15);
  Network net(sim);
  Tracer tracer;
  net.add_observer(&tracer);
  Echo a(sim, 1, &net, false), b(sim, 2, &net, true);
  sim.add_process(&a);
  sim.add_process(&b);
  net.send_msg(a.id(), b.id(), Ping{1});
  sim.run();
  auto types = tracer.delivered_types();
  ASSERT_EQ(types.size(), 2u);
  EXPECT_EQ(types[0], "PING");
  EXPECT_EQ(types[1], "PONG");
  EXPECT_TRUE(tracer.delivered("PONG"));
  EXPECT_FALSE(tracer.delivered("NOPE"));
  EXPECT_NE(tracer.render().find("PING"), std::string::npos);
}

TEST(Network, DropObservedForCrashedReceiver) {
  Simulator sim(17);
  Network net(sim);
  Tracer tracer;
  net.add_observer(&tracer);
  Echo a(sim, 1, &net, false), b(sim, 2, &net, false);
  sim.add_process(&a);
  sim.add_process(&b);
  net.send_msg(a.id(), b.id(), Ping{1});
  sim.crash(b.id());
  sim.run();
  bool saw_drop = false;
  for (const auto& e : tracer.entries()) {
    if (e.kind == TraceEntry::Kind::kDrop) saw_drop = true;
  }
  EXPECT_TRUE(saw_drop);
}

}  // namespace
}  // namespace ratc::sim
