#include "harness/nemesis.h"

#include <algorithm>

namespace ratc::harness {

Nemesis::Nemesis(sim::Simulator& sim, std::uint64_t seed)
    : sim_(sim), rng_(seed ^ 0x4e454d4553495355ULL) {}

void Nemesis::isolate(const std::vector<ProcessId>& minority, Duration len,
                      bool lossy) {
  split({minority}, len, lossy);
}

void Nemesis::split(const std::vector<std::vector<ProcessId>>& groups,
                    Duration len, bool lossy) {
  groups_.clear();
  int g = 1;  // group 0 is the implicit "everyone else" side
  for (const auto& group : groups) {
    for (ProcessId p : group) groups_[p] = g;
    ++g;
  }
  partition_until_ = sim_.now() + len;
  partition_lossy_ = lossy;
  partition_mode_ = PartitionMode::kSymmetric;
}

void Nemesis::isolate_one_way(const std::vector<ProcessId>& victims, Duration len,
                              bool inbound_blocked, bool lossy) {
  split({victims}, len, lossy);
  partition_mode_ = inbound_blocked ? PartitionMode::kInboundBlocked
                                    : PartitionMode::kOutboundBlocked;
}

void Nemesis::heal() {
  partition_until_ = 0;
  partition_mode_ = PartitionMode::kSymmetric;
  groups_.clear();
}

bool Nemesis::partition_active() const {
  return partition_until_ > sim_.now();
}

void Nemesis::drop_messages(double probability, Duration len) {
  drop_probability_ = probability;
  drop_until_ = sim_.now() + len;
}

void Nemesis::delay_messages(Duration delay_hi, Duration len) {
  delay_hi_ = delay_hi;
  delay_until_ = sim_.now() + len;
}

void Nemesis::skew_clocks(const std::vector<ProcessId>& victims, Duration skew,
                          Duration len) {
  skewed_procs_.clear();
  skewed_procs_.insert(victims.begin(), victims.end());
  skew_ = skew;
  skew_until_ = sim_.now() + len;
}

void Nemesis::clear() {
  heal();
  drop_until_ = 0;
  delay_until_ = 0;
  skew_until_ = 0;
  skewed_procs_.clear();
}

int Nemesis::group_of(ProcessId p) const {
  auto it = groups_.find(p);
  return it == groups_.end() ? 0 : it->second;
}

bool Nemesis::partition_affects(ProcessId from, ProcessId to) const {
  int gf = group_of(from), gt = group_of(to);
  if (gf == gt) return false;
  switch (partition_mode_) {
    case PartitionMode::kSymmetric: return true;
    case PartitionMode::kInboundBlocked: return gt != 0;   // into a victim group
    case PartitionMode::kOutboundBlocked: return gf != 0;  // out of a victim group
  }
  return false;
}

sim::MessageFate Nemesis::on_message(Time now, ProcessId from, ProcessId to,
                                     const sim::AnyMessage& msg) {
  (void)msg;
  sim::MessageFate fate;
  // A process always reaches itself: partitions cannot sever a process from
  // its own memory, and a local write is never "in flight" long enough to
  // drop or delay.  Faulting self-messages would fabricate executions no
  // physical system can produce (e.g. a one-sided self-write landing after
  // a reconfiguration's flush).
  if (from == to) return fate;
  if (now < partition_until_ && partition_affects(from, to)) {
    if (partition_lossy_) {
      ++dropped_;
      fate.drop = true;
      return fate;
    }
    // Hold the message back so it lands shortly after the partition heals.
    // The transports' per-channel FIFO clamp keeps ordering intact.  Held
    // messages are exempt from the probabilistic windows below: the
    // partition already decided their fate, and dropping one would silently
    // break the eventual-delivery guarantee of non-lossy partitions.
    ++held_;
    fate.extra_delay = (partition_until_ - now) + rng_.range(1, 8);
    return fate;
  }
  if (now < drop_until_ && rng_.chance(drop_probability_)) {
    ++dropped_;
    fate.drop = true;
    return fate;
  }
  if (now < delay_until_ && delay_hi_ > 0) {
    ++delayed_;
    fate.extra_delay += rng_.range(1, delay_hi_);
  }
  if (now < skew_until_ && skew_ > 0 && skewed_procs_.count(from) > 0) {
    ++skewed_;
    fate.extra_delay += skew_;
  }
  return fate;
}

}  // namespace ratc::harness
