#include "harness/sweep.h"

#include <algorithm>
#include <cstdlib>
#include <map>
#include <memory>
#include <set>

#include "harness/nemesis.h"
#include "paxos/replica.h"
#include "sim/trace.h"

namespace ratc::harness {

std::uint64_t fnv1a(const std::string& bytes, std::uint64_t h) {
  for (unsigned char c : bytes) {
    h ^= c;
    h *= 0x100000001b3ULL;
  }
  return h;
}

std::string RunResult::summary() const {
  std::string out = "seed=" + std::to_string(seed) +
                    " submitted=" + std::to_string(submitted) +
                    " decided=" + std::to_string(decided) +
                    " committed=" + std::to_string(committed) +
                    " dropped=" + std::to_string(dropped) +
                    " held=" + std::to_string(held);
  if (ctrl_attempts > 0) out += " ctrl-attempts=" + std::to_string(ctrl_attempts);
  if (probes_sent > 0) {
    out += " probes=" + std::to_string(probes_sent) +
           " cas-losses=" + std::to_string(cas_losses) +
           " spares=" + std::to_string(spares_reserved) + "/" +
           std::to_string(spares_released);
  }
  if (reads_attempted > 0) {
    out += " reads=" + std::to_string(reads_served) + "/" +
           std::to_string(reads_attempted);
  }
  if (term_resolved > 0 || term_blocked > 0 || term_adopted > 0) {
    out += " term-resolved=" + std::to_string(term_resolved) +
           " term-blocked=" + std::to_string(term_blocked) +
           " term-adopted=" + std::to_string(term_adopted);
  }
  if (linearization_checked) out += " lin-checked";
  if (!problems.empty()) out += "\n" + problems;
  return out;
}

std::string SweepResult::report() const {
  std::string out = std::to_string(failures.size()) + " of " +
                    std::to_string(runs) + " runs failed\n";
  for (const auto& f : failures) out += f.summary() + "\n";
  out += "reproduce: re-run the failing seed with the same workload and "
         "schedule options (see tests/README.md)";
  return out;
}

namespace {

using tcs::Decision;
using tcs::Payload;

// --- the paxos substrate as a stack harness --------------------------------------
//
// Adapts the bare Multi-Paxos group to the StackHarness surface (see
// src/store/stack_harness.h) so the same FaultDriver below covers it:
// "transactions" are commands carrying their TxnId, "decided" is the length
// of the longest surviving applied log, a leadership change stands in for
// reconfiguration, and verify() checks prefix agreement and exactly-once
// application across survivors.

struct PaxosCmd {
  static constexpr const char* kName = "HARNESS_CMD";
  int value = 0;
};

class PaxosHarness {
 public:
  using Workload = PaxosWorkloadOptions;
  static constexpr const char* kName = "paxos";
  static constexpr std::uint64_t kWorkloadSalt = 0xc0ffeeULL;
  static constexpr Duration kPaceHi = 13;
  static constexpr store::CheckerSet kCheckers{false, false, false};

  PaxosHarness(std::uint64_t seed, const Workload& w)
      : w_(w),
        sim_(seed),
        net_(sim_, w.exponential_delays
                       ? sim::Network::exponential_delay_options(4.0)
                       : sim::Network::unit_delay_options()) {
    net_.add_observer(&tracer_);
    std::vector<ProcessId> ids;
    for (std::size_t i = 0; i < w.replicas; ++i) {
      ids.push_back(static_cast<ProcessId>(100 + i));
    }
    applied_.resize(w.replicas);
    for (std::size_t i = 0; i < w.replicas; ++i) {
      paxos::PaxosReplica::Options opt;
      opt.group = ids;
      opt.initial_leader = ids[0];
      auto& log = applied_[i];
      replicas_.push_back(std::make_unique<paxos::PaxosReplica>(
          sim_, net_, ids[i], "hx" + std::to_string(i), opt,
          [&log](Slot, const sim::AnyMessage& cmd) {
            log.push_back(cmd.as<PaxosCmd>()->value);
          }));
      sim_.add_process(replicas_.back().get());
    }
  }

  sim::Simulator& sim() { return sim_; }
  void install_fault_injector(sim::FaultInjector* fi) { net_.set_fault_injector(fi); }
  void set_on_decision(std::function<void(TxnId, Decision)>) {
    // Commands have no per-txn decisions; progress is read off the logs.
  }
  TxnId next_txn_id() { return next_txn_++; }

  bool submit(Rng& rng, TxnId txn, const Payload&) {
    replicas_[pick_alive(rng)]->submit(
        sim::AnyMessage(PaxosCmd{static_cast<int>(txn)}));
    return true;
  }

  std::size_t decided_count() const {
    const std::vector<int>* longest = longest_alive_log();
    return longest == nullptr ? 0 : longest->size();
  }
  std::size_t committed_count() const { return decided_count(); }

  std::uint32_t num_shards() const { return 1; }
  std::vector<std::vector<ProcessId>> all_units() const {
    std::vector<std::vector<ProcessId>> units;
    for (const auto& r : replicas_) units.push_back({r->id()});
    return units;
  }
  std::vector<std::vector<ProcessId>> fault_units(ShardId) const { return all_units(); }

  bool crash_and_reconfigure(Rng& rng, ShardId) {
    if (alive_count() <= majority()) return false;
    std::vector<std::size_t> alive = alive_indices();
    std::size_t victim = alive[rng.below(alive.size())];
    sim_.crash(replicas_[victim]->id());
    replicas_[pick_alive(rng)]->start_election();
    sim_.run_until(sim_.now() + 200);
    return true;
  }

  bool reconfigure_healthy(Rng& rng, ShardId) {
    // Leadership change is the Paxos analogue of reconfiguration.
    replicas_[pick_alive(rng)]->start_election();
    sim_.run_until(sim_.now() + 100);
    return true;
  }

  void drain(Duration, Rng& rng) {
    // Commands buffered at a dead leader need a new one: election nudges.
    for (int rounds = 0; rounds < 5; ++rounds) {
      sim_.run();
      replicas_[pick_alive(rng)]->start_election();
      sim_.run();
    }
  }

  std::string verify() {
    const std::vector<int>* longest = longest_alive_log();
    if (longest == nullptr) return "no replica survived";
    std::string problems;
    // Agreement: every alive replica's applied log is a prefix of the
    // longest one (commands are applied in slot order, so under message
    // loss a replica may lag but never diverge).
    for (std::size_t i = 0; i < replicas_.size(); ++i) {
      if (sim_.crashed(replicas_[i]->id())) continue;
      const auto& log = applied_[i];
      if (!std::equal(log.begin(), log.end(), longest->begin())) {
        problems += "agreement: replica " + std::to_string(i) +
                    " diverged from the longest applied log\n";
      }
    }
    std::set<int> unique(longest->begin(), longest->end());
    if (unique.size() != longest->size()) {
      problems += "duplicate command application\n";
    }
    return problems;
  }

  std::string check_linearization() { return ""; }  // not applicable

  std::string trace() {
    std::string out = tracer_.render();
    for (std::size_t i = 0; i < applied_.size(); ++i) {
      out += "log" + std::to_string(i) + ":";
      for (int v : applied_[i]) out += std::to_string(v) + ",";
      out += ";";
    }
    return out;
  }

 private:
  std::size_t alive_count() const {
    std::size_t n = 0;
    for (const auto& r : replicas_) n += sim_.crashed(r->id()) ? 0 : 1;
    return n;
  }
  std::size_t majority() const { return replicas_.size() / 2 + 1; }
  std::vector<std::size_t> alive_indices() const {
    std::vector<std::size_t> alive;
    for (std::size_t i = 0; i < replicas_.size(); ++i) {
      if (!sim_.crashed(replicas_[i]->id())) alive.push_back(i);
    }
    return alive;
  }
  std::size_t pick_alive(Rng& rng) {
    for (int attempts = 0; attempts < 64; ++attempts) {
      std::size_t i = rng.below(replicas_.size());
      if (!sim_.crashed(replicas_[i]->id())) return i;
    }
    std::vector<std::size_t> alive = alive_indices();
    return alive.empty() ? 0 : alive.front();
  }
  const std::vector<int>* longest_alive_log() const {
    const std::vector<int>* longest = nullptr;
    for (std::size_t i = 0; i < replicas_.size(); ++i) {
      if (sim_.crashed(replicas_[i]->id())) continue;
      if (longest == nullptr || applied_[i].size() > longest->size()) {
        longest = &applied_[i];
      }
    }
    return longest;
  }

  Workload w_;
  sim::Simulator sim_;
  sim::Network net_;
  sim::Tracer tracer_;
  std::vector<std::unique_ptr<paxos::PaxosReplica>> replicas_;
  std::vector<std::vector<int>> applied_;
  TxnId next_txn_ = 1;
};

// --- the one driver ----------------------------------------------------------------
//
// Parameterized by a StackHarness (src/store/stack_harness.h; PaxosHarness
// above implements the same surface).  The driver owns only what is common
// to every stack: the workload loop, the schedule interpretation against
// the harness's fault hooks and machine topology, the drain, and the
// end-of-run checks the harness enumerates.

template <typename Harness>
class FaultDriver {
 public:
  using WorkloadT = typename Harness::Workload;

  FaultDriver(std::uint64_t seed, const WorkloadT& w, const Schedule& schedule)
      : w_(w),
        schedule_(schedule),
        harness_(seed, w),
        nemesis_(harness_.sim(), seed),
        workload_rng_(seed ^ Harness::kWorkloadSalt),
        fault_rng_(seed ^ 0xfa011755ULL),
        read_rng_(seed ^ 0x5ead5a17ULL),
        gen_(workload_rng_, w.object_universe) {
    result_.seed = seed;
    harness_.install_fault_injector(&nemesis_);
    harness_.set_on_decision([this](TxnId t, Decision d) {
      if (d != Decision::kCommit) return;
      auto it = payloads_.find(t);
      if (it != payloads_.end()) gen_.observe_commit(it->second);
    });
  }

  RunResult run() {
    std::size_t next_fault = 0;
    for (int i = 0; i < w_.total_txns; ++i) {
      double frac = static_cast<double>(i) / w_.total_txns;
      while (next_fault < schedule_.events.size() &&
             schedule_.events[next_fault].at <= frac) {
        apply_fault(schedule_.events[next_fault++]);
      }
      if (batch_size() == 1) {
        submit_one();  // scalar path: bit-identical to the pre-batching driver
      } else {
        queue_one();
        if (pending_.size() >= batch_size()) flush_batch();
      }
      harness_.sim().run_until(harness_.sim().now() +
                               workload_rng_.range(0, Harness::kPaceHi));
      maybe_issue_reads();
    }
    flush_batch();  // partial tail (no-op when empty or unbatched)
    while (next_fault < schedule_.events.size()) {
      apply_fault(schedule_.events[next_fault++]);
    }
    // Let remaining fault windows expire, then drain with a clean network.
    harness_.sim().run_until(harness_.sim().now() + w_.drain / 2);
    nemesis_.clear();
    harness_.drain(w_.drain, workload_rng_);
    return finish();
  }

 private:
  /// The workload's batch size when its options carry one (StackWorkload);
  /// harnesses without the knob (PaxosHarness) stay scalar.
  std::size_t batch_size() const {
    if constexpr (requires { w_.batch_size; }) {
      return w_.batch_size > 0 ? w_.batch_size : 1;
    } else {
      return 1;
    }
  }

  void submit_one() {
    Payload p = gen_.next();
    TxnId t = harness_.next_txn_id();
    payloads_[t] = p;
    if (!harness_.submit(workload_rng_, t, p)) {
      payloads_.erase(t);  // no live coordinator: never submitted
    }
  }

  void queue_one() {
    Payload p = gen_.next();
    TxnId t = harness_.next_txn_id();
    payloads_[t] = p;
    pending_.emplace_back(t, std::move(p));
  }

  void flush_batch() {
    if (pending_.empty()) return;
    if constexpr (requires { harness_.submit_batch(workload_rng_, pending_); }) {
      if (!harness_.submit_batch(workload_rng_, pending_)) {
        for (const auto& [t, p] : pending_) payloads_.erase(t);
      }
    } else {
      for (const auto& [t, p] : pending_) {
        if (!harness_.submit(workload_rng_, t, p)) payloads_.erase(t);
      }
    }
    pending_.clear();
  }

  /// Read mix: after each update, issue a geometric number of read-only
  /// snapshot transactions with success probability read_fraction (mean
  /// rf/(1-rf) reads per update — 19 at the 95/5 mix, 0 at rf=0), each over
  /// 1-3 distinct objects.  All randomness comes from read_rng_, a stream
  /// the update path never touches, and snapshot reads are synchronous with
  /// zero messages — so the update trace (and the run fingerprint) at any
  /// read_fraction is bit-identical to the same seed at read_fraction 0.
  /// Stacks without the read surface (PaxosHarness) compile this out.
  void maybe_issue_reads() {
    if constexpr (requires {
                    w_.read_fraction;
                    harness_.snapshot_read(read_rng_, std::vector<ObjectId>{});
                  }) {
      if (w_.read_fraction <= 0) return;
      int issued = 0;
      while (issued < 64 && read_rng_.chance(w_.read_fraction)) {  // cap: rf ~ 1
        std::vector<ObjectId> objects;
        std::uint64_t nobjs = 1 + read_rng_.below(3);
        for (std::uint64_t j = 0; j < nobjs; ++j) {
          ObjectId o = static_cast<ObjectId>(read_rng_.below(w_.object_universe));
          if (std::find(objects.begin(), objects.end(), o) == objects.end()) {
            objects.push_back(o);
          }
        }
        harness_.snapshot_read(read_rng_, objects);
        ++issued;
      }
    }
  }

  void apply_fault(const FaultEvent& e) {
    ShardId s = static_cast<ShardId>(fault_rng_.below(harness_.num_shards()));
    switch (e.kind) {
      case FaultKind::kCrash:
        harness_.crash_and_reconfigure(fault_rng_, s);
        break;
      case FaultKind::kReconfigure:
        harness_.reconfigure_healthy(fault_rng_, s);
        break;
      case FaultKind::kPartition: {
        auto units = harness_.fault_units(s);
        if (units.empty()) return;
        nemesis_.isolate(units[fault_rng_.below(units.size())], e.len, e.lossy);
        break;
      }
      case FaultKind::kMajoritySplit: {
        // Split every machine in the cluster into two sides; the larger
        // side retains a majority of each shard only by luck, so both
        // replication and reconfiguration must cope (or stall safely).
        auto units = harness_.all_units();
        if (units.size() < 2) return;
        fault_rng_.shuffle(units);
        std::vector<ProcessId> side;
        for (std::size_t k = 0; k < units.size() / 2; ++k) {
          side.insert(side.end(), units[k].begin(), units[k].end());
        }
        nemesis_.split({side}, e.len, e.lossy);
        break;
      }
      case FaultKind::kOneWayPartition: {
        auto units = harness_.fault_units(s);
        if (units.empty()) return;
        nemesis_.isolate_one_way(units[fault_rng_.below(units.size())], e.len,
                                 e.inbound, e.lossy);
        break;
      }
      case FaultKind::kClockSkew: {
        auto units = harness_.fault_units(s);
        if (units.empty()) return;
        nemesis_.skew_clocks(units[fault_rng_.below(units.size())], e.delay_hi,
                             e.len);
        break;
      }
      case FaultKind::kDropWindow:
        nemesis_.drop_messages(e.intensity, e.len);
        break;
      case FaultKind::kDelayWindow:
        nemesis_.delay_messages(e.delay_hi, e.len);
        break;
    }
  }

  RunResult finish() {
    result_.submitted = payloads_.size();
    result_.dropped = nemesis_.dropped();
    result_.held = nemesis_.held_at_partition();
    apply_end_of_run_checks(result_, harness_, w_);

    if (w_.capture_trace) {
      result_.fingerprint = fnv1a(harness_.trace());
    }
    result_.fingerprint =
        fnv1a(std::to_string(result_.submitted) + "," +
                  std::to_string(result_.decided) + "," +
                  std::to_string(result_.committed),
              result_.fingerprint ? result_.fingerprint : 0xcbf29ce484222325ULL);
    return result_;
  }

  WorkloadT w_;
  Schedule schedule_;
  Harness harness_;
  Nemesis nemesis_;
  Rng workload_rng_;
  Rng fault_rng_;
  /// Dedicated rng for the snapshot-read mix (see maybe_issue_reads): keeps
  /// the update trace independent of read_fraction.
  Rng read_rng_;
  store::ContendedPayloadGen gen_;
  std::map<TxnId, Payload> payloads_;
  /// Transactions queued for the next batched submission (batch_size > 1).
  std::vector<std::pair<TxnId, Payload>> pending_;
  RunResult result_;
};

}  // namespace

RunResult run_commit_workload(std::uint64_t seed, const CommitWorkloadOptions& w,
                              const Schedule& schedule) {
  return FaultDriver<store::CommitHarness>(seed, w, schedule).run();
}

RunResult run_rdma_workload(std::uint64_t seed, const RdmaWorkloadOptions& w,
                            const Schedule& schedule) {
  return FaultDriver<store::RdmaHarness>(seed, w, schedule).run();
}

RunResult run_baseline_workload(std::uint64_t seed, const BaselineWorkloadOptions& w,
                                const Schedule& schedule) {
  return FaultDriver<store::BaselineHarness>(seed, w, schedule).run();
}

RunResult run_baseline_coop_workload(std::uint64_t seed,
                                     const BaselineCoopWorkloadOptions& w,
                                     const Schedule& schedule) {
  return FaultDriver<store::BaselineCoopHarness>(seed, w, schedule).run();
}

RunResult run_paxos_commit_workload(std::uint64_t seed,
                                    const PaxosCommitWorkloadOptions& w,
                                    const Schedule& schedule) {
  return FaultDriver<store::PaxosCommitHarness>(seed, w, schedule).run();
}

RunResult run_paxos_workload(std::uint64_t seed, const PaxosWorkloadOptions& w,
                             const Schedule& schedule) {
  return FaultDriver<PaxosHarness>(seed, w, schedule).run();
}

int sweep_seed_count(int fallback) {
  const char* env = std::getenv("RATC_SWEEP_SEEDS");
  if (env == nullptr) return fallback;
  int n = std::atoi(env);
  return n > 0 ? n : fallback;
}

}  // namespace ratc::harness
