#include "harness/sweep.h"

#include <algorithm>
#include <map>
#include <memory>
#include <set>

#include "checker/linearization.h"
#include "commit/cluster.h"
#include "common/random.h"
#include "harness/nemesis.h"
#include "paxos/replica.h"
#include "rdma/cluster.h"
#include "sim/trace.h"

namespace ratc::harness {

std::uint64_t fnv1a(const std::string& bytes, std::uint64_t h) {
  for (unsigned char c : bytes) {
    h ^= c;
    h *= 0x100000001b3ULL;
  }
  return h;
}

std::string RunResult::summary() const {
  std::string out = "seed=" + std::to_string(seed) +
                    " submitted=" + std::to_string(submitted) +
                    " decided=" + std::to_string(decided) +
                    " committed=" + std::to_string(committed) +
                    " dropped=" + std::to_string(dropped) +
                    " held=" + std::to_string(held);
  if (linearization_checked) out += " lin-checked";
  if (!problems.empty()) out += "\n" + problems;
  return out;
}

std::string SweepResult::report() const {
  std::string out = std::to_string(failures.size()) + " of " +
                    std::to_string(runs) + " runs failed\n";
  for (const auto& f : failures) out += f.summary() + "\n";
  out += "reproduce: re-run the failing seed with the same workload and "
         "schedule options (see tests/README.md)";
  return out;
}

namespace {

using tcs::Decision;
using tcs::Payload;

/// Shared payload generator: contended read-write transactions in the style
/// of commit_random_test (the versions map feeds realistic read versions).
class PayloadGen {
 public:
  PayloadGen(Rng& rng, ObjectId universe) : rng_(rng), universe_(universe) {}

  Payload next() {
    Payload p;
    std::uint64_t nobjs = 1 + rng_.below(3);
    Version maxv = 0;
    for (std::uint64_t j = 0; j < nobjs; ++j) {
      ObjectId obj = rng_.below(universe_);
      if (p.reads_object(obj)) continue;
      Version v = versions_.count(obj) ? versions_[obj] : 0;
      p.reads.push_back({obj, v});
      maxv = std::max(maxv, v);
    }
    for (const auto& r : p.reads) {
      if (rng_.chance(0.6)) {
        p.writes.push_back({r.object, static_cast<Value>(rng_.below(1000))});
      }
    }
    p.commit_version = maxv + 1;
    return p;
  }

  void observe_commit(const Payload& p) {
    for (const auto& w : p.writes) {
      versions_[w.object] = std::max(versions_[w.object], p.commit_version);
    }
  }

 private:
  Rng& rng_;
  ObjectId universe_;
  std::map<ObjectId, Version> versions_;
};

void append_problem(std::string& problems, std::uint64_t seed,
                    const std::string& what) {
  if (!problems.empty()) problems += "\n";
  problems += "seed " + std::to_string(seed) + ": " + what;
}

/// Alive members of shard s's current configuration.
template <typename ClusterT>
std::vector<ProcessId> alive_members(ClusterT& cluster, ShardId s) {
  std::vector<ProcessId> alive;
  for (ProcessId m : cluster.current_config(s).members) {
    if (!cluster.sim().crashed(m)) alive.push_back(m);
  }
  return alive;
}

// --- the shared transaction-stack driver ----------------------------------------
//
// The commit and RDMA stacks expose the same cluster surface (current_config,
// replica_by_pid, add_client, verify, ...); they differ only in construction
// and in how crash recovery / reconfiguration is triggered.  A Stack traits
// struct captures exactly those differences:
//
//   using Cluster / Replica / Workload;
//   static constexpr std::uint64_t kWorkloadSalt;  // match the seed suites
//   static constexpr Duration kPaceHi;             // inter-txn think time
//   static Cluster::Options cluster_options(seed, w);
//   static void install_extra(cluster, nemesis, w); // e.g. the RDMA fabric
//   static void crash_and_reconfigure(cluster, rng, alive, shard, config);
//   static void reconfigure_healthy(cluster, rng, alive, shard, config);

template <typename Stack>
class FaultDriver {
 public:
  using ClusterT = typename Stack::Cluster;
  using ReplicaT = typename Stack::Replica;
  using WorkloadT = typename Stack::Workload;

  FaultDriver(std::uint64_t seed, const WorkloadT& w, const Schedule& schedule)
      : w_(w),
        schedule_(schedule),
        cluster_(Stack::cluster_options(seed, w)),
        nemesis_(cluster_.sim(), seed),
        workload_rng_(seed ^ Stack::kWorkloadSalt),
        fault_rng_(seed ^ 0xfa011755ULL),
        gen_(workload_rng_, w.object_universe) {
    result_.seed = seed;
    cluster_.net().set_fault_injector(&nemesis_);
    Stack::install_extra(cluster_, nemesis_, w);
    client_ = &cluster_.add_client();
    client_->on_decision = [this](TxnId t, Decision d) {
      if (d != Decision::kCommit) return;
      auto it = payloads_.find(t);
      if (it != payloads_.end()) gen_.observe_commit(it->second);
    };
  }

  RunResult run() {
    std::size_t next_fault = 0;
    for (int i = 0; i < w_.total_txns; ++i) {
      double frac = static_cast<double>(i) / w_.total_txns;
      while (next_fault < schedule_.events.size() &&
             schedule_.events[next_fault].at <= frac) {
        apply_fault(schedule_.events[next_fault++]);
      }
      submit_one();
      cluster_.sim().run_until(cluster_.sim().now() +
                               workload_rng_.range(0, Stack::kPaceHi));
    }
    while (next_fault < schedule_.events.size()) {
      apply_fault(schedule_.events[next_fault++]);
    }
    // Let remaining fault windows expire, then drain with a clean network.
    cluster_.sim().run_until(cluster_.sim().now() + w_.drain / 2);
    nemesis_.clear();
    cluster_.sim().run_until(cluster_.sim().now() + w_.drain);
    return finish();
  }

 private:
  void submit_one() {
    ReplicaT* coord = pick_alive_coordinator();
    if (coord == nullptr) return;
    Payload p = gen_.next();
    TxnId t = cluster_.next_txn_id();
    payloads_[t] = p;
    client_->certify_colocated(*coord, t, p);
  }

  ReplicaT* pick_alive_coordinator() {
    for (int attempts = 0; attempts < 20; ++attempts) {
      ShardId s = static_cast<ShardId>(workload_rng_.below(w_.num_shards));
      configsvc::ShardConfig cfg = cluster_.current_config(s);
      if (cfg.members.empty()) continue;
      ProcessId pid = cfg.members[workload_rng_.below(cfg.members.size())];
      if (cluster_.sim().crashed(pid)) continue;
      ReplicaT& r = cluster_.replica_by_pid(pid);
      if (r.epoch() != cfg.epoch) continue;
      return &r;
    }
    return nullptr;
  }

  void apply_fault(const FaultEvent& e) {
    ShardId s = static_cast<ShardId>(fault_rng_.below(w_.num_shards));
    configsvc::ShardConfig cfg = cluster_.current_config(s);
    std::vector<ProcessId> alive = alive_members(cluster_, s);
    switch (e.kind) {
      case FaultKind::kCrash:
        // Keep Assumption 1: only crash when the whole configuration is
        // still up and a survivor remains to drive reconfiguration.
        if (alive.size() < cfg.members.size() || alive.size() <= 1) return;
        Stack::crash_and_reconfigure(cluster_, fault_rng_, alive, s, cfg);
        break;
      case FaultKind::kReconfigure:
        // Mid-transaction reconfiguration of a healthy shard, no crash.
        if (alive.empty()) return;
        Stack::reconfigure_healthy(cluster_, fault_rng_, alive, s, cfg);
        break;
      case FaultKind::kPartition:
        if (cfg.members.empty()) return;
        nemesis_.isolate({cfg.members[fault_rng_.below(cfg.members.size())]},
                         e.len, e.lossy);
        break;
      case FaultKind::kDropWindow:
        nemesis_.drop_messages(e.intensity, e.len);
        break;
      case FaultKind::kDelayWindow:
        nemesis_.delay_messages(e.delay_hi, e.len);
        break;
    }
  }

  RunResult finish() {
    result_.submitted = payloads_.size();
    result_.decided = client_->decided_count();
    result_.committed = cluster_.history().committed_txns().size();
    result_.dropped = nemesis_.dropped();
    result_.held = nemesis_.held_at_partition();

    std::string verdict = cluster_.verify();
    if (!verdict.empty()) append_problem(result_.problems, result_.seed, verdict);
    if (result_.committed <= w_.linearize_up_to) {
      auto lin =
          checker::check_linearization(cluster_.history(), cluster_.certifier());
      result_.linearization_checked = true;
      if (!lin.ok) {
        append_problem(result_.problems, result_.seed,
                       "linearization: " + lin.error);
      }
    }
    if (static_cast<double>(result_.decided) <
        w_.min_decided_fraction * static_cast<double>(result_.submitted)) {
      append_problem(result_.problems, result_.seed,
                     "liveness: only " + std::to_string(result_.decided) +
                         " of " + std::to_string(result_.submitted) +
                         " transactions decided (required fraction " +
                         std::to_string(w_.min_decided_fraction) + ")");
    }

    if (w_.capture_trace) {
      result_.fingerprint = fnv1a(cluster_.tracer().render());
    }
    result_.fingerprint =
        fnv1a(std::to_string(result_.submitted) + "," +
                  std::to_string(result_.decided) + "," +
                  std::to_string(result_.committed),
              result_.fingerprint ? result_.fingerprint : 0xcbf29ce484222325ULL);
    return result_;
  }

  WorkloadT w_;
  Schedule schedule_;
  ClusterT cluster_;
  Nemesis nemesis_;
  Rng workload_rng_;
  Rng fault_rng_;
  PayloadGen gen_;
  typename Stack::Client* client_ = nullptr;
  std::map<TxnId, Payload> payloads_;
  RunResult result_;
};

struct CommitStack {
  using Cluster = commit::Cluster;
  using Replica = commit::Replica;
  using Client = commit::Client;
  using Workload = CommitWorkloadOptions;
  static constexpr std::uint64_t kWorkloadSalt = 0xabcdefULL;
  static constexpr Duration kPaceHi = 6;  // matches commit_random_test pacing

  static commit::Cluster::Options cluster_options(std::uint64_t seed,
                                                  const Workload& w) {
    return {.seed = seed,
            .num_shards = w.num_shards,
            .shard_size = w.shard_size,
            .spares_per_shard = w.spares_per_shard,
            .isolation = w.isolation,
            .retry_timeout = w.retry_timeout,
            .exponential_delays = w.exponential_delays,
            .enable_tracer = w.capture_trace};
  }

  static void install_extra(commit::Cluster&, Nemesis&, const Workload&) {}

  static void crash_and_reconfigure(commit::Cluster& cluster, Rng& rng,
                                    const std::vector<ProcessId>& alive,
                                    ShardId s,
                                    const configsvc::ShardConfig& cfg) {
    ProcessId victim = alive[rng.below(alive.size())];
    cluster.crash(victim);
    ProcessId survivor = kNoProcess;
    for (ProcessId m : alive) {
      if (m != victim) survivor = m;
    }
    cluster.reconfigure(s, survivor);
    cluster.await_active_epoch(s, cfg.epoch + 1, 200'000);
  }

  static void reconfigure_healthy(commit::Cluster& cluster, Rng& rng,
                                  const std::vector<ProcessId>& alive,
                                  ShardId s,
                                  const configsvc::ShardConfig& cfg) {
    // Any current member may trigger it (Fig. 1 line 33).
    cluster.reconfigure(s, alive[rng.below(alive.size())]);
    cluster.await_active_epoch(s, cfg.epoch + 1, 200'000);
  }
};

struct RdmaStack {
  using Cluster = rdma::Cluster;
  using Replica = rdma::Replica;
  using Client = rdma::Client;
  using Workload = RdmaWorkloadOptions;
  static constexpr std::uint64_t kWorkloadSalt = 0x5eedULL;
  static constexpr Duration kPaceHi = 5;  // matches rdma_random_test pacing

  static rdma::Cluster::Options cluster_options(std::uint64_t seed,
                                                const Workload& w) {
    return {.seed = seed,
            .num_shards = w.num_shards,
            .shard_size = w.shard_size,
            .spares_per_shard = w.spares_per_shard,
            .retry_timeout = w.retry_timeout,
            .enable_tracer = w.capture_trace};
  }

  static void install_extra(rdma::Cluster& cluster, Nemesis& nemesis,
                            const Workload& w) {
    if (w.faults_on_fabric) cluster.fabric().set_fault_injector(&nemesis);
  }

  static void crash_and_reconfigure(rdma::Cluster& cluster, Rng& rng,
                                    const std::vector<ProcessId>& alive,
                                    ShardId, const configsvc::ShardConfig&) {
    ProcessId victim = alive[rng.below(alive.size())];
    cluster.crash(victim);
    ProcessId survivor = victim == alive[0] ? alive[1] : alive[0];
    Epoch before = cluster.current_epoch();
    cluster.replica_by_pid(survivor).reconfigure();
    cluster.await_active_epoch(before + 1, 200'000);
  }

  static void reconfigure_healthy(rdma::Cluster& cluster, Rng& rng,
                                  const std::vector<ProcessId>& alive, ShardId,
                                  const configsvc::ShardConfig&) {
    // Global reconfiguration with no failure: the safe protocol's only
    // (and most expensive) reconfiguration lever.
    Epoch before = cluster.current_epoch();
    cluster.replica_by_pid(alive[rng.below(alive.size())]).reconfigure();
    cluster.await_active_epoch(before + 1, 200'000);
  }
};

// --- paxos substrate ----------------------------------------------------------

struct PaxosCmd {
  static constexpr const char* kName = "HARNESS_CMD";
  int value = 0;
};

class PaxosFaultDriver {
 public:
  PaxosFaultDriver(std::uint64_t seed, const PaxosWorkloadOptions& w,
                   const Schedule& schedule)
      : w_(w),
        schedule_(schedule),
        sim_(seed),
        net_(sim_, w.exponential_delays
                       ? sim::Network::exponential_delay_options(4.0)
                       : sim::Network::unit_delay_options()),
        nemesis_(sim_, seed),
        rng_(seed ^ 0xc0ffeeULL),
        fault_rng_(seed ^ 0xfa011755ULL) {
    result_.seed = seed;
    net_.add_observer(&tracer_);
    net_.set_fault_injector(&nemesis_);
    std::vector<ProcessId> ids;
    for (std::size_t i = 0; i < w.replicas; ++i) {
      ids.push_back(static_cast<ProcessId>(100 + i));
    }
    applied_.resize(w.replicas);
    for (std::size_t i = 0; i < w.replicas; ++i) {
      paxos::PaxosReplica::Options opt;
      opt.group = ids;
      opt.initial_leader = ids[0];
      auto& log = applied_[i];
      replicas_.push_back(std::make_unique<paxos::PaxosReplica>(
          sim_, net_, ids[i], "hx" + std::to_string(i), opt,
          [&log](Slot, const sim::AnyMessage& cmd) {
            log.push_back(cmd.as<PaxosCmd>()->value);
          }));
      sim_.add_process(replicas_.back().get());
    }
  }

  RunResult run() {
    std::size_t next_fault = 0;
    int next_value = 0;
    while (next_value < w_.commands) {
      double frac = static_cast<double>(next_value) / w_.commands;
      while (next_fault < schedule_.events.size() &&
             schedule_.events[next_fault].at <= frac) {
        apply_fault(schedule_.events[next_fault++]);
      }
      std::size_t idx = pick_alive();
      for (int j = 0; j < 3 && next_value < w_.commands; ++j) {
        replicas_[idx]->submit(sim::AnyMessage(PaxosCmd{next_value++}));
      }
      sim_.run_until(sim_.now() + rng_.range(5, 40));
    }
    while (next_fault < schedule_.events.size()) {
      apply_fault(schedule_.events[next_fault++]);
    }
    // Outlive the longest possible fault window, then drain with election
    // nudges (commands buffered at a dead leader need a new one).
    sim_.run_until(sim_.now() + 1000);
    nemesis_.clear();
    for (int rounds = 0; rounds < 5; ++rounds) {
      sim_.run();
      replicas_[pick_alive()]->start_election();
      sim_.run();
    }
    return finish();
  }

 private:
  std::size_t alive_count() const {
    std::size_t n = 0;
    for (const auto& r : replicas_) n += sim_.crashed(r->id()) ? 0 : 1;
    return n;
  }
  std::size_t majority() const { return replicas_.size() / 2 + 1; }
  std::size_t pick_alive() {
    while (true) {
      std::size_t i = rng_.below(replicas_.size());
      if (!sim_.crashed(replicas_[i]->id())) return i;
    }
  }
  std::vector<std::size_t> alive_indices() const {
    std::vector<std::size_t> alive;
    for (std::size_t i = 0; i < replicas_.size(); ++i) {
      if (!sim_.crashed(replicas_[i]->id())) alive.push_back(i);
    }
    return alive;
  }

  void apply_fault(const FaultEvent& e) {
    switch (e.kind) {
      case FaultKind::kCrash: {
        if (alive_count() <= majority()) return;
        std::vector<std::size_t> alive = alive_indices();
        std::size_t victim = alive[fault_rng_.below(alive.size())];
        sim_.crash(replicas_[victim]->id());
        replicas_[pick_alive()]->start_election();
        sim_.run_until(sim_.now() + 200);
        break;
      }
      case FaultKind::kReconfigure: {
        // Leadership change is the Paxos analogue of reconfiguration.
        replicas_[pick_alive()]->start_election();
        sim_.run_until(sim_.now() + 100);
        break;
      }
      case FaultKind::kPartition: {
        // Isolate a minority: safety must hold, and after healing the
        // group must reconverge.
        std::size_t cut = std::min<std::size_t>(replicas_.size() - majority(),
                                                1 + fault_rng_.below(2));
        std::vector<ProcessId> minority;
        std::vector<std::size_t> alive = alive_indices();
        for (std::size_t k = 0; k < cut && !alive.empty(); ++k) {
          std::size_t j = fault_rng_.below(alive.size());
          minority.push_back(replicas_[alive[j]]->id());
          alive.erase(alive.begin() + static_cast<std::ptrdiff_t>(j));
        }
        nemesis_.isolate(minority, e.len, e.lossy);
        break;
      }
      case FaultKind::kDropWindow:
        nemesis_.drop_messages(e.intensity, e.len);
        break;
      case FaultKind::kDelayWindow:
        nemesis_.delay_messages(e.delay_hi, e.len);
        break;
    }
  }

  RunResult finish() {
    result_.submitted = static_cast<std::size_t>(w_.commands);
    result_.dropped = nemesis_.dropped();
    result_.held = nemesis_.held_at_partition();

    // Agreement: every alive replica's applied log is a prefix of the
    // longest one (commands are applied in slot order, so under message
    // loss a replica may lag but never diverge).
    const std::vector<int>* longest = nullptr;
    for (std::size_t i = 0; i < replicas_.size(); ++i) {
      if (sim_.crashed(replicas_[i]->id())) continue;
      if (longest == nullptr || applied_[i].size() > longest->size()) {
        longest = &applied_[i];
      }
    }
    if (longest == nullptr) {
      append_problem(result_.problems, result_.seed, "no replica survived");
      return result_;
    }
    for (std::size_t i = 0; i < replicas_.size(); ++i) {
      if (sim_.crashed(replicas_[i]->id())) continue;
      const auto& log = applied_[i];
      if (!std::equal(log.begin(), log.end(), longest->begin())) {
        append_problem(result_.problems, result_.seed,
                       "agreement: replica " + std::to_string(i) +
                           " diverged from the longest applied log");
      }
    }
    std::set<int> unique(longest->begin(), longest->end());
    if (unique.size() != longest->size()) {
      append_problem(result_.problems, result_.seed,
                     "duplicate command application");
    }
    result_.decided = longest->size();
    result_.committed = longest->size();
    if (static_cast<double>(longest->size()) <
        w_.min_applied_fraction * static_cast<double>(w_.commands)) {
      append_problem(result_.problems, result_.seed,
                     "liveness: only " + std::to_string(longest->size()) +
                         " of " + std::to_string(w_.commands) +
                         " commands applied");
    }

    std::string log_bytes;
    for (std::size_t i = 0; i < applied_.size(); ++i) {
      log_bytes += "log" + std::to_string(i) + ":";
      for (int v : applied_[i]) log_bytes += std::to_string(v) + ",";
      log_bytes += ";";
    }
    result_.fingerprint = fnv1a(tracer_.render());
    result_.fingerprint = fnv1a(log_bytes, result_.fingerprint);
    return result_;
  }

  PaxosWorkloadOptions w_;
  Schedule schedule_;
  sim::Simulator sim_;
  sim::Network net_;
  sim::Tracer tracer_;
  Nemesis nemesis_;
  Rng rng_;
  Rng fault_rng_;
  std::vector<std::unique_ptr<paxos::PaxosReplica>> replicas_;
  std::vector<std::vector<int>> applied_;
  RunResult result_;
};

}  // namespace

RunResult run_commit_workload(std::uint64_t seed, const CommitWorkloadOptions& w,
                              const Schedule& schedule) {
  FaultDriver<CommitStack> driver(seed, w, schedule);
  return driver.run();
}

RunResult run_rdma_workload(std::uint64_t seed, const RdmaWorkloadOptions& w,
                            const Schedule& schedule) {
  FaultDriver<RdmaStack> driver(seed, w, schedule);
  return driver.run();
}

RunResult run_paxos_workload(std::uint64_t seed, const PaxosWorkloadOptions& w,
                             const Schedule& schedule) {
  PaxosFaultDriver driver(seed, w, schedule);
  return driver.run();
}

}  // namespace ratc::harness
