// Nemesis: the runtime fault authority of the fault-injection harness.
//
// One Nemesis instance is installed on a cluster's transports
// (sim::Network, and rdma::Fabric where present) via set_fault_injector and
// consulted on every message.  It holds the currently active fault windows:
//
//   * partition  — processes are split into groups for a bounded window;
//     messages crossing a group boundary are either held back (delayed so
//     they arrive after the window closes — eventual delivery, matching the
//     paper's asynchronous reliable-link model) or, in lossy mode, dropped
//     outright (modelling a switch that discards traffic).  Partitions may
//     be symmetric or one-way (asymmetric: only one direction across the
//     boundary is affected, modelling e.g. a broken inbound NIC queue).
//   * drop window — each message is dropped with probability p.
//   * delay window — each message gets a uniform extra delay, widening the
//     space of explored interleavings beyond the FIFO lockstep.
//   * clock skew — everything a skewed process sends arrives a fixed extra
//     delay late.  Timer faults are modelled at the message layer: a
//     process whose scheduling clock lags fires its timeouts late and its
//     responses land late, which is exactly what its peers observe.
//
// All stochastic choices come from the Nemesis's own seeded Rng, never from
// the simulator's, so installing a Nemesis does not perturb the fault-free
// random stream and every run stays a pure function of its seeds.
#pragma once

#include <cstdint>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "common/random.h"
#include "sim/fault.h"
#include "sim/simulator.h"

namespace ratc::harness {

class Nemesis : public sim::FaultInjector {
 public:
  Nemesis(sim::Simulator& sim, std::uint64_t seed);

  // --- partitions -------------------------------------------------------------

  /// Cuts `minority` off from every other process until now()+len.  In lossy
  /// mode crossing messages are dropped; otherwise they are held back and
  /// arrive shortly after the partition heals.
  void isolate(const std::vector<ProcessId>& minority, Duration len, bool lossy = false);

  /// General form: processes in different groups cannot talk until
  /// now()+len.  Processes not mentioned in any group all share one
  /// implicit extra group.
  void split(const std::vector<std::vector<ProcessId>>& groups, Duration len,
             bool lossy = false);

  /// Asymmetric (one-way) partition: until now()+len, messages crossing the
  /// boundary in ONE direction are held back (or dropped when lossy) while
  /// the other direction flows normally.  With inbound_blocked the victims
  /// stop hearing from the rest of the cluster but are still heard; with
  /// !inbound_blocked the victims can hear but not be heard.
  void isolate_one_way(const std::vector<ProcessId>& victims, Duration len,
                       bool inbound_blocked, bool lossy = false);

  /// Ends any active partition immediately.
  void heal();
  bool partition_active() const;

  // --- clock skew -------------------------------------------------------------

  /// Until now()+len, every message sent by a victim arrives `skew` ticks
  /// late — the message-layer shadow of a lagging scheduling clock (late
  /// timer fires, late responses).
  void skew_clocks(const std::vector<ProcessId>& victims, Duration skew, Duration len);

  // --- probabilistic windows --------------------------------------------------

  /// Drops each message with probability p until now()+len.
  void drop_messages(double probability, Duration len);

  /// Adds a uniform extra delay in [1, delay_hi] per message until now()+len.
  void delay_messages(Duration delay_hi, Duration len);

  /// Cancels all active fault windows (partitions included).
  void clear();

  // --- accounting -------------------------------------------------------------

  std::uint64_t dropped() const { return dropped_; }
  std::uint64_t delayed() const { return delayed_; }
  std::uint64_t held_at_partition() const { return held_; }
  std::uint64_t skewed() const { return skewed_; }

  sim::MessageFate on_message(Time now, ProcessId from, ProcessId to,
                              const sim::AnyMessage& msg) override;

 private:
  /// Which direction(s) across the group boundary a partition severs.
  enum class PartitionMode { kSymmetric, kInboundBlocked, kOutboundBlocked };

  int group_of(ProcessId p) const;
  bool partition_affects(ProcessId from, ProcessId to) const;

  sim::Simulator& sim_;
  Rng rng_;

  // Partition window (one at a time; a new partition replaces the old).
  Time partition_until_ = 0;
  bool partition_lossy_ = false;
  PartitionMode partition_mode_ = PartitionMode::kSymmetric;
  std::unordered_map<ProcessId, int> groups_;

  Time drop_until_ = 0;
  double drop_probability_ = 0;

  Time delay_until_ = 0;
  Duration delay_hi_ = 0;

  // Clock-skew window: messages sent by these processes arrive late.
  Time skew_until_ = 0;
  Duration skew_ = 0;
  std::unordered_set<ProcessId> skewed_procs_;

  std::uint64_t dropped_ = 0;
  std::uint64_t delayed_ = 0;
  std::uint64_t held_ = 0;
  std::uint64_t skewed_ = 0;
};

}  // namespace ratc::harness
