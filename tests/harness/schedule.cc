#include "harness/schedule.h"

#include <algorithm>

namespace ratc::harness {

const char* fault_kind_name(FaultKind k) {
  switch (k) {
    case FaultKind::kCrash: return "crash";
    case FaultKind::kReconfigure: return "reconfigure";
    case FaultKind::kPartition: return "partition";
    case FaultKind::kMajoritySplit: return "majority-split";
    case FaultKind::kOneWayPartition: return "one-way-partition";
    case FaultKind::kClockSkew: return "clock-skew";
    case FaultKind::kDropWindow: return "drop";
    case FaultKind::kDelayWindow: return "delay";
  }
  return "?";
}

std::string Schedule::describe() const {
  std::string out;
  for (const auto& e : events) {
    out += "at=" + std::to_string(e.at) + "\t" + fault_kind_name(e.kind);
    if (e.len > 0) out += "\tlen=" + std::to_string(e.len);
    if (e.intensity > 0) out += "\tp=" + std::to_string(e.intensity);
    if (e.delay_hi > 0) out += "\tdelay_hi=" + std::to_string(e.delay_hi);
    if (e.lossy) out += "\tlossy";
    if (e.kind == FaultKind::kOneWayPartition) {
      out += e.inbound ? "\tinbound-blocked" : "\toutbound-blocked";
    }
    out += "\n";
  }
  return out;
}

Schedule generate_schedule(Rng& rng, const ScheduleOptions& opt) {
  Schedule s;
  auto window = [&rng, &opt]() -> Duration {
    return rng.range(opt.window_lo, opt.window_hi);
  };
  // Positions stay below 0.95 so every fault lands while transactions are
  // still in flight (the point of the harness is faults *mid-transaction*).
  auto position = [&rng]() -> double { return rng.next_double() * 0.95; };

  for (int i = 0; i < opt.crashes; ++i) {
    s.events.push_back({position(), FaultKind::kCrash, 0, 0, 0, false});
  }
  for (int i = 0; i < opt.reconfigures; ++i) {
    s.events.push_back({position(), FaultKind::kReconfigure, 0, 0, 0, false});
  }
  for (int i = 0; i < opt.partitions; ++i) {
    s.events.push_back({position(), FaultKind::kPartition, window(), 0, 0,
                        opt.lossy_partitions});
  }
  for (int i = 0; i < opt.drop_windows; ++i) {
    s.events.push_back({position(), FaultKind::kDropWindow, window(),
                        opt.drop_probability, 0, false});
  }
  for (int i = 0; i < opt.delay_windows; ++i) {
    s.events.push_back({position(), FaultKind::kDelayWindow, window(), 0,
                        opt.delay_hi, false});
  }
  // New shapes are drawn after the originals so option sets that do not use
  // them generate bit-identical schedules to earlier revisions.
  for (int i = 0; i < opt.majority_splits; ++i) {
    s.events.push_back({position(), FaultKind::kMajoritySplit, window(), 0, 0,
                        opt.lossy_partitions});
  }
  for (int i = 0; i < opt.one_way_partitions; ++i) {
    FaultEvent e{position(), FaultKind::kOneWayPartition, window(), 0, 0,
                 opt.lossy_partitions};
    e.inbound = rng.chance(0.5);
    s.events.push_back(e);
  }
  for (int i = 0; i < opt.clock_skews; ++i) {
    s.events.push_back({position(), FaultKind::kClockSkew, window(), 0,
                        rng.range(1, opt.skew_hi), false});
  }
  std::stable_sort(s.events.begin(), s.events.end(),
                   [](const FaultEvent& a, const FaultEvent& b) {
                     return a.at < b.at;
                   });
  return s;
}

}  // namespace ratc::harness
