// Nemesis schedules: declarative, cluster-agnostic fault plans.
//
// A Schedule is a time-sorted list of fault events generated from a seeded
// Rng.  Event positions are fractions of the workload (0 = before the first
// transaction, 1 = after the last) so the same schedule shape applies to
// any stack regardless of how long its run takes in virtual time; window
// lengths are in simulator ticks.  The drivers in sweep.h interpret each
// event against their cluster's live topology (which replica to crash,
// which members to partition), again using only seeded randomness, so a
// (workload seed, schedule) pair pins down the entire execution.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/random.h"
#include "common/types.h"

namespace ratc::harness {

enum class FaultKind {
  kCrash,          ///< crash one replica (driver picks a victim that keeps the shard alive), then reconfigure around it
  kReconfigure,    ///< reconfigure a healthy shard mid-stream, no crash
  kPartition,      ///< isolate a member set for `len` ticks (lossy or held-back)
  kMajoritySplit,  ///< split the whole cluster into two sides for `len` ticks
  kOneWayPartition,  ///< asymmetric partition: one direction blocked only
  kClockSkew,      ///< one machine's sends arrive `delay_hi` ticks late for `len` ticks
  kDropWindow,     ///< drop each message with probability `intensity` for `len` ticks
  kDelayWindow,    ///< add uniform extra delay in [1, delay_hi] for `len` ticks
};

const char* fault_kind_name(FaultKind k);

struct FaultEvent {
  double at = 0;          ///< workload fraction in [0, 1) at which to fire
  FaultKind kind = FaultKind::kCrash;
  Duration len = 0;       ///< window length (partition/drop/delay/skew)
  double intensity = 0;   ///< drop probability (kDropWindow)
  Duration delay_hi = 0;  ///< max extra delay (kDelayWindow); skew (kClockSkew)
  bool lossy = false;     ///< partitions: drop instead of hold back
  bool inbound = true;    ///< kOneWayPartition: block inbound (else outbound)
};

struct ScheduleOptions {
  int crashes = 2;
  int reconfigures = 1;
  int partitions = 1;
  int drop_windows = 0;
  int delay_windows = 1;
  int majority_splits = 0;
  int one_way_partitions = 0;
  int clock_skews = 0;
  Duration window_lo = 60;   ///< min window length (ticks)
  Duration window_hi = 350;  ///< max window length (ticks)
  double drop_probability = 0.05;
  Duration delay_hi = 30;
  Duration skew_hi = 25;     ///< max clock skew (kClockSkew draws in [1, skew_hi])
  bool lossy_partitions = false;
};

struct Schedule {
  std::vector<FaultEvent> events;

  /// Human-readable one-line-per-event rendering, for failure reports and
  /// the determinism tests.
  std::string describe() const;
};

/// Deterministically generates a schedule: all randomness flows from `rng`,
/// so equal seeds yield equal schedules.  Events are sorted by position.
Schedule generate_schedule(Rng& rng, const ScheduleOptions& opt);

}  // namespace ratc::harness
