// Seed-sweep drivers: run one (seed, workload, schedule) triple against a
// protocol stack, inject the schedule's faults through a Nemesis plus the
// stack harness's crash/reconfigure hooks (src/store/stack_harness.h), and
// validate the execution with the checkers the stack enumerates (online
// monitor, TCS-LL, and — when the committed projection is small enough for
// the exact DFS — the linearization checker).
//
// One templated FaultDriver covers every stack: the commit and RDMA
// protocols, the 2PC-over-Paxos baseline, and (via a local adapter) the
// bare Paxos substrate.  Every run is a pure function of its seed: the
// workload Rng, the schedule interpretation Rng, and the Nemesis Rng are
// all derived from it.  A failing seed therefore reproduces with the same
// options (see tests/README.md for the recipe).
#pragma once

#include <atomic>
#include <cstdint>
#include <string>
#include <thread>
#include <vector>

#include "common/types.h"
#include "harness/schedule.h"
#include "store/stack_harness.h"

namespace ratc::harness {

/// Outcome of one run.  `problems` is empty iff every enabled check passed;
/// otherwise it carries one diagnostic per line, prefixed with the seed.
struct RunResult {
  std::uint64_t seed = 0;
  std::size_t submitted = 0;
  std::size_t decided = 0;
  std::size_t committed = 0;
  std::uint64_t dropped = 0;  ///< messages the nemesis dropped
  std::uint64_t held = 0;     ///< messages held back by partitions
  bool linearization_checked = false;
  std::string problems;
  /// FNV-1a fingerprint of the full message trace plus outcome counters;
  /// equal seeds must produce equal fingerprints (determinism tests).
  std::uint64_t fingerprint = 0;

  std::string summary() const;
};

/// Per-stack workload aliases over the shared store::StackWorkload.  Tests
/// mutate fields; the derived types only adjust defaults to match each
/// stack's seed suites.
using CommitWorkloadOptions = store::StackWorkload;

struct RdmaWorkloadOptions : store::StackWorkload {
  RdmaWorkloadOptions() {
    total_txns = 160;
    retry_timeout = 100;
  }
};

struct BaselineWorkloadOptions : store::StackWorkload {
  BaselineWorkloadOptions() {
    shard_size = 3;  // 2f+1 Paxos groups
    spares_per_shard = 0;
    // A crashed coordinator blocks its in-flight transactions forever
    // (classical 2PC); sweeps therefore accept a lower decided fraction
    // than the recoverable stacks.
    min_decided_fraction = 0.5;
  }
};

struct PaxosWorkloadOptions {
  std::size_t replicas = 5;
  int total_txns = 60;  ///< commands
  ObjectId object_universe = 8;  ///< unused (commands carry no payload)
  bool exponential_delays = false;
  Duration drain = 2000;
  std::size_t linearize_up_to = 0;
  /// Minimum fraction of submitted commands the surviving log must contain.
  double min_decided_fraction = 0.5;
  bool capture_trace = true;
};

RunResult run_commit_workload(std::uint64_t seed, const CommitWorkloadOptions& w,
                              const Schedule& schedule);
RunResult run_rdma_workload(std::uint64_t seed, const RdmaWorkloadOptions& w,
                            const Schedule& schedule);
RunResult run_baseline_workload(std::uint64_t seed, const BaselineWorkloadOptions& w,
                                const Schedule& schedule);
RunResult run_paxos_workload(std::uint64_t seed, const PaxosWorkloadOptions& w,
                             const Schedule& schedule);

/// Aggregate of a multi-seed sweep.
struct SweepResult {
  int runs = 0;
  std::size_t total_submitted = 0;
  std::size_t total_decided = 0;
  std::size_t total_committed = 0;
  std::size_t linearization_checks = 0;
  std::vector<RunResult> failures;

  bool ok() const { return failures.empty(); }
  /// Failure report with per-seed diagnostics and a reproduction hint.
  std::string report() const;

  void absorb(RunResult r) {
    ++runs;
    total_submitted += r.submitted;
    total_decided += r.decided;
    total_committed += r.committed;
    linearization_checks += r.linearization_checked ? 1 : 0;
    if (!r.problems.empty()) failures.push_back(std::move(r));
  }
};

/// Runs `run(seed)` for seeds first_seed .. first_seed+count-1, sequentially.
template <typename Fn>
SweepResult sweep_seeds(std::uint64_t first_seed, int count, Fn run) {
  SweepResult sweep;
  for (int i = 0; i < count; ++i) {
    sweep.absorb(run(first_seed + static_cast<std::uint64_t>(i)));
  }
  return sweep;
}

/// Thread-pool variant of sweep_seeds.  Each run builds its own simulator,
/// cluster and nemesis and is a pure function of its seed, so runs are
/// embarrassingly parallel; results are aggregated in seed order, making
/// the outcome identical for every thread count (tested).  `threads` = 0
/// uses the hardware concurrency.  `run` must be callable concurrently —
/// capture per-seed state by value or index into distinct slots only.
template <typename Fn>
SweepResult parallel_sweep_seeds(std::uint64_t first_seed, int count, Fn run,
                                 unsigned threads = 0) {
  if (count <= 0) return {};
  if (threads == 0) {
    unsigned hw = std::thread::hardware_concurrency();
    threads = hw != 0 ? hw : 4;
  }
  threads = std::min<unsigned>(threads, static_cast<unsigned>(count));
  std::vector<RunResult> results(static_cast<std::size_t>(count));
  std::atomic<int> next{0};
  auto worker = [&] {
    for (int i = next.fetch_add(1); i < count; i = next.fetch_add(1)) {
      results[static_cast<std::size_t>(i)] =
          run(first_seed + static_cast<std::uint64_t>(i));
    }
  };
  std::vector<std::thread> pool;
  pool.reserve(threads - 1);
  for (unsigned t = 1; t < threads; ++t) pool.emplace_back(worker);
  worker();
  for (auto& th : pool) th.join();
  SweepResult sweep;
  for (auto& r : results) sweep.absorb(std::move(r));
  return sweep;
}

/// FNV-1a over a byte string; the fingerprint primitive used by RunResult.
std::uint64_t fnv1a(const std::string& bytes, std::uint64_t h = 0xcbf29ce484222325ULL);

}  // namespace ratc::harness
