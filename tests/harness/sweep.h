// Seed-sweep drivers: run one (seed, workload, schedule) triple against a
// protocol stack, inject the schedule's faults through a Nemesis plus the
// cluster's crash/reconfigure helpers, and validate the execution with the
// existing checkers (online monitor, TCS-LL, and — when the committed
// projection is small enough for the exact DFS — the linearization checker).
//
// Every run is a pure function of its seed: the workload Rng, the schedule
// interpretation Rng, and the Nemesis Rng are all derived from it.  A
// failing seed therefore reproduces with the same options (see
// tests/README.md for the recipe).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/types.h"
#include "harness/schedule.h"

namespace ratc::harness {

/// Outcome of one run.  `problems` is empty iff every enabled check passed;
/// otherwise it carries one diagnostic per line, prefixed with the seed.
struct RunResult {
  std::uint64_t seed = 0;
  std::size_t submitted = 0;
  std::size_t decided = 0;
  std::size_t committed = 0;
  std::uint64_t dropped = 0;  ///< messages the nemesis dropped
  std::uint64_t held = 0;     ///< messages held back by partitions
  bool linearization_checked = false;
  std::string problems;
  /// FNV-1a fingerprint of the full message trace plus outcome counters;
  /// equal seeds must produce equal fingerprints (determinism tests).
  std::uint64_t fingerprint = 0;

  std::string summary() const;
};

struct CommitWorkloadOptions {
  std::uint32_t num_shards = 3;
  std::size_t shard_size = 2;
  std::size_t spares_per_shard = 6;
  int total_txns = 200;
  ObjectId object_universe = 24;
  std::string isolation = "serializability";
  bool exponential_delays = false;
  Duration retry_timeout = 120;
  Duration drain = 8000;  ///< post-workload settle time (ticks)
  /// Run the exact linearization DFS when |committed| <= this bound.
  std::size_t linearize_up_to = 25;
  /// Minimum fraction of submitted transactions that must decide; lossy
  /// schedules legitimately lose decisions, so tests tune this down.
  double min_decided_fraction = 0.9;
  bool capture_trace = true;
};

struct RdmaWorkloadOptions {
  std::uint32_t num_shards = 3;
  std::size_t shard_size = 2;
  std::size_t spares_per_shard = 6;
  int total_txns = 160;
  ObjectId object_universe = 24;
  Duration retry_timeout = 100;
  Duration drain = 8000;
  std::size_t linearize_up_to = 25;
  double min_decided_fraction = 0.9;
  bool capture_trace = true;
  /// Also install the nemesis on the RDMA fabric (one-sided writes), not
  /// just the two-sided network.
  bool faults_on_fabric = true;
};

struct PaxosWorkloadOptions {
  std::size_t replicas = 5;
  int commands = 60;
  bool exponential_delays = false;
  /// Minimum fraction of submitted commands the surviving log must contain.
  double min_applied_fraction = 0.5;
};

RunResult run_commit_workload(std::uint64_t seed, const CommitWorkloadOptions& w,
                              const Schedule& schedule);
RunResult run_rdma_workload(std::uint64_t seed, const RdmaWorkloadOptions& w,
                            const Schedule& schedule);
RunResult run_paxos_workload(std::uint64_t seed, const PaxosWorkloadOptions& w,
                             const Schedule& schedule);

/// Aggregate of a multi-seed sweep.
struct SweepResult {
  int runs = 0;
  std::size_t total_submitted = 0;
  std::size_t total_decided = 0;
  std::size_t linearization_checks = 0;
  std::vector<RunResult> failures;

  bool ok() const { return failures.empty(); }
  /// Failure report with per-seed diagnostics and a reproduction hint.
  std::string report() const;
};

/// Runs `run(seed)` for seeds first_seed .. first_seed+count-1.
template <typename Fn>
SweepResult sweep_seeds(std::uint64_t first_seed, int count, Fn run) {
  SweepResult sweep;
  for (int i = 0; i < count; ++i) {
    RunResult r = run(first_seed + static_cast<std::uint64_t>(i));
    ++sweep.runs;
    sweep.total_submitted += r.submitted;
    sweep.total_decided += r.decided;
    sweep.linearization_checks += r.linearization_checked ? 1 : 0;
    if (!r.problems.empty()) sweep.failures.push_back(std::move(r));
  }
  return sweep;
}

/// FNV-1a over a byte string; the fingerprint primitive used by RunResult.
std::uint64_t fnv1a(const std::string& bytes, std::uint64_t h = 0xcbf29ce484222325ULL);

}  // namespace ratc::harness
