// Seed-sweep drivers: run one (seed, workload, schedule) triple against a
// protocol stack, inject the schedule's faults through a Nemesis plus the
// stack harness's crash/reconfigure hooks (src/store/stack_harness.h), and
// validate the execution with the checkers the stack enumerates (online
// monitor, TCS-LL, and — when the committed projection is small enough for
// the exact DFS — the linearization checker).
//
// One templated FaultDriver covers every stack: the commit and RDMA
// protocols, the 2PC-over-Paxos baseline, and (via a local adapter) the
// bare Paxos substrate.  Every run is a pure function of its seed: the
// workload Rng, the schedule interpretation Rng, and the Nemesis Rng are
// all derived from it.  A failing seed therefore reproduces with the same
// options (see tests/README.md for the recipe).
#pragma once

#include <atomic>
#include <cstdint>
#include <string>
#include <thread>
#include <vector>

#include "common/types.h"
#include "harness/schedule.h"
#include "store/stack_harness.h"

namespace ratc::harness {

/// Outcome of one run.  `problems` is empty iff every enabled check passed;
/// otherwise it carries one diagnostic per line, prefixed with the seed.
struct RunResult {
  std::uint64_t seed = 0;
  std::size_t submitted = 0;
  std::size_t decided = 0;
  std::size_t committed = 0;
  std::uint64_t dropped = 0;  ///< messages the nemesis dropped
  std::uint64_t held = 0;     ///< messages held back by partitions
  /// Reconfiguration attempts started by the autonomous controllers
  /// (src/ctrl/); 0 for stacks without them or when not enabled.  The
  /// hysteresis sweeps bound this per run.
  std::size_t ctrl_attempts = 0;
  /// recon::Engine counters aggregated over every reconfigurer in the run
  /// (replica-driven and controller-driven); 0 for stacks without the
  /// shared engine (baseline, paxos).
  std::size_t probes_sent = 0;
  std::size_t cas_losses = 0;
  std::size_t spares_reserved = 0;
  std::size_t spares_released = 0;
  /// CSN snapshot reads issued / served by the read mix (0 when
  /// read_fraction is 0 or the stack has no read path).
  std::size_t reads_attempted = 0;
  std::size_t reads_served = 0;
  /// Termination-protocol counters for stacks that expose
  /// termination_stats() (baseline coop and Paxos Commit; 0 elsewhere).
  /// Surfaced so ladder sweeps can assert "coop blocks > 0, Paxos Commit
  /// blocks == 0" directly instead of inferring it from committed
  /// fractions.  `term_blocked` is the all-prepared give-up count for the
  /// coop baseline and the unreachable-peer give-up count for Paxos Commit
  /// (which has no all-prepared window by construction).
  std::uint64_t term_resolved = 0;  ///< in-doubt txns resolved (commit+abort)
  std::uint64_t term_blocked = 0;   ///< termination give-ups
  std::uint64_t term_adopted = 0;   ///< orphaned coordinations adopted
  bool linearization_checked = false;
  std::string problems;
  /// FNV-1a fingerprint of the full message trace plus outcome counters;
  /// equal seeds must produce equal fingerprints (determinism tests).
  std::uint64_t fingerprint = 0;

  std::string summary() const;
};

/// Appends one seed-prefixed diagnostic line to r.problems.
inline void append_seed_problem(RunResult& r, const std::string& what) {
  if (!r.problems.empty()) r.problems += "\n";
  r.problems += "seed " + std::to_string(r.seed) + ": " + what;
}

/// Shared end-of-run verdict over a StackHarness: fills the outcome
/// counters from the harness and appends one diagnostic per failed check —
/// the stack's verifier, the exact linearization DFS when the committed
/// projection is within `linearize_up_to` (and the stack enumerates that
/// checker), and the workload's decided-fraction floor.  `r.submitted`
/// must already be set.  Used by the generic FaultDriver and by aimed
/// sweeps that drive a harness directly
/// (baseline_termination_random_test.cc), so the checker policy cannot
/// drift between them.
template <typename Harness>
void apply_end_of_run_checks(RunResult& r, Harness& harness,
                             const typename Harness::Workload& w) {
  r.decided = harness.decided_count();
  r.committed = harness.committed_count();
  if constexpr (requires { harness.controller_attempts(); }) {
    r.ctrl_attempts = harness.controller_attempts();
  }
  if constexpr (requires { harness.engine_stats(); }) {
    auto es = harness.engine_stats();
    r.probes_sent = es.probes_sent;
    r.cas_losses = es.cas_losses;
    r.spares_reserved = es.spares_reserved;
    r.spares_released = es.spares_released;
  }
  if constexpr (requires { harness.reads_attempted(); }) {
    r.reads_attempted = harness.reads_attempted();
    r.reads_served = harness.reads_served();
  }
  if constexpr (requires { harness.termination_stats(); }) {
    auto ts = harness.termination_stats();
    r.term_resolved = ts.resolved();
    r.term_blocked = ts.blocked;
    r.term_adopted = ts.adopted_coordinations;
  }
  if constexpr (requires { harness.check_snapshot_reads(); }) {
    // Every served snapshot read must have observed a consistent, fresh
    // snapshot — checked even at read_fraction 0 (vacuously empty).
    std::string snap = harness.check_snapshot_reads();
    if (!snap.empty()) append_seed_problem(r, snap);
  }
  if constexpr (requires { harness.spare_ledger_verdict(); }) {
    // Every random sweep asserts the engines' spare ledger balances: a
    // reserved spare must end up installed in a stored configuration,
    // released back to the pool, or still awaiting its CAS outcome.
    std::string ledger = harness.spare_ledger_verdict();
    if (!ledger.empty()) append_seed_problem(r, ledger);
  }
  std::string verdict = harness.verify();
  if (!verdict.empty()) append_seed_problem(r, verdict);
  if constexpr (Harness::kCheckers.linearization) {
    if (r.committed <= w.linearize_up_to) {
      r.linearization_checked = true;
      std::string lin = harness.check_linearization();
      if (!lin.empty()) append_seed_problem(r, lin);
    }
  }
  if (static_cast<double>(r.decided) <
      w.min_decided_fraction * static_cast<double>(r.submitted)) {
    append_seed_problem(r, "liveness: only " + std::to_string(r.decided) +
                               " of " + std::to_string(r.submitted) +
                               " transactions decided (required fraction " +
                               std::to_string(w.min_decided_fraction) + ")");
  }
}

/// Per-stack workload aliases over the shared store::StackWorkload.  Tests
/// mutate fields; the derived types only adjust defaults to match each
/// stack's seed suites.
using CommitWorkloadOptions = store::StackWorkload;

struct RdmaWorkloadOptions : store::StackWorkload {
  RdmaWorkloadOptions() {
    total_txns = 160;
    retry_timeout = 100;
  }
};

struct BaselineWorkloadOptions : store::StackWorkload {
  BaselineWorkloadOptions() {
    shard_size = 3;  // 2f+1 Paxos groups
    spares_per_shard = 0;
    // A crashed coordinator blocks its in-flight transactions forever
    // (classical 2PC); sweeps therefore accept a lower decided fraction
    // than the recoverable stacks.
    min_decided_fraction = 0.5;
  }
};

/// The baseline plus cooperative termination (store::BaselineCoopHarness):
/// same topology and workload stream as BaselineWorkloadOptions, but
/// in-doubt transactions whose peers know the outcome get resolved, so only
/// the all-prepared window still blocks.
struct BaselineCoopWorkloadOptions : BaselineWorkloadOptions {
  BaselineCoopWorkloadOptions() { cooperative_termination = true; }
};

/// Paxos Commit (store::PaxosCommitHarness): the baseline's topology and
/// workload stream, but every vote is a replicated consensus instance, so
/// recovery never blocks on the all-prepared window.  The decided-fraction
/// floor is accordingly higher than the 2PC rungs'; suites override it
/// with census-calibrated values per schedule shape (pc_random_test.cc).
struct PaxosCommitWorkloadOptions : store::StackWorkload {
  PaxosCommitWorkloadOptions() {
    shard_size = 3;  // 2f+1 Paxos groups
    spares_per_shard = 0;
    min_decided_fraction = 0.75;
  }
};

struct PaxosWorkloadOptions {
  std::size_t replicas = 5;
  int total_txns = 60;  ///< commands
  ObjectId object_universe = 8;  ///< unused (commands carry no payload)
  bool exponential_delays = false;
  Duration drain = 2000;
  std::size_t linearize_up_to = 0;
  /// Minimum fraction of submitted commands the surviving log must contain.
  double min_decided_fraction = 0.5;
  bool capture_trace = true;
};

RunResult run_commit_workload(std::uint64_t seed, const CommitWorkloadOptions& w,
                              const Schedule& schedule);
RunResult run_rdma_workload(std::uint64_t seed, const RdmaWorkloadOptions& w,
                            const Schedule& schedule);
RunResult run_baseline_workload(std::uint64_t seed, const BaselineWorkloadOptions& w,
                                const Schedule& schedule);
RunResult run_baseline_coop_workload(std::uint64_t seed,
                                     const BaselineCoopWorkloadOptions& w,
                                     const Schedule& schedule);
RunResult run_paxos_commit_workload(std::uint64_t seed,
                                    const PaxosCommitWorkloadOptions& w,
                                    const Schedule& schedule);
RunResult run_paxos_workload(std::uint64_t seed, const PaxosWorkloadOptions& w,
                             const Schedule& schedule);

/// Seed count for a sweep: the RATC_SWEEP_SEEDS environment variable when
/// set to a positive integer (the nightly deep-sweep CI job sets it to run
/// hundreds of seeds per schedule shape), else `fallback` — the cheap
/// default the interactive/per-push suites use.
int sweep_seed_count(int fallback);

/// Aggregate of a multi-seed sweep.
struct SweepResult {
  int runs = 0;
  std::size_t total_submitted = 0;
  std::size_t total_decided = 0;
  std::size_t total_committed = 0;
  std::size_t linearization_checks = 0;
  /// Termination-counter aggregates (see RunResult); the ladder sweeps
  /// assert on these directly: coop blocks > 0, Paxos Commit blocks == 0.
  std::uint64_t total_term_resolved = 0;
  std::uint64_t total_term_blocked = 0;
  std::uint64_t total_term_adopted = 0;
  std::vector<RunResult> failures;

  bool ok() const { return failures.empty(); }
  /// Failure report with per-seed diagnostics and a reproduction hint.
  std::string report() const;

  void absorb(RunResult r) {
    ++runs;
    total_submitted += r.submitted;
    total_decided += r.decided;
    total_committed += r.committed;
    linearization_checks += r.linearization_checked ? 1 : 0;
    total_term_resolved += r.term_resolved;
    total_term_blocked += r.term_blocked;
    total_term_adopted += r.term_adopted;
    if (!r.problems.empty()) failures.push_back(std::move(r));
  }
};

/// Runs `run(seed)` for seeds first_seed .. first_seed+count-1, sequentially.
template <typename Fn>
SweepResult sweep_seeds(std::uint64_t first_seed, int count, Fn run) {
  SweepResult sweep;
  for (int i = 0; i < count; ++i) {
    sweep.absorb(run(first_seed + static_cast<std::uint64_t>(i)));
  }
  return sweep;
}

/// Thread-pool variant of sweep_seeds.  Each run builds its own simulator,
/// cluster and nemesis and is a pure function of its seed, so runs are
/// embarrassingly parallel; results are aggregated in seed order, making
/// the outcome identical for every thread count (tested).  `threads` = 0
/// uses the hardware concurrency.  `run` must be callable concurrently —
/// capture per-seed state by value or index into distinct slots only.
template <typename Fn>
SweepResult parallel_sweep_seeds(std::uint64_t first_seed, int count, Fn run,
                                 unsigned threads = 0) {
  if (count <= 0) return {};
  if (threads == 0) {
    unsigned hw = std::thread::hardware_concurrency();
    threads = hw != 0 ? hw : 4;
  }
  threads = std::min<unsigned>(threads, static_cast<unsigned>(count));
  std::vector<RunResult> results(static_cast<std::size_t>(count));
  std::atomic<int> next{0};
  auto worker = [&] {
    for (int i = next.fetch_add(1); i < count; i = next.fetch_add(1)) {
      results[static_cast<std::size_t>(i)] =
          run(first_seed + static_cast<std::uint64_t>(i));
    }
  };
  std::vector<std::thread> pool;
  pool.reserve(threads - 1);
  for (unsigned t = 1; t < threads; ++t) pool.emplace_back(worker);
  worker();
  for (auto& th : pool) th.join();
  SweepResult sweep;
  for (auto& r : results) sweep.absorb(std::move(r));
  return sweep;
}

/// FNV-1a over a byte string; the fingerprint primitive used by RunResult.
std::uint64_t fnv1a(const std::string& bytes, std::uint64_t h = 0xcbf29ce484222325ULL);

}  // namespace ratc::harness
