#include <gtest/gtest.h>

#include <map>
#include <set>

#include "common/random.h"
#include "common/violation.h"

namespace ratc {
namespace {

TEST(Rng, DeterministicFromSeed) {
  Rng a(42), b(42);
  for (int i = 0; i < 1000; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.next() == b.next()) ++same;
  }
  EXPECT_LT(same, 3);
}

TEST(Rng, BelowInRange) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    EXPECT_LT(rng.below(17), 17u);
  }
}

TEST(Rng, BelowZeroIsZero) {
  Rng rng(7);
  EXPECT_EQ(rng.below(0), 0u);
}

TEST(Rng, RangeInclusive) {
  Rng rng(9);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 10000; ++i) seen.insert(rng.range(3, 6));
  EXPECT_EQ(seen, (std::set<std::uint64_t>{3, 4, 5, 6}));
}

TEST(Rng, DoubleInUnitInterval) {
  Rng rng(11);
  for (int i = 0; i < 10000; ++i) {
    double d = rng.next_double();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

TEST(Rng, ChanceRoughlyCalibrated) {
  Rng rng(13);
  int hits = 0;
  for (int i = 0; i < 100000; ++i) hits += rng.chance(0.3) ? 1 : 0;
  EXPECT_NEAR(hits / 100000.0, 0.3, 0.02);
}

TEST(Rng, ExponentialPositiveAndRoughMean) {
  Rng rng(17);
  double sum = 0;
  for (int i = 0; i < 100000; ++i) {
    Duration d = rng.exponential(10.0);
    EXPECT_GE(d, 1u);
    sum += static_cast<double>(d);
  }
  EXPECT_NEAR(sum / 100000.0, 10.0, 1.0);
}

TEST(Rng, ShuffleIsPermutation) {
  Rng rng(19);
  std::vector<int> v{1, 2, 3, 4, 5, 6, 7, 8};
  auto orig = v;
  rng.shuffle(v);
  std::multiset<int> a(v.begin(), v.end()), b(orig.begin(), orig.end());
  EXPECT_EQ(a, b);
}

TEST(Rng, SplitIndependent) {
  Rng a(23);
  Rng b = a.split();
  // The split stream should not track the parent.
  int same = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.next() == b.next()) ++same;
  }
  EXPECT_LT(same, 3);
}

TEST(Zipfian, SkewsTowardsLowRanks) {
  Rng rng(29);
  Zipfian z(1000, 0.99);
  std::map<std::uint64_t, int> counts;
  for (int i = 0; i < 100000; ++i) ++counts[z.sample(rng)];
  // Rank 0 should be far more popular than rank 500.
  EXPECT_GT(counts[0], 100);
  EXPECT_GT(counts[0], counts[500] * 5);
  for (const auto& [k, _] : counts) EXPECT_LT(k, 1000u);
}

TEST(Zipfian, UniformishWhenThetaSmall) {
  Rng rng(31);
  Zipfian z(10, 0.01);
  std::map<std::uint64_t, int> counts;
  for (int i = 0; i < 100000; ++i) ++counts[z.sample(rng)];
  EXPECT_EQ(counts.size(), 10u);
  for (const auto& [_, c] : counts) EXPECT_GT(c, 5000);
}

TEST(ViolationSink, CollectsAndSummarizes) {
  ViolationSink sink;
  EXPECT_TRUE(sink.empty());
  sink.report(5, "Invariant4b", "two decisions");
  sink.report(9, "Invariant2", "prefix mismatch");
  EXPECT_FALSE(sink.empty());
  ASSERT_EQ(sink.all().size(), 2u);
  EXPECT_EQ(sink.all()[0].invariant, "Invariant4b");
  EXPECT_NE(sink.summary().find("prefix mismatch"), std::string::npos);
  sink.clear();
  EXPECT_TRUE(sink.empty());
}

}  // namespace
}  // namespace ratc
