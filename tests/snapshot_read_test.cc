// Read-only snapshot transactions on the CSN log.
//
// Four layers pin the snapshot-read PR:
//   1. SnapshotStore: visibility is gated on csn alone, never apply order —
//      the regression for the out-of-order VersionedStore::apply hole —
//      plus idempotence, truncation honesty, and never-written semantics.
//   2. Csn/watermark algebra: the total order and the two watermark
//      constructors the replicas derive their read horizon from.
//   3. checker::check_snapshot_reads on crafted histories: accepts a
//      consistent read, rejects future observations, missed mandatory
//      writers, version/csn order inversions, and staleness violations.
//   4. Cluster smoke on all three stacks: a served read observes the
//      committed state at one consistent snapshot with ZERO messages on the
//      wire (asserted against the tracer), followers serve on the
//      reconfigurable stacks, and the baseline's leader gate refuses when
//      the designated leader is gone.
#include <gtest/gtest.h>

#include <optional>
#include <vector>

#include "baseline/cluster.h"
#include "checker/snapshot.h"
#include "commit/cluster.h"
#include "rdma/cluster.h"
#include "store/versioned_store.h"
#include "tcs/csn.h"
#include "tcs/history.h"

namespace ratc {
namespace {

using tcs::Csn;
using tcs::Decision;
using tcs::Payload;

Payload write_payload(ObjectId o, Version read_v, Value value) {
  Payload p;
  p.reads = {{o, read_v}};
  p.writes = {{o, value}};
  p.commit_version = read_v + 1;
  return p;
}

// --- 1. SnapshotStore -------------------------------------------------------

TEST(SnapshotStore, OutOfOrderApplyNeverExposesNonPrefixState) {
  // The decide for csn <30> lands BEFORE the decide for csn <10> (a lagging
  // replica learning decisions out of log order).  Reads interleaved with
  // the applies must always see the csn-prefix of their snapshot, never the
  // apply-order prefix.
  store::SnapshotStore st(8);
  st.apply_at(write_payload(0, 2, 33), Csn{30, 3});

  // Snapshot 20: the csn-30 write is in the future; with nothing below, the
  // object reads as absent — NOT as version 3.
  auto v = st.read_at(0, Csn{20, tcs::kMaxTxnId});
  ASSERT_TRUE(v.has_value());
  EXPECT_EQ(v->version, 0u);

  // The earlier write arrives late; the same snapshot now resolves to it.
  st.apply_at(write_payload(0, 0, 11), Csn{10, 1});
  v = st.read_at(0, Csn{20, tcs::kMaxTxnId});
  ASSERT_TRUE(v.has_value());
  EXPECT_EQ(v->version, 1u);
  EXPECT_EQ(v->value, 11);

  // And a snapshot covering both sees the csn-latest version.
  v = st.read_at(0, Csn{40, tcs::kMaxTxnId});
  ASSERT_TRUE(v.has_value());
  EXPECT_EQ(v->version, 3u);
  EXPECT_EQ(v->value, 33);
}

TEST(SnapshotStore, ApplyIsIdempotent) {
  store::SnapshotStore st(8);
  Payload p = write_payload(5, 0, 42);
  st.apply_at(p, Csn{7, 9});
  st.apply_at(p, Csn{7, 9});  // duplicate decision replay
  auto v = st.read_at(5, tcs::watermark_at(100));
  ASSERT_TRUE(v.has_value());
  EXPECT_EQ(v->version, 1u);
  st.apply_at(write_payload(5, 1, 43), Csn{8, 10});
  v = st.read_at(5, tcs::watermark_at(100));
  ASSERT_TRUE(v.has_value());
  EXPECT_EQ(v->version, 2u);
}

TEST(SnapshotStore, TruncationIsHonest) {
  // Depth 2: after three writes the oldest is evicted.  A snapshot below
  // the retained range must answer "unknowable" (nullopt), never a wrong
  // version or a fake absence.
  store::SnapshotStore st(2);
  st.apply_at(write_payload(0, 0, 1), Csn{10, 1});
  st.apply_at(write_payload(0, 1, 2), Csn{20, 2});
  st.apply_at(write_payload(0, 2, 3), Csn{30, 3});
  EXPECT_FALSE(st.read_at(0, Csn{5, tcs::kMaxTxnId}).has_value());
  auto v = st.read_at(0, Csn{25, tcs::kMaxTxnId});
  ASSERT_TRUE(v.has_value());
  EXPECT_EQ(v->version, 2u);
}

TEST(SnapshotStore, NeverWrittenObjectReadsAsAbsent) {
  store::SnapshotStore st;
  auto v = st.read_at(99, tcs::watermark_at(1000));
  ASSERT_TRUE(v.has_value());
  EXPECT_EQ(v->version, 0u);
  EXPECT_EQ(v->value, 0);
}

// --- 2. Csn / watermark algebra ---------------------------------------------

TEST(Csn, TotalOrderAndWatermarks) {
  EXPECT_LT((Csn{3, 9}), (Csn{4, 1}));      // ts dominates
  EXPECT_LT((Csn{3, 1}), (Csn{3, 2}));      // txn breaks ties
  EXPECT_EQ(tcs::watermark_below(0), (Csn{0, 0}));
  // Everything stamped strictly below ts=5 fits under watermark_below(5)...
  EXPECT_LE((Csn{4, tcs::kMaxTxnId}), tcs::watermark_below(5));
  // ...and nothing stamped at or above it does.
  EXPECT_GT((Csn{5, 0}), tcs::watermark_below(5));
  EXPECT_LE((Csn{7, tcs::kMaxTxnId}), tcs::watermark_at(7));
  EXPECT_GT((Csn{8, 0}), tcs::watermark_at(7));
}

// --- 3. the snapshot checker on crafted histories ---------------------------

tcs::History committed_chain() {
  // Object 0: version 1 (value 11, csn <10,1>) then version 2 (value 22,
  // csn <20,2>), both decided by t=100.
  tcs::History h;
  h.record_certify(1, 1, write_payload(0, 0, 11));
  h.record_decide(10, 1, Decision::kCommit, Csn{10, 1});
  h.record_certify(2, 2, write_payload(0, 1, 22));
  h.record_decide(20, 2, Decision::kCommit, Csn{20, 2});
  return h;
}

tcs::SnapshotReadRecord read_of(Time at, Csn snapshot, Version v, Value val) {
  tcs::SnapshotReadRecord r;
  r.time = at;
  r.snapshot = snapshot;
  r.observations = {{0, v, val}};
  return r;
}

TEST(SnapshotChecker, AcceptsConsistentReads) {
  tcs::History h = committed_chain();
  h.record_snapshot_read(read_of(100, Csn{15, tcs::kMaxTxnId}, 1, 11));
  h.record_snapshot_read(read_of(100, Csn{25, tcs::kMaxTxnId}, 2, 22));
  // A snapshot below every writer legitimately observes absence.
  h.record_snapshot_read(read_of(100, Csn{5, tcs::kMaxTxnId}, 0, 0));
  checker::SnapshotReadResult r = checker::check_snapshot_reads(h);
  EXPECT_TRUE(r.ok) << r.error;
  EXPECT_EQ(r.reads_checked, 3u);
}

TEST(SnapshotChecker, RejectsObservationAboveTheSnapshot) {
  tcs::History h = committed_chain();
  // Version 2's writer has csn <20,2> — invisible at snapshot ts 15.
  h.record_snapshot_read(read_of(100, Csn{15, tcs::kMaxTxnId}, 2, 22));
  EXPECT_FALSE(checker::check_snapshot_reads(h).ok);
}

TEST(SnapshotChecker, RejectsMissedMandatoryWriter) {
  tcs::History h = committed_chain();
  // Both writers decided long before t=100 and sit below the snapshot, so
  // observing version 1 means the read missed a mandatory writer.
  h.record_snapshot_read(read_of(100, Csn{25, tcs::kMaxTxnId}, 1, 11));
  EXPECT_FALSE(checker::check_snapshot_reads(h).ok);
}

TEST(SnapshotChecker, RejectsVersionOrderAgainstCsnOrder) {
  tcs::History h;
  // Version 2 carries a LOWER csn than version 1: the global order the
  // store lookup depends on is broken, with or without any read.
  h.record_certify(1, 1, write_payload(0, 0, 11));
  h.record_decide(10, 1, Decision::kCommit, Csn{30, 1});
  h.record_certify(2, 2, write_payload(0, 1, 22));
  h.record_decide(20, 2, Decision::kCommit, Csn{20, 2});
  EXPECT_FALSE(checker::check_snapshot_reads(h).ok);
}

TEST(SnapshotChecker, RejectsStalenessBeyondTheBound) {
  tcs::History h = committed_chain();
  tcs::SnapshotReadRecord r = read_of(100, Csn{25, tcs::kMaxTxnId}, 2, 22);
  r.staleness_bound = 50;  // 25 + 50 < 100: served too stale for the bound
  h.record_snapshot_read(r);
  EXPECT_FALSE(checker::check_snapshot_reads(h).ok);
}

// --- 4. cluster smoke: all three stacks -------------------------------------

/// Commits `rounds` versions of objects 0..3 (spanning both shards) through
/// a co-located coordinator and returns the expected final value per object.
template <typename ClusterT, typename ClientT>
void commit_rounds(ClusterT& cluster, ClientT& client, int rounds) {
  for (int round = 1; round <= rounds; ++round) {
    for (ObjectId o = 0; o < 4; ++o) {
      TxnId t = cluster.next_txn_id();
      client.certify_colocated(
          cluster.replica(0, 0), t,
          write_payload(o, static_cast<Version>(round - 1),
                        static_cast<Value>(100 * round + static_cast<Value>(o))));
      // Wait on the decision, not queue exhaustion: a nonzero retry_timeout
      // keeps a periodic timer alive forever, so sim().run() never returns.
      ASSERT_TRUE(
          cluster.sim().run_until_pred([&] { return client.decided(t); }));
      ASSERT_EQ(client.decision(t), Decision::kCommit)
          << "round " << round << " object " << o;
    }
  }
  // Let the trailing DECISION messages reach the shard replicas: until they
  // apply, the last transaction is still prepared there and legitimately
  // pins the read watermark below its csn.
  cluster.sim().run_until(cluster.sim().now() + 100);
}

TEST(SnapshotReadCluster, CommitServesConsistentSnapshotWithZeroMessages) {
  commit::Cluster cluster(
      {.seed = 9, .num_shards = 2, .shard_size = 2, .enable_tracer = true});
  commit::Client& client = cluster.add_client();
  commit_rounds(cluster, client, 3);

  std::size_t wire_before = cluster.tracer().entries().size();
  std::optional<Csn> snap = cluster.snapshot_read({0, 1, 2, 3});
  ASSERT_TRUE(snap.has_value());
  // The fast path is synchronous local state inspection: nothing on the wire.
  EXPECT_EQ(cluster.tracer().entries().size(), wire_before);

  const tcs::SnapshotReadRecord& rec = cluster.history().snapshot_reads().back();
  ASSERT_EQ(rec.observations.size(), 4u);
  for (const auto& obs : rec.observations) {
    EXPECT_EQ(obs.version, 3u) << "object " << obs.object;
    EXPECT_EQ(obs.value, 300 + static_cast<Value>(obs.object));
  }
  checker::SnapshotReadResult r = checker::check_snapshot_reads(cluster.history());
  EXPECT_TRUE(r.ok) << r.error;
}

TEST(SnapshotReadCluster, CommitFollowersServeViaMemberRotation) {
  commit::Cluster cluster({.seed = 10, .num_shards = 2, .shard_size = 3});
  commit::Client& client = cluster.add_client();
  commit_rounds(cluster, client, 2);
  // Every rotation offset must find a serving member — including the ones
  // that start the pick at a follower.
  for (std::uint64_t hint = 0; hint < 3; ++hint) {
    EXPECT_TRUE(cluster.snapshot_read({0, 1}, 0, hint).has_value())
        << "member_hint " << hint;
  }
  checker::SnapshotReadResult r = checker::check_snapshot_reads(cluster.history());
  EXPECT_TRUE(r.ok) << r.error;
}

TEST(SnapshotReadCluster, RdmaServesConsistentSnapshotWithZeroMessages) {
  rdma::Cluster cluster(
      {.seed = 11, .num_shards = 2, .shard_size = 2, .enable_tracer = true});
  rdma::Client& client = cluster.add_client();
  commit_rounds(cluster, client, 3);

  std::size_t wire_before = cluster.tracer().entries().size();
  std::optional<Csn> snap = cluster.snapshot_read({0, 1, 2, 3});
  ASSERT_TRUE(snap.has_value());
  EXPECT_EQ(cluster.tracer().entries().size(), wire_before);

  const tcs::SnapshotReadRecord& rec = cluster.history().snapshot_reads().back();
  ASSERT_EQ(rec.observations.size(), 4u);
  for (const auto& obs : rec.observations) {
    EXPECT_EQ(obs.version, 3u) << "object " << obs.object;
  }
  checker::SnapshotReadResult r = checker::check_snapshot_reads(cluster.history());
  EXPECT_TRUE(r.ok) << r.error;
}

TEST(SnapshotReadCluster, BaselineLeaderGateServesAndRefuses) {
  baseline::BaselineCluster cluster({.seed = 12, .num_shards = 2});
  baseline::BaselineClient& client = cluster.add_client();
  for (ObjectId o = 0; o < 2; ++o) {
    Payload p = write_payload(o, 0, static_cast<Value>(7 + o));
    TxnId t = cluster.next_txn_id();
    client.certify(cluster.coordinator_for(p), t, p);
    ASSERT_TRUE(cluster.sim().run_until_pred([&] { return client.decided(t); }));
    ASSERT_EQ(client.decision(t), Decision::kCommit);
  }

  std::optional<Csn> snap = cluster.snapshot_read({0, 1});
  ASSERT_TRUE(snap.has_value());
  const tcs::SnapshotReadRecord& rec = cluster.history().snapshot_reads().back();
  ASSERT_EQ(rec.observations.size(), 2u);
  EXPECT_EQ(rec.observations[0].version, 1u);
  EXPECT_EQ(rec.observations[0].value, 7);
  checker::SnapshotReadResult r = checker::check_snapshot_reads(cluster.history());
  EXPECT_TRUE(r.ok) << r.error;

  // The baseline has no all-follower-ack rule, so followers may never
  // serve: with shard 0's leader gone the read is refused, not misserved.
  cluster.crash_server(cluster.leader_server(0));
  EXPECT_FALSE(cluster.snapshot_read({0}).has_value());
  // Shard 1's leader still serves reads that avoid the dead shard.
  EXPECT_TRUE(cluster.snapshot_read({1}).has_value());
}

TEST(SnapshotReadCluster, BoundedStalenessRefusesLaggingSnapshots) {
  // Park a prepared-undecided transaction at shard 0's leader by cutting
  // the coordinator off mid-protocol: the watermark pins below its prepare
  // stamp, so as time advances a tight staleness bound must start refusing
  // while the unbounded read keeps serving.
  commit::Cluster cluster({.seed = 13, .num_shards = 2, .shard_size = 2,
                           .retry_timeout = 1'000'000});
  commit::Client& client = cluster.add_client();
  commit_rounds(cluster, client, 1);

  Payload p = write_payload(0, 1, 99);
  TxnId t = cluster.next_txn_id();
  commit::Replica& coordinator = cluster.replica(1, 1);
  client.certify_colocated(coordinator, t, p);
  ProcessId leader0 = cluster.leader_of(0);
  ASSERT_TRUE(cluster.sim().run_until_pred([&] {
    Slot k = cluster.replica_by_pid(leader0).log().slot_of(t);
    return k != kNoSlot;
  }));
  cluster.crash(coordinator.id());
  cluster.sim().run_until(cluster.sim().now() + 5'000);

  EXPECT_TRUE(cluster.snapshot_read({0}).has_value());       // unbounded: ok
  EXPECT_FALSE(cluster.snapshot_read({0}, 100).has_value()); // bounded: too stale
}

}  // namespace
}  // namespace ratc
