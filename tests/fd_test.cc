#include <gtest/gtest.h>

#include <vector>

#include "fd/failure_detector.h"
#include "sim/network.h"
#include "sim/simulator.h"

namespace ratc::fd {
namespace {

/// Monitored process: just answers pings.
class Target : public sim::Process {
 public:
  Target(sim::Simulator& sim, sim::Network& net, ProcessId id)
      : Process(sim, id, "target"), responder_(net, id) {}
  void on_message(ProcessId from, const sim::AnyMessage& msg) override {
    responder_.handle(from, msg);
  }

 private:
  Responder responder_;
};

/// Monitoring process.
class Watcher : public sim::Process {
 public:
  Watcher(sim::Simulator& sim, sim::Network& net, ProcessId id,
          PingMonitor::Options opts = {})
      : Process(sim, id, "watcher"), monitor(sim, net, id, opts) {
    monitor.on_suspect = [this](ProcessId p) { suspected.push_back(p); };
  }
  void on_message(ProcessId from, const sim::AnyMessage& msg) override {
    monitor.handle(from, msg);
  }

  PingMonitor monitor;
  std::vector<ProcessId> suspected;
};

TEST(FailureDetector, NoSuspicionWhileAlive) {
  sim::Simulator sim(1);
  sim::Network net(sim);
  Target t(sim, net, 1);
  Watcher w(sim, net, 2);
  sim.add_process(&t);
  sim.add_process(&w);
  w.monitor.watch(t.id());
  w.monitor.start();
  sim.run_until(1000);
  EXPECT_TRUE(w.suspected.empty());
  EXPECT_FALSE(w.monitor.suspects(t.id()));
}

TEST(FailureDetector, SuspectsCrashedPeerOnce) {
  sim::Simulator sim(2);
  sim::Network net(sim);
  Target t(sim, net, 1);
  Watcher w(sim, net, 2);
  sim.add_process(&t);
  sim.add_process(&w);
  w.monitor.watch(t.id());
  w.monitor.start();
  sim.run_until(100);
  EXPECT_TRUE(w.suspected.empty());
  sim.crash(t.id());
  sim.run_until(400);
  ASSERT_EQ(w.suspected.size(), 1u);
  EXPECT_EQ(w.suspected[0], t.id());
  EXPECT_TRUE(w.monitor.suspects(t.id()));
}

TEST(FailureDetector, DetectionLatencyBoundedByTimeout) {
  sim::Simulator sim(3);
  sim::Network net(sim);
  Target t(sim, net, 1);
  Watcher w(sim, net, 2, {.ping_every = 10, .suspect_after = 30});
  sim.add_process(&t);
  sim.add_process(&w);
  w.monitor.watch(t.id());
  w.monitor.start();
  sim.run_until(50);
  sim.crash(t.id());
  // Must be suspected within timeout + ping period + slack.
  bool suspected = sim.run_until_pred([&] { return !w.suspected.empty(); });
  ASSERT_TRUE(suspected || sim.run_until(95) > 0 || !w.suspected.empty());
  sim.run_until(100);
  ASSERT_FALSE(w.suspected.empty());
  EXPECT_LE(sim.now(), 100u);
}

TEST(FailureDetector, WatchesMultiplePeers) {
  sim::Simulator sim(4);
  sim::Network net(sim);
  Target a(sim, net, 1), b(sim, net, 2), c(sim, net, 3);
  Watcher w(sim, net, 9);
  for (auto* t : {&a, &b, &c}) sim.add_process(t);
  sim.add_process(&w);
  for (auto* t : {&a, &b, &c}) w.monitor.watch(t->id());
  w.monitor.start();
  sim.run_until(100);
  sim.crash(b.id());
  sim.run_until(400);
  ASSERT_EQ(w.suspected.size(), 1u);
  EXPECT_EQ(w.suspected[0], b.id());
}

TEST(FailureDetector, IdleMonitorLetsTheSimulationQuiesce) {
  // Ticking pauses while nothing is watched, so an embedded monitor never
  // keeps the event queue alive — sim.run() must return — and resumes when
  // a new peer is watched.
  sim::Simulator sim(6);
  sim::Network net(sim);
  Target t(sim, net, 1);
  Watcher w(sim, net, 2);
  sim.add_process(&t);
  sim.add_process(&w);
  w.monitor.start();  // nothing watched: no ticking
  sim.run();
  EXPECT_TRUE(sim.idle());

  w.monitor.watch(t.id());  // resumes ticking
  sim.crash(t.id());
  sim.run_until(sim.now() + 400);
  ASSERT_EQ(w.suspected.size(), 1u);
  w.monitor.unwatch(t.id());
  sim.run();  // the dangling tick self-pauses; the queue drains
  EXPECT_TRUE(sim.idle());
}

TEST(FailureDetector, UnwatchStopsSuspicion) {
  sim::Simulator sim(5);
  sim::Network net(sim);
  Target t(sim, net, 1);
  Watcher w(sim, net, 2);
  sim.add_process(&t);
  sim.add_process(&w);
  w.monitor.watch(t.id());
  w.monitor.start();
  sim.run_until(50);
  w.monitor.unwatch(t.id());
  sim.crash(t.id());
  sim.run_until(500);
  EXPECT_TRUE(w.suspected.empty());
}

}  // namespace
}  // namespace ratc::fd
