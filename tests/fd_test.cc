#include <gtest/gtest.h>

#include <vector>

#include "fd/failure_detector.h"
#include "sim/network.h"
#include "sim/simulator.h"

namespace ratc::fd {
namespace {

/// Monitored process: just answers pings.
class Target : public sim::Process {
 public:
  Target(sim::Simulator& sim, sim::Network& net, ProcessId id)
      : Process(sim, id, "target"), responder_(net, id) {}
  void on_message(ProcessId from, const sim::AnyMessage& msg) override {
    responder_.handle(from, msg);
  }

 private:
  Responder responder_;
};

/// Monitoring process.
class Watcher : public sim::Process {
 public:
  Watcher(sim::Simulator& sim, sim::Network& net, ProcessId id,
          PingMonitor::Options opts = {})
      : Process(sim, id, "watcher"), monitor(sim, net, id, opts) {
    monitor.subscribe(
        {.on_suspect = [this](ProcessId p) { suspected.push_back(p); },
         .on_recover = [this](ProcessId p) { recovered.push_back(p); }});
  }
  void on_message(ProcessId from, const sim::AnyMessage& msg) override {
    monitor.handle(from, msg);
  }

  PingMonitor monitor;
  std::vector<ProcessId> suspected;
  std::vector<ProcessId> recovered;
};

TEST(FailureDetector, NoSuspicionWhileAlive) {
  sim::Simulator sim(1);
  sim::Network net(sim);
  Target t(sim, net, 1);
  Watcher w(sim, net, 2);
  sim.add_process(&t);
  sim.add_process(&w);
  w.monitor.watch(t.id());
  w.monitor.start();
  sim.run_until(1000);
  EXPECT_TRUE(w.suspected.empty());
  EXPECT_FALSE(w.monitor.suspects(t.id()));
}

TEST(FailureDetector, SuspectsCrashedPeerOnce) {
  sim::Simulator sim(2);
  sim::Network net(sim);
  Target t(sim, net, 1);
  Watcher w(sim, net, 2);
  sim.add_process(&t);
  sim.add_process(&w);
  w.monitor.watch(t.id());
  w.monitor.start();
  sim.run_until(100);
  EXPECT_TRUE(w.suspected.empty());
  sim.crash(t.id());
  sim.run_until(400);
  ASSERT_EQ(w.suspected.size(), 1u);
  EXPECT_EQ(w.suspected[0], t.id());
  EXPECT_TRUE(w.monitor.suspects(t.id()));
}

TEST(FailureDetector, DetectionLatencyBoundedByTimeout) {
  sim::Simulator sim(3);
  sim::Network net(sim);
  Target t(sim, net, 1);
  Watcher w(sim, net, 2, {.ping_every = 10, .suspect_after = 30});
  sim.add_process(&t);
  sim.add_process(&w);
  w.monitor.watch(t.id());
  w.monitor.start();
  sim.run_until(50);
  sim.crash(t.id());
  // Must be suspected within timeout + ping period + slack.
  bool suspected = sim.run_until_pred([&] { return !w.suspected.empty(); });
  ASSERT_TRUE(suspected || sim.run_until(95) > 0 || !w.suspected.empty());
  sim.run_until(100);
  ASSERT_FALSE(w.suspected.empty());
  EXPECT_LE(sim.now(), 100u);
}

TEST(FailureDetector, WatchesMultiplePeers) {
  sim::Simulator sim(4);
  sim::Network net(sim);
  Target a(sim, net, 1), b(sim, net, 2), c(sim, net, 3);
  Watcher w(sim, net, 9);
  for (auto* t : {&a, &b, &c}) sim.add_process(t);
  sim.add_process(&w);
  for (auto* t : {&a, &b, &c}) w.monitor.watch(t->id());
  w.monitor.start();
  sim.run_until(100);
  sim.crash(b.id());
  sim.run_until(400);
  ASSERT_EQ(w.suspected.size(), 1u);
  EXPECT_EQ(w.suspected[0], b.id());
}

TEST(FailureDetector, IdleMonitorLetsTheSimulationQuiesce) {
  // Ticking pauses while nothing is watched, so an embedded monitor never
  // keeps the event queue alive — sim.run() must return — and resumes when
  // a new peer is watched.
  sim::Simulator sim(6);
  sim::Network net(sim);
  Target t(sim, net, 1);
  Watcher w(sim, net, 2);
  sim.add_process(&t);
  sim.add_process(&w);
  w.monitor.start();  // nothing watched: no ticking
  sim.run();
  EXPECT_TRUE(sim.idle());

  w.monitor.watch(t.id());  // resumes ticking
  sim.crash(t.id());
  sim.run_until(sim.now() + 400);
  ASSERT_EQ(w.suspected.size(), 1u);
  w.monitor.unwatch(t.id());
  sim.run();  // the dangling tick self-pauses; the queue drains
  EXPECT_TRUE(sim.idle());
}

/// Target that can be muted (pings answered or dropped on demand),
/// modelling a one-way-partitioned but live peer.
class MutableTarget : public sim::Process {
 public:
  MutableTarget(sim::Simulator& sim, sim::Network& net, ProcessId id)
      : Process(sim, id, "mutable"), responder_(net, id) {}
  void on_message(ProcessId from, const sim::AnyMessage& msg) override {
    if (!muted) responder_.handle(from, msg);
  }
  bool muted = false;

 private:
  Responder responder_;
};

TEST(FailureDetector, RecoveryCallbackFiresWhenSuspectAnswersAgain) {
  sim::Simulator sim(7);
  sim::Network net(sim);
  MutableTarget t(sim, net, 1);
  Watcher w(sim, net, 2);
  sim.add_process(&t);
  sim.add_process(&w);
  w.monitor.watch(t.id());
  w.monitor.start();
  t.muted = true;  // alive but silent: a false suspicion in the making
  sim.run_until(200);
  ASSERT_EQ(w.suspected.size(), 1u);
  EXPECT_TRUE(w.recovered.empty());
  t.muted = false;  // the "partition" heals
  sim.run_until(400);
  ASSERT_EQ(w.recovered.size(), 1u);
  EXPECT_EQ(w.recovered[0], t.id());
  EXPECT_FALSE(w.monitor.suspects(t.id()));
  // A second silence fires a fresh suspicion edge.
  t.muted = true;
  sim.run_until(700);
  EXPECT_EQ(w.suspected.size(), 2u);
}

TEST(FailureDetector, MultipleSubscribersAllNotified) {
  sim::Simulator sim(8);
  sim::Network net(sim);
  Target t(sim, net, 1);
  Watcher w(sim, net, 2);
  sim.add_process(&t);
  sim.add_process(&w);
  std::vector<ProcessId> second;
  w.monitor.subscribe({.on_suspect = [&](ProcessId p) { second.push_back(p); }});
  w.monitor.watch(t.id());
  w.monitor.start();
  sim.crash(t.id());
  sim.run_until(400);
  ASSERT_EQ(w.suspected.size(), 1u);
  ASSERT_EQ(second.size(), 1u);
  EXPECT_EQ(second[0], t.id());
}

TEST(FailureDetector, CallbackMayUnsubscribeItselfDuringDispatch) {
  // Regression: a suspicion callback that unregisters its own subscription
  // destroys the std::function being executed if dispatch iterates the live
  // registry (iterator/self invalidation).  The dispatcher must copy before
  // invoking and survive the erase; later edges must skip the gone
  // subscriber.
  sim::Simulator sim(11);
  sim::Network net(sim);
  MutableTarget t(sim, net, 1);
  Watcher w(sim, net, 2);
  sim.add_process(&t);
  sim.add_process(&w);
  std::vector<ProcessId> one_shot;
  PingMonitor::SubscriptionId sub = 0;
  sub = w.monitor.subscribe({.on_suspect = [&](ProcessId p) {
    one_shot.push_back(p);
    w.monitor.unsubscribe(sub);  // self-unsubscribe mid-dispatch
  }});
  w.monitor.watch(t.id());
  w.monitor.start();
  t.muted = true;
  sim.run_until(200);
  ASSERT_EQ(one_shot.size(), 1u);
  ASSERT_EQ(w.suspected.size(), 1u);  // the Watcher's own subscription ran too
  // A fresh suspicion edge: the one-shot subscriber must stay silent.
  t.muted = false;
  sim.run_until(400);
  t.muted = true;
  sim.run_until(700);
  EXPECT_EQ(w.suspected.size(), 2u);
  EXPECT_EQ(one_shot.size(), 1u);
}

TEST(FailureDetector, CallbackUnsubscribingAPeerSuppressesItMidDispatch) {
  // The Watcher's own subscription (id 1) fires first and tears down a
  // later subscription before the dispatcher reaches it: the torn-down
  // callback must NOT fire — its owner may already be destroyed.
  sim::Simulator sim(12);
  sim::Network net(sim);
  Target t(sim, net, 1);
  sim.add_process(&t);

  class TearingWatcher : public sim::Process {
   public:
    TearingWatcher(sim::Simulator& sim, sim::Network& net, ProcessId id)
        : Process(sim, id, "tearing"), monitor(sim, net, id) {
      monitor.subscribe({.on_suspect = [this](ProcessId) {
        ++first_fired;
        monitor.unsubscribe(second_sub);
      }});
      second_sub = monitor.subscribe(
          {.on_suspect = [this](ProcessId) { ++second_fired; }});
    }
    void on_message(ProcessId from, const sim::AnyMessage& msg) override {
      monitor.handle(from, msg);
    }
    PingMonitor monitor;
    PingMonitor::SubscriptionId second_sub = 0;
    int first_fired = 0;
    int second_fired = 0;
  };
  TearingWatcher w(sim, net, 2);
  sim.add_process(&w);
  w.monitor.watch(t.id());
  w.monitor.start();
  sim.crash(t.id());
  sim.run_until(400);
  EXPECT_GE(w.first_fired, 1);
  EXPECT_EQ(w.second_fired, 0) << "unsubscribed-mid-dispatch callback fired";
}

TEST(FailureDetector, SubscriberAddedDuringDispatchMissesTheInFlightEdge) {
  sim::Simulator sim(13);
  sim::Network net(sim);
  MutableTarget t(sim, net, 1);
  Watcher w(sim, net, 2);
  sim.add_process(&t);
  sim.add_process(&w);
  std::vector<ProcessId> late;
  bool added = false;
  w.monitor.subscribe({.on_suspect = [&](ProcessId) {
    if (added) return;
    added = true;
    w.monitor.subscribe({.on_suspect = [&](ProcessId p) { late.push_back(p); }});
  }});
  w.monitor.watch(t.id());
  w.monitor.start();
  t.muted = true;
  sim.run_until(200);
  EXPECT_EQ(w.suspected.size(), 1u);
  EXPECT_TRUE(late.empty()) << "mid-dispatch subscriber saw the current edge";
  t.muted = false;
  sim.run_until(400);
  t.muted = true;
  sim.run_until(700);
  EXPECT_EQ(late.size(), 1u);  // subsequent edges reach it
}

TEST(FailureDetector, UnsubscribeStopsNotifications) {
  sim::Simulator sim(9);
  sim::Network net(sim);
  Target t(sim, net, 1);
  Watcher w(sim, net, 2);
  sim.add_process(&t);
  sim.add_process(&w);
  std::vector<ProcessId> second;
  auto sub = w.monitor.subscribe({.on_suspect = [&](ProcessId p) { second.push_back(p); }});
  w.monitor.unsubscribe(sub);
  w.monitor.watch(t.id());
  w.monitor.start();
  sim.crash(t.id());
  sim.run_until(400);
  EXPECT_EQ(w.suspected.size(), 1u);  // the Watcher's own subscription stays
  EXPECT_TRUE(second.empty());
}

TEST(FailureDetector, EnsureWatchedPreservesSilenceWindow) {
  sim::Simulator sim(10);
  sim::Network net(sim);
  Target t(sim, net, 1);
  Watcher w(sim, net, 2);
  sim.add_process(&t);
  sim.add_process(&w);
  w.monitor.watch(t.id());
  w.monitor.start();
  sim.run_until(50);
  sim.crash(t.id());
  sim.run_until(200);
  ASSERT_TRUE(w.monitor.suspects(t.id()));
  // ensure_watched must not reset the accumulated suspicion the way a
  // plain watch() would, and reports it so callers can act immediately.
  EXPECT_TRUE(w.monitor.ensure_watched(t.id()));
  EXPECT_TRUE(w.monitor.suspects(t.id()));
  // For an unwatched peer it starts watching and reports no suspicion.
  EXPECT_FALSE(w.monitor.ensure_watched(777));
  EXPECT_TRUE(w.monitor.watching(777));
}

TEST(FailureDetector, UnwatchStopsSuspicion) {
  sim::Simulator sim(5);
  sim::Network net(sim);
  Target t(sim, net, 1);
  Watcher w(sim, net, 2);
  sim.add_process(&t);
  sim.add_process(&w);
  w.monitor.watch(t.id());
  w.monitor.start();
  sim.run_until(50);
  w.monitor.unwatch(t.id());
  sim.crash(t.id());
  sim.run_until(500);
  EXPECT_TRUE(w.suspected.empty());
}

}  // namespace
}  // namespace ratc::fd
