// Termination-targeted nemesis schedules: instead of the generic fault
// sweeps (harness_fault_injection_test.cc), these strikes are aimed at the
// classical 2PC vulnerability — the coordinator is crashed in the window
// between prepare-acks and the decision broadcast of an in-flight
// transaction, then the shard heals by electing a survivor.  Swept across
// all four rungs of the comparison ladder (classical 2PC, cooperative-
// termination 2PC, Paxos Commit, and the paper protocol) on identical
// per-seed strike timings, plus a false-suspicion partition schedule
// against the cooperative variant (termination racing a live coordinator
// must stay safe).
//
// Failures print one RunResult::summary() line per seed — the reproduction
// recipe (tests/README.md).
#include <gtest/gtest.h>

#include <cstdio>
#include <map>
#include <set>
#include <type_traits>

#include "harness/nemesis.h"
#include "harness/sweep.h"
#include "tcs/shard_map.h"

namespace ratc::harness {
namespace {

using tcs::Decision;
using tcs::Payload;

const int kSeeds = sweep_seed_count(20);
constexpr std::uint64_t kFirstSeed = 1;

/// Crashes the machinery around transaction p right in its decision window.
/// Baseline and Paxos Commit stacks: the 2PC coordinator (the leader of p's
/// first shard) is crashed and a survivor is elected.  Commit stack: a
/// member of that shard is crashed and the shard reconfigures — the paper's
/// recovery lever.
template <typename Harness>
void strike_decision_window(Harness& h, const Payload& p,
                            std::set<ShardId>& struck, Rng& fault_rng) {
  tcs::ShardMap map(h.num_shards());
  std::vector<ShardId> parts = map.shards_of(p);
  if (parts.empty()) return;
  ShardId s = parts.front();
  if constexpr (std::is_base_of_v<store::BaselineHarness, Harness> ||
                std::is_same_v<store::PaxosCommitHarness, Harness>) {
    // One strike per shard: 2f+1 = 3 tolerates a single permanent crash.
    if (struck.count(s) > 0) return;
    auto& cluster = h.cluster();
    ProcessId coordinator = cluster.leader_server(s);
    if (h.sim().crashed(coordinator)) return;
    struck.insert(s);
    cluster.crash_server(coordinator);
    for (ProcessId m : cluster.shard_servers(s)) {
      if (!h.sim().crashed(m)) {
        cluster.elect_leader(s, m);  // heal: a survivor takes over
        break;
      }
    }
  } else {
    h.crash_and_reconfigure(fault_rng, s);
  }
}

/// One seeded run: the shared contended workload with three decision-window
/// strikes at fixed transaction indices; strike offsets (2..8 ticks after
/// submission) sample the whole 2PC round, from mid-prepare to
/// decision-broadcast.  Checks mirror the generic FaultDriver: stack
/// verifier, linearization DFS when small enough, and the workload's
/// decided-fraction floor.
template <typename Harness>
RunResult run_decision_window_crashes(std::uint64_t seed,
                                      const typename Harness::Workload& w) {
  Harness h(seed, w);
  Rng workload_rng(seed ^ Harness::kWorkloadSalt);
  Rng fault_rng(seed ^ 0xdec15107ULL);
  store::ContendedPayloadGen gen(workload_rng, w.object_universe);
  std::map<TxnId, Payload> payloads;
  h.set_on_decision([&](TxnId t, Decision d) {
    if (d != Decision::kCommit) return;
    auto it = payloads.find(t);
    if (it != payloads.end()) gen.observe_commit(it->second);
  });

  RunResult r;
  r.seed = seed;
  std::set<ShardId> struck;
  const int q = w.total_txns / 4;
  for (int i = 0; i < w.total_txns; ++i) {
    Payload p = gen.next();
    TxnId t = h.next_txn_id();
    payloads[t] = p;
    bool submitted = h.submit(workload_rng, t, p);
    if (!submitted) payloads.erase(t);
    if (submitted && (i == q || i == 2 * q || i == 3 * q)) {
      // 4..8 ticks after submission: prepare-acks are back (or nearly so)
      // and the decision is being replicated but not yet broadcast — the
      // window the termination protocol exists for.
      h.sim().run_until(h.sim().now() + fault_rng.range(4, 8));
      strike_decision_window(h, p, struck, fault_rng);
    }
    h.sim().run_until(h.sim().now() + workload_rng.range(0, Harness::kPaceHi));
  }
  h.drain(w.drain, workload_rng);

  r.submitted = payloads.size();
  apply_end_of_run_checks(r, h, w);
  return r;
}

double committed_fraction(const SweepResult& r) {
  return static_cast<double>(r.total_committed) /
         static_cast<double>(r.total_submitted);
}
double decided_fraction(const SweepResult& r) {
  return static_cast<double>(r.total_decided) /
         static_cast<double>(r.total_submitted);
}

TEST(TerminationNemesis, DecisionWindowCoordinatorCrashesFourWay) {
  // The aimed version of BaselineVsCommit: every strike kills a coordinator
  // mid-round.  Classical 2PC strands the in-flight backlog and poisons its
  // objects; cooperative termination recovers every transaction whose peers
  // decided or never prepared (only the all-prepared window stays blocked);
  // Paxos Commit recovers even the all-prepared window, because the votes
  // themselves are replicated facts; the paper protocol recovers everything
  // by reconfiguring.
  store::StackWorkload shared;
  shared.total_txns = 100;
  shared.min_decided_fraction = 0.0;  // blocking is exactly what is measured

  BaselineWorkloadOptions bw;
  bw.total_txns = shared.total_txns;
  bw.min_decided_fraction = 0.0;
  SweepResult classical =
      parallel_sweep_seeds(kFirstSeed, kSeeds, [&](std::uint64_t seed) {
        return run_decision_window_crashes<store::BaselineHarness>(seed, bw);
      });
  EXPECT_TRUE(classical.ok()) << classical.report();

  BaselineCoopWorkloadOptions pw;
  pw.total_txns = shared.total_txns;
  pw.min_decided_fraction = 0.0;
  SweepResult coop =
      parallel_sweep_seeds(kFirstSeed, kSeeds, [&](std::uint64_t seed) {
        return run_decision_window_crashes<store::BaselineCoopHarness>(seed, pw);
      });
  EXPECT_TRUE(coop.ok()) << coop.report();

  PaxosCommitWorkloadOptions xw;
  xw.total_txns = shared.total_txns;
  xw.min_decided_fraction = 0.9;  // non-blocking: must recover the backlog
  SweepResult pc =
      parallel_sweep_seeds(kFirstSeed, kSeeds, [&](std::uint64_t seed) {
        return run_decision_window_crashes<store::PaxosCommitHarness>(seed, xw);
      });
  EXPECT_TRUE(pc.ok()) << pc.report();

  CommitWorkloadOptions cw;
  cw.total_txns = shared.total_txns;
  cw.min_decided_fraction = 0.9;  // the paper protocol must recover
  SweepResult commit =
      parallel_sweep_seeds(kFirstSeed, kSeeds, [&](std::uint64_t seed) {
        return run_decision_window_crashes<store::CommitHarness>(seed, cw);
      });
  EXPECT_TRUE(commit.ok()) << commit.report();

  std::printf("decision-window strikes: classical decided=%.4f committed=%.4f | "
              "coop decided=%.4f committed=%.4f blocked=%llu | "
              "paxos-commit decided=%.4f committed=%.4f blocked=%llu | "
              "commit decided=%.4f committed=%.4f\n",
              decided_fraction(classical), committed_fraction(classical),
              decided_fraction(coop), committed_fraction(coop),
              static_cast<unsigned long long>(coop.total_term_blocked),
              decided_fraction(pc), committed_fraction(pc),
              static_cast<unsigned long long>(pc.total_term_blocked),
              decided_fraction(commit), committed_fraction(commit));

  // Cooperative termination recovers most of the stranded backlog: the
  // still-undecided remainder must be well under the classical strawman's.
  double classical_blocked = 1.0 - decided_fraction(classical);
  double coop_blocked = 1.0 - decided_fraction(coop);
  EXPECT_GT(decided_fraction(coop), decided_fraction(classical));
  EXPECT_LT(coop_blocked, 0.7 * classical_blocked);
  // Unpoisoning the resolvable objects lifts the committed fraction...
  EXPECT_GT(committed_fraction(coop), committed_fraction(classical) + 0.01);
  // ...but the all-prepared window keeps it at or below Paxos Commit and
  // the paper protocol.
  EXPECT_LE(committed_fraction(coop), committed_fraction(pc) + 0.02);
  EXPECT_LE(committed_fraction(coop), committed_fraction(commit) + 0.02);
  // The ladder's pivot: cooperative termination hits the all-prepared wall
  // on these schedules (give-ups > 0), while Paxos Commit — votes chosen by
  // per-shard Paxos instances — never blocks at all.
  EXPECT_GT(coop.total_term_blocked, 0u);
  EXPECT_EQ(pc.total_term_blocked, 0u);
  // Paxos Commit recovers essentially the whole backlog, like the paper
  // protocol does.
  EXPECT_GT(decided_fraction(pc), decided_fraction(coop));
}

TEST(TerminationNemesis, FalseSuspicionPartitionsStaySafe) {
  // Partition coordinator machines (held-back, so eventual delivery holds)
  // long enough for the failure detector to falsely suspect a *live*
  // coordinator, then heal.  Termination rounds race the coordinator's own
  // decisions; the tombstone/log-order arbitration must keep every replica
  // and client in agreement.
  BaselineCoopWorkloadOptions w;
  w.total_txns = 100;
  w.min_decided_fraction = 0.4;  // a partitioned leader stalls its backlog
  SweepResult sweep =
      parallel_sweep_seeds(kFirstSeed, kSeeds, [&](std::uint64_t seed) {
        store::BaselineCoopHarness h(seed, w);
        Nemesis nemesis(h.sim(), seed ^ 0x5a5aULL);
        h.install_fault_injector(&nemesis);
        Rng workload_rng(seed ^ store::BaselineCoopHarness::kWorkloadSalt);
        Rng fault_rng(seed ^ 0xfa15e505ULL);
        store::ContendedPayloadGen gen(workload_rng, w.object_universe);
        std::map<TxnId, Payload> payloads;
        h.set_on_decision([&](TxnId t, Decision d) {
          if (d != Decision::kCommit) return;
          auto it = payloads.find(t);
          if (it != payloads.end()) gen.observe_commit(it->second);
        });
        RunResult r;
        r.seed = seed;
        for (int i = 0; i < w.total_txns; ++i) {
          Payload p = gen.next();
          TxnId t = h.next_txn_id();
          payloads[t] = p;
          if (!h.submit(workload_rng, t, p)) payloads.erase(t);
          if (i == w.total_txns / 3 || i == (2 * w.total_txns) / 3) {
            // Cut off a random shard's leader machine well past the
            // suspicion threshold, without crashing anything.
            ShardId s = static_cast<ShardId>(fault_rng.below(h.num_shards()));
            ProcessId leader = h.cluster().leader_server(s);
            nemesis.isolate({leader, h.cluster().paxos_twin(leader)},
                            /*len=*/150, /*lossy=*/false);
          }
          h.sim().run_until(h.sim().now() +
                            workload_rng.range(0, store::BaselineCoopHarness::kPaceHi));
        }
        h.sim().run_until(h.sim().now() + w.drain / 2);
        nemesis.clear();
        h.drain(w.drain, workload_rng);
        r.submitted = payloads.size();
        r.held = nemesis.held_at_partition();
        apply_end_of_run_checks(r, h, w);
        return r;
      });
  EXPECT_TRUE(sweep.ok()) << sweep.report();
}

}  // namespace
}  // namespace ratc::harness
