// RDMA fabric model and failure-free behaviour of the RDMA-based protocol
// (Fig. 7), including the latency property that motivates it: coordinators
// act on NIC acknowledgements, so follower CPUs are off the critical path.
#include <gtest/gtest.h>

#include "checker/linearization.h"
#include "rdma/cluster.h"

namespace ratc::rdma {
namespace {

using tcs::Decision;
using tcs::Payload;

Payload make_payload(std::vector<ObjectId> reads, std::vector<ObjectId> writes,
                     Version read_version, Version commit_version) {
  Payload p;
  for (ObjectId o : reads) p.reads.push_back({o, read_version});
  for (ObjectId o : writes) p.writes.push_back({o, static_cast<Value>(o)});
  p.commit_version = commit_version;
  return p;
}

// --- Fabric model -----------------------------------------------------------

struct Note {
  static constexpr const char* kName = "NOTE";
  int value = 0;
};

struct FabricHarness {
  explicit FabricHarness(std::uint64_t seed) : sim(seed), fabric(sim) {}

  void attach(ProcessId p) {
    fabric.attach(
        p,
        [this, p](ProcessId from, const sim::AnyMessage& m) {
          delivered[p].push_back({from, m.as<Note>()->value});
        },
        [this, p](const RdmaAck& ack) { acks[p].push_back(ack.dest); });
  }

  sim::Simulator sim;
  Fabric fabric;
  std::map<ProcessId, std::vector<std::pair<ProcessId, int>>> delivered;
  std::map<ProcessId, std::vector<ProcessId>> acks;
};

TEST(Fabric, WriteLandsAcksAndDelivers) {
  FabricHarness h(1);
  h.attach(1);
  h.attach(2);
  h.fabric.open(2, 1);  // 2 grants 1
  h.fabric.send_rdma(1, 2, sim::AnyMessage(Note{7}));
  h.sim.run();
  ASSERT_EQ(h.acks[1].size(), 1u);     // sender NIC completion
  EXPECT_EQ(h.acks[1][0], 2u);
  ASSERT_EQ(h.delivered[2].size(), 1u);  // receiver CPU poll
  EXPECT_EQ(h.delivered[2][0].second, 7);
  EXPECT_EQ(h.fabric.writes_rejected(), 0u);
}

TEST(Fabric, AckPrecedesDelivery) {
  // The NIC ack is generated without receiver CPU involvement: the sender
  // learns of the write before (or at the same tick as) the receiver's CPU.
  FabricHarness h(2);
  h.attach(1);
  h.attach(2);
  h.fabric.open(2, 1);
  Time ack_time = 0, deliver_time = 0;
  h.fabric.attach(
      1, [](ProcessId, const sim::AnyMessage&) {},
      [&](const RdmaAck&) { ack_time = h.sim.now(); });
  h.fabric.attach(
      2,
      [&](ProcessId, const sim::AnyMessage&) { deliver_time = h.sim.now(); },
      [](const RdmaAck&) {});
  h.fabric.send_rdma(1, 2, sim::AnyMessage(Note{1}));
  h.sim.run();
  EXPECT_GT(ack_time, 0u);
  EXPECT_GT(deliver_time, 0u);
  EXPECT_LE(ack_time, deliver_time);
}

TEST(Fabric, ClosedConnectionRejectsWrite) {
  FabricHarness h(3);
  h.attach(1);
  h.attach(2);
  h.fabric.send_rdma(1, 2, sim::AnyMessage(Note{1}));  // never opened
  h.sim.run();
  EXPECT_TRUE(h.acks[1].empty());
  EXPECT_TRUE(h.delivered[2].empty());
  EXPECT_EQ(h.fabric.writes_rejected(), 1u);
}

TEST(Fabric, CloseInvalidatesInFlightWrites) {
  FabricHarness h(4);
  h.attach(1);
  h.attach(2);
  h.fabric.open(2, 1);
  h.fabric.send_rdma(1, 2, sim::AnyMessage(Note{1}));
  h.fabric.close(2, 1);  // before the write lands
  h.sim.run();
  EXPECT_TRUE(h.acks[1].empty());
  EXPECT_EQ(h.fabric.writes_rejected(), 1u);
}

TEST(Fabric, ReopenDoesNotResurrectOldWrites) {
  // A write issued against a closed-then-reopened connection still fails:
  // queue-pair incarnations (what makes Fig. 4b sound).
  FabricHarness h(5);
  h.attach(1);
  h.attach(2);
  h.fabric.open(2, 1);
  h.fabric.send_rdma(1, 2, sim::AnyMessage(Note{1}));
  h.fabric.close(2, 1);
  h.fabric.open(2, 1);  // reopened before landing
  h.sim.run();
  EXPECT_TRUE(h.acks[1].empty());
  EXPECT_EQ(h.fabric.writes_rejected(), 1u);
  // A fresh write on the new incarnation works.
  h.fabric.send_rdma(1, 2, sim::AnyMessage(Note{2}));
  h.sim.run();
  EXPECT_EQ(h.acks[1].size(), 1u);
}

TEST(Fabric, FlushDeliversAckedMessagesSynchronously) {
  FabricHarness h(6);
  h.attach(1);
  h.attach(2);
  h.fabric.open(2, 1);
  h.fabric.send_rdma(1, 2, sim::AnyMessage(Note{1}));
  h.fabric.send_rdma(1, 2, sim::AnyMessage(Note{2}));
  // Run just until the writes landed (ack scheduled) but not polled.
  h.sim.run_until(1);
  EXPECT_TRUE(h.delivered[2].empty());
  h.fabric.flush(2);
  ASSERT_EQ(h.delivered[2].size(), 2u);
  EXPECT_EQ(h.delivered[2][0].second, 1);
  EXPECT_EQ(h.delivered[2][1].second, 2);
  // The later poll events find an empty buffer; no duplicates.
  h.sim.run();
  EXPECT_EQ(h.delivered[2].size(), 2u);
}

TEST(Fabric, FifoPerChannel) {
  FabricHarness h(7);
  h.attach(1);
  h.attach(2);
  h.fabric.open(2, 1);
  for (int i = 0; i < 50; ++i) h.fabric.send_rdma(1, 2, sim::AnyMessage(Note{i}));
  h.sim.run();
  ASSERT_EQ(h.delivered[2].size(), 50u);
  for (int i = 0; i < 50; ++i) EXPECT_EQ(h.delivered[2][static_cast<size_t>(i)].second, i);
}

TEST(Fabric, CrashedReceiverRejects) {
  FabricHarness h(8);
  h.attach(1);
  h.attach(2);
  h.fabric.open(2, 1);
  h.sim.crash(2);
  h.fabric.send_rdma(1, 2, sim::AnyMessage(Note{1}));
  h.sim.run();
  EXPECT_TRUE(h.acks[1].empty());
  EXPECT_EQ(h.fabric.writes_rejected(), 1u);
}

// --- RDMA protocol, failure-free ------------------------------------------------

TEST(RdmaProtocol, SingleShardCommit) {
  Cluster cluster({.seed = 1, .num_shards = 1, .shard_size = 2});
  Client& client = cluster.add_client();
  TxnId t = cluster.next_txn_id();
  client.certify_colocated(cluster.replica(0, 1), t, make_payload({0}, {0}, 0, 1));
  cluster.sim().run();
  EXPECT_EQ(client.decision(t), Decision::kCommit);
  EXPECT_EQ(cluster.verify(), "");
}

TEST(RdmaProtocol, CrossShardCommitReachesAllReplicas) {
  Cluster cluster({.seed = 2, .num_shards = 3, .shard_size = 2});
  Client& client = cluster.add_client();
  TxnId t = cluster.next_txn_id();
  client.certify_colocated(cluster.replica(0, 1), t,
                           make_payload({0, 1, 2}, {0, 1}, 0, 1));
  cluster.sim().run();
  ASSERT_EQ(client.decision(t), Decision::kCommit);
  for (ShardId s = 0; s < 3; ++s) {
    for (std::size_t i = 0; i < 2; ++i) {
      const Replica& r = cluster.replica(s, i);
      Slot k = r.log().slot_of(t);
      ASSERT_NE(k, kNoSlot);
      EXPECT_EQ(r.log().find(k)->dec, Decision::kCommit);
    }
  }
  EXPECT_EQ(cluster.verify(), "");
}

TEST(RdmaProtocol, FourDelayLatencyLikeMessagePassing) {
  // The coordinator acts on the NIC ack: same 4-delay critical path as the
  // message-passing protocol for a co-located client.
  Cluster cluster({.seed = 3, .num_shards = 2, .shard_size = 2});
  Client& client = cluster.add_client();
  TxnId t = cluster.next_txn_id();
  client.certify_colocated(cluster.replica(0, 1), t, make_payload({0, 1}, {0}, 0, 1));
  cluster.sim().run();
  ASSERT_TRUE(client.decided(t));
  EXPECT_EQ(client.latency(t), 4u);
  EXPECT_EQ(cluster.verify(), "");
}

TEST(RdmaProtocol, ConflictsAbort) {
  Cluster cluster({.seed = 4, .num_shards = 1, .shard_size = 2});
  Client& client = cluster.add_client();
  TxnId t1 = cluster.next_txn_id(), t2 = cluster.next_txn_id();
  client.certify_colocated(cluster.replica(0, 1), t1, make_payload({0}, {0}, 0, 1));
  client.certify_colocated(cluster.replica(0, 1), t2, make_payload({0}, {0}, 0, 1));
  cluster.sim().run();
  EXPECT_EQ(client.decision(t1), Decision::kCommit);
  EXPECT_EQ(client.decision(t2), Decision::kAbort);
  auto lin = checker::check_linearization(cluster.history(), cluster.certifier());
  EXPECT_TRUE(lin.ok) << lin.error;
}

TEST(RdmaProtocol, ManyTransactions) {
  Cluster cluster({.seed = 5, .num_shards = 3, .shard_size = 2});
  Client& client = cluster.add_client();
  std::vector<TxnId> txns;
  for (int i = 0; i < 50; ++i) {
    TxnId t = cluster.next_txn_id();
    txns.push_back(t);
    ObjectId a = static_cast<ObjectId>(3 * i), b = static_cast<ObjectId>(3 * i + 1);
    client.certify_colocated(cluster.replica(static_cast<ShardId>(i % 3), 1), t,
                             make_payload({a, b}, {a}, 0, 1));
  }
  cluster.sim().run();
  for (TxnId t : txns) EXPECT_EQ(client.decision(t), Decision::kCommit);
  EXPECT_EQ(cluster.verify(), "");
}

TEST(RdmaProtocol, GlobalReconfigurationRestoresService) {
  Cluster cluster({.seed = 6, .num_shards = 2, .shard_size = 2});
  Client& client = cluster.add_client();
  TxnId t1 = cluster.next_txn_id();
  client.certify_colocated(cluster.replica(0, 1), t1, make_payload({0, 1}, {0}, 0, 1));
  cluster.sim().run();
  ASSERT_EQ(client.decision(t1), Decision::kCommit);

  // Kill shard 0's leader; the surviving follower reconfigures GLOBALLY.
  cluster.crash(cluster.leader_of(0));
  cluster.replica(0, 1).reconfigure();
  ASSERT_TRUE(cluster.await_active_epoch(2));

  // All shards moved to epoch 2 (the paper's "price of RDMA": the whole
  // system reconfigures, not just the affected shard).
  for (ShardId s = 0; s < 2; ++s) {
    configsvc::ShardConfig cfg = cluster.current_config(s);
    EXPECT_EQ(cfg.epoch, 2u) << "shard " << s;
    for (ProcessId m : cfg.members) {
      EXPECT_EQ(cluster.replica_by_pid(m).epoch(), 2u);
    }
  }

  // The committed transaction survived; new certifications work.
  Replica& new_leader0 = cluster.replica_by_pid(cluster.leader_of(0));
  Slot k = new_leader0.log().slot_of(t1);
  ASSERT_NE(k, kNoSlot);
  EXPECT_EQ(new_leader0.log().find(k)->dec, Decision::kCommit);

  TxnId t2 = cluster.next_txn_id();
  client.certify_colocated(cluster.replica_by_pid(cluster.leader_of(1)), t2,
                           make_payload({2, 3}, {2}, 0, 1));
  cluster.sim().run();
  EXPECT_EQ(client.decision(t2), Decision::kCommit);
  EXPECT_EQ(cluster.verify(), "");
}

TEST(RdmaProtocol, RetryAfterCoordinatorCrashAndReconfiguration) {
  Cluster cluster({.seed = 7, .num_shards = 2, .shard_size = 2});
  Client& client = cluster.add_client();
  // Shard 1's follower coordinates a transaction and dies mid-flight.
  Replica& doomed = cluster.replica(1, 1);
  TxnId t = cluster.next_txn_id();
  client.certify_remote(doomed.id(), t, make_payload({0, 1}, {0, 1}, 0, 1));
  cluster.sim().run_until(2);  // leaders prepared
  ASSERT_NE(cluster.replica(0, 0).log().slot_of(t), kNoSlot);
  cluster.crash(doomed.id());
  cluster.sim().run();
  EXPECT_FALSE(client.decided(t));

  // The dead process was also a shard member, so the system reconfigures
  // (globally) before the transaction can be recovered.
  cluster.replica(1, 0).reconfigure();
  ASSERT_TRUE(cluster.await_active_epoch(2));

  // Any replica that has t prepared can finish the protocol.
  Replica& leader0 = cluster.replica_by_pid(cluster.leader_of(0));
  Slot k = leader0.log().slot_of(t);
  ASSERT_NE(k, kNoSlot);
  leader0.retry(k);
  cluster.sim().run();
  ASSERT_TRUE(client.decided(t));
  EXPECT_EQ(cluster.verify(), "");
}

}  // namespace
}  // namespace ratc::rdma
