// Why NEW_CONFIG starts with flush() (Fig. 8 line 142): "this guarantees
// that all the messages that have been acknowledged as having reached pl's
// memory will be replicated to followers in NEW_STATE messages; this is
// necessary since transaction coordinators may have already externalized
// decisions taken based on these acknowledgements."
//
// Scenario: a coordinator's ACCEPT and DECISION writes land in follower
// p101's NIC buffer (acknowledged => the coordinator externalizes COMMIT to
// the client), but p101's CPU has not polled them yet (slow poller).  The
// leader dies and p101 becomes the new leader.
//  * With the paper's flush: the buffered writes surface before the state
//    transfer; the committed transaction survives; a conflicting successor
//    aborts.  Everything consistent.
//  * With the flush ablated: the externalized transaction vanishes, a
//    conflicting successor commits against the same versions, and the
//    committed history is no longer linearizable — caught by the checker.
#include <gtest/gtest.h>

#include "checker/conflict_graph.h"
#include "checker/linearization.h"
#include "rdma/cluster.h"

namespace ratc::rdma {
namespace {

using tcs::Decision;
using tcs::Payload;

Payload rmw_object0() {
  Payload p;
  p.reads = {{0, 0}};
  p.writes = {{0, 7}};
  p.commit_version = 1;
  return p;
}

struct Outcome {
  Decision first = Decision::kAbort;
  Decision second = Decision::kAbort;
  bool survived = false;       ///< t1 present at the new leader
  bool linearizable = false;
  bool version_unique = false;
};

Outcome run_scenario(bool ablate_flush) {
  Cluster::Options opt;
  opt.seed = 5;
  opt.num_shards = 2;
  opt.shard_size = 2;
  opt.poll_delay = 50;  // the CPU lags far behind the NIC
  opt.ablate_flush = ablate_flush;
  Cluster cluster(opt);
  Client& client = cluster.add_client();

  // t1 on shard 0, coordinated from shard 1: the ACCEPT/DECISION writes to
  // p101 land (and are acknowledged) quickly, but p101 polls them at +50.
  Replica& coordinator = cluster.replica(1, 0);
  TxnId t1 = cluster.next_txn_id();
  client.certify_remote(coordinator.id(), t1, rmw_object0());
  bool decided = cluster.sim().run_until_pred([&] { return client.decided(t1); });
  EXPECT_TRUE(decided);
  Outcome out;
  out.first = *client.decision(t1);

  // Before p101's CPU polls, the leader of shard 0 dies and p101 takes
  // over via a global reconfiguration.
  Time now = cluster.sim().now();
  EXPECT_LT(now, 20u);  // still within the poll window
  cluster.crash(cluster.replica(0, 0).id());
  cluster.replica(0, 1).reconfigure();
  EXPECT_TRUE(cluster.await_active_epoch(2));

  Replica& new_leader = cluster.replica(0, 1);
  out.survived = new_leader.log().slot_of(t1) != kNoSlot;

  // t2 conflicts with t1 (same read version, same written object).
  TxnId t2 = cluster.next_txn_id();
  client.certify_colocated(cluster.replica_by_pid(cluster.leader_of(1)), t2,
                           rmw_object0());
  cluster.sim().run_until_pred([&] { return client.decided(t2); });
  out.second = client.decision(t2).value_or(Decision::kAbort);

  auto lin = checker::check_linearization(cluster.history(), cluster.certifier());
  out.linearizable = lin.ok;
  auto cg = checker::check_conflict_graph(cluster.history());
  out.version_unique = cg.ok;
  return out;
}

TEST(RdmaFlush, FlushPreservesExternalizedDecisions) {
  Outcome out = run_scenario(/*ablate_flush=*/false);
  EXPECT_EQ(out.first, Decision::kCommit);
  EXPECT_TRUE(out.survived);  // the buffered write surfaced at NEW_CONFIG
  EXPECT_EQ(out.second, Decision::kAbort);  // conflict correctly detected
  EXPECT_TRUE(out.linearizable);
  EXPECT_TRUE(out.version_unique);
}

TEST(RdmaFlush, AblatingFlushBreaksLinearizability) {
  Outcome out = run_scenario(/*ablate_flush=*/true);
  EXPECT_EQ(out.first, Decision::kCommit);  // externalized before the crash
  EXPECT_FALSE(out.survived);               // ...but dropped by the transfer
  EXPECT_EQ(out.second, Decision::kCommit); // conflict invisible -> commits
  // Both committed transactions read version 0 of object 0 and wrote it:
  // the committed projection has no legal linearization.
  EXPECT_FALSE(out.linearizable);
  EXPECT_FALSE(out.version_unique);
}

}  // namespace
}  // namespace ratc::rdma
