// Seeded fault-injection sweeps for the Paxos Commit stack
// (store::PaxosCommitHarness), mirroring the baseline suites in
// harness_fault_injection_test.cc: crash/failover, partition shapes, lossy
// links, plus the batching/read-mix knobs and the same-seed-same-trace
// determinism guarantee.  The decided-fraction floors are calibrated
// against a 50-seed census (RATC_SWEEP_SEEDS=50) per schedule shape; the
// worst-seed numbers are quoted at each floor.
//
// The stack's distinguishing assertion rides on the termination counters
// surfaced through RunResult: across every sweep, `term_blocked` must stay
// 0 on crash-only schedules — vote recovery always terminates because the
// votes are chosen Paxos values (pc/votes.h), never an unreadable
// coordinator's volatile memory.
#include <gtest/gtest.h>

#include <atomic>
#include <set>

#include "harness/schedule.h"
#include "harness/sweep.h"

namespace ratc::harness {
namespace {

constexpr std::uint64_t kFirstSeed = 1;
const int kSweepSeeds = sweep_seed_count(24);
const int kSmallSweepSeeds = sweep_seed_count(20);

Schedule schedule_for(std::uint64_t seed, const ScheduleOptions& opt) {
  Rng rng(seed * 0x9e3779b97f4a7c15ULL + 0x5eedULL);
  return generate_schedule(rng, opt);
}

TEST(PaxosCommitFaultSweep, CrashAndFailoverSchedules) {
  ScheduleOptions opt;
  opt.crashes = 2;
  opt.reconfigures = 1;  // leadership handover, same lever as the baseline
  opt.partitions = 0;
  opt.delay_windows = 1;
  PaxosCommitWorkloadOptions w;
  w.total_txns = 120;
  // 50-seed census (RATC_SWEEP_SEEDS=50): worst decided=0.9583 at seed 4.
  w.min_decided_fraction = 0.9;
  SweepResult sweep =
      parallel_sweep_seeds(kFirstSeed, kSweepSeeds, [&](std::uint64_t seed) {
        return run_paxos_commit_workload(seed, w, schedule_for(seed, opt));
      });
  EXPECT_TRUE(sweep.ok()) << sweep.report();
  // Crash-only schedules can never block vote recovery: every queried shard
  // either answers its chosen vote or forces its instance closed.
  EXPECT_EQ(sweep.total_term_blocked, 0u);
}

TEST(PaxosCommitFaultSweep, PartitionSchedulesIncludingNewShapes) {
  // Held-back partitions of all three shapes.  Eventual delivery holds; a
  // partitioned leader stalls both its Paxos group and the vote-query
  // rounds aimed at it, so the floor sits below the crash sweep's.  The
  // bounded-rounds give-up path (the only way `blocked` can grow on this
  // stack) is legitimately reachable while a peer shard is unreachable.
  ScheduleOptions opt;
  opt.crashes = 1;
  opt.reconfigures = 1;
  opt.partitions = 1;
  opt.majority_splits = 1;
  opt.one_way_partitions = 1;
  opt.clock_skews = 1;
  PaxosCommitWorkloadOptions w;
  w.total_txns = 120;
  // 50-seed census (RATC_SWEEP_SEEDS=50): worst decided=0.7917 at seed 21.
  w.min_decided_fraction = 0.7;
  SweepResult sweep =
      parallel_sweep_seeds(kFirstSeed, kSweepSeeds, [&](std::uint64_t seed) {
        return run_paxos_commit_workload(seed, w, schedule_for(seed, opt));
      });
  EXPECT_TRUE(sweep.ok()) << sweep.report();
}

TEST(PaxosCommitFaultSweep, LossySchedulesAreSafe) {
  // Arbitrary loss can eat prepares, votes, queries and answers alike; the
  // bounded query rounds must give up cleanly and every safety check hold
  // (replica agreement, atomic decisions, snapshot consistency).
  ScheduleOptions opt;
  opt.crashes = 1;
  opt.partitions = 1;
  opt.lossy_partitions = true;
  opt.drop_windows = 2;
  opt.drop_probability = 0.08;
  opt.delay_windows = 1;
  PaxosCommitWorkloadOptions w;
  w.total_txns = 100;
  // Liveness is deliberately not asserted under arbitrary loss; for the
  // record, the 50-seed census still saw worst decided=0.71 (seed 11), and
  // loss is the only schedule family where `blocked` grows (295 give-up
  // rounds across the census — all clean, no safety problems).
  w.min_decided_fraction = 0.0;
  SweepResult sweep =
      parallel_sweep_seeds(kFirstSeed, kSmallSweepSeeds, [&](std::uint64_t seed) {
        return run_paxos_commit_workload(seed, w, schedule_for(seed, opt));
      });
  EXPECT_TRUE(sweep.ok()) << sweep.report();
}

TEST(PaxosCommitFaultSweep, BatchedSubmissionAndReadMix) {
  // The driver's batching and read-mix knobs work unchanged on this stack:
  // batches ride one PC_CERTIFY_BATCH per coordinator (scalar fallback at
  // size 1 is covered by every other suite), and the read mix issues
  // zero-message CSN snapshot reads that the snapshot checker validates
  // against the committed prefix.
  ScheduleOptions opt;
  opt.crashes = 1;
  opt.reconfigures = 1;
  opt.partitions = 0;
  opt.delay_windows = 1;
  PaxosCommitWorkloadOptions w;
  w.total_txns = 120;
  w.batch_size = 4;
  w.read_fraction = 0.2;
  w.read_staleness_bound = 400;
  // 50-seed census (RATC_SWEEP_SEEDS=50): worst decided=0.9500 at seed 50.
  w.min_decided_fraction = 0.85;
  std::atomic<std::size_t> reads_served{0};
  SweepResult sweep =
      parallel_sweep_seeds(kFirstSeed, kSmallSweepSeeds, [&](std::uint64_t seed) {
        RunResult r = run_paxos_commit_workload(seed, w, schedule_for(seed, opt));
        reads_served += r.reads_served;
        return r;
      });
  EXPECT_TRUE(sweep.ok()) << sweep.report();
  // The read mix actually exercised the leader-gated read path.
  EXPECT_GT(reads_served.load(), 0u);
}

TEST(PaxosCommitDeterminism, SameSeedIdenticalTrace) {
  // Acceptance bar for the stack: a run is a pure function of its seed —
  // identical message trace (fingerprint), counters and verdicts — with
  // the full recovery machinery (FD pings, in-doubt timers, query rounds)
  // in the loop.
  ScheduleOptions opt;
  opt.crashes = 1;
  opt.reconfigures = 1;
  opt.partitions = 1;
  opt.delay_windows = 1;
  opt.window_hi = 150;
  PaxosCommitWorkloadOptions w;
  w.total_txns = 50;
  w.drain = 4000;
  w.min_decided_fraction = 0.0;  // liveness is not under test here
  Rng r1(5), r2(5);
  Schedule s1 = generate_schedule(r1, opt);
  Schedule s2 = generate_schedule(r2, opt);
  RunResult a = run_paxos_commit_workload(5, w, s1);
  RunResult b = run_paxos_commit_workload(5, w, s2);
  EXPECT_EQ(a.fingerprint, b.fingerprint);
  EXPECT_EQ(a.submitted, b.submitted);
  EXPECT_EQ(a.decided, b.decided);
  EXPECT_EQ(a.committed, b.committed);
  EXPECT_EQ(a.term_resolved, b.term_resolved);
  EXPECT_EQ(a.problems, b.problems);

  // Different seeds explore different executions.
  std::set<std::uint64_t> fingerprints;
  for (std::uint64_t seed = 1; seed <= 4; ++seed) {
    Rng r(seed);
    fingerprints.insert(
        run_paxos_commit_workload(seed, w, generate_schedule(r, opt)).fingerprint);
  }
  EXPECT_EQ(fingerprints.size(), 4u);
}

}  // namespace
}  // namespace ratc::harness
