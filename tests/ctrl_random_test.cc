// Random sweeps of the autonomous reconfiguration controller (src/ctrl/).
//
// The headline property (ISSUE 4 acceptance): a crash-only nemesis — the
// harness crashes replicas but performs NO repair — must recover to a
// committed fraction at least as good as the omniscient harness-repaired
// baseline minus a small calibrated tolerance, purely through the
// controllers' loop (FD suspicion -> PlacementPolicy -> CS CAS -> epoch
// handover).  The same monitor / TCS-LL / linearization checkers validate
// every run, and same-seed-same-trace determinism holds with the
// controllers enabled.
//
// The hysteresis property: under false-suspicion storms (one-way partitions
// and clock skew, with NO crashes), a live-but-silent replica may cost an
// epoch, but exponential backoff must bound the controller-initiated churn
// per run (RunResult::ctrl_attempts).
#include <gtest/gtest.h>

#include <cstdio>

#include "harness/schedule.h"
#include "harness/sweep.h"

namespace ratc::harness {
namespace {

constexpr std::uint64_t kFirstSeed = 1;
const int kSweepSeeds = sweep_seed_count(24);
const int kSmallSweepSeeds = sweep_seed_count(20);

Schedule schedule_for(std::uint64_t seed, const ScheduleOptions& opt) {
  Rng rng(seed * 0x9e3779b97f4a7c15ULL + 0x5eedULL);
  return generate_schedule(rng, opt);
}

double committed_fraction(const SweepResult& r) {
  return r.total_submitted == 0
             ? 0.0
             : static_cast<double>(r.total_committed) /
                   static_cast<double>(r.total_submitted);
}

void print_sweep(const char* tag, const SweepResult& r) {
  std::printf("  %-20s submitted=%zu decided=%zu committed=%zu (%.3f)\n", tag,
              r.total_submitted, r.total_decided, r.total_committed,
              committed_fraction(r));
}

// Crash-only schedule: no reconfigure events, no partitions — the only
// repair path is the controller's.
ScheduleOptions crash_only_schedule() {
  ScheduleOptions opt;
  opt.crashes = 3;
  opt.reconfigures = 0;
  opt.partitions = 0;
  opt.delay_windows = 0;
  return opt;
}

TEST(ControllerSelfHealing, CommitCrashOnlyRecoversAutonomously) {
  ScheduleOptions opt = crash_only_schedule();

  // The omniscient baseline: the harness crashes AND immediately repairs
  // (reconfigure + await activation), as every pre-existing sweep does.
  CommitWorkloadOptions repaired;
  repaired.total_txns = 150;
  SweepResult a =
      parallel_sweep_seeds(kFirstSeed, kSweepSeeds, [&](std::uint64_t seed) {
        return run_commit_workload(seed, repaired, schedule_for(seed, opt));
      });
  EXPECT_TRUE(a.ok()) << a.report();

  // Crash-only: the harness only crashes; controllers detect and heal.
  // Stranded-but-prepared transactions recover through the retry path once
  // the shard is reconfigured, so liveness stays close to the omniscient
  // baseline — detection latency (suspect_after) is the price.
  CommitWorkloadOptions autonomous = repaired;
  autonomous.harness_repair = false;
  autonomous.autonomous_controller = true;
  // Crash-only schedules carry no clock skew, so an aggressive detector is
  // safe; a short retry timeout re-drives stranded transactions (and frees
  // their prepared witnesses) soon after the shard heals.
  autonomous.controller.fd = {.ping_every = 5, .suspect_after = 15};
  autonomous.retry_timeout = 20;
  autonomous.min_decided_fraction = 0.8;
  SweepResult b =
      parallel_sweep_seeds(kFirstSeed, kSweepSeeds, [&](std::uint64_t seed) {
        return run_commit_workload(seed, autonomous, schedule_for(seed, opt));
      });
  EXPECT_TRUE(b.ok()) << b.report();

  print_sweep("harness-repaired", a);
  print_sweep("controller-driven", b);
  // The acceptance bar.  The tolerance is NOT detector slack alone: the
  // harness-repaired baseline runs the whole reconfiguration inside the
  // fault hook with the workload paused (await_active_epoch), so no
  // transaction ever executes concurrently with an outage.  The autonomous
  // path keeps traffic flowing, and transactions that conflict with the
  // stranded prepared backlog during detection + handover + re-drive
  // legitimately abort.  Calibrated gap at 24 seeds: 0.058 (decided
  // fractions are within 0.001 of each other — nothing blocks).
  EXPECT_GE(committed_fraction(b), committed_fraction(a) - 0.10)
      << "controller-driven committed fraction " << committed_fraction(b)
      << " vs harness-repaired " << committed_fraction(a);
}

TEST(ControllerSelfHealing, RdmaCrashOnlyRecoversAutonomously) {
  ScheduleOptions opt = crash_only_schedule();
  opt.crashes = 2;  // global reconfigurations are system-wide; keep runs bounded

  RdmaWorkloadOptions repaired;
  repaired.total_txns = 120;
  repaired.min_decided_fraction = 0.8;
  SweepResult a =
      parallel_sweep_seeds(kFirstSeed, kSmallSweepSeeds, [&](std::uint64_t seed) {
        return run_rdma_workload(seed, repaired, schedule_for(seed, opt));
      });
  EXPECT_TRUE(a.ok()) << a.report();

  RdmaWorkloadOptions autonomous = repaired;
  autonomous.harness_repair = false;
  autonomous.autonomous_controller = true;
  autonomous.controller.fd = {.ping_every = 5, .suspect_after = 15};
  autonomous.retry_timeout = 20;
  autonomous.min_decided_fraction = 0.7;
  SweepResult b =
      parallel_sweep_seeds(kFirstSeed, kSmallSweepSeeds, [&](std::uint64_t seed) {
        return run_rdma_workload(seed, autonomous, schedule_for(seed, opt));
      });
  EXPECT_TRUE(b.ok()) << b.report();

  print_sweep("harness-repaired", a);
  print_sweep("controller-driven", b);
  // Wider tolerance than the commit stack's: a global reconfiguration
  // (Fig. 8) probes every shard, so the whole system — not just the
  // crashed shard — pauses for the handover.  Calibrated gap at 20 seeds:
  // 0.078.
  EXPECT_GE(committed_fraction(b), committed_fraction(a) - 0.13)
      << "controller-driven committed fraction " << committed_fraction(b)
      << " vs harness-repaired " << committed_fraction(a);
}

TEST(ControllerSelfHealing, MixedFaultSchedulesStaySafeWithControllers) {
  // Controllers active under the full fault mix — partitions (which can
  // split a controller from its shard or the CS), one-way partitions,
  // clock skew, drops — on top of crash-only repair.  Safety is the
  // assertion: every monitor invariant, TCS-LL and decision uniqueness
  // must hold no matter how wrong the suspicions go.
  ScheduleOptions opt;
  opt.crashes = 2;
  opt.partitions = 1;
  opt.one_way_partitions = 1;
  opt.clock_skews = 1;
  opt.drop_windows = 1;
  opt.drop_probability = 0.05;
  opt.lossy_partitions = true;
  CommitWorkloadOptions w;
  w.total_txns = 120;
  w.harness_repair = false;
  w.autonomous_controller = true;
  w.min_decided_fraction = 0.0;  // loss violates the reliable-link model
  SweepResult sweep =
      parallel_sweep_seeds(kFirstSeed, kSmallSweepSeeds, [&](std::uint64_t seed) {
        return run_commit_workload(seed, w, schedule_for(seed, opt));
      });
  EXPECT_TRUE(sweep.ok()) << sweep.report();
}

// Per-run churn cap for the hysteresis sweeps.  A false-suspicion incident
// costs ~1 attempt (the suspect is replaced and unwatched); the exponential
// backoff bounds a storm of repeated incidents within one run.  The bound
// is calibrated loose: 4 fault windows per schedule, a handful of attempts
// each at worst.
constexpr std::size_t kMaxCtrlAttempts = 10;

template <typename W, typename RunFn>
SweepResult hysteresis_sweep(const W& w, const ScheduleOptions& opt, int seeds,
                             RunFn run) {
  return parallel_sweep_seeds(kFirstSeed, seeds, [&](std::uint64_t seed) {
    RunResult r = run(seed, w, schedule_for(seed, opt));
    if (r.ctrl_attempts > kMaxCtrlAttempts) {
      append_seed_problem(r, "hysteresis: " + std::to_string(r.ctrl_attempts) +
                                 " controller attempts exceed the bound of " +
                                 std::to_string(kMaxCtrlAttempts));
    }
    return r;
  });
}

TEST(ControllerHysteresis, CommitFalseSuspicionStormsBoundEpochChurn) {
  // No crashes at all: every suspicion is false (a live replica made silent
  // by a one-way partition or slowed by clock skew).  The controller may
  // pay an epoch to route around a half-dead member — that is the designed
  // behaviour — but the total churn per run must stay bounded and all
  // safety checks must hold.
  ScheduleOptions opt;
  opt.crashes = 0;
  opt.reconfigures = 0;
  opt.partitions = 0;
  opt.delay_windows = 0;
  opt.one_way_partitions = 2;
  opt.clock_skews = 2;
  CommitWorkloadOptions w;
  w.total_txns = 120;
  w.autonomous_controller = true;
  w.min_decided_fraction = 0.6;
  SweepResult sweep = hysteresis_sweep(w, opt, kSweepSeeds, run_commit_workload);
  EXPECT_TRUE(sweep.ok()) << sweep.report();
}

TEST(ControllerHysteresis, RdmaFalseSuspicionStormsBoundEpochChurn) {
  ScheduleOptions opt;
  opt.crashes = 0;
  opt.reconfigures = 0;
  opt.partitions = 0;
  opt.delay_windows = 0;
  opt.one_way_partitions = 2;
  opt.clock_skews = 2;
  RdmaWorkloadOptions w;
  w.total_txns = 100;
  w.autonomous_controller = true;
  w.min_decided_fraction = 0.35;  // matches the rdma partition sweep's bar
  SweepResult sweep = hysteresis_sweep(w, opt, kSmallSweepSeeds, run_rdma_workload);
  EXPECT_TRUE(sweep.ok()) << sweep.report();
}

TEST(PlacementDiversity, ZoneAntiAffinitySweepStaysSafeAndBalanced) {
  // The placement seam end to end: zone labels on every replica, the
  // ZoneAntiAffinityPolicy driving BOTH replica-driven repair
  // (harness_repair, kReconfigure events) and the autonomous controllers,
  // under a crash+reconfigure schedule.  Safety checks and the engines'
  // spare-ledger balance (asserted inside apply_end_of_run_checks) must
  // hold for every seed.
  ScheduleOptions opt = crash_only_schedule();
  opt.reconfigures = 2;  // healthy reconfigurations exercise responder choice
  CommitWorkloadOptions w;
  w.total_txns = 120;
  w.autonomous_controller = true;
  w.controller.fd = {.ping_every = 5, .suspect_after = 15};
  w.retry_timeout = 20;
  w.placement = "zone-anti-affinity";
  w.num_zones = 3;
  w.min_decided_fraction = 0.8;
  SweepResult sweep =
      parallel_sweep_seeds(kFirstSeed, kSmallSweepSeeds, [&](std::uint64_t seed) {
        RunResult r = run_commit_workload(seed, w, schedule_for(seed, opt));
        if (r.probes_sent == 0) {
          append_seed_problem(r, "placement sweep ran no reconfiguration at all");
        }
        return r;
      });
  EXPECT_TRUE(sweep.ok()) << sweep.report();
  print_sweep("zone-anti-affinity", sweep);
}

TEST(ControllerDeterminism, SameSeedSameTraceWithControllersEnabled) {
  ScheduleOptions opt = crash_only_schedule();
  CommitWorkloadOptions cw;
  cw.total_txns = 60;
  cw.harness_repair = false;
  cw.autonomous_controller = true;
  cw.min_decided_fraction = 0.0;
  for (std::uint64_t seed : {3ull, 7ull}) {
    RunResult r1 = run_commit_workload(seed, cw, schedule_for(seed, opt));
    RunResult r2 = run_commit_workload(seed, cw, schedule_for(seed, opt));
    EXPECT_EQ(r1.fingerprint, r2.fingerprint) << "commit seed " << seed;
    EXPECT_EQ(r1.ctrl_attempts, r2.ctrl_attempts) << "commit seed " << seed;
  }
  RdmaWorkloadOptions rw;
  rw.total_txns = 50;
  rw.harness_repair = false;
  rw.autonomous_controller = true;
  rw.min_decided_fraction = 0.0;
  RunResult r1 = run_rdma_workload(5, rw, schedule_for(5, opt));
  RunResult r2 = run_rdma_workload(5, rw, schedule_for(5, opt));
  EXPECT_EQ(r1.fingerprint, r2.fingerprint) << "rdma";
  EXPECT_EQ(r1.ctrl_attempts, r2.ctrl_attempts) << "rdma";
}

}  // namespace
}  // namespace ratc::harness
