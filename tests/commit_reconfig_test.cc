// Reconfiguration and recovery behaviour (Fig. 1 lines 33-73, Fig. 2b,
// Theorems 4.2-4.4, and the Sec. 3 "losing undecided transactions"
// discussion).
#include <gtest/gtest.h>

#include "checker/linearization.h"
#include "commit/cluster.h"

namespace ratc::commit {
namespace {

using tcs::Decision;
using tcs::Payload;

Payload make_payload(std::vector<ObjectId> reads, std::vector<ObjectId> writes,
                     Version read_version, Version commit_version) {
  Payload p;
  for (ObjectId o : reads) p.reads.push_back({o, read_version});
  for (ObjectId o : writes) p.writes.push_back({o, static_cast<Value>(o * 10)});
  p.commit_version = commit_version;
  return p;
}

TEST(CommitReconfig, LeaderCrashThenReconfigureAndResume) {
  Cluster cluster({.seed = 1, .num_shards = 2, .shard_size = 2});
  Client& client = cluster.add_client();

  // Commit one transaction, then kill shard 0's leader.
  TxnId t1 = cluster.next_txn_id();
  client.certify_colocated(cluster.replica(1, 1), t1, make_payload({0, 1}, {0}, 0, 1));
  cluster.sim().run();
  ASSERT_EQ(client.decision(t1), Decision::kCommit);

  ProcessId old_leader = cluster.leader_of(0);
  cluster.crash(old_leader);
  // The surviving follower triggers reconfiguration (Fig. 2b).
  ProcessId follower = cluster.replica(0, 1).id();
  cluster.reconfigure(0, follower);
  ASSERT_TRUE(cluster.await_active_epoch(0, 2));

  configsvc::ShardConfig cfg = cluster.current_config(0);
  EXPECT_EQ(cfg.epoch, 2u);
  EXPECT_EQ(cfg.leader, follower);  // the initialized survivor leads
  EXPECT_EQ(cfg.members.size(), 2u);  // topped up with a spare
  EXPECT_TRUE(cfg.has_member(cluster.spares(0)[0]));

  // The committed transaction survived into the new epoch.
  Replica& new_leader = cluster.replica_by_pid(follower);
  Slot k = new_leader.log().slot_of(t1);
  ASSERT_NE(k, kNoSlot);
  EXPECT_EQ(new_leader.log().find(k)->dec, Decision::kCommit);

  // Certification resumes in the new configuration (Theorem 4.4 shape).
  TxnId t2 = cluster.next_txn_id();
  client.certify_colocated(cluster.replica(1, 1), t2, make_payload({2, 3}, {2}, 0, 1));
  cluster.sim().run();
  EXPECT_EQ(client.decision(t2), Decision::kCommit);
  EXPECT_EQ(cluster.verify(), "");
}

TEST(CommitReconfig, FollowerCrashReplacedBySpare) {
  Cluster cluster({.seed = 2, .num_shards = 1, .shard_size = 3});
  Client& client = cluster.add_client();
  TxnId t1 = cluster.next_txn_id();
  client.certify_colocated(cluster.replica(0, 1), t1, make_payload({0}, {0}, 0, 1));
  cluster.sim().run();
  ASSERT_EQ(client.decision(t1), Decision::kCommit);

  // Crash one follower; the leader reconfigures.
  cluster.crash(cluster.replica(0, 2).id());
  cluster.reconfigure(0, cluster.leader_of(0));
  ASSERT_TRUE(cluster.await_active_epoch(0, 2));

  configsvc::ShardConfig cfg = cluster.current_config(0);
  EXPECT_EQ(cfg.members.size(), 3u);
  EXPECT_FALSE(cfg.has_member(cluster.replica(0, 2).id()));

  // Coordinate through a current member: processes squeezed out of the
  // membership keep a stale view of their own shard (line 68 deliberately
  // skips s = s0) and can no longer act as coordinators.
  TxnId t2 = cluster.next_txn_id();
  client.certify_colocated(cluster.replica_by_pid(cfg.leader), t2,
                           make_payload({2}, {2}, 0, 1));
  cluster.sim().run();
  EXPECT_EQ(client.decision(t2), Decision::kCommit);
  EXPECT_EQ(cluster.verify(), "");
}

TEST(CommitReconfig, ConfigChangePropagatesToOtherShards) {
  Cluster cluster({.seed = 3, .num_shards = 3, .shard_size = 2});
  cluster.crash(cluster.leader_of(0));
  cluster.reconfigure(0, cluster.replica(0, 1).id());
  ASSERT_TRUE(cluster.await_active_epoch(0, 2));
  cluster.sim().run();
  // Replicas of shards 1 and 2 learned the new configuration of shard 0
  // via CONFIG_CHANGE (line 67).
  for (ShardId s = 1; s < 3; ++s) {
    for (std::size_t i = 0; i < 2; ++i) {
      EXPECT_EQ(cluster.replica(s, i).view(0).epoch, 2u)
          << "s" << s << " replica " << i;
    }
  }
  EXPECT_EQ(cluster.verify(), "");
}

TEST(CommitReconfig, InFlightTransactionRecoveredByRetry) {
  // The coordinator crashes mid-protocol; a replica that has the
  // transaction prepared becomes a new coordinator via retry (line 70).
  Cluster cluster({.seed = 4, .num_shards = 2, .shard_size = 2});
  Client& client = cluster.add_client();
  // Use a spare of shard 0 as coordinator so crashing it doesn't affect
  // shard membership.
  ProcessId coord = cluster.spares(0)[0];
  TxnId t = cluster.next_txn_id();
  client.certify_remote(coord, t, make_payload({0, 1}, {0, 1}, 0, 1));
  // Run until both leaders prepared the transaction (PREPARE delivered at
  // t=2 after submit at t=0), then kill the coordinator.
  cluster.sim().run_until(2);
  ASSERT_NE(cluster.replica(0, 0).log().slot_of(t), kNoSlot);
  ASSERT_NE(cluster.replica(1, 0).log().slot_of(t), kNoSlot);
  cluster.crash(coord);
  cluster.sim().run();
  EXPECT_FALSE(client.decided(t));  // stuck: coordinator gone

  // Shard 0's leader notices and retries.
  Replica& leader = cluster.replica(0, 0);
  leader.retry(leader.log().slot_of(t));
  cluster.sim().run();
  ASSERT_TRUE(client.decided(t));
  EXPECT_EQ(client.decision(t), Decision::kCommit);
  EXPECT_EQ(cluster.verify(), "");
}

TEST(CommitReconfig, AutomaticRetryTimerRecoversTransactions) {
  Cluster cluster({.seed = 5, .num_shards = 2, .shard_size = 2, .retry_timeout = 50});
  Client& client = cluster.add_client();
  ProcessId coord = cluster.spares(0)[0];
  TxnId t = cluster.next_txn_id();
  client.certify_remote(coord, t, make_payload({0, 1}, {0}, 0, 1));
  cluster.sim().run_until(2);
  cluster.crash(coord);
  // The retry timers fire on their own; bounded run because timers re-arm.
  cluster.sim().run_until(500);
  ASSERT_TRUE(client.decided(t));
  EXPECT_EQ(client.decision(t), Decision::kCommit);
  EXPECT_EQ(cluster.verify(), "");
}

TEST(CommitReconfig, RetryAbortsTransactionUnknownToAShard) {
  // Paper Sec. 3 coordinator recovery: if a shard's leader never received
  // the payload, it prepares the transaction as aborted with ε (line 15).
  Cluster cluster({.seed = 6, .num_shards = 2, .shard_size = 2});
  Client& client = cluster.add_client();
  TxnId t = cluster.next_txn_id();
  Payload full = make_payload({0, 1}, {0, 1}, 0, 1);

  // Simulate a coordinator that crashed between PREPAREs: only shard 0's
  // leader gets the transaction.
  Prepare p;
  p.txn = t;
  p.has_payload = true;
  p.payload = cluster.shard_map().project(full, 0);
  p.meta.txn = t;
  p.meta.participants = {0, 1};
  p.meta.client = client.id();
  cluster.history().record_certify(cluster.sim().now(), t, full);
  cluster.net().send_msg(client.id(), cluster.leader_of(0), p);
  cluster.sim().run();

  Replica& leader0 = cluster.replica(0, 0);
  Slot k = leader0.log().slot_of(t);
  ASSERT_NE(k, kNoSlot);
  EXPECT_FALSE(client.decided(t));

  // Shard 0's leader retries; shard 1 votes abort with an empty payload.
  leader0.retry(k);
  cluster.sim().run();
  ASSERT_TRUE(client.decided(t));
  EXPECT_EQ(client.decision(t), Decision::kAbort);

  // Shard 1 prepared it as aborted with ε.
  Replica& leader1 = cluster.replica(1, 0);
  Slot k1 = leader1.log().slot_of(t);
  ASSERT_NE(k1, kNoSlot);
  EXPECT_EQ(leader1.log().find(k1)->vote, Decision::kAbort);
  EXPECT_TRUE(leader1.log().find(k1)->payload.is_empty());

  // A spuriously-suspected original coordinator resubmitting just learns
  // the abort vote (line 6).
  Prepare late;
  late.txn = t;
  late.has_payload = true;
  late.payload = cluster.shard_map().project(full, 1);
  late.meta = p.meta;
  cluster.net().send_msg(client.id(), cluster.leader_of(1), late);
  cluster.sim().run();
  EXPECT_EQ(cluster.verify(), "");
}

TEST(CommitReconfig, LosesUndecidedTransactionPreservingCorrectness) {
  // Paper Sec. 3 "Losing undecided transactions": t1 is prepared at the
  // leader and feeds into t2's vote (as a prepared witness), but is never
  // persisted at followers.  After the leader and t1's coordinator crash,
  // t1 vanishes while t2 survives and commits — and this is correct.
  Cluster cluster({.seed = 7, .num_shards = 1, .shard_size = 2});
  Client& c1 = cluster.add_client();
  Client& c2 = cluster.add_client();

  ProcessId doomed_coord = cluster.spares(0)[1];
  TxnId t1 = cluster.next_txn_id();
  c1.certify_remote(doomed_coord, t1, make_payload({0}, {0}, 0, 1));
  // Let the PREPARE reach the leader (t=2) but kill the coordinator before
  // it can forward the ACCEPT (it would process PREPARE_ACK at t=3).
  cluster.sim().run_until(2);
  Replica& old_leader = cluster.replica(0, 0);
  ASSERT_NE(old_leader.log().slot_of(t1), kNoSlot);
  cluster.crash(doomed_coord);
  cluster.sim().run();
  ASSERT_FALSE(c1.decided(t1));
  // The follower never saw t1.
  EXPECT_EQ(cluster.replica(0, 1).log().slot_of(t1), kNoSlot);

  // t2 (non-conflicting) is certified normally: its vote is computed with
  // t1 in the prepared set.
  TxnId t2 = cluster.next_txn_id();
  c2.certify_colocated(cluster.replica(0, 1), t2, make_payload({2}, {2}, 0, 1));
  cluster.sim().run();
  ASSERT_EQ(c2.decision(t2), Decision::kCommit);

  // Now the leader dies; the follower takes over; t1 is lost forever.
  cluster.crash(old_leader.id());
  cluster.reconfigure(0, cluster.replica(0, 1).id());
  ASSERT_TRUE(cluster.await_active_epoch(0, 2));
  Replica& new_leader = cluster.replica(0, 1);
  EXPECT_EQ(new_leader.log().slot_of(t1), kNoSlot);  // lost
  Slot k2 = new_leader.log().slot_of(t2);
  ASSERT_NE(k2, kNoSlot);  // survived
  EXPECT_EQ(new_leader.log().find(k2)->dec, Decision::kCommit);

  // The hole left by t1 does not block further certification.
  TxnId t3 = cluster.next_txn_id();
  c2.certify_colocated(new_leader, t3, make_payload({4}, {4}, 0, 1));
  cluster.sim().run();
  EXPECT_EQ(c2.decision(t3), Decision::kCommit);

  // No decision for t1 was ever externalized, and the execution is correct.
  EXPECT_FALSE(c1.decided(t1));
  EXPECT_EQ(cluster.verify(), "");
  auto lin = checker::check_linearization(cluster.history(), cluster.certifier());
  EXPECT_TRUE(lin.ok) << lin.error;
}

TEST(CommitReconfig, ProbingDescendsThroughDeadEpoch) {
  // Vertical-Paxos-I style probing (lines 51-55): a stored-but-never-
  // activated configuration is skipped, and an initialized process from an
  // older epoch becomes the leader.
  Cluster cluster({.seed = 8, .num_shards = 1, .shard_size = 2, .spares_per_shard = 3});
  Client& client = cluster.add_client();
  TxnId t1 = cluster.next_txn_id();
  client.certify_colocated(cluster.replica(0, 1), t1, make_payload({0}, {0}, 0, 1));
  cluster.sim().run();
  ASSERT_EQ(client.decision(t1), Decision::kCommit);

  ProcessId p100 = cluster.replica(0, 0).id();  // leader, initialized
  ProcessId p101 = cluster.replica(0, 1).id();  // follower, initialized
  ProcessId reconfigurer = cluster.spares(0)[2];

  // A spurious reconfiguration (no one actually failed) starts: the first
  // PROBE_ACK(true) comes from the leader, so epoch 2 = {leader, spare}.
  cluster.reconfigure(0, reconfigurer);
  bool stored = cluster.sim().run_until_pred(
      [&] { return cluster.current_config(0).epoch == 2; });
  ASSERT_TRUE(stored);
  configsvc::ShardConfig cfg2 = cluster.current_config(0);
  ASSERT_EQ(cfg2.leader, p100);
  ASSERT_FALSE(cfg2.has_member(p101));  // squeezed out by the spare top-up

  // The new leader dies before NEW_CONFIG reaches it: epoch 2 will never
  // activate.
  cluster.crash(p100);
  cluster.sim().run();
  EXPECT_NE(cluster.replica_by_pid(cfg2.members[1]).epoch(), 2u);

  // A second reconfiguration probes epoch 2, gets only PROBE_ACK(false)
  // from the uninitialized spare, descends to epoch 1 and finds the
  // initialized follower p101.
  cluster.reconfigure(0, reconfigurer);
  ASSERT_TRUE(cluster.await_active_epoch(0, 3));
  configsvc::ShardConfig cfg3 = cluster.current_config(0);
  EXPECT_EQ(cfg3.leader, p101);

  // Data committed at epoch 1 survived the descent.
  Replica& new_leader = cluster.replica_by_pid(p101);
  Slot k = new_leader.log().slot_of(t1);
  ASSERT_NE(k, kNoSlot);
  EXPECT_EQ(new_leader.log().find(k)->dec, Decision::kCommit);

  // And certification works in epoch 3.
  TxnId t2 = cluster.next_txn_id();
  client.certify_colocated(new_leader, t2, make_payload({2}, {2}, 0, 1));
  cluster.sim().run();
  EXPECT_EQ(client.decision(t2), Decision::kCommit);
  EXPECT_EQ(cluster.verify(), "");
}

TEST(CommitReconfig, ConcurrentReconfigurationsOnlyOneWins) {
  Cluster cluster({.seed = 9, .num_shards = 1, .shard_size = 3, .spares_per_shard = 3});
  cluster.crash(cluster.leader_of(0));
  // Two surviving followers race to reconfigure.
  cluster.reconfigure(0, cluster.replica(0, 1).id());
  cluster.reconfigure(0, cluster.replica(0, 2).id());
  ASSERT_TRUE(cluster.await_active_epoch(0, 2));
  cluster.sim().run();
  // The CAS arbitrates: exactly one epoch-2 configuration exists.
  configsvc::ShardConfig cfg = cluster.current_config(0);
  EXPECT_EQ(cfg.epoch, 2u);
  EXPECT_EQ(cluster.verify(), "");
}

TEST(CommitReconfig, SequentialReconfigurationsExhaustSpares) {
  Cluster cluster({.seed = 10, .num_shards = 1, .shard_size = 2, .spares_per_shard = 2});
  Client& client = cluster.add_client();
  TxnId t = cluster.next_txn_id();
  client.certify_colocated(cluster.replica(0, 1), t, make_payload({0}, {0}, 0, 1));
  cluster.sim().run();
  ASSERT_EQ(client.decision(t), Decision::kCommit);

  // Two successive leader failures, each followed by a reconfiguration.
  for (Epoch target = 2; target <= 3; ++target) {
    configsvc::ShardConfig cfg = cluster.current_config(0);
    cluster.crash(cfg.leader);
    ProcessId survivor = kNoProcess;
    for (ProcessId m : cfg.members) {
      if (!cluster.sim().crashed(m)) survivor = m;
    }
    ASSERT_NE(survivor, kNoProcess);
    cluster.reconfigure(0, survivor);
    ASSERT_TRUE(cluster.await_active_epoch(0, target)) << "epoch " << target;
  }
  // The committed transaction survived two generations of membership.
  configsvc::ShardConfig cfg = cluster.current_config(0);
  Replica& leader = cluster.replica_by_pid(cfg.leader);
  Slot k = leader.log().slot_of(t);
  ASSERT_NE(k, kNoSlot);
  EXPECT_EQ(leader.log().find(k)->dec, Decision::kCommit);
  EXPECT_EQ(cluster.verify(), "");
}

TEST(CommitReconfig, WorksWithReplicatedConfigService) {
  Cluster cluster({.seed = 11, .num_shards = 2, .shard_size = 2, .replicated_cs = true});
  Client& client = cluster.add_client();
  TxnId t1 = cluster.next_txn_id();
  client.certify_colocated(cluster.replica(0, 1), t1, make_payload({0, 1}, {0}, 0, 1));
  cluster.sim().run();
  ASSERT_EQ(client.decision(t1), Decision::kCommit);

  cluster.crash(cluster.leader_of(0));
  cluster.reconfigure(0, cluster.replica(0, 1).id());
  ASSERT_TRUE(cluster.await_active_epoch(0, 2));

  TxnId t2 = cluster.next_txn_id();
  client.certify_colocated(cluster.replica(0, 1), t2, make_payload({2, 3}, {2}, 0, 1));
  cluster.sim().run();
  EXPECT_EQ(client.decision(t2), Decision::kCommit);
  EXPECT_EQ(cluster.verify(), "");
}

TEST(CommitReconfig, StaleCoordinatorCannotDecideAfterReconfiguration) {
  // A transaction prepared in epoch 1 whose ACCEPT_ACKs race with a
  // reconfiguration: the coordinator's epoch check (line 26) prevents a
  // decision against the stale epoch; the transaction completes only via
  // retry in the new epoch.  Invariant 4 holds throughout.
  Cluster cluster({.seed = 12, .num_shards = 1, .shard_size = 2});
  Client& client = cluster.add_client();
  ProcessId coord = cluster.spares(0)[1];
  TxnId t = cluster.next_txn_id();
  client.certify_remote(coord, t, make_payload({0}, {0}, 0, 1));
  // Stop just after the leader prepares (t=2): the coordinator has not yet
  // processed the PREPARE_ACK.
  cluster.sim().run_until(2);
  // Reconfiguration begins: probing freezes both members.
  cluster.reconfigure(0, cluster.replica(0, 1).id());
  cluster.sim().run_until(3);  // PROBE delivered; members now reconfiguring
  cluster.sim().run();
  ASSERT_TRUE(cluster.await_active_epoch(0, 2, 100000));
  // The follower (now in epoch 2) rejected any epoch-1 ACCEPT; no decision
  // may have been externalized for the stale attempt unless retried.
  Replica& new_leader = cluster.replica_by_pid(cluster.current_config(0).leader);
  Slot k = new_leader.log().slot_of(t);
  if (k != kNoSlot && new_leader.log().find(k)->phase == Phase::kPrepared) {
    new_leader.retry(k);
    cluster.sim().run();
  }
  EXPECT_EQ(cluster.verify(), "");
}

}  // namespace
}  // namespace ratc::commit
