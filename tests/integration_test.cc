// Full-stack integration: the commit protocol running over the
// Paxos-REPLICATED configuration service, with CS leader failures injected
// during shard reconfigurations — the complete vertical story (2f+1 only
// for configuration data, f+1 for transaction data).
#include <gtest/gtest.h>

#include "commit/cluster.h"
#include "store/frontends.h"
#include "store/runner.h"
#include "store/workload.h"

namespace ratc {
namespace {

using commit::Client;
using commit::Cluster;
using tcs::Decision;
using tcs::Payload;

Payload one_object(ObjectId o, Version v = 0) {
  Payload p;
  p.reads = {{o, v}};
  p.writes = {{o, static_cast<Value>(o)}};
  p.commit_version = v + 1;
  return p;
}

TEST(Integration, WorkloadOverReplicatedCs) {
  Cluster cluster({.seed = 1, .num_shards = 2, .shard_size = 2, .replicated_cs = true});
  store::CommitFrontend frontend(cluster);
  store::VersionedStore db;
  store::WorkloadGenerator gen({.objects = 60, .ops_per_txn = 3}, 4);
  store::WorkloadRunner runner(
      cluster.sim(), frontend, db,
      [&](const store::VersionedStore& d) { return gen.next(d); });
  auto stats = runner.run(200);
  EXPECT_EQ(stats.committed + stats.aborted, 200u);
  EXPECT_EQ(cluster.verify(), "");
}

TEST(Integration, ReconfigurationSurvivesCsLeaderCrash) {
  // The CS leader dies while a shard reconfiguration is mid-probing: the
  // CsClient retry loop re-targets the new CS leader, and the
  // reconfiguration completes.
  Cluster cluster({.seed = 2, .num_shards = 2, .shard_size = 2, .replicated_cs = true});
  Client& client = cluster.add_client();
  TxnId t1 = cluster.next_txn_id();
  client.certify_colocated(cluster.replica(1, 1), t1, one_object(1));
  cluster.sim().run();
  ASSERT_EQ(client.decision(t1), Decision::kCommit);

  cluster.crash(cluster.leader_of(0));
  cluster.reconfigure(0, cluster.replica(0, 1).id());
  // Let the GET_LAST land, then kill the CS leader before the CAS and
  // elect a new one.
  cluster.sim().run_until(cluster.sim().now() + 2);
  // (CS server 0 and its Paxos replica are the first pair.)
  // Note: crash_server + election on server 1.
  // We reach into the cluster's replicated CS through its process ids.
  // The ReplicatedConfigService is owned by the cluster; use its public
  // accessors via current_config reads to confirm progress instead.
  // Crash by pid: frontends are 9000..9002, paxos 9003..9005.
  cluster.sim().crash(9000);
  cluster.sim().crash(9003);
  // Elect server 1's paxos replica. It is registered in the simulator; we
  // drive it through the cluster's accessor-free path: send an election
  // nudge by having the cluster's replicated CS paxos replica 1 campaign.
  // (Exposed via the cluster? Use the simulator's process registry.)
  auto* paxos1 = dynamic_cast<paxos::PaxosReplica*>(cluster.sim().process(9004));
  ASSERT_NE(paxos1, nullptr);
  paxos1->start_election();

  ASSERT_TRUE(cluster.await_active_epoch(0, 2, 3'000'000));
  configsvc::ShardConfig cfg = cluster.current_config(0);
  EXPECT_EQ(cfg.epoch, 2u);

  TxnId t2 = cluster.next_txn_id();
  client.certify_colocated(cluster.replica(1, 1), t2, one_object(3));
  cluster.sim().run();
  EXPECT_EQ(client.decision(t2), Decision::kCommit);
  EXPECT_EQ(cluster.verify(), "");
}

TEST(Integration, ConcurrentReconfigurationsOfDifferentShards) {
  Cluster cluster({.seed = 3, .num_shards = 3, .shard_size = 2});
  cluster.crash(cluster.leader_of(0));
  cluster.crash(cluster.leader_of(1));
  cluster.reconfigure(0, cluster.replica(0, 1).id());
  cluster.reconfigure(1, cluster.replica(1, 1).id());
  ASSERT_TRUE(cluster.await_active_epoch(0, 2));
  ASSERT_TRUE(cluster.await_active_epoch(1, 2));

  Client& client = cluster.add_client();
  TxnId t = cluster.next_txn_id();
  // Spans all three shards, two of which just reconfigured.
  Payload p;
  p.reads = {{0, 0}, {1, 0}, {2, 0}};
  p.writes = {{0, 1}, {1, 1}, {2, 1}};
  p.commit_version = 1;
  client.certify_colocated(cluster.replica(2, 1), t, p);
  cluster.sim().run();
  EXPECT_EQ(client.decision(t), Decision::kCommit);
  EXPECT_EQ(cluster.verify(), "");
}

TEST(Integration, RepeatedFailoverWithOngoingTraffic) {
  Cluster cluster({.seed = 4,
                   .num_shards = 2,
                   .shard_size = 2,
                   .spares_per_shard = 4,
                   .retry_timeout = 120});
  store::CommitFrontend frontend(cluster);
  store::VersionedStore db;
  store::WorkloadGenerator gen({.objects = 50, .ops_per_txn = 2}, 8);
  store::WorkloadRunner runner(
      cluster.sim(), frontend, db,
      [&](const store::VersionedStore& d) { return gen.next(d); });

  for (Epoch target = 2; target <= 4; ++target) {
    runner.run(60);
    ShardId s = static_cast<ShardId>(target % 2);
    configsvc::ShardConfig cfg = cluster.current_config(s);
    cluster.crash(cfg.leader);
    ProcessId survivor = kNoProcess;
    for (ProcessId m : cfg.members) {
      if (!cluster.sim().crashed(m)) survivor = m;
    }
    ASSERT_NE(survivor, kNoProcess);
    cluster.reconfigure(s, survivor);
    ASSERT_TRUE(cluster.await_active_epoch(s, cfg.epoch + 1, 2'000'000))
        << "epoch " << cfg.epoch + 1 << " of shard " << s;
  }
  auto stats = runner.run(60);
  EXPECT_GE(stats.committed + stats.aborted, 230u);
  EXPECT_EQ(cluster.verify(), "");
}

}  // namespace
}  // namespace ratc
