#include <gtest/gtest.h>

#include "checker/conflict_graph.h"
#include "checker/linearization.h"
#include "checker/tcsll.h"
#include "tcs/certifier.h"

namespace ratc::checker {
namespace {

using tcs::Decision;
using tcs::History;
using tcs::Payload;
using tcs::ReadEntry;
using tcs::WriteEntry;
using tcs::empty_payload;

Payload make_payload(std::vector<ReadEntry> reads, std::vector<WriteEntry> writes,
                     Version vc) {
  Payload p;
  p.reads = std::move(reads);
  p.writes = std::move(writes);
  p.commit_version = vc;
  return p;
}

// --- Linearization checker -------------------------------------------------

TEST(Linearization, EmptyHistoryOk) {
  History h;
  tcs::SerializabilityCertifier cert;
  EXPECT_TRUE(check_linearization(h, cert).ok);
}

TEST(Linearization, SingleCommitOk) {
  History h;
  h.record_certify(1, 1, make_payload({{1, 0}}, {{1, 5}}, 1));
  h.record_decide(2, 1, Decision::kCommit);
  auto r = check_linearization(h, tcs::SerializabilityCertifier{});
  EXPECT_TRUE(r.ok) << r.error;
  EXPECT_EQ(r.order, (std::vector<TxnId>{1}));
}

TEST(Linearization, ConcurrentConflictBothCommitted_NotLinearizable) {
  // Both read x@0 and wrote x: whichever goes first invalidates the other.
  History h;
  h.record_certify(1, 1, make_payload({{1, 0}}, {{1, 5}}, 1));
  h.record_certify(1, 2, make_payload({{1, 0}}, {{1, 6}}, 2));
  h.record_decide(2, 1, Decision::kCommit);
  h.record_decide(2, 2, Decision::kCommit);
  EXPECT_FALSE(check_linearization(h, tcs::SerializabilityCertifier{}).ok);
}

TEST(Linearization, ChainOfDependentCommitsOk) {
  // t2 read the version t1 installed; t3 read the version t2 installed.
  History h;
  h.record_certify(1, 1, make_payload({{1, 0}}, {{1, 10}}, 1));
  h.record_decide(2, 1, Decision::kCommit);
  h.record_certify(3, 2, make_payload({{1, 1}}, {{1, 20}}, 2));
  h.record_decide(4, 2, Decision::kCommit);
  h.record_certify(5, 3, make_payload({{1, 2}}, {{1, 30}}, 3));
  h.record_decide(6, 3, Decision::kCommit);
  auto r = check_linearization(h, tcs::SerializabilityCertifier{});
  ASSERT_TRUE(r.ok) << r.error;
  EXPECT_EQ(r.order, (std::vector<TxnId>{1, 2, 3}));
}

TEST(Linearization, RealTimeOrderConstrains) {
  // t1 decided before t2 was certified, but t2's payload only commits if
  // linearized BEFORE t1 — must fail.
  History h;
  h.record_certify(1, 1, make_payload({{1, 0}}, {{1, 5}}, 1));
  h.record_decide(2, 1, Decision::kCommit);
  h.record_certify(3, 2, make_payload({{1, 0}}, {}, 0));  // stale read of x@0
  h.record_decide(4, 2, Decision::kCommit);
  EXPECT_FALSE(check_linearization(h, tcs::SerializabilityCertifier{}).ok);
}

TEST(Linearization, ConcurrentCertifyAllowsEitherOrder) {
  // Same payloads as above but t2 was certified before t1 decided, so the
  // checker may order t2 first.
  History h;
  h.record_certify(1, 1, make_payload({{1, 0}}, {{1, 5}}, 1));
  h.record_certify(1, 2, make_payload({{1, 0}}, {}, 0));
  h.record_decide(2, 1, Decision::kCommit);
  h.record_decide(2, 2, Decision::kCommit);
  auto r = check_linearization(h, tcs::SerializabilityCertifier{});
  ASSERT_TRUE(r.ok) << r.error;
  EXPECT_EQ(r.order, (std::vector<TxnId>{2, 1}));
}

TEST(Linearization, AbortedTransactionsIgnored) {
  History h;
  h.record_certify(1, 1, make_payload({{1, 0}}, {{1, 5}}, 1));
  h.record_certify(1, 2, make_payload({{1, 0}}, {{1, 6}}, 2));
  h.record_decide(2, 1, Decision::kCommit);
  h.record_decide(2, 2, Decision::kAbort);  // the conflicting one aborted
  EXPECT_TRUE(check_linearization(h, tcs::SerializabilityCertifier{}).ok);
}

// --- Conflict graph checker ------------------------------------------------

TEST(ConflictGraph, SerialHistoryOk) {
  History h;
  h.record_certify(1, 1, make_payload({{1, 0}}, {{1, 10}}, 1));
  h.record_decide(2, 1, Decision::kCommit);
  h.record_certify(3, 2, make_payload({{1, 1}}, {{1, 20}}, 2));
  h.record_decide(4, 2, Decision::kCommit);
  auto r = check_conflict_graph(h);
  EXPECT_TRUE(r.ok) << r.error;
}

TEST(ConflictGraph, RwCycleDetected) {
  // Classic write-skew-to-cycle under serializability requirements:
  // t1 reads x@0 writes y; t2 reads y@0 writes x; both commit.
  History h;
  h.record_certify(1, 1, make_payload({{1, 0}, {2, 0}}, {{2, 5}}, 1));
  h.record_certify(1, 2, make_payload({{1, 0}, {2, 0}}, {{1, 6}}, 1));
  h.record_decide(2, 1, Decision::kCommit);
  h.record_decide(2, 2, Decision::kCommit);
  auto r = check_conflict_graph(h);
  EXPECT_FALSE(r.ok);
  EXPECT_EQ(r.cycle.size(), 2u);
}

TEST(ConflictGraph, DuplicateVersionInstallRejected) {
  History h;
  h.record_certify(1, 1, make_payload({{1, 0}}, {{1, 5}}, 1));
  h.record_certify(1, 2, make_payload({{1, 0}}, {{1, 6}}, 1));  // same Vc=1 on obj 1
  h.record_decide(2, 1, Decision::kCommit);
  h.record_decide(2, 2, Decision::kCommit);
  auto r = check_conflict_graph(h);
  EXPECT_FALSE(r.ok);
}

TEST(ConflictGraph, RealTimeEdgeCreatesCycle) {
  // t2 decided before t3 certified (rt edge t2->t3) but t3 reads the version
  // t2 overwrote, creating rw edge t3->t2: cycle.
  History h;
  h.record_certify(1, 2, make_payload({{1, 0}}, {{1, 9}}, 1));
  h.record_decide(2, 2, Decision::kCommit);
  h.record_certify(3, 3, make_payload({{1, 0}}, {}, 0));
  h.record_decide(4, 3, Decision::kCommit);
  auto r = check_conflict_graph(h);
  EXPECT_FALSE(r.ok);
}

// --- TCS-LL checker ----------------------------------------------------------

class TcsLLFixture : public ::testing::Test {
 protected:
  TcsLLFixture() : shard_map_(2) {
    input_.history = &history_;
    input_.shard_map = &shard_map_;
    input_.certifier = &certifier_;
  }

  ShardCertRecord& add_record(TxnId t, ShardId s, Slot pos, Decision vote,
                              Payload pload) {
    ShardCertRecord rec;
    rec.txn = t;
    rec.shard = s;
    rec.epoch = 1;
    rec.pos = pos;
    rec.vote = vote;
    rec.pload = std::move(pload);
    auto [it, _] = input_.records.emplace(std::make_pair(t, s), std::move(rec));
    return it->second;
  }

  History history_;
  tcs::ShardMap shard_map_;
  tcs::SerializabilityCertifier certifier_;
  TcsLLInput input_;
};

TEST_F(TcsLLFixture, EmptyOk) {
  auto r = check_tcsll(input_);
  EXPECT_TRUE(r.ok) << r.summary();
}

TEST_F(TcsLLFixture, SingleShardCommitOk) {
  // Objects 0 -> shard 0.
  Payload l = make_payload({{0, 0}}, {{0, 5}}, 1);
  history_.record_certify(1, 1, l);
  history_.record_decide(5, 1, Decision::kCommit);
  add_record(1, 0, 1, Decision::kCommit, shard_map_.project(l, 0));
  input_.decided[1] = Decision::kCommit;
  auto r = check_tcsll(input_);
  EXPECT_TRUE(r.ok) << r.summary();
}

TEST_F(TcsLLFixture, Violation6_DecisionNotMeet) {
  // Cross-shard txn on objects 0 (shard 0) and 1 (shard 1); one shard voted
  // abort but decision says commit.
  Payload l = make_payload({{0, 0}, {1, 0}}, {{0, 5}, {1, 5}}, 1);
  history_.record_certify(1, 1, l);
  history_.record_decide(5, 1, Decision::kCommit);
  add_record(1, 0, 1, Decision::kCommit, shard_map_.project(l, 0));
  add_record(1, 1, 1, Decision::kAbort, shard_map_.project(l, 1));
  auto r = check_tcsll(input_);
  ASSERT_FALSE(r.ok);
  EXPECT_NE(r.summary().find("(6)"), std::string::npos);
}

TEST_F(TcsLLFixture, Violation7_DuplicatePosition) {
  Payload l1 = make_payload({{0, 0}}, {}, 0);
  Payload l2 = make_payload({{2, 0}}, {}, 0);
  history_.record_certify(1, 1, l1);
  history_.record_certify(2, 2, l2);
  history_.record_decide(5, 1, Decision::kCommit);
  history_.record_decide(6, 2, Decision::kCommit);
  add_record(1, 0, 1, Decision::kCommit, shard_map_.project(l1, 0));
  add_record(2, 0, 1, Decision::kCommit, shard_map_.project(l2, 0));  // same pos
  auto r = check_tcsll(input_);
  ASSERT_FALSE(r.ok);
  EXPECT_NE(r.summary().find("(7)"), std::string::npos);
}

TEST_F(TcsLLFixture, Violation8_CommitWithWrongPayload) {
  Payload l = make_payload({{0, 0}}, {{0, 5}}, 1);
  history_.record_certify(1, 1, l);
  history_.record_decide(5, 1, Decision::kCommit);
  add_record(1, 0, 1, Decision::kCommit, empty_payload());  // must be l|s
  auto r = check_tcsll(input_);
  ASSERT_FALSE(r.ok);
  EXPECT_NE(r.summary().find("(8)"), std::string::npos);
}

TEST_F(TcsLLFixture, AbortWithEmptyPayloadAllowed) {
  // The retry path prepares unknown transactions as aborted with ε.
  Payload l = make_payload({{0, 0}}, {{0, 5}}, 1);
  history_.record_certify(1, 1, l);
  history_.record_decide(5, 1, Decision::kAbort);
  add_record(1, 0, 1, Decision::kAbort, empty_payload());
  auto r = check_tcsll(input_);
  EXPECT_TRUE(r.ok) << r.summary();
}

TEST_F(TcsLLFixture, Violation9_UnjustifiedCommit) {
  // t2 committed against a conflicting committed witness.
  Payload l1 = make_payload({{0, 0}}, {{0, 5}}, 1);
  Payload l2 = make_payload({{0, 0}}, {}, 0);  // reads what t1 overwrote
  history_.record_certify(1, 1, l1);
  history_.record_decide(2, 1, Decision::kCommit);
  history_.record_certify(3, 2, l2);
  history_.record_decide(4, 2, Decision::kCommit);
  add_record(1, 0, 1, Decision::kCommit, shard_map_.project(l1, 0));
  auto& rec2 = add_record(2, 0, 2, Decision::kCommit, shard_map_.project(l2, 0));
  rec2.committed_against = {1};  // the vote claims it checked against t1
  input_.decided[1] = Decision::kCommit;
  input_.decided[2] = Decision::kCommit;
  auto r = check_tcsll(input_);
  ASSERT_FALSE(r.ok);
  EXPECT_NE(r.summary().find("(9)"), std::string::npos);
}

TEST_F(TcsLLFixture, Violation10_MissingCommittedWitness) {
  // t1 committed at pos 1, t2's record claims an empty T set.
  Payload l1 = make_payload({{0, 0}}, {{0, 5}}, 1);
  Payload l2 = make_payload({{2, 0}}, {{2, 7}}, 1);
  history_.record_certify(1, 1, l1);
  history_.record_decide(2, 1, Decision::kCommit);
  history_.record_certify(3, 2, l2);
  history_.record_decide(4, 2, Decision::kCommit);
  add_record(1, 0, 1, Decision::kCommit, shard_map_.project(l1, 0));
  add_record(2, 0, 2, Decision::kCommit, shard_map_.project(l2, 0));
  // committed_against left empty although t1 precedes and committed.
  input_.decided[1] = Decision::kCommit;
  input_.decided[2] = Decision::kCommit;
  auto r = check_tcsll(input_);
  ASSERT_FALSE(r.ok);
  EXPECT_NE(r.summary().find("(10)"), std::string::npos);
}

TEST_F(TcsLLFixture, CorrectWitnessSetsPass) {
  Payload l1 = make_payload({{0, 0}}, {{0, 5}}, 1);
  Payload l2 = make_payload({{2, 0}}, {{2, 7}}, 1);
  history_.record_certify(1, 1, l1);
  history_.record_decide(2, 1, Decision::kCommit);
  history_.record_certify(3, 2, l2);
  history_.record_decide(4, 2, Decision::kCommit);
  add_record(1, 0, 1, Decision::kCommit, shard_map_.project(l1, 0));
  auto& rec2 = add_record(2, 0, 2, Decision::kCommit, shard_map_.project(l2, 0));
  rec2.committed_against = {1};
  input_.decided[1] = Decision::kCommit;
  input_.decided[2] = Decision::kCommit;
  auto r = check_tcsll(input_);
  EXPECT_TRUE(r.ok) << r.summary();
}

TEST_F(TcsLLFixture, PreparedWitnessAllowedAndChecked) {
  Payload l1 = make_payload({{0, 0}}, {{0, 5}}, 1);
  Payload l2 = make_payload({{2, 0}}, {{2, 7}}, 1);
  history_.record_certify(1, 1, l1);
  history_.record_certify(2, 2, l2);
  history_.record_decide(3, 1, Decision::kCommit);
  history_.record_decide(4, 2, Decision::kCommit);
  add_record(1, 0, 1, Decision::kCommit, shard_map_.project(l1, 0));
  auto& rec2 = add_record(2, 0, 2, Decision::kCommit, shard_map_.project(l2, 0));
  rec2.prepared_against = {1};  // t1 was merely prepared when t2 was voted on
  input_.decided[1] = Decision::kCommit;
  input_.decided[2] = Decision::kCommit;
  auto r = check_tcsll(input_);
  EXPECT_TRUE(r.ok) << r.summary();
}

TEST_F(TcsLLFixture, LostPreparedWitnessSkipped) {
  // Paper Sec. 3 "losing undecided transactions": t2's vote was computed
  // against prepared t9, which was lost in a reconfiguration and has no
  // record.  The history is still TCS-LL-correct.
  Payload l2 = make_payload({{2, 0}}, {{2, 7}}, 1);
  history_.record_certify(2, 2, l2);
  history_.record_decide(4, 2, Decision::kCommit);
  auto& rec2 = add_record(2, 0, 2, Decision::kCommit, shard_map_.project(l2, 0));
  rec2.prepared_against = {9};  // lost: no record, never decided
  input_.decided[2] = Decision::kCommit;
  auto r = check_tcsll(input_);
  EXPECT_TRUE(r.ok) << r.summary();
}

TEST_F(TcsLLFixture, Violation12_RealTimeOrderVsPositions) {
  // t1 decided before t2 was certified, yet t2 sits earlier in the
  // certification order of their common shard.
  Payload l1 = make_payload({{0, 0}}, {}, 0);
  Payload l2 = make_payload({{0, 0}}, {}, 0);
  history_.record_certify(1, 1, l1);
  history_.record_decide(2, 1, Decision::kCommit);
  history_.record_certify(3, 2, l2);  // after t1's decide
  history_.record_decide(4, 2, Decision::kCommit);
  add_record(1, 0, 2, Decision::kCommit, shard_map_.project(l1, 0));
  add_record(2, 0, 1, Decision::kCommit, shard_map_.project(l2, 0));
  input_.decided[1] = Decision::kCommit;
  input_.decided[2] = Decision::kCommit;
  auto r = check_tcsll(input_);
  ASSERT_FALSE(r.ok);
  EXPECT_NE(r.summary().find("(12)"), std::string::npos);
}

}  // namespace
}  // namespace ratc::checker
