// Randomized sweeps of the CSN snapshot-read fast path.
//
// Every run already asserts, through apply_end_of_run_checks, that each
// served read was a consistent snapshot (checker::check_snapshot_reads) on
// top of the stack's own verifier and the linearization DFS.  This suite
// adds the read-mix dimension:
//   * all three stacks survive crash/partition/reconfiguration schedules at
//     read_fraction 0, 0.5 and 0.95 (the 95/5 mix);
//   * reads are genuinely exercised: a faultless 95/5 run serves a
//     multiple of its update count in reads on every stack;
//   * determinism: reads ride a dedicated rng stream and send nothing, so
//     the fingerprint at read_fraction 0.95 equals the same seed's
//     fingerprint at read_fraction 0 — the read mix is trace-invisible.
#include <gtest/gtest.h>

#include <vector>

#include "common/random.h"
#include "harness/schedule.h"
#include "harness/sweep.h"

namespace ratc {
namespace {

harness::ScheduleOptions faulty_schedule() {
  harness::ScheduleOptions s;
  s.crashes = 1;
  s.reconfigures = 1;
  s.partitions = 1;
  s.delay_windows = 1;
  s.window_hi = 200;
  return s;
}

constexpr double kMixes[] = {0.0, 0.5, 0.95};

template <typename WorkloadT, typename RunFn>
void sweep_read_mixes(RunFn run_workload, int fallback_seeds,
                      const char* stack) {
  int seeds = harness::sweep_seed_count(fallback_seeds);
  for (double mix : kMixes) {
    WorkloadT w;
    w.total_txns = 60;
    w.drain = 5000;
    w.read_fraction = mix;
    harness::SweepResult sweep = harness::parallel_sweep_seeds(
        1, seeds, [&](std::uint64_t seed) {
          Rng r(seed);
          return run_workload(seed, w, generate_schedule(r, faulty_schedule()));
        });
    EXPECT_TRUE(sweep.ok()) << stack << " read_fraction " << mix << "\n"
                            << sweep.report();
  }
}

TEST(SnapshotReadSweep, CommitSurvivesFaultsAcrossReadMixes) {
  sweep_read_mixes<harness::CommitWorkloadOptions>(harness::run_commit_workload,
                                                   6, "commit");
}

TEST(SnapshotReadSweep, RdmaSurvivesFaultsAcrossReadMixes) {
  sweep_read_mixes<harness::RdmaWorkloadOptions>(harness::run_rdma_workload, 6,
                                                 "rdma");
}

TEST(SnapshotReadSweep, BaselineSurvivesFaultsAcrossReadMixes) {
  sweep_read_mixes<harness::BaselineWorkloadOptions>(
      harness::run_baseline_workload, 6, "baseline");
}

TEST(SnapshotReadSweep, BaselineCoopSurvivesFaultsAcrossReadMixes) {
  sweep_read_mixes<harness::BaselineCoopWorkloadOptions>(
      harness::run_baseline_coop_workload, 4, "baseline-coop");
}

TEST(SnapshotReadSweep, FaultlessNinetyFiveFiveActuallyServesReads) {
  // Without faults every stack must serve the overwhelming majority of the
  // ~19 reads-per-update the 95/5 mix issues (the reconfigurable stacks on
  // any replica; the baseline at its caught-up leaders).
  harness::Schedule no_faults;
  auto expect_reads = [&](harness::RunResult r, const char* stack) {
    EXPECT_EQ(r.problems, "") << stack;
    EXPECT_GT(r.reads_attempted, r.submitted * 5) << stack;
    // The reconfigurable stacks serve on any replica; the baseline only at
    // caught-up leaders, which refuse during small apply windows — so the
    // shared floor is a solid majority, not 100%.
    EXPECT_GT(r.reads_served, r.reads_attempted / 2) << stack;
  };
  harness::CommitWorkloadOptions cw;
  cw.total_txns = 40;
  cw.read_fraction = 0.95;
  expect_reads(run_commit_workload(3, cw, no_faults), "commit");
  harness::RdmaWorkloadOptions rw;
  rw.total_txns = 40;
  rw.read_fraction = 0.95;
  expect_reads(run_rdma_workload(3, rw, no_faults), "rdma");
  harness::BaselineWorkloadOptions bw;
  bw.total_txns = 40;
  bw.read_fraction = 0.95;
  expect_reads(run_baseline_workload(3, bw, no_faults), "baseline");
}

TEST(SnapshotReadSweep, ReadMixLeavesTheUpdateTraceUntouched) {
  // The determinism pin of the PR: the read mix draws from its own rng
  // stream and puts nothing on the wire, so for the same seed and schedule
  // the full message-trace fingerprint is IDENTICAL at read_fraction 0.95
  // and 0 — on every stack.  A read path that sent a message, advanced
  // virtual time, or consumed workload randomness would split them.
  auto fingerprints_match = [](auto run_workload, auto base_workload,
                               const char* stack) {
    auto with_mix = [&](double mix) {
      auto w = base_workload;
      w.total_txns = 50;
      w.drain = 4000;
      w.read_fraction = mix;
      Rng r(17);
      return run_workload(17, w, generate_schedule(r, faulty_schedule()));
    };
    harness::RunResult zero = with_mix(0.0);
    harness::RunResult mixed = with_mix(0.95);
    EXPECT_EQ(zero.fingerprint, mixed.fingerprint) << stack;
    EXPECT_EQ(zero.decided, mixed.decided) << stack;
    EXPECT_EQ(zero.reads_attempted, 0u) << stack;
    EXPECT_GT(mixed.reads_attempted, 0u) << stack;
  };
  fingerprints_match(harness::run_commit_workload,
                     harness::CommitWorkloadOptions{}, "commit");
  fingerprints_match(harness::run_rdma_workload, harness::RdmaWorkloadOptions{},
                     "rdma");
  fingerprints_match(harness::run_baseline_workload,
                     harness::BaselineWorkloadOptions{}, "baseline");
}

}  // namespace
}  // namespace ratc
