// Liveness properties (paper Theorems 4.2-4.4): reconfiguration introduces
// and activates new configurations, and certification makes progress, under
// the stated conditions (Assumption 1: one non-faulty member per
// configuration throughout its lifetime; no concurrent reconfigurations;
// processes non-faulty for long enough).
#include <gtest/gtest.h>

#include "commit/cluster.h"

namespace ratc::commit {
namespace {

using tcs::Decision;
using tcs::Payload;

Payload one_object(ObjectId o, Version v = 0) {
  Payload p;
  p.reads = {{o, v}};
  p.writes = {{o, static_cast<Value>(o)}};
  p.commit_version = v + 1;
  return p;
}

// Theorem 4.2: a solo reconfigurer that stays up eventually *introduces* a
// new configuration (stores it in the CS).
TEST(Liveness, Theorem42_SoloReconfigurerIntroduces) {
  Cluster cluster({.seed = 1, .num_shards = 1, .shard_size = 3});
  cluster.crash(cluster.leader_of(0));
  ASSERT_EQ(cluster.current_config(0).epoch, 1u);
  cluster.reconfigure(0, cluster.replica(0, 1).id());
  bool introduced = cluster.sim().run_until_pred(
      [&] { return cluster.current_config(0).epoch == 2; });
  EXPECT_TRUE(introduced);
}

// Theorem 4.3: an introduced configuration whose members stay non-faulty is
// eventually *activated* (all members process NEW_STATE / NEW_CONFIG).
TEST(Liveness, Theorem43_IntroducedConfigurationActivates) {
  Cluster cluster({.seed = 2, .num_shards = 1, .shard_size = 3});
  cluster.crash(cluster.leader_of(0));
  cluster.reconfigure(0, cluster.replica(0, 1).id());
  ASSERT_TRUE(cluster.await_active_epoch(0, 2));
  configsvc::ShardConfig cfg = cluster.current_config(0);
  for (ProcessId m : cfg.members) {
    const Replica& r = cluster.replica_by_pid(m);
    EXPECT_EQ(r.epoch(), 2u);
    EXPECT_TRUE(r.initialized());
    EXPECT_TRUE(r.status() == Status::kLeader || r.status() == Status::kFollower);
  }
}

// Theorem 4.4: with every shard's configuration active, everyone aware of
// it, and no failures or reconfigurations, every submitted transaction is
// eventually decided.
TEST(Liveness, Theorem44_CertificationTerminates) {
  Cluster cluster({.seed = 3, .num_shards = 3, .shard_size = 2});
  Client& client = cluster.add_client();
  std::vector<TxnId> txns;
  for (int i = 0; i < 40; ++i) {
    TxnId t = cluster.next_txn_id();
    txns.push_back(t);
    client.certify_colocated(cluster.replica(static_cast<ShardId>(i % 3), 1), t,
                             one_object(static_cast<ObjectId>(i)));
  }
  cluster.sim().run();
  for (TxnId t : txns) {
    EXPECT_TRUE(client.decided(t)) << "txn" << t << " undecided";
  }
  EXPECT_EQ(cluster.verify(), "");
}

// Theorem 4.4 applies per configuration: after a reconfiguration settles,
// certification terminates again.
TEST(Liveness, Theorem44_AfterReconfiguration) {
  Cluster cluster({.seed = 4, .num_shards = 2, .shard_size = 2});
  Client& client = cluster.add_client();
  cluster.crash(cluster.leader_of(0));
  cluster.reconfigure(0, cluster.replica(0, 1).id());
  ASSERT_TRUE(cluster.await_active_epoch(0, 2));
  std::vector<TxnId> txns;
  for (int i = 0; i < 20; ++i) {
    TxnId t = cluster.next_txn_id();
    txns.push_back(t);
    client.certify_colocated(cluster.replica(1, 1), t,
                             one_object(static_cast<ObjectId>(2 * i)));
  }
  cluster.sim().run();
  for (TxnId t : txns) EXPECT_TRUE(client.decided(t));
  EXPECT_EQ(cluster.verify(), "");
}

// The reconfiguration of one shard does not disturb certification confined
// to other shards (Sec. 3: "Reconfiguration is done only in the affected
// shard, without disrupting others").
TEST(Liveness, OtherShardsUndisturbedDuringReconfiguration) {
  Cluster cluster({.seed = 5, .num_shards = 3, .shard_size = 2});
  Client& client = cluster.add_client();
  cluster.crash(cluster.leader_of(0));
  cluster.reconfigure(0, cluster.replica(0, 1).id());
  // Submit to shards 1 and 2 while shard 0 is mid-change.
  std::vector<TxnId> txns;
  for (int i = 0; i < 20; ++i) {
    ShardId s = 1 + static_cast<ShardId>(i % 2);
    TxnId t = cluster.next_txn_id();
    txns.push_back(t);
    client.certify_colocated(cluster.replica(s, 1), t,
                             one_object(static_cast<ObjectId>(3 * i + s)));
  }
  cluster.sim().run();
  for (TxnId t : txns) EXPECT_TRUE(client.decided(t));
  EXPECT_EQ(cluster.verify(), "");
}

// Negative space of Assumption 1: if EVERY member of every epoch of a shard
// dies, reconfiguration cannot find an initialized process and gives up
// (data loss), without violating safety elsewhere.
TEST(Liveness, Assumption1ViolationMeansNoProgressButNoUnsafety) {
  Cluster cluster({.seed = 6, .num_shards = 2, .shard_size = 2});
  Client& client = cluster.add_client();
  cluster.crash(cluster.replica(0, 0).id());
  cluster.crash(cluster.replica(0, 1).id());  // whole shard gone
  ProcessId spare = cluster.spares(0)[0];
  cluster.reconfigure(0, spare);
  cluster.sim().run_until(2000);
  // No new epoch could be introduced for shard 0; the reconfigurer stays
  // stuck probing (the paper: "the reconfiguration procedure will get stuck
  // if it cannot find an initialized process").
  EXPECT_EQ(cluster.current_config(0).epoch, 1u);
  EXPECT_TRUE(cluster.replica_by_pid(spare).is_probing());
  // Shard 1 still works.
  TxnId t = cluster.next_txn_id();
  client.certify_colocated(cluster.replica(1, 1), t, one_object(1));
  cluster.sim().run();
  EXPECT_EQ(client.decision(t), Decision::kCommit);
  EXPECT_EQ(cluster.verify(), "");
}

}  // namespace
}  // namespace ratc::commit
