// Sensitivity tests for the invariant monitor: each check must actually
// fire on a violating message sequence (the monitors are the oracles for
// the whole test suite, so they must not be vacuous).
#include <gtest/gtest.h>

#include "commit/cluster.h"
#include "commit/monitor.h"
#include "sim/simulator.h"

namespace ratc::commit {
namespace {

using tcs::Decision;
using tcs::Payload;

Payload one_object(ObjectId o) {
  Payload p;
  p.reads = {{o, 0}};
  p.writes = {{o, 1}};
  p.commit_version = 1;
  return p;
}

bool mentions(const Monitor& m, const std::string& inv) {
  return m.violations().summary().find(inv) != std::string::npos;
}

TEST(MonitorSensitivity, Invariant4a_ConflictingSlotDecisions) {
  sim::Simulator sim(1);
  Monitor monitor(sim);
  DecisionMsg a{1, 0, 7, 42, Decision::kCommit};
  DecisionMsg b{2, 0, 7, 42, Decision::kAbort};  // same shard+slot, other way
  monitor.on_send(0, 1, 2, sim::AnyMessage(a));
  EXPECT_TRUE(monitor.violations().empty());
  monitor.on_send(0, 1, 2, sim::AnyMessage(b));
  EXPECT_TRUE(mentions(monitor, "Invariant4a"));
  EXPECT_TRUE(mentions(monitor, "Invariant4b"));  // same txn too
}

TEST(MonitorSensitivity, Invariant4b_ConflictingClientDecisions) {
  sim::Simulator sim(2);
  Monitor monitor(sim);
  monitor.on_send(0, 1, 9, sim::AnyMessage(ClientDecision{5, Decision::kCommit}));
  monitor.on_send(0, 2, 9, sim::AnyMessage(ClientDecision{5, Decision::kAbort}));
  EXPECT_TRUE(mentions(monitor, "Invariant4b"));
}

TEST(MonitorSensitivity, Invariant4b_LocalVsRemoteConflict) {
  sim::Simulator sim(3);
  Monitor monitor(sim);
  monitor.on_local_decision(5, Decision::kAbort);
  monitor.on_send(0, 2, 9, sim::AnyMessage(ClientDecision{5, Decision::kCommit}));
  EXPECT_TRUE(mentions(monitor, "Invariant4b"));
}

TEST(MonitorSensitivity, Invariant3_AcceptAckBelowProbedEpoch) {
  sim::Simulator sim(4);
  Monitor monitor(sim);
  // Process 7 acknowledges PROBE for epoch 5...
  monitor.on_send(0, 7, 1, sim::AnyMessage(ProbeAck{true, 5, 0}));
  // ...then acknowledges an ACCEPT at epoch 3.
  monitor.on_send(0, 7, 2, sim::AnyMessage(AcceptAck{0, 3, 1, 42, Decision::kCommit}));
  EXPECT_TRUE(mentions(monitor, "Invariant3"));
}

TEST(MonitorSensitivity, Invariant6_ConflictingAccepts) {
  sim::Simulator sim(5);
  Monitor monitor(sim);
  Accept a;
  a.epoch = 1;
  a.shard = 0;
  a.slot = 3;
  a.txn = 10;
  a.vote = Decision::kCommit;
  Accept b = a;
  b.txn = 11;  // different transaction in the same (epoch, slot)
  monitor.on_send(0, 1, 2, sim::AnyMessage(a));
  monitor.on_send(0, 1, 2, sim::AnyMessage(b));
  EXPECT_TRUE(mentions(monitor, "Invariant6"));
}

TEST(MonitorSensitivity, Invariant9_SameTxnTwoSlots) {
  sim::Simulator sim(6);
  Monitor monitor(sim);
  Accept a;
  a.epoch = 1;
  a.shard = 0;
  a.slot = 3;
  a.txn = 10;
  Accept b = a;
  b.slot = 4;  // same transaction at another slot in the same epoch
  monitor.on_send(0, 1, 2, sim::AnyMessage(a));
  monitor.on_send(0, 1, 2, sim::AnyMessage(b));
  EXPECT_TRUE(mentions(monitor, "Invariant9"));
}

TEST(MonitorSensitivity, Invariant12b_CommitDecisionOntoAbortVote) {
  // End-to-end: create an abort-voted slot, then inject a forged commit
  // decision for it; the delivery-side check must fire.
  Cluster cluster({.seed = 7, .num_shards = 1, .shard_size = 2});
  Client& client = cluster.add_client();
  TxnId t1 = cluster.next_txn_id();
  TxnId t2 = cluster.next_txn_id();
  client.certify_colocated(cluster.replica(0, 1), t1, one_object(0));
  client.certify_colocated(cluster.replica(0, 1), t2, one_object(0));  // conflicts
  cluster.sim().run();
  ASSERT_EQ(client.decision(t2), Decision::kAbort);

  Replica& leader = cluster.replica(0, 0);
  Slot k = leader.log().slot_of(t2);
  ASSERT_EQ(leader.log().find(k)->vote, Decision::kAbort);

  DecisionMsg forged{1, 0, k, t2, Decision::kCommit};
  cluster.net().send_msg(client.id(), leader.id(), forged);
  cluster.sim().run();
  EXPECT_TRUE(mentions(cluster.monitor(), "Invariant12b"));
}

TEST(MonitorSensitivity, CleanRunReportsNothing) {
  Cluster cluster({.seed = 8, .num_shards = 2, .shard_size = 2});
  Client& client = cluster.add_client();
  for (int i = 0; i < 20; ++i) {
    client.certify_colocated(cluster.replica(0, 1), cluster.next_txn_id(),
                             one_object(static_cast<ObjectId>(i)));
  }
  cluster.sim().run();
  EXPECT_TRUE(cluster.monitor().violations().empty())
      << cluster.monitor().violations().summary();
}

TEST(MonitorSensitivity, TcsLLCatchesForgedWitness) {
  // The TCS-LL checker must reject a record whose vote contradicts its
  // witnesses even when the protocol run was clean: corrupt the collected
  // input and verify the checker notices.
  Cluster cluster({.seed = 9, .num_shards = 1, .shard_size = 2});
  Client& client = cluster.add_client();
  TxnId t1 = cluster.next_txn_id(), t2 = cluster.next_txn_id();
  client.certify_colocated(cluster.replica(0, 1), t1, one_object(0));
  cluster.sim().run();
  client.certify_colocated(cluster.replica(0, 1), t2, one_object(2));
  cluster.sim().run();
  ASSERT_EQ(client.decision(t1), Decision::kCommit);
  ASSERT_EQ(client.decision(t2), Decision::kCommit);

  checker::TcsLLInput input = cluster.monitor().tcsll_input(
      cluster.history(), cluster.shard_map(), cluster.certifier());
  ASSERT_TRUE(checker::check_tcsll(input).ok);

  // Forge: claim t2's vote ignored the committed t1.
  auto it = input.records.find({t2, 0});
  ASSERT_NE(it, input.records.end());
  it->second.committed_against.clear();
  auto result = checker::check_tcsll(input);
  EXPECT_FALSE(result.ok);
  EXPECT_NE(result.summary().find("(10)"), std::string::npos);
}

}  // namespace
}  // namespace ratc::commit
