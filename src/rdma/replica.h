// Replica of the RDMA-based atomic commit protocol (paper Sec. 5, Figs. 7-8).
//
// Differences from the message-passing protocol of Fig. 1:
//  * ACCEPT and DECISION are one-sided RDMA writes; followers acknowledge
//    through their NIC without executing any check — the coordinator acts
//    on ack-rdma completions (Fig. 7 lines 93-100);
//  * because the follower-side epoch guard (Fig. 1 line 22) is therefore
//    gone, reconfiguration must be *global*: a single system epoch, probing
//    of every shard, CONFIG_PREPARE dissemination to the whole membership
//    before activation, and connection management (close on PROBE, flush on
//    NEW_CONFIG, re-open via CONNECT) — Fig. 8;
//  * processes keep one `epoch` variable instead of a per-shard vector.
//
// The replica also implements ReconfigMode::kPerShardUnsafe: the Fig. 1
// reconfiguration (per-shard, no connection management) combined with the
// RDMA data path.  This is the protocol the paper proves INCORRECT via the
// Figure 4a counter-example; tests use it to reproduce the violation and
// to show the global protocol prevents it (experiment E7).
#pragma once

#include <functional>
#include <map>
#include <set>
#include <utility>
#include <vector>

#include "commit/log.h"
#include "commit/messages.h"
#include "commit/witness_index.h"
#include "configsvc/client.h"
#include "configsvc/config.h"
#include "fd/failure_detector.h"
#include "rdma/fabric.h"
#include "rdma/messages.h"
#include "recon/engine.h"
#include "sim/network.h"
#include "sim/process.h"
#include "store/versioned_store.h"
#include "tcs/certifier.h"
#include "tcs/csn.h"
#include "tcs/shard_map.h"

namespace ratc::rdma {

class RdmaMonitor;

enum class ReconfigMode {
  kGlobalSafe,      ///< Fig. 8: the paper's corrected protocol
  kPerShardUnsafe,  ///< Fig. 4a strawman: per-shard reconfiguration + RDMA
};

enum class Status { kLeader, kFollower, kReconfiguring };

class Replica : public sim::Process, private recon::StackHooks {
 public:
  struct Options {
    ShardId shard = 0;
    ReconfigMode mode = ReconfigMode::kGlobalSafe;
    const tcs::ShardMap* shard_map = nullptr;
    const tcs::Certifier* certifier = nullptr;
    /// Global-CS endpoints (safe mode) or per-shard-CS endpoints (unsafe).
    std::vector<ProcessId> cs_endpoints;
    std::size_t target_shard_size = 2;
    std::function<std::vector<ProcessId>(ShardId, std::size_t)> allocate_spares;
    /// Returns spares reserved by a proposal whose CAS lost (they remain
    /// fresh; see commit::Replica::Options::release_spares).
    std::function<void(ShardId, const std::vector<ProcessId>&)> release_spares;
    Duration probe_patience = 5;
    /// Membership policy for the reconfigurer role (both modes); null
    /// selects recon::ReplaceSuspectsPolicy.  Non-owning.
    recon::PlacementPolicy* placement_policy = nullptr;
    /// Cluster knowledge (zones, load, spare depth) for the policy.
    std::function<recon::PlacementContext(ShardId)> placement_context;
    Duration connect_retry = 5;
    Duration retry_timeout = 0;
    /// ABLATION (tests only): skip the flush() at NEW_CONFIG (Fig. 8 line
    /// 142).  Unsafe: acknowledged-but-unpolled writes are dropped from the
    /// state transfer even though coordinators may have externalized
    /// decisions based on those acknowledgements.
    bool ablate_flush = false;
    /// Debug cross-check: recompute every vote with the flat L1/L2 log scan
    /// and abort on divergence from the witness index (see commit::Replica).
    bool check_certifier_index = false;
    /// Versions per object the snapshot store retains for CSN reads.
    std::size_t snapshot_history_depth = 16;
    RdmaMonitor* monitor = nullptr;
  };

  Replica(rt::Runtime& rt, Fabric& fabric, ProcessId id, Options options);
  Replica(sim::Simulator& sim, sim::Network& net, Fabric& fabric, ProcessId id,
          Options options);

  /// Installs the pre-activated initial configuration.  The harness opens
  /// the initial RDMA connections.
  void bootstrap(Status status, const configsvc::GlobalConfig& config);
  void bootstrap_spare(const configsvc::GlobalConfig& config);

  /// As commit::Replica::certify_local: the callback's Time is csn(t).ts
  /// (0 for aborts); `origin` is the co-located client a successor
  /// coordinator routes the decision to after a crash.
  void certify_local(TxnId txn, const tcs::Payload& payload,
                     std::function<void(tcs::Decision, Time)> cb,
                     ProcessId origin = kNoProcess);

  /// Batched certify with this replica as coordinator of every item (see
  /// commit::Replica::certify_batch_local): one PREPARE_BATCH per shard
  /// leader, one batched one-sided ACCEPT write per follower.
  void certify_batch_local(
      const std::vector<std::pair<TxnId, tcs::Payload>>& batch,
      std::function<void(TxnId, tcs::Decision, Time)> cb,
      ProcessId origin = kNoProcess);

  /// Global reconfiguration (safe mode, Fig. 8 line 103).
  void reconfigure();
  /// Per-shard reconfiguration (unsafe mode only).
  void reconfigure_shard(ShardId s);

  void retry(Slot k);

  ShardId shard() const { return options_.shard; }
  Status status() const { return status_; }
  bool initialized() const { return initialized_; }
  Epoch epoch() const;
  const commit::ReplicaLog& log() const { return log_; }
  const configsvc::GlobalConfig& global_config() const { return config_; }
  ProcessId leader_of(ShardId s) const;
  std::vector<ProcessId> members_of(ShardId s) const;
  const std::set<ProcessId>& connections() const { return connections_; }
  /// The shared reconfigurer core (stats + spare-ledger introspection).
  const recon::Engine& recon_engine() const { return engine_; }

  // --- CSN read surface (see commit::Replica) --------------------------------
  //
  // No fabric flush is needed before serving a read: an RAccept still in
  // flight means this replica never acknowledged, so the transaction cannot
  // be decided anywhere (lines 96-97); an RDecision still in flight leaves
  // the slot prepared here, where it gates the watermark.

  /// The largest snapshot this replica can currently serve.
  tcs::Csn read_watermark() const;

  /// The multi-version committed state CSN reads are served from.
  const store::SnapshotStore& snapshot_store() const { return store_; }

  void on_message(ProcessId from, const sim::AnyMessage& msg) override;

 private:
  struct ShardProgress {
    bool have_prepare_ack = false;
    Epoch epoch = kNoEpoch;
    Slot slot = kNoSlot;
    tcs::Decision vote = tcs::Decision::kAbort;
    Time prepare_ts = 0;  ///< leader's CSN stamp; csn(t).ts = max over shards
    std::set<ProcessId> pending_writes;  ///< followers whose ack is awaited
    std::set<ProcessId> acked;
  };
  struct CoordState {
    commit::TxnMeta meta;
    std::map<ShardId, ShardProgress> progress;
    bool decided = false;
    /// Set for co-located clients; second arg is csn(t).ts (0 for aborts).
    std::function<void(tcs::Decision, Time)> local_cb;
    /// Per-shard projections for coordinator re-drive (see
    /// redrive_coordinations); empty for ⊥ retries.
    std::map<ShardId, tcs::Payload> shard_payloads;
    Time last_driven = 0;
  };
  // Certification path (Fig. 7).
  void start_certification(commit::TxnMeta meta, const tcs::Payload* full_payload,
                           std::function<void(tcs::Decision, Time)> local_cb);
  void handle_prepare(ProcessId from, const commit::Prepare& m);
  void prepare_and_ack(ProcessId coordinator, const commit::Prepare& m);
  void handle_prepare_batch(ProcessId from, const commit::PrepareBatch& m);
  /// Fig. 7 lines 78-90 without the send; shared by the scalar and batched
  /// paths.
  commit::PrepareAck prepare_txn(const commit::Prepare& m);
  tcs::Decision compute_vote(Slot slot, const tcs::Payload& l);
  /// Aborts on divergence between the witness index and the flat scan
  /// (no-op unless check_certifier_index).
  void check_index_against_flat(Slot slot, tcs::Decision indexed_vote,
                                const tcs::Payload& l,
                                const commit::WitnessIndex::Witnesses& w) const;
  /// Sets-only variant for forced-abort slots, where the vote is a protocol
  /// constant rather than an index computation.
  void check_index_sets_against_flat(
      Slot slot, const commit::WitnessIndex::Witnesses& w) const;
  void handle_prepare_ack(const commit::PrepareAck& m);
  void handle_prepare_ack_batch(const commit::PrepareAckBatch& m);
  /// Line 92's bookkeeping without the one-sided writes: records the ack
  /// and fills *accept; false if the guard rejects it.
  bool note_prepare_ack(const commit::PrepareAck& m, RAccept* accept);
  void deliver_rdma(ProcessId from, const sim::AnyMessage& msg);
  void apply_raccept(const RAccept& a);    // line 95
  void apply_rdecision(const RDecision& d);  // line 102
  void handle_rdma_ack(const RdmaAck& ack);
  void check_coordination(TxnId txn);

  // Reconfiguration (Fig. 8 for safe mode; Fig. 1 lines 33-69 for unsafe).
  // The probe/descend/placement/CAS lifecycle lives in recon::Engine; the
  // hooks below adapt it to the global (GCS) and per-shard (CS) substrates.
  // What stays here is the probed side (handle_probe) and the safe mode's
  // fabric-aware install phase (CONFIG_PREPARE .. CONNECT, Fig. 8 lines
  // 131-162), which the engine triggers through activate().
  void handle_probe(ProcessId from, const commit::Probe& m);
  void handle_config_prepare(ProcessId from, const ConfigPrepare& m);
  void handle_config_prepare_ack(ProcessId from, const ConfigPrepareAck& m);
  void handle_new_config(const RNewConfig& m);
  void handle_new_state(ProcessId from, const RNewState& m);
  void handle_connect(ProcessId from, const Connect& m);
  void handle_connect_ack(ProcessId from, const ConnectAck& m);
  void open_connections_to(const std::vector<ProcessId>& peers);
  void arm_connect_retry();

  // Unsafe-mode reconfiguration (per-shard, Fig. 1 shape).
  void handle_new_config_unsafe(const commit::NewConfig& m);
  void handle_new_state_unsafe(ProcessId from, const commit::NewState& m);
  void handle_config_change(const configsvc::ConfigChange& m);

  /// Refiles every decided-commit log entry into the snapshot store under
  /// its csn (log replacement / leader takeover).
  void rebuild_snapshot_store();

  void arm_retry_timer();
  /// One retry-timer firing, collect-then-act (see commit::Replica).
  void run_retry_tick();
  /// Re-sends PREPAREs of undecided coordinated transactions to the current
  /// leaders; runs on the retry timer.  `driven_this_tick` asserts no
  /// transaction is re-driven twice within one tick.
  void redrive_coordinations(const std::set<TxnId>& driven_this_tick);
  Epoch view_epoch(ShardId s) const;

  // recon::StackHooks.
  void fetch_latest(const std::vector<ShardId>& shards,
                    std::function<void(bool, recon::Snapshot)> cb) override;
  void fetch_members_at(
      ShardId shard, Epoch epoch,
      std::function<void(bool, std::vector<ProcessId>)> cb) override;
  void send_probe(ProcessId target, Epoch new_epoch) override;
  std::vector<ProcessId> reserve_spares(ShardId shard, std::size_t n) override;
  void release_spares(ShardId shard,
                      const std::vector<ProcessId>& spares) override;
  void submit(const recon::Proposal& proposal,
              std::function<void(bool)> done) override;
  void activate(const recon::Proposal& proposal) override;
  recon::PlacementContext placement_context(ShardId shard) override;

  Options options_;
  Fabric& fabric_;
  configsvc::GcsClient gcs_;
  configsvc::CsClient cs_;  // unsafe mode
  fd::Responder fd_responder_;
  RdmaMonitor* monitor_;

  Status status_ = Status::kReconfiguring;
  bool initialized_ = false;
  Epoch new_epoch_ = kNoEpoch;
  Epoch epoch_ = kNoEpoch;  ///< the single system epoch (safe mode)
  configsvc::GlobalConfig config_;
  configsvc::GlobalConfig pending_config_;  ///< staged by CONFIG_PREPARE
  /// Unsafe mode: per-shard views, as in Fig. 1.
  std::map<ShardId, configsvc::ShardConfig> views_;
  commit::ReplicaLog log_;
  Slot next_ = 0;
  /// Object-indexed view of log_ (see commit::WitnessIndex); rebuilt on log
  /// replacement and leadership takeover.
  commit::WitnessIndex index_;
  std::set<ProcessId> connections_;

  // Reconfigurer: the probe/descend/CAS core is engine_; what remains here
  // is the safe mode's install phase (staged by activate()).
  recon::Engine engine_;
  bool installing_ = false;  ///< CONFIG_PREPARE dissemination in flight
  configsvc::GlobalConfig recon_config_;
  std::set<ProcessId> config_prepare_acks_;

  // Coordinator state; decided entries stay as slim tombstones and the
  // index bounds the re-drive scan (see commit::Replica).
  std::map<TxnId, CoordState> coord_;
  std::set<TxnId> undecided_coords_;
  /// RDMA write tokens -> (txn, shard, follower) per batched item, for ack
  /// matching (scalar writes hold one entry; a batched write's single NIC
  /// ack fans out to every item it carried).
  std::map<std::uint64_t, std::vector<std::tuple<TxnId, ShardId, ProcessId>>>
      write_tokens_;

  std::map<Slot, Time> prepared_at_;

  /// Committed multi-version state, filed under Csn{csn_ts, txn}; rebuilt
  /// from the log on RNEW_STATE / NEW_STATE / leader takeover.
  store::SnapshotStore store_;
};

}  // namespace ratc::rdma
