#include "rdma/fabric.h"

#include <algorithm>
#include <cassert>

namespace ratc::rdma {

Fabric::Options Fabric::unit_delay_options() {
  Options o;
  o.delay = [](Rng&, ProcessId, ProcessId) -> Duration { return 1; };
  o.poll_delay = 1;
  return o;
}

Fabric::Fabric(sim::Simulator& sim, Options options)
    : sim_(sim), options_(std::move(options)) {}

void Fabric::attach(ProcessId p,
                    std::function<void(ProcessId, const sim::AnyMessage&)> deliver,
                    std::function<void(const RdmaAck&)> ack) {
  Endpoint& ep = endpoints_[p];
  ep.deliver = std::move(deliver);
  ep.ack = std::move(ack);
}

void Fabric::open(ProcessId owner, ProcessId peer) {
  Endpoint& ep = endpoints_[owner];
  ep.open_from.insert(peer);
  ++ep.generation[peer];  // new queue pair incarnation
}

void Fabric::close(ProcessId owner, ProcessId peer) {
  Endpoint& ep = endpoints_[owner];
  ep.open_from.erase(peer);
  ++ep.generation[peer];  // invalidates in-flight writes
}

void Fabric::close_all(ProcessId owner) {
  Endpoint& ep = endpoints_[owner];
  for (ProcessId peer : ep.open_from) ++ep.generation[peer];
  ep.open_from.clear();
}

bool Fabric::is_open(ProcessId owner, ProcessId peer) const {
  auto it = endpoints_.find(owner);
  return it != endpoints_.end() && it->second.open_from.count(peer) > 0;
}

std::uint64_t Fabric::send_rdma(ProcessId from, ProcessId to, sim::AnyMessage msg) {
  std::uint64_t token = next_token_++;
  if (sim_.crashed(from)) return token;
  ++writes_sent_;
  Time now = sim_.now();
  for (auto* obs : observers_) obs->on_write(now, from, to, msg);
  if (from == to) {
    // A process's write to its own memory is a synchronous local store: no
    // connection, no switch, no DMA in flight.  It lands and is visible
    // immediately — it can never straddle an epoch transition, so the
    // monitor's property (*) check applies to it unconditionally.  Only the
    // NIC completion remains an event (delivered after the current handler,
    // still at the same tick).
    for (auto* obs : observers_) obs->on_landed(now, from, to, msg);
    auto it = endpoints_.find(to);
    if (it != endpoints_.end() && it->second.deliver) {
      it->second.deliver(from, msg);
    }
    sim_.schedule(0, [this, from, to, token] {
      auto sit = endpoints_.find(from);
      if (sit == endpoints_.end() || sim_.crashed(from) || !sit->second.ack) return;
      sit->second.ack(RdmaAck{to, token});
    });
    return token;
  }
  // The write targets the queue pair the sender currently holds.
  std::uint64_t gen = endpoints_[to].generation[from];
  sim::MessageFate fate;
  if (fault_ != nullptr) fate = fault_->on_message(now, from, to, msg);
  if (fate.drop) {
    ++writes_rejected_;
    for (auto* obs : observers_) obs->on_rejected(now, from, to, msg);
    return token;
  }
  Duration d = std::max<Duration>(options_.delay(sim_.rng(), from, to), 1) + fate.extra_delay;
  Time arrive = now + d;
  std::uint64_t key = (static_cast<std::uint64_t>(from) << 32) | to;
  Time& clock = channel_clock_[key];
  arrive = std::max(arrive, clock);
  clock = arrive;
  sim_.schedule(arrive - now, [this, from, to, m = std::move(msg), token, gen]() mutable {
    land(from, to, std::move(m), token, gen);
  });
  return token;
}

void Fabric::land(ProcessId from, ProcessId to, sim::AnyMessage msg,
                  std::uint64_t token, std::uint64_t gen_at_send) {
  Time now = sim_.now();
  auto it = endpoints_.find(to);
  // Self-writes never get here: send_rdma completes them synchronously.
  if (it == endpoints_.end() || sim_.crashed(to) ||
      it->second.open_from.count(from) == 0 ||
      it->second.generation[from] != gen_at_send) {
    ++writes_rejected_;
    for (auto* obs : observers_) obs->on_rejected(now, from, to, msg);
    return;  // write fails; sender gets no completion
  }
  for (auto* obs : observers_) obs->on_landed(now, from, to, msg);
  // The message is now in the receiver's memory: NIC ack to the sender
  // (no receiver CPU involvement), CPU poll later.
  it->second.buffer.emplace_back(from, std::move(msg));
  Duration d = std::max<Duration>(options_.delay(sim_.rng(), to, from), 1);
  sim_.schedule(d, [this, from, to, token] {
    auto sit = endpoints_.find(from);
    if (sit == endpoints_.end() || sim_.crashed(from) || !sit->second.ack) return;
    sit->second.ack(RdmaAck{to, token});
  });
  sim_.schedule_for(to, options_.poll_delay, [this, to] { poll_one(to); });
}

void Fabric::poll_one(ProcessId owner) {
  auto it = endpoints_.find(owner);
  if (it == endpoints_.end() || it->second.buffer.empty()) return;
  auto [from, msg] = std::move(it->second.buffer.front());
  it->second.buffer.pop_front();
  if (it->second.deliver) it->second.deliver(from, msg);
}

void Fabric::flush(ProcessId owner) {
  auto it = endpoints_.find(owner);
  if (it == endpoints_.end()) return;
  // deliver-rdma everything already acknowledged into local memory.
  while (!it->second.buffer.empty()) {
    auto [from, msg] = std::move(it->second.buffer.front());
    it->second.buffer.pop_front();
    if (it->second.deliver) it->second.deliver(from, msg);
  }
}

}  // namespace ratc::rdma
