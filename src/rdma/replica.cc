#include "rdma/replica.h"

#include <algorithm>
#include <cassert>

#include "common/log.h"
#include "ctrl/messages.h"
#include "rdma/monitor.h"

namespace ratc::rdma {

using tcs::Decision;

Replica::Replica(sim::Simulator& sim, sim::Network& net, Fabric& fabric, ProcessId id,
                 Options options)
    : Process(sim, id, "rr" + std::to_string(id) + "/s" + std::to_string(options.shard)),
      options_(std::move(options)),
      net_(net),
      fabric_(fabric),
      gcs_(sim, net, id, options_.cs_endpoints),
      cs_(sim, net, id, options_.cs_endpoints),
      fd_responder_(net, id),
      monitor_(options_.monitor) {
  assert(options_.shard_map != nullptr && options_.certifier != nullptr);
  fabric_.attach(
      id,
      [this](ProcessId from, const sim::AnyMessage& msg) { deliver_rdma(from, msg); },
      [this](const RdmaAck& ack) { handle_rdma_ack(ack); });
}

Epoch Replica::epoch() const {
  if (options_.mode == ReconfigMode::kGlobalSafe) return epoch_;
  auto it = views_.find(options_.shard);
  return it == views_.end() ? kNoEpoch : it->second.epoch;
}

Epoch Replica::view_epoch(ShardId s) const {
  if (options_.mode == ReconfigMode::kGlobalSafe) return epoch_;
  auto it = views_.find(s);
  return it == views_.end() ? kNoEpoch : it->second.epoch;
}

ProcessId Replica::leader_of(ShardId s) const {
  if (options_.mode == ReconfigMode::kGlobalSafe) {
    auto it = config_.leaders.find(s);
    return it == config_.leaders.end() ? kNoProcess : it->second;
  }
  auto it = views_.find(s);
  return it == views_.end() ? kNoProcess : it->second.leader;
}

std::vector<ProcessId> Replica::members_of(ShardId s) const {
  if (options_.mode == ReconfigMode::kGlobalSafe) {
    auto it = config_.members.find(s);
    return it == config_.members.end() ? std::vector<ProcessId>{} : it->second;
  }
  auto it = views_.find(s);
  return it == views_.end() ? std::vector<ProcessId>{} : it->second.members;
}

void Replica::bootstrap(Status status, const configsvc::GlobalConfig& config) {
  status_ = status;
  initialized_ = true;
  epoch_ = config.epoch;
  new_epoch_ = config.epoch;
  config_ = config;
  for (const auto& [s, members] : config.members) {
    configsvc::ShardConfig& v = views_[s];
    v.epoch = config.epoch;
    v.members = members;
    v.leader = config.leaders.at(s);
  }
  // Epoch 1 is pre-activated: all connections open.
  for (ProcessId p : config.all_members()) {
    if (p == id()) continue;
    fabric_.open(id(), p);
    connections_.insert(p);
  }
  arm_retry_timer();
}

void Replica::bootstrap_spare(const configsvc::GlobalConfig& config) {
  status_ = Status::kReconfiguring;
  initialized_ = false;
  config_ = config;
  epoch_ = kNoEpoch;
  new_epoch_ = kNoEpoch;
  for (const auto& [s, members] : config.members) {
    configsvc::ShardConfig& v = views_[s];
    v.epoch = config.epoch;
    v.members = members;
    v.leader = config.leaders.at(s);
  }
  if (options_.mode == ReconfigMode::kPerShardUnsafe) {
    // No connection management in the strawman: spares accept writes too.
    for (ProcessId p : config.all_members()) {
      if (p != id()) fabric_.open(id(), p);
    }
  }
  arm_retry_timer();
}

// --- certification (Fig. 7) ---------------------------------------------------

void Replica::certify_local(TxnId txn, const tcs::Payload& payload,
                            std::function<void(tcs::Decision)> cb) {
  commit::TxnMeta meta;
  meta.txn = txn;
  meta.participants = options_.shard_map->shards_of(payload);
  meta.client = kNoProcess;
  start_certification(std::move(meta), &payload, std::move(cb));
}

void Replica::start_certification(commit::TxnMeta meta, const tcs::Payload* full_payload,
                                  std::function<void(tcs::Decision)> local_cb) {
  TxnId txn = meta.txn;
  if (meta.participants.empty()) {
    if (local_cb) {
      if (monitor_) monitor_->on_local_decision(txn, Decision::kCommit);
      local_cb(Decision::kCommit);
    } else if (meta.client != kNoProcess) {
      net_.send_msg(id(), meta.client, commit::ClientDecision{txn, Decision::kCommit});
    }
    return;
  }
  CoordState& c = coord_[txn];
  if (c.decided) return;  // late retry of an already-decided coordination
  undecided_coords_.insert(txn);
  c.meta = meta;
  if (local_cb) c.local_cb = std::move(local_cb);
  c.last_driven = sim().now();
  // Lines 75-76.
  for (ShardId s : meta.participants) {
    commit::Prepare p;
    p.txn = txn;
    if (full_payload != nullptr) {
      p.has_payload = true;
      p.payload = options_.shard_map->project(*full_payload, s);
      c.shard_payloads[s] = p.payload;
    } else {
      p.has_payload = false;
    }
    p.meta = meta;
    net_.send_msg(id(), leader_of(s), p);
  }
}

void Replica::redrive_coordinations() {
  // Same availability hole as the message-passing stack (see
  // commit::Replica::redrive_coordinations): a PREPARE that died with a
  // crashed leader leaves no prepared witness, so only its coordinator can
  // re-drive the transaction once reconfiguration installs a new leader.
  Time now = sim().now();
  for (TxnId txn : undecided_coords_) {
    CoordState& c = coord_.at(txn);
    if (now - c.last_driven < options_.retry_timeout) continue;
    c.last_driven = now;
    for (ShardId s : c.meta.participants) {
      commit::Prepare p;
      p.txn = txn;
      auto it = c.shard_payloads.find(s);
      if (it != c.shard_payloads.end()) {
        p.has_payload = true;
        p.payload = it->second;
      } else {
        p.has_payload = false;
      }
      p.meta = c.meta;
      net_.send_msg(id(), leader_of(s), p);
    }
  }
}

void Replica::retry(Slot k) {
  const commit::LogEntry* e = log_.find(k);
  // Line 168 pre: phase[k] = prepared.
  if (e == nullptr || e->phase != commit::Phase::kPrepared) return;
  start_certification(e->meta, nullptr, nullptr);  // lines 169-170
}

void Replica::handle_prepare(ProcessId from, const commit::Prepare& m) {
  // Line 78 pre.
  if (status_ != Status::kLeader) return;
  prepare_and_ack(from, m);
}

void Replica::prepare_and_ack(ProcessId coordinator, const commit::Prepare& m) {
  Slot existing = log_.slot_of(m.txn);
  commit::PrepareAck ack;
  ack.epoch = view_epoch(options_.shard);
  ack.shard = options_.shard;
  ack.txn = m.txn;
  if (existing != kNoSlot) {
    // Lines 79-80.
    const commit::LogEntry& e = *log_.find(existing);
    ack.slot = existing;
    ack.payload = e.payload;
    ack.vote = e.vote;
    ack.meta = e.meta;
  } else {
    // Lines 82-90.
    next_ += 1;
    commit::LogEntry& e = log_.at(next_);
    e.txn = m.txn;
    e.phase = commit::Phase::kPrepared;
    e.meta = m.meta;
    if (m.has_payload) {
      e.payload = m.payload;
      e.vote = compute_vote(next_, m.payload);
    } else {
      e.vote = Decision::kAbort;
      e.payload = tcs::empty_payload();
      if (monitor_) {
        // Report the abort's witness sets too: TCS-LL's (10) pins T_s even
        // for abort votes (see commit/replica.cc).
        std::vector<TxnId> t_set, p_set;
        for (Slot k = 1; k < next_; ++k) {
          const commit::LogEntry* prev = log_.find(k);
          if (prev == nullptr || !prev->filled()) continue;
          if (prev->phase == commit::Phase::kDecided && prev->dec == Decision::kCommit) {
            t_set.push_back(prev->txn);
          } else if (prev->phase == commit::Phase::kPrepared &&
                     prev->vote == Decision::kCommit) {
            p_set.push_back(prev->txn);
          }
        }
        monitor_->on_vote_computed(options_.shard, view_epoch(options_.shard), next_,
                                   m.txn, e.vote, e.payload, std::move(t_set),
                                   std::move(p_set));
      }
    }
    prepared_at_[next_] = sim().now();
    ack.slot = next_;
    ack.payload = e.payload;
    ack.vote = e.vote;
    ack.meta = e.meta;
  }
  net_.send_msg(id(), coordinator, ack);
}

tcs::Decision Replica::compute_vote(Slot slot, const tcs::Payload& l) {
  std::vector<const tcs::Payload*> l1, l2;
  std::vector<TxnId> t_set, p_set;
  for (Slot k = 1; k < slot; ++k) {
    const commit::LogEntry* e = log_.find(k);
    if (e == nullptr || !e->filled()) continue;
    if (e->phase == commit::Phase::kDecided && e->dec == Decision::kCommit) {
      l1.push_back(&e->payload);
      t_set.push_back(e->txn);
    } else if (e->phase == commit::Phase::kPrepared && e->vote == Decision::kCommit) {
      l2.push_back(&e->payload);
      p_set.push_back(e->txn);
    }
  }
  Decision vote = options_.certifier->vote(l1, l2, l);  // line 85
  if (monitor_) {
    monitor_->on_vote_computed(options_.shard, view_epoch(options_.shard), slot,
                               log_.find(slot)->txn, vote, l, std::move(t_set),
                               std::move(p_set));
  }
  return vote;
}

void Replica::handle_prepare_ack(const commit::PrepareAck& m) {
  // Line 92 pre: e = epoch (the coordinator's current epoch; per-shard view
  // in the unsafe variant).
  if (view_epoch(m.shard) != m.epoch) return;
  auto it = coord_.find(m.txn);
  if (it == coord_.end() || it->second.decided) return;
  CoordState& c = it->second;
  ShardProgress& pr = c.progress[m.shard];
  if (!(pr.have_prepare_ack && pr.epoch == m.epoch && pr.slot == m.slot)) {
    pr.have_prepare_ack = true;
    pr.epoch = m.epoch;
    pr.slot = m.slot;
    pr.vote = m.vote;
    pr.acked.clear();
  }
  // Line 93: one-sided writes to the followers.
  RAccept acc;
  acc.epoch = m.epoch;
  acc.shard = m.shard;
  acc.slot = m.slot;
  acc.txn = m.txn;
  acc.payload = m.payload;
  acc.vote = m.vote;
  acc.meta = m.meta;
  std::vector<ProcessId> followers;
  for (ProcessId p : members_of(m.shard)) {
    if (p != leader_of(m.shard)) followers.push_back(p);
  }
  for (ProcessId f : followers) {
    std::uint64_t token = fabric_.send_rdma(id(), f, sim::AnyMessage(acc));
    write_tokens_[token] = {m.txn, m.shard, f};
  }
  check_coordination(m.txn);
}

void Replica::handle_rdma_ack(const RdmaAck& ack) {
  auto it = write_tokens_.find(ack.token);
  if (it == write_tokens_.end()) return;  // a DECISION write; nothing to track
  auto [txn, s, follower] = it->second;
  write_tokens_.erase(it);
  auto cit = coord_.find(txn);
  if (cit == coord_.end() || cit->second.decided) return;
  auto pit = cit->second.progress.find(s);
  if (pit == cit->second.progress.end()) return;
  pit->second.acked.insert(follower);
  check_coordination(txn);
}

void Replica::check_coordination(TxnId txn) {
  auto it = coord_.find(txn);
  if (it == coord_.end() || it->second.decided) return;
  CoordState& c = it->second;
  // Lines 96-97: ack-rdma from every current follower of every shard, and
  // the PREPARE_ACK epoch still matches the coordinator's current epoch.
  Decision decision = Decision::kCommit;
  for (ShardId s : c.meta.participants) {
    auto pit = c.progress.find(s);
    if (pit == c.progress.end()) return;
    const ShardProgress& pr = pit->second;
    if (!pr.have_prepare_ack || pr.epoch != view_epoch(s)) return;
    ProcessId l = leader_of(s);
    for (ProcessId p : members_of(s)) {
      if (p != l && pr.acked.count(p) == 0) return;
    }
    decision = meet(decision, pr.vote);
  }
  c.decided = true;  // guards re-entrancy from the client callback below
  // Line 98.
  if (c.local_cb) {
    if (monitor_) monitor_->on_local_decision(txn, decision);
    c.local_cb(decision);
  } else if (c.meta.client != kNoProcess) {
    net_.send_msg(id(), c.meta.client, commit::ClientDecision{txn, decision});
  }
  // Lines 99-100: decisions are one-sided writes too.
  for (ShardId s : c.meta.participants) {
    const ShardProgress& pr = c.progress.at(s);
    RDecision d;
    d.epoch = pr.epoch;
    d.shard = s;
    d.slot = pr.slot;
    d.txn = txn;
    d.decision = decision;
    for (ProcessId p : members_of(s)) {
      fabric_.send_rdma(id(), p, sim::AnyMessage(d));
    }
  }
  // Complete: shed the heavy state but keep a decided tombstone (see
  // commit::Replica::check_coordination).
  c.progress.clear();
  c.shard_payloads.clear();
  c.local_cb = nullptr;
  undecided_coords_.erase(txn);
}

void Replica::deliver_rdma(ProcessId from, const sim::AnyMessage& msg) {
  (void)from;
  if (const auto* a = msg.as<RAccept>()) {
    // Line 95: no guard — the write already landed; the CPU just records it.
    commit::LogEntry& e = log_.at(a->slot);
    e.txn = a->txn;
    e.payload = a->payload;
    e.vote = a->vote;
    e.phase = commit::Phase::kPrepared;
    e.meta = a->meta;
    prepared_at_[a->slot] = sim().now();
  } else if (const auto* d = msg.as<RDecision>()) {
    // Line 102.
    commit::LogEntry& e = log_.at(d->slot);
    if (e.phase == commit::Phase::kStart) e.txn = d->txn;
    e.dec = d->decision;
    e.phase = commit::Phase::kDecided;
    prepared_at_.erase(d->slot);
  }
}

// --- reconfiguration: global safe mode (Fig. 8) --------------------------------

void Replica::reconfigure() {
  assert(options_.mode == ReconfigMode::kGlobalSafe);
  // Line 104 pre.
  if (rec_status_ != RecStatus::kReady) return;
  rec_status_ = RecStatus::kProbing;
  ++probe_round_;
  probe_state_.clear();
  // Lines 106-110.
  gcs_.get_last([this, round = probe_round_](const configsvc::GlobalConfig& cfg) {
    if (rec_status_ != RecStatus::kProbing || probe_round_ != round) return;
    if (!cfg.valid()) {
      rec_status_ = RecStatus::kReady;
      return;
    }
    recon_epoch_ = cfg.epoch + 1;
    for (const auto& [s, members] : cfg.members) {
      ProbeState& ps = probe_state_[s];
      ps.probed_epoch = cfg.epoch;
      ps.probed_members = members;
      for (ProcessId p : members) {
        net_.send_msg(id(), p, commit::Probe{recon_epoch_});
      }
    }
  });
}

void Replica::handle_probe(ProcessId from, const commit::Probe& m) {
  // Line 112 pre (line 41 in unsafe mode).
  if (m.epoch < new_epoch_) return;
  status_ = Status::kReconfiguring;
  if (options_.mode == ReconfigMode::kGlobalSafe) {
    // Line 114: sever all incoming RDMA connections — the guard that the
    // unsafe variant lacks.
    fabric_.close_all(id());
    connections_.clear();
  }
  new_epoch_ = m.epoch;
  net_.send_msg(id(), from, commit::ProbeAck{initialized_, m.epoch, options_.shard});
}

void Replica::handle_probe_ack(ProcessId from, const commit::ProbeAck& m) {
  if (options_.mode == ReconfigMode::kPerShardUnsafe) {
    // Fig. 1 lines 45-55, restricted to recon_shard_.
    if (!probing_unsafe_ || m.epoch != recon_epoch_ || m.shard != recon_shard_) return;
    ProbeState& ps = probe_state_[m.shard];
    ps.responders.insert(from);
    if (m.initialized) {
      probing_unsafe_ = false;
      ProcessId new_leader = from;
      configsvc::ShardConfig next;
      next.epoch = recon_epoch_;
      next.leader = new_leader;
      next.members = {new_leader};
      for (ProcessId p : ps.responders) {
        if (next.members.size() >= options_.target_shard_size) break;
        if (p != new_leader) next.members.push_back(p);
      }
      std::vector<ProcessId> allocated;
      if (next.members.size() < options_.target_shard_size && options_.allocate_spares) {
        for (ProcessId sp : options_.allocate_spares(
                 recon_shard_, options_.target_shard_size - next.members.size())) {
          next.members.push_back(sp);
          allocated.push_back(sp);
        }
      }
      cs_.cas(recon_shard_, recon_epoch_ - 1, next,
              [this, new_leader, next, allocated, shard = recon_shard_](bool ok) {
                if (ok) {
                  net_.send_msg(id(), new_leader,
                                commit::NewConfig{next.epoch, next.members});
                } else if (!allocated.empty() && options_.release_spares) {
                  options_.release_spares(shard, allocated);
                }
              });
    } else {
      ps.round_has_false_ack = true;
      arm_descend_timer(m.shard);
    }
    return;
  }
  // Safe mode, lines 117-130.
  if (rec_status_ != RecStatus::kProbing || m.epoch != recon_epoch_) return;
  ProbeState& ps = probe_state_[m.shard];
  ps.responders.insert(from);
  if (m.initialized) {
    if (ps.leader_candidate == kNoProcess) ps.leader_candidate = from;
    check_probing_done();
  } else {
    ps.round_has_false_ack = true;
    arm_descend_timer(m.shard);
  }
}

void Replica::check_probing_done() {
  // Line 117: a PROBE_ACK(true) for every shard.
  for (const auto& [s, ps] : probe_state_) {
    (void)s;
    if (ps.leader_candidate == kNoProcess) return;
  }
  finish_probing();
}

void Replica::finish_probing() {
  // Lines 119-124.
  rec_status_ = RecStatus::kReady;
  recon_config_ = {};
  recon_config_.epoch = recon_epoch_;
  auto allocated = std::make_shared<std::map<ShardId, std::vector<ProcessId>>>();
  for (auto& [s, ps] : probe_state_) {
    std::vector<ProcessId> members{ps.leader_candidate};
    for (ProcessId p : ps.responders) {
      if (members.size() >= options_.target_shard_size) break;
      if (p != ps.leader_candidate) members.push_back(p);
    }
    if (members.size() < options_.target_shard_size && options_.allocate_spares) {
      for (ProcessId sp :
           options_.allocate_spares(s, options_.target_shard_size - members.size())) {
        members.push_back(sp);
        (*allocated)[s].push_back(sp);
      }
    }
    recon_config_.members[s] = members;
    recon_config_.leaders[s] = ps.leader_candidate;
  }
  gcs_.cas(recon_epoch_ - 1, recon_config_, [this, allocated](bool ok) {
    if (!ok) {
      // Losing the global CAS (e.g. two nudged replicas racing) must not
      // consume the fresh spares the losing proposal reserved.
      if (options_.release_spares) {
        for (const auto& [s, spares] : *allocated) {
          options_.release_spares(s, spares);
        }
      }
      return;
    }
    rec_status_ = RecStatus::kInstalling;
    config_prepare_acks_.clear();
    for (ProcessId p : recon_config_.all_members()) {
      net_.send_msg(id(), p, ConfigPrepare{recon_config_.epoch, recon_config_});
    }
  });
}

void Replica::arm_descend_timer(ShardId s) {
  ProbeState& ps = probe_state_[s];
  if (ps.descend_timer_armed) return;
  ps.descend_timer_armed = true;
  sim().schedule_for(id(), options_.probe_patience, [this, s, round = probe_round_] {
    auto it = probe_state_.find(s);
    if (it == probe_state_.end() || probe_round_ != round) return;
    it->second.descend_timer_armed = false;
    bool active = options_.mode == ReconfigMode::kGlobalSafe
                      ? rec_status_ == RecStatus::kProbing
                      : probing_unsafe_;
    if (!active || !it->second.round_has_false_ack) return;
    if (it->second.leader_candidate != kNoProcess) return;
    descend_probing(s);
  });
}

void Replica::descend_probing(ShardId s) {
  ProbeState& ps = probe_state_[s];
  if (ps.probed_epoch <= 1) {
    RATC_WARN(name() << " abandoning reconfiguration: shard " << s
                     << " has no initialized member in any epoch");
    rec_status_ = RecStatus::kReady;
    probing_unsafe_ = false;
    return;
  }
  ps.probed_epoch -= 1;
  ps.round_has_false_ack = false;
  if (options_.mode == ReconfigMode::kGlobalSafe) {
    gcs_.get(ps.probed_epoch,
             [this, s, round = probe_round_](bool found, const configsvc::GlobalConfig& cfg) {
               if (rec_status_ != RecStatus::kProbing || probe_round_ != round || !found) {
                 return;
               }
               auto mit = cfg.members.find(s);
               if (mit == cfg.members.end()) return;
               probe_state_[s].probed_members = mit->second;
               for (ProcessId p : mit->second) {
                 net_.send_msg(id(), p, commit::Probe{recon_epoch_});
               }
             });
  } else {
    cs_.get(s, ps.probed_epoch,
            [this, s](bool found, const configsvc::ShardConfig& cfg) {
              if (!probing_unsafe_ || !found) return;
              probe_state_[s].probed_members = cfg.members;
              for (ProcessId p : cfg.members) {
                net_.send_msg(id(), p, commit::Probe{recon_epoch_});
              }
            });
  }
}

void Replica::handle_config_prepare(ProcessId from, const ConfigPrepare& m) {
  // Lines 132-136.
  if (m.epoch < new_epoch_) return;
  pending_config_ = m.config;
  new_epoch_ = m.epoch;
  net_.send_msg(id(), from, ConfigPrepareAck{m.epoch});
}

void Replica::handle_config_prepare_ack(ProcessId from, const ConfigPrepareAck& m) {
  // Lines 137-140.
  if (rec_status_ != RecStatus::kInstalling || m.epoch != recon_config_.epoch) return;
  config_prepare_acks_.insert(from);
  for (ProcessId p : recon_config_.all_members()) {
    if (config_prepare_acks_.count(p) == 0) return;
  }
  rec_status_ = RecStatus::kReady;
  for (ProcessId l : recon_config_.all_leaders()) {
    net_.send_msg(id(), l, RNewConfig{recon_config_.epoch});
  }
}

void Replica::handle_new_config(const RNewConfig& m) {
  // Lines 141-147.
  if (m.epoch < new_epoch_ || pending_config_.epoch != m.epoch) return;
  // Line 142: everything the NICs acknowledged must be visible before the
  // state transfer — coordinators may have externalized decisions based on
  // those acknowledgements.
  if (!options_.ablate_flush) fabric_.flush(id());
  status_ = Status::kLeader;
  epoch_ = m.epoch;
  new_epoch_ = m.epoch;
  config_ = pending_config_;
  next_ = log_.max_filled();  // line 145
  RNewState ns;
  ns.epoch = epoch_;
  ns.log = log_;
  for (ProcessId p : config_.members.at(options_.shard)) {
    if (p != id()) net_.send_msg(id(), p, ns);
  }
  open_connections_to(config_.all_members());  // line 147
  arm_connect_retry();
  RATC_DEBUG(name() << " leads s" << options_.shard << " at global epoch " << epoch_);
}

void Replica::handle_new_state(ProcessId from, const RNewState& m) {
  (void)from;
  // Lines 148-153.
  if (m.epoch < new_epoch_ || pending_config_.epoch != m.epoch) return;
  status_ = Status::kFollower;
  epoch_ = m.epoch;
  new_epoch_ = m.epoch;
  initialized_ = true;
  config_ = pending_config_;
  log_ = m.log;
  prepared_at_.clear();
  // Line 153 sends CONNECT only to other shards' members; we connect to all
  // members so same-shard followers can serve as coordinators for each
  // other too (see DESIGN.md Sec. 2).
  open_connections_to(config_.all_members());
  arm_connect_retry();
}

void Replica::open_connections_to(const std::vector<ProcessId>& peers) {
  for (ProcessId p : peers) {
    if (p == id() || connections_.count(p)) continue;
    net_.send_msg(id(), p, Connect{epoch_});
  }
}

void Replica::arm_connect_retry() {
  sim().schedule_for(id(), options_.connect_retry, [this, e = epoch_] {
    if (epoch_ != e || status_ == Status::kReconfiguring) return;
    bool missing = false;
    for (ProcessId p : config_.all_members()) {
      if (p != id() && connections_.count(p) == 0) {
        net_.send_msg(id(), p, Connect{epoch_});
        missing = true;
      }
    }
    if (missing) arm_connect_retry();
  });
}

void Replica::handle_connect(ProcessId from, const Connect& m) {
  // Lines 154-158.
  if (status_ == Status::kReconfiguring || m.epoch != epoch_) return;
  if (connections_.count(from) == 0) {
    fabric_.open(id(), from);
    connections_.insert(from);
  }
  net_.send_msg(id(), from, ConnectAck{epoch_});
}

void Replica::handle_connect_ack(ProcessId from, const ConnectAck& m) {
  // Lines 159-162.
  if (status_ == Status::kReconfiguring || m.epoch != epoch_) return;
  if (connections_.count(from)) return;
  fabric_.open(id(), from);
  connections_.insert(from);
}

// --- reconfiguration: per-shard unsafe mode (Fig. 4a strawman) -----------------

void Replica::reconfigure_shard(ShardId s) {
  assert(options_.mode == ReconfigMode::kPerShardUnsafe);
  if (probing_unsafe_) return;
  probing_unsafe_ = true;
  recon_shard_ = s;
  ++probe_round_;
  probe_state_.clear();
  cs_.get_last(s, [this, s](const configsvc::ShardConfig& cfg) {
    if (!probing_unsafe_ || !cfg.valid()) {
      probing_unsafe_ = false;
      return;
    }
    recon_epoch_ = cfg.epoch + 1;
    ProbeState& ps = probe_state_[s];
    ps.probed_epoch = cfg.epoch;
    ps.probed_members = cfg.members;
    for (ProcessId p : cfg.members) {
      net_.send_msg(id(), p, commit::Probe{recon_epoch_});
    }
  });
}

void Replica::handle_new_config_unsafe(const commit::NewConfig& m) {
  if (m.epoch < new_epoch_) return;
  new_epoch_ = m.epoch;
  status_ = Status::kLeader;
  configsvc::ShardConfig& v = views_[options_.shard];
  v.epoch = m.epoch;
  v.members = m.members;
  v.leader = id();
  next_ = log_.max_filled();
  commit::NewState ns;
  ns.epoch = m.epoch;
  ns.members = m.members;
  ns.log = log_;
  for (ProcessId p : m.members) {
    if (p != id()) net_.send_msg(id(), p, ns);
  }
}

void Replica::handle_new_state_unsafe(ProcessId from, const commit::NewState& m) {
  if (m.epoch < new_epoch_) return;
  new_epoch_ = m.epoch;
  initialized_ = true;
  status_ = Status::kFollower;
  configsvc::ShardConfig& v = views_[options_.shard];
  v.epoch = m.epoch;
  v.members = m.members;
  v.leader = from;
  log_ = m.log;
  prepared_at_.clear();
}

void Replica::handle_config_change(const configsvc::ConfigChange& m) {
  if (m.shard == options_.shard) return;
  configsvc::ShardConfig& v = views_[m.shard];
  if (v.epoch >= m.config.epoch) return;
  v = m.config;
}

// --- plumbing -------------------------------------------------------------------

void Replica::arm_retry_timer() {
  if (options_.retry_timeout == 0) return;
  sim().schedule_for(id(), options_.retry_timeout, [this] {
    Time now = sim().now();
    std::vector<Slot> stale;
    for (const auto& [slot, since] : prepared_at_) {
      const commit::LogEntry* e = log_.find(slot);
      if (e != nullptr && e->phase == commit::Phase::kPrepared &&
          now - since >= options_.retry_timeout) {
        stale.push_back(slot);
      }
    }
    for (Slot k : stale) {
      prepared_at_[k] = now;
      retry(k);
    }
    redrive_coordinations();
    arm_retry_timer();
  });
}

void Replica::on_message(ProcessId from, const sim::AnyMessage& msg) {
  if (options_.mode == ReconfigMode::kGlobalSafe ? gcs_.handle(msg) : cs_.handle(msg)) {
    return;
  }
  if (fd_responder_.handle(from, msg)) return;
  if (const auto* c = msg.as<commit::CertifyRequest>()) {
    commit::TxnMeta meta;
    meta.txn = c->txn;
    meta.participants = options_.shard_map->shards_of(c->payload);
    meta.client = from;
    start_certification(std::move(meta), &c->payload, nullptr);
  } else if (const auto* p = msg.as<commit::Prepare>()) {
    handle_prepare(from, *p);
  } else if (const auto* pa = msg.as<commit::PrepareAck>()) {
    handle_prepare_ack(*pa);
  } else if (const auto* pr = msg.as<commit::Probe>()) {
    handle_probe(from, *pr);
  } else if (const auto* pra = msg.as<commit::ProbeAck>()) {
    handle_probe_ack(from, *pra);
  } else if (const auto* cp = msg.as<ConfigPrepare>()) {
    handle_config_prepare(from, *cp);
  } else if (const auto* cpa = msg.as<ConfigPrepareAck>()) {
    handle_config_prepare_ack(from, *cpa);
  } else if (const auto* nc = msg.as<RNewConfig>()) {
    handle_new_config(*nc);
  } else if (const auto* ns = msg.as<RNewState>()) {
    handle_new_state(from, *ns);
  } else if (const auto* cn = msg.as<Connect>()) {
    handle_connect(from, *cn);
  } else if (const auto* cna = msg.as<ConnectAck>()) {
    handle_connect_ack(from, *cna);
  } else if (const auto* nc2 = msg.as<commit::NewConfig>()) {
    handle_new_config_unsafe(*nc2);
  } else if (const auto* ns2 = msg.as<commit::NewState>()) {
    handle_new_state_unsafe(from, *ns2);
  } else if (const auto* cc = msg.as<configsvc::ConfigChange>()) {
    handle_config_change(*cc);
  } else if (msg.as<ctrl::NudgeReconfig>() != nullptr) {
    // A reconfiguration controller suspects a member: run the global
    // reconfiguration (Fig. 8).  No-op while one is already in flight
    // (rec_status_ guard inside reconfigure()); the controller's watchdog
    // re-nudges if nothing lands.
    if (options_.mode == ReconfigMode::kGlobalSafe) reconfigure();
  }
}

}  // namespace ratc::rdma
