#include "rdma/replica.h"

#include <algorithm>
#include <cassert>
#include <cstdlib>

#include "common/log.h"
#include "ctrl/messages.h"
#include "rdma/monitor.h"

namespace ratc::rdma {

using tcs::Decision;

Replica::Replica(sim::Simulator& sim, sim::Network& net, Fabric& fabric,
                 ProcessId id, Options options)
    : Replica(net.runtime(), fabric, id, std::move(options)) {
  (void)sim;
}

Replica::Replica(rt::Runtime& rt, Fabric& fabric, ProcessId id, Options options)
    : Process(rt, id, "rr" + std::to_string(id) + "/s" + std::to_string(options.shard)),
      options_(std::move(options)),
      fabric_(fabric),
      gcs_(rt, id, options_.cs_endpoints),
      cs_(rt, id, options_.cs_endpoints),
      fd_responder_(rt, id),
      monitor_(options_.monitor),
      engine_(rt, id, *this,
              {.target_shard_size = options_.target_shard_size,
               .probe_patience = options_.probe_patience,
               .policy = options_.placement_policy}),
      store_(options_.snapshot_history_depth) {
  assert(options_.shard_map != nullptr && options_.certifier != nullptr);
  fabric_.attach(
      id,
      [this](ProcessId from, const sim::AnyMessage& msg) { deliver_rdma(from, msg); },
      [this](const RdmaAck& ack) { handle_rdma_ack(ack); });
}

Epoch Replica::epoch() const {
  if (options_.mode == ReconfigMode::kGlobalSafe) return epoch_;
  auto it = views_.find(options_.shard);
  return it == views_.end() ? kNoEpoch : it->second.epoch;
}

Epoch Replica::view_epoch(ShardId s) const {
  if (options_.mode == ReconfigMode::kGlobalSafe) return epoch_;
  auto it = views_.find(s);
  return it == views_.end() ? kNoEpoch : it->second.epoch;
}

ProcessId Replica::leader_of(ShardId s) const {
  if (options_.mode == ReconfigMode::kGlobalSafe) {
    auto it = config_.leaders.find(s);
    return it == config_.leaders.end() ? kNoProcess : it->second;
  }
  auto it = views_.find(s);
  return it == views_.end() ? kNoProcess : it->second.leader;
}

std::vector<ProcessId> Replica::members_of(ShardId s) const {
  if (options_.mode == ReconfigMode::kGlobalSafe) {
    auto it = config_.members.find(s);
    return it == config_.members.end() ? std::vector<ProcessId>{} : it->second;
  }
  auto it = views_.find(s);
  return it == views_.end() ? std::vector<ProcessId>{} : it->second.members;
}

void Replica::bootstrap(Status status, const configsvc::GlobalConfig& config) {
  status_ = status;
  initialized_ = true;
  epoch_ = config.epoch;
  new_epoch_ = config.epoch;
  config_ = config;
  for (const auto& [s, members] : config.members) {
    configsvc::ShardConfig& v = views_[s];
    v.epoch = config.epoch;
    v.members = members;
    v.leader = config.leaders.at(s);
  }
  // Epoch 1 is pre-activated: all connections open.
  for (ProcessId p : config.all_members()) {
    if (p == id()) continue;
    fabric_.open(id(), p);
    connections_.insert(p);
  }
  arm_retry_timer();
}

void Replica::bootstrap_spare(const configsvc::GlobalConfig& config) {
  status_ = Status::kReconfiguring;
  initialized_ = false;
  config_ = config;
  epoch_ = kNoEpoch;
  new_epoch_ = kNoEpoch;
  for (const auto& [s, members] : config.members) {
    configsvc::ShardConfig& v = views_[s];
    v.epoch = config.epoch;
    v.members = members;
    v.leader = config.leaders.at(s);
  }
  if (options_.mode == ReconfigMode::kPerShardUnsafe) {
    // No connection management in the strawman: spares accept writes too.
    for (ProcessId p : config.all_members()) {
      if (p != id()) fabric_.open(id(), p);
    }
  }
  arm_retry_timer();
}

// --- certification (Fig. 7) ---------------------------------------------------

void Replica::certify_local(TxnId txn, const tcs::Payload& payload,
                            std::function<void(tcs::Decision, Time)> cb,
                            ProcessId origin) {
  commit::TxnMeta meta;
  meta.txn = txn;
  meta.participants = options_.shard_map->shards_of(payload);
  // The co-located client's id rides in the meta so a successor coordinator
  // can deliver the decision after this replica crashed (see commit::Replica).
  meta.client = origin;
  start_certification(std::move(meta), &payload, std::move(cb));
}

void Replica::start_certification(commit::TxnMeta meta, const tcs::Payload* full_payload,
                                  std::function<void(tcs::Decision, Time)> local_cb) {
  TxnId txn = meta.txn;
  if (meta.participants.empty()) {
    if (local_cb) {
      if (monitor_) monitor_->on_local_decision(txn, Decision::kCommit);
      local_cb(Decision::kCommit, 0);
    } else if (meta.client != kNoProcess) {
      rt().send_msg(id(), meta.client, commit::ClientDecision{txn, Decision::kCommit});
    }
    return;
  }
  CoordState& c = coord_[txn];
  if (c.decided) return;  // late retry of an already-decided coordination
  undecided_coords_.insert(txn);
  c.meta = meta;
  if (local_cb) c.local_cb = std::move(local_cb);
  c.last_driven = rt().now();
  // Lines 75-76.
  for (ShardId s : meta.participants) {
    commit::Prepare p;
    p.txn = txn;
    if (full_payload != nullptr) {
      p.has_payload = true;
      p.payload = options_.shard_map->project(*full_payload, s);
      c.shard_payloads[s] = p.payload;
    } else {
      p.has_payload = false;
    }
    p.meta = meta;
    rt().send_msg(id(), leader_of(s), p);
  }
}

void Replica::certify_batch_local(
    const std::vector<std::pair<TxnId, tcs::Payload>>& batch,
    std::function<void(TxnId, tcs::Decision, Time)> cb, ProcessId origin) {
  if (batch.size() == 1) {
    TxnId txn = batch.front().first;
    certify_local(
        txn, batch.front().second,
        [cb, txn](Decision d, Time csn_ts) { cb(txn, d, csn_ts); }, origin);
    return;
  }
  // One PREPARE_BATCH per shard leader; per-transaction coordinator state
  // identical to start_certification (see commit::Replica).
  std::map<ShardId, commit::PrepareBatch> per_shard;
  for (const auto& [txn, payload] : batch) {
    commit::TxnMeta meta;
    meta.txn = txn;
    meta.participants = options_.shard_map->shards_of(payload);
    // Carrying the origin client lets a successor coordinator finish each
    // batch item independently after a crash (see commit::Replica).
    meta.client = origin;
    if (meta.participants.empty()) {
      if (monitor_) monitor_->on_local_decision(txn, Decision::kCommit);
      cb(txn, Decision::kCommit, 0);
      continue;
    }
    CoordState& c = coord_[txn];
    if (c.decided) continue;
    undecided_coords_.insert(txn);
    c.meta = meta;
    c.local_cb = [cb, txn](Decision d, Time csn_ts) { cb(txn, d, csn_ts); };
    c.last_driven = rt().now();
    for (ShardId s : meta.participants) {
      commit::Prepare p;
      p.txn = txn;
      p.has_payload = true;
      p.payload = options_.shard_map->project(payload, s);
      c.shard_payloads[s] = p.payload;
      p.meta = meta;
      per_shard[s].items.push_back(std::move(p));
    }
  }
  for (auto& [s, pb] : per_shard) {
    if (pb.items.size() == 1) {
      rt().send_msg(id(), leader_of(s), std::move(pb.items.front()));
    } else {
      rt().send_msg(id(), leader_of(s), std::move(pb));
    }
  }
}

void Replica::redrive_coordinations(const std::set<TxnId>& driven_this_tick) {
  // Same availability hole as the message-passing stack (see
  // commit::Replica::redrive_coordinations): a PREPARE that died with a
  // crashed leader leaves no prepared witness, so only its coordinator can
  // re-drive the transaction once reconfiguration installs a new leader.
  (void)driven_this_tick;  // only read by the assert below
  Time now = rt().now();
  // Each coordination re-drives independently with its own projections —
  // batch-mates share no fate (see commit::Replica::redrive_coordinations).
  for (TxnId txn : undecided_coords_) {
    CoordState& c = coord_.at(txn);
    if (now - c.last_driven < options_.retry_timeout) continue;
    assert(driven_this_tick.count(txn) == 0 &&
           "coordination re-driven twice in one retry tick");
    c.last_driven = now;
    for (ShardId s : c.meta.participants) {
      commit::Prepare p;
      p.txn = txn;
      auto it = c.shard_payloads.find(s);
      if (it != c.shard_payloads.end()) {
        p.has_payload = true;
        p.payload = it->second;
      } else {
        p.has_payload = false;
      }
      p.meta = c.meta;
      rt().send_msg(id(), leader_of(s), p);
    }
  }
}

void Replica::retry(Slot k) {
  const commit::LogEntry* e = log_.find(k);
  // Line 168 pre: phase[k] = prepared.
  if (e == nullptr || e->phase != commit::Phase::kPrepared) return;
  start_certification(e->meta, nullptr, nullptr);  // lines 169-170
}

void Replica::handle_prepare(ProcessId from, const commit::Prepare& m) {
  // Line 78 pre.
  if (status_ != Status::kLeader) return;
  prepare_and_ack(from, m);
}

commit::PrepareAck Replica::prepare_txn(const commit::Prepare& m) {
  Slot existing = log_.slot_of(m.txn);
  commit::PrepareAck ack;
  ack.epoch = view_epoch(options_.shard);
  ack.shard = options_.shard;
  ack.txn = m.txn;
  if (existing != kNoSlot) {
    // Lines 79-80.
    const commit::LogEntry& e = *log_.find(existing);
    ack.slot = existing;
    ack.payload = e.payload;
    ack.vote = e.vote;
    ack.meta = e.meta;
    ack.prepare_ts = e.prepare_ts;
  } else {
    // Lines 82-90.
    next_ += 1;
    commit::LogEntry& e = log_.at(next_);
    e.txn = m.txn;
    e.phase = commit::Phase::kPrepared;
    e.meta = m.meta;
    // The CSN-log stamp: final for the slot's life (see commit::Replica).
    e.prepare_ts = rt().now();
    if (m.has_payload) {
      e.payload = m.payload;
      e.vote = compute_vote(next_, m.payload);
    } else {
      e.vote = Decision::kAbort;
      e.payload = tcs::empty_payload();
      if (monitor_ || options_.check_certifier_index) {
        // Report the abort's witness sets too: TCS-LL's (10) pins T_s even
        // for abort votes.  The vote is the protocol's forced abort, not an
        // index computation, so only the sets are cross-checked (see
        // commit/replica.cc).
        commit::WitnessIndex::Witnesses w = index_.collect(log_, next_);
        check_index_sets_against_flat(next_, w);
        if (monitor_) {
          monitor_->on_vote_computed(options_.shard, view_epoch(options_.shard),
                                     next_, m.txn, e.vote, e.payload,
                                     std::move(w.committed),
                                     std::move(w.prepared));
        }
      }
    }
    prepared_at_[next_] = rt().now();
    index_.on_prepared(log_, next_);
    ack.slot = next_;
    ack.payload = e.payload;
    ack.vote = e.vote;
    ack.meta = e.meta;
    ack.prepare_ts = e.prepare_ts;
  }
  return ack;
}

void Replica::prepare_and_ack(ProcessId coordinator, const commit::Prepare& m) {
  rt().send_msg(id(), coordinator, prepare_txn(m));
}

void Replica::handle_prepare_batch(ProcessId from, const commit::PrepareBatch& m) {
  if (status_ != Status::kLeader) return;  // line 78 pre, once for the batch
  commit::PrepareAckBatch acks;
  acks.items.reserve(m.items.size());
  for (const commit::Prepare& p : m.items) acks.items.push_back(prepare_txn(p));
  rt().send_msg(id(), from, std::move(acks));
}

void Replica::check_index_against_flat(
    Slot slot, tcs::Decision indexed_vote, const tcs::Payload& l,
    const commit::WitnessIndex::Witnesses& w) const {
  if (!options_.check_certifier_index) return;
  std::vector<const tcs::Payload*> l1, l2;
  for (Slot k = 1; k < slot; ++k) {
    const commit::LogEntry* e = log_.find(k);
    if (e == nullptr || !e->filled()) continue;
    if (e->phase == commit::Phase::kDecided && e->dec == Decision::kCommit) {
      l1.push_back(&e->payload);
    } else if (e->phase == commit::Phase::kPrepared && e->vote == Decision::kCommit) {
      l2.push_back(&e->payload);
    }
  }
  Decision flat_vote = options_.certifier->vote(l1, l2, l);
  // Not assert(): must fire in RelWithDebInfo sweeps too.
  if (indexed_vote != flat_vote) {
    RATC_ERROR(name() << " witness index vote diverged at slot " << slot << ": indexed="
                      << tcs::to_string(indexed_vote) << " flat=" << tcs::to_string(flat_vote));
    std::abort();
  }
  check_index_sets_against_flat(slot, w);
}

void Replica::check_index_sets_against_flat(
    Slot slot, const commit::WitnessIndex::Witnesses& w) const {
  if (!options_.check_certifier_index) return;
  std::vector<TxnId> t_set, p_set;
  for (Slot k = 1; k < slot; ++k) {
    const commit::LogEntry* e = log_.find(k);
    if (e == nullptr || !e->filled()) continue;
    if (e->phase == commit::Phase::kDecided && e->dec == Decision::kCommit) {
      t_set.push_back(e->txn);
    } else if (e->phase == commit::Phase::kPrepared && e->vote == Decision::kCommit) {
      p_set.push_back(e->txn);
    }
  }
  if (t_set != w.committed || p_set != w.prepared) {
    RATC_ERROR(name() << " witness index T_s/P_s sets diverged at slot " << slot);
    std::abort();
  }
}

tcs::Decision Replica::compute_vote(Slot slot, const tcs::Payload& l) {
  // Line 85 through the witness index (see commit::Replica::compute_vote).
  Decision vote = index_.vote(*options_.certifier, log_, l);
  commit::WitnessIndex::Witnesses w;
  if (monitor_ || options_.check_certifier_index) w = index_.collect(log_, slot);
  check_index_against_flat(slot, vote, l, w);
  if (monitor_) {
    monitor_->on_vote_computed(options_.shard, view_epoch(options_.shard), slot,
                               log_.find(slot)->txn, vote, l, std::move(w.committed),
                               std::move(w.prepared));
  }
  return vote;
}

bool Replica::note_prepare_ack(const commit::PrepareAck& m, RAccept* accept) {
  // Line 92 pre: e = epoch (the coordinator's current epoch; per-shard view
  // in the unsafe variant).
  if (view_epoch(m.shard) != m.epoch) return false;
  auto it = coord_.find(m.txn);
  if (it == coord_.end() || it->second.decided) return false;
  CoordState& c = it->second;
  ShardProgress& pr = c.progress[m.shard];
  if (!(pr.have_prepare_ack && pr.epoch == m.epoch && pr.slot == m.slot)) {
    pr.have_prepare_ack = true;
    pr.epoch = m.epoch;
    pr.slot = m.slot;
    pr.vote = m.vote;
    pr.prepare_ts = m.prepare_ts;
    pr.acked.clear();
  }
  accept->epoch = m.epoch;
  accept->shard = m.shard;
  accept->slot = m.slot;
  accept->txn = m.txn;
  accept->payload = m.payload;
  accept->vote = m.vote;
  accept->meta = m.meta;
  accept->prepare_ts = m.prepare_ts;
  return true;
}

void Replica::handle_prepare_ack(const commit::PrepareAck& m) {
  RAccept acc;
  if (!note_prepare_ack(m, &acc)) return;
  // Line 93: one-sided writes to the followers.
  for (ProcessId f : members_of(m.shard)) {
    if (f == leader_of(m.shard)) continue;
    std::uint64_t token = fabric_.send_rdma(id(), f, sim::AnyMessage(acc));
    write_tokens_[token] = {{m.txn, m.shard, f}};
  }
  check_coordination(m.txn);
}

void Replica::handle_prepare_ack_batch(const commit::PrepareAckBatch& m) {
  // One batched one-sided write per follower carries the whole batch's
  // ACCEPTs; its single NIC ack fans out to every item (write_tokens_).
  std::map<ProcessId, RAcceptBatch> ship;
  for (const commit::PrepareAck& item : m.items) {
    RAccept acc;
    if (!note_prepare_ack(item, &acc)) continue;
    for (ProcessId f : members_of(item.shard)) {
      if (f == leader_of(item.shard)) continue;
      ship[f].items.push_back(acc);
    }
    check_coordination(item.txn);  // zero-follower shards complete immediately
  }
  for (auto& [f, batch] : ship) {
    std::vector<std::tuple<TxnId, ShardId, ProcessId>> entries;
    entries.reserve(batch.items.size());
    for (const RAccept& a : batch.items) entries.emplace_back(a.txn, a.shard, f);
    std::uint64_t token;
    if (batch.items.size() == 1) {
      token = fabric_.send_rdma(id(), f, sim::AnyMessage(batch.items.front()));
    } else {
      token = fabric_.send_rdma(id(), f, sim::AnyMessage(std::move(batch)));
    }
    write_tokens_[token] = std::move(entries);
  }
}

void Replica::handle_rdma_ack(const RdmaAck& ack) {
  auto it = write_tokens_.find(ack.token);
  if (it == write_tokens_.end()) return;  // a DECISION write; nothing to track
  std::vector<std::tuple<TxnId, ShardId, ProcessId>> entries = std::move(it->second);
  write_tokens_.erase(it);
  for (const auto& [txn, s, follower] : entries) {
    auto cit = coord_.find(txn);
    if (cit == coord_.end() || cit->second.decided) continue;
    auto pit = cit->second.progress.find(s);
    if (pit == cit->second.progress.end()) continue;
    pit->second.acked.insert(follower);
    check_coordination(txn);
  }
}

void Replica::check_coordination(TxnId txn) {
  auto it = coord_.find(txn);
  if (it == coord_.end() || it->second.decided) return;
  CoordState& c = it->second;
  // Lines 96-97: ack-rdma from every current follower of every shard, and
  // the PREPARE_ACK epoch still matches the coordinator's current epoch.
  Decision decision = Decision::kCommit;
  Time csn_ts = 0;  // csn(t).ts = max prepare stamp over the involved shards
  for (ShardId s : c.meta.participants) {
    auto pit = c.progress.find(s);
    if (pit == c.progress.end()) return;
    const ShardProgress& pr = pit->second;
    if (!pr.have_prepare_ack || pr.epoch != view_epoch(s)) return;
    ProcessId l = leader_of(s);
    for (ProcessId p : members_of(s)) {
      if (p != l && pr.acked.count(p) == 0) return;
    }
    decision = meet(decision, pr.vote);
    csn_ts = std::max(csn_ts, pr.prepare_ts);
  }
  if (decision != Decision::kCommit) csn_ts = 0;  // aborts never enter the CSN log
  c.decided = true;  // guards re-entrancy from the client callback below
  // Line 98.
  if (c.local_cb) {
    if (monitor_) monitor_->on_local_decision(txn, decision);
    c.local_cb(decision, csn_ts);
  } else if (c.meta.client != kNoProcess) {
    rt().send_msg(id(), c.meta.client, commit::ClientDecision{txn, decision, csn_ts});
  }
  // Lines 99-100: decisions are one-sided writes too.
  for (ShardId s : c.meta.participants) {
    const ShardProgress& pr = c.progress.at(s);
    RDecision d;
    d.epoch = pr.epoch;
    d.shard = s;
    d.slot = pr.slot;
    d.txn = txn;
    d.decision = decision;
    d.csn_ts = csn_ts;
    for (ProcessId p : members_of(s)) {
      fabric_.send_rdma(id(), p, sim::AnyMessage(d));
    }
  }
  // Complete: shed the heavy state but keep a decided tombstone (see
  // commit::Replica::check_coordination).
  c.progress.clear();
  c.shard_payloads.clear();
  c.local_cb = nullptr;
  undecided_coords_.erase(txn);
}

void Replica::apply_raccept(const RAccept& a) {
  // Line 95: no guard — the write already landed; the CPU just records it.
  commit::LogEntry& e = log_.at(a.slot);
  e.txn = a.txn;
  e.payload = a.payload;
  e.vote = a.vote;
  e.phase = commit::Phase::kPrepared;
  e.meta = a.meta;
  e.prepare_ts = a.prepare_ts;  // the leader's CSN stamp, replicated
  prepared_at_[a.slot] = rt().now();
  index_.on_prepared(log_, a.slot);
}

void Replica::apply_rdecision(const RDecision& d) {
  // Line 102.
  commit::LogEntry& e = log_.at(d.slot);
  if (e.phase == commit::Phase::kStart) e.txn = d.txn;
  e.dec = d.decision;
  e.phase = commit::Phase::kDecided;
  e.csn_ts = d.csn_ts;
  prepared_at_.erase(d.slot);
  index_.on_decided(log_, d.slot);
  // Advance the committed multi-version state; a commit write can only land
  // on a slot whose ACCEPT this replica's NIC acknowledged (lines 96-97), so
  // the payload is present.  Duplicate writes re-apply the same csn (no-op).
  if (d.decision == Decision::kCommit) {
    store_.apply_at(e.payload, tcs::Csn{d.csn_ts, d.txn});
  }
}

void Replica::deliver_rdma(ProcessId from, const sim::AnyMessage& msg) {
  (void)from;
  if (const auto* a = msg.as<RAccept>()) {
    apply_raccept(*a);
  } else if (const auto* ab = msg.as<RAcceptBatch>()) {
    // The batched write lands its items back-to-back, in order.
    for (const RAccept& item : ab->items) apply_raccept(item);
  } else if (const auto* d = msg.as<RDecision>()) {
    apply_rdecision(*d);
  }
}

// --- reconfiguration: the engine's hooks ----------------------------------------
//
// Both modes run the shared reconfigurer core (recon::Engine).  Safe mode
// (Fig. 8): one multi-shard attempt over the global configuration service;
// the engine waits for an initialized responder in EVERY shard (line 117)
// before proposing, and activate() stages the fabric-aware install phase
// (CONFIG_PREPARE dissemination).  Unsafe mode (the Fig. 4a strawman): the
// Fig. 1 per-shard attempt, with NEW_CONFIG handed straight to the new
// leader — reproducing the protocol the paper proves incorrect.

void Replica::reconfigure() {
  assert(options_.mode == ReconfigMode::kGlobalSafe);
  // Line 104 pre: not already probing or installing.
  if (installing_) return;
  engine_.start({});  // shard set comes from the GCS snapshot
}

void Replica::reconfigure_shard(ShardId s) {
  assert(options_.mode == ReconfigMode::kPerShardUnsafe);
  engine_.start({s});
}

void Replica::handle_probe(ProcessId from, const commit::Probe& m) {
  // Line 112 pre (line 41 in unsafe mode).
  if (m.epoch < new_epoch_) return;
  status_ = Status::kReconfiguring;
  if (options_.mode == ReconfigMode::kGlobalSafe) {
    // Line 114: sever all incoming RDMA connections — the guard that the
    // unsafe variant lacks.
    fabric_.close_all(id());
    connections_.clear();
  }
  new_epoch_ = m.epoch;
  rt().send_msg(id(), from, commit::ProbeAck{initialized_, m.epoch, options_.shard});
}

void Replica::fetch_latest(const std::vector<ShardId>& shards,
                           std::function<void(bool, recon::Snapshot)> cb) {
  if (options_.mode == ReconfigMode::kGlobalSafe) {
    // Lines 106-110: the global protocol probes every shard of the latest
    // stored global configuration.
    gcs_.get_last([cb](const configsvc::GlobalConfig& cfg) {
      if (!cfg.valid()) {
        cb(false, {});
        return;
      }
      recon::Snapshot snap;
      snap.epoch = cfg.epoch;
      snap.members = cfg.members;
      cb(true, snap);
    });
  } else {
    ShardId s = shards.front();
    cs_.get_last(s, [s, cb](const configsvc::ShardConfig& cfg) {
      if (!cfg.valid()) {
        cb(false, {});
        return;
      }
      recon::Snapshot snap;
      snap.epoch = cfg.epoch;
      snap.members[s] = cfg.members;
      cb(true, snap);
    });
  }
}

void Replica::fetch_members_at(ShardId shard, Epoch epoch,
                               std::function<void(bool, std::vector<ProcessId>)> cb) {
  if (options_.mode == ReconfigMode::kGlobalSafe) {
    gcs_.get(epoch, [shard, cb](bool found, const configsvc::GlobalConfig& cfg) {
      if (!found) {
        cb(false, {});
        return;
      }
      auto mit = cfg.members.find(shard);
      if (mit == cfg.members.end()) {
        cb(false, {});
        return;
      }
      cb(true, mit->second);
    });
  } else {
    cs_.get(shard, epoch, [cb](bool found, const configsvc::ShardConfig& cfg) {
      cb(found, cfg.members);
    });
  }
}

void Replica::send_probe(ProcessId target, Epoch new_epoch) {
  rt().send_msg(id(), target, commit::Probe{new_epoch});
}

std::vector<ProcessId> Replica::reserve_spares(ShardId shard, std::size_t n) {
  return options_.allocate_spares ? options_.allocate_spares(shard, n)
                                  : std::vector<ProcessId>{};
}

void Replica::release_spares(ShardId shard, const std::vector<ProcessId>& spares) {
  // Losing a CAS (e.g. two nudged replicas racing the global CAS) must not
  // consume the fresh spares the losing proposal reserved; the engine
  // routes them back here.
  if (options_.release_spares) options_.release_spares(shard, spares);
}

namespace {
configsvc::GlobalConfig to_global(const recon::Proposal& proposal) {
  configsvc::GlobalConfig gc;
  gc.epoch = proposal.epoch;
  for (const auto& [s, cfg] : proposal.shards) {
    gc.members[s] = cfg.members;
    gc.leaders[s] = cfg.leader;
  }
  return gc;
}
}  // namespace

void Replica::submit(const recon::Proposal& proposal,
                     std::function<void(bool)> done) {
  if (options_.mode == ReconfigMode::kGlobalSafe) {
    gcs_.cas(proposal.epoch - 1, to_global(proposal), std::move(done));
  } else {
    const auto& [shard, next] = *proposal.shards.begin();
    cs_.cas(shard, proposal.epoch - 1, next, std::move(done));
  }
}

void Replica::activate(const recon::Proposal& proposal) {
  if (options_.mode == ReconfigMode::kGlobalSafe) {
    // Lines 131-136 start here: disseminate CONFIG_PREPARE to the whole new
    // membership; activation (RNEW_CONFIG) waits for every ack.
    recon_config_ = to_global(proposal);
    installing_ = true;
    config_prepare_acks_.clear();
    for (ProcessId p : recon_config_.all_members()) {
      rt().send_msg(id(), p, ConfigPrepare{recon_config_.epoch, recon_config_});
    }
  } else {
    const configsvc::ShardConfig& next = proposal.shards.begin()->second;
    rt().send_msg(id(), next.leader, commit::NewConfig{next.epoch, next.members});
  }
}

recon::PlacementContext Replica::placement_context(ShardId shard) {
  return options_.placement_context ? options_.placement_context(shard)
                                    : recon::PlacementContext{};
}

void Replica::handle_config_prepare(ProcessId from, const ConfigPrepare& m) {
  // Lines 132-136.
  if (m.epoch < new_epoch_) return;
  pending_config_ = m.config;
  new_epoch_ = m.epoch;
  rt().send_msg(id(), from, ConfigPrepareAck{m.epoch});
}

void Replica::handle_config_prepare_ack(ProcessId from, const ConfigPrepareAck& m) {
  // Lines 137-140.
  if (!installing_ || m.epoch != recon_config_.epoch) return;
  config_prepare_acks_.insert(from);
  for (ProcessId p : recon_config_.all_members()) {
    if (config_prepare_acks_.count(p) == 0) return;
  }
  installing_ = false;
  for (ProcessId l : recon_config_.all_leaders()) {
    rt().send_msg(id(), l, RNewConfig{recon_config_.epoch});
  }
}

void Replica::handle_new_config(const RNewConfig& m) {
  // Lines 141-147.
  if (m.epoch < new_epoch_ || pending_config_.epoch != m.epoch) return;
  // Line 142: everything the NICs acknowledged must be visible before the
  // state transfer — coordinators may have externalized decisions based on
  // those acknowledgements.
  if (!options_.ablate_flush) fabric_.flush(id());
  status_ = Status::kLeader;
  epoch_ = m.epoch;
  new_epoch_ = m.epoch;
  config_ = pending_config_;
  next_ = log_.max_filled();  // line 145
  // Leadership takeover: reindex the (possibly transferred) log and make
  // sure every still-prepared slot has live retry bookkeeping.
  index_.rebuild(log_);
  rebuild_snapshot_store();
  for (Slot k = 1; k <= log_.size(); ++k) {
    const commit::LogEntry* e = log_.find(k);
    if (e != nullptr && e->phase == commit::Phase::kPrepared &&
        prepared_at_.count(k) == 0) {
      prepared_at_[k] = rt().now();
    }
  }
  RNewState ns;
  ns.epoch = epoch_;
  ns.log = log_;
  for (ProcessId p : config_.members.at(options_.shard)) {
    if (p != id()) rt().send_msg(id(), p, ns);
  }
  open_connections_to(config_.all_members());  // line 147
  arm_connect_retry();
  RATC_DEBUG(name() << " leads s" << options_.shard << " at global epoch " << epoch_);
}

void Replica::handle_new_state(ProcessId from, const RNewState& m) {
  (void)from;
  // Lines 148-153.
  if (m.epoch < new_epoch_ || pending_config_.epoch != m.epoch) return;
  status_ = Status::kFollower;
  epoch_ = m.epoch;
  new_epoch_ = m.epoch;
  initialized_ = true;
  config_ = pending_config_;
  log_ = m.log;
  index_.rebuild(log_);
  rebuild_snapshot_store();
  // Re-arm retry bookkeeping for slots still prepared in the new epoch
  // instead of clearing it wholesale — dropping them orphaned the line-168
  // retry for transactions whose coordinator died mid-2PC (see
  // commit::Replica::handle_new_state).
  prepared_at_.clear();
  for (Slot k = 1; k <= log_.size(); ++k) {
    const commit::LogEntry* e = log_.find(k);
    if (e != nullptr && e->phase == commit::Phase::kPrepared) {
      prepared_at_[k] = rt().now();
    }
  }
  // Line 153 sends CONNECT only to other shards' members; we connect to all
  // members so same-shard followers can serve as coordinators for each
  // other too (see DESIGN.md Sec. 2).
  open_connections_to(config_.all_members());
  arm_connect_retry();
}

void Replica::open_connections_to(const std::vector<ProcessId>& peers) {
  for (ProcessId p : peers) {
    if (p == id() || connections_.count(p)) continue;
    rt().send_msg(id(), p, Connect{epoch_});
  }
}

void Replica::arm_connect_retry() {
  rt().schedule_for(id(), options_.connect_retry, [this, e = epoch_] {
    if (epoch_ != e || status_ == Status::kReconfiguring) return;
    bool missing = false;
    for (ProcessId p : config_.all_members()) {
      if (p != id() && connections_.count(p) == 0) {
        rt().send_msg(id(), p, Connect{epoch_});
        missing = true;
      }
    }
    if (missing) arm_connect_retry();
  });
}

void Replica::handle_connect(ProcessId from, const Connect& m) {
  // Lines 154-158.
  if (status_ == Status::kReconfiguring || m.epoch != epoch_) return;
  if (connections_.count(from) == 0) {
    fabric_.open(id(), from);
    connections_.insert(from);
  }
  rt().send_msg(id(), from, ConnectAck{epoch_});
}

void Replica::handle_connect_ack(ProcessId from, const ConnectAck& m) {
  // Lines 159-162.
  if (status_ == Status::kReconfiguring || m.epoch != epoch_) return;
  if (connections_.count(from)) return;
  fabric_.open(id(), from);
  connections_.insert(from);
}

// --- reconfiguration: per-shard unsafe mode (Fig. 4a strawman) -----------------

void Replica::handle_new_config_unsafe(const commit::NewConfig& m) {
  if (m.epoch < new_epoch_) return;
  new_epoch_ = m.epoch;
  status_ = Status::kLeader;
  configsvc::ShardConfig& v = views_[options_.shard];
  v.epoch = m.epoch;
  v.members = m.members;
  v.leader = id();
  next_ = log_.max_filled();
  index_.rebuild(log_);
  rebuild_snapshot_store();
  for (Slot k = 1; k <= log_.size(); ++k) {
    const commit::LogEntry* e = log_.find(k);
    if (e != nullptr && e->phase == commit::Phase::kPrepared &&
        prepared_at_.count(k) == 0) {
      prepared_at_[k] = rt().now();
    }
  }
  commit::NewState ns;
  ns.epoch = m.epoch;
  ns.members = m.members;
  ns.log = log_;
  for (ProcessId p : m.members) {
    if (p != id()) rt().send_msg(id(), p, ns);
  }
}

void Replica::handle_new_state_unsafe(ProcessId from, const commit::NewState& m) {
  if (m.epoch < new_epoch_) return;
  new_epoch_ = m.epoch;
  initialized_ = true;
  status_ = Status::kFollower;
  configsvc::ShardConfig& v = views_[options_.shard];
  v.epoch = m.epoch;
  v.members = m.members;
  v.leader = from;
  log_ = m.log;
  index_.rebuild(log_);
  rebuild_snapshot_store();
  // Same re-arm as the safe mode's handle_new_state: surviving prepared
  // slots keep their retry bookkeeping.
  prepared_at_.clear();
  for (Slot k = 1; k <= log_.size(); ++k) {
    const commit::LogEntry* e = log_.find(k);
    if (e != nullptr && e->phase == commit::Phase::kPrepared) {
      prepared_at_[k] = rt().now();
    }
  }
}

void Replica::handle_config_change(const configsvc::ConfigChange& m) {
  if (m.shard == options_.shard) return;
  configsvc::ShardConfig& v = views_[m.shard];
  if (v.epoch >= m.config.epoch) return;
  v = m.config;
}

// --- CSN reads -------------------------------------------------------------

tcs::Csn Replica::read_watermark() const {
  // Below the smallest prepare stamp among prepared-undecided slots (see
  // commit::Replica::read_watermark; the in-flight-write argument for why no
  // fabric flush is needed is in the header).
  bool any = false;
  Time min_ts = 0;
  for (const commit::LogEntry& e : log_.entries()) {
    if (e.phase != commit::Phase::kPrepared) continue;
    if (!any || e.prepare_ts < min_ts) min_ts = e.prepare_ts;
    any = true;
  }
  if (any) return tcs::watermark_below(min_ts);
  return tcs::watermark_at(rt().now());
}

void Replica::rebuild_snapshot_store() {
  store_.clear();
  for (const commit::LogEntry& e : log_.entries()) {
    if (e.phase == commit::Phase::kDecided && e.dec == Decision::kCommit) {
      store_.apply_at(e.payload, tcs::Csn{e.csn_ts, e.txn});
    }
  }
}

// --- plumbing -------------------------------------------------------------------

void Replica::arm_retry_timer() {
  if (options_.retry_timeout == 0) return;
  rt().schedule_for(id(), options_.retry_timeout, [this] {
    run_retry_tick();
    arm_retry_timer();
  });
}

void Replica::run_retry_tick() {
  // Collect-then-act, mirroring commit::Replica::run_retry_tick: pass 1
  // iterates prepared_at_, pass 2 mutates it (rate-limit stamps) and
  // re-enters coordination state via retry().
  Time now = rt().now();
  std::vector<Slot> stale;
  for (const auto& [slot, since] : prepared_at_) {
    const commit::LogEntry* e = log_.find(slot);
    if (e != nullptr && e->phase == commit::Phase::kPrepared &&
        now - since >= options_.retry_timeout) {
      stale.push_back(slot);
    }
  }
  std::set<TxnId> driven;
  for (Slot k : stale) {
    prepared_at_[k] = now;  // rate-limit further retries
    const commit::LogEntry* e = log_.find(k);
    assert(e != nullptr && e->phase == commit::Phase::kPrepared &&
           "stale slot silently skipped within one retry tick");
    bool first = driven.insert(e->txn).second;
    (void)first;
    assert(first && "slot retry duplicated within one retry tick");
    retry(k);
  }
  redrive_coordinations(driven);
}

void Replica::on_message(ProcessId from, const sim::AnyMessage& msg) {
  if (options_.mode == ReconfigMode::kGlobalSafe ? gcs_.handle(msg) : cs_.handle(msg)) {
    return;
  }
  if (fd_responder_.handle(from, msg)) return;
  if (const auto* c = msg.as<commit::CertifyRequest>()) {
    commit::TxnMeta meta;
    meta.txn = c->txn;
    meta.participants = options_.shard_map->shards_of(c->payload);
    meta.client = from;
    start_certification(std::move(meta), &c->payload, nullptr);
  } else if (const auto* p = msg.as<commit::Prepare>()) {
    handle_prepare(from, *p);
  } else if (const auto* pb = msg.as<commit::PrepareBatch>()) {
    handle_prepare_batch(from, *pb);
  } else if (const auto* pa = msg.as<commit::PrepareAck>()) {
    handle_prepare_ack(*pa);
  } else if (const auto* pab = msg.as<commit::PrepareAckBatch>()) {
    handle_prepare_ack_batch(*pab);
  } else if (const auto* pr = msg.as<commit::Probe>()) {
    handle_probe(from, *pr);
  } else if (const auto* pra = msg.as<commit::ProbeAck>()) {
    engine_.on_probe_ack(from, pra->shard, pra->epoch, pra->initialized);
  } else if (const auto* cp = msg.as<ConfigPrepare>()) {
    handle_config_prepare(from, *cp);
  } else if (const auto* cpa = msg.as<ConfigPrepareAck>()) {
    handle_config_prepare_ack(from, *cpa);
  } else if (const auto* nc = msg.as<RNewConfig>()) {
    handle_new_config(*nc);
  } else if (const auto* ns = msg.as<RNewState>()) {
    handle_new_state(from, *ns);
  } else if (const auto* cn = msg.as<Connect>()) {
    handle_connect(from, *cn);
  } else if (const auto* cna = msg.as<ConnectAck>()) {
    handle_connect_ack(from, *cna);
  } else if (const auto* nc2 = msg.as<commit::NewConfig>()) {
    handle_new_config_unsafe(*nc2);
  } else if (const auto* ns2 = msg.as<commit::NewState>()) {
    handle_new_state_unsafe(from, *ns2);
  } else if (const auto* cc = msg.as<configsvc::ConfigChange>()) {
    handle_config_change(*cc);
  } else if (msg.as<ctrl::NudgeReconfig>() != nullptr) {
    // A reconfiguration controller suspects a member: run the global
    // reconfiguration (Fig. 8).  No-op while one is already in flight
    // (rec_status_ guard inside reconfigure()); the controller's watchdog
    // re-nudges if nothing lands.
    if (options_.mode == ReconfigMode::kGlobalSafe) reconfigure();
  }
}

}  // namespace ratc::rdma
