// Simulated RDMA communication primitive (paper Sec. 5).
//
// Models one-sided writes into per-sender circular buffers at the receiver:
//   * send_rdma(m, to): the sender's NIC ships m; when it lands in the
//     receiver's memory, the receiver's NIC acknowledges WITHOUT involving
//     the receiver's CPU (ack-rdma), and the receiver's CPU later polls the
//     buffer and delivers (deliver-rdma).
//   * open/close: connection management.  After close(p) completes, p's
//     writes no longer land — including writes already in flight, exactly
//     the lever the corrected reconfiguration protocol (Fig. 4b) relies on.
//   * flush(): synchronously delivers every message that has already been
//     acknowledged into local memory (used at NEW_CONFIG, Fig. 8 line 142).
//
// The model deliberately preserves the property that makes Figure 4a's
// counter-example possible: a write that lands is acknowledged even if the
// receiver's protocol state would have rejected it — the receiver CPU is
// not consulted.
//
// A process's write to its OWN memory is different: physically it is a
// synchronous CPU store, not a DMA.  send_rdma therefore lands and
// delivers it immediately (no connection check, no fault injection, no
// in-flight window), with only the completion notification deferred to the
// next event at the same tick.  This is what lets the RdmaMonitor check
// property (*) on every landing without a self-write exemption.
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <set>
#include <utility>
#include <vector>

#include "common/types.h"
#include "sim/fault.h"
#include "sim/message.h"
#include "sim/simulator.h"

namespace ratc::rdma {

/// Tap for monitors/tracers on one-sided traffic.
class FabricObserver {
 public:
  virtual ~FabricObserver() = default;
  virtual void on_write(Time now, ProcessId from, ProcessId to, const sim::AnyMessage& m) {
    (void)now; (void)from; (void)to; (void)m;
  }
  /// The write landed in `to`'s memory (NIC ack generated).
  virtual void on_landed(Time now, ProcessId from, ProcessId to, const sim::AnyMessage& m) {
    (void)now; (void)from; (void)to; (void)m;
  }
  /// The write was rejected (connection closed or receiver crashed).
  virtual void on_rejected(Time now, ProcessId from, ProcessId to, const sim::AnyMessage& m) {
    (void)now; (void)from; (void)to; (void)m;
  }
};

/// NIC acknowledgement delivered to the *sender* when its write lands.
struct RdmaAck {
  static constexpr const char* kName = "ACK_RDMA";
  ProcessId dest = kNoProcess;   ///< whose memory the write reached
  std::uint64_t token = 0;       ///< send_rdma's return value
};

class Fabric {
 public:
  struct Options {
    /// Propagation delay of a one-sided write (and of the hardware ack).
    std::function<Duration(Rng&, ProcessId from, ProcessId to)> delay;
    /// Delay between a write landing and the receiver's CPU polling it.
    Duration poll_delay = 1;
  };

  static Options unit_delay_options();

  Fabric(sim::Simulator& sim, Options options = unit_delay_options());

  /// Registers a process; `deliver` is the deliver-rdma upcall, `ack` the
  /// ack-rdma upcall (NIC completion at the sender).
  void attach(ProcessId p,
              std::function<void(ProcessId from, const sim::AnyMessage&)> deliver,
              std::function<void(const RdmaAck&)> ack);

  void open(ProcessId owner, ProcessId peer);
  void close(ProcessId owner, ProcessId peer);
  void close_all(ProcessId owner);
  bool is_open(ProcessId owner, ProcessId peer) const;

  /// One-sided write; returns the token that the eventual RdmaAck carries.
  std::uint64_t send_rdma(ProcessId from, ProcessId to, sim::AnyMessage msg);

  /// Synchronously delivers all landed-but-undelivered messages at `owner`.
  void flush(ProcessId owner);

  void add_observer(FabricObserver* obs) { observers_.push_back(obs); }

  /// Installs (or with nullptr removes) a fault-injection hook consulted on
  /// every one-sided write.  A dropped write is rejected: the sender never
  /// receives a NIC completion, as if the switch lost the packet.
  void set_fault_injector(sim::FaultInjector* fi) { fault_ = fi; }

  std::uint64_t writes_sent() const { return writes_sent_; }
  std::uint64_t writes_rejected() const { return writes_rejected_; }

 private:
  struct Endpoint {
    std::function<void(ProcessId, const sim::AnyMessage&)> deliver;
    std::function<void(const RdmaAck&)> ack;
    std::set<ProcessId> open_from;  ///< peers allowed to write here
    /// Connection incarnation per peer, bumped by every open() and close():
    /// models RDMA queue pairs — a write issued against an old incarnation
    /// fails even if a new connection to the same peer exists by the time
    /// it arrives.  The Fig. 4b safety argument relies on this.
    std::map<ProcessId, std::uint64_t> generation;
    /// Landed but not yet polled: (sender, message).
    std::deque<std::pair<ProcessId, sim::AnyMessage>> buffer;
  };

  void land(ProcessId from, ProcessId to, sim::AnyMessage msg, std::uint64_t token,
            std::uint64_t gen_at_send);
  void poll_one(ProcessId owner);

  sim::Simulator& sim_;
  Options options_;
  std::map<ProcessId, Endpoint> endpoints_;
  std::vector<FabricObserver*> observers_;
  sim::FaultInjector* fault_ = nullptr;
  std::uint64_t next_token_ = 1;
  std::uint64_t writes_sent_ = 0;
  std::uint64_t writes_rejected_ = 0;
  /// FIFO per directed pair, like the network.
  std::map<std::uint64_t, Time> channel_clock_;
};

}  // namespace ratc::rdma
