// Message vocabulary of the RDMA-based protocol (Figs. 7-8).  PREPARE /
// PREPARE_ACK / PROBE / PROBE_ACK / client messages are shared with the
// message-passing protocol (commit/messages.h); the one-sided writes and
// the global reconfiguration messages are defined here.
#pragma once

#include "commit/log.h"
#include "commit/messages.h"
#include "configsvc/config.h"
#include "tcs/decision.h"
#include "tcs/payload.h"

namespace ratc::rdma {

/// ACCEPT shipped by the coordinator via send-rdma (Fig. 7 line 93).  The
/// paper's message carries no epoch — followers cannot (and do not) check
/// it; the epoch and shard fields here are *monitoring metadata only*: the
/// receiving replica ignores them, which is exactly what makes the Fig. 4a
/// counter-example expressible.  The Invariant 13 monitor compares the
/// epoch against the receiver's at landing time.
struct RAccept {
  static constexpr const char* kName = "ACCEPT";
  Epoch epoch = kNoEpoch;  ///< monitor-only
  ShardId shard = 0;       ///< monitor-only
  Slot slot = kNoSlot;
  TxnId txn = 0;
  tcs::Payload payload;
  tcs::Decision vote = tcs::Decision::kAbort;
  commit::TxnMeta meta;
  Time prepare_ts = 0;  ///< the leader's CSN-log stamp, replicated with the slot
  std::size_t wire_size() const {
    return 48 + payload.wire_size() + meta.participants.size() * 4;
  }
};

/// One one-sided write carrying a whole batch's ACCEPTs for one follower
/// (the batched certification path).  Semantically the items land in order
/// as if written back-to-back; the NIC acknowledges once for the batch.
/// Batches of one are never sent — the scalar RAccept is used instead.
struct RAcceptBatch {
  static constexpr const char* kName = "ACCEPT_BATCH";
  std::vector<RAccept> items;
  std::size_t wire_size() const { return commit::detail::batch_wire_size(items); }
};

/// DECISION written via send-rdma to shard members (Fig. 7 line 100).
struct RDecision {
  static constexpr const char* kName = "DECISION";
  Epoch epoch = kNoEpoch;  ///< monitor-only
  ShardId shard = 0;       ///< monitor-only
  Slot slot = kNoSlot;
  TxnId txn = 0;
  tcs::Decision decision = tcs::Decision::kAbort;
  Time csn_ts = 0;  ///< csn(t).ts for commits: max prepare stamp over shards
};

// --- global reconfiguration (Fig. 8) -----------------------------------------

/// Reconfigurer -> every member of the new configuration (line 124).
struct ConfigPrepare {
  static constexpr const char* kName = "CONFIG_PREPARE";
  Epoch epoch = kNoEpoch;
  configsvc::GlobalConfig config;
  std::size_t wire_size() const { return 16 + config.members.size() * 16; }
};

struct ConfigPrepareAck {
  static constexpr const char* kName = "CONFIG_PREPARE_ACK";
  Epoch epoch = kNoEpoch;
};

/// Reconfigurer -> the new leaders (line 139).
struct RNewConfig {
  static constexpr const char* kName = "NEW_CONFIG";
  Epoch epoch = kNoEpoch;
};

/// New leader -> its followers: state transfer (line 146).
struct RNewState {
  static constexpr const char* kName = "NEW_STATE";
  Epoch epoch = kNoEpoch;
  commit::ReplicaLog log;
  std::size_t wire_size() const { return 16 + log.wire_size(); }
};

struct Connect {
  static constexpr const char* kName = "CONNECT";
  Epoch epoch = kNoEpoch;
};

struct ConnectAck {
  static constexpr const char* kName = "CONNECT_ACK";
  Epoch epoch = kNoEpoch;
};

}  // namespace ratc::rdma
