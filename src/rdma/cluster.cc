#include "rdma/cluster.h"

#include <algorithm>
#include <cassert>
#include <set>
#include <stdexcept>

#include "recon/cluster_support.h"

namespace ratc::rdma {

namespace {
constexpr ProcessId kReplicaBase = 100;
constexpr ProcessId kShardStride = 100;
constexpr ProcessId kSpareOffset = 50;
constexpr ProcessId kClientBase = 5000;
constexpr ProcessId kCtrlBase = 8000;
constexpr ProcessId kCsPid = 9000;
}  // namespace

Cluster::Cluster(Options options)
    : options_(std::move(options)), sim_(options_.seed), shard_map_(options_.num_shards) {
  auto delay_fn = [this](Rng&, ProcessId from, ProcessId to) -> Duration {
    if (options_.link_delay) {
      Duration d = options_.link_delay(from, to);
      if (d > 0) return d;
    }
    return 1;
  };
  sim::Network::Options nopt;
  nopt.delay = delay_fn;
  net_ = std::make_unique<sim::Network>(sim_, nopt);
  Fabric::Options fopt;
  if (options_.fabric_delay) {
    fopt.delay = [this](Rng&, ProcessId from, ProcessId to) -> Duration {
      Duration d = options_.fabric_delay(from, to);
      return d > 0 ? d : 1;
    };
  } else {
    fopt.delay = delay_fn;
  }
  fopt.poll_delay = options_.poll_delay;
  fabric_ = std::make_unique<Fabric>(sim_, fopt);
  certifier_ = tcs::make_certifier(options_.isolation);
  monitor_ = std::make_unique<RdmaMonitor>(sim_);
  net_->add_observer(monitor_.get());
  fabric_->add_observer(monitor_.get());
  if (options_.enable_tracer) {
    tracer_ = std::make_unique<sim::Tracer>();
    net_->add_observer(tracer_.get());
  }

  // Configuration service and initial configuration.
  configsvc::GlobalConfig initial;
  initial.epoch = 1;
  for (ShardId s = 0; s < options_.num_shards; ++s) {
    std::vector<ProcessId> members;
    for (std::size_t i = 0; i < options_.shard_size; ++i) {
      members.push_back(replica_pid(s, i));
    }
    initial.members[s] = members;
    initial.leaders[s] = members.front();
  }
  if (options_.mode == ReconfigMode::kGlobalSafe) {
    gcs_ = std::make_unique<configsvc::SimpleGlobalConfigService>(sim_, *net_, kCsPid);
    sim_.add_process(gcs_.get());
    gcs_->bootstrap(initial);
  } else {
    cs_ = std::make_unique<configsvc::SimpleConfigService>(sim_, *net_, kCsPid);
    sim_.add_process(cs_.get());
    for (ShardId s = 0; s < options_.num_shards; ++s) {
      cs_->bootstrap(s, initial.shard(s));
    }
  }
  for (const auto& [s, members] : initial.members) {
    monitor_->register_members(s, initial.epoch, members, initial.leaders.at(s));
  }

  zones_ = recon::assign_zones(
      options_.num_zones, options_.num_shards,
      options_.shard_size + options_.spares_per_shard,
      [this](ShardId s, std::size_t i) { return replica_pid(s, i); });

  for (ShardId s = 0; s < options_.num_shards; ++s) {
    Replica::Options ropt;
    ropt.shard = s;
    ropt.mode = options_.mode;
    ropt.shard_map = &shard_map_;
    ropt.certifier = certifier_.get();
    ropt.cs_endpoints = {kCsPid};
    ropt.target_shard_size = options_.shard_size;
    ropt.probe_patience = options_.probe_patience;
    ropt.retry_timeout = options_.retry_timeout;
    ropt.ablate_flush = options_.ablate_flush;
    ropt.check_certifier_index = options_.check_certifier_index;
    ropt.monitor = monitor_.get();
    ropt.placement_policy = options_.placement_policy;
    ropt.placement_context = [this](ShardId shard) {
      return placement_context(shard);
    };
    ropt.allocate_spares = [this](ShardId shard, std::size_t n) {
      return allocate_spares(shard, n);
    };
    ropt.release_spares = [this](ShardId shard,
                                 const std::vector<ProcessId>& spares) {
      release_spares(shard, spares);
    };
    for (std::size_t j = 0; j < options_.spares_per_shard; ++j) {
      free_spares_[s].push_back(replica_pid(s, options_.shard_size + j));
    }
    for (std::size_t i = 0; i < options_.shard_size + options_.spares_per_shard; ++i) {
      ProcessId pid = replica_pid(s, i);
      auto r = std::make_unique<Replica>(sim_, *net_, *fabric_, pid, ropt);
      sim_.add_process(r.get());
      monitor_->register_replica(r.get());
      if (cs_) cs_->subscribe(pid);
      if (i < options_.shard_size) {
        r->bootstrap(i == 0 ? Status::kLeader : Status::kFollower, initial);
      } else {
        r->bootstrap_spare(initial);
      }
      replicas_.push_back(std::move(r));
    }
  }
  // In the unsafe strawman, writes to spares must land too (no connection
  // management at all): open every member->spare path.
  if (options_.mode == ReconfigMode::kPerShardUnsafe) {
    for (auto& owner : replicas_) {
      for (auto& peer : replicas_) {
        if (owner->id() != peer->id()) fabric_->open(owner->id(), peer->id());
      }
    }
  }

  // Autonomous reconfiguration controllers (src/ctrl/): watch members, and
  // on suspicion nudge a live replica to run the global reconfiguration
  // (the fabric-side activation steps live in the replicas; see
  // ctrl/messages.h).  Safe global mode only — the unsafe strawman exists
  // to reproduce the Fig. 4a violation, not to be healed.
  if (options_.enable_controller) {
    if (options_.mode != ReconfigMode::kGlobalSafe) {
      // Replicas drop CTRL_NUDGE outside safe mode; silently spawning
      // controllers would claim autonomous recovery while healing nothing.
      throw std::invalid_argument(
          "enable_controller requires ReconfigMode::kGlobalSafe");
    }
    for (ShardId s = 0; s < options_.num_shards; ++s) {
      ctrl::ReconController::Options copt;
      copt.shard = s;
      copt.mode = ctrl::ReconController::Mode::kDelegateGlobal;
      copt.target_shard_size = options_.shard_size;
      copt.tuning = options_.controller_tuning;
      copt.placement_context = [this](ShardId shard) {
        return placement_context(shard);
      };
      auto c = std::make_unique<ctrl::ReconController>(
          sim_, *net_, kCtrlBase + s, std::move(copt));
      sim_.add_process(c.get());
      gcs_->subscribe(c->id());
      c->bootstrap_global(initial);
      controllers_.push_back(std::move(c));
    }
  }
}

std::size_t Cluster::controller_attempts() const {
  std::size_t n = 0;
  for (const auto& c : controllers_) n += c->stats().attempts;
  return n;
}

recon::EngineStats Cluster::engine_stats() const {
  return recon::cluster_engine_stats(replicas_, controllers_);
}

std::string Cluster::spare_ledger_verdict() const {
  return recon::cluster_spare_ledger_verdict(replicas_, controllers_);
}

recon::PlacementContext Cluster::placement_context(ShardId s) const {
  auto pool = free_spares_.find(s);
  return recon::cluster_placement_context(
      s, replicas_, zones_,
      pool == free_spares_.end() ? 0 : pool->second.size());
}

std::vector<ProcessId> Cluster::allocate_spares(ShardId shard, std::size_t n) {
  std::vector<ProcessId> out;
  auto& pool = free_spares_[shard];
  while (!pool.empty() && out.size() < n) {
    out.push_back(pool.front());
    pool.erase(pool.begin());
  }
  return out;
}

void Cluster::release_spares(ShardId shard, const std::vector<ProcessId>& spares) {
  auto& pool = free_spares_[shard];
  pool.insert(pool.end(), spares.begin(), spares.end());
}

ProcessId Cluster::replica_pid(ShardId s, std::size_t idx) const {
  ProcessId base = kReplicaBase + s * kShardStride;
  return idx < options_.shard_size
             ? base + static_cast<ProcessId>(idx)
             : base + kSpareOffset + static_cast<ProcessId>(idx - options_.shard_size);
}

Replica& Cluster::replica(ShardId s, std::size_t idx) {
  return replica_by_pid(replica_pid(s, idx));
}

Replica& Cluster::replica_by_pid(ProcessId pid) {
  for (auto& r : replicas_) {
    if (r->id() == pid) return *r;
  }
  throw std::out_of_range("no rdma replica with pid " + std::to_string(pid));
}

std::vector<ProcessId> Cluster::spares(ShardId s) const {
  std::vector<ProcessId> out;
  for (std::size_t j = 0; j < options_.spares_per_shard; ++j) {
    out.push_back(replica_pid(s, options_.shard_size + j));
  }
  return out;
}

configsvc::ShardConfig Cluster::current_config(ShardId s) const {
  if (gcs_) return gcs_->last().shard(s);
  return cs_->last(s);
}

Epoch Cluster::current_epoch() const {
  assert(gcs_ != nullptr);
  return gcs_->last().epoch;
}

Client& Cluster::add_client() {
  ProcessId pid = kClientBase + static_cast<ProcessId>(clients_.size());
  auto c = std::make_unique<Client>(sim_, *net_, pid, &history_);
  sim_.add_process(c.get());
  clients_.push_back(std::move(c));
  return *clients_.back();
}

bool Cluster::await_active_epoch(Epoch at_least, std::size_t max_events) {
  assert(options_.mode == ReconfigMode::kGlobalSafe);
  auto active = [&] {
    const configsvc::GlobalConfig& cfg = gcs_->last();
    if (cfg.epoch < at_least) return false;
    for (ProcessId m : cfg.all_members()) {
      if (sim_.crashed(m)) return false;
      if (replica_by_pid(m).epoch() != cfg.epoch) return false;
    }
    return true;
  };
  return sim_.run_until_pred(active, max_events);
}

bool Cluster::await_active_shard_epoch(ShardId s, Epoch at_least,
                                       std::size_t max_events) {
  auto active = [&] {
    configsvc::ShardConfig cfg = current_config(s);
    if (cfg.epoch < at_least) return false;
    for (ProcessId m : cfg.members) {
      if (sim_.crashed(m)) return false;
      if (replica_by_pid(m).epoch() != cfg.epoch) return false;
    }
    return true;
  };
  return sim_.run_until_pred(active, max_events);
}

std::optional<tcs::Csn> Cluster::snapshot_read(const std::vector<ObjectId>& objects,
                                               Duration staleness_bound,
                                               std::uint64_t member_hint) {
  if (objects.empty()) return std::nullopt;
  std::set<ShardId> shards;
  for (ObjectId o : objects) shards.insert(shard_map_.shard_of(o));
  std::map<ShardId, Replica*> serving;
  tcs::Csn snapshot = tcs::watermark_at(sim_.now());
  for (ShardId s : shards) {
    configsvc::ShardConfig cfg = current_config(s);
    if (cfg.members.empty()) return std::nullopt;
    Replica* pick = nullptr;
    for (std::size_t i = 0; i < cfg.members.size(); ++i) {
      ProcessId pid = cfg.members[(member_hint + i) % cfg.members.size()];
      if (sim_.crashed(pid)) continue;
      Replica& r = replica_by_pid(pid);
      if (r.epoch() != cfg.epoch) continue;
      pick = &r;
      break;
    }
    if (pick == nullptr) return std::nullopt;
    serving[s] = pick;
    snapshot = std::min(snapshot, pick->read_watermark());
  }
  if (staleness_bound > 0 && snapshot.ts + staleness_bound < sim_.now()) {
    return std::nullopt;
  }
  tcs::SnapshotReadRecord rec;
  rec.time = sim_.now();
  rec.snapshot = snapshot;
  rec.staleness_bound = staleness_bound;
  for (ObjectId o : objects) {
    Replica* r = serving.at(shard_map_.shard_of(o));
    std::optional<store::VersionedValue> v = r->snapshot_store().read_at(o, snapshot);
    if (!v) return std::nullopt;
    rec.observations.push_back({o, v->version, v->value});
  }
  history_.record_snapshot_read(std::move(rec));
  return snapshot;
}

std::string Cluster::verify() const {
  std::string problems;
  if (!monitor_->violations().empty()) {
    problems += "invariant violations:\n" + monitor_->violations().summary();
  }
  auto conflicting = history_.conflicting_decisions();
  if (!conflicting.empty()) {
    problems += "conflicting client decisions for " +
                std::to_string(conflicting.size()) + " transaction(s)\n";
  }
  checker::TcsLLInput input =
      monitor_->tcsll_input(history_, shard_map_, *certifier_);
  checker::TcsLLResult tcsll = checker::check_tcsll(input);
  if (!tcsll.ok) {
    problems += "TCS-LL violations:\n" + tcsll.summary();
  }
  return problems;
}

}  // namespace ratc::rdma
