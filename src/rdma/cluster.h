// Harness for the RDMA-based protocol: shards of f+1 replicas over a
// simulated RDMA fabric, the global configuration service (safe mode) or
// per-shard configuration service (unsafe strawman mode), monitor, clients.
#pragma once

#include <functional>
#include <map>
#include <memory>
#include <optional>
#include <utility>
#include <vector>

#include "configsvc/simple_service.h"
#include "ctrl/recon_controller.h"
#include "rdma/fabric.h"
#include "rdma/monitor.h"
#include "rdma/replica.h"
#include "sim/network.h"
#include "sim/simulator.h"
#include "sim/trace.h"
#include "tcs/certifier.h"
#include "tcs/history.h"
#include "tcs/shard_map.h"

namespace ratc::rdma {

class Client : public sim::Process {
 public:
  Client(rt::Runtime& rt, ProcessId id, tcs::History* history)
      : Process(rt, id, "rclient" + std::to_string(id)), history_(history) {}
  Client(sim::Simulator& sim, sim::Network& net, ProcessId id, tcs::History* history)
      : Client(net.runtime(), id, history) { (void)sim; }

  void certify_remote(ProcessId coordinator, TxnId txn, const tcs::Payload& payload) {
    history_->record_certify(rt().now(), txn, payload);
    sent_[txn] = rt().now();
    rt().send_msg(id(), coordinator, commit::CertifyRequest{txn, payload});
  }

  void certify_colocated(Replica& coordinator, TxnId txn, const tcs::Payload& payload) {
    history_->record_certify(rt().now(), txn, payload);
    sent_[txn] = rt().now();
    coordinator.certify_local(
        txn, payload,
        [this, txn](tcs::Decision d, Time csn_ts) { record_decision(txn, d, csn_ts); },
        id());
  }

  /// Batched co-located submission (see commit::Client).
  void certify_batch_colocated(
      Replica& coordinator,
      const std::vector<std::pair<TxnId, tcs::Payload>>& batch) {
    for (const auto& [txn, payload] : batch) {
      history_->record_certify(rt().now(), txn, payload);
      sent_[txn] = rt().now();
    }
    coordinator.certify_batch_local(
        batch,
        [this](TxnId txn, tcs::Decision d, Time csn_ts) {
          record_decision(txn, d, csn_ts);
        },
        id());
  }

  void on_message(ProcessId from, const sim::AnyMessage& msg) override {
    (void)from;
    if (const auto* d = msg.as<commit::ClientDecision>()) {
      record_decision(d->txn, d->decision, d->csn_ts);
    }
  }

  bool decided(TxnId t) const { return decisions_.count(t) > 0; }
  std::optional<tcs::Decision> decision(TxnId t) const {
    auto it = decisions_.find(t);
    if (it == decisions_.end()) return std::nullopt;
    return it->second;
  }
  std::size_t decided_count() const { return decisions_.size(); }
  std::optional<Duration> latency(TxnId t) const {
    auto d = decided_at_.find(t);
    auto s = sent_.find(t);
    if (d == decided_at_.end() || s == sent_.end()) return std::nullopt;
    return d->second - s->second;
  }
  /// All decisions this client observed, in arrival order (duplicates kept:
  /// the Fig. 4a test asserts on contradictory ones).
  const std::vector<std::pair<TxnId, tcs::Decision>>& observations() const {
    return observations_;
  }

  /// Invoked once per transaction on its first decision.
  std::function<void(TxnId, tcs::Decision)> on_decision;

 private:
  void record_decision(TxnId txn, tcs::Decision d, Time csn_ts = 0) {
    history_->record_decide(rt().now(), txn, d, tcs::Csn{csn_ts, txn});
    observations_.emplace_back(txn, d);
    if (decisions_.count(txn) == 0) {
      decisions_[txn] = d;
      decided_at_[txn] = rt().now();
      if (on_decision) on_decision(txn, d);
    }
  }

  tcs::History* history_;
  std::map<TxnId, tcs::Decision> decisions_;
  std::map<TxnId, Time> sent_;
  std::map<TxnId, Time> decided_at_;
  std::vector<std::pair<TxnId, tcs::Decision>> observations_;
};

class Cluster {
 public:
  struct Options {
    std::uint64_t seed = 1;
    std::uint32_t num_shards = 2;
    std::size_t shard_size = 2;
    std::size_t spares_per_shard = 2;
    std::string isolation = "serializability";
    ReconfigMode mode = ReconfigMode::kGlobalSafe;
    Duration retry_timeout = 0;
    Duration probe_patience = 5;
    /// Optional per-link delay override (network, and fabric unless
    /// fabric_delay is set); return 0 to use the default of 1 tick.  Used
    /// to orchestrate the Fig. 4a race.
    std::function<Duration(ProcessId from, ProcessId to)> link_delay;
    /// Separate delay for one-sided RDMA operations (writes and NIC acks).
    /// Lets benches model two-sided messaging paying a CPU cost that
    /// one-sided writes avoid (experiment E9).
    std::function<Duration(ProcessId from, ProcessId to)> fabric_delay;
    /// Delay between a write landing and the receiver's CPU polling it.
    Duration poll_delay = 1;
    /// Test-only ablation of the NEW_CONFIG flush (Fig. 8 line 142).
    bool ablate_flush = false;
    bool enable_tracer = false;
    /// Spawn one autonomous reconfiguration controller per shard
    /// (src/ctrl/); safe global mode only.  The controllers delegate
    /// execution to replicas via CTRL_NUDGE (see ctrl/messages.h).
    bool enable_controller = false;
    ctrl::ControllerTuning controller_tuning;
    /// Membership policy for every reconfigurer (the replicas running the
    /// global protocol, and the unsafe strawman's per-shard one).  Null
    /// selects recon::ReplaceSuspectsPolicy.  Non-owning.
    recon::PlacementPolicy* placement_policy = nullptr;
    /// Synthetic zone labels as in commit::Cluster::Options::num_zones.
    std::size_t num_zones = 0;
    /// Debug cross-check of the witness index against the flat log scan
    /// (see rdma::Replica::Options); aborts on divergence.
    bool check_certifier_index = false;
  };

  explicit Cluster(Options options);

  Replica& replica(ShardId s, std::size_t idx);
  Replica& replica_by_pid(ProcessId pid);
  std::vector<ProcessId> spares(ShardId s) const;
  configsvc::ShardConfig current_config(ShardId s) const;
  Epoch current_epoch() const;  ///< safe mode: the stored global epoch
  ProcessId leader_of(ShardId s) const { return current_config(s).leader; }

  Client& add_client();
  TxnId next_txn_id() { return next_txn_++; }

  void crash(ProcessId pid) { sim_.crash(pid); }
  /// Runs until the configuration with epoch >= `at_least` is active
  /// (safe mode: all members of all shards report it).
  bool await_active_epoch(Epoch at_least, std::size_t max_events = 2'000'000);
  bool await_active_shard_epoch(ShardId s, Epoch at_least,
                                std::size_t max_events = 2'000'000);

  // --- autonomous reconfiguration (src/ctrl/) ---------------------------------

  bool has_controller() const { return !controllers_.empty(); }
  ctrl::ReconController& controller(ShardId s) { return *controllers_.at(s); }
  /// Total reconfiguration attempts started by the controllers.
  std::size_t controller_attempts() const;

  // --- shared reconfigurer core (src/recon/) -----------------------------------

  /// Aggregate recon::Engine counters (replicas + controllers).
  recon::EngineStats engine_stats() const;
  /// Per-engine spare-ledger invariant; empty iff balanced everywhere.
  std::string spare_ledger_verdict() const;
  /// Cluster knowledge for placement policies (zones, load, spare depth).
  recon::PlacementContext placement_context(ShardId s) const;

  sim::Simulator& sim() { return sim_; }
  sim::Network& net() { return *net_; }
  Fabric& fabric() { return *fabric_; }
  RdmaMonitor& monitor() { return *monitor_; }
  sim::Tracer& tracer() { return *tracer_; }
  tcs::History& history() { return history_; }
  const tcs::ShardMap& shard_map() const { return shard_map_; }
  const tcs::Certifier& certifier() const { return *certifier_; }

  /// Read-only snapshot transaction with ZERO certification messages and no
  /// fabric flush (see rdma::Replica's CSN read surface): one live member at
  /// the authoritative epoch per involved shard, snapshot = min of their CSN
  /// watermarks, objects resolved locally.  Served reads are recorded in the
  /// history; nullopt when unservable (no member, truncated history, or a
  /// violated staleness bound).  Mirrors commit::Cluster::snapshot_read.
  std::optional<tcs::Csn> snapshot_read(const std::vector<ObjectId>& objects,
                                        Duration staleness_bound = 0,
                                        std::uint64_t member_hint = 0);

  /// End-of-run verdict: monitor violations + conflicting client decisions.
  std::string verify() const;

 private:
  ProcessId replica_pid(ShardId s, std::size_t idx) const;
  /// Fresh-spare pool management (global freshness; mirrors
  /// commit::Cluster::allocate_spares/release_spares).
  std::vector<ProcessId> allocate_spares(ShardId shard, std::size_t n);
  void release_spares(ShardId shard, const std::vector<ProcessId>& spares);

  Options options_;
  sim::Simulator sim_;
  std::unique_ptr<sim::Network> net_;
  std::unique_ptr<Fabric> fabric_;
  tcs::ShardMap shard_map_;
  std::unique_ptr<tcs::Certifier> certifier_;
  std::unique_ptr<RdmaMonitor> monitor_;
  std::unique_ptr<sim::Tracer> tracer_;
  std::unique_ptr<configsvc::SimpleGlobalConfigService> gcs_;
  std::unique_ptr<configsvc::SimpleConfigService> cs_;
  std::vector<std::unique_ptr<Replica>> replicas_;
  std::vector<std::unique_ptr<ctrl::ReconController>> controllers_;
  std::vector<std::unique_ptr<Client>> clients_;
  std::map<ShardId, std::vector<ProcessId>> free_spares_;
  std::map<ProcessId, std::string> zones_;
  tcs::History history_;
  TxnId next_txn_ = 1;
};

}  // namespace ratc::rdma
