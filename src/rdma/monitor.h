// Runtime monitor for the RDMA-based protocol.
//
// Checks the two properties that distinguish the safe and unsafe variants:
//  * decision uniqueness (Invariant 4): per slot of a shard, per transaction
//    and at the client boundary — the property the Figure 4a counter-example
//    violates;
//  * Invariant 13 / property (*) of Sec. 5: when an ACCEPT write lands in a
//    process's memory, the receiver's current epoch equals the epoch at
//    which the leader prepared the transaction.  The corrected protocol
//    guarantees this via connection management; the per-shard strawman does
//    not.
#pragma once

#include <map>
#include <set>
#include <string>
#include <tuple>
#include <utility>
#include <vector>

#include "checker/tcsll.h"
#include "commit/messages.h"
#include "common/types.h"
#include "common/violation.h"
#include "configsvc/config.h"
#include "rdma/fabric.h"
#include "rdma/messages.h"
#include "rdma/replica.h"
#include "sim/network.h"
#include "tcs/history.h"

namespace ratc::rdma {

class RdmaMonitor : public sim::NetworkObserver, public FabricObserver {
 public:
  explicit RdmaMonitor(sim::Simulator& sim) : sim_(sim) {}

  void register_replica(Replica* r) { replicas_[r->id()] = r; }

  /// Registers the membership of (shard, epoch); fed by the bootstrap and
  /// by observing CONFIG_PREPARE / NEW_CONFIG traffic.  Needed to decide
  /// when an acceptance is complete (all followers' writes landed).
  void register_members(ShardId shard, Epoch epoch, std::vector<ProcessId> members,
                        ProcessId leader) {
    configs_.emplace(std::make_pair(shard, epoch),
                     std::make_pair(std::move(members), leader));
  }

  void on_local_decision(TxnId txn, tcs::Decision d) { check_decision(txn, d); }

  /// Vote-computation witnesses, reported by leaders (Fig. 7 line 85); the
  /// raw material for the TCS-LL records.
  void on_vote_computed(ShardId shard, Epoch epoch, Slot slot, TxnId txn,
                        tcs::Decision vote, const tcs::Payload& payload,
                        std::vector<TxnId> committed_against,
                        std::vector<TxnId> prepared_against) {
    VoteRecord rec;
    rec.vote = vote;
    rec.payload = payload;
    rec.committed_against = std::move(committed_against);
    rec.prepared_against = std::move(prepared_against);
    votes_[{shard, slot, txn}][epoch] = std::move(rec);
  }

  /// Assembles the TCS-LL (Fig. 6) checker input from the collected
  /// acceptance records — same oracle as the message-passing protocol's.
  checker::TcsLLInput tcsll_input(const tcs::History& history,
                                  const tcs::ShardMap& shard_map,
                                  const tcs::Certifier& certifier) const {
    checker::TcsLLInput input;
    input.history = &history;
    input.shard_map = &shard_map;
    input.certifier = &certifier;
    input.decided = decided_;
    auto to_record = [this](const Acceptance& acc) {
      checker::ShardCertRecord rec;
      rec.txn = acc.txn;
      rec.shard = acc.shard;
      rec.epoch = acc.epoch;
      rec.pos = acc.slot;
      rec.vote = acc.vote;
      rec.pload = acc.payload;
      auto vit = votes_.find({acc.shard, acc.slot, acc.txn});
      if (vit != votes_.end()) {
        const VoteRecord* best = nullptr;
        for (const auto& [e, v] : vit->second) {
          if (e <= acc.epoch) best = &v;
        }
        if (best == nullptr) best = &vit->second.begin()->second;
        rec.committed_against = best->committed_against;
        rec.prepared_against = best->prepared_against;
      }
      return rec;
    };
    for (const auto& [key, acc_key] : accepted_txn_) {
      (void)key;
      const Acceptance& acc = acceptances_.at(acc_key);
      input.records.emplace(std::make_pair(acc.txn, acc.shard), to_record(acc));
    }
    // Every complete acceptance as a (txn, shard, epoch) incarnation, for
    // the per-incarnation witness resolution of constraint (11).
    for (const auto& [key, acc] : acceptances_) {
      (void)key;
      if (!acc.complete) continue;
      input.incarnations.emplace(std::make_tuple(acc.txn, acc.shard, acc.epoch),
                                 to_record(acc));
    }
    return input;
  }

  // Network tap: client-facing decisions and configuration dissemination.
  void on_send(Time now, ProcessId from, ProcessId to,
               const sim::AnyMessage& msg) override {
    (void)now;
    (void)from;
    if (const auto* cd = msg.as<commit::ClientDecision>()) {
      check_decision(cd->txn, cd->decision);
    } else if (const auto* cp = msg.as<ConfigPrepare>()) {
      // Safe mode: the global configuration, per shard.
      for (const auto& [s, members] : cp->config.members) {
        register_members(s, cp->config.epoch, members, cp->config.leaders.at(s));
      }
    } else if (const auto* nc = msg.as<commit::NewConfig>()) {
      // Unsafe per-shard mode: the recipient is the new leader of its shard.
      auto it = replicas_.find(to);
      if (it != replicas_.end()) {
        register_members(it->second->shard(), nc->epoch, nc->members, to);
      }
    }
  }

  // Fabric tap: one-sided writes.
  void on_write(Time now, ProcessId from, ProcessId to,
                const sim::AnyMessage& msg) override {
    (void)now;
    (void)from;
    (void)to;
    if (const auto* d = msg.as<RDecision>()) {
      auto [it, inserted] =
          slot_decision_.emplace(std::make_pair(d->shard, d->slot), d->decision);
      if (!inserted && it->second != d->decision) {
        report("Invariant4a", "slot " + std::to_string(d->slot) + " of s" +
                                  std::to_string(d->shard) + " decided both ways");
      }
      check_decision(d->txn, d->decision);
    } else if (const auto* a = msg.as<RAccept>()) {
      on_write_accept(*a);
    } else if (const auto* ab = msg.as<RAcceptBatch>()) {
      // A batched write is the back-to-back landing of its items: each is
      // checked exactly as if it had been written alone.
      for (const RAccept& item : ab->items) on_write_accept(item);
    }
  }

  void on_landed(Time now, ProcessId from, ProcessId to,
                 const sim::AnyMessage& msg) override {
    (void)now;
    (void)from;
    if (const auto* a = msg.as<RAccept>()) {
      on_landed_accept(to, *a);
    } else if (const auto* ab = msg.as<RAcceptBatch>()) {
      for (const RAccept& item : ab->items) on_landed_accept(to, item);
    }
  }

  const ViolationSink& violations() const { return sink_; }
  const std::map<TxnId, tcs::Decision>& decided() const { return decided_; }

 private:
  struct Acceptance {
    ShardId shard = 0;
    Epoch epoch = kNoEpoch;
    Slot slot = kNoSlot;
    TxnId txn = 0;
    tcs::Payload payload;
    tcs::Decision vote = tcs::Decision::kAbort;
    std::set<ProcessId> acks;
    bool complete = false;
  };
  struct VoteRecord {
    tcs::Decision vote = tcs::Decision::kAbort;
    tcs::Payload payload;
    std::vector<TxnId> committed_against;
    std::vector<TxnId> prepared_against;
  };
  using AcceptKey = std::tuple<ShardId, Epoch, Slot>;

  void on_write_accept(const RAccept& a) {
    AcceptKey key{a.shard, a.epoch, a.slot};
    auto it = acceptances_.find(key);
    if (it == acceptances_.end()) {
      Acceptance acc;
      acc.shard = a.shard;
      acc.epoch = a.epoch;
      acc.slot = a.slot;
      acc.txn = a.txn;
      acc.payload = a.payload;
      acc.vote = a.vote;
      it = acceptances_.emplace(key, std::move(acc)).first;
      maybe_complete(it->second);  // zero-follower configurations
    }
  }

  void on_landed_accept(ProcessId to, const RAccept& a) {
    auto it = replicas_.find(to);
    if (it == replicas_.end()) return;
    Epoch receiver_epoch = it->second->epoch();
    // Property (*): the landing epoch equals the epoch the leader prepared
    // the transaction at.  Self-writes are synchronous local stores (the
    // fabric lands them immediately), so the check applies to every
    // landing — remote or local — without exemption.
    if (receiver_epoch != a.epoch) {
      report("Invariant13",
             "ACCEPT for txn" + std::to_string(a.txn) + " prepared at epoch " +
                 std::to_string(a.epoch) + " landed at " + process_name(to) +
                 " in epoch " + std::to_string(receiver_epoch));
    }
    // Landing == the receiver's NIC acknowledged == the paper's "responded":
    // track acceptance completion.
    auto ait = acceptances_.find(AcceptKey{a.shard, a.epoch, a.slot});
    if (ait != acceptances_.end() && ait->second.txn == a.txn) {
      ait->second.acks.insert(to);
      maybe_complete(ait->second);
    }
  }

  void maybe_complete(Acceptance& acc) {
    if (acc.complete) return;
    auto cit = configs_.find({acc.shard, acc.epoch});
    if (cit == configs_.end()) return;
    const auto& [members, leader] = cit->second;
    for (ProcessId m : members) {
      if (m != leader && acc.acks.count(m) == 0) return;
    }
    acc.complete = true;
    accepted_txn_.emplace(std::make_pair(acc.shard, acc.txn),
                          AcceptKey{acc.shard, acc.epoch, acc.slot});
  }

  void check_decision(TxnId txn, tcs::Decision d) {
    auto [it, inserted] = decided_.emplace(txn, d);
    if (!inserted && it->second != d) {
      report("Invariant4b", "txn" + std::to_string(txn) + " decided both " +
                                std::string(tcs::to_string(it->second)) + " and " +
                                tcs::to_string(d));
    }
  }

  void report(const std::string& invariant, const std::string& details) {
    if (!reported_.insert(invariant + "|" + details).second) return;
    sink_.report(sim_.now(), invariant, details);
  }

  sim::Simulator& sim_;
  ViolationSink sink_;
  std::map<ProcessId, Replica*> replicas_;
  std::map<TxnId, tcs::Decision> decided_;
  std::map<std::pair<ShardId, Slot>, tcs::Decision> slot_decision_;
  /// (shard, epoch) -> (members, leader).
  std::map<std::pair<ShardId, Epoch>, std::pair<std::vector<ProcessId>, ProcessId>>
      configs_;
  std::map<AcceptKey, Acceptance> acceptances_;
  std::map<std::pair<ShardId, TxnId>, AcceptKey> accepted_txn_;
  std::map<std::tuple<ShardId, Slot, TxnId>, std::map<Epoch, VoteRecord>> votes_;
  std::set<std::string> reported_;
};

}  // namespace ratc::rdma
