#include "recon/engine.h"

#include <algorithm>
#include <memory>

#include "common/log.h"

namespace ratc::recon {

Engine::Engine(rt::Runtime& rt, ProcessId owner, StackHooks& hooks,
               Options options)
    : rt_(rt),
      owner_(owner),
      hooks_(hooks),
      options_(options),
      policy_(options_.policy != nullptr ? options_.policy : &default_policy_) {}

Engine::Engine(sim::Simulator& sim, ProcessId owner, StackHooks& hooks,
               Options options)
    : Engine(sim.runtime(), owner, hooks, options) {}

bool Engine::start(std::vector<ShardId> shards) {
  // Line 34 pre: probing = false (one attempt at a time per reconfigurer).
  if (probing_) return false;
  probing_ = true;
  ++round_;
  ++stats_.attempts;
  recon_epoch_ = kNoEpoch;  // assigned once the fetch returns
  state_.clear();
  // Line 36: read the latest configuration(s) from the CS.  The adapter may
  // veto (ok=false): nothing stored, or — for the controller — the attempt
  // became moot while syncing its view.
  hooks_.fetch_latest(shards, [this, r = round_](bool ok, Snapshot snap) {
    if (!probing_ || round_ != r) return;
    if (!ok || !snap.valid()) {
      probing_ = false;
      return;
    }
    begin_probing(snap);
  });
  return true;
}

void Engine::begin_probing(const Snapshot& snap) {
  recon_epoch_ = snap.epoch + 1;  // line 37
  // Probes freeze their receivers (line 42), so from here the shard(s) must
  // be driven to SOME epoch >= the target even if the embedder's trigger is
  // retracted; cleared by observe_epoch.
  pending_target_ = recon_epoch_;
  RATC_DEBUG("recon@" << process_name(owner_) << " probes epoch " << snap.epoch
                      << " for new epoch " << recon_epoch_);
  for (const auto& [s, members] : snap.members) {
    ShardProbe& ps = state_[s];
    ps.probed_epoch = snap.epoch;
    ps.probed_members = members;
    for (ProcessId p : members) {  // line 39
      hooks_.send_probe(p, recon_epoch_);
      ++stats_.probes_sent;
    }
  }
}

void Engine::on_probe_ack(ProcessId from, ShardId shard, Epoch epoch,
                          bool initialized) {
  // Pattern match: the ack must be for our in-flight attempt and a shard it
  // covers.
  if (!probing_ || epoch != recon_epoch_) return;
  auto it = state_.find(shard);
  if (it == state_.end()) return;
  ShardProbe& ps = it->second;
  ps.responders.insert(from);
  if (initialized) {
    // Line 45: found this shard's new leader.  The per-shard protocols
    // propose immediately; the global protocol (Fig. 8 line 117) waits for
    // a candidate in every shard.
    if (ps.leader_candidate == kNoProcess) ps.leader_candidate = from;
    if (all_candidates_found()) propose();
  } else {
    // Line 51 (non-deterministic): maybe this epoch will never be
    // operational; wait probe_patience for a positive ack, then descend.
    ps.round_has_false_ack = true;
    arm_descend_timer(shard);
  }
}

bool Engine::all_candidates_found() const {
  for (const auto& [s, ps] : state_) {
    (void)s;
    if (ps.leader_candidate == kNoProcess) return false;
  }
  return !state_.empty();
}

void Engine::arm_descend_timer(ShardId shard) {
  ShardProbe& ps = state_[shard];
  if (ps.descend_timer_armed) return;
  ps.descend_timer_armed = true;
  rt_.schedule_for(owner_, options_.probe_patience, [this, shard, r = round_] {
    if (round_ != r) return;  // a newer attempt owns the state
    auto it = state_.find(shard);
    if (it == state_.end()) return;
    it->second.descend_timer_armed = false;
    if (!probing_ || !it->second.round_has_false_ack) return;
    if (it->second.leader_candidate != kNoProcess) return;
    descend(shard);
  });
}

void Engine::descend(ShardId shard) {
  // Lines 52-55: the probed epoch is not operational and never will be;
  // continue with the preceding epoch.
  ShardProbe& ps = state_[shard];
  if (ps.probed_epoch <= 1) {
    // All shard data lost — liveness Assumption 1 violated; give up.
    RATC_WARN("recon@" << process_name(owner_)
                       << " abandoning reconfiguration: shard " << shard
                       << " has no initialized member in any epoch");
    probing_ = false;
    ++stats_.abandoned;
    return;
  }
  ps.probed_epoch -= 1;
  ps.round_has_false_ack = false;
  ++stats_.descents;
  hooks_.fetch_members_at(
      shard, ps.probed_epoch,
      [this, shard, r = round_](bool found, std::vector<ProcessId> members) {
        if (!probing_ || round_ != r) return;
        if (!found) {  // epochs are contiguous; this cannot happen
          probing_ = false;
          return;
        }
        ShardProbe& p = state_[shard];
        p.probed_members = members;
        for (ProcessId m : members) {
          hooks_.send_probe(m, recon_epoch_);
          ++stats_.probes_sent;
        }
      });
}

void Engine::propose() {
  // One proposal per attempt; the attempt itself is over (a new one may
  // start while the CAS is in flight, exactly as in the former copies).
  probing_ = false;
  auto prop = std::make_shared<Proposal>();
  prop->epoch = recon_epoch_;
  // Reservations per shard, so a loss can return them to the right pool.
  auto reserved = std::make_shared<std::map<ShardId, std::vector<ProcessId>>>();
  for (auto& [s, ps] : state_) {
    PlacementInput in;
    in.shard = s;
    in.next_epoch = recon_epoch_;
    in.leader_candidate = ps.leader_candidate;
    in.responders.assign(ps.responders.begin(), ps.responders.end());
    in.target_size = options_.target_shard_size;
    in.context = hooks_.placement_context(s);
    ShardId shard = s;
    auto allocate_fresh = [this, shard, reserved](std::size_t n) {
      std::vector<ProcessId> out = hooks_.reserve_spares(shard, n);
      stats_.spares_reserved += out.size();
      spares_pending_ += out.size();
      auto& r = (*reserved)[shard];
      r.insert(r.end(), out.begin(), out.end());
      return out;
    };
    configsvc::ShardConfig next = policy_->plan(in, allocate_fresh);
    // Clamp the paper's hard constraints (line 48): the initialized probing
    // responder must be present and leading, at the probed-from epoch + 1.
    // A policy may otherwise cost availability, never safety — the CAS
    // below and the probing protocol carry correctness.
    next.epoch = recon_epoch_;
    if (!next.has_member(ps.leader_candidate)) {
      next.members.insert(next.members.begin(), ps.leader_candidate);
    }
    next.leader = ps.leader_candidate;
    prop->shards[s] = next;
  }
  // Line 49: CAS against the epoch we started probing from.
  hooks_.submit(*prop, [this, prop, reserved](bool won) {
    if (won) {
      ++stats_.cas_wins;
      RATC_DEBUG("recon@" << process_name(owner_) << " installed epoch "
                          << prop->epoch);
      hooks_.activate(*prop);  // line 50
      // A policy may have reserved more spares than it used (e.g. a
      // trimming policy); whatever stayed out of the stored configuration
      // is still globally fresh and goes back to the pool.
      for (auto& [s, spares] : *reserved) {
        std::vector<ProcessId> unused;
        for (ProcessId sp : spares) {
          bool installed = false;
          for (const auto& [s2, cfg] : prop->shards) {
            (void)s2;
            if (cfg.has_member(sp)) {
              installed = true;
              break;
            }
          }
          if (installed) {
            ++stats_.spares_installed;
          } else {
            unused.push_back(sp);
          }
        }
        spares_pending_ -= spares.size();
        stats_.spares_released += unused.size();
        if (!unused.empty()) hooks_.release_spares(s, unused);
      }
    } else {
      // Another reconfigurer won the epoch.  The spares we reserved never
      // entered a stored configuration, so they stay globally fresh and go
      // back to the pool — leaking them would leave the shard unable to
      // backfill a later genuine crash (the PR-4 bug, fixed once, here).
      ++stats_.cas_losses;
      for (auto& [s, spares] : *reserved) {
        spares_pending_ -= spares.size();
        stats_.spares_released += spares.size();
        if (!spares.empty()) hooks_.release_spares(s, spares);
      }
    }
  });
}

void Engine::observe_epoch(ShardId shard, Epoch stored) {
  if (stored == kNoEpoch) return;
  // A newer epoch for a covered shard supersedes the in-flight attempt: the
  // winner's handover unfreezes whatever our probes froze.
  if (probing_ && recon_epoch_ != kNoEpoch && stored >= recon_epoch_ &&
      state_.count(shard) > 0) {
    probing_ = false;
  }
  if (pending_target_ != kNoEpoch && stored >= pending_target_) {
    pending_target_ = kNoEpoch;
  }
}

void Engine::abandon() {
  if (!probing_) return;
  probing_ = false;
  ++stats_.abandoned;
}

void Engine::set_pending_target(Epoch target) {
  if (target != kNoEpoch) pending_target_ = target;
}

}  // namespace ratc::recon
