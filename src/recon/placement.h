// Placement policies for the shared reconfiguration engine (recon::Engine).
//
// ===========================================================================
// The PlacementPolicy extension point
// ===========================================================================
// When a reconfigurer — a replica playing the Fig. 1 role, or an autonomous
// ctrl::ReconController — decides a shard must move to a new epoch, the
// *mechanism* is fixed by the paper: probe the members of the latest stored
// configuration, pick an initialized responder as the new leader (Fig. 1
// line 45), and compare-and-swap the next epoch into the configuration
// service.  The *membership* of the proposed configuration is policy.  The
// paper only constrains it (line 48): the new configuration must contain
// the new leader, and every other member must be a probing responder or a
// fresh process.
//
// PlacementPolicy is that seam.  A policy receives everything the engine
// learned during probing:
//   * the leader candidate (the first initialized probing responder — this
//     one is mandatory and must lead, because only it is known to hold the
//     shard state the new epoch starts from);
//   * the full responder set (processes that answered the probe, i.e. were
//     recently alive — including members of probed-but-never-activated
//     epochs, which are safe to reuse since such epochs accepted nothing);
//   * a cluster-aware PlacementContext: the reconfigurer's current suspect
//     set (failure-detector output; under asymmetric partitions a responder
//     can simultaneously be suspected), the depth of the shard's fresh-spare
//     pool, per-member load counters, and optional zone labels;
//   * the target shard size (f+1);
// plus an `allocate_fresh` callback that permanently consumes processes
// from the cluster's never-yet-used spare pool (freshness must be global —
// reusing a process that ever belonged to a configuration breaks
// Invariant 5, so allocation goes through the shared resource manager the
// cluster models).  The engine tracks what the policy consumes: spares in
// a proposal whose CAS loses are returned to the pool automatically.
//
// A policy returns the full proposed ShardConfig.  The engine clamps the
// hard constraints (epoch, leader present and leading); drawing every other
// member only from responders or fresh spares is the policy's contract
// (Fig. 1 line 48).  The proposal then races through the CS CAS, so a buggy
// policy can cost availability but never safety: the CAS and the probing
// protocol underneath it are what correctness rests on.
//
// Two policies ship here; custom ones (load-aware leader choice, proactive
// draining) subclass and plug in through commit::Cluster::Options /
// rdma::Cluster::Options::placement_policy, ctrl::ControllerTuning::policy,
// or store::StackWorkload::placement.
#pragma once

#include <functional>
#include <map>
#include <set>
#include <string>
#include <vector>

#include "common/types.h"
#include "configsvc/config.h"

namespace ratc::recon {

/// Cluster-level knowledge a policy may use beyond the probe results.  All
/// fields are advisory: an empty context degrades every shipped policy to
/// pid-order selection, never to an invalid proposal.
struct PlacementContext {
  /// Processes the reconfigurer's failure detector currently suspects
  /// (empty for replica-driven reconfigurations, which run no detector).
  std::set<ProcessId> suspected;
  /// Fresh spares still available to this shard's pool (depth only — the
  /// pool itself is consumed through allocate_fresh).
  std::size_t spare_pool = 0;
  /// Per-process load counters (certification-log length in this repo; a
  /// deployment would plug in whatever its metrics pipeline exports).
  std::map<ProcessId, std::uint64_t> load;
  /// Optional failure-domain labels; processes without a label are treated
  /// as zone-unknown.
  std::map<ProcessId, std::string> zones;
};

/// Everything the engine learned by the time it must propose a
/// configuration; see the file comment for field semantics.
struct PlacementInput {
  ShardId shard = 0;
  Epoch next_epoch = kNoEpoch;
  /// First initialized probing responder; must be the proposed leader.
  ProcessId leader_candidate = kNoProcess;
  /// All probing responders (recently alive), in ascending pid order.
  std::vector<ProcessId> responders;
  std::size_t target_size = 2;
  PlacementContext context;

  bool suspected(ProcessId p) const { return context.suspected.count(p) > 0; }
  std::string zone_of(ProcessId p) const {
    auto it = context.zones.find(p);
    return it == context.zones.end() ? std::string{} : it->second;
  }
};

class PlacementPolicy {
 public:
  virtual ~PlacementPolicy() = default;
  virtual const char* name() const = 0;

  /// Proposes the next configuration.  `allocate_fresh(n)` hands out up to
  /// n fresh spares (permanently consumed unless the engine returns them);
  /// call it at most once.
  virtual configsvc::ShardConfig plan(
      const PlacementInput& in,
      const std::function<std::vector<ProcessId>(std::size_t)>& allocate_fresh) = 0;
};

/// Default policy: keep the leader candidate, retain non-suspected
/// responders in pid order, and top up with fresh spares — i.e. replace
/// exactly the members that are dead (no probe answer) or suspect
/// (half-partitioned processes answer probes but cannot be relied on).
class ReplaceSuspectsPolicy final : public PlacementPolicy {
 public:
  const char* name() const override { return "replace-suspects"; }

  configsvc::ShardConfig plan(
      const PlacementInput& in,
      const std::function<std::vector<ProcessId>(std::size_t)>& allocate_fresh) override {
    configsvc::ShardConfig next;
    next.epoch = in.next_epoch;
    next.leader = in.leader_candidate;
    next.members.push_back(in.leader_candidate);
    for (ProcessId p : in.responders) {
      if (next.members.size() >= in.target_size) break;
      if (p == in.leader_candidate || in.suspected(p)) continue;
      next.members.push_back(p);
    }
    if (next.members.size() < in.target_size && allocate_fresh) {
      for (ProcessId spare : allocate_fresh(in.target_size - next.members.size())) {
        next.members.push_back(spare);
      }
    }
    return next;
  }
};

/// Zone-aware policy: like ReplaceSuspectsPolicy, but when responders carry
/// zone labels it prefers members whose zones are not already represented
/// in the proposal, so a single failure domain never concentrates the whole
/// shard when alternatives answered the probe.  Selection is two-pass —
/// spread first (unseen zones only), then fill in pid order — so with no
/// labels, or all responders in one zone, it degrades to the default
/// policy.  Fresh-spare top-up takes whatever the pool hands out: zone
/// placement of *fresh* processes is the resource manager's concern.
class ZoneAntiAffinityPolicy final : public PlacementPolicy {
 public:
  const char* name() const override { return "zone-anti-affinity"; }

  configsvc::ShardConfig plan(
      const PlacementInput& in,
      const std::function<std::vector<ProcessId>(std::size_t)>& allocate_fresh) override {
    configsvc::ShardConfig next;
    next.epoch = in.next_epoch;
    next.leader = in.leader_candidate;
    next.members.push_back(in.leader_candidate);
    std::set<std::string> zones_used;
    if (std::string z = in.zone_of(in.leader_candidate); !z.empty()) {
      zones_used.insert(z);
    }
    auto eligible = [&](ProcessId p) {
      return p != in.leader_candidate && !in.suspected(p) && !next.has_member(p);
    };
    // Spread pass: responders in zones not yet represented (unlabeled
    // responders count as their own unseen zone).
    for (ProcessId p : in.responders) {
      if (next.members.size() >= in.target_size) break;
      if (!eligible(p)) continue;
      std::string z = in.zone_of(p);
      if (!z.empty() && zones_used.count(z) > 0) continue;
      next.members.push_back(p);
      if (!z.empty()) zones_used.insert(z);
    }
    // Fill pass: pid order, zone collisions accepted over leaving a seat
    // for a fresh spare (responders are known-recently-alive).
    for (ProcessId p : in.responders) {
      if (next.members.size() >= in.target_size) break;
      if (eligible(p)) next.members.push_back(p);
    }
    if (next.members.size() < in.target_size && allocate_fresh) {
      for (ProcessId spare : allocate_fresh(in.target_size - next.members.size())) {
        next.members.push_back(spare);
      }
    }
    return next;
  }
};

}  // namespace ratc::recon
