// Shared cluster-side plumbing for the reconfiguration engine: zone-label
// assignment, PlacementContext assembly, and engine-stats / spare-ledger
// aggregation.  commit::Cluster and rdma::Cluster host different replica
// types but expose the same surface (shard(), id(), log(), recon_engine(),
// name()), so these templates keep the logic in one copy — the same
// discipline recon::Engine applies to the reconfigurer itself.
#pragma once

#include <map>
#include <string>

#include "recon/engine.h"

namespace ratc::recon {

/// Synthetic zone labels "z<idx % num_zones>", assigned round-robin by
/// per-shard host index so initial members and the spare pool both span
/// the failure domains.  Empty when num_zones == 0.
template <typename PidOf>
std::map<ProcessId, std::string> assign_zones(std::size_t num_zones,
                                              std::uint32_t num_shards,
                                              std::size_t hosts_per_shard,
                                              PidOf&& pid_of) {
  std::map<ProcessId, std::string> zones;
  if (num_zones == 0) return zones;
  for (ShardId s = 0; s < num_shards; ++s) {
    for (std::size_t i = 0; i < hosts_per_shard; ++i) {
      zones[pid_of(s, i)] = "z" + std::to_string(i % num_zones);
    }
  }
  return zones;
}

/// PlacementContext over a shard's hosts.  Certification-log length is the
/// load proxy this simulation can measure; a deployment would plug its
/// metrics pipeline in here.
template <typename ReplicaPtrs>
PlacementContext cluster_placement_context(
    ShardId s, const ReplicaPtrs& replicas,
    const std::map<ProcessId, std::string>& zones, std::size_t spare_pool) {
  PlacementContext ctx;
  ctx.spare_pool = spare_pool;
  for (const auto& r : replicas) {
    if (r->shard() != s) continue;
    ctx.load[r->id()] = r->log().max_filled();
    auto z = zones.find(r->id());
    if (z != zones.end()) ctx.zones[r->id()] = z->second;
  }
  return ctx;
}

/// Sum of every reconfigurer's engine counters (replicas + controllers).
template <typename ReplicaPtrs, typename ControllerPtrs>
EngineStats cluster_engine_stats(const ReplicaPtrs& replicas,
                                 const ControllerPtrs& controllers) {
  EngineStats total;
  for (const auto& r : replicas) total.accumulate(r->recon_engine().stats());
  for (const auto& c : controllers) total.accumulate(c->engine().stats());
  return total;
}

inline void append_ledger_verdict(const Engine& e, const std::string& who,
                                  std::string& out) {
  if (e.ledger_balanced()) return;
  const EngineStats& s = e.stats();
  out += "spare ledger unbalanced at " + who + ": reserved " +
         std::to_string(s.spares_reserved) + " != installed " +
         std::to_string(s.spares_installed) + " + released " +
         std::to_string(s.spares_released) + " + pending " +
         std::to_string(e.spares_pending()) + "\n";
}

/// Per-engine ledger invariant across the cluster; empty iff balanced.
template <typename ReplicaPtrs, typename ControllerPtrs>
std::string cluster_spare_ledger_verdict(const ReplicaPtrs& replicas,
                                         const ControllerPtrs& controllers) {
  std::string out;
  for (const auto& r : replicas) append_ledger_verdict(r->recon_engine(), r->name(), out);
  for (const auto& c : controllers) append_ledger_verdict(c->engine(), c->name(), out);
  return out;
}

}  // namespace ratc::recon
