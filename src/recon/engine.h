// recon::Engine — the ONE reconfigurer state machine (paper Fig. 1 lines
// 33-55, generalized to the multi-shard probing of Fig. 8), extracted from
// what used to be four divergent copies: commit::Replica, rdma::Replica
// (safe and unsafe modes) and ctrl::ReconController.
//
// The engine owns the full attempt lifecycle:
//
//   start ──> fetch_latest ──> PROBE the stored membership ──┬─> PROBE_ACK(true)
//                 │                ^                         │   per shard
//                 │                └── descend an epoch  <───┤   │
//                 │                    (probe_patience,      │   v
//                 │                     PROBE_ACK(false))    │  PlacementPolicy
//                 v                                          │   │
//               abort (nothing stored / adapter veto)        │   v
//                                                            │  CS CAS ──> win: activate
//                                                            │         └─> loss: release
//                                                            │             reserved spares
//
// plus the cross-cutting bookkeeping every copy used to reimplement (and
// where the PR-4 spare-release fix had to be applied four times by hand):
//
//  * the allocated-spares ledger — spares a proposal reserves are released
//    back to the pool when the CAS loses, and the reserved/installed/
//    released/pending counters must always balance (asserted by the random
//    sweeps through the cluster's spare_ledger_verdict);
//  * pending-target tracking — once probes have gone out they have frozen
//    the probed replicas (Fig. 1 line 42), so the attempt's target epoch is
//    remembered across abandonment until a stored epoch >= the target is
//    observed; embedders that retry (the controller's watchdog) use it so a
//    frozen shard is never stranded by a lost ProbeAck + retracted
//    suspicion;
//  * per-attempt stats (probes sent, descents, CAS wins/losses, spares
//    reserved/released), surfaced end-to-end in harness RunResults.
//
// Everything substrate-specific sits behind the narrow StackHooks
// interface: how to read configurations (per-shard CS vs the RDMA global
// CS), how to deliver a PROBE, how to reserve/release fresh spares, how to
// CAS a proposal, and how to activate a won configuration (NEW_CONFIG to
// the new leader vs the Fig. 8 CONFIG_PREPARE dissemination).  The four
// former copies are now thin adapters implementing these hooks.
//
// Chockler & Gotsman (Multi-Shot Distributed Transaction Commit) and Gray &
// Lamport (Consensus on Transaction Commit) both present commit protocols
// as one abstract machine instantiated per substrate; the reconfigurer gets
// the same treatment here.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <set>
#include <vector>

#include "common/types.h"
#include "configsvc/config.h"
#include "recon/placement.h"
#include "rt/runtime.h"
#include "sim/simulator.h"

namespace ratc::recon {

/// What an attempt probes from: the latest stored epoch plus the membership
/// of every shard the attempt covers (exactly one shard for the per-shard
/// protocols; every shard for the RDMA global protocol).
struct Snapshot {
  Epoch epoch = kNoEpoch;
  std::map<ShardId, std::vector<ProcessId>> members;

  bool valid() const { return epoch != kNoEpoch; }
};

/// The configuration(s) an attempt asks the CS to store, one ShardConfig
/// per covered shard, all at the same next epoch.
struct Proposal {
  Epoch epoch = kNoEpoch;
  std::map<ShardId, configsvc::ShardConfig> shards;
};

/// Cumulative per-engine counters.  The spare ledger invariant —
/// reserved == installed + released + pending — holds at every instant by
/// construction; the random sweeps assert it at end of run so any future
/// release-path regression (the PR-4 bug class) fails loudly.
struct EngineStats {
  std::size_t attempts = 0;      ///< start() calls that began probing
  std::size_t probes_sent = 0;   ///< PROBE messages dispatched
  std::size_t descents = 0;      ///< probing descents (Fig. 1 line 52)
  std::size_t cas_wins = 0;      ///< proposals the CS stored
  std::size_t cas_losses = 0;    ///< proposals that lost the CAS race
  std::size_t abandoned = 0;     ///< attempts given up (descended below the
                                 ///< first epoch, or embedder watchdog)
  std::size_t spares_reserved = 0;   ///< fresh spares handed to proposals
  std::size_t spares_installed = 0;  ///< reserved spares that entered a stored config
  std::size_t spares_released = 0;   ///< reserved spares returned to the pool

  void accumulate(const EngineStats& o) {
    attempts += o.attempts;
    probes_sent += o.probes_sent;
    descents += o.descents;
    cas_wins += o.cas_wins;
    cas_losses += o.cas_losses;
    abandoned += o.abandoned;
    spares_reserved += o.spares_reserved;
    spares_installed += o.spares_installed;
    spares_released += o.spares_released;
  }
};

/// The substrate seam.  Implementations are thin: every callback either
/// forwards to the stack's CS client / network / spare pool or translates
/// between the stack's config representation and the engine's.  Reply
/// callbacks may fire at any later simulated time; the engine guards every
/// continuation with its own round counter, so adapters never need to.
class StackHooks {
 public:
  virtual ~StackHooks() = default;

  /// Latest stored configuration(s) covering `shards` (Fig. 1 line 36 /
  /// Fig. 8 line 106).  `ok=false` aborts the attempt — nothing is stored,
  /// or the adapter vetoed after syncing its own view (the controller
  /// re-checks its grievance here).
  virtual void fetch_latest(const std::vector<ShardId>& shards,
                            std::function<void(bool, Snapshot)> cb) = 0;

  /// Members of `shard` at exactly `epoch` (probing descent, line 53).
  virtual void fetch_members_at(
      ShardId shard, Epoch epoch,
      std::function<void(bool, std::vector<ProcessId>)> cb) = 0;

  /// Delivers PROBE(new_epoch) to `target` (line 39) — freezing it.
  virtual void send_probe(ProcessId target, Epoch new_epoch) = 0;

  /// Reserves up to n fresh spares for `shard` from the cluster's pool
  /// (may return fewer).  The engine releases whatever a losing or trimming
  /// proposal does not install.
  virtual std::vector<ProcessId> reserve_spares(ShardId shard, std::size_t n) = 0;
  virtual void release_spares(ShardId shard,
                              const std::vector<ProcessId>& spares) = 0;

  /// CAS the proposal into the CS against expected epoch
  /// `proposal.epoch - 1` (line 49 / Fig. 8 line 124); `done(won)`.
  virtual void submit(const Proposal& proposal, std::function<void(bool)> done) = 0;

  /// The CAS won: hand the configuration over (NEW_CONFIG to the new leader
  /// for per-shard stacks, CONFIG_PREPARE dissemination for the RDMA global
  /// protocol).
  virtual void activate(const Proposal& proposal) = 0;

  /// Cluster knowledge for the PlacementPolicy (zones, load, spare depth,
  /// and — for detector-carrying embedders — the current suspect set).
  virtual PlacementContext placement_context(ShardId shard) {
    (void)shard;
    return {};
  }
};

class Engine {
 public:
  struct Options {
    /// Desired configuration size (f+1); policies top up to this.
    std::size_t target_shard_size = 2;
    /// How long to wait for a PROBE_ACK(true) after the first
    /// PROBE_ACK(false) before descending an epoch (the paper's
    /// non-deterministic rule at line 51, scheduled by timer).
    Duration probe_patience = 5;
    /// Membership policy; null selects ReplaceSuspectsPolicy.  Non-owning.
    PlacementPolicy* policy = nullptr;
  };

  /// Timers are scheduled for `owner`, so the engine dies with its host
  /// process.  `hooks` must outlive the engine.
  Engine(rt::Runtime& rt, ProcessId owner, StackHooks& hooks, Options options);
  /// Sim-harness compatibility (unit tests drive the engine off a bare
  /// simulator; the hooks do all the sending).
  Engine(sim::Simulator& sim, ProcessId owner, StackHooks& hooks, Options options);

  // --- attempt lifecycle ------------------------------------------------------

  /// Starts an attempt covering `shards` (the set is advisory for the
  /// fetch; the shards actually probed are whatever the Snapshot carries —
  /// the RDMA global protocol passes {} and probes every shard the GCS
  /// returns).  Returns false if an attempt is already in flight.
  bool start(std::vector<ShardId> shards);

  /// Feed from the host's message dispatch (Fig. 1 lines 45/51).
  void on_probe_ack(ProcessId from, ShardId shard, Epoch epoch, bool initialized);

  /// A stored epoch for `shard` became visible to the embedder
  /// (CONFIG_CHANGE and friends): supersedes an in-flight attempt aimed at
  /// or below it and resolves a pending target it satisfies.
  void observe_epoch(ShardId shard, Epoch stored);

  /// Abandons the in-flight attempt (embedder watchdog).  The pending
  /// target survives: probes already froze replicas, so the embedder must
  /// keep retrying until observe_epoch resolves it.
  void abandon();

  /// Delegating embedders (the RDMA controller's nudge) record the epoch
  /// their delegate is driving toward without probing themselves.
  void set_pending_target(Epoch target);

  // --- introspection ----------------------------------------------------------

  bool in_flight() const { return probing_; }
  Epoch pending_target() const { return pending_target_; }
  /// The epoch the in-flight attempt is trying to install (kNoEpoch before
  /// fetch_latest returns or when idle).
  Epoch attempt_epoch() const { return probing_ ? recon_epoch_ : kNoEpoch; }
  const EngineStats& stats() const { return stats_; }
  /// Spares reserved by proposals whose CAS outcome has not arrived yet.
  std::size_t spares_pending() const { return spares_pending_; }
  /// The ledger invariant; see EngineStats.
  bool ledger_balanced() const {
    return stats_.spares_reserved ==
           stats_.spares_installed + stats_.spares_released + spares_pending_;
  }

 private:
  /// Per-shard probing state of the in-flight attempt.
  struct ShardProbe {
    Epoch probed_epoch = kNoEpoch;
    std::vector<ProcessId> probed_members;
    std::set<ProcessId> responders;
    ProcessId leader_candidate = kNoProcess;
    bool round_has_false_ack = false;
    bool descend_timer_armed = false;
  };

  void begin_probing(const Snapshot& snap);
  void arm_descend_timer(ShardId shard);
  void descend(ShardId shard);
  bool all_candidates_found() const;
  void propose();

  rt::Runtime& rt_;
  ProcessId owner_;
  StackHooks& hooks_;
  Options options_;
  ReplaceSuspectsPolicy default_policy_;
  PlacementPolicy* policy_;  // options_.policy or &default_policy_

  bool probing_ = false;
  std::uint64_t round_ = 0;  ///< guards every deferred continuation
  Epoch recon_epoch_ = kNoEpoch;
  Epoch pending_target_ = kNoEpoch;
  std::map<ShardId, ShardProbe> state_;

  std::size_t spares_pending_ = 0;
  EngineStats stats_;
};

}  // namespace ratc::recon
