#include "baseline/cluster.h"

#include <cassert>
#include <stdexcept>

namespace ratc::baseline {

namespace {
constexpr ProcessId kServerBase = 100;
constexpr ProcessId kShardStride = 100;
constexpr ProcessId kPaxosOffset = 50;
constexpr ProcessId kClientBase = 5000;
}  // namespace

BaselineCluster::BaselineCluster(Options options)
    : options_(options), sim_(options.seed), shard_map_(options.num_shards) {
  sim::Network::Options nopt = options_.exponential_delays
                                   ? sim::Network::exponential_delay_options(
                                         options_.delay_mean)
                                   : sim::Network::unit_delay_options();
  net_ = std::make_unique<sim::Network>(sim_, nopt);
  certifier_ = tcs::make_certifier(options_.isolation);

  for (ShardId s = 0; s < options_.num_shards; ++s) {
    std::vector<ProcessId> group;
    for (std::size_t i = 0; i < options_.shard_size; ++i) {
      group.push_back(paxos_pid(s, i));
    }
    for (std::size_t i = 0; i < options_.shard_size; ++i) {
      ShardServer::Options sopt;
      sopt.shard = s;
      sopt.shard_map = &shard_map_;
      sopt.certifier = certifier_.get();
      auto server = std::make_unique<ShardServer>(sim_, *net_, server_pid(s, i), sopt);
      paxos::PaxosReplica::Options popt;
      popt.group = group;
      popt.initial_leader = group[0];
      ShardServer* raw = server.get();
      auto paxos = std::make_unique<paxos::PaxosReplica>(
          sim_, *net_, paxos_pid(s, i), "bpaxos" + std::to_string(paxos_pid(s, i)),
          popt, [raw](Slot slot, const sim::AnyMessage& cmd) { raw->apply(slot, cmd); });
      server->attach_paxos(paxos.get());
      sim_.add_process(server.get());
      sim_.add_process(paxos.get());
      servers_.push_back(std::move(server));
      paxoses_.push_back(std::move(paxos));
    }
    leader_[s] = server_pid(s, 0);
  }
  // Install the full routing table at every server.
  for (auto& server : servers_) {
    for (const auto& [s, l] : leader_) server->set_shard_leader(s, l);
  }
}

ProcessId BaselineCluster::server_pid(ShardId s, std::size_t idx) const {
  return kServerBase + s * kShardStride + static_cast<ProcessId>(idx);
}

ProcessId BaselineCluster::paxos_pid(ShardId s, std::size_t idx) const {
  return kServerBase + s * kShardStride + kPaxosOffset + static_cast<ProcessId>(idx);
}

ShardServer& BaselineCluster::server(ShardId s, std::size_t idx) {
  for (auto& sv : servers_) {
    if (sv->id() == server_pid(s, idx)) return *sv;
  }
  throw std::out_of_range("no baseline server");
}

ProcessId BaselineCluster::leader_server(ShardId s) const { return leader_.at(s); }

ProcessId BaselineCluster::coordinator_for(const tcs::Payload& payload) const {
  std::vector<ShardId> parts = shard_map_.shards_of(payload);
  assert(!parts.empty());
  return leader_.at(parts.front());
}

BaselineClient& BaselineCluster::add_client() {
  ProcessId pid = kClientBase + static_cast<ProcessId>(clients_.size());
  auto c = std::make_unique<BaselineClient>(sim_, *net_, pid, &history_);
  sim_.add_process(c.get());
  clients_.push_back(std::move(c));
  return *clients_.back();
}

void BaselineCluster::fail_over(ShardId s, std::size_t new_leader_idx) {
  // Crash the current leader pair, elect the chosen replica and repoint the
  // routing tables (in a real deployment clients discover this via the
  // Paxos leader hint; the harness shortcuts that).
  ProcessId old_leader = leader_.at(s);
  std::size_t old_idx = old_leader - server_pid(s, 0);
  sim_.crash(old_leader);
  sim_.crash(paxos_pid(s, old_idx));
  server(s, new_leader_idx).paxos().start_election();
  leader_[s] = server_pid(s, new_leader_idx);
  for (auto& sv : servers_) sv->set_shard_leader(s, leader_[s]);
}

}  // namespace ratc::baseline
