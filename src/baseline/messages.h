// Message and command vocabulary of the baseline TCS: classical 2PC where
// every shard is a Multi-Paxos replicated state machine over 2f+1 replicas
// and every 2PC action (prepare vote, decision) is replicated before it
// takes effect.  This is the "vanilla scheme" of the paper's introduction,
// whose latency is 7 message delays from the coordinator, against which
// experiments E2-E4 compare.
#pragma once

#include <vector>

#include "baseline/termination.h"
#include "common/types.h"
#include "tcs/decision.h"
#include "tcs/payload.h"

namespace ratc::baseline {

/// Client -> coordinator (the leader server of one involved shard).
struct BCertify {
  static constexpr const char* kName = "B_CERTIFY";
  TxnId txn = 0;
  tcs::Payload payload;
  std::size_t wire_size() const { return 16 + payload.wire_size(); }
};

/// Coordinator -> participant shard leader: replicate-and-prepare.
struct SubmitPrepare {
  static constexpr const char* kName = "B_SUBMIT_PREPARE";
  TxnId txn = 0;
  tcs::Payload payload;  ///< shard projection l|s
  std::vector<ShardId> participants;
  ProcessId client = kNoProcess;
  ProcessId coordinator = kNoProcess;
  /// Coordinator's CSN stamp, taken once per transaction and replicated
  /// with every shard's prepare; a commit's csn is exactly this stamp.
  Time prepare_ts = 0;
  std::size_t wire_size() const {
    return 40 + payload.wire_size() + participants.size() * 4;
  }
};

/// Client -> coordinator: one CERTIFY round for a whole batch (items are
/// handled in order, each as an independent 2PC instance).  Batches of one
/// are never sent — the scalar BCertify is used instead.
struct BCertifyBatch {
  static constexpr const char* kName = "B_CERTIFY_BATCH";
  std::vector<BCertify> items;
  std::size_t wire_size() const {
    std::size_t n = 16;
    for (const BCertify& it : items) n += it.wire_size();
    return n;
  }
};

/// Coordinator -> participant shard leader: replicate-and-prepare a whole
/// batch through ONE Paxos append (CmdPrepareBatch).
struct SubmitPrepareBatch {
  static constexpr const char* kName = "B_SUBMIT_PREPARE_BATCH";
  std::vector<SubmitPrepare> items;
  std::size_t wire_size() const {
    std::size_t n = 16;
    for (const SubmitPrepare& it : items) n += it.wire_size();
    return n;
  }
};

/// Participant shard leader -> coordinator, after the prepare applied.
struct Vote {
  static constexpr const char* kName = "B_VOTE";
  TxnId txn = 0;
  ShardId shard = 0;
  tcs::Decision vote = tcs::Decision::kAbort;
};

/// Coordinator -> participant shard leader: replicate the decision.
struct SubmitDecide {
  static constexpr const char* kName = "B_SUBMIT_DECIDE";
  TxnId txn = 0;
  tcs::Decision decision = tcs::Decision::kAbort;
};

/// Coordinator -> client.
struct BClientDecision {
  static constexpr const char* kName = "B_DECISION_CLIENT";
  TxnId txn = 0;
  tcs::Decision decision = tcs::Decision::kAbort;
  Time csn_ts = 0;  ///< csn(t).ts for commits (the coordinator's stamp)
};

// --- cooperative termination (optional; see baseline/termination.h) -----------

/// Participant (shard leader holding an in-doubt prepared record) -> peer
/// shard leaders: what do you durably know about this transaction?  The
/// answer is routed back to the sending process.
struct TerminationQuery {
  static constexpr const char* kName = "B_TERM_QUERY";
  TxnId txn = 0;
};

/// Peer shard leader -> querier: durable state from the applied prefix.
struct TerminationAnswer {
  static constexpr const char* kName = "B_TERM_ANSWER";
  TxnId txn = 0;
  ShardId shard = 0;  ///< the answering shard
  PeerTxnState state = PeerTxnState::kPrepared;
};

// --- Paxos-replicated commands ------------------------------------------------

struct CmdPrepare {
  static constexpr const char* kName = "B_CMD_PREPARE";
  TxnId txn = 0;
  tcs::Payload payload;
  std::vector<ShardId> participants;
  ProcessId client = kNoProcess;
  ProcessId coordinator = kNoProcess;
  Time prepare_ts = 0;  ///< coordinator CSN stamp (see SubmitPrepare)
  std::size_t wire_size() const {
    return 40 + payload.wire_size() + participants.size() * 4;
  }
};

/// One replicated log entry carrying a whole batch of prepares: the batch
/// costs one Paxos round instead of one per transaction.  Applying it is
/// defined as applying its items in order, so every replica still computes
/// identical votes from the applied prefix.
struct CmdPrepareBatch {
  static constexpr const char* kName = "B_CMD_PREPARE_BATCH";
  std::vector<CmdPrepare> items;
  std::size_t wire_size() const {
    std::size_t n = 16;
    for (const CmdPrepare& it : items) n += it.wire_size();
    return n;
  }
};

struct CmdDecide {
  static constexpr const char* kName = "B_CMD_DECIDE";
  TxnId txn = 0;
  tcs::Decision decision = tcs::Decision::kAbort;
};

/// Replicated arbiter for the never-prepared termination rule: if the
/// transaction is still unprepared when this command applies, the shard
/// durably tombstones it as aborted (a later prepare then votes abort); if a
/// prepare won the race into the log, the shard's actual state stands.  The
/// current leader answers `querier` either way, so the answer is always a
/// fact about the applied prefix, never about a transient.
struct CmdResolveAbort {
  static constexpr const char* kName = "B_CMD_RESOLVE_ABORT";
  TxnId txn = 0;
  ProcessId querier = kNoProcess;
};

}  // namespace ratc::baseline
