#include "baseline/shard_server.h"

#include <cassert>

namespace ratc::baseline {

using tcs::Decision;

ShardServer::ShardServer(sim::Simulator& sim, sim::Network& net, ProcessId id,
                         Options options)
    : Process(sim, id, "b" + std::to_string(id) + "/s" + std::to_string(options.shard)),
      options_(std::move(options)),
      net_(net) {
  assert(options_.shard_map != nullptr && options_.certifier != nullptr);
}

void ShardServer::on_message(ProcessId from, const sim::AnyMessage& msg) {
  if (const auto* c = msg.as<BCertify>()) {
    handle_certify(from, *c);
  } else if (const auto* sp = msg.as<SubmitPrepare>()) {
    handle_submit_prepare(*sp);
  } else if (const auto* v = msg.as<Vote>()) {
    handle_vote(*v);
  } else if (const auto* sd = msg.as<SubmitDecide>()) {
    handle_submit_decide(*sd);
  }
}

void ShardServer::handle_certify(ProcessId from, const BCertify& m) {
  // This server coordinates the 2PC round.  It should be the leader server
  // of one involved shard (clients route there).
  std::vector<ShardId> participants = options_.shard_map->shards_of(m.payload);
  if (participants.empty()) {
    net_.send_msg(id(), from, BClientDecision{m.txn, Decision::kCommit});
    return;
  }
  CoordState& c = coord_[m.txn];
  c.participants = participants;
  c.client = from;
  for (ShardId s : participants) {
    SubmitPrepare sp;
    sp.txn = m.txn;
    sp.payload = options_.shard_map->project(m.payload, s);
    sp.participants = participants;
    sp.client = from;
    sp.coordinator = id();
    if (s == options_.shard) {
      handle_submit_prepare(sp);  // local shard: no network hop
    } else {
      net_.send_msg(id(), shard_leader(s), sp);
    }
  }
}

void ShardServer::handle_submit_prepare(const SubmitPrepare& m) {
  // Replicate the prepare through this shard's Paxos group; the vote is
  // computed when the command applies.
  CmdPrepare cmd;
  cmd.txn = m.txn;
  cmd.payload = m.payload;
  cmd.participants = m.participants;
  cmd.client = m.client;
  cmd.coordinator = m.coordinator;
  paxos_->submit(sim::AnyMessage(std::move(cmd)));
}

void ShardServer::handle_submit_decide(const SubmitDecide& m) {
  paxos_->submit(sim::AnyMessage(CmdDecide{m.txn, m.decision}));
}

void ShardServer::apply(Slot slot, const sim::AnyMessage& cmd) {
  (void)slot;
  if (const auto* p = cmd.as<CmdPrepare>()) {
    apply_prepare(*p);
  } else if (const auto* d = cmd.as<CmdDecide>()) {
    apply_decide(*d);
  }
}

void ShardServer::apply_prepare(const CmdPrepare& c) {
  auto [it, inserted] = txns_.emplace(c.txn, TxnState{});
  TxnState& st = it->second;
  if (!inserted && st.prepared) {
    // Duplicate prepare (e.g. coordinator retry): keep the original vote.
  } else {
    st.payload = c.payload;
    st.prepared = true;
    // Deterministic vote: certify against the applied prefix.
    std::vector<const tcs::Payload*> prepared_commit;
    for (const auto& [t, other] : txns_) {
      if (t != c.txn && other.prepared && !other.decided &&
          other.vote == Decision::kCommit) {
        prepared_commit.push_back(&other.payload);
      }
    }
    std::vector<const tcs::Payload*> committed;
    committed.reserve(committed_.size());
    for (const auto& pl : committed_) committed.push_back(&pl);
    st.vote = options_.certifier->vote(committed, prepared_commit, c.payload);
  }
  // Only the current leader reports the vote to the coordinator.
  if (paxos_->is_leader()) {
    if (c.coordinator == id()) {
      handle_vote(Vote{c.txn, options_.shard, st.vote});
    } else {
      net_.send_msg(id(), c.coordinator, Vote{c.txn, options_.shard, st.vote});
    }
  }
}

void ShardServer::apply_decide(const CmdDecide& c) {
  auto it = txns_.find(c.txn);
  if (it == txns_.end() || it->second.decided) return;
  TxnState& st = it->second;
  st.decided = true;
  st.decision = c.decision;
  if (c.decision == Decision::kCommit) committed_.push_back(st.payload);

  // Coordinator side: once the decision is durable in the coordinator's own
  // shard, reply to the client and propagate to the other shards.
  auto cit = coord_.find(c.txn);
  if (cit != coord_.end() && !cit->second.replied && paxos_->is_leader()) {
    cit->second.replied = true;
    net_.send_msg(id(), cit->second.client, BClientDecision{c.txn, c.decision});
    for (ShardId s : cit->second.participants) {
      if (s == options_.shard) continue;
      net_.send_msg(id(), shard_leader(s), SubmitDecide{c.txn, c.decision});
    }
  }
}

void ShardServer::handle_vote(const Vote& m) {
  auto it = coord_.find(m.txn);
  if (it == coord_.end()) return;
  CoordState& c = it->second;
  c.votes[m.shard] = m.vote;
  maybe_decide(m.txn);
}

void ShardServer::maybe_decide(TxnId t) {
  CoordState& c = coord_.at(t);
  if (c.decision_submitted) return;
  Decision d = Decision::kCommit;
  for (ShardId s : c.participants) {
    auto vit = c.votes.find(s);
    if (vit == c.votes.end()) return;
    d = meet(d, vit->second);
  }
  c.decision_submitted = true;
  // Make the decision durable in the coordinator's own group first; the
  // reply and propagation happen when it applies (apply_decide).
  paxos_->submit(sim::AnyMessage(CmdDecide{t, d}));
}

bool ShardServer::has_decided(TxnId t) const {
  auto it = txns_.find(t);
  return it != txns_.end() && it->second.decided;
}

}  // namespace ratc::baseline
