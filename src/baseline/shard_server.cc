#include "baseline/shard_server.h"

#include <cassert>

namespace ratc::baseline {

using tcs::Decision;

ShardServer::ShardServer(sim::Simulator& sim, sim::Network& net, ProcessId id,
                         Options options)
    : ShardServer(net.runtime(), id, std::move(options)) {
  (void)sim;
}

ShardServer::ShardServer(rt::Runtime& rt, ProcessId id, Options options)
    : Process(rt, id, "b" + std::to_string(id) + "/s" + std::to_string(options.shard)),
      options_(std::move(options)),
      store_(options_.snapshot_history_depth),
      responder_(rt, id) {
  assert(options_.shard_map != nullptr && options_.certifier != nullptr);
  if (options_.cooperative_termination) {
    fd_monitor_ = std::make_unique<fd::PingMonitor>(rt, id, options_.fd);
    fd_monitor_->subscribe({.on_suspect = [this](ProcessId coordinator) {
      on_coordinator_suspected(coordinator);
    }});
    fd_monitor_->start();  // idle until the first coordinator is watched
  }
}

void ShardServer::on_message(ProcessId from, const sim::AnyMessage& msg) {
  if (responder_.handle(from, msg)) return;
  if (fd_monitor_ && fd_monitor_->handle(from, msg)) return;
  if (const auto* c = msg.as<BCertify>()) {
    handle_certify(from, *c);
  } else if (const auto* cb = msg.as<BCertifyBatch>()) {
    handle_certify_batch(from, *cb);
  } else if (const auto* sp = msg.as<SubmitPrepare>()) {
    handle_submit_prepare(*sp);
  } else if (const auto* spb = msg.as<SubmitPrepareBatch>()) {
    handle_submit_prepare_batch(*spb);
  } else if (const auto* v = msg.as<Vote>()) {
    handle_vote(*v);
  } else if (const auto* sd = msg.as<SubmitDecide>()) {
    handle_submit_decide(*sd);
  } else if (const auto* q = msg.as<TerminationQuery>()) {
    handle_termination_query(from, *q);
  } else if (const auto* a = msg.as<TerminationAnswer>()) {
    handle_termination_answer(*a);
  }
}

void ShardServer::handle_certify(ProcessId from, const BCertify& m) {
  // This server coordinates the 2PC round.  It should be the leader server
  // of one involved shard (clients route there).
  std::vector<ShardId> participants = options_.shard_map->shards_of(m.payload);
  if (participants.empty()) {
    rt().send_msg(id(), from, BClientDecision{m.txn, Decision::kCommit});
    return;
  }
  CoordState& c = coord_[m.txn];
  c.participants = participants;
  c.client = from;
  // One CSN stamp per transaction, replicated with every shard's prepare:
  // the baseline's csn(t).ts.  Workload clients only write version v+1
  // after observing v's commit, so stamp order agrees with version order.
  c.prepare_ts = rt().now();
  for (ShardId s : participants) {
    SubmitPrepare sp;
    sp.txn = m.txn;
    sp.payload = options_.shard_map->project(m.payload, s);
    sp.participants = participants;
    sp.client = from;
    sp.coordinator = id();
    sp.prepare_ts = c.prepare_ts;
    if (s == options_.shard) {
      handle_submit_prepare(sp);  // local shard: no network hop
    } else {
      rt().send_msg(id(), shard_leader(s), sp);
    }
  }
}

void ShardServer::handle_certify_batch(ProcessId from, const BCertifyBatch& m) {
  // Each item is an independent 2PC instance; the batch only coalesces the
  // per-shard replicate-and-prepare traffic (one SubmitPrepareBatch per
  // shard leader, one Paxos append there).
  std::map<ShardId, SubmitPrepareBatch> per_shard;
  for (const BCertify& item : m.items) {
    std::vector<ShardId> participants = options_.shard_map->shards_of(item.payload);
    if (participants.empty()) {
      rt().send_msg(id(), from, BClientDecision{item.txn, Decision::kCommit});
      continue;
    }
    CoordState& c = coord_[item.txn];
    c.participants = participants;
    c.client = from;
    c.prepare_ts = rt().now();  // one stamp per item (see handle_certify)
    for (ShardId s : participants) {
      SubmitPrepare sp;
      sp.txn = item.txn;
      sp.payload = options_.shard_map->project(item.payload, s);
      sp.participants = participants;
      sp.client = from;
      sp.coordinator = id();
      sp.prepare_ts = c.prepare_ts;
      per_shard[s].items.push_back(std::move(sp));
    }
  }
  for (auto& [s, batch] : per_shard) {
    if (s == options_.shard) {
      handle_submit_prepare_batch(batch);  // local shard: no network hop
    } else if (batch.items.size() == 1) {
      rt().send_msg(id(), shard_leader(s), std::move(batch.items.front()));
    } else {
      rt().send_msg(id(), shard_leader(s), std::move(batch));
    }
  }
}

void ShardServer::handle_submit_prepare(const SubmitPrepare& m) {
  // Replicate the prepare through this shard's Paxos group; the vote is
  // computed when the command applies.
  CmdPrepare cmd;
  cmd.txn = m.txn;
  cmd.payload = m.payload;
  cmd.participants = m.participants;
  cmd.client = m.client;
  cmd.coordinator = m.coordinator;
  cmd.prepare_ts = m.prepare_ts;
  paxos_->submit(sim::AnyMessage(std::move(cmd)));
}

void ShardServer::handle_submit_prepare_batch(const SubmitPrepareBatch& m) {
  if (m.items.size() == 1) {
    handle_submit_prepare(m.items.front());
    return;
  }
  // The whole batch rides ONE replicated log entry: one Paxos round where
  // the unbatched path pays one per transaction.
  CmdPrepareBatch cmd;
  cmd.items.reserve(m.items.size());
  for (const SubmitPrepare& sp : m.items) {
    CmdPrepare c;
    c.txn = sp.txn;
    c.payload = sp.payload;
    c.participants = sp.participants;
    c.client = sp.client;
    c.coordinator = sp.coordinator;
    c.prepare_ts = sp.prepare_ts;
    cmd.items.push_back(std::move(c));
  }
  paxos_->submit(sim::AnyMessage(std::move(cmd)));
}

void ShardServer::handle_submit_decide(const SubmitDecide& m) {
  paxos_->submit(sim::AnyMessage(CmdDecide{m.txn, m.decision}));
}

void ShardServer::apply(Slot slot, const sim::AnyMessage& cmd) {
  (void)slot;
  if (const auto* p = cmd.as<CmdPrepare>()) {
    apply_prepare(*p);
  } else if (const auto* pb = cmd.as<CmdPrepareBatch>()) {
    // Applying a batch == applying its items in order; votes stay a pure
    // function of the applied prefix on every replica.
    for (const CmdPrepare& item : pb->items) apply_prepare(item);
  } else if (const auto* d = cmd.as<CmdDecide>()) {
    apply_decide(*d);
  } else if (const auto* r = cmd.as<CmdResolveAbort>()) {
    apply_resolve_abort(*r);
  }
}

void ShardServer::apply_prepare(const CmdPrepare& c) {
  auto [it, inserted] = txns_.emplace(c.txn, TxnState{});
  TxnState& st = it->second;
  if (!inserted && st.prepared) {
    // Duplicate prepare (e.g. coordinator retry): keep the original vote.
  } else {
    st.payload = c.payload;
    st.prepared = true;
    st.participants = c.participants;
    st.client = c.client;
    st.coordinator = c.coordinator;
    st.prepare_ts = c.prepare_ts;
    if (st.decided) {
      // A cooperative-termination tombstone beat the prepare into the log:
      // this shard already promised abort to a querier, so the vote must
      // honour it.
      st.vote = Decision::kAbort;
    } else {
      // Deterministic vote: certify against the applied prefix.
      std::vector<const tcs::Payload*> prepared_commit;
      for (const auto& [t, other] : txns_) {
        if (t != c.txn && other.prepared && !other.decided &&
            other.vote == Decision::kCommit) {
          prepared_commit.push_back(&other.payload);
        }
      }
      std::vector<const tcs::Payload*> committed;
      committed.reserve(committed_.size());
      for (const auto& pl : committed_) committed.push_back(&pl);
      st.vote = options_.certifier->vote(committed, prepared_commit, c.payload);
    }
  }
  // Only the current leader reports the vote to the coordinator.
  if (paxos_->is_leader()) {
    if (c.coordinator == id()) {
      handle_vote(Vote{c.txn, options_.shard, st.vote});
    } else {
      rt().send_msg(id(), c.coordinator, Vote{c.txn, options_.shard, st.vote});
    }
  }
  if (options_.cooperative_termination && !st.decided && c.coordinator != id()) {
    note_in_doubt(c.txn, c.coordinator);
  }
}

void ShardServer::apply_decide(const CmdDecide& c) {
  auto it = txns_.find(c.txn);
  if (it == txns_.end()) {
    // A termination-resolved abort can reach a shard that never prepared
    // (its prepare was lost with the coordinator): tombstone it so a
    // late-arriving prepare votes abort.  An unknown COMMIT cannot occur —
    // commit requires this shard's YES vote, which is emitted at prepare
    // apply time, after the prepare entered the log.
    if (c.decision != Decision::kAbort) return;
    TxnState& st = txns_[c.txn];
    st.decided = true;
    st.decision = Decision::kAbort;
    return;
  }
  if (it->second.decided) return;
  TxnState& st = it->second;
  st.decided = true;
  st.decision = c.decision;
  if (c.decision == Decision::kCommit) {
    committed_.push_back(st.payload);
    // Snapshot visibility is gated on the csn (the replicated coordinator
    // stamp), never on apply order: decides landing out of order across
    // shards cannot expose a non-prefix state to reads.
    store_.apply_at(st.payload, tcs::Csn{st.prepare_ts, c.txn});
  }

  // The in-doubt window (if any) closes with the decision.
  if (options_.cooperative_termination) {
    auto tit = term_.find(c.txn);
    if (tit != term_.end()) tit->second.concluded = true;
    clear_in_doubt(c.txn, st.coordinator);
  }

  // Coordinator side: once the decision is durable in the coordinator's own
  // shard, reply to the client and propagate to the other shards.
  Time csn_ts = c.decision == Decision::kCommit ? st.prepare_ts : 0;
  auto cit = coord_.find(c.txn);
  if (cit != coord_.end() && !cit->second.replied && paxos_->is_leader()) {
    cit->second.replied = true;
    announce_decision(c.txn, c.decision, cit->second.participants,
                      cit->second.client, csn_ts);
  } else if (options_.cooperative_termination && paxos_->is_leader() &&
             cit == coord_.end() && !st.participants.empty() &&
             st.participants.front() == options_.shard && st.coordinator != id()) {
    // Orphaned coordination: this shard hosted the transaction's 2PC
    // coordinator (the leader of its first participant shard), but that
    // server crashed or was deposed before replying — its volatile
    // coordinator state died with it, yet everything needed to finish the
    // round (client, participants, and now the decision) is in the
    // replicated state.  The current leader adopts the duties; duplicates
    // are harmless (the client deduplicates, decide application is
    // idempotent).
    ++term_stats_.adopted_coordinations;
    announce_decision(c.txn, c.decision, st.participants, st.client, csn_ts);
  }
}

void ShardServer::apply_resolve_abort(const CmdResolveAbort& c) {
  auto [it, inserted] = txns_.emplace(c.txn, TxnState{});
  TxnState& st = it->second;
  bool tombstoned = false;
  if (!st.prepared && !st.decided) {
    // The query won the race: durably foreclose commit.  Every replica
    // applies the same choice (it depends only on the log prefix).
    st.decided = true;
    st.decision = Decision::kAbort;
    tombstoned = true;
  }
  if (!paxos_->is_leader()) return;
  if (tombstoned) {
    ++term_stats_.tombstones;
    rt().send_msg(id(), c.querier,
                  TerminationAnswer{c.txn, options_.shard, PeerTxnState::kNeverPrepared});
    ++term_stats_.answers_sent;
  } else {
    send_termination_answer(c.querier, c.txn);
  }
}

void ShardServer::handle_vote(const Vote& m) {
  auto it = coord_.find(m.txn);
  if (it == coord_.end()) return;
  CoordState& c = it->second;
  c.votes[m.shard] = m.vote;
  maybe_decide(m.txn);
}

void ShardServer::maybe_decide(TxnId t) {
  CoordState& c = coord_.at(t);
  if (c.decision_submitted) return;
  Decision d = Decision::kCommit;
  for (ShardId s : c.participants) {
    auto vit = c.votes.find(s);
    if (vit == c.votes.end()) return;
    d = meet(d, vit->second);
  }
  c.decision_submitted = true;
  // Make the decision durable in the coordinator's own group first; the
  // reply and propagation happen when it applies (apply_decide).
  paxos_->submit(sim::AnyMessage(CmdDecide{t, d}));
}

// --- cooperative termination ----------------------------------------------------

void ShardServer::note_in_doubt(TxnId t, ProcessId coordinator) {
  in_doubt_[coordinator].insert(t);
  if (fd_monitor_->ensure_watched(coordinator)) {
    // Already-suspected coordinator: the on_suspect edge will not fire
    // again for it, so kick this transaction's first round directly.
    start_termination_round(t);
  }
  TermState& ts = term_[t];
  if (!ts.timer_armed) {
    // Fallback for a coordinator that stays alive but unhelpful (its
    // decision message was lost, or it died and the failure detector's
    // pongs are partitioned): query after a generous in-doubt window.
    ts.timer_armed = true;
    rt().schedule_for(id(), options_.in_doubt_timeout,
                       [this, t] { start_termination_round(t); });
  }
}

void ShardServer::clear_in_doubt(TxnId t, ProcessId coordinator) {
  auto it = in_doubt_.find(coordinator);
  if (it == in_doubt_.end()) return;
  it->second.erase(t);
  if (it->second.empty()) {
    in_doubt_.erase(it);
    if (fd_monitor_) fd_monitor_->unwatch(coordinator);
  }
}

void ShardServer::on_coordinator_suspected(ProcessId coordinator) {
  auto it = in_doubt_.find(coordinator);
  if (it == in_doubt_.end()) return;
  std::vector<TxnId> txns(it->second.begin(), it->second.end());
  for (TxnId t : txns) start_termination_round(t);
}

void ShardServer::start_termination_round(TxnId t) {
  auto xit = txns_.find(t);
  if (xit == txns_.end() || xit->second.decided) return;
  TxnState& st = xit->second;
  TermState& ts = term_[t];
  if (ts.concluded) return;
  // The query budget is consumed only by rounds actually broadcast as
  // leader, so a replica elected mid-protocol still gets its full budget;
  // the hard cap on total fires bounds a permanently-leaderless replica's
  // retry chain so every run quiesces.
  const int hard_cap = 4 * options_.termination_max_rounds;
  if (ts.leader_rounds >= options_.termination_max_rounds || ts.rounds >= hard_cap) {
    // Give up: every reachable participant is in doubt.  The transaction
    // stays blocked — classical 2PC's irreducible window.
    ts.concluded = true;
    if (paxos_->is_leader()) ++term_stats_.blocked;
    clear_in_doubt(t, st.coordinator);
    return;
  }
  ++ts.rounds;
  if (paxos_->is_leader()) {
    ++ts.leader_rounds;
    ts.answers.clear();
    // Our own durable state is one answer: a NO vote already forecloses
    // commit, and a decided record resolves outright.
    ts.answers[options_.shard] = st.vote == Decision::kAbort
                                     ? PeerTxnState::kAborted
                                     : PeerTxnState::kPrepared;
    for (ShardId s : st.participants) {
      if (s == options_.shard) continue;
      rt().send_msg(id(), shard_leader(s), TerminationQuery{t});
      ++term_stats_.queries_sent;
    }
    maybe_conclude_termination(t);
  }
  // Re-arm regardless of leadership: answers may be lost to the very fault
  // that stranded the transaction, and this replica may be elected leader
  // between rounds.
  rt().schedule_for(id(), options_.termination_retry_every,
                     [this, t] { start_termination_round(t); });
}

void ShardServer::handle_termination_query(ProcessId from, const TerminationQuery& q) {
  auto it = txns_.find(q.txn);
  if (it == txns_.end() || (!it->second.prepared && !it->second.decided)) {
    // Never prepared here: promise abort durably (through our own log)
    // before answering; the log order arbitrates against an in-flight
    // prepare.  The leader answers when the command applies.
    paxos_->submit(sim::AnyMessage(CmdResolveAbort{q.txn, from}));
    return;
  }
  send_termination_answer(from, q.txn);
}

void ShardServer::send_termination_answer(ProcessId to, TxnId t) {
  const TxnState& st = txns_.at(t);
  PeerTxnState state;
  if (st.decided) {
    state = st.decision == Decision::kCommit ? PeerTxnState::kCommitted
                                             : PeerTxnState::kAborted;
  } else if (st.vote == Decision::kAbort) {
    // Prepared with a NO vote: the coordinator can only ever decide abort.
    state = PeerTxnState::kAborted;
  } else {
    state = PeerTxnState::kPrepared;  // in doubt
  }
  rt().send_msg(id(), to, TerminationAnswer{t, options_.shard, state});
  ++term_stats_.answers_sent;
}

void ShardServer::handle_termination_answer(const TerminationAnswer& a) {
  auto xit = txns_.find(a.txn);
  if (xit == txns_.end() || xit->second.decided) return;
  auto tit = term_.find(a.txn);
  if (tit == term_.end() || tit->second.concluded) return;
  tit->second.answers[a.shard] = a.state;
  maybe_conclude_termination(a.txn);
}

void ShardServer::maybe_conclude_termination(TxnId t) {
  const TxnState& st = txns_.at(t);
  TermState& ts = term_.at(t);
  switch (infer_termination(ts.answers, st.participants.size())) {
    case TerminationOutcome::kCommit:
      resolve_in_doubt(t, Decision::kCommit);
      break;
    case TerminationOutcome::kAbort:
      resolve_in_doubt(t, Decision::kAbort);
      break;
    case TerminationOutcome::kBlocked:
      // All participants answered "in doubt".  Do not conclude yet: a peer
      // may still apply a decision that was in flight through its group
      // (retry rounds re-query); give up only when the rounds run out.
      break;
    case TerminationOutcome::kUnknown:
      break;
  }
}

void ShardServer::resolve_in_doubt(TxnId t, Decision d) {
  TermState& ts = term_.at(t);
  if (ts.concluded) return;
  ts.concluded = true;
  if (d == Decision::kCommit) {
    ++term_stats_.resolved_commits;
  } else {
    ++term_stats_.resolved_aborts;
  }
  TxnState& st = txns_.at(t);
  clear_in_doubt(t, st.coordinator);
  // Adopt the outcome: durable in our own group, propagated to the peer
  // shards (idempotent at apply), and the stranded client is answered (it
  // deduplicates decisions).  A termination-resolved commit's csn is the
  // replicated coordinator stamp — the same value the dead coordinator
  // would have externalized.
  paxos_->submit(sim::AnyMessage(CmdDecide{t, d}));
  announce_decision(t, d, st.participants, st.client,
                    d == Decision::kCommit ? st.prepare_ts : 0);
}

void ShardServer::announce_decision(TxnId t, Decision d,
                                    const std::vector<ShardId>& participants,
                                    ProcessId client, Time csn_ts) {
  if (client != kNoProcess) {
    rt().send_msg(id(), client, BClientDecision{t, d, csn_ts});
  }
  for (ShardId s : participants) {
    if (s == options_.shard) continue;
    rt().send_msg(id(), shard_leader(s), SubmitDecide{t, d});
  }
}

tcs::Csn ShardServer::read_watermark() const {
  // Any future commit of a prepared-undecided transaction lands at its
  // replicated coordinator stamp, so the watermark stays below the smallest
  // such stamp.  A transaction whose prepare is chosen but not yet applied
  // here cannot gate: can_serve_reads() requires a caught-up leader, and a
  // commit needs this shard's vote, which only the leader emits at
  // prepare-apply time — its decision is externalized after the read.
  bool any = false;
  Time min_ts = 0;
  for (const auto& [t, st] : txns_) {
    if (!st.prepared || st.decided) continue;
    if (!any || st.prepare_ts < min_ts) min_ts = st.prepare_ts;
    any = true;
  }
  if (any) return tcs::watermark_below(min_ts);
  return tcs::watermark_at(rt().now());
}

bool ShardServer::has_prepared(TxnId t) const {
  auto it = txns_.find(t);
  return it != txns_.end() && it->second.prepared;
}

bool ShardServer::has_decided(TxnId t) const {
  auto it = txns_.find(t);
  return it != txns_.end() && it->second.decided;
}

}  // namespace ratc::baseline
