// Baseline shard server: the TCS state machine replicated via Multi-Paxos,
// plus the 2PC coordinator role for transactions submitted to it.
//
// Vote computation happens at *apply* time and depends only on the applied
// command prefix, so every replica of a shard computes identical votes —
// the standard state-machine-replication discipline.  Only the replica
// that currently leads its Paxos group emits the Vote/decision messages.
#pragma once

#include <map>
#include <set>
#include <vector>

#include "baseline/messages.h"
#include "paxos/replica.h"
#include "sim/network.h"
#include "sim/process.h"
#include "tcs/certifier.h"
#include "tcs/shard_map.h"

namespace ratc::baseline {

class ShardServer : public sim::Process {
 public:
  struct Options {
    ShardId shard = 0;
    const tcs::ShardMap* shard_map = nullptr;
    const tcs::Certifier* certifier = nullptr;
  };

  ShardServer(sim::Simulator& sim, sim::Network& net, ProcessId id, Options options);

  void attach_paxos(paxos::PaxosReplica* paxos) { paxos_ = paxos; }
  paxos::PaxosReplica& paxos() { return *paxos_; }

  /// Routing table: leader server of each shard (maintained by the cluster;
  /// static absent failures, updated on failover by the harness).
  void set_shard_leader(ShardId s, ProcessId leader) { leaders_[s] = leader; }
  ProcessId shard_leader(ShardId s) const { return leaders_.at(s); }

  void on_message(ProcessId from, const sim::AnyMessage& msg) override;

  /// Paxos apply upcall.
  void apply(Slot slot, const sim::AnyMessage& cmd);

  // Introspection for tests and the cluster-level verifier.
  bool has_decided(TxnId t) const;
  tcs::Decision decision_of(TxnId t) const { return txns_.at(t).decision; }
  std::size_t committed_count() const { return committed_.size(); }
  /// Every transaction this replica applied a decision for.
  std::map<TxnId, tcs::Decision> decided_txns() const {
    std::map<TxnId, tcs::Decision> out;
    for (const auto& [t, st] : txns_) {
      if (st.decided) out.emplace(t, st.decision);
    }
    return out;
  }

 private:
  struct TxnState {
    tcs::Payload payload;
    tcs::Decision vote = tcs::Decision::kAbort;
    bool prepared = false;
    bool decided = false;
    tcs::Decision decision = tcs::Decision::kAbort;
  };
  struct CoordState {
    std::vector<ShardId> participants;
    ProcessId client = kNoProcess;
    std::map<ShardId, tcs::Decision> votes;
    bool decision_submitted = false;
    bool replied = false;
  };

  void handle_certify(ProcessId from, const BCertify& m);
  void handle_submit_prepare(const SubmitPrepare& m);
  void handle_vote(const Vote& m);
  void handle_submit_decide(const SubmitDecide& m);
  void apply_prepare(const CmdPrepare& c);
  void apply_decide(const CmdDecide& c);
  void maybe_decide(TxnId t);

  Options options_;
  sim::Network& net_;
  paxos::PaxosReplica* paxos_ = nullptr;
  std::map<ShardId, ProcessId> leaders_;

  // Replicated TCS state (per shard).
  std::map<TxnId, TxnState> txns_;
  std::vector<tcs::Payload> committed_;

  // Coordinator-side state (not replicated; dies with the coordinator, as
  // in classical 2PC — the baseline's blocking weakness).
  std::map<TxnId, CoordState> coord_;
};

}  // namespace ratc::baseline
