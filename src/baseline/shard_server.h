// Baseline shard server: the TCS state machine replicated via Multi-Paxos,
// plus the 2PC coordinator role for transactions submitted to it.
//
// Vote computation happens at *apply* time and depends only on the applied
// command prefix, so every replica of a shard computes identical votes —
// the standard state-machine-replication discipline.  Only the replica
// that currently leads its Paxos group emits the Vote/decision messages.
//
// With Options::cooperative_termination the classic 2PC fix is bolted on
// (baseline/termination.h): every replica tracks its in-doubt transactions
// (prepared, undecided, remote coordinator), watches their coordinators
// through an fd::PingMonitor, and — on suspicion or after an in-doubt
// timeout — the shard's current leader broadcasts TerminationQuery to the
// peer shards and resolves from their answers.  Peers answer durable facts
// only: a never-prepared peer first tombstones the transaction as aborted
// through its own Paxos log (CmdResolveAbort), letting the log order
// arbitrate races with an in-flight prepare.  Rounds are bounded, so a run
// always quiesces; all-prepared transactions remain blocked — the
// irreducible 2PC window the paper's protocols remove.
#pragma once

#include <map>
#include <memory>
#include <set>
#include <vector>

#include "baseline/messages.h"
#include "baseline/termination.h"
#include "fd/failure_detector.h"
#include "paxos/replica.h"
#include "sim/network.h"
#include "sim/process.h"
#include "store/versioned_store.h"
#include "tcs/certifier.h"
#include "tcs/csn.h"
#include "tcs/shard_map.h"

namespace ratc::baseline {

class ShardServer : public sim::Process {
 public:
  struct Options {
    ShardId shard = 0;
    const tcs::ShardMap* shard_map = nullptr;
    const tcs::Certifier* certifier = nullptr;
    /// Enables cooperative termination (off = classical blocking 2PC).
    bool cooperative_termination = false;
    /// In-doubt fallback: query peers this long after preparing even if the
    /// failure detector never fires (covers a live coordinator whose
    /// decision message was lost).
    Duration in_doubt_timeout = 300;
    /// Delay between termination query rounds.
    Duration termination_retry_every = 160;
    /// Query rounds before giving up (the transaction stays blocked).
    int termination_max_rounds = 5;
    /// Committed versions retained per object for snapshot reads.
    std::size_t snapshot_history_depth = 16;
    fd::PingMonitor::Options fd;
  };

  ShardServer(rt::Runtime& rt, ProcessId id, Options options);
  ShardServer(sim::Simulator& sim, sim::Network& net, ProcessId id, Options options);

  void attach_paxos(paxos::PaxosReplica* paxos) { paxos_ = paxos; }
  paxos::PaxosReplica& paxos() { return *paxos_; }

  /// Routing table: leader server of each shard (maintained by the cluster;
  /// static absent failures, updated on failover by the harness).
  void set_shard_leader(ShardId s, ProcessId leader) { leaders_[s] = leader; }
  ProcessId shard_leader(ShardId s) const { return leaders_.at(s); }

  void on_message(ProcessId from, const sim::AnyMessage& msg) override;

  /// Paxos apply upcall.
  void apply(Slot slot, const sim::AnyMessage& cmd);

  // Introspection for tests and the cluster-level verifier.
  bool has_prepared(TxnId t) const;
  bool has_decided(TxnId t) const;
  tcs::Decision decision_of(TxnId t) const { return txns_.at(t).decision; }
  std::size_t committed_count() const { return committed_.size(); }
  /// Every transaction this replica applied a decision for.
  std::map<TxnId, tcs::Decision> decided_txns() const {
    std::map<TxnId, tcs::Decision> out;
    for (const auto& [t, st] : txns_) {
      if (st.decided) out.emplace(t, st.decision);
    }
    return out;
  }
  const TerminationStats& termination_stats() const { return term_stats_; }

  // --- CSN reads (baseline) ----------------------------------------------------
  //
  // The baseline has no all-follower-ack rule, so only a Paxos leader that
  // has applied every chosen command may serve reads: its applied prefix
  // then contains every prepare whose transaction could commit with a csn
  // at or below the watermark (a commit needs this shard's vote, which the
  // leader only emits at prepare-apply time — any later decide is
  // externalized after the read and is exempt from mandatory visibility).

  /// Leader-gated read eligibility.
  bool can_serve_reads() const { return paxos_->is_leader() && paxos_->caught_up(); }
  /// Largest snapshot this replica can serve locally: below the smallest
  /// coordinator stamp among prepared-undecided transactions, else "now".
  tcs::Csn read_watermark() const;
  const store::SnapshotStore& snapshot_store() const { return store_; }

 private:
  struct TxnState {
    tcs::Payload payload;
    tcs::Decision vote = tcs::Decision::kAbort;
    bool prepared = false;
    bool decided = false;
    tcs::Decision decision = tcs::Decision::kAbort;
    // 2PC metadata replicated with the prepare; lets any replica of any
    // participant shard run termination after the coordinator died.
    std::vector<ShardId> participants;
    ProcessId client = kNoProcess;
    ProcessId coordinator = kNoProcess;
    Time prepare_ts = 0;  ///< coordinator CSN stamp; a commit's csn(t).ts
  };
  struct CoordState {
    std::vector<ShardId> participants;
    ProcessId client = kNoProcess;
    Time prepare_ts = 0;  ///< the stamp this coordinator issued for t
    std::map<ShardId, tcs::Decision> votes;
    bool decision_submitted = false;
    bool replied = false;
  };
  /// Per-transaction cooperative-termination progress (querier side).
  /// Followers re-arm the retry timer without consuming the query budget —
  /// a replica elected leader mid-protocol still gets its full
  /// termination_max_rounds of queries; `rounds` (total fires, leader or
  /// not) is capped separately so the retry chain always terminates and
  /// the simulation quiesces.
  struct TermState {
    int rounds = 0;         ///< total retry fires (hard-capped)
    int leader_rounds = 0;  ///< query rounds actually broadcast as leader
    bool concluded = false;       ///< resolved, or given up (blocked)
    bool timer_armed = false;     ///< in-doubt fallback timer scheduled
    std::map<ShardId, PeerTxnState> answers;
  };

  void handle_certify(ProcessId from, const BCertify& m);
  void handle_certify_batch(ProcessId from, const BCertifyBatch& m);
  void handle_submit_prepare(const SubmitPrepare& m);
  /// Replicates the whole batch through ONE Paxos append (CmdPrepareBatch).
  void handle_submit_prepare_batch(const SubmitPrepareBatch& m);
  void handle_vote(const Vote& m);
  void handle_submit_decide(const SubmitDecide& m);
  void apply_prepare(const CmdPrepare& c);
  void apply_decide(const CmdDecide& c);
  void apply_resolve_abort(const CmdResolveAbort& c);
  void maybe_decide(TxnId t);

  // --- cooperative termination -------------------------------------------------
  void handle_termination_query(ProcessId from, const TerminationQuery& q);
  void handle_termination_answer(const TerminationAnswer& a);
  /// Marks t in doubt (prepared, undecided, coordinator elsewhere): watch
  /// the coordinator and arm the in-doubt fallback timer.
  void note_in_doubt(TxnId t, ProcessId coordinator);
  void clear_in_doubt(TxnId t, ProcessId coordinator);
  void on_coordinator_suspected(ProcessId coordinator);
  /// One query round: leaders broadcast, everyone re-arms the retry timer;
  /// bounded by termination_max_rounds.
  void start_termination_round(TxnId t);
  /// Answers `to` with the durable state of t (which must exist).
  void send_termination_answer(ProcessId to, TxnId t);
  /// Runs the inference rules over the answers collected so far.
  void maybe_conclude_termination(TxnId t);
  /// Externalizes a durable decision: answers the client (if known) and
  /// sends SubmitDecide to every participant shard but our own.  `csn_ts`
  /// is the coordinator stamp for commits (0 for aborts).
  void announce_decision(TxnId t, tcs::Decision d,
                         const std::vector<ShardId>& participants,
                         ProcessId client, Time csn_ts);
  /// Adopts d for the in-doubt transaction t: replicate locally, propagate
  /// to the peer shards, and answer the stranded client.
  void resolve_in_doubt(TxnId t, tcs::Decision d);

  Options options_;
  paxos::PaxosReplica* paxos_ = nullptr;
  std::map<ShardId, ProcessId> leaders_;

  // Replicated TCS state (per shard).
  std::map<TxnId, TxnState> txns_;
  std::vector<tcs::Payload> committed_;
  /// Multi-version committed state for snapshot reads, fed by apply_decide;
  /// deterministic across replicas (csn = the replicated coordinator stamp).
  store::SnapshotStore store_;

  // Coordinator-side state (not replicated; dies with the coordinator, as
  // in classical 2PC — the baseline's blocking weakness).
  std::map<TxnId, CoordState> coord_;

  // Cooperative-termination state (per replica; only leaders speak).
  fd::Responder responder_;
  std::unique_ptr<fd::PingMonitor> fd_monitor_;
  std::map<TxnId, TermState> term_;
  std::map<ProcessId, std::set<TxnId>> in_doubt_;  ///< by coordinator
  TerminationStats term_stats_;
};

}  // namespace ratc::baseline
