// Cooperative termination for the baseline 2PC stack (Gray & Lamport,
// "Consensus on Transaction Commit", Sec. 3; also Bernstein/Hadzilacos/
// Goodman Ch. 7): when a participant holding a prepared-but-undecided
// record suspects the coordinator, it queries its peer shards, and the
// classic inference rules resolve the outcome from their durable states.
//
// This header holds the pure, message-free core — the peer-state vocabulary
// carried in TerminationAnswer, the inference function, and the metrics
// struct — so the decision table is unit-testable by enumeration
// (baseline_termination_test.cc) separately from the ShardServer state
// machine that feeds it.
#pragma once

#include <cstdint>
#include <map>

#include "common/types.h"

namespace ratc::baseline {

/// A peer shard's durable knowledge about a transaction, as answered to a
/// TerminationQuery.  States are derived from the shard's *applied* Paxos
/// prefix, so every answer is a replicated fact:
///  * kCommitted / kAborted — the decision is applied (or, for kAborted,
///    foreclosed: a NO vote means the coordinator can only ever decide
///    abort, and a never-prepared peer answers kAborted once its abort
///    tombstone is durable if it had already been created by an earlier
///    query round).
///  * kPrepared — prepared with a YES vote and no decision: in doubt.
///  * kNeverPrepared — the query arrived before any prepare; the shard
///    durably tombstoned the transaction as aborted *before* answering, so
///    commit is foreclosed (a later prepare applies after the tombstone and
///    votes abort).
enum class PeerTxnState {
  kNeverPrepared = 0,
  kPrepared = 1,
  kCommitted = 2,
  kAborted = 3,
};

inline const char* to_string(PeerTxnState s) {
  switch (s) {
    case PeerTxnState::kNeverPrepared: return "never-prepared";
    case PeerTxnState::kPrepared: return "prepared";
    case PeerTxnState::kCommitted: return "committed";
    case PeerTxnState::kAborted: return "aborted";
  }
  return "?";
}

/// Outcome of one inference pass over the answers collected so far.
enum class TerminationOutcome {
  kUnknown = 0,  ///< answers outstanding and nothing conclusive yet
  kCommit = 1,   ///< some peer applied COMMIT: adopt it
  kAbort = 2,    ///< commit is foreclosed (abort applied, NO vote, or tombstone)
  kBlocked = 3,  ///< every participant is in doubt — the irreducible 2PC window
};

inline const char* to_string(TerminationOutcome o) {
  switch (o) {
    case TerminationOutcome::kUnknown: return "unknown";
    case TerminationOutcome::kCommit: return "commit";
    case TerminationOutcome::kAbort: return "abort";
    case TerminationOutcome::kBlocked: return "blocked";
  }
  return "?";
}

/// The classic decision-inference rules over the answers collected so far
/// (keyed by participant shard; the querier contributes its own durable
/// state as one answer).  `num_participants` is |shards(t)|:
///  * any kCommitted            => kCommit (a decision exists; adopt it)
///  * any kAborted              => kAbort  (decision exists or is foreclosed
///                                          by a NO vote)
///  * any kNeverPrepared        => kAbort  (the answering shard tombstoned
///                                          the txn before answering)
///  * all participants answered
///    kPrepared                 => kBlocked (every vote was YES and no
///                                          decision survives: only the
///                                          crashed coordinator knew the
///                                          outcome — 2PC's blocking window)
///  * otherwise                 => kUnknown (keep waiting / retry)
inline TerminationOutcome infer_termination(
    const std::map<ShardId, PeerTxnState>& answers, std::size_t num_participants) {
  bool abort_foreclosed = false;
  for (const auto& [shard, state] : answers) {
    (void)shard;
    if (state == PeerTxnState::kCommitted) return TerminationOutcome::kCommit;
    if (state == PeerTxnState::kAborted || state == PeerTxnState::kNeverPrepared) {
      abort_foreclosed = true;
    }
  }
  if (abort_foreclosed) return TerminationOutcome::kAbort;
  if (num_participants > 0 && answers.size() >= num_participants) {
    return TerminationOutcome::kBlocked;
  }
  return TerminationOutcome::kUnknown;
}

/// Per-server termination counters; BaselineCluster::termination_stats()
/// sums them across all shard servers.  Sends are counted where they leave
/// (leaders only), so cluster totals are not inflated by followers that
/// track in-doubt state but never speak.  Note the totals are *event*
/// counts, not distinct-transaction counts: each participant shard's
/// leader runs its own termination protocol, so one in-doubt transaction
/// with k participants can contribute up to k resolutions (or give-ups)
/// to the cluster aggregate.
struct TerminationStats {
  std::uint64_t queries_sent = 0;    ///< TerminationQuery messages sent
  std::uint64_t answers_sent = 0;    ///< TerminationAnswer messages sent
  std::uint64_t tombstones = 0;      ///< never-prepared txns durably aborted on query
  std::uint64_t resolved_commits = 0;  ///< in-doubt txns resolved to COMMIT
  std::uint64_t resolved_aborts = 0;   ///< in-doubt txns resolved to ABORT
  std::uint64_t blocked = 0;         ///< gave up: all participants in doubt
  /// Orphaned 2PC rounds finished by a successor leader of the coordinator's
  /// own shard (decision recovered from the replicated log, client answered,
  /// peers informed) — no query round needed.
  std::uint64_t adopted_coordinations = 0;

  TerminationStats& operator+=(const TerminationStats& o) {
    queries_sent += o.queries_sent;
    answers_sent += o.answers_sent;
    tombstones += o.tombstones;
    resolved_commits += o.resolved_commits;
    resolved_aborts += o.resolved_aborts;
    blocked += o.blocked;
    adopted_coordinations += o.adopted_coordinations;
    return *this;
  }

  std::uint64_t resolved() const { return resolved_commits + resolved_aborts; }
};

}  // namespace ratc::baseline
