// Workload generators: synthetic transaction mixes with controllable
// contention (uniform or zipfian key choice), read/write ratio and
// multi-shard span — the substitution for the production traces the FARM
// papers evaluate on (see DESIGN.md).
#pragma once

#include <vector>

#include "common/random.h"
#include "common/types.h"
#include "store/executor.h"
#include "store/versioned_store.h"
#include "tcs/payload.h"

namespace ratc::store {

struct WorkloadOptions {
  std::uint64_t objects = 1000;
  /// 0 = uniform; YCSB-style zipfian skew otherwise (e.g. 0.99).
  double zipf_theta = 0.0;
  std::size_t ops_per_txn = 4;
  double write_fraction = 0.5;
};

class WorkloadGenerator {
 public:
  WorkloadGenerator(WorkloadOptions options, std::uint64_t seed)
      : options_(options),
        rng_(seed),
        zipf_(options.objects, options.zipf_theta > 0 ? options.zipf_theta : 0.01) {}

  /// Executes one synthetic transaction against the committed store and
  /// returns its payload.
  tcs::Payload next(const VersionedStore& db) {
    TransactionExecutor exec(db);
    for (std::size_t i = 0; i < options_.ops_per_txn; ++i) {
      ObjectId obj = pick_object();
      if (rng_.chance(options_.write_fraction)) {
        exec.write(obj, static_cast<Value>(rng_.below(1'000'000)));
      } else {
        exec.read(obj);
      }
    }
    return exec.finish();
  }

  Rng& rng() { return rng_; }

 private:
  ObjectId pick_object() {
    if (options_.zipf_theta > 0) return zipf_.sample(rng_);
    return rng_.below(options_.objects);
  }

  WorkloadOptions options_;
  Rng rng_;
  Zipfian zipf_;
};

/// Bank-transfer workload (the classical atomic-commit motivation): a fixed
/// set of accounts with balances; each transaction moves money between two
/// accounts, usually on different shards.  Total balance is conserved by
/// committed transfers — the end-to-end invariant the examples check.
class BankWorkload {
 public:
  BankWorkload(std::uint64_t accounts, Value initial_balance, std::uint64_t seed)
      : accounts_(accounts), initial_balance_(initial_balance), rng_(seed) {}

  /// Initial database state: every account at the initial balance, version 1.
  /// Apply to the committed store before running transfers.
  tcs::Payload seed_payload() const {
    tcs::Payload p;
    for (ObjectId a = 0; a < accounts_; ++a) p.writes.push_back({a, initial_balance_});
    p.commit_version = 1;
    return p;
  }

  tcs::Payload next_transfer(const VersionedStore& db) {
    ObjectId from = rng_.below(accounts_);
    ObjectId to = rng_.below(accounts_);
    while (to == from) to = rng_.below(accounts_);
    Value amount = 1 + static_cast<Value>(rng_.below(10));
    TransactionExecutor exec(db);
    Value from_balance = exec.read(from);
    Value to_balance = exec.read(to);
    exec.write(from, from_balance - amount);
    exec.write(to, to_balance + amount);
    return exec.finish();
  }

  Value total_balance(const VersionedStore& db) const {
    Value total = 0;
    for (ObjectId a = 0; a < accounts_; ++a) total += db.read(a).value;
    return total;
  }

  Value expected_total() const {
    return static_cast<Value>(accounts_) * initial_balance_;
  }

  std::uint64_t accounts() const { return accounts_; }

 private:
  std::uint64_t accounts_;
  Value initial_balance_;
  Rng rng_;
};

}  // namespace ratc::store
