// StackHarness: one uniform driving surface over the three transaction
// stacks (the paper's message-passing protocol, its RDMA variant, and the
// 2PC-over-Paxos baseline), promoted out of the test harness so sweeps,
// benches and examples all build, fault and check a stack the same way.
//
// Each harness owns a fully assembled cluster plus a history-recording
// client and exposes:
//   * construction from a shared StackWorkload (per-stack knobs that do not
//     apply are ignored);
//   * submission through a live coordinator (seeded-random pick, so a run
//     stays a pure function of its seed);
//   * the crash / reconfigure / leadership-change levers of the stack,
//     guarded by the stack's own liveness assumptions (the paper's
//     Assumption 1 for the reconfigurable stacks, Paxos majorities for the
//     baseline);
//   * the machine topology for partition-shaped faults (fault_units); and
//   * the checkers that apply to the stack, enumerated by kCheckers:
//     verify() folds in the online monitor and TCS-LL where they exist,
//     check_linearization() runs the exact DFS.
//
// The compile-time surface shared by every harness (and by the Paxos
// substrate adapter in tests/harness/sweep.cc):
//
//   using Workload;                        // StackWorkload-shaped knobs
//   static constexpr const char* kName;
//   static constexpr std::uint64_t kWorkloadSalt;  // workload rng derivation
//   static constexpr Duration kPaceHi;             // inter-txn think time
//   static constexpr CheckerSet kCheckers;
//   Harness(std::uint64_t seed, const Workload& w);
//   sim::Simulator& sim();
//   void install_fault_injector(sim::FaultInjector*);
//   void set_on_decision(std::function<void(TxnId, tcs::Decision)>);
//   TxnId next_txn_id();
//   bool submit(Rng&, TxnId, const tcs::Payload&);
//   std::size_t decided_count() / committed_count();
//   std::uint32_t num_shards();
//   std::vector<std::vector<ProcessId>> fault_units(ShardId) / all_units();
//   bool crash_and_reconfigure(Rng&, ShardId) / reconfigure_healthy(Rng&, ShardId);
//   void drain(Duration, Rng&);
//   std::string verify() / check_linearization() / trace();
//   std::size_t controller_attempts();   // optional (requires-detected): stacks
//                                        // with autonomous controllers (src/ctrl/)
#pragma once

#include <functional>
#include <map>
#include <string>
#include <utility>
#include <vector>

#include "baseline/cluster.h"
#include "commit/client.h"
#include "commit/cluster.h"
#include "ctrl/placement.h"
#include "pc/cluster.h"
#include "rdma/cluster.h"
#include "recon/engine.h"
#include "recon/placement.h"
#include "sim/fault.h"
#include "tcs/payload.h"

namespace ratc::store {

/// Construction and workload knobs shared by the stack harnesses.  Knobs
/// that do not apply to a stack are ignored by its harness (the baseline
/// has no spares or retry timeout; only the RDMA stack has a fabric).
struct StackWorkload {
  std::uint32_t num_shards = 3;
  std::size_t shard_size = 2;
  std::size_t spares_per_shard = 6;
  int total_txns = 200;
  ObjectId object_universe = 24;
  std::string isolation = "serializability";
  bool exponential_delays = false;
  Duration retry_timeout = 120;
  Duration drain = 8000;  ///< post-workload settle time (ticks)
  /// Run the exact linearization DFS when |committed| <= this bound.
  std::size_t linearize_up_to = 25;
  /// Minimum fraction of submitted transactions that must decide; lossy
  /// schedules legitimately lose decisions, so sweeps tune this down.
  double min_decided_fraction = 0.9;
  bool capture_trace = true;
  /// RDMA only: also install the fault injector on the one-sided fabric.
  bool faults_on_fabric = true;
  /// Baseline only: enable cooperative termination (the classical 2PC fix;
  /// see src/baseline/termination.h).  BaselineCoopHarness forces it on.
  bool cooperative_termination = false;
  /// Commit/RDMA stacks: spawn the autonomous reconfiguration controllers
  /// (src/ctrl/), one per shard, which detect failures through the FD and
  /// heal shards with no harness intervention.  The baseline has no
  /// reconfiguration to drive and ignores it.
  bool autonomous_controller = false;
  ctrl::ControllerTuning controller;
  /// Membership policy for every reconfigurer in the stack (replica-driven
  /// and controller-driven alike): "replace-suspects" (the default) or
  /// "zone-anti-affinity" (see recon/placement.h).  Unknown names throw.
  std::string placement = "replace-suspects";
  /// Synthetic zone labels for placement (0 = unlabeled); pids get zones
  /// "z0".."z<n-1>" round-robin by per-shard index.
  std::size_t num_zones = 0;
  /// When false, crash_and_reconfigure only crashes: the harness-side
  /// repair (reconfigure + await activation, or the baseline's leader
  /// failover) is suppressed, making the crash events a pure crash-only
  /// nemesis — recovery, if any, is the controllers' job.
  bool harness_repair = true;
  /// Transactions grouped into each submission round (1 = scalar submit,
  /// bit-identical to the pre-batching driver).  Batches ride one CERTIFY
  /// round per coordinator; see store::WorkloadRunner.
  std::size_t batch_size = 1;
  /// Debug cross-check: recompute every certification vote with the flat
  /// L1/L2 log scan and abort on divergence from the witness index
  /// (commit/rdma stacks; the baseline has no witness index and ignores it).
  bool check_certifier_index = false;
  /// Read-mix knob for the CSN snapshot fast path: each workload iteration
  /// issues a geometric number of read-only snapshot transactions with this
  /// success probability — read:update ratio rf/(1-rf) in expectation, so
  /// 0.95 is the 95/5 mix and 0 disables reads.  Reads ride a dedicated rng
  /// stream and send zero messages, so the update trace (and the run
  /// fingerprint) is bit-identical to a read-free run of the same seed.
  double read_fraction = 0.0;
  /// Staleness bound for snapshot reads (ticks; 0 = unbounded): a read
  /// whose snapshot lags "now" by more than the bound is rejected unserved
  /// rather than answered stale.
  Duration read_staleness_bound = 0;
};

/// Which end-of-run checkers apply to a stack.  monitor and tcsll are
/// folded into verify(); linearization gates check_linearization().
struct CheckerSet {
  bool monitor = false;
  bool tcsll = false;
  bool linearization = false;
};

/// Shared payload generator: contended read-write transactions in the style
/// of commit_random_test (the versions map feeds realistic read versions).
class ContendedPayloadGen {
 public:
  ContendedPayloadGen(Rng& rng, ObjectId universe) : rng_(rng), universe_(universe) {}

  tcs::Payload next() {
    tcs::Payload p;
    std::uint64_t nobjs = 1 + rng_.below(3);
    Version maxv = 0;
    for (std::uint64_t j = 0; j < nobjs; ++j) {
      ObjectId obj = rng_.below(universe_);
      if (p.reads_object(obj)) continue;
      Version v = versions_.count(obj) ? versions_[obj] : 0;
      p.reads.push_back({obj, v});
      maxv = std::max(maxv, v);
    }
    for (const auto& r : p.reads) {
      if (rng_.chance(0.6)) {
        p.writes.push_back({r.object, static_cast<Value>(rng_.below(1000))});
      }
    }
    p.commit_version = maxv + 1;
    return p;
  }

  void observe_commit(const tcs::Payload& p) {
    for (const auto& w : p.writes) {
      versions_[w.object] = std::max(versions_[w.object], p.commit_version);
    }
  }

 private:
  Rng& rng_;
  ObjectId universe_;
  std::map<ObjectId, Version> versions_;
};

/// Paper protocol (Fig. 1): shards of f+1 replicas plus spares, per-shard
/// reconfiguration through the configuration service.
class CommitHarness {
 public:
  using Workload = StackWorkload;
  static constexpr const char* kName = "commit";
  static constexpr std::uint64_t kWorkloadSalt = 0xabcdefULL;
  static constexpr Duration kPaceHi = 6;  // matches commit_random_test pacing
  static constexpr CheckerSet kCheckers{true, true, true};

  CommitHarness(std::uint64_t seed, const StackWorkload& w);

  sim::Simulator& sim() { return cluster_.sim(); }
  commit::Cluster& cluster() { return cluster_; }
  void install_fault_injector(sim::FaultInjector* fi);
  void set_on_decision(std::function<void(TxnId, tcs::Decision)> fn);
  TxnId next_txn_id() { return cluster_.next_txn_id(); }
  bool submit(Rng& rng, TxnId txn, const tcs::Payload& payload);
  /// Submits the whole batch through one live coordinator (one
  /// PREPARE_BATCH per shard leader); false if no coordinator is live.
  bool submit_batch(Rng& rng,
                    const std::vector<std::pair<TxnId, tcs::Payload>>& batch);
  std::size_t decided_count() const { return client_->decided_count(); }
  std::size_t committed_count() { return cluster_.history().committed_count(); }
  /// Issues one read-only snapshot transaction over `objects` through the
  /// CSN fast path (zero certification messages); true iff it was served.
  /// Consumes only the caller's rng — drivers pass a dedicated read stream
  /// so the update trace is untouched.
  bool snapshot_read(Rng& rng, const std::vector<ObjectId>& objects);
  std::size_t reads_attempted() const { return reads_attempted_; }
  std::size_t reads_served() const { return reads_served_; }
  /// Runs the snapshot-read checker over the recorded history; empty iff
  /// every served read was a consistent, sufficiently fresh snapshot.
  std::string check_snapshot_reads();

  std::uint32_t num_shards() const { return cluster_.num_shards(); }
  std::vector<std::vector<ProcessId>> fault_units(ShardId s) const;
  std::vector<std::vector<ProcessId>> all_units() const;
  bool crash_and_reconfigure(Rng& rng, ShardId s);
  bool reconfigure_healthy(Rng& rng, ShardId s);
  void drain(Duration d, Rng& rng);
  /// Reconfiguration attempts the autonomous controllers started (0 when
  /// the workload did not enable them).
  std::size_t controller_attempts() const { return cluster_.controller_attempts(); }
  /// Aggregate recon::Engine counters over every reconfigurer.
  recon::EngineStats engine_stats() const { return cluster_.engine_stats(); }
  /// Per-engine spare-ledger invariant (empty iff balanced); asserted by
  /// every random sweep through apply_end_of_run_checks.
  std::string spare_ledger_verdict() const { return cluster_.spare_ledger_verdict(); }

  std::string verify() { return cluster_.verify(); }
  std::string check_linearization();
  std::string trace();

 private:
  std::vector<ProcessId> alive_members(ShardId s);

  StackWorkload w_;
  recon::ZoneAntiAffinityPolicy zone_policy_;  ///< selected by w.placement
  commit::Cluster cluster_;
  commit::Client* client_;
  std::size_t reads_attempted_ = 0;
  std::size_t reads_served_ = 0;
};

/// RDMA protocol (Figs. 7-8) in safe global-reconfiguration mode.
class RdmaHarness {
 public:
  using Workload = StackWorkload;
  static constexpr const char* kName = "rdma";
  static constexpr std::uint64_t kWorkloadSalt = 0x5eedULL;
  static constexpr Duration kPaceHi = 5;  // matches rdma_random_test pacing
  static constexpr CheckerSet kCheckers{true, true, true};

  RdmaHarness(std::uint64_t seed, const StackWorkload& w);

  sim::Simulator& sim() { return cluster_.sim(); }
  rdma::Cluster& cluster() { return cluster_; }
  void install_fault_injector(sim::FaultInjector* fi);
  void set_on_decision(std::function<void(TxnId, tcs::Decision)> fn);
  TxnId next_txn_id() { return cluster_.next_txn_id(); }
  bool submit(Rng& rng, TxnId txn, const tcs::Payload& payload);
  bool submit_batch(Rng& rng,
                    const std::vector<std::pair<TxnId, tcs::Payload>>& batch);
  std::size_t decided_count() const { return client_->decided_count(); }
  std::size_t committed_count() { return cluster_.history().committed_count(); }
  /// CSN fast-path read; see CommitHarness::snapshot_read.
  bool snapshot_read(Rng& rng, const std::vector<ObjectId>& objects);
  std::size_t reads_attempted() const { return reads_attempted_; }
  std::size_t reads_served() const { return reads_served_; }
  std::string check_snapshot_reads();

  std::uint32_t num_shards() const { return cluster_.shard_map().num_shards(); }
  std::vector<std::vector<ProcessId>> fault_units(ShardId s) const;
  std::vector<std::vector<ProcessId>> all_units() const;
  bool crash_and_reconfigure(Rng& rng, ShardId s);
  bool reconfigure_healthy(Rng& rng, ShardId s);
  void drain(Duration d, Rng& rng);
  std::size_t controller_attempts() const { return cluster_.controller_attempts(); }
  recon::EngineStats engine_stats() const { return cluster_.engine_stats(); }
  std::string spare_ledger_verdict() const { return cluster_.spare_ledger_verdict(); }

  std::string verify() { return cluster_.verify(); }
  std::string check_linearization();
  std::string trace();

 private:
  std::vector<ProcessId> alive_members(ShardId s);

  StackWorkload w_;
  recon::ZoneAntiAffinityPolicy zone_policy_;
  rdma::Cluster cluster_;
  rdma::Client* client_;
  std::size_t reads_attempted_ = 0;
  std::size_t reads_served_ = 0;
};

/// Vanilla 2PC-over-Paxos baseline: shards of 2f+1 servers, each paired
/// with a Paxos replica on the same machine.  Coordinator state is not
/// replicated, so a coordinator crash blocks its in-flight transactions —
/// the weakness the paper's protocols remove; sweeps document it by tuning
/// min_decided_fraction down.  No online monitor or TCS-LL oracle exists
/// for this stack: verify() checks decision agreement across replicas and
/// shards, and the black-box linearization DFS still applies.
class BaselineHarness {
 public:
  using Workload = StackWorkload;
  static constexpr const char* kName = "baseline";
  static constexpr std::uint64_t kWorkloadSalt = 0xba5e11eULL;
  static constexpr Duration kPaceHi = 6;
  static constexpr CheckerSet kCheckers{false, false, true};

  BaselineHarness(std::uint64_t seed, const StackWorkload& w);

  sim::Simulator& sim() { return cluster_.sim(); }
  baseline::BaselineCluster& cluster() { return cluster_; }
  void install_fault_injector(sim::FaultInjector* fi);
  void set_on_decision(std::function<void(TxnId, tcs::Decision)> fn);
  TxnId next_txn_id() { return cluster_.next_txn_id(); }
  bool submit(Rng& rng, TxnId txn, const tcs::Payload& payload);
  /// Groups the batch by 2PC coordinator (the leader of each transaction's
  /// first shard) and sends one B_CERTIFY_BATCH per group; false if every
  /// group's coordinator is crashed.
  bool submit_batch(Rng& rng,
                    const std::vector<std::pair<TxnId, tcs::Payload>>& batch);
  std::size_t decided_count() const { return client_->decided_count(); }
  std::size_t committed_count() { return cluster_.history().committed_count(); }
  /// CSN fast-path read, leader-gated for the baseline (no all-follower-ack
  /// rule, so only caught-up Paxos leaders serve); true iff served.
  bool snapshot_read(Rng& rng, const std::vector<ObjectId>& objects);
  std::size_t reads_attempted() const { return reads_attempted_; }
  std::size_t reads_served() const { return reads_served_; }
  std::string check_snapshot_reads();

  std::uint32_t num_shards() const { return cluster_.num_shards(); }
  std::vector<std::vector<ProcessId>> fault_units(ShardId s) const;
  std::vector<std::vector<ProcessId>> all_units() const;
  bool crash_and_reconfigure(Rng& rng, ShardId s);
  bool reconfigure_healthy(Rng& rng, ShardId s);
  void drain(Duration d, Rng& rng);

  /// Cooperative-termination counters aggregated over every shard server
  /// (all zero when the toggle is off).  Surfaced in RunResult so ladder
  /// sweeps can assert on the blocked/resolved columns directly.
  baseline::TerminationStats termination_stats() const {
    return cluster_.termination_stats();
  }

  std::string verify() { return cluster_.verify(); }
  std::string check_linearization();
  std::string trace();

 private:
  std::vector<ProcessId> alive_servers(ShardId s);

  StackWorkload w_;
  baseline::BaselineCluster cluster_;
  baseline::BaselineClient* client_;
  std::size_t reads_attempted_ = 0;
  std::size_t reads_served_ = 0;
};

/// The baseline with the strongest non-reconfigurable fix bolted on:
/// cooperative termination (participants resolve in-doubt transactions by
/// querying their peers — Gray & Lamport, "Consensus on Transaction
/// Commit").  Everything else — topology, workload salt, pacing, checkers —
/// is inherited unchanged, so a (seed, schedule) pair faces the classical
/// and cooperative variants with the identical workload and fault sequence,
/// isolating the termination protocol as the only difference.
class BaselineCoopHarness : public BaselineHarness {
 public:
  static constexpr const char* kName = "baseline-coop";

  BaselineCoopHarness(std::uint64_t seed, const StackWorkload& w)
      : BaselineHarness(seed, enable_coop(w)) {}

 private:
  static StackWorkload enable_coop(StackWorkload w) {
    w.cooperative_termination = true;
    return w;
  }
};

/// Paxos Commit (Gray & Lamport): the ladder's strongest classical rung.
/// Same machine topology, workload salt, pacing and checker set as the
/// baseline harnesses, so a (seed, schedule) pair faces all four rungs
/// with the identical workload and fault sequence — but every
/// participant's vote is a replicated consensus instance (src/pc/), so a
/// crashed coordinator never strands a fully-prepared transaction: the
/// recovery proposer resolves it from the chosen votes (zero all-prepared
/// blocked windows, asserted by the ladder sweeps).  verify() additionally
/// runs the serializability conflict-graph checker over the committed
/// projection — cheap here because the stack's histories stay small, and
/// it guards the one property the decision-agreement check cannot see
/// (cyclic commit orders).
class PaxosCommitHarness {
 public:
  using Workload = StackWorkload;
  static constexpr const char* kName = "paxos-commit";
  /// Deliberately the baseline's salt: identical workload streams per seed.
  static constexpr std::uint64_t kWorkloadSalt = 0xba5e11eULL;
  static constexpr Duration kPaceHi = 6;
  static constexpr CheckerSet kCheckers{false, false, true};

  PaxosCommitHarness(std::uint64_t seed, const StackWorkload& w);

  sim::Simulator& sim() { return cluster_.sim(); }
  pc::PcCluster& cluster() { return cluster_; }
  void install_fault_injector(sim::FaultInjector* fi);
  void set_on_decision(std::function<void(TxnId, tcs::Decision)> fn);
  TxnId next_txn_id() { return cluster_.next_txn_id(); }
  bool submit(Rng& rng, TxnId txn, const tcs::Payload& payload);
  /// Groups the batch by coordinator (the leader of each transaction's
  /// first shard) and sends one PC_CERTIFY_BATCH per group; false if every
  /// group's coordinator is crashed.
  bool submit_batch(Rng& rng,
                    const std::vector<std::pair<TxnId, tcs::Payload>>& batch);
  std::size_t decided_count() const { return client_->decided_count(); }
  std::size_t committed_count() { return cluster_.history().committed_count(); }
  /// CSN fast-path read, leader-gated like the baseline; true iff served.
  bool snapshot_read(Rng& rng, const std::vector<ObjectId>& objects);
  std::size_t reads_attempted() const { return reads_attempted_; }
  std::size_t reads_served() const { return reads_served_; }
  std::string check_snapshot_reads();

  std::uint32_t num_shards() const { return cluster_.num_shards(); }
  std::vector<std::vector<ProcessId>> fault_units(ShardId s) const;
  std::vector<std::vector<ProcessId>> all_units() const;
  bool crash_and_reconfigure(Rng& rng, ShardId s);
  bool reconfigure_healthy(Rng& rng, ShardId s);
  void drain(Duration d, Rng& rng);

  /// Vote-recovery counters (blocked counts only unreachable-peer give-ups
  /// here, never an all-prepared window — the ladder asserts 0 under pure
  /// coordinator crashes).
  pc::TerminationStats termination_stats() const {
    return cluster_.termination_stats();
  }

  /// Decision agreement across servers + the serializability conflict
  /// graph over the committed projection (skipped for other isolations).
  std::string verify();
  std::string check_linearization();
  std::string trace();

 private:
  std::vector<ProcessId> alive_servers(ShardId s);

  StackWorkload w_;
  pc::PcCluster cluster_;
  pc::PcClient* client_;
  std::size_t reads_attempted_ = 0;
  std::size_t reads_served_ = 0;
};

}  // namespace ratc::store
