// Versioned key-value store: the transactional data the TCS certifies.
//
// Objects carry totally ordered versions (paper Sec. 2).  The store holds
// the *committed* state; optimistic execution reads it, and committed
// payloads are applied back to it.  This provides the Sec. 2 assumption
// that "transactions submitted for certification only read versions written
// by previously committed transactions".
#pragma once

#include <map>

#include "common/types.h"
#include "tcs/payload.h"

namespace ratc::store {

struct VersionedValue {
  Value value = 0;
  Version version = 0;  ///< 0 = never written
};

class VersionedStore {
 public:
  /// Latest committed value/version (default-initialized if never written).
  VersionedValue read(ObjectId object) const {
    auto it = data_.find(object);
    return it == data_.end() ? VersionedValue{} : it->second;
  }

  /// Applies the writes of a committed payload at its commit version.
  /// Out-of-order application is tolerated: only newer versions overwrite.
  void apply(const tcs::Payload& payload) {
    for (const auto& w : payload.writes) {
      VersionedValue& v = data_[w.object];
      if (payload.commit_version > v.version) {
        v.value = w.value;
        v.version = payload.commit_version;
      }
    }
  }

  std::size_t size() const { return data_.size(); }

 private:
  std::map<ObjectId, VersionedValue> data_;
};

}  // namespace ratc::store
