// Versioned key-value store: the transactional data the TCS certifies.
//
// Objects carry totally ordered versions (paper Sec. 2).  The store holds
// the *committed* state; optimistic execution reads it, and committed
// payloads are applied back to it.  This provides the Sec. 2 assumption
// that "transactions submitted for certification only read versions written
// by previously committed transactions".
#pragma once

#include <algorithm>
#include <map>
#include <optional>
#include <vector>

#include "common/types.h"
#include "tcs/csn.h"
#include "tcs/payload.h"

namespace ratc::store {

struct VersionedValue {
  Value value = 0;
  Version version = 0;  ///< 0 = never written
};

class VersionedStore {
 public:
  /// Latest committed value/version (default-initialized if never written).
  VersionedValue read(ObjectId object) const {
    auto it = data_.find(object);
    return it == data_.end() ? VersionedValue{} : it->second;
  }

  /// Applies the writes of a committed payload at its commit version.
  /// Out-of-order application is tolerated: only newer versions overwrite.
  void apply(const tcs::Payload& payload) {
    for (const auto& w : payload.writes) {
      VersionedValue& v = data_[w.object];
      if (payload.commit_version > v.version) {
        v.value = w.value;
        v.version = payload.commit_version;
      }
    }
  }

  std::size_t size() const { return data_.size(); }

 private:
  std::map<ObjectId, VersionedValue> data_;
};

/// One retained committed version of one object, tagged with the csn of the
/// transaction that wrote it.
struct SnapVersion {
  Version version = 0;
  Value value = 0;
  tcs::Csn csn;
};

/// Multi-version committed store for the CSN read fast path: per object, a
/// bounded history of committed versions ordered by csn, so a read at any
/// snapshot at or below the replica's watermark resolves locally.
///
/// Snapshot visibility is gated on the csn alone, never on apply order:
/// `apply_at` inserts into csn position, so decisions landing out of order
/// (the VersionedStore::apply hole this replaces on the read path) can never
/// expose a non-prefix state — a version is visible at snapshot c iff its
/// writer's csn <= c, and the caller only reads at snapshots the watermark
/// proves complete.
class SnapshotStore {
 public:
  explicit SnapshotStore(std::size_t history_depth = 16)
      : history_depth_(history_depth == 0 ? 1 : history_depth) {}

  /// Applies the writes of a committed payload at the writer's csn.
  void apply_at(const tcs::Payload& payload, tcs::Csn csn) {
    for (const auto& w : payload.writes) {
      ObjHistory& h = data_[w.object];
      // Idempotent: a duplicate decision re-applies the same csn.
      auto dup = std::find_if(h.versions.begin(), h.versions.end(),
                              [&](const SnapVersion& v) { return v.csn == csn; });
      if (dup != h.versions.end()) continue;
      SnapVersion v{payload.commit_version, w.value, csn};
      auto pos = std::upper_bound(
          h.versions.begin(), h.versions.end(), v,
          [](const SnapVersion& a, const SnapVersion& b) { return a.csn < b.csn; });
      h.versions.insert(pos, v);
      while (h.versions.size() > history_depth_) {
        h.versions.erase(h.versions.begin());
        h.truncated = true;
      }
    }
  }

  /// Latest version with csn <= snapshot.  Returns nullopt when the answer
  /// is unknowable: the history below the snapshot was truncated away.  An
  /// object never written below the snapshot reads as version 0.
  std::optional<VersionedValue> read_at(ObjectId object, tcs::Csn snapshot) const {
    auto it = data_.find(object);
    if (it == data_.end()) return VersionedValue{};
    const ObjHistory& h = it->second;
    const SnapVersion* best = nullptr;
    for (const SnapVersion& v : h.versions) {
      if (v.csn <= snapshot) best = &v;
      else break;
    }
    if (best != nullptr) return VersionedValue{best->value, best->version};
    // Nothing retained at or below the snapshot: either the object truly
    // did not exist there, or the evidence was truncated.
    if (h.truncated) return std::nullopt;
    return VersionedValue{};
  }

  /// Drops everything (NEW_STATE / NEW_CONFIG rebuild from the log).
  void clear() { data_.clear(); }

  std::size_t size() const { return data_.size(); }
  std::size_t history_depth() const { return history_depth_; }

 private:
  struct ObjHistory {
    std::vector<SnapVersion> versions;  ///< csn-ascending
    bool truncated = false;             ///< oldest versions evicted
  };
  std::size_t history_depth_;
  std::map<ObjectId, ObjHistory> data_;
};

}  // namespace ratc::store
