// Optimistic transaction executor (paper Sec. 2): runs a transaction's
// reads/writes against the committed store, producing the payload
// <R, W, Vc> submitted for certification.
#pragma once

#include <algorithm>

#include "store/versioned_store.h"
#include "tcs/payload.h"

namespace ratc::store {

class TransactionExecutor {
 public:
  explicit TransactionExecutor(const VersionedStore& store) : store_(&store) {}

  /// Reads the latest committed value, recording the version in R.
  Value read(ObjectId object) {
    VersionedValue v = store_->read(object);
    if (!payload_.reads_object(object)) {
      payload_.reads.push_back({object, v.version});
      max_read_version_ = std::max(max_read_version_, v.version);
    }
    // Read-your-writes within the transaction.
    for (const auto& w : payload_.writes) {
      if (w.object == object) return w.value;
    }
    return v.value;
  }

  /// Buffers a write; reads the object first (the payload well-formedness
  /// requirement that written objects are also read).
  void write(ObjectId object, Value value) {
    if (!payload_.reads_object(object)) read(object);
    for (auto& w : payload_.writes) {
      if (w.object == object) {
        w.value = value;
        return;
      }
    }
    payload_.writes.push_back({object, value});
  }

  /// Finalizes the payload: Vc exceeds every version read.
  tcs::Payload finish() {
    payload_.commit_version = payload_.writes.empty() ? 0 : max_read_version_ + 1;
    return payload_;
  }

 private:
  const VersionedStore* store_;
  tcs::Payload payload_;
  Version max_read_version_ = 0;
};

}  // namespace ratc::store
