// Closed-loop workload runner: drives any TCS implementation (the paper's
// protocol, the RDMA variant, or the 2PC-over-Paxos baseline) with the same
// workload, applying committed writes back to the store.  Used by the
// end-to-end tests, the examples and every throughput/abort-rate bench.
#pragma once

#include <functional>
#include <map>

#include "common/types.h"
#include "sim/simulator.h"
#include "store/versioned_store.h"
#include "tcs/decision.h"
#include "tcs/payload.h"

namespace ratc::store {

/// Minimal submission interface over a TCS implementation.
class TcsFrontend {
 public:
  virtual ~TcsFrontend() = default;
  virtual TxnId next_txn_id() = 0;
  /// Submits asynchronously; the decision is reported through on_decision
  /// (possibly never, if a coordinator dies and recovery is disabled).
  virtual void submit(TxnId txn, const tcs::Payload& payload) = 0;

  std::function<void(TxnId, tcs::Decision)> on_decision;
};

struct RunnerStats {
  std::size_t submitted = 0;
  std::size_t committed = 0;
  std::size_t aborted = 0;
  std::size_t undecided = 0;
  Duration total_latency = 0;   ///< sum over decided transactions
  Time wall_time = 0;           ///< virtual time consumed by the run

  double abort_rate() const {
    std::size_t decided = committed + aborted;
    return decided == 0 ? 0.0 : static_cast<double>(aborted) / static_cast<double>(decided);
  }
  double mean_latency() const {
    std::size_t decided = committed + aborted;
    return decided == 0 ? 0.0
                        : static_cast<double>(total_latency) / static_cast<double>(decided);
  }
  /// Committed transactions per 1000 virtual ticks.
  double throughput() const {
    return wall_time == 0 ? 0.0
                          : 1000.0 * static_cast<double>(committed) /
                                static_cast<double>(wall_time);
  }
};

class WorkloadRunner {
 public:
  /// `next_payload` executes one transaction against the committed store.
  WorkloadRunner(sim::Simulator& sim, TcsFrontend& frontend, VersionedStore& db,
                 std::function<tcs::Payload(const VersionedStore&)> next_payload,
                 std::size_t window = 8)
      : sim_(sim),
        frontend_(frontend),
        db_(db),
        next_payload_(std::move(next_payload)),
        window_(window) {
    frontend_.on_decision = [this](TxnId txn, tcs::Decision d) {
      auto it = in_flight_.find(txn);
      if (it == in_flight_.end()) return;
      if (d == tcs::Decision::kCommit) {
        db_.apply(it->second.payload);
        ++stats_.committed;
      } else {
        ++stats_.aborted;
      }
      stats_.total_latency += sim_.now() - it->second.submitted_at;
      in_flight_.erase(it);
      ++completed_;
    };
  }

  /// Issues `txns` new transactions (on top of any previous run() calls)
  /// and drives the simulation until they all decide or progress stops.
  /// Stats are cumulative across calls.
  RunnerStats run(std::size_t txns, std::size_t max_events_per_step = 500'000) {
    Time start = sim_.now();
    std::size_t target_issued = issued_ + txns;
    auto pump = [&] {
      while (issued_ < target_issued && in_flight_.size() < window_) {
        tcs::Payload p = next_payload_(db_);
        TxnId txn = frontend_.next_txn_id();
        in_flight_[txn] = {p, sim_.now()};
        ++issued_;
        ++stats_.submitted;
        frontend_.submit(txn, p);
      }
    };
    pump();
    while (completed_ < target_issued) {
      std::size_t before = completed_;
      bool progressed = sim_.run_until_pred([&] { return completed_ > before; },
                                            max_events_per_step);
      if (!progressed) break;  // no decision forthcoming (e.g. lost coordinator)
      pump();
    }
    stats_.undecided = in_flight_.size();
    stats_.wall_time += sim_.now() - start;
    return stats_;
  }

  const RunnerStats& stats() const { return stats_; }

 private:
  struct InFlight {
    tcs::Payload payload;
    Time submitted_at = 0;
  };

  sim::Simulator& sim_;
  TcsFrontend& frontend_;
  VersionedStore& db_;
  std::function<tcs::Payload(const VersionedStore&)> next_payload_;
  std::size_t window_;
  std::map<TxnId, InFlight> in_flight_;
  std::size_t issued_ = 0;
  std::size_t completed_ = 0;
  RunnerStats stats_;
};

}  // namespace ratc::store
