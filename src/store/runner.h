// Closed-loop workload runner: drives any TCS implementation (the paper's
// protocol, the RDMA variant, or the 2PC-over-Paxos baseline) with the same
// workload, applying committed writes back to the store.  Used by the
// end-to-end tests, the examples and every throughput/abort-rate bench.
//
// Batching: with batch_size > 1 the runner window-fills — it gathers up to
// batch_size ready transactions (bounded by the open window) and hands them
// to the frontend in ONE submit_batch call, which the batched frontends
// turn into one CERTIFY round / one Paxos append for the whole group.
// Epochs are pipelined: the runner refills as soon as ANY in-flight
// transaction decides, so the next batch's certification overlaps the
// previous batch's apply instead of waiting for the whole batch to drain.
// batch_size == 1 degenerates to scalar submit() and is bit-identical to
// the unbatched runner.
#pragma once

#include <algorithm>
#include <cmath>
#include <functional>
#include <map>
#include <optional>
#include <utility>
#include <vector>

#include "common/types.h"
#include "sim/simulator.h"
#include "store/versioned_store.h"
#include "tcs/csn.h"
#include "tcs/decision.h"
#include "tcs/payload.h"

namespace ratc::store {

/// Minimal submission interface over a TCS implementation.
class TcsFrontend {
 public:
  virtual ~TcsFrontend() = default;
  virtual TxnId next_txn_id() = 0;
  /// Submits asynchronously; the decision is reported through on_decision
  /// (possibly never, if a coordinator dies and recovery is disabled).
  virtual void submit(TxnId txn, const tcs::Payload& payload) = 0;

  /// Submits a whole batch in one certification round.  The default loops
  /// over submit(); batched frontends override it to group the payloads
  /// into one CERTIFY message / one Paxos append per destination.
  virtual void submit_batch(
      const std::vector<std::pair<TxnId, tcs::Payload>>& batch) {
    for (const auto& [txn, payload] : batch) submit(txn, payload);
  }

  /// Read-only snapshot transaction over the CSN fast path: executes
  /// synchronously at one replica per involved shard with ZERO
  /// certification messages, returning the snapshot it read at.  With
  /// staleness_bound > 0 the snapshot must lag "now" by at most the bound.
  /// The default reports the read unservable; frontends whose stack carries
  /// a CSN log override it.
  virtual std::optional<tcs::Csn> submit_read_only(
      const std::vector<ObjectId>& objects, Duration staleness_bound = 0) {
    (void)objects;
    (void)staleness_bound;
    return std::nullopt;
  }

  std::function<void(TxnId, tcs::Decision)> on_decision;
};

struct RunnerStats {
  std::size_t submitted = 0;
  std::size_t committed = 0;
  std::size_t aborted = 0;
  /// Transactions still undecided at the end of the run.  Their latency is
  /// CENSORED — unknown but at least the run's remaining duration — so the
  /// latency aggregates below exclude them by construction.  Compare
  /// latency_censored against committed+aborted before trusting
  /// mean/p50/p99 on runs with failures: a run that decides the fast half
  /// of its transactions and strands the slow half reports a rosy mean.
  std::size_t undecided = 0;
  Duration total_latency = 0;   ///< sum over decided transactions
  Time wall_time = 0;           ///< virtual time consumed by the run
  /// Per-transaction certify-to-decide latencies (decided txns only), in
  /// submission-completion order; source for the percentiles.
  std::vector<Duration> latency_samples;

  double abort_rate() const {
    std::size_t decided = committed + aborted;
    return decided == 0 ? 0.0 : static_cast<double>(aborted) / static_cast<double>(decided);
  }
  /// Mean over DECIDED transactions only; see `undecided` for the censored
  /// count this average silently drops.
  double mean_latency() const {
    std::size_t decided = committed + aborted;
    return decided == 0 ? 0.0
                        : static_cast<double>(total_latency) / static_cast<double>(decided);
  }
  /// Number of latency observations censored by the end of the run (alias
  /// of `undecided`, named for what it means to the latency columns).
  std::size_t latency_censored() const { return undecided; }
  double committed_fraction() const {
    return submitted == 0 ? 0.0
                          : static_cast<double>(committed) / static_cast<double>(submitted);
  }
  /// Latency percentile over decided transactions (q in [0,1], nearest-rank);
  /// 0 when no transaction decided.
  Duration latency_percentile(double q) const {
    if (latency_samples.empty()) return 0;
    std::vector<Duration> sorted = latency_samples;
    std::sort(sorted.begin(), sorted.end());
    // Classic nearest-rank: 1-based rank ceil(q*n), clamped to [1, n] so
    // q=0 maps to the minimum and q=1 to the maximum.
    std::size_t rank = static_cast<std::size_t>(
        std::ceil(q * static_cast<double>(sorted.size())));
    rank = std::min(std::max<std::size_t>(rank, 1), sorted.size());
    return sorted[rank - 1];
  }
  Duration p50_latency() const { return latency_percentile(0.50); }
  Duration p99_latency() const { return latency_percentile(0.99); }
  /// Committed transactions per 1000 virtual ticks.
  double throughput() const {
    return wall_time == 0 ? 0.0
                          : 1000.0 * static_cast<double>(committed) /
                                static_cast<double>(wall_time);
  }
};

class WorkloadRunner {
 public:
  /// `next_payload` executes one transaction against the committed store.
  /// `batch_size` transactions are grouped into each submit_batch call
  /// (1 = scalar submission, identical to the pre-batching runner).
  WorkloadRunner(sim::Simulator& sim, TcsFrontend& frontend, VersionedStore& db,
                 std::function<tcs::Payload(const VersionedStore&)> next_payload,
                 std::size_t window = 8, std::size_t batch_size = 1)
      : sim_(sim),
        frontend_(frontend),
        db_(db),
        next_payload_(std::move(next_payload)),
        window_(window),
        batch_size_(std::max<std::size_t>(1, batch_size)) {
    frontend_.on_decision = [this](TxnId txn, tcs::Decision d) {
      auto it = in_flight_.find(txn);
      if (it == in_flight_.end()) return;
      if (d == tcs::Decision::kCommit) {
        db_.apply(it->second.payload);
        ++stats_.committed;
      } else {
        ++stats_.aborted;
      }
      Duration lat = sim_.now() - it->second.submitted_at;
      stats_.total_latency += lat;
      stats_.latency_samples.push_back(lat);
      in_flight_.erase(it);
      ++completed_;
    };
  }

  /// Issues `txns` new transactions (on top of any previous run() calls)
  /// and drives the simulation until they all decide or progress stops.
  /// Stats are cumulative across calls.
  RunnerStats run(std::size_t txns, std::size_t max_events_per_step = 500'000) {
    Time start = sim_.now();
    std::size_t target_issued = issued_ + txns;
    auto pump = [&] {
      // Window-fill: gather up to batch_size payloads (bounded by the open
      // window), register them in-flight BEFORE submitting — a co-located
      // coordinator can decide synchronously within submit_batch — and hand
      // the group to the frontend in one call.  Partial batches flush
      // immediately rather than waiting for stragglers: this is a closed
      // loop, so holding back the tail would deadlock the window.
      while (issued_ < target_issued && in_flight_.size() < window_) {
        std::size_t room = std::min(window_ - in_flight_.size(),
                                    target_issued - issued_);
        std::size_t n = std::min(batch_size_, room);
        std::vector<std::pair<TxnId, tcs::Payload>> batch;
        batch.reserve(n);
        for (std::size_t i = 0; i < n; ++i) {
          tcs::Payload p = next_payload_(db_);
          TxnId txn = frontend_.next_txn_id();
          in_flight_[txn] = {p, sim_.now()};
          ++issued_;
          ++stats_.submitted;
          batch.emplace_back(txn, std::move(p));
        }
        if (batch.size() == 1) {
          frontend_.submit(batch.front().first, batch.front().second);
        } else {
          frontend_.submit_batch(batch);
        }
      }
    };
    pump();
    while (completed_ < target_issued) {
      std::size_t before = completed_;
      bool progressed = sim_.run_until_pred([&] { return completed_ > before; },
                                            max_events_per_step);
      if (!progressed) break;  // no decision forthcoming (e.g. lost coordinator)
      pump();
    }
    stats_.undecided = in_flight_.size();
    stats_.wall_time += sim_.now() - start;
    return stats_;
  }

  const RunnerStats& stats() const { return stats_; }

 private:
  struct InFlight {
    tcs::Payload payload;
    Time submitted_at = 0;
  };

  sim::Simulator& sim_;
  TcsFrontend& frontend_;
  VersionedStore& db_;
  std::function<tcs::Payload(const VersionedStore&)> next_payload_;
  std::size_t window_;
  std::size_t batch_size_;
  std::map<TxnId, InFlight> in_flight_;
  std::size_t issued_ = 0;
  std::size_t completed_ = 0;
  RunnerStats stats_;
};

}  // namespace ratc::store
