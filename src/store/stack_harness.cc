#include "store/stack_harness.h"

#include <stdexcept>
#include <utility>

#include "checker/conflict_graph.h"
#include "checker/linearization.h"
#include "checker/snapshot.h"

namespace ratc::store {

namespace {

/// Resolves StackWorkload::placement against the policies the harness owns.
/// Null means "engine default" (recon::ReplaceSuspectsPolicy).
recon::PlacementPolicy* select_placement(const StackWorkload& w,
                                         recon::ZoneAntiAffinityPolicy* zone) {
  if (w.placement.empty() || w.placement == "replace-suspects") return nullptr;
  if (w.placement == "zone-anti-affinity") return zone;
  throw std::invalid_argument("unknown StackWorkload::placement: " + w.placement);
}

std::string lin_verdict(const tcs::History& history, const tcs::Certifier& certifier) {
  checker::LinearizationResult lin = checker::check_linearization(history, certifier);
  return lin.ok ? "" : "linearization: " + lin.error;
}

std::string snapshot_verdict(const tcs::History& history) {
  checker::SnapshotReadResult r = checker::check_snapshot_reads(history);
  return r.ok ? "" : "snapshot reads: " + r.error;
}

// The commit and RDMA clusters expose the same surface (current_config,
// replica_by_pid, sim, certify_colocated clients); these helpers hold the
// shared coordinator-pick and topology logic so it cannot drift between
// the two harnesses.

template <typename ClusterT, typename ClientT>
bool submit_colocated(ClusterT& cluster, ClientT& client, Rng& rng,
                      std::uint32_t num_shards, TxnId txn,
                      const tcs::Payload& payload) {
  for (int attempts = 0; attempts < 20; ++attempts) {
    ShardId s = static_cast<ShardId>(rng.below(num_shards));
    configsvc::ShardConfig cfg = cluster.current_config(s);
    if (cfg.members.empty()) continue;
    ProcessId pid = cfg.members[rng.below(cfg.members.size())];
    if (cluster.sim().crashed(pid)) continue;
    auto& r = cluster.replica_by_pid(pid);
    if (r.epoch() != cfg.epoch) continue;  // stale view: cannot coordinate
    client.certify_colocated(r, txn, payload);
    return true;
  }
  return false;  // no live coordinator: the transaction stays undecided
}

/// Batched variant of submit_colocated: the same seeded coordinator pick,
/// but the whole batch rides one certify_batch_colocated call.
template <typename ClusterT, typename ClientT>
bool submit_batch_colocated(
    ClusterT& cluster, ClientT& client, Rng& rng, std::uint32_t num_shards,
    const std::vector<std::pair<TxnId, tcs::Payload>>& batch) {
  for (int attempts = 0; attempts < 20; ++attempts) {
    ShardId s = static_cast<ShardId>(rng.below(num_shards));
    configsvc::ShardConfig cfg = cluster.current_config(s);
    if (cfg.members.empty()) continue;
    ProcessId pid = cfg.members[rng.below(cfg.members.size())];
    if (cluster.sim().crashed(pid)) continue;
    auto& r = cluster.replica_by_pid(pid);
    if (r.epoch() != cfg.epoch) continue;
    client.certify_batch_colocated(r, batch);
    return true;
  }
  return false;
}

template <typename ClusterT>
std::vector<ProcessId> alive_config_members(ClusterT& cluster, ShardId s) {
  std::vector<ProcessId> alive;
  for (ProcessId m : cluster.current_config(s).members) {
    if (!cluster.sim().crashed(m)) alive.push_back(m);
  }
  return alive;
}

template <typename ClusterT>
std::vector<std::vector<ProcessId>> member_units(const ClusterT& cluster, ShardId s) {
  std::vector<std::vector<ProcessId>> units;
  for (ProcessId m : cluster.current_config(s).members) units.push_back({m});
  return units;
}

template <typename ClusterT>
std::vector<std::vector<ProcessId>> member_units_all(const ClusterT& cluster,
                                                     std::uint32_t num_shards) {
  std::vector<std::vector<ProcessId>> units;
  for (ShardId s = 0; s < num_shards; ++s) {
    for (auto& u : member_units(cluster, s)) units.push_back(std::move(u));
  }
  return units;
}

}  // namespace

// --- commit ---------------------------------------------------------------------

CommitHarness::CommitHarness(std::uint64_t seed, const StackWorkload& w)
    : w_(w),
      cluster_({.seed = seed,
                .num_shards = w.num_shards,
                .shard_size = w.shard_size,
                .spares_per_shard = w.spares_per_shard,
                .isolation = w.isolation,
                .retry_timeout = w.retry_timeout,
                .exponential_delays = w.exponential_delays,
                .enable_tracer = w.capture_trace,
                .enable_controller = w.autonomous_controller,
                .controller_tuning = w.controller,
                .placement_policy = select_placement(w, &zone_policy_),
                .num_zones = w.num_zones,
                .check_certifier_index = w.check_certifier_index}),
      client_(&cluster_.add_client()) {}

void CommitHarness::install_fault_injector(sim::FaultInjector* fi) {
  cluster_.net().set_fault_injector(fi);
}

void CommitHarness::set_on_decision(std::function<void(TxnId, tcs::Decision)> fn) {
  client_->on_decision = std::move(fn);
}

bool CommitHarness::submit(Rng& rng, TxnId txn, const tcs::Payload& payload) {
  return submit_colocated(cluster_, *client_, rng, w_.num_shards, txn, payload);
}

bool CommitHarness::submit_batch(
    Rng& rng, const std::vector<std::pair<TxnId, tcs::Payload>>& batch) {
  return submit_batch_colocated(cluster_, *client_, rng, w_.num_shards, batch);
}

bool CommitHarness::snapshot_read(Rng& rng, const std::vector<ObjectId>& objects) {
  ++reads_attempted_;
  bool served =
      cluster_.snapshot_read(objects, w_.read_staleness_bound, rng.below(64))
          .has_value();
  if (served) ++reads_served_;
  return served;
}

std::string CommitHarness::check_snapshot_reads() {
  return snapshot_verdict(cluster_.history());
}

std::vector<ProcessId> CommitHarness::alive_members(ShardId s) {
  return alive_config_members(cluster_, s);
}

std::vector<std::vector<ProcessId>> CommitHarness::fault_units(ShardId s) const {
  return member_units(cluster_, s);
}

std::vector<std::vector<ProcessId>> CommitHarness::all_units() const {
  return member_units_all(cluster_, num_shards());
}

bool CommitHarness::crash_and_reconfigure(Rng& rng, ShardId s) {
  configsvc::ShardConfig cfg = cluster_.current_config(s);
  std::vector<ProcessId> alive = alive_members(s);
  // Keep Assumption 1: only crash when the whole configuration is still up
  // and a survivor remains to drive reconfiguration.
  if (alive.size() < cfg.members.size() || alive.size() <= 1) return false;
  ProcessId victim = alive[rng.below(alive.size())];
  cluster_.crash(victim);
  // Crash-only nemesis: no omniscient repair — the autonomous controller
  // (if enabled) must detect the crash and reconfigure on its own.
  if (!w_.harness_repair) return true;
  ProcessId survivor = kNoProcess;
  for (ProcessId m : alive) {
    if (m != victim) survivor = m;
  }
  cluster_.reconfigure(s, survivor);
  cluster_.await_active_epoch(s, cfg.epoch + 1, 200'000);
  return true;
}

bool CommitHarness::reconfigure_healthy(Rng& rng, ShardId s) {
  configsvc::ShardConfig cfg = cluster_.current_config(s);
  std::vector<ProcessId> alive = alive_members(s);
  if (alive.empty()) return false;
  // Any current member may trigger it (Fig. 1 line 33).
  cluster_.reconfigure(s, alive[rng.below(alive.size())]);
  cluster_.await_active_epoch(s, cfg.epoch + 1, 200'000);
  return true;
}

void CommitHarness::drain(Duration d, Rng& rng) {
  (void)rng;
  cluster_.sim().run_until(cluster_.sim().now() + d);
}

std::string CommitHarness::check_linearization() {
  return lin_verdict(cluster_.history(), cluster_.certifier());
}

std::string CommitHarness::trace() {
  return w_.capture_trace ? cluster_.tracer().render() : "";
}

// --- rdma -----------------------------------------------------------------------

RdmaHarness::RdmaHarness(std::uint64_t seed, const StackWorkload& w)
    : w_(w),
      cluster_({.seed = seed,
                .num_shards = w.num_shards,
                .shard_size = w.shard_size,
                .spares_per_shard = w.spares_per_shard,
                .isolation = w.isolation,
                .retry_timeout = w.retry_timeout,
                .enable_tracer = w.capture_trace,
                .enable_controller = w.autonomous_controller,
                .controller_tuning = w.controller,
                .placement_policy = select_placement(w, &zone_policy_),
                .num_zones = w.num_zones,
                .check_certifier_index = w.check_certifier_index}),
      client_(&cluster_.add_client()) {}

void RdmaHarness::install_fault_injector(sim::FaultInjector* fi) {
  cluster_.net().set_fault_injector(fi);
  if (w_.faults_on_fabric) cluster_.fabric().set_fault_injector(fi);
}

void RdmaHarness::set_on_decision(std::function<void(TxnId, tcs::Decision)> fn) {
  client_->on_decision = std::move(fn);
}

bool RdmaHarness::submit(Rng& rng, TxnId txn, const tcs::Payload& payload) {
  return submit_colocated(cluster_, *client_, rng, w_.num_shards, txn, payload);
}

bool RdmaHarness::submit_batch(
    Rng& rng, const std::vector<std::pair<TxnId, tcs::Payload>>& batch) {
  return submit_batch_colocated(cluster_, *client_, rng, w_.num_shards, batch);
}

bool RdmaHarness::snapshot_read(Rng& rng, const std::vector<ObjectId>& objects) {
  ++reads_attempted_;
  bool served =
      cluster_.snapshot_read(objects, w_.read_staleness_bound, rng.below(64))
          .has_value();
  if (served) ++reads_served_;
  return served;
}

std::string RdmaHarness::check_snapshot_reads() {
  return snapshot_verdict(cluster_.history());
}

std::vector<ProcessId> RdmaHarness::alive_members(ShardId s) {
  return alive_config_members(cluster_, s);
}

std::vector<std::vector<ProcessId>> RdmaHarness::fault_units(ShardId s) const {
  return member_units(cluster_, s);
}

std::vector<std::vector<ProcessId>> RdmaHarness::all_units() const {
  return member_units_all(cluster_, num_shards());
}

bool RdmaHarness::crash_and_reconfigure(Rng& rng, ShardId s) {
  configsvc::ShardConfig cfg = cluster_.current_config(s);
  std::vector<ProcessId> alive = alive_members(s);
  if (alive.size() < cfg.members.size() || alive.size() <= 1) return false;
  ProcessId victim = alive[rng.below(alive.size())];
  cluster_.crash(victim);
  if (!w_.harness_repair) return true;  // crash-only nemesis (see CommitHarness)
  ProcessId survivor = victim == alive[0] ? alive[1] : alive[0];
  Epoch before = cluster_.current_epoch();
  cluster_.replica_by_pid(survivor).reconfigure();
  cluster_.await_active_epoch(before + 1, 200'000);
  return true;
}

bool RdmaHarness::reconfigure_healthy(Rng& rng, ShardId s) {
  std::vector<ProcessId> alive = alive_members(s);
  if (alive.empty()) return false;
  // Global reconfiguration with no failure: the safe protocol's only (and
  // most expensive) reconfiguration lever.
  Epoch before = cluster_.current_epoch();
  cluster_.replica_by_pid(alive[rng.below(alive.size())]).reconfigure();
  cluster_.await_active_epoch(before + 1, 200'000);
  return true;
}

void RdmaHarness::drain(Duration d, Rng& rng) {
  (void)rng;
  cluster_.sim().run_until(cluster_.sim().now() + d);
}

std::string RdmaHarness::check_linearization() {
  return lin_verdict(cluster_.history(), cluster_.certifier());
}

std::string RdmaHarness::trace() {
  return w_.capture_trace ? cluster_.tracer().render() : "";
}

// --- baseline -------------------------------------------------------------------

BaselineHarness::BaselineHarness(std::uint64_t seed, const StackWorkload& w)
    : w_(w),
      cluster_({.seed = seed,
                .num_shards = w.num_shards,
                .shard_size = w.shard_size,
                .isolation = w.isolation,
                .exponential_delays = w.exponential_delays,
                .enable_tracer = w.capture_trace,
                .cooperative_termination = w.cooperative_termination}),
      client_(&cluster_.add_client()) {}

void BaselineHarness::install_fault_injector(sim::FaultInjector* fi) {
  cluster_.net().set_fault_injector(fi);
}

void BaselineHarness::set_on_decision(std::function<void(TxnId, tcs::Decision)> fn) {
  client_->on_decision = std::move(fn);
}

bool BaselineHarness::submit(Rng& rng, TxnId txn, const tcs::Payload& payload) {
  (void)rng;  // routing is deterministic: the leader of the first shard
  ProcessId coordinator = cluster_.coordinator_for(payload);
  if (cluster_.sim().crashed(coordinator)) return false;
  client_->certify(coordinator, txn, payload);
  return true;
}

bool BaselineHarness::submit_batch(
    Rng& rng, const std::vector<std::pair<TxnId, tcs::Payload>>& batch) {
  (void)rng;
  std::map<ProcessId, std::vector<std::pair<TxnId, tcs::Payload>>> groups;
  for (const auto& item : batch) {
    groups[cluster_.coordinator_for(item.second)].push_back(item);
  }
  bool any = false;
  for (auto& [coordinator, group] : groups) {
    if (cluster_.sim().crashed(coordinator)) continue;
    client_->certify_batch(coordinator, group);
    any = true;
  }
  return any;
}

bool BaselineHarness::snapshot_read(Rng& rng, const std::vector<ObjectId>& objects) {
  (void)rng;  // leader-gated: no member rotation to randomize
  ++reads_attempted_;
  bool served =
      cluster_.snapshot_read(objects, w_.read_staleness_bound).has_value();
  if (served) ++reads_served_;
  return served;
}

std::string BaselineHarness::check_snapshot_reads() {
  return snapshot_verdict(cluster_.history());
}

std::vector<ProcessId> BaselineHarness::alive_servers(ShardId s) {
  std::vector<ProcessId> alive;
  for (ProcessId m : cluster_.shard_servers(s)) {
    if (!cluster_.sim().crashed(m)) alive.push_back(m);
  }
  return alive;
}

std::vector<std::vector<ProcessId>> BaselineHarness::fault_units(ShardId s) const {
  // A baseline machine hosts the shard server and its Paxos replica; a
  // partition or clock fault hits both.
  std::vector<std::vector<ProcessId>> units;
  for (ProcessId m : cluster_.shard_servers(s)) {
    units.push_back({m, cluster_.paxos_twin(m)});
  }
  return units;
}

std::vector<std::vector<ProcessId>> BaselineHarness::all_units() const {
  std::vector<std::vector<ProcessId>> units;
  for (ShardId s = 0; s < cluster_.num_shards(); ++s) {
    for (auto& u : fault_units(s)) units.push_back(std::move(u));
  }
  return units;
}

bool BaselineHarness::crash_and_reconfigure(Rng& rng, ShardId s) {
  std::vector<ProcessId> alive = alive_servers(s);
  std::size_t majority = w_.shard_size / 2 + 1;
  // Keep a Paxos majority alive after the crash.
  if (alive.size() <= majority) return false;
  ProcessId victim = alive[rng.below(alive.size())];
  bool was_leader = victim == cluster_.leader_server(s);
  cluster_.crash_server(victim);
  if (!w_.harness_repair) return true;  // crash-only nemesis: no failover
  if (was_leader) {
    // Fail leadership over to a survivor.  Coordinator state held by the
    // victim is NOT recovered — classical 2PC blocks those transactions.
    ProcessId survivor = kNoProcess;
    for (ProcessId m : alive) {
      if (m != victim) survivor = m;
    }
    cluster_.elect_leader(s, survivor);
  }
  sim().run_until(sim().now() + 300);
  return true;
}

bool BaselineHarness::reconfigure_healthy(Rng& rng, ShardId s) {
  // The baseline cannot change membership; a leadership handover is its
  // only reconfiguration analogue.
  std::vector<ProcessId> alive = alive_servers(s);
  if (alive.empty()) return false;
  cluster_.elect_leader(s, alive[rng.below(alive.size())]);
  sim().run_until(sim().now() + 200);
  return true;
}

void BaselineHarness::drain(Duration d, Rng& rng) {
  (void)rng;
  sim().run_until(sim().now() + d);
  // Lost Paxos messages stall slots (commands are not retransmitted); a
  // re-election by the sitting leader re-proposes pending slots and fills
  // gaps without disturbing the 2PC routing tables.
  for (int round = 0; round < 2; ++round) {
    for (ShardId s = 0; s < cluster_.num_shards(); ++s) {
      ProcessId leader = cluster_.leader_server(s);
      if (!sim().crashed(leader)) {
        cluster_.server_by_pid(leader).paxos().start_election();
      }
    }
    sim().run();
  }
}

std::string BaselineHarness::check_linearization() {
  return lin_verdict(cluster_.history(), cluster_.certifier());
}

std::string BaselineHarness::trace() {
  return w_.capture_trace ? cluster_.tracer().render() : "";
}

// --- Paxos Commit -------------------------------------------------------------
//
// Deliberately a structural twin of BaselineHarness (same topology, fault
// units, leader-failover repair and drain discipline): the ladder sweeps
// then isolate the termination protocol as the only variable between the
// classical, cooperative and Paxos Commit rungs.

PaxosCommitHarness::PaxosCommitHarness(std::uint64_t seed, const StackWorkload& w)
    : w_(w),
      cluster_({.seed = seed,
                .num_shards = w.num_shards,
                .shard_size = w.shard_size,
                .isolation = w.isolation,
                .exponential_delays = w.exponential_delays,
                .enable_tracer = w.capture_trace}),
      client_(&cluster_.add_client()) {}

void PaxosCommitHarness::install_fault_injector(sim::FaultInjector* fi) {
  cluster_.net().set_fault_injector(fi);
}

void PaxosCommitHarness::set_on_decision(
    std::function<void(TxnId, tcs::Decision)> fn) {
  client_->on_decision = std::move(fn);
}

bool PaxosCommitHarness::submit(Rng& rng, TxnId txn, const tcs::Payload& payload) {
  (void)rng;  // routing is deterministic: the leader of the first shard
  ProcessId coordinator = cluster_.coordinator_for(payload);
  if (cluster_.sim().crashed(coordinator)) return false;
  client_->certify(coordinator, txn, payload);
  return true;
}

bool PaxosCommitHarness::submit_batch(
    Rng& rng, const std::vector<std::pair<TxnId, tcs::Payload>>& batch) {
  (void)rng;
  std::map<ProcessId, std::vector<std::pair<TxnId, tcs::Payload>>> groups;
  for (const auto& item : batch) {
    groups[cluster_.coordinator_for(item.second)].push_back(item);
  }
  bool any = false;
  for (auto& [coordinator, group] : groups) {
    if (cluster_.sim().crashed(coordinator)) continue;
    client_->certify_batch(coordinator, group);
    any = true;
  }
  return any;
}

bool PaxosCommitHarness::snapshot_read(Rng& rng,
                                       const std::vector<ObjectId>& objects) {
  (void)rng;  // leader-gated: no member rotation to randomize
  ++reads_attempted_;
  bool served =
      cluster_.snapshot_read(objects, w_.read_staleness_bound).has_value();
  if (served) ++reads_served_;
  return served;
}

std::string PaxosCommitHarness::check_snapshot_reads() {
  return snapshot_verdict(cluster_.history());
}

std::vector<ProcessId> PaxosCommitHarness::alive_servers(ShardId s) {
  std::vector<ProcessId> alive;
  for (ProcessId m : cluster_.shard_servers(s)) {
    if (!cluster_.sim().crashed(m)) alive.push_back(m);
  }
  return alive;
}

std::vector<std::vector<ProcessId>> PaxosCommitHarness::fault_units(ShardId s) const {
  // A machine hosts the participant and its Paxos replica; a partition or
  // clock fault hits both — identically to the baseline's units.
  std::vector<std::vector<ProcessId>> units;
  for (ProcessId m : cluster_.shard_servers(s)) {
    units.push_back({m, cluster_.paxos_twin(m)});
  }
  return units;
}

std::vector<std::vector<ProcessId>> PaxosCommitHarness::all_units() const {
  std::vector<std::vector<ProcessId>> units;
  for (ShardId s = 0; s < cluster_.num_shards(); ++s) {
    for (auto& u : fault_units(s)) units.push_back(std::move(u));
  }
  return units;
}

bool PaxosCommitHarness::crash_and_reconfigure(Rng& rng, ShardId s) {
  std::vector<ProcessId> alive = alive_servers(s);
  std::size_t majority = w_.shard_size / 2 + 1;
  // Keep a Paxos majority alive after the crash.
  if (alive.size() <= majority) return false;
  ProcessId victim = alive[rng.below(alive.size())];
  bool was_leader = victim == cluster_.leader_server(s);
  cluster_.crash_server(victim);
  if (!w_.harness_repair) return true;  // crash-only nemesis: no failover
  if (was_leader) {
    // Fail leadership over to a survivor.  Coordinator state held by the
    // victim is NOT recovered as state — but unlike the baseline, the
    // replicated vote instances let the survivors terminate every
    // transaction it left behind.
    ProcessId survivor = kNoProcess;
    for (ProcessId m : alive) {
      if (m != victim) survivor = m;
    }
    cluster_.elect_leader(s, survivor);
  }
  sim().run_until(sim().now() + 300);
  return true;
}

bool PaxosCommitHarness::reconfigure_healthy(Rng& rng, ShardId s) {
  // Static membership; a leadership handover is the reconfiguration
  // analogue, as in the baseline.
  std::vector<ProcessId> alive = alive_servers(s);
  if (alive.empty()) return false;
  cluster_.elect_leader(s, alive[rng.below(alive.size())]);
  sim().run_until(sim().now() + 200);
  return true;
}

void PaxosCommitHarness::drain(Duration d, Rng& rng) {
  (void)rng;
  sim().run_until(sim().now() + d);
  // Lost Paxos messages stall slots (commands are not retransmitted); a
  // re-election by the sitting leader re-proposes pending slots and fills
  // gaps without disturbing the routing tables.
  for (int round = 0; round < 2; ++round) {
    for (ShardId s = 0; s < cluster_.num_shards(); ++s) {
      ProcessId leader = cluster_.leader_server(s);
      if (!sim().crashed(leader)) {
        cluster_.server_by_pid(leader).paxos().start_election();
      }
    }
    sim().run();
  }
}

std::string PaxosCommitHarness::verify() {
  std::string problems = cluster_.verify();
  if (w_.isolation == "serializability") {
    // End-to-end conflict-graph oracle over the committed projection: the
    // decision-agreement check above cannot see a cyclic commit order, and
    // this stack has no online monitor or TCS-LL oracle to catch one.
    checker::ConflictGraphResult cg =
        checker::check_conflict_graph(cluster_.history());
    if (!cg.ok) {
      if (!problems.empty()) problems += "\n";
      problems += "conflict graph: " + cg.error;
    }
  }
  return problems;
}

std::string PaxosCommitHarness::check_linearization() {
  return lin_verdict(cluster_.history(), cluster_.certifier());
}

std::string PaxosCommitHarness::trace() {
  return w_.capture_trace ? cluster_.tracer().render() : "";
}

}  // namespace ratc::store
