// TcsFrontend adapters for the three TCS implementations, so the same
// WorkloadRunner (and hence the same benches/examples) can drive them all.
#pragma once

#include <functional>
#include <map>
#include <utility>
#include <vector>

#include "baseline/cluster.h"
#include "commit/cluster.h"
#include "pc/cluster.h"
#include "rdma/cluster.h"
#include "store/runner.h"

namespace ratc::store {

/// Paper protocol (Fig. 1).  Coordinators round-robin over the current
/// members of all shards (co-located clients: 4-delay path).
class CommitFrontend : public TcsFrontend {
 public:
  explicit CommitFrontend(commit::Cluster& cluster)
      : cluster_(cluster), client_(cluster.add_client()) {
    client_.on_decision = [this](TxnId t, tcs::Decision d) {
      if (on_decision) on_decision(t, d);
    };
  }

  TxnId next_txn_id() override { return cluster_.next_txn_id(); }

  void submit(TxnId txn, const tcs::Payload& payload) override {
    commit::Replica* coord = pick_coordinator();
    if (coord == nullptr) return;  // no live coordinator: stays undecided
    client_.certify_colocated(*coord, txn, payload);
  }

  /// One coordinator drives the whole batch: one PREPARE_BATCH per shard
  /// leader instead of one PREPARE per transaction each.
  void submit_batch(
      const std::vector<std::pair<TxnId, tcs::Payload>>& batch) override {
    commit::Replica* coord = pick_coordinator();
    if (coord == nullptr) return;
    client_.certify_batch_colocated(*coord, batch);
  }

  std::optional<tcs::Csn> submit_read_only(
      const std::vector<ObjectId>& objects, Duration staleness_bound = 0) override {
    // Rotate the serving member so follower reads get exercised too.
    return cluster_.snapshot_read(objects, staleness_bound, next_read_member_++);
  }

 private:
  commit::Replica* pick_coordinator() {
    for (std::uint32_t attempts = 0; attempts < 4 * cluster_.num_shards(); ++attempts) {
      ShardId s = next_shard_++ % cluster_.num_shards();
      configsvc::ShardConfig cfg = cluster_.current_config(s);
      if (cfg.members.empty()) continue;
      ProcessId pid = cfg.members[next_member_++ % cfg.members.size()];
      if (cluster_.sim().crashed(pid)) continue;
      commit::Replica& r = cluster_.replica_by_pid(pid);
      if (r.epoch() != cfg.epoch) continue;  // stale view: cannot coordinate
      return &r;
    }
    return nullptr;
  }

  commit::Cluster& cluster_;
  commit::Client& client_;
  std::uint32_t next_shard_ = 0;
  std::size_t next_member_ = 0;
  std::uint64_t next_read_member_ = 0;
};

/// RDMA protocol (Figs. 7-8).
class RdmaFrontend : public TcsFrontend {
 public:
  explicit RdmaFrontend(rdma::Cluster& cluster)
      : cluster_(cluster), client_(cluster.add_client()) {
    client_.on_decision = [this](TxnId t, tcs::Decision d) {
      if (on_decision) on_decision(t, d);
    };
  }

  TxnId next_txn_id() override { return cluster_.next_txn_id(); }

  void submit(TxnId txn, const tcs::Payload& payload) override {
    rdma::Replica* coord = pick_coordinator();
    if (coord == nullptr) return;
    client_.certify_colocated(*coord, txn, payload);
  }

  void submit_batch(
      const std::vector<std::pair<TxnId, tcs::Payload>>& batch) override {
    rdma::Replica* coord = pick_coordinator();
    if (coord == nullptr) return;
    client_.certify_batch_colocated(*coord, batch);
  }

  std::optional<tcs::Csn> submit_read_only(
      const std::vector<ObjectId>& objects, Duration staleness_bound = 0) override {
    return cluster_.snapshot_read(objects, staleness_bound, next_read_member_++);
  }

 private:
  rdma::Replica* pick_coordinator() {
    for (std::uint32_t attempts = 0; attempts < 4 * shard_count(); ++attempts) {
      ShardId s = next_shard_++ % shard_count();
      configsvc::ShardConfig cfg = cluster_.current_config(s);
      if (cfg.members.empty()) continue;
      ProcessId pid = cfg.members[next_member_++ % cfg.members.size()];
      if (cluster_.sim().crashed(pid)) continue;
      rdma::Replica& r = cluster_.replica_by_pid(pid);
      if (r.epoch() != cfg.epoch) continue;
      return &r;
    }
    return nullptr;
  }

  std::uint32_t shard_count() const {
    return cluster_.shard_map().num_shards();
  }

  rdma::Cluster& cluster_;
  rdma::Client& client_;
  std::uint32_t next_shard_ = 0;
  std::size_t next_member_ = 0;
  std::uint64_t next_read_member_ = 0;
};

/// Vanilla 2PC-over-Paxos baseline.
class BaselineFrontend : public TcsFrontend {
 public:
  explicit BaselineFrontend(baseline::BaselineCluster& cluster)
      : cluster_(cluster), client_(cluster.add_client()) {
    client_.on_decision = [this](TxnId t, tcs::Decision d) {
      if (on_decision) on_decision(t, d);
    };
  }

  TxnId next_txn_id() override { return cluster_.next_txn_id(); }

  void submit(TxnId txn, const tcs::Payload& payload) override {
    client_.certify(cluster_.coordinator_for(payload), txn, payload);
  }

  /// The baseline routes each transaction to the leader of its first
  /// participant shard, so a batch is re-grouped by coordinator; each group
  /// becomes one B_CERTIFY_BATCH and (per participant shard) one Paxos
  /// append.
  void submit_batch(
      const std::vector<std::pair<TxnId, tcs::Payload>>& batch) override {
    std::map<ProcessId, std::vector<std::pair<TxnId, tcs::Payload>>> groups;
    for (const auto& item : batch) {
      groups[cluster_.coordinator_for(item.second)].push_back(item);
    }
    for (auto& [coordinator, group] : groups) {
      client_.certify_batch(coordinator, group);
    }
  }

  std::optional<tcs::Csn> submit_read_only(
      const std::vector<ObjectId>& objects, Duration staleness_bound = 0) override {
    // Leader-gated (no member rotation): see BaselineCluster::snapshot_read.
    return cluster_.snapshot_read(objects, staleness_bound);
  }

 private:
  baseline::BaselineCluster& cluster_;
  baseline::BaselineClient& client_;
};

/// Paxos Commit (Gray & Lamport): same routing discipline as the baseline
/// frontend — each transaction goes to the leader of its first participant
/// shard — but the chosen votes are replicated facts, so the stack stays
/// live across coordinator crashes (see src/pc/).
class PaxosCommitFrontend : public TcsFrontend {
 public:
  explicit PaxosCommitFrontend(pc::PcCluster& cluster)
      : cluster_(cluster), client_(cluster.add_client()) {
    client_.on_decision = [this](TxnId t, tcs::Decision d) {
      if (on_decision) on_decision(t, d);
    };
  }

  TxnId next_txn_id() override { return cluster_.next_txn_id(); }

  void submit(TxnId txn, const tcs::Payload& payload) override {
    client_.certify(cluster_.coordinator_for(payload), txn, payload);
  }

  /// Re-grouped by coordinator; each group becomes one PC_CERTIFY_BATCH
  /// and (per participant shard) one Paxos append.
  void submit_batch(
      const std::vector<std::pair<TxnId, tcs::Payload>>& batch) override {
    std::map<ProcessId, std::vector<std::pair<TxnId, tcs::Payload>>> groups;
    for (const auto& item : batch) {
      groups[cluster_.coordinator_for(item.second)].push_back(item);
    }
    for (auto& [coordinator, group] : groups) {
      client_.certify_batch(coordinator, group);
    }
  }

  std::optional<tcs::Csn> submit_read_only(
      const std::vector<ObjectId>& objects, Duration staleness_bound = 0) override {
    // Leader-gated (no member rotation): see PcCluster::snapshot_read.
    return cluster_.snapshot_read(objects, staleness_bound);
  }

 private:
  pc::PcCluster& cluster_;
  pc::PcClient& client_;
};

}  // namespace ratc::store
