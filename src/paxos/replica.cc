#include "paxos/replica.h"

#include <algorithm>
#include <cassert>

#include "common/log.h"

namespace ratc::paxos {

PaxosReplica::PaxosReplica(sim::Simulator& sim, sim::Network& net, ProcessId id,
                           std::string name, Options options, ApplyFn apply)
    : PaxosReplica(net.runtime(), id, std::move(name), std::move(options),
                   std::move(apply)) {
  (void)sim;
}

PaxosReplica::PaxosReplica(rt::Runtime& rt, ProcessId id, std::string name,
                           Options options, ApplyFn apply)
    : Process(rt, id, std::move(name)),
      options_(std::move(options)),
      apply_(std::move(apply)) {
  assert(std::count(options_.group.begin(), options_.group.end(), id) == 1);
  leader_hint_ = options_.initial_leader;
  if (options_.initial_leader == id) {
    // Bootstrap: the initial leader starts with ballot (1, self), already
    // promised by everyone (all replicas start with promised_ = (0, none),
    // and will accept any higher ballot in phase 2 directly).
    leading_ = true;
    my_ballot_ = Ballot{1, id};
    promised_ = my_ballot_;
  }
}

void PaxosReplica::submit(sim::AnyMessage cmd) {
  if (leading_) {
    propose(next_slot_++, std::move(cmd));
  } else if (electing_) {
    backlog_.push_back(std::move(cmd));
  } else if (leader_hint_ != kNoProcess && leader_hint_ != id()) {
    rt().send_msg(id(), leader_hint_, SubmitCmd{std::move(cmd)});
  } else {
    backlog_.push_back(std::move(cmd));
  }
}

void PaxosReplica::start_election() {
  electing_ = true;
  leading_ = false;
  std::uint64_t round = std::max(promised_.round, my_ballot_.round) + 1;
  my_ballot_ = Ballot{round, id()};
  phase1_responses_.clear();
  pending_.clear();
  RATC_DEBUG(name() << " starts election at ballot (" << my_ballot_.round << ","
                    << my_ballot_.proposer << ")");
  for (ProcessId p : options_.group) {
    if (p == id()) continue;
    rt().send_msg(id(), p, Phase1a{my_ballot_});
  }
  // Self-promise.
  promised_ = my_ballot_;
  phase1_responses_[id()] = accepted_;
  check_election();
}

void PaxosReplica::on_message(ProcessId from, const sim::AnyMessage& msg) {
  if (const auto* m = msg.as<SubmitCmd>()) {
    handle_submit(*m);
  } else if (const auto* m1a = msg.as<Phase1a>()) {
    handle_phase1a(from, *m1a);
  } else if (const auto* m1b = msg.as<Phase1b>()) {
    handle_phase1b(from, *m1b);
  } else if (const auto* m2a = msg.as<Phase2a>()) {
    handle_phase2a(from, *m2a);
  } else if (const auto* m2b = msg.as<Phase2b>()) {
    handle_phase2b(from, *m2b);
  } else if (const auto* mc = msg.as<CommitSlot>()) {
    handle_commit(from, *mc);
  }
}

void PaxosReplica::handle_submit(const SubmitCmd& m) { submit(m.cmd); }

void PaxosReplica::handle_phase1a(ProcessId from, const Phase1a& m) {
  if (m.ballot <= promised_) return;  // stale candidate; ignore
  promised_ = m.ballot;
  leading_ = false;
  electing_ = false;
  rt().send_msg(id(), from, Phase1b{m.ballot, accepted_});
}

void PaxosReplica::handle_phase1b(ProcessId from, const Phase1b& m) {
  if (!electing_ || m.ballot != my_ballot_) return;
  phase1_responses_[from] = m.accepted;
  check_election();
}

void PaxosReplica::check_election() {
  if (!electing_ || phase1_responses_.size() < majority()) return;

  // Won the election: adopt the highest-ballot accepted value per slot,
  // fill gaps with no-ops, then drain the backlog.
  electing_ = false;
  leading_ = true;
  leader_hint_ = id();
  std::map<Slot, AcceptedEntry> best;
  Slot max_slot = 0;
  for (const auto& [p, acc] : phase1_responses_) {
    (void)p;
    for (const auto& [slot, entry] : acc) {
      auto it = best.find(slot);
      if (it == best.end() || it->second.ballot < entry.ballot) best[slot] = entry;
      max_slot = std::max(max_slot, slot);
    }
  }
  for (const auto& [slot, cmd] : chosen_) {
    (void)cmd;
    max_slot = std::max(max_slot, slot);
  }
  next_slot_ = max_slot + 1;
  for (Slot s = 1; s < next_slot_; ++s) {
    if (chosen_.count(s)) continue;
    auto it = best.find(s);
    if (it != best.end()) {
      propose(s, it->second.cmd);
    } else {
      propose(s, sim::AnyMessage(Noop{}));
    }
  }
  auto backlog = std::move(backlog_);
  backlog_.clear();
  for (auto& cmd : backlog) propose(next_slot_++, std::move(cmd));
  // Make the new leadership visible even when there is nothing to propose:
  // the Phase2a fan-out updates every replica's leader hint, letting them
  // forward their own backlogs (drain_backlog below).
  if (backlog.empty()) propose(next_slot_++, sim::AnyMessage(Noop{}));
}

void PaxosReplica::drain_backlog() {
  if (leading_ || electing_ || backlog_.empty()) return;
  if (leader_hint_ == kNoProcess || leader_hint_ == id()) return;
  auto backlog = std::move(backlog_);
  backlog_.clear();
  for (auto& cmd : backlog) {
    rt().send_msg(id(), leader_hint_, SubmitCmd{std::move(cmd)});
  }
}

void PaxosReplica::propose(Slot slot, sim::AnyMessage cmd) {
  assert(leading_);
  Pending& p = pending_[slot];
  p.cmd = cmd;
  p.acks = {id()};
  // Self-accept.
  accepted_[slot] = AcceptedEntry{my_ballot_, cmd};
  for (ProcessId peer : options_.group) {
    if (peer == id()) continue;
    rt().send_msg(id(), peer, Phase2a{my_ballot_, slot, cmd});
  }
  if (p.acks.size() >= majority()) {
    choose(slot, cmd);
    pending_.erase(slot);
  }
}

void PaxosReplica::handle_phase2a(ProcessId from, const Phase2a& m) {
  if (m.ballot < promised_) return;
  promised_ = m.ballot;
  if (leading_ && my_ballot_ < m.ballot) leading_ = false;
  leader_hint_ = m.ballot.proposer;
  accepted_[m.slot] = AcceptedEntry{m.ballot, m.cmd};
  rt().send_msg(id(), from, Phase2b{m.ballot, m.slot});
  drain_backlog();
}

void PaxosReplica::handle_phase2b(ProcessId from, const Phase2b& m) {
  if (!leading_ || m.ballot != my_ballot_) return;
  auto it = pending_.find(m.slot);
  if (it == pending_.end()) return;  // already chosen
  it->second.acks.insert(from);
  if (it->second.acks.size() >= majority()) {
    sim::AnyMessage cmd = it->second.cmd;
    pending_.erase(it);
    choose(m.slot, cmd);
  }
}

void PaxosReplica::choose(Slot slot, const sim::AnyMessage& cmd) {
  if (chosen_.count(slot) == 0) {
    chosen_.emplace(slot, cmd);
    for (ProcessId peer : options_.group) {
      if (peer == id()) continue;
      rt().send_msg(id(), peer, CommitSlot{my_ballot_, slot, cmd});
    }
  }
  apply_ready();
}

void PaxosReplica::handle_commit(ProcessId from, const CommitSlot& m) {
  (void)from;
  leader_hint_ = m.ballot.proposer;
  chosen_.emplace(m.slot, m.cmd);
  apply_ready();
  drain_backlog();
}

void PaxosReplica::apply_ready() {
  while (true) {
    auto it = chosen_.find(applied_upto_ + 1);
    if (it == chosen_.end()) return;
    ++applied_upto_;
    if (!it->second.is<Noop>() && apply_) apply_(applied_upto_, it->second);
  }
}

}  // namespace ratc::paxos
