// Multi-decree Paxos replicated state machine over a static group of 2f+1
// replicas.
//
// This is the substrate the paper's introduction contrasts against: the
// "vanilla" way to make a shard fault-tolerant.  It backs two users here:
//  * the Paxos-replicated configuration service (paper Sec. 2: "this
//    service may be implemented using Paxos-like replication over 2f+1
//    processes"), and
//  * the baseline TCS that runs 2PC over Paxos-replicated shards
//    (experiments E2-E4).
//
// Design notes:
//  * Each process plays proposer, acceptor and learner.
//  * Stable-leader optimization: phase 1 runs once per ballot and covers
//    all slots; subsequent commands go straight to phase 2.
//  * A new leader re-proposes the highest-ballot accepted value per slot
//    and fills gaps with no-ops.
//  * Chosen commands are applied in slot order through the ApplyFn; no-ops
//    are skipped.  All replicas apply the same sequence (tested).
//  * Log compaction is out of scope (phase 1 returns the full accepted
//    map); runs are bounded, so this only costs memory.
#pragma once

#include <functional>
#include <map>
#include <optional>
#include <set>
#include <vector>

#include "common/types.h"
#include "paxos/messages.h"
#include "sim/network.h"
#include "sim/process.h"
#include "sim/simulator.h"

namespace ratc::paxos {

class PaxosReplica : public sim::Process {
 public:
  /// Applied exactly once per chosen non-noop command, in slot order.
  using ApplyFn = std::function<void(Slot, const sim::AnyMessage&)>;

  struct Options {
    std::vector<ProcessId> group;  ///< all replica ids, including this one
    ProcessId initial_leader = kNoProcess;
  };

  PaxosReplica(rt::Runtime& rt, ProcessId id, std::string name, Options options,
               ApplyFn apply);
  PaxosReplica(sim::Simulator& sim, sim::Network& net, ProcessId id,
               std::string name, Options options, ApplyFn apply);

  /// Submits a command for replication.  On the leader this starts phase 2
  /// immediately; elsewhere it forwards to the believed leader.
  void submit(sim::AnyMessage cmd);

  /// Starts a new election with a ballot higher than any seen.
  void start_election();

  bool is_leader() const { return leading_; }
  /// No election in progress and every chosen slot applied.  A freshly
  /// elected leader that has not yet applied its predecessors' chosen
  /// commands must not serve reads off the applied state (baseline CSN
  /// snapshot reads gate on this).
  bool caught_up() const {
    return !electing_ &&
           (chosen_.empty() || chosen_.rbegin()->first == applied_upto_);
  }
  ProcessId leader_hint() const { return leader_hint_; }
  Slot last_applied() const { return applied_upto_; }
  Slot next_slot() const { return next_slot_; }
  const Options& options() const { return options_; }

  void on_message(ProcessId from, const sim::AnyMessage& msg) override;

 private:
  std::size_t majority() const { return options_.group.size() / 2 + 1; }

  void handle_submit(const SubmitCmd& m);
  void handle_phase1a(ProcessId from, const Phase1a& m);
  void handle_phase1b(ProcessId from, const Phase1b& m);
  void check_election();
  void handle_phase2a(ProcessId from, const Phase2a& m);
  void handle_phase2b(ProcessId from, const Phase2b& m);
  void handle_commit(ProcessId from, const CommitSlot& m);

  void propose(Slot slot, sim::AnyMessage cmd);
  void choose(Slot slot, const sim::AnyMessage& cmd);
  void apply_ready();
  /// Forwards buffered commands once a leader becomes known.
  void drain_backlog();

  Options options_;
  ApplyFn apply_;

  // Acceptor state.
  Ballot promised_;
  std::map<Slot, AcceptedEntry> accepted_;

  // Learner state.
  std::map<Slot, sim::AnyMessage> chosen_;
  Slot applied_upto_ = 0;

  // Proposer state.
  bool leading_ = false;
  Ballot my_ballot_;
  ProcessId leader_hint_ = kNoProcess;
  Slot next_slot_ = 1;
  // Election in progress: responders and their accepted maps.
  bool electing_ = false;
  std::map<ProcessId, std::map<Slot, AcceptedEntry>> phase1_responses_;
  // Outstanding phase-2 quorums per slot.
  struct Pending {
    sim::AnyMessage cmd;
    std::set<ProcessId> acks;
  };
  std::map<Slot, Pending> pending_;
  // Commands submitted while an election is in progress.
  std::vector<sim::AnyMessage> backlog_;
};

}  // namespace ratc::paxos
