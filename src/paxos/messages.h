// Multi-decree Paxos message vocabulary.
#pragma once

#include <map>
#include <vector>

#include "common/types.h"
#include "sim/message.h"

namespace ratc::paxos {

/// Ballots are (round, proposer) pairs ordered lexicographically, so two
/// proposers can never collide on the same ballot.
struct Ballot {
  std::uint64_t round = 0;
  ProcessId proposer = kNoProcess;

  friend auto operator<=>(const Ballot&, const Ballot&) = default;
};

/// No-op command proposed by a new leader to fill log gaps.
struct Noop {
  static constexpr const char* kName = "PAXOS_NOOP";
};

/// Client-side submission, forwarded to the current leader if needed.
struct SubmitCmd {
  static constexpr const char* kName = "PAXOS_SUBMIT";
  sim::AnyMessage cmd;
  std::size_t wire_size() const { return 8 + cmd.wire_size(); }
};

struct Phase1a {
  static constexpr const char* kName = "PAXOS_1A";
  Ballot ballot;
};

struct AcceptedEntry {
  Ballot ballot;
  sim::AnyMessage cmd;
};

struct Phase1b {
  static constexpr const char* kName = "PAXOS_1B";
  Ballot ballot;                          ///< the promise
  std::map<Slot, AcceptedEntry> accepted; ///< everything this acceptor accepted
  std::size_t wire_size() const { return 24 + accepted.size() * 32; }
};

struct Phase2a {
  static constexpr const char* kName = "PAXOS_2A";
  Ballot ballot;
  Slot slot = kNoSlot;
  sim::AnyMessage cmd;
  std::size_t wire_size() const { return 32 + cmd.wire_size(); }
};

struct Phase2b {
  static constexpr const char* kName = "PAXOS_2B";
  Ballot ballot;
  Slot slot = kNoSlot;
};

/// Broadcast by the leader once a slot's value is chosen.
struct CommitSlot {
  static constexpr const char* kName = "PAXOS_COMMIT";
  Ballot ballot;
  Slot slot = kNoSlot;
  sim::AnyMessage cmd;
  std::size_t wire_size() const { return 32 + cmd.wire_size(); }
};

}  // namespace ratc::paxos
