// Controller-facing placement surface.
//
// The PlacementPolicy extension point was promoted into the shared
// reconfiguration module (src/recon/placement.h) when the four reconfigurer
// copies collapsed into recon::Engine: replica-driven reconfigurations now
// consult the same policy seam the controllers do.  This header keeps the
// ctrl:: names as aliases for the controller's callers and holds
// ControllerTuning, which is genuinely controller-specific (failure-detector
// cadence, hysteresis, watchdog).
#pragma once

#include "fd/failure_detector.h"
#include "recon/placement.h"

namespace ratc::ctrl {

using PlacementContext = recon::PlacementContext;
using PlacementInput = recon::PlacementInput;
using PlacementPolicy = recon::PlacementPolicy;
using ReplaceSuspectsPolicy = recon::ReplaceSuspectsPolicy;
using ZoneAntiAffinityPolicy = recon::ZoneAntiAffinityPolicy;

/// Timing and policy knobs of a ReconController, separated out so cluster
/// harnesses and StackWorkload can pass them through untouched.
struct ControllerTuning {
  /// Failure-detector cadence for member watching.
  fd::PingMonitor::Options fd{};
  /// Hysteresis: minimum gap between controller-initiated attempts for one
  /// shard, doubling per attempt up to the cap.  This is what bounds the
  /// epoch churn a falsely-suspected (live but half-partitioned) replica
  /// can cause.
  Duration backoff_initial = 40;
  Duration backoff_max = 1280;
  /// A quiet period this long resets the backoff to its initial value.
  Duration backoff_reset_after = 2000;
  /// Watchdog: an attempt (probe round / delegated nudge) that produces
  /// neither a new epoch nor a definitive failure within this window is
  /// abandoned and, if suspects remain, retried under backoff.  Also covers
  /// stored-but-never-activated (stuck) epochs.
  Duration attempt_timeout = 300;
  /// Probing-descent patience, as in the replica reconfigurer.
  Duration probe_patience = 5;
  /// Membership policy; null selects the cluster's placement_policy (and
  /// ReplaceSuspectsPolicy when that is unset too).  Non-owning.
  recon::PlacementPolicy* policy = nullptr;
};

}  // namespace ratc::ctrl
