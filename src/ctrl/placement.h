// Placement policies for the autonomous reconfiguration controller.
//
// ===========================================================================
// The PlacementPolicy extension point
// ===========================================================================
// When a ReconController (recon_controller.h) decides a shard must be
// reconfigured, the *mechanism* is fixed by the paper — probe the members of
// the latest stored configuration, pick an initialized responder as the new
// leader (Fig. 1 line 45), and compare-and-swap the next epoch into the
// configuration service — but the *membership* of the proposed
// configuration is policy.  The paper only constrains it (line 48): the new
// configuration must contain the new leader, and every other member must be
// a probing responder or a fresh process.
//
// PlacementPolicy is that seam.  A policy receives everything the
// controller learned during probing:
//   * the leader candidate (the first initialized probing responder — this
//     one is mandatory and must lead, because only it is known to hold the
//     shard state the new epoch starts from);
//   * the full responder set (processes that answered the probe, i.e. were
//     recently alive);
//   * the controller's current suspect set (failure-detector output; under
//     asymmetric partitions a responder can simultaneously be suspected);
//   * the target shard size (f+1);
// plus an `allocate_fresh` callback that permanently consumes processes
// from the cluster's never-yet-used spare pool (freshness must be global —
// reusing a process that ever belonged to a configuration breaks
// Invariant 5, so allocation goes through the shared resource manager the
// cluster models).
//
// A policy returns the full proposed ShardConfig.  The controller clamps
// the hard constraints (epoch, leader present and leading); drawing every
// other member only from responders or fresh spares is the policy's
// contract (Fig. 1 line 48).  The proposal then races through the CS CAS,
// so a buggy policy can cost availability but never safety: the CAS and
// the probing protocol underneath it are what correctness rests on.
//
// Custom policies can encode deployment concerns this repo does not model —
// rack/zone anti-affinity, load-aware leader choice, draining — by
// subclassing and passing the instance through
// `ctrl::ControllerTuning::policy` (plumbed via commit::Cluster::Options /
// rdma::Cluster::Options and store::StackWorkload).
#pragma once

#include <functional>
#include <set>
#include <vector>

#include "common/types.h"
#include "configsvc/config.h"
#include "fd/failure_detector.h"

namespace ratc::ctrl {

/// Everything the controller learned by the time it must propose a
/// configuration; see the file comment for field semantics.
struct PlacementInput {
  ShardId shard = 0;
  Epoch next_epoch = kNoEpoch;
  /// First initialized probing responder; must be the proposed leader.
  ProcessId leader_candidate = kNoProcess;
  /// All probing responders (recently alive), in ascending pid order.
  std::vector<ProcessId> responders;
  /// Processes the controller's failure detector currently suspects.
  std::set<ProcessId> suspected;
  std::size_t target_size = 2;
};

class PlacementPolicy {
 public:
  virtual ~PlacementPolicy() = default;
  virtual const char* name() const = 0;

  /// Proposes the next configuration.  `allocate_fresh(n)` hands out up to
  /// n fresh spares (permanently consumed); call it at most once.
  virtual configsvc::ShardConfig plan(
      const PlacementInput& in,
      const std::function<std::vector<ProcessId>(std::size_t)>& allocate_fresh) = 0;
};

/// Default policy: keep the leader candidate, retain non-suspected
/// responders, and top up with fresh spares — i.e. replace exactly the
/// members that are dead (no probe answer) or suspect (half-partitioned
/// processes answer probes but cannot be relied on).
class ReplaceSuspectsPolicy final : public PlacementPolicy {
 public:
  const char* name() const override { return "replace-suspects"; }

  configsvc::ShardConfig plan(
      const PlacementInput& in,
      const std::function<std::vector<ProcessId>(std::size_t)>& allocate_fresh) override {
    configsvc::ShardConfig next;
    next.epoch = in.next_epoch;
    next.leader = in.leader_candidate;
    next.members.push_back(in.leader_candidate);
    for (ProcessId p : in.responders) {
      if (next.members.size() >= in.target_size) break;
      if (p == in.leader_candidate || in.suspected.count(p) > 0) continue;
      next.members.push_back(p);
    }
    if (next.members.size() < in.target_size && allocate_fresh) {
      for (ProcessId spare : allocate_fresh(in.target_size - next.members.size())) {
        next.members.push_back(spare);
      }
    }
    return next;
  }
};

/// Timing and policy knobs of a ReconController, separated out so cluster
/// harnesses and StackWorkload can pass them through untouched.
struct ControllerTuning {
  /// Failure-detector cadence for member watching.
  fd::PingMonitor::Options fd{};
  /// Hysteresis: minimum gap between controller-initiated attempts for one
  /// shard, doubling per attempt up to the cap.  This is what bounds the
  /// epoch churn a falsely-suspected (live but half-partitioned) replica
  /// can cause.
  Duration backoff_initial = 40;
  Duration backoff_max = 1280;
  /// A quiet period this long resets the backoff to its initial value.
  Duration backoff_reset_after = 2000;
  /// Watchdog: an attempt (probe round / delegated nudge) that produces
  /// neither a new epoch nor a definitive failure within this window is
  /// abandoned and, if suspects remain, retried under backoff.  Also covers
  /// stored-but-never-activated (stuck) epochs.
  Duration attempt_timeout = 300;
  /// Probing-descent patience, as in the replica reconfigurer.
  Duration probe_patience = 5;
  /// Membership policy; null selects ReplaceSuspectsPolicy.  Non-owning.
  PlacementPolicy* policy = nullptr;
};

}  // namespace ratc::ctrl
