// Control-plane message vocabulary.
#pragma once

#include "common/types.h"

namespace ratc::ctrl {

/// Controller -> replica (RDMA stack): "I suspect a member of shard
/// `shard`; run a global reconfiguration."  The RDMA protocol's
/// reconfigurer role (Fig. 8) is embedded in the replica because activation
/// needs fabric-side connection management (close on PROBE, flush on
/// NEW_CONFIG), so the controller delegates execution instead of running
/// probing + CAS itself as it does for the message-passing stack.
/// Concurrent nudges from several controllers still race safely: the global
/// CS CAS inside the replicas arbitrates, exactly as for the commit stack.
struct NudgeReconfig {
  static constexpr const char* kName = "CTRL_NUDGE";
  ShardId shard = 0;
  /// The epoch the controller observed when nudging (diagnostic only).
  Epoch observed_epoch = kNoEpoch;
};

}  // namespace ratc::ctrl
