// Autonomous reconfiguration controller: the control plane that closes the
// paper's loop.
//
// The paper (Sec. 3) says "reconfiguration is initiated by a replica when
// it suspects another replica of failing" — but in this repo every
// reconfiguration used to be triggered by an omniscient harness calling
// crash_and_reconfigure.  ReconController moves the loop inside the system:
//
//     failure detection  ->  candidate-config selection  ->  CS CAS
//          (fd::PingMonitor)     (recon::PlacementPolicy)       |
//               ^                                               v
//               +--------------- epoch handover  <--------------+
//                        (CONFIG_CHANGE subscription)
//
// One ReconController runs per shard as an ordinary simulated process (it
// can crash, be partitioned, or race other controllers).  It watches the
// shard's current members through a ping/pong failure detector, subscribes
// to the configuration service's change notifications to track the live
// membership, and on suspicion — or when an attempt wedges (stuck epoch,
// lost probes) — initiates a reconfiguration:
//
//  * Commit stack (Mode::kPerShardCas): the controller plays the paper's
//    reconfigurer role itself — but the role's state machine (probe /
//    descend / placement / CAS with loser spare-release) lives in the
//    shared recon::Engine; the controller is one of its four StackHooks
//    adapters, contributing only what is controller-specific: the grievance
//    re-check after the CS read, the suspect set fed into the
//    PlacementContext, and the hysteresis/watchdog around attempts.
//    Concurrent controllers and replica-driven reconfigurations race
//    safely: the CAS admits exactly one winner per epoch and losers
//    re-observe via CONFIG_CHANGE.
//
//  * RDMA stack (Mode::kDelegateGlobal): reconfiguration is global (Fig. 8)
//    and its activation needs fabric-side connection management that only
//    replicas can perform, so the controller delegates execution — it
//    nudges a live, non-suspected replica to run the global protocol; the
//    global CS CAS inside the replicas arbitrates concurrent nudges.  The
//    engine still tracks the pending target so a dead delegate is re-nudged.
//
// Robustness to false suspicion (the concern FLAC, Pan et al., makes
// central): a one-way-partitioned replica is alive but silent towards the
// controller, and acting on every suspicion would thrash epochs.  The
// controller therefore applies hysteresis — exponential backoff between
// attempts per shard (ControllerTuning::backoff_*), reset only after a
// quiet period — so any false-suspicion storm of bounded length initiates
// only O(log) epochs, and recovery (the suspect answering pings again)
// stops the loop before the next attempt fires.  Safety never depends on
// suspicion accuracy: a falsely-replaced replica costs one epoch, not an
// invariant.
//
// The membership chosen for the new epoch is the recon::PlacementPolicy
// extension point documented in recon/placement.h.
#pragma once

#include <functional>
#include <memory>
#include <set>
#include <vector>

#include "common/types.h"
#include "configsvc/client.h"
#include "configsvc/config.h"
#include "configsvc/messages.h"
#include "ctrl/placement.h"
#include "fd/failure_detector.h"
#include "recon/engine.h"
#include "sim/network.h"
#include "sim/process.h"

namespace ratc::commit {
struct ProbeAck;
}

namespace ratc::ctrl {

class ReconController : public sim::Process, private recon::StackHooks {
 public:
  /// How attempts are executed; see the file comment.
  enum class Mode { kPerShardCas, kDelegateGlobal };

  struct Options {
    ShardId shard = 0;
    Mode mode = Mode::kPerShardCas;
    /// CS endpoints (per-shard CS for kPerShardCas; unused by the global
    /// mode, whose CAS happens inside the nudged replica).
    std::vector<ProcessId> cs_endpoints;
    std::size_t target_shard_size = 2;
    ControllerTuning tuning;
    /// Fresh-spare allocator shared with the replicas (the cluster's pool).
    std::function<std::vector<ProcessId>(ShardId, std::size_t)> allocate_spares;
    /// Returns spares consumed by a proposal whose CAS lost the race; they
    /// never entered any stored configuration, so they are still globally
    /// fresh and may be handed out again.
    std::function<void(ShardId, const std::vector<ProcessId>&)> release_spares;
    /// Cluster knowledge (zones, load, spare depth) for the placement
    /// policy; the controller merges its own suspect set in.
    std::function<recon::PlacementContext(ShardId)> placement_context;
  };

  struct Stats {
    std::size_t suspicions = 0;        ///< suspicion edges heard
    std::size_t recoveries = 0;        ///< suspicions retracted by a pong
    std::size_t attempts = 0;          ///< reconfiguration attempts started
    std::size_t attempts_abandoned = 0;  ///< watchdog-expired attempts
    std::size_t epochs_initiated = 0;  ///< CAS wins (kPerShardCas)
    std::size_t cas_losses = 0;        ///< CAS races lost (kPerShardCas)
    std::size_t nudges = 0;            ///< delegated triggers (kDelegateGlobal)
  };

  ReconController(rt::Runtime& rt, ProcessId id, Options options);
  ReconController(sim::Simulator& sim, sim::Network& net, ProcessId id,
                  Options options);

  /// Installs the initial per-shard view and starts watching its members
  /// (commit stack).
  void bootstrap(const configsvc::ShardConfig& view);
  /// Same for the RDMA stack's global configuration.
  void bootstrap_global(const configsvc::GlobalConfig& config);

  ShardId shard() const { return options_.shard; }
  /// Snapshot assembled from the controller's own counters plus the shared
  /// reconfiguration engine's (CAS wins/losses live there now).
  Stats stats() const;
  const recon::Engine& engine() const { return engine_; }
  const configsvc::ShardConfig& view() const { return view_; }
  bool suspects(ProcessId p) const { return suspects_.count(p) > 0; }

  void on_message(ProcessId from, const sim::AnyMessage& msg) override;

 private:
  // --- trigger plumbing -------------------------------------------------------
  void on_suspect(ProcessId peer);
  void on_recover(ProcessId peer);
  bool have_live_grievance() const;
  /// Central gate: acts only when a current member is suspect, an attempt
  /// is not already in flight, and the backoff window has elapsed (else
  /// arms a retry timer for when it has).
  void maybe_act();
  void start_attempt();
  void arm_watchdog();

  // --- view tracking ----------------------------------------------------------
  void adopt_view(const configsvc::ShardConfig& next);
  void handle_config_change(const configsvc::ConfigChange& m);
  void handle_global_config_change(const configsvc::GlobalConfigChange& m);

  // --- recon::StackHooks (kPerShardCas; the engine runs the Fig. 1 role) -----
  void fetch_latest(const std::vector<ShardId>& shards,
                    std::function<void(bool, recon::Snapshot)> cb) override;
  void fetch_members_at(
      ShardId shard, Epoch epoch,
      std::function<void(bool, std::vector<ProcessId>)> cb) override;
  void send_probe(ProcessId target, Epoch new_epoch) override;
  std::vector<ProcessId> reserve_spares(ShardId shard, std::size_t n) override;
  void release_spares(ShardId shard,
                      const std::vector<ProcessId>& spares) override;
  void submit(const recon::Proposal& proposal,
              std::function<void(bool)> done) override;
  void activate(const recon::Proposal& proposal) override;
  recon::PlacementContext placement_context(ShardId shard) override;

  // --- kDelegateGlobal --------------------------------------------------------
  void nudge();

  Options options_;
  configsvc::CsClient cs_;
  fd::PingMonitor fd_;
  recon::Engine engine_;

  configsvc::ShardConfig view_;      ///< latest known config of our shard
  configsvc::GlobalConfig gview_;    ///< kDelegateGlobal: full global config
  std::set<ProcessId> suspects_;

  // Hysteresis state.
  Duration backoff_;
  Time next_allowed_ = 0;
  Time last_attempt_at_ = 0;
  bool retry_armed_ = false;
  std::uint64_t round_ = 0;  ///< guards the attempt watchdog

  std::size_t nudge_rr_ = 0;  ///< round-robin cursor over nudge targets

  // Controller-side counters; engine counters are merged in stats().
  std::size_t suspicions_ = 0;
  std::size_t recoveries_ = 0;
  std::size_t attempts_ = 0;
  std::size_t attempts_abandoned_ = 0;
  std::size_t nudges_ = 0;
};

}  // namespace ratc::ctrl
