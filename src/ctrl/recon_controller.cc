#include "ctrl/recon_controller.h"

#include <algorithm>

#include "commit/messages.h"
#include "common/log.h"
#include "ctrl/messages.h"

namespace ratc::ctrl {

ReconController::ReconController(sim::Simulator& sim, sim::Network& net,
                                 ProcessId id, Options options)
    : Process(sim, id, "ctrl/s" + std::to_string(options.shard)),
      options_(std::move(options)),
      net_(net),
      cs_(sim, net, id, options_.cs_endpoints),
      fd_(sim, net, id, options_.tuning.fd),
      policy_(options_.tuning.policy != nullptr ? options_.tuning.policy
                                                : &default_policy_),
      backoff_(options_.tuning.backoff_initial) {
  fd_.subscribe({.on_suspect = [this](ProcessId p) { on_suspect(p); },
                 .on_recover = [this](ProcessId p) { on_recover(p); }});
}

void ReconController::bootstrap(const configsvc::ShardConfig& view) {
  view_ = view;
  for (ProcessId p : view_.members) fd_.watch(p);
  fd_.start();
}

void ReconController::bootstrap_global(const configsvc::GlobalConfig& config) {
  gview_ = config;
  bootstrap(config.shard(options_.shard));
}

// --- trigger plumbing ---------------------------------------------------------

void ReconController::on_suspect(ProcessId peer) {
  ++stats_.suspicions;
  suspects_.insert(peer);
  RATC_DEBUG(name() << " suspects " << process_name(peer));
  maybe_act();
}

void ReconController::on_recover(ProcessId peer) {
  ++stats_.recoveries;
  suspects_.erase(peer);
  RATC_DEBUG(name() << " retracts suspicion of " << process_name(peer));
}

bool ReconController::have_live_grievance() const {
  for (ProcessId p : view_.members) {
    if (suspects_.count(p) > 0) return true;
  }
  return false;
}

void ReconController::maybe_act() {
  // Every trigger funnels here and re-validates: a suspicion retracted (or
  // reconfigured away) before the backoff window elapsed costs nothing.
  // An unresolved attempt (pending_target_) must be driven to completion
  // regardless — its probes have already frozen replicas.
  if (!have_live_grievance() && pending_target_ == kNoEpoch) return;
  if (probing_) return;  // attempt in flight; its watchdog re-checks
  Time now = sim().now();
  if (now < next_allowed_) {
    if (!retry_armed_) {
      retry_armed_ = true;
      sim().schedule_for(id(), next_allowed_ - now, [this] {
        retry_armed_ = false;
        maybe_act();
      });
    }
    return;
  }
  start_attempt();
}

void ReconController::start_attempt() {
  Time now = sim().now();
  if (last_attempt_at_ != 0 &&
      now - last_attempt_at_ >= options_.tuning.backoff_reset_after) {
    backoff_ = options_.tuning.backoff_initial;  // new incident, fresh budget
  }
  last_attempt_at_ = now;
  next_allowed_ = now + backoff_;
  backoff_ = std::min(backoff_ * 2, options_.tuning.backoff_max);
  ++stats_.attempts;
  ++round_;
  arm_watchdog();
  if (options_.mode == Mode::kDelegateGlobal) {
    nudge();
  } else {
    probe_begin();
  }
}

void ReconController::arm_watchdog() {
  sim().schedule_for(id(), options_.tuning.attempt_timeout, [this, r = round_] {
    if (round_ != r) return;  // a newer attempt owns the state
    if (probing_) {
      // Probes swallowed (e.g. every probed member crashed or partitioned
      // away) or the CS unreachable: abandon and retry under backoff.
      probing_ = false;
      ++stats_.attempts_abandoned;
    }
    // Also covers the stuck-epoch case: a CAS-won configuration whose
    // leader died before activation leaves its members suspect, so the
    // grievance re-check below starts a fresh attempt that descends past
    // the dead epoch.
    maybe_act();
  });
}

// --- view tracking ------------------------------------------------------------

void ReconController::adopt_view(const configsvc::ShardConfig& next) {
  if (!next.valid() || next.epoch <= view_.epoch) return;
  // Someone (us, a peer controller, or a replica) installed a newer epoch:
  // an in-flight probe for an epoch it supersedes is moot, and any
  // unresolved attempt aiming at or below it is resolved — the winner's
  // handover unfreezes whatever our probes froze.
  if (probing_ && recon_epoch_ != kNoEpoch && next.epoch >= recon_epoch_) {
    probing_ = false;
  }
  if (pending_target_ != kNoEpoch && next.epoch >= pending_target_) {
    pending_target_ = kNoEpoch;
  }
  for (ProcessId p : view_.members) {
    if (!next.has_member(p)) {
      fd_.unwatch(p);
      suspects_.erase(p);
    }
  }
  view_ = next;
  // ensure_watched keeps the silence window of carried-over members: a
  // suspect that survived into the new configuration stays suspect.
  for (ProcessId p : view_.members) fd_.ensure_watched(p);
  maybe_act();
}

void ReconController::handle_config_change(const configsvc::ConfigChange& m) {
  if (m.shard != options_.shard) return;
  adopt_view(m.config);
}

void ReconController::handle_global_config_change(
    const configsvc::GlobalConfigChange& m) {
  if (!m.config.valid() || m.config.epoch <= gview_.epoch) return;
  gview_ = m.config;
  adopt_view(m.config.shard(options_.shard));
}

// --- kPerShardCas: the reconfigurer role --------------------------------------

void ReconController::probe_begin() {
  probing_ = true;
  recon_epoch_ = kNoEpoch;  // no target yet; assigned once get_last returns
  probe_responders_.clear();
  round_has_false_ack_ = false;
  descend_timer_armed_ = false;
  // Line 36: read the latest configuration from the CS.
  cs_.get_last(options_.shard,
               [this, r = round_](const configsvc::ShardConfig& cfg) {
                 if (!probing_ || round_ != r) return;
                 if (!cfg.valid()) {
                   probing_ = false;
                   return;
                 }
                 // The read may reveal an epoch we had not heard about
                 // (e.g. our CONFIG_CHANGE was delayed): sync the view and
                 // re-validate before freezing anyone with probes.
                 adopt_view(cfg);
                 if (!probing_) return;  // adoption resolved the attempt
                 if (!have_live_grievance() && pending_target_ == kNoEpoch) {
                   probing_ = false;
                   return;
                 }
                 probed_epoch_ = cfg.epoch;
                 probed_members_ = cfg.members;
                 recon_epoch_ = cfg.epoch + 1;  // line 37
                 pending_target_ = recon_epoch_;
                 RATC_DEBUG(name() << " probes epoch " << probed_epoch_
                                   << " for new epoch " << recon_epoch_);
                 for (ProcessId p : probed_members_) {  // line 39
                   net_.send_msg(id(), p, commit::Probe{recon_epoch_});
                 }
               });
}

void ReconController::handle_probe_ack(ProcessId from, const commit::ProbeAck& m) {
  if (!probing_ || m.epoch != recon_epoch_ || m.shard != options_.shard) return;
  probe_responders_.insert(from);
  if (m.initialized) {
    propose(from);  // line 45: found the new leader
  } else {
    // Line 51's non-deterministic descent, realized by timer as in the
    // replica reconfigurer.
    round_has_false_ack_ = true;
    arm_descend_timer();
  }
}

void ReconController::propose(ProcessId leader_candidate) {
  probing_ = false;
  PlacementInput in;
  in.shard = options_.shard;
  in.next_epoch = recon_epoch_;
  in.leader_candidate = leader_candidate;
  in.responders.assign(probe_responders_.begin(), probe_responders_.end());
  in.suspected = suspects_;
  in.target_size = options_.target_shard_size;
  // Track what the policy consumes so a lost CAS can return it: spares in
  // a never-stored proposal stay globally fresh.
  auto allocated = std::make_shared<std::vector<ProcessId>>();
  auto allocate_fresh = [this, allocated](std::size_t n) {
    std::vector<ProcessId> out = options_.allocate_spares
                                     ? options_.allocate_spares(options_.shard, n)
                                     : std::vector<ProcessId>{};
    allocated->insert(allocated->end(), out.begin(), out.end());
    return out;
  };
  configsvc::ShardConfig next = policy_->plan(in, allocate_fresh);
  // Clamp the paper's hard constraints (line 48): the initialized probing
  // responder must be present and leading, at the probed-from epoch + 1.  A
  // policy may otherwise cost availability, never safety — the CAS below
  // and the probing protocol carry correctness.
  next.epoch = recon_epoch_;
  if (!next.has_member(leader_candidate)) {
    next.members.insert(next.members.begin(), leader_candidate);
  }
  next.leader = leader_candidate;
  // Line 49: CAS against the epoch we started probing from.
  cs_.cas(options_.shard, recon_epoch_ - 1, next, [this, next, allocated](bool ok) {
    if (ok) {
      ++stats_.epochs_initiated;
      RATC_DEBUG(name() << " installed " << next.to_string());
      net_.send_msg(id(), next.leader, commit::NewConfig{next.epoch, next.members});
      // A policy may have taken more spares than it used (e.g. a trimming
      // policy); whatever stayed out of the stored configuration is still
      // fresh and goes back.
      if (options_.release_spares) {
        std::vector<ProcessId> unused;
        for (ProcessId sp : *allocated) {
          if (!next.has_member(sp)) unused.push_back(sp);
        }
        if (!unused.empty()) options_.release_spares(options_.shard, unused);
      }
    } else {
      // Another reconfigurer won the epoch; our CONFIG_CHANGE subscription
      // delivers the winner and adopt_view re-evaluates the grievance.
      // The spares we reserved never entered a stored configuration, so
      // they go back to the pool (leaking them would leave the shard
      // unable to backfill a later genuine crash).
      ++stats_.cas_losses;
      if (!allocated->empty() && options_.release_spares) {
        options_.release_spares(options_.shard, *allocated);
      }
    }
  });
}

void ReconController::arm_descend_timer() {
  if (descend_timer_armed_) return;
  descend_timer_armed_ = true;
  sim().schedule_for(id(), options_.tuning.probe_patience, [this, r = round_] {
    descend_timer_armed_ = false;
    if (!probing_ || round_ != r) return;
    if (!round_has_false_ack_) return;
    descend_probing();
  });
}

void ReconController::descend_probing() {
  // Lines 52-55: the probed epoch will never be operational; continue with
  // the preceding one.
  if (probed_epoch_ <= 1) {
    RATC_WARN(name() << " abandoning reconfiguration: probed down to the first "
                        "epoch with no initialized member");
    probing_ = false;
    return;
  }
  probed_epoch_ -= 1;
  round_has_false_ack_ = false;
  cs_.get(options_.shard, probed_epoch_,
          [this, r = round_](bool found, const configsvc::ShardConfig& cfg) {
            if (!probing_ || round_ != r || !found) return;
            probed_members_ = cfg.members;
            for (ProcessId p : probed_members_) {
              net_.send_msg(id(), p, commit::Probe{recon_epoch_});
            }
          });
}

// --- kDelegateGlobal ----------------------------------------------------------

void ReconController::nudge() {
  // Prefer a live-looking member of our own shard; with the whole shard
  // suspect, fall back to members of other shards (any process may run the
  // global reconfiguration).  Round-robin so a crashed first choice does
  // not absorb every retry.
  std::vector<ProcessId> candidates;
  for (ProcessId p : view_.members) {
    if (suspects_.count(p) == 0) candidates.push_back(p);
  }
  if (candidates.empty()) {
    for (const auto& [s, members] : gview_.members) {
      if (s == options_.shard) continue;
      for (ProcessId p : members) candidates.push_back(p);
    }
  }
  if (candidates.empty()) return;  // nothing dispatched: no pending target
  ++stats_.nudges;
  // Unresolved until a newer global epoch is observed: a nudged replica
  // that dies mid-probe would otherwise leave its probed victims frozen
  // with nobody retrying (the watchdog re-nudges while this is set).
  if (gview_.valid()) pending_target_ = gview_.epoch + 1;
  ProcessId target = candidates[nudge_rr_++ % candidates.size()];
  RATC_DEBUG(name() << " nudges " << process_name(target));
  net_.send_msg(id(), target, NudgeReconfig{options_.shard, view_.epoch});
}

// --- dispatch -----------------------------------------------------------------

void ReconController::on_message(ProcessId from, const sim::AnyMessage& msg) {
  if (cs_.handle(msg)) return;
  if (fd_.handle(from, msg)) return;
  if (const auto* pa = msg.as<commit::ProbeAck>()) {
    handle_probe_ack(from, *pa);
  } else if (const auto* cc = msg.as<configsvc::ConfigChange>()) {
    handle_config_change(*cc);
  } else if (const auto* gc = msg.as<configsvc::GlobalConfigChange>()) {
    handle_global_config_change(*gc);
  }
}

}  // namespace ratc::ctrl
