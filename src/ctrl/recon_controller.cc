#include "ctrl/recon_controller.h"

#include <algorithm>

#include "commit/messages.h"
#include "common/log.h"
#include "ctrl/messages.h"

namespace ratc::ctrl {

ReconController::ReconController(sim::Simulator& sim, sim::Network& net,
                                 ProcessId id, Options options)
    : ReconController(net.runtime(), id, std::move(options)) {
  (void)sim;
}

ReconController::ReconController(rt::Runtime& rt, ProcessId id, Options options)
    : Process(rt, id, "ctrl/s" + std::to_string(options.shard)),
      options_(std::move(options)),
      cs_(rt, id, options_.cs_endpoints),
      fd_(rt, id, options_.tuning.fd),
      engine_(rt, id, *this,
              {.target_shard_size = options_.target_shard_size,
               .probe_patience = options_.tuning.probe_patience,
               .policy = options_.tuning.policy}),
      backoff_(options_.tuning.backoff_initial) {
  fd_.subscribe({.on_suspect = [this](ProcessId p) { on_suspect(p); },
                 .on_recover = [this](ProcessId p) { on_recover(p); }});
}

void ReconController::bootstrap(const configsvc::ShardConfig& view) {
  view_ = view;
  for (ProcessId p : view_.members) fd_.watch(p);
  fd_.start();
}

void ReconController::bootstrap_global(const configsvc::GlobalConfig& config) {
  gview_ = config;
  bootstrap(config.shard(options_.shard));
}

ReconController::Stats ReconController::stats() const {
  Stats s;
  s.suspicions = suspicions_;
  s.recoveries = recoveries_;
  s.attempts = attempts_;
  s.attempts_abandoned = attempts_abandoned_;
  s.epochs_initiated = engine_.stats().cas_wins;
  s.cas_losses = engine_.stats().cas_losses;
  s.nudges = nudges_;
  return s;
}

// --- trigger plumbing ---------------------------------------------------------

void ReconController::on_suspect(ProcessId peer) {
  ++suspicions_;
  suspects_.insert(peer);
  RATC_DEBUG(name() << " suspects " << process_name(peer));
  maybe_act();
}

void ReconController::on_recover(ProcessId peer) {
  ++recoveries_;
  suspects_.erase(peer);
  RATC_DEBUG(name() << " retracts suspicion of " << process_name(peer));
}

bool ReconController::have_live_grievance() const {
  for (ProcessId p : view_.members) {
    if (suspects_.count(p) > 0) return true;
  }
  return false;
}

void ReconController::maybe_act() {
  // Every trigger funnels here and re-validates: a suspicion retracted (or
  // reconfigured away) before the backoff window elapsed costs nothing.
  // An unresolved attempt (the engine's pending target) must be driven to
  // completion regardless — its probes have already frozen replicas.
  if (!have_live_grievance() && engine_.pending_target() == kNoEpoch) return;
  if (engine_.in_flight()) return;  // attempt in flight; its watchdog re-checks
  Time now = rt().now();
  if (now < next_allowed_) {
    if (!retry_armed_) {
      retry_armed_ = true;
      rt().schedule_for(id(), next_allowed_ - now, [this] {
        retry_armed_ = false;
        maybe_act();
      });
    }
    return;
  }
  start_attempt();
}

void ReconController::start_attempt() {
  Time now = rt().now();
  if (last_attempt_at_ != 0 &&
      now - last_attempt_at_ >= options_.tuning.backoff_reset_after) {
    backoff_ = options_.tuning.backoff_initial;  // new incident, fresh budget
  }
  last_attempt_at_ = now;
  next_allowed_ = now + backoff_;
  backoff_ = std::min(backoff_ * 2, options_.tuning.backoff_max);
  ++attempts_;
  ++round_;
  arm_watchdog();
  if (options_.mode == Mode::kDelegateGlobal) {
    nudge();
  } else {
    engine_.start({options_.shard});
  }
}

void ReconController::arm_watchdog() {
  rt().schedule_for(id(), options_.tuning.attempt_timeout, [this, r = round_] {
    if (round_ != r) return;  // a newer attempt owns the state
    if (engine_.in_flight()) {
      // Probes swallowed (e.g. every probed member crashed or partitioned
      // away) or the CS unreachable: abandon and retry under backoff.  The
      // engine keeps the pending target, so maybe_act keeps re-driving the
      // frozen shard even after the suspicion is retracted.
      engine_.abandon();
      ++attempts_abandoned_;
    }
    // Also covers the stuck-epoch case: a CAS-won configuration whose
    // leader died before activation leaves its members suspect, so the
    // grievance re-check below starts a fresh attempt that descends past
    // the dead epoch.
    maybe_act();
  });
}

// --- view tracking ------------------------------------------------------------

void ReconController::adopt_view(const configsvc::ShardConfig& next) {
  if (!next.valid() || next.epoch <= view_.epoch) return;
  // Someone (us, a peer controller, or a replica) installed a newer epoch:
  // an in-flight probe for an epoch it supersedes is moot, and any
  // unresolved attempt aiming at or below it is resolved — the winner's
  // handover unfreezes whatever our probes froze.
  engine_.observe_epoch(options_.shard, next.epoch);
  for (ProcessId p : view_.members) {
    if (!next.has_member(p)) {
      fd_.unwatch(p);
      suspects_.erase(p);
    }
  }
  view_ = next;
  // ensure_watched keeps the silence window of carried-over members: a
  // suspect that survived into the new configuration stays suspect.
  for (ProcessId p : view_.members) fd_.ensure_watched(p);
  maybe_act();
}

void ReconController::handle_config_change(const configsvc::ConfigChange& m) {
  if (m.shard != options_.shard) return;
  adopt_view(m.config);
}

void ReconController::handle_global_config_change(
    const configsvc::GlobalConfigChange& m) {
  if (!m.config.valid() || m.config.epoch <= gview_.epoch) return;
  gview_ = m.config;
  adopt_view(m.config.shard(options_.shard));
}

// --- recon::StackHooks (kPerShardCas) -----------------------------------------

void ReconController::fetch_latest(const std::vector<ShardId>& shards,
                                   std::function<void(bool, recon::Snapshot)> cb) {
  (void)shards;  // one-shard attempts only
  cs_.get_last(options_.shard, [this, cb](const configsvc::ShardConfig& cfg) {
    if (!cfg.valid()) {
      cb(false, {});
      return;
    }
    // The read may reveal an epoch we had not heard about (e.g. our
    // CONFIG_CHANGE was delayed): sync the view and re-validate before
    // freezing anyone with probes.
    adopt_view(cfg);
    if (!engine_.in_flight()) return;  // adoption resolved the attempt
    if (!have_live_grievance() && engine_.pending_target() == kNoEpoch) {
      cb(false, {});
      return;
    }
    recon::Snapshot snap;
    snap.epoch = cfg.epoch;
    snap.members[options_.shard] = cfg.members;
    cb(true, snap);
  });
}

void ReconController::fetch_members_at(
    ShardId shard, Epoch epoch,
    std::function<void(bool, std::vector<ProcessId>)> cb) {
  cs_.get(shard, epoch, [cb](bool found, const configsvc::ShardConfig& cfg) {
    cb(found, cfg.members);
  });
}

void ReconController::send_probe(ProcessId target, Epoch new_epoch) {
  rt().send_msg(id(), target, commit::Probe{new_epoch});
}

std::vector<ProcessId> ReconController::reserve_spares(ShardId shard,
                                                       std::size_t n) {
  return options_.allocate_spares ? options_.allocate_spares(shard, n)
                                  : std::vector<ProcessId>{};
}

void ReconController::release_spares(ShardId shard,
                                     const std::vector<ProcessId>& spares) {
  if (options_.release_spares) options_.release_spares(shard, spares);
}

void ReconController::submit(const recon::Proposal& proposal,
                             std::function<void(bool)> done) {
  cs_.cas(options_.shard, proposal.epoch - 1, proposal.shards.at(options_.shard),
          std::move(done));
}

void ReconController::activate(const recon::Proposal& proposal) {
  const configsvc::ShardConfig& next = proposal.shards.at(options_.shard);
  RATC_DEBUG(name() << " installed " << next.to_string());
  rt().send_msg(id(), next.leader, commit::NewConfig{next.epoch, next.members});
}

recon::PlacementContext ReconController::placement_context(ShardId shard) {
  recon::PlacementContext ctx =
      options_.placement_context ? options_.placement_context(shard)
                                 : recon::PlacementContext{};
  ctx.suspected.insert(suspects_.begin(), suspects_.end());
  return ctx;
}

// --- kDelegateGlobal ----------------------------------------------------------

void ReconController::nudge() {
  // Prefer a live-looking member of our own shard; with the whole shard
  // suspect, fall back to members of other shards (any process may run the
  // global reconfiguration).  Round-robin so a crashed first choice does
  // not absorb every retry.
  std::vector<ProcessId> candidates;
  for (ProcessId p : view_.members) {
    if (suspects_.count(p) == 0) candidates.push_back(p);
  }
  if (candidates.empty()) {
    for (const auto& [s, members] : gview_.members) {
      if (s == options_.shard) continue;
      for (ProcessId p : members) candidates.push_back(p);
    }
  }
  if (candidates.empty()) return;  // nothing dispatched: no pending target
  ++nudges_;
  // Unresolved until a newer global epoch is observed: a nudged replica
  // that dies mid-probe would otherwise leave its probed victims frozen
  // with nobody retrying (the watchdog re-nudges while this is set).
  if (gview_.valid()) engine_.set_pending_target(gview_.epoch + 1);
  ProcessId target = candidates[nudge_rr_++ % candidates.size()];
  RATC_DEBUG(name() << " nudges " << process_name(target));
  rt().send_msg(id(), target, NudgeReconfig{options_.shard, view_.epoch});
}

// --- dispatch -----------------------------------------------------------------

void ReconController::on_message(ProcessId from, const sim::AnyMessage& msg) {
  if (cs_.handle(msg)) return;
  if (fd_.handle(from, msg)) return;
  if (const auto* pa = msg.as<commit::ProbeAck>()) {
    engine_.on_probe_ack(from, pa->shard, pa->epoch, pa->initialized);
  } else if (const auto* cc = msg.as<configsvc::ConfigChange>()) {
    handle_config_change(*cc);
  } else if (const auto* gc = msg.as<configsvc::GlobalConfigChange>()) {
    handle_global_config_change(*gc);
  }
}

}  // namespace ratc::ctrl
