// Heartbeat-based failure detection.
//
// The paper (Sec. 3) says "reconfiguration is initiated by a replica when
// it suspects another replica of failing" without prescribing a mechanism.
// This module supplies one: a ping/pong monitor embeddable in any process.
// In the simulator's reliable network, a peer is suspected iff it actually
// crashed (after the timeout) — an eventually-perfect detector.
//
//  * fd::Responder — drop-in pong responder for monitored processes.
//  * fd::PingMonitor — sends pings on a period, suspects after a silence
//    threshold, and notifies registered subscribers once per suspicion edge
//    and once per recovery (a suspected peer answering again).  Ticking
//    pauses while no peer is watched (and resumes on the next watch), so an
//    idle monitor never keeps the simulator's event queue alive — embedders
//    can run the simulation to quiescence.
#pragma once

#include <functional>
#include <map>
#include <set>
#include <vector>

#include "common/types.h"
#include "rt/runtime.h"
#include "sim/network.h"
#include "sim/simulator.h"

namespace ratc::fd {

struct Ping {
  static constexpr const char* kName = "FD_PING";
  std::uint64_t seq = 0;
};

struct Pong {
  static constexpr const char* kName = "FD_PONG";
  std::uint64_t seq = 0;
};

/// Embed in a monitored process: answers pings.  Returns true if consumed.
class Responder {
 public:
  Responder(rt::Runtime& rt, ProcessId owner) : rt_(rt), owner_(owner) {}
  Responder(sim::Network& net, ProcessId owner) : Responder(net.runtime(), owner) {}

  bool handle(ProcessId from, const sim::AnyMessage& msg) {
    const auto* ping = msg.as<Ping>();
    if (ping == nullptr) return false;
    rt_.send_msg(owner_, from, Pong{ping->seq});
    return true;
  }

 private:
  rt::Runtime& rt_;
  ProcessId owner_;
};

/// Embed in a monitoring process: pings watched peers periodically and
/// reports suspicions.
class PingMonitor {
 public:
  struct Options {
    Duration ping_every = 20;
    Duration suspect_after = 50;  ///< silence threshold
  };

  PingMonitor(rt::Runtime& rt, ProcessId owner, Options options)
      : rt_(rt), owner_(owner), options_(options) {}

  PingMonitor(rt::Runtime& rt, ProcessId owner)
      : PingMonitor(rt, owner, Options{}) {}

  PingMonitor(sim::Simulator& sim, sim::Network& net, ProcessId owner,
              Options options)
      : PingMonitor(net.runtime(), owner, options) { (void)sim; }

  PingMonitor(sim::Simulator& sim, sim::Network& net, ProcessId owner)
      : PingMonitor(net.runtime(), owner, Options{}) { (void)sim; }

  /// Registered suspicion/recovery callbacks.  on_suspect fires once per
  /// suspicion edge (a watched peer crossing the silence threshold);
  /// on_recover fires when a suspected peer answers a ping again (the
  /// spurious-suspicion retraction of an eventually-perfect detector).
  struct Callbacks {
    std::function<void(ProcessId)> on_suspect;
    std::function<void(ProcessId)> on_recover;
  };
  using SubscriptionId = std::uint64_t;

  SubscriptionId subscribe(Callbacks cbs) {
    SubscriptionId id = next_subscription_++;
    subscribers_[id] = std::move(cbs);
    return id;
  }

  void unsubscribe(SubscriptionId id) { subscribers_.erase(id); }

  void watch(ProcessId peer) {
    watched_[peer] = rt_.now();
    suspected_.erase(peer);
    if (started_ && !ticking_) {
      ticking_ = true;
      tick();
    }
  }

  /// Watches `peer` unless already watched (a plain watch() would reset an
  /// accumulated silence window and retract an existing suspicion).
  /// Returns whether `peer` is currently suspected — the caller's cue that
  /// the on_suspect edge has already fired and will not fire again.
  bool ensure_watched(ProcessId peer) {
    if (!watching(peer)) watch(peer);
    return suspects(peer);
  }

  void unwatch(ProcessId peer) {
    watched_.erase(peer);
    suspected_.erase(peer);
  }

  bool watching(ProcessId peer) const { return watched_.count(peer) > 0; }
  bool suspects(ProcessId peer) const { return suspected_.count(peer) > 0; }

  void start() {
    if (started_) return;
    started_ = true;
    if (!watched_.empty()) {
      ticking_ = true;
      tick();
    }
  }

  /// The owner forwards incoming messages; returns true if consumed.
  bool handle(ProcessId from, const sim::AnyMessage& msg) {
    const auto* pong = msg.as<Pong>();
    if (pong == nullptr) return false;
    auto it = watched_.find(from);
    if (it != watched_.end()) {
      it->second = rt_.now();
      if (suspected_.erase(from) > 0) {  // spurious suspicion retracted
        notify(from, &Callbacks::on_recover);
      }
    }
    return true;
  }

 private:
  /// Callbacks may subscribe/unsubscribe (mutating subscribers_) while a
  /// notification is being dispatched, so iterate over a snapshot of the
  /// subscription IDS and re-validate each before invoking:
  ///  * a subscriber unregistered mid-dispatch (by itself or by an earlier
  ///    callback) must NOT fire — its owner may already be torn down, and a
  ///    snapshot of the std::functions would still call it;
  ///  * the function object is copied before the call, because a callback
  ///    that unsubscribes *itself* destroys the stored std::function it is
  ///    currently executing (iterator/self invalidation);
  ///  * subscribers added mid-dispatch never see the in-flight edge.
  void notify(ProcessId peer, std::function<void(ProcessId)> Callbacks::* which) {
    std::vector<SubscriptionId> ids;
    ids.reserve(subscribers_.size());
    for (const auto& [id, cbs] : subscribers_) {
      (void)cbs;
      ids.push_back(id);
    }
    for (SubscriptionId id : ids) {
      auto it = subscribers_.find(id);
      if (it == subscribers_.end()) continue;  // unsubscribed mid-dispatch
      auto fn = it->second.*which;             // copy: may unsubscribe itself
      if (fn) fn(peer);
    }
  }

  void tick() {
    if (watched_.empty()) {
      ticking_ = false;  // pause; the next watch() resumes
      return;
    }
    // Callbacks may watch/unwatch (mutating watched_), so collect suspects
    // first and fire after the iteration.
    std::vector<ProcessId> newly_suspected;
    for (auto& [peer, last_heard] : watched_) {
      rt_.send_msg(owner_, peer, Ping{seq_++});
      if (rt_.now() - last_heard >= options_.suspect_after &&
          suspected_.insert(peer).second) {
        newly_suspected.push_back(peer);
      }
    }
    for (ProcessId peer : newly_suspected) {
      notify(peer, &Callbacks::on_suspect);
    }
    rt_.schedule_for(owner_, options_.ping_every, [this] { tick(); });
  }

  rt::Runtime& rt_;
  ProcessId owner_;
  Options options_;
  std::map<ProcessId, Time> watched_;
  std::set<ProcessId> suspected_;
  std::map<SubscriptionId, Callbacks> subscribers_;
  SubscriptionId next_subscription_ = 1;
  std::uint64_t seq_ = 0;
  bool started_ = false;
  bool ticking_ = false;
};

}  // namespace ratc::fd
