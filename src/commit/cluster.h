// Construction and operations harness: assembles a full system (shards of
// f+1 replicas plus spares, the configuration service, clients, the
// invariant monitor) and provides failure/reconfiguration helpers.  Used by
// tests, benches and examples.
#pragma once

#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "checker/tcsll.h"
#include "commit/client.h"
#include "commit/monitor.h"
#include "commit/replica.h"
#include "configsvc/replicated_service.h"
#include "configsvc/simple_service.h"
#include "ctrl/recon_controller.h"
#include "sim/network.h"
#include "sim/simulator.h"
#include "sim/trace.h"
#include "tcs/certifier.h"
#include "tcs/history.h"
#include "tcs/shard_map.h"

namespace ratc::commit {

class Cluster {
 public:
  struct Options {
    std::uint64_t seed = 1;
    std::uint32_t num_shards = 2;
    std::size_t shard_size = 2;  ///< f+1 replicas per shard
    std::size_t spares_per_shard = 2;
    std::string isolation = "serializability";
    /// Use the 2f+1 Paxos-replicated CS instead of the reliable process.
    bool replicated_cs = false;
    /// Nonzero enables automatic coordinator recovery at replicas.
    Duration retry_timeout = 0;
    Duration probe_patience = 5;
    /// Ablation E14: leader-driven instead of coordinator-delegated
    /// replication of ACCEPTs.
    bool leader_ships_accepts = false;
    /// Exponentially distributed link delays instead of unit delays.
    bool exponential_delays = false;
    double delay_mean = 5.0;
    /// Per-link delay override (wins over the flags above); return 0 for
    /// the default.  Used by benches to model e.g. CPU-inflated messaging.
    std::function<Duration(ProcessId from, ProcessId to)> link_delay;
    bool enable_monitor = true;
    bool enable_tracer = false;
    /// Spawn one autonomous reconfiguration controller per shard
    /// (src/ctrl/): failure-detector-driven healing with no harness levers.
    bool enable_controller = false;
    ctrl::ControllerTuning controller_tuning;
    /// Membership policy consulted by every reconfigurer in the cluster —
    /// replica-driven (Fig. 1) and, unless controller_tuning.policy is set,
    /// the controllers too.  Null selects recon::ReplaceSuspectsPolicy.
    /// Non-owning.
    recon::PlacementPolicy* placement_policy = nullptr;
    /// When nonzero, replicas get synthetic zone labels ("z0".."z<n-1>",
    /// assigned round-robin by per-shard index) surfaced to placement
    /// policies through the PlacementContext.
    std::size_t num_zones = 0;
    /// Debug cross-check: every vote is recomputed with the flat L1/L2 log
    /// scan and the process aborts if the witness index disagrees (see
    /// commit::Replica::Options).  Meant for tests and sweeps.
    bool check_certifier_index = false;
  };

  explicit Cluster(Options options);

  // --- topology ---------------------------------------------------------------

  std::uint32_t num_shards() const { return options_.num_shards; }
  /// Replica by original position (shard, index); index < shard_size are
  /// initial members, >= shard_size are spares.
  Replica& replica(ShardId s, std::size_t idx);
  Replica& replica_by_pid(ProcessId pid);
  const Replica& replica_by_pid(ProcessId pid) const;
  std::vector<ProcessId> initial_members(ShardId s) const;
  std::vector<ProcessId> spares(ShardId s) const;

  /// Current configuration according to the configuration service.
  configsvc::ShardConfig current_config(ShardId s) const;
  ProcessId leader_of(ShardId s) const { return current_config(s).leader; }

  // --- clients ------------------------------------------------------------------

  Client& add_client();
  Client& client(std::size_t i) { return *clients_[i]; }
  std::size_t num_clients() const { return clients_.size(); }
  TxnId next_txn_id() { return next_txn_++; }

  // --- failure & reconfiguration helpers -----------------------------------------

  void crash(ProcessId pid) { sim_.crash(pid); }
  void crash_leader(ShardId s) { sim_.crash(leader_of(s)); }
  /// Asks `by` to reconfigure shard s (any process can, Fig. 1 line 33).
  void reconfigure(ShardId s, ProcessId by) { replica_by_pid(by).reconfigure(s); }

  /// Runs until the CS stores an epoch >= `at_least` for shard s and that
  /// configuration's members all report the epoch (activation).
  bool await_active_epoch(ShardId s, Epoch at_least, std::size_t max_events = 2'000'000);

  // --- autonomous reconfiguration (src/ctrl/) ---------------------------------

  bool has_controller() const { return !controllers_.empty(); }
  ctrl::ReconController& controller(ShardId s) { return *controllers_.at(s); }
  /// Total reconfiguration attempts started by the controllers.
  std::size_t controller_attempts() const;

  // --- shared reconfigurer core (src/recon/) -----------------------------------

  /// Aggregate recon::Engine counters over every reconfigurer in the
  /// cluster (replicas + controllers).
  recon::EngineStats engine_stats() const;
  /// The spare ledger invariant, checked per engine: every reserved spare
  /// is installed in a stored configuration, released back to the pool, or
  /// still awaiting its CAS outcome.  Empty iff balanced everywhere.
  std::string spare_ledger_verdict() const;
  /// Cluster knowledge handed to placement policies (zones, per-process
  /// load, spare-pool depth).
  recon::PlacementContext placement_context(ShardId s) const;

  // --- infrastructure access -------------------------------------------------------

  sim::Simulator& sim() { return sim_; }
  sim::Network& net() { return *net_; }
  Monitor& monitor() { return *monitor_; }
  sim::Tracer& tracer() { return *tracer_; }
  tcs::History& history() { return history_; }
  const tcs::ShardMap& shard_map() const { return shard_map_; }
  const tcs::Certifier& certifier() const { return *certifier_; }
  const Options& options() const { return options_; }

  // --- read-only snapshot transactions (CSN fast path) -------------------------

  /// Executes a read-only transaction over `objects` at one consistent
  /// snapshot with ZERO certification messages: per involved shard, one
  /// live member holding the authoritative epoch is consulted (member_hint
  /// rotates the pick, so followers serve too), the snapshot is the minimum
  /// of their CSN watermarks, and every object resolves locally from that
  /// member's multi-version store.  Served reads are recorded in the
  /// history for checker::check_snapshot_reads.  Returns the snapshot, or
  /// nullopt when the read could not be served: no suitable member for some
  /// shard, version history truncated below the snapshot, or — with
  /// staleness_bound > 0 — the snapshot lagging `now` by more than the
  /// bound.
  std::optional<tcs::Csn> snapshot_read(const std::vector<ObjectId>& objects,
                                        Duration staleness_bound = 0,
                                        std::uint64_t member_hint = 0);

  // --- checking ---------------------------------------------------------------------

  /// Runs the TCS-LL checker (Fig. 6) over the recorded execution.
  checker::TcsLLResult check_tcsll() const;

  /// Combined end-of-run verdict: no monitor violations, no conflicting
  /// client decisions, TCS-LL holds.  Returns a diagnostic on failure.
  std::string verify() const;

 private:
  ProcessId replica_pid(ShardId s, std::size_t idx) const;
  /// Hands out up to n fresh spares for `shard`, permanently consuming them
  /// (global freshness; see Replica::Options::allocate_spares).  Shared by
  /// replica reconfigurers and the autonomous controllers.
  std::vector<ProcessId> allocate_spares(ShardId shard, std::size_t n);
  /// Returns spares whose proposal never entered a stored configuration.
  void release_spares(ShardId shard, const std::vector<ProcessId>& spares);

  Options options_;
  sim::Simulator sim_;
  std::unique_ptr<sim::Network> net_;
  tcs::ShardMap shard_map_;
  std::unique_ptr<tcs::Certifier> certifier_;
  std::unique_ptr<Monitor> monitor_;
  std::unique_ptr<sim::Tracer> tracer_;
  std::unique_ptr<configsvc::SimpleConfigService> simple_cs_;
  std::unique_ptr<configsvc::ReplicatedConfigService> replicated_cs_;
  std::vector<std::unique_ptr<Replica>> replicas_;
  std::vector<std::unique_ptr<ctrl::ReconController>> controllers_;
  std::vector<std::unique_ptr<Client>> clients_;
  /// Never-yet-used spare processes per shard (the "fresh process" pool;
  /// allocation permanently consumes).
  std::map<ShardId, std::vector<ProcessId>> free_spares_;
  /// Synthetic zone labels (num_zones > 0), fixed at construction.
  std::map<ProcessId, std::string> zones_;
  tcs::History history_;
  TxnId next_txn_ = 1;
};

}  // namespace ratc::commit
