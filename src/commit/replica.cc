#include "commit/replica.h"

#include <algorithm>
#include <cassert>
#include <cstdlib>

#include "commit/monitor.h"
#include "common/log.h"

namespace ratc::commit {

using tcs::Decision;

Replica::Replica(rt::Runtime& rt, ProcessId id, Options options)
    : Process(rt, id, "r" + std::to_string(id) + "/s" + std::to_string(options.shard)),
      options_(std::move(options)),
      cs_(rt, id, options_.cs_endpoints),
      fd_responder_(rt, id),
      monitor_(options_.monitor),
      engine_(rt, id, *this,
              {.target_shard_size = options_.target_shard_size,
               .probe_patience = options_.probe_patience,
               .policy = options_.placement_policy}),
      store_(options_.snapshot_history_depth) {
  assert(options_.shard_map != nullptr && options_.certifier != nullptr);
}

Replica::Replica(sim::Simulator& sim, sim::Network& net, ProcessId id,
                 Options options)
    : Replica(net.runtime(), id, std::move(options)) {
  (void)sim;
}

const configsvc::ShardConfig& Replica::view(ShardId s) const {
  static const configsvc::ShardConfig kInvalid;
  auto it = views_.find(s);
  return it == views_.end() ? kInvalid : it->second;
}

void Replica::bootstrap(Status status,
                        const std::map<ShardId, configsvc::ShardConfig>& all_views) {
  views_ = all_views;
  status_ = status;
  initialized_ = true;
  new_epoch_ = view(options_.shard).epoch;
  arm_retry_timer();
}

void Replica::bootstrap_spare(
    const std::map<ShardId, configsvc::ShardConfig>& all_views) {
  views_ = all_views;
  status_ = Status::kReconfiguring;  // inert until it receives NEW_STATE
  initialized_ = false;
  new_epoch_ = kNoEpoch;
  // A spare's view of its own shard must not claim membership.
  arm_retry_timer();
}

// --- certification ----------------------------------------------------------

void Replica::certify_local(TxnId txn, const tcs::Payload& payload,
                            std::function<void(tcs::Decision, Time)> cb,
                            ProcessId origin) {
  TxnMeta meta;
  meta.txn = txn;
  meta.participants = options_.shard_map->shards_of(payload);
  // The co-located client's id rides in the meta so a successor coordinator
  // (retry path, line 70) can still deliver the decision after this replica
  // crashed — the live coordinator itself always uses the local callback.
  meta.client = origin;
  start_certification(std::move(meta), &payload, std::move(cb));
}

void Replica::start_certification(TxnMeta meta, const tcs::Payload* full_payload,
                                  std::function<void(tcs::Decision, Time)> local_cb) {
  TxnId txn = meta.txn;
  // Transactions touching no shard (empty payloads) commit trivially.
  if (meta.participants.empty()) {
    if (local_cb) {
      if (monitor_) monitor_->on_local_decision(txn, Decision::kCommit);
      local_cb(Decision::kCommit, 0);
    } else if (meta.client != kNoProcess) {
      rt().send_msg(id(), meta.client, ClientDecision{txn, Decision::kCommit});
    }
    return;
  }
  CoordState& c = coord_[txn];
  if (c.decided) return;  // late retry of an already-decided coordination
  undecided_coords_.insert(txn);
  c.meta = meta;
  if (local_cb) c.local_cb = std::move(local_cb);
  c.last_driven = rt().now();
  // Line 2-3: send PREPARE with the shard projection to each leader.
  for (ShardId s : meta.participants) {
    Prepare p;
    p.txn = txn;
    if (full_payload != nullptr) {
      p.has_payload = true;
      p.payload = options_.shard_map->project(*full_payload, s);
      c.shard_payloads[s] = p.payload;
    } else {
      p.has_payload = false;  // ⊥: retry path (line 73)
    }
    p.meta = meta;
    rt().send_msg(id(), view(s).leader, p);
  }
}

void Replica::certify_batch_local(
    const std::vector<std::pair<TxnId, tcs::Payload>>& batch,
    std::function<void(TxnId, tcs::Decision, Time)> cb, ProcessId origin) {
  if (batch.size() == 1) {
    TxnId txn = batch.front().first;
    certify_local(
        txn, batch.front().second,
        [cb, txn](Decision d, Time csn_ts) { cb(txn, d, csn_ts); }, origin);
    return;
  }
  // Same per-transaction coordinator state as start_certification, but the
  // PREPAREs of the whole batch are grouped into one message per shard
  // leader (and one run of consecutive log appends there).
  std::map<ShardId, PrepareBatch> per_shard;
  for (const auto& [txn, payload] : batch) {
    TxnMeta meta;
    meta.txn = txn;
    meta.participants = options_.shard_map->shards_of(payload);
    // As in certify_local: carrying the origin client lets a successor
    // coordinator finish *each batch item independently* after a crash —
    // without it, decisions recovered by the line-70 retry path had nowhere
    // to go for locally-submitted batches and the whole batch's outcomes
    // were lost with the coordinator.
    meta.client = origin;
    if (meta.participants.empty()) {
      if (monitor_) monitor_->on_local_decision(txn, Decision::kCommit);
      cb(txn, Decision::kCommit, 0);
      continue;
    }
    CoordState& c = coord_[txn];
    if (c.decided) continue;
    undecided_coords_.insert(txn);
    c.meta = meta;
    c.local_cb = [cb, txn](Decision d, Time csn_ts) { cb(txn, d, csn_ts); };
    c.last_driven = rt().now();
    for (ShardId s : meta.participants) {
      Prepare p;
      p.txn = txn;
      p.has_payload = true;
      p.payload = options_.shard_map->project(payload, s);
      c.shard_payloads[s] = p.payload;
      p.meta = meta;
      per_shard[s].items.push_back(std::move(p));
    }
  }
  for (auto& [s, pb] : per_shard) {
    if (pb.items.size() == 1) {
      // A lone prepare keeps the scalar vocabulary (and the scalar trace).
      rt().send_msg(id(), view(s).leader, std::move(pb.items.front()));
    } else {
      rt().send_msg(id(), view(s).leader, std::move(pb));
    }
  }
}

void Replica::certify_batch_remote(ProcessId client,
                                   const std::vector<CertifyRequest>& items) {
  // Mirrors certify_batch_local, with decisions routed back to the remote
  // client (meta.client) instead of a local callback.
  std::map<ShardId, PrepareBatch> per_shard;
  for (const CertifyRequest& item : items) {
    TxnMeta meta;
    meta.txn = item.txn;
    meta.participants = options_.shard_map->shards_of(item.payload);
    meta.client = client;
    if (meta.participants.empty()) {
      rt().send_msg(id(), client, ClientDecision{item.txn, Decision::kCommit});
      continue;
    }
    CoordState& c = coord_[item.txn];
    if (c.decided) continue;
    undecided_coords_.insert(item.txn);
    c.meta = meta;
    c.last_driven = rt().now();
    for (ShardId s : meta.participants) {
      Prepare p;
      p.txn = item.txn;
      p.has_payload = true;
      p.payload = options_.shard_map->project(item.payload, s);
      c.shard_payloads[s] = p.payload;
      p.meta = meta;
      per_shard[s].items.push_back(std::move(p));
    }
  }
  for (auto& [s, pb] : per_shard) {
    if (pb.items.size() == 1) {
      rt().send_msg(id(), view(s).leader, std::move(pb.items.front()));
    } else {
      rt().send_msg(id(), view(s).leader, std::move(pb));
    }
  }
}

void Replica::redrive_coordinations(const std::set<TxnId>& driven_this_tick) {
  // A PREPARE sent to a leader that crashed before certifying leaves no
  // prepared witness anywhere, so the line-70 retry path can never find it:
  // without this re-drive the transaction stays undecided forever (the
  // availability hole the autonomous-reconfiguration sweeps exposed).  The
  // coordinator still holds the projections, so it re-sends the PREPAREs to
  // the *current* leaders; leaders that already certified the transaction
  // just re-send their stored result (lines 6-7), making this idempotent.
  // Each coordination is re-driven independently with its *own* per-shard
  // projections — transactions that arrived in one client batch share no
  // fate here, so one item's lost PREPARE never stalls its batch-mates.
  (void)driven_this_tick;  // only read by the assert below
  Time now = rt().now();
  for (TxnId txn : undecided_coords_) {
    CoordState& c = coord_.at(txn);
    if (now - c.last_driven < options_.retry_timeout) continue;
    // A transaction the slot-retry pass just re-drove has last_driven == now
    // and was skipped above; this pins that no coordination is driven twice
    // within one timer tick.
    assert(driven_this_tick.count(txn) == 0 &&
           "coordination re-driven twice in one retry tick");
    c.last_driven = now;
    for (ShardId s : c.meta.participants) {
      Prepare p;
      p.txn = txn;
      auto it = c.shard_payloads.find(s);
      if (it != c.shard_payloads.end()) {
        p.has_payload = true;
        p.payload = it->second;
      } else {
        p.has_payload = false;
      }
      p.meta = c.meta;
      rt().send_msg(id(), view(s).leader, p);
    }
  }
}

void Replica::retry(Slot k) {
  const LogEntry* e = log_.find(k);
  // Line 71 pre: phase[k] = prepared.
  if (e == nullptr || e->phase != Phase::kPrepared) return;
  TxnMeta meta = e->meta;
  RATC_DEBUG(name() << " retries txn" << meta.txn);
  // Lines 72-73: PREPARE(txn[k], ⊥) to the leaders of shards(txn[k]); this
  // replica becomes an additional coordinator for the transaction.
  start_certification(std::move(meta), nullptr, nullptr);
}

void Replica::handle_prepare(ProcessId from, const Prepare& m) {
  // Line 5 pre: status = leader.
  if (status_ != Status::kLeader) return;
  prepare_and_ack(from, m);
}

PrepareAck Replica::prepare_txn(const Prepare& m) {
  Slot existing = log_.slot_of(m.txn);
  PrepareAck ack;
  ack.epoch = view(options_.shard).epoch;
  ack.shard = options_.shard;
  ack.txn = m.txn;
  if (existing != kNoSlot) {
    // Lines 6-7: already certified; re-send the stored result.
    const LogEntry& e = *log_.find(existing);
    ack.slot = existing;
    ack.payload = e.payload;
    ack.vote = e.vote;
    ack.meta = e.meta;
    ack.prepare_ts = e.prepare_ts;
  } else {
    // Lines 9-17: append to the certification order and vote.
    next_ += 1;
    LogEntry& e = log_.at(next_);
    e.txn = m.txn;
    e.phase = Phase::kPrepared;
    e.meta = m.meta;
    // The CSN-log stamp: final for the slot's life, replayed verbatim by the
    // stored-result path above so csn(t) is stable across prepare retries.
    e.prepare_ts = rt().now();
    if (m.has_payload) {
      e.payload = m.payload;     // line 13
      e.vote = compute_vote(next_, m.payload);  // line 12
    } else {
      e.vote = Decision::kAbort;     // line 15
      e.payload = tcs::empty_payload();  // line 16
      if (monitor_ || options_.check_certifier_index) {
        // Report the same witness sets a real vote computation would use:
        // constraint (10) of Fig. 6 pins T_s exactly even for abort votes.
        // The vote itself is line 15's protocol constant, not an index
        // computation, so only the sets are cross-checked against the flat
        // scan (the flat vote over the empty payload trivially commits).
        WitnessIndex::Witnesses w = index_.collect(log_, next_);
        check_index_sets_against_flat(next_, w);
        if (monitor_) {
          monitor_->on_vote_computed(options_.shard, view(options_.shard).epoch,
                                     next_, m.txn, e.vote, e.payload,
                                     std::move(w.committed),
                                     std::move(w.prepared));
        }
      }
    }
    prepared_at_[next_] = rt().now();
    // The slot's vote and payload are final for its prepared life: index it
    // (no-op for abort votes, which never enter L2).
    index_.on_prepared(log_, next_);
    ack.slot = next_;
    ack.payload = e.payload;
    ack.vote = e.vote;
    ack.meta = e.meta;
    ack.prepare_ts = e.prepare_ts;
  }
  return ack;
}

static Accept make_accept(const PrepareAck& ack, ProcessId coordinator) {
  Accept acc;
  acc.epoch = ack.epoch;
  acc.shard = ack.shard;
  acc.slot = ack.slot;
  acc.txn = ack.txn;
  acc.payload = ack.payload;
  acc.vote = ack.vote;
  acc.meta = ack.meta;
  acc.coordinator = coordinator;
  acc.prepare_ts = ack.prepare_ts;
  return acc;
}

void Replica::prepare_and_ack(ProcessId coordinator, const Prepare& m) {
  PrepareAck ack = prepare_txn(m);
  rt().send_msg(id(), coordinator, ack);
  if (options_.leader_ships_accepts) {
    // Ablation: leader-driven replication — the leader fans the ACCEPT out
    // itself; followers acknowledge to the coordinator.
    Accept acc = make_accept(ack, coordinator);
    for (ProcessId f : view(options_.shard).followers()) {
      rt().send_msg(id(), f, acc);
    }
  }
}

void Replica::handle_prepare_batch(ProcessId from, const PrepareBatch& m) {
  if (status_ != Status::kLeader) return;  // line 5 pre, once for the batch
  PrepareAckBatch acks;
  acks.items.reserve(m.items.size());
  std::map<ProcessId, AcceptBatch> ship;  // leader-driven ablation only
  for (const Prepare& p : m.items) {
    PrepareAck ack = prepare_txn(p);
    if (options_.leader_ships_accepts) {
      Accept acc = make_accept(ack, from);
      for (ProcessId f : view(options_.shard).followers()) {
        ship[f].items.push_back(acc);
      }
    }
    acks.items.push_back(std::move(ack));
  }
  rt().send_msg(id(), from, std::move(acks));
  for (auto& [f, batch] : ship) rt().send_msg(id(), f, std::move(batch));
}

Replica::Witnesses Replica::collect_witnesses(Slot slot) const {
  // The L1/L2 definitions below Fig. 1:
  //   L1 = payloads of decided-commit slots before this one,
  //   L2 = payloads of prepared slots with commit votes before this one.
  Witnesses w;
  for (Slot k = 1; k < slot; ++k) {
    const LogEntry* e = log_.find(k);
    if (e == nullptr || !e->filled()) continue;
    if (e->phase == Phase::kDecided && e->dec == Decision::kCommit) {
      w.l1.push_back(&e->payload);
      w.committed.push_back(e->txn);
    } else if (e->phase == Phase::kPrepared && e->vote == Decision::kCommit) {
      w.l2.push_back(&e->payload);
      w.prepared.push_back(e->txn);
    }
  }
  return w;
}

void Replica::check_index_against_flat(Slot slot, tcs::Decision indexed_vote,
                                       const tcs::Payload& l,
                                       const WitnessIndex::Witnesses& w) const {
  if (!options_.check_certifier_index) return;
  // Deliberately not assert(): the cross-check must fire in RelWithDebInfo
  // sweeps too, not only in -UNDEBUG builds.
  Witnesses flat = collect_witnesses(slot);
  Decision flat_vote = options_.certifier->vote(flat.l1, flat.l2, l);
  if (indexed_vote != flat_vote) {
    RATC_ERROR(name() << " witness index vote diverged at slot " << slot << ": indexed="
                      << tcs::to_string(indexed_vote) << " flat=" << tcs::to_string(flat_vote));
    std::abort();
  }
  check_index_sets_against_flat(slot, w);
}

void Replica::check_index_sets_against_flat(
    Slot slot, const WitnessIndex::Witnesses& w) const {
  if (!options_.check_certifier_index) return;
  Witnesses flat = collect_witnesses(slot);
  if (flat.committed != w.committed || flat.prepared != w.prepared) {
    RATC_ERROR(name() << " witness index T_s/P_s sets diverged at slot " << slot);
    std::abort();
  }
}

tcs::Decision Replica::compute_vote(Slot slot, const tcs::Payload& l) {
  // Line 12: vote = f_s(L1, l) ⊓ g_s(L2, l), through the witness index — a
  // vote touches only payloads sharing an object with l instead of the whole
  // log.  The voting slot itself is not indexed yet (on_prepared runs after
  // the vote lands in the entry), so the index covers exactly slots < slot.
  Decision vote = index_.vote(*options_.certifier, log_, l);
  WitnessIndex::Witnesses w;
  if (monitor_ || options_.check_certifier_index) w = index_.collect(log_, slot);
  check_index_against_flat(slot, vote, l, w);
  if (monitor_) {
    monitor_->on_vote_computed(options_.shard, view(options_.shard).epoch, slot,
                               log_.find(slot)->txn, vote, l, std::move(w.committed),
                               std::move(w.prepared));
  }
  return vote;
}

bool Replica::note_prepare_ack(const PrepareAck& m, Accept* accept) {
  // Line 19 pre: epoch[s] = e (the coordinator's view matches the ack).
  if (view(m.shard).epoch != m.epoch) return false;
  auto it = coord_.find(m.txn);
  if (it == coord_.end() || it->second.decided) return false;
  CoordState& c = it->second;
  ShardProgress& pr = c.progress[m.shard];
  if (pr.have_prepare_ack && pr.epoch == m.epoch && pr.slot == m.slot) {
    // Duplicate: keep existing follower acks, just re-replicate below.
  } else {
    pr.have_prepare_ack = true;
    pr.epoch = m.epoch;
    pr.slot = m.slot;
    pr.vote = m.vote;
    pr.prepare_ts = m.prepare_ts;
    pr.follower_acks.clear();
  }
  accept->epoch = m.epoch;
  accept->shard = m.shard;
  accept->slot = m.slot;
  accept->txn = m.txn;
  accept->payload = m.payload;
  accept->vote = m.vote;
  accept->meta = m.meta;
  accept->prepare_ts = m.prepare_ts;
  return true;
}

void Replica::handle_prepare_ack(ProcessId from, const PrepareAck& m) {
  (void)from;
  Accept acc;
  if (!note_prepare_ack(m, &acc)) return;
  // Line 20: delegate replication to the coordinator — ship the leader's
  // result to the followers.  (Suppressed in the leader-driven ablation,
  // where the leader already fanned the ACCEPT out.)
  if (!options_.leader_ships_accepts) {
    for (ProcessId f : view(m.shard).followers()) {
      rt().send_msg(id(), f, acc);
    }
  }
  check_coordination(m.txn);  // zero-follower shards complete immediately
}

void Replica::handle_prepare_ack_batch(ProcessId from, const PrepareAckBatch& m) {
  (void)from;
  // One AcceptBatch per follower carries the whole batch's replication
  // writes; the items all come from one leader, so the follower sets agree.
  std::map<ProcessId, AcceptBatch> ship;
  for (const PrepareAck& item : m.items) {
    Accept acc;
    if (!note_prepare_ack(item, &acc)) continue;
    if (!options_.leader_ships_accepts) {
      for (ProcessId f : view(item.shard).followers()) {
        ship[f].items.push_back(acc);
      }
    }
    check_coordination(item.txn);  // zero-follower shards complete immediately
  }
  for (auto& [f, batch] : ship) {
    if (batch.items.size() == 1) {
      rt().send_msg(id(), f, std::move(batch.items.front()));
    } else {
      rt().send_msg(id(), f, std::move(batch));
    }
  }
}

bool Replica::apply_accept(ProcessId from, const Accept& m, AcceptAck* ack,
                           ProcessId* coordinator) {
  // Line 22 pre: status = follower ∧ epoch[s0] = e.  This guard is what the
  // RDMA variant loses (Sec. 5) — see rdma/replica.cc.
  if (status_ != Status::kFollower) return false;
  if (view(options_.shard).epoch != m.epoch) return false;
  LogEntry& e = log_.at(m.slot);
  if (e.phase == Phase::kStart) {
    // Line 24 (the paper writes `next`; the intended index is k).
    e.txn = m.txn;
    e.payload = m.payload;
    e.vote = m.vote;
    e.phase = Phase::kPrepared;
    e.meta = m.meta;
    e.prepare_ts = m.prepare_ts;  // the leader's CSN stamp, replicated
    prepared_at_[m.slot] = rt().now();
    index_.on_prepared(log_, m.slot);
  }
  // Line 25: acknowledge to the coordinator (which in the leader-driven
  // ablation is not the sender).
  *coordinator = m.coordinator != kNoProcess ? m.coordinator : from;
  *ack = AcceptAck{options_.shard, m.epoch, m.slot, m.txn, m.vote};
  return true;
}

void Replica::handle_accept(ProcessId from, const Accept& m) {
  AcceptAck ack;
  ProcessId coordinator = kNoProcess;
  if (!apply_accept(from, m, &ack, &coordinator)) return;
  rt().send_msg(id(), coordinator, ack);
}

void Replica::handle_accept_batch(ProcessId from, const AcceptBatch& m) {
  std::map<ProcessId, AcceptAckBatch> replies;
  for (const Accept& item : m.items) {
    AcceptAck ack;
    ProcessId coordinator = kNoProcess;
    if (!apply_accept(from, item, &ack, &coordinator)) continue;
    replies[coordinator].items.push_back(ack);
  }
  for (auto& [coordinator, batch] : replies) {
    if (batch.items.size() == 1) {
      rt().send_msg(id(), coordinator, std::move(batch.items.front()));
    } else {
      rt().send_msg(id(), coordinator, std::move(batch));
    }
  }
}

void Replica::handle_accept_ack_batch(ProcessId from, const AcceptAckBatch& m) {
  for (const AcceptAck& item : m.items) handle_accept_ack(from, item);
}

void Replica::handle_accept_ack(ProcessId from, const AcceptAck& m) {
  auto it = coord_.find(m.txn);
  if (it == coord_.end() || it->second.decided) return;
  CoordState& c = it->second;
  auto pit = c.progress.find(m.shard);
  if (pit == c.progress.end()) return;
  ShardProgress& pr = pit->second;
  // Only acks matching the epoch/slot we replicated count (line 26 requires
  // acks at epoch[s]).
  if (!pr.have_prepare_ack || pr.epoch != m.epoch || pr.slot != m.slot) return;
  pr.follower_acks.insert(from);
  check_coordination(m.txn);
}

void Replica::check_coordination(TxnId txn) {
  auto it = coord_.find(txn);
  if (it == coord_.end() || it->second.decided) return;
  CoordState& c = it->second;
  // Line 26: ACCEPT_ACKs from every follower of every involved shard, at
  // the coordinator's current epoch for that shard.
  Decision decision = Decision::kCommit;
  Time csn_ts = 0;  // csn(t).ts = max prepare stamp over the involved shards
  for (ShardId s : c.meta.participants) {
    auto pit = c.progress.find(s);
    if (pit == c.progress.end()) return;
    const ShardProgress& pr = pit->second;
    const configsvc::ShardConfig& v = view(s);
    if (!pr.have_prepare_ack || pr.epoch != v.epoch) return;
    for (ProcessId f : v.followers()) {
      if (pr.follower_acks.count(f) == 0) return;
    }
    decision = meet(decision, pr.vote);  // line 27's ⊓ fold
    csn_ts = std::max(csn_ts, pr.prepare_ts);
  }
  if (decision != Decision::kCommit) csn_ts = 0;  // aborts never enter the CSN log
  c.decided = true;  // guards re-entrancy from the client callback below
  // Line 27: report the decision to the client.
  if (c.local_cb) {
    if (monitor_) monitor_->on_local_decision(txn, decision);
    c.local_cb(decision, csn_ts);
  } else if (c.meta.client != kNoProcess) {
    rt().send_msg(id(), c.meta.client, ClientDecision{txn, decision, csn_ts});
  }
  // Lines 28-29: persist the decision at every member of each shard.
  for (ShardId s : c.meta.participants) {
    const ShardProgress& pr = c.progress.at(s);
    const configsvc::ShardConfig& v = view(s);
    for (ProcessId p : v.members) {
      rt().send_msg(id(), p, DecisionMsg{v.epoch, s, pr.slot, txn, decision, csn_ts});
    }
  }
  // The coordination is complete: shed the heavy state but keep the entry
  // as a decided tombstone — a late retry() of a still-prepared slot would
  // otherwise recreate the coordination from scratch and re-decide.
  c.progress.clear();
  c.shard_payloads.clear();
  c.local_cb = nullptr;
  undecided_coords_.erase(txn);
}

void Replica::handle_decision(ProcessId from, const DecisionMsg& m) {
  (void)from;
  // Line 31 pre: status ∈ {leader, follower} ∧ epoch[s0] ≥ e.
  if (status_ == Status::kReconfiguring) return;
  if (view(options_.shard).epoch < m.epoch) return;
  // Line 32.
  LogEntry& e = log_.at(m.slot);
  if (e.phase == Phase::kStart) e.txn = m.txn;  // decision for a hole (abort only)
  e.dec = m.decision;
  e.phase = Phase::kDecided;
  e.csn_ts = m.csn_ts;
  prepared_at_.erase(m.slot);
  index_.on_decided(log_, m.slot);
  // Advance the committed multi-version state.  A commit decision can only
  // land on a filled slot (line 26 required this replica's own ACCEPT_ACK),
  // so the payload is present; duplicate decisions re-apply the same csn,
  // which the store skips.
  if (m.decision == Decision::kCommit) {
    store_.apply_at(e.payload, tcs::Csn{m.csn_ts, m.txn});
  }
}

// --- reconfiguration ----------------------------------------------------------

void Replica::reconfigure(ShardId s) {
  // The attempt lifecycle — probe/descend epoch search, placement, CAS with
  // loser spare-release — is the shared reconfigurer core (recon::Engine);
  // this replica only supplies the StackHooks below.  start() refuses while
  // an attempt is in flight (line 34's probing guard).
  engine_.start({s});
}

void Replica::handle_probe(ProcessId from, const Probe& m) {
  // Line 41 pre: e ≥ new_epoch.
  if (m.epoch < new_epoch_) return;
  // Lines 42-44: stop processing transactions and acknowledge.
  status_ = Status::kReconfiguring;
  new_epoch_ = m.epoch;
  rt().send_msg(id(), from, ProbeAck{initialized_, m.epoch, options_.shard});
}

// --- recon::StackHooks --------------------------------------------------------

void Replica::fetch_latest(const std::vector<ShardId>& shards,
                           std::function<void(bool, recon::Snapshot)> cb) {
  ShardId s = shards.front();  // per-shard reconfiguration: one shard
  cs_.get_last(s, [s, cb](const configsvc::ShardConfig& cfg) {
    if (!cfg.valid()) {  // nothing stored: cannot reconfigure an unborn shard
      cb(false, {});
      return;
    }
    recon::Snapshot snap;
    snap.epoch = cfg.epoch;
    snap.members[s] = cfg.members;
    cb(true, snap);
  });
}

void Replica::fetch_members_at(ShardId shard, Epoch epoch,
                               std::function<void(bool, std::vector<ProcessId>)> cb) {
  cs_.get(shard, epoch, [cb](bool found, const configsvc::ShardConfig& cfg) {
    cb(found, cfg.members);
  });
}

void Replica::send_probe(ProcessId target, Epoch new_epoch) {
  rt().send_msg(id(), target, Probe{new_epoch});
}

std::vector<ProcessId> Replica::reserve_spares(ShardId shard, std::size_t n) {
  return options_.allocate_spares ? options_.allocate_spares(shard, n)
                                  : std::vector<ProcessId>{};
}

void Replica::release_spares(ShardId shard, const std::vector<ProcessId>& spares) {
  if (options_.release_spares) options_.release_spares(shard, spares);
}

void Replica::submit(const recon::Proposal& proposal,
                     std::function<void(bool)> done) {
  const auto& [shard, next] = *proposal.shards.begin();
  cs_.cas(shard, proposal.epoch - 1, next, std::move(done));
}

void Replica::activate(const recon::Proposal& proposal) {
  // Line 50: hand the won configuration to its new leader.
  const configsvc::ShardConfig& next = proposal.shards.begin()->second;
  rt().send_msg(id(), next.leader, NewConfig{next.epoch, next.members});
}

recon::PlacementContext Replica::placement_context(ShardId shard) {
  return options_.placement_context ? options_.placement_context(shard)
                                    : recon::PlacementContext{};
}

void Replica::handle_new_config(ProcessId from, const NewConfig& m) {
  (void)from;
  // Guard per the proof of Invariant 3: only accept configurations at least
  // as new as the highest probed epoch.
  if (m.epoch < new_epoch_) return;
  new_epoch_ = m.epoch;
  // Lines 57-58.
  status_ = Status::kLeader;
  configsvc::ShardConfig& v = views_[options_.shard];
  v.epoch = m.epoch;
  v.members = m.members;
  v.leader = id();
  // Line 59.
  next_ = log_.max_filled();
  // Leadership takeover: the log may hold entries this process never saw
  // individually (earlier NEW_STATE transfers), so reindex wholesale and
  // make sure every still-prepared slot has live retry bookkeeping.
  index_.rebuild(log_);
  rebuild_snapshot_store();
  for (Slot k = 1; k <= log_.size(); ++k) {
    const LogEntry* e = log_.find(k);
    if (e != nullptr && e->phase == Phase::kPrepared && prepared_at_.count(k) == 0) {
      prepared_at_[k] = rt().now();
    }
  }
  if (monitor_) monitor_->on_epoch_installed(*this);
  // Line 60: transfer state to the followers.
  NewState ns;
  ns.epoch = m.epoch;
  ns.members = m.members;
  ns.log = log_;
  for (ProcessId p : m.members) {
    if (p != id()) rt().send_msg(id(), p, ns);
  }
  RATC_DEBUG(name() << " leads s" << options_.shard << " at epoch " << m.epoch);
}

void Replica::handle_new_state(ProcessId from, const NewState& m) {
  // Line 62 pre: e ≥ new_epoch.
  if (m.epoch < new_epoch_) return;
  new_epoch_ = m.epoch;
  // Lines 63-66.
  initialized_ = true;
  status_ = Status::kFollower;
  configsvc::ShardConfig& v = views_[options_.shard];
  v.epoch = m.epoch;
  v.members = m.members;
  v.leader = from;
  log_ = m.log;
  index_.rebuild(log_);
  rebuild_snapshot_store();
  // Re-arm the retry bookkeeping for slots still prepared in the new epoch:
  // clearing prepared_at_ wholesale here used to drop them from the line-70
  // retry contract entirely — if their coordinator died mid-2PC, no replica
  // ever re-drove them and they stayed undecided forever.
  prepared_at_.clear();
  for (Slot k = 1; k <= log_.size(); ++k) {
    const LogEntry* e = log_.find(k);
    if (e != nullptr && e->phase == Phase::kPrepared) prepared_at_[k] = rt().now();
  }
  if (monitor_) monitor_->on_epoch_installed(*this);
  RATC_DEBUG(name() << " follows " << process_name(from) << " in s" << options_.shard
                    << " at epoch " << m.epoch);
}

void Replica::handle_config_change(const configsvc::ConfigChange& m) {
  // Line 68 pre: epoch[s] < e ∧ s ≠ s0.
  if (m.shard == options_.shard) return;
  configsvc::ShardConfig& v = views_[m.shard];
  if (v.epoch >= m.config.epoch) return;
  v = m.config;  // line 69
}

// --- CSN reads -------------------------------------------------------------

tcs::Csn Replica::read_watermark() const {
  // Below the smallest prepare stamp among prepared-undecided slots: any
  // commit this replica has not yet applied either sits prepared here (and
  // then its csn >= that stamp, above the watermark) or has not gathered
  // this replica's ACCEPT_ACK yet (line 26) and so is not decided anywhere.
  bool any = false;
  Time min_ts = 0;
  for (const LogEntry& e : log_.entries()) {
    if (e.phase != Phase::kPrepared) continue;
    if (!any || e.prepare_ts < min_ts) min_ts = e.prepare_ts;
    any = true;
  }
  if (any) return tcs::watermark_below(min_ts);
  return tcs::watermark_at(rt().now());
}

void Replica::rebuild_snapshot_store() {
  // The log replaced wholesale (NEW_STATE) or inherited across a takeover
  // (NEW_CONFIG) is the authoritative committed state: refile every decided
  // commit under its csn.  Entries decided elsewhere while this replica was
  // down arrive with csn_ts carried in the transferred log.
  store_.clear();
  for (const LogEntry& e : log_.entries()) {
    if (e.phase == Phase::kDecided && e.dec == Decision::kCommit) {
      store_.apply_at(e.payload, tcs::Csn{e.csn_ts, e.txn});
    }
  }
}

// --- retry timer ----------------------------------------------------------

void Replica::arm_retry_timer() {
  if (options_.retry_timeout == 0) return;
  rt().schedule_for(id(), options_.retry_timeout, [this] {
    run_retry_tick();
    arm_retry_timer();
  });
}

void Replica::run_retry_tick() {
  Time now = rt().now();
  // Pass 1 — collect.  retry() re-enters coordination state and the
  // rate-limit updates of pass 2 write prepared_at_, so nothing may mutate
  // the map while it is iterated.
  std::vector<Slot> stale;
  for (const auto& [slot, since] : prepared_at_) {
    const LogEntry* e = log_.find(slot);
    if (e != nullptr && e->phase == Phase::kPrepared &&
        now - since >= options_.retry_timeout) {
      stale.push_back(slot);
    }
  }
  // Pass 2 — act.  Both passes run in the same synchronous event, so a
  // collected slot cannot have left the prepared phase in between (nothing
  // is silently skipped), and the driven set pins that no transaction is
  // re-driven twice within the tick (a replica's log holds each transaction
  // in at most one slot).
  std::set<TxnId> driven;
  for (Slot k : stale) {
    prepared_at_[k] = now;  // rate-limit further retries
    const LogEntry* e = log_.find(k);
    assert(e != nullptr && e->phase == Phase::kPrepared &&
           "stale slot silently skipped within one retry tick");
    bool first = driven.insert(e->txn).second;
    (void)first;
    assert(first && "slot retry duplicated within one retry tick");
    retry(k);
  }
  redrive_coordinations(driven);
}

// --- dispatch ----------------------------------------------------------------

void Replica::on_message(ProcessId from, const sim::AnyMessage& msg) {
  if (cs_.handle(msg)) return;
  if (fd_responder_.handle(from, msg)) return;
  if (const auto* m = msg.as<CertifyRequest>()) {
    TxnMeta meta;
    meta.txn = m->txn;
    meta.participants = options_.shard_map->shards_of(m->payload);
    meta.client = from;
    start_certification(std::move(meta), &m->payload, nullptr);
  } else if (const auto* b = msg.as<CertifyBatchRequest>()) {
    certify_batch_remote(from, b->items);
  } else if (const auto* p = msg.as<Prepare>()) {
    handle_prepare(from, *p);
  } else if (const auto* pb = msg.as<PrepareBatch>()) {
    handle_prepare_batch(from, *pb);
  } else if (const auto* pa = msg.as<PrepareAck>()) {
    handle_prepare_ack(from, *pa);
  } else if (const auto* pab = msg.as<PrepareAckBatch>()) {
    handle_prepare_ack_batch(from, *pab);
  } else if (const auto* a = msg.as<Accept>()) {
    handle_accept(from, *a);
  } else if (const auto* ab = msg.as<AcceptBatch>()) {
    handle_accept_batch(from, *ab);
  } else if (const auto* aa = msg.as<AcceptAck>()) {
    handle_accept_ack(from, *aa);
  } else if (const auto* aab = msg.as<AcceptAckBatch>()) {
    handle_accept_ack_batch(from, *aab);
  } else if (const auto* d = msg.as<DecisionMsg>()) {
    handle_decision(from, *d);
  } else if (const auto* pr = msg.as<Probe>()) {
    handle_probe(from, *pr);
  } else if (const auto* pra = msg.as<ProbeAck>()) {
    engine_.on_probe_ack(from, pra->shard, pra->epoch, pra->initialized);
  } else if (const auto* nc = msg.as<NewConfig>()) {
    handle_new_config(from, *nc);
  } else if (const auto* ns = msg.as<NewState>()) {
    handle_new_state(from, *ns);
  } else if (const auto* cc = msg.as<configsvc::ConfigChange>()) {
    handle_config_change(*cc);
  }
}

}  // namespace ratc::commit
