// Replica process of the atomic commit protocol (paper Fig. 1).
//
// Every replica plays up to four roles simultaneously:
//  * shard leader: orders and certifies transactions (PREPARE handling);
//  * follower: persists votes shipped by transaction coordinators (ACCEPT);
//  * transaction coordinator: drives 2PC for transactions submitted to it
//    (any replica can coordinate; this spreads the replication fan-out
//    away from leaders, Fig. 1 lines 18-29);
//  * reconfigurer: replaces failed replicas via the configuration service
//    (Vertical-Paxos style probing, Fig. 1 lines 33-69).
//
// Code comments cite figure line numbers.  Deviations from the pseudocode
// are listed in DESIGN.md Sec. 2 (participant lists carried in messages,
// timer realization of the non-deterministic probing rule, etc.).
#pragma once

#include <functional>
#include <map>
#include <set>
#include <utility>
#include <vector>

#include "commit/log.h"
#include "commit/messages.h"
#include "commit/witness_index.h"
#include "configsvc/client.h"
#include "configsvc/config.h"
#include "fd/failure_detector.h"
#include "recon/engine.h"
#include "sim/network.h"
#include "sim/process.h"
#include "store/versioned_store.h"
#include "tcs/certifier.h"
#include "tcs/csn.h"
#include "tcs/shard_map.h"

namespace ratc::commit {

class Monitor;

enum class Status { kLeader, kFollower, kReconfiguring };

inline const char* to_string(Status s) {
  switch (s) {
    case Status::kLeader: return "leader";
    case Status::kFollower: return "follower";
    case Status::kReconfiguring: return "reconfiguring";
  }
  return "?";
}

class Replica : public sim::Process, private recon::StackHooks {
 public:
  struct Options {
    ShardId shard = 0;
    const tcs::ShardMap* shard_map = nullptr;
    const tcs::Certifier* certifier = nullptr;
    std::vector<ProcessId> cs_endpoints;
    /// Desired configuration size (f+1); compute_membership tops up to this.
    std::size_t target_shard_size = 2;
    /// Allocator for *fresh* processes (paper line 48: new members may only
    /// be probing responders or fresh processes).  Freshness must be global:
    /// a process that ever belonged to a configuration may not be handed out
    /// again (otherwise Invariant 5 breaks), so allocation permanently
    /// consumes from a shared pool — the cluster harness models the resource
    /// manager that real deployments use for this.
    std::function<std::vector<ProcessId>(ShardId, std::size_t)> allocate_spares;
    /// Returns spares reserved by a proposal whose CAS lost the race: they
    /// never entered a stored configuration, so they are still fresh.
    /// Without this, every lost reconfiguration race (routine once the
    /// autonomous controllers of src/ctrl/ race replica reconfigurers)
    /// permanently shrinks the pool.
    std::function<void(ShardId, const std::vector<ProcessId>&)> release_spares;
    /// How long the reconfigurer waits for a PROBE_ACK(true) after the first
    /// PROBE_ACK(false) before descending an epoch (the paper's
    /// non-deterministic rule at line 51, scheduled by timer).
    Duration probe_patience = 5;
    /// Membership policy consulted when this replica plays the reconfigurer
    /// role; null selects recon::ReplaceSuspectsPolicy.  Non-owning.
    recon::PlacementPolicy* placement_policy = nullptr;
    /// Cluster knowledge (zones, load, spare-pool depth) handed to the
    /// placement policy; replicas run no failure detector, so the suspect
    /// set stays empty here.
    std::function<recon::PlacementContext(ShardId)> placement_context;
    /// If nonzero, this replica periodically retries transactions that have
    /// been prepared but undecided for longer than this (coordinator
    /// recovery, line 70).
    Duration retry_timeout = 0;
    /// ABLATION (experiment E14): the leader ships ACCEPTs to its followers
    /// directly instead of delegating to the coordinator.  One message
    /// delay faster, but concentrates the replication fan-out on the
    /// leader — the design trade-off Sec. 3 discusses.
    bool leader_ships_accepts = false;
    /// Debug cross-check: recompute every vote with the flat L1/L2 log scan
    /// and abort on any divergence from the witness index (decision or
    /// witness sets).  Works in every build type, not just -DNDEBUG-less
    /// ones; sweeps and the randomized suites turn it on.
    bool check_certifier_index = false;
    /// Versions per object the snapshot store retains for CSN reads; older
    /// versions are evicted (reads below them report unserved, never wrong).
    std::size_t snapshot_history_depth = 16;
    Monitor* monitor = nullptr;
  };

  Replica(rt::Runtime& rt, ProcessId id, Options options);
  /// Sim-harness compatibility: binds to `net`'s embedded runtime.
  Replica(sim::Simulator& sim, sim::Network& net, ProcessId id, Options options);

  // --- bootstrap ------------------------------------------------------------

  /// Installs the pre-activated initial configuration (all shards' views).
  void bootstrap(Status status,
                 const std::map<ShardId, configsvc::ShardConfig>& all_views);

  /// Initializes a fresh spare: knows the views but holds no shard state.
  void bootstrap_spare(const std::map<ShardId, configsvc::ShardConfig>& all_views);

  // --- client API -------------------------------------------------------------

  /// certify(t, l) with this replica as coordinator and a co-located client:
  /// the decision is delivered through `cb` with no extra message delay
  /// (paper Sec. 3: "co-locating the client with the transaction
  /// coordinator").  The callback's Time is csn(t).ts for commits (0 for
  /// aborts).  `origin` is the co-located client's process id; when set, a
  /// successor coordinator that finishes the transaction after this replica
  /// crashed routes the decision there as DECISION_CLIENT instead of
  /// dropping it on the floor.
  void certify_local(TxnId txn, const tcs::Payload& payload,
                     std::function<void(tcs::Decision, Time)> cb,
                     ProcessId origin = kNoProcess);

  /// Batched certify with this replica as coordinator of every item: the
  /// batch is grouped into one PREPARE_BATCH per participant shard (one
  /// message, one ordered run of log appends at the leader).  Decisions are
  /// delivered per transaction through `cb`; the items' 2PC instances stay
  /// independent (distributivity is what makes the grouping sound, not a
  /// change to the decision rule).  A batch of one degenerates to
  /// certify_local.  `origin` as in certify_local.
  void certify_batch_local(
      const std::vector<std::pair<TxnId, tcs::Payload>>& batch,
      std::function<void(TxnId, tcs::Decision, Time)> cb,
      ProcessId origin = kNoProcess);

  // --- recovery API -------------------------------------------------------------

  /// Initiates reconfiguration of shard s (line 33).  Any process may call
  /// this when it suspects a failure in s.
  void reconfigure(ShardId s);

  /// Coordinator recovery for the transaction in slot k (line 70).
  void retry(Slot k);

  // --- introspection (used by monitors, tests, benches) ---------------------

  ShardId shard() const { return options_.shard; }
  Status status() const { return status_; }
  bool initialized() const { return initialized_; }
  Epoch epoch() const { return view(options_.shard).epoch; }
  Epoch new_epoch() const { return new_epoch_; }
  const ReplicaLog& log() const { return log_; }
  Slot next() const { return next_; }
  const configsvc::ShardConfig& view(ShardId s) const;
  bool is_probing() const { return engine_.in_flight(); }
  /// The shared reconfigurer core this replica's reconfigurer role runs on
  /// (stats + spare-ledger introspection for harnesses).
  const recon::Engine& recon_engine() const { return engine_; }

  // --- CSN read surface ------------------------------------------------------
  //
  // Read-only transactions execute at a snapshot c without any certification
  // message: pick c at or below every involved replica's watermark and serve
  // each object from the replica's snapshot store.  Soundness rides on the
  // all-follower-ack rule (Fig. 1 line 26): a commit with csn(t).ts below
  // this replica's watermark either sits decided in the log (its writes are
  // in the store) or is still prepared here (and then gates the watermark).

  /// The largest snapshot this replica can currently serve: just below the
  /// smallest prepare stamp among prepared-undecided slots, or `now` when
  /// every filled slot is decided.
  tcs::Csn read_watermark() const;

  /// The multi-version committed state CSN reads are served from.
  const store::SnapshotStore& snapshot_store() const { return store_; }

  void on_message(ProcessId from, const sim::AnyMessage& msg) override;

 private:
  struct ShardProgress {
    bool have_prepare_ack = false;
    Epoch epoch = kNoEpoch;
    Slot slot = kNoSlot;
    tcs::Decision vote = tcs::Decision::kAbort;
    Time prepare_ts = 0;  ///< leader's CSN stamp; csn(t).ts = max over shards
    std::set<ProcessId> follower_acks;
  };
  struct CoordState {
    TxnMeta meta;
    std::map<ShardId, ShardProgress> progress;
    bool decided = false;
    /// Set for co-located clients; second arg is csn(t).ts (0 for aborts).
    std::function<void(tcs::Decision, Time)> local_cb;
    /// Per-shard payload projections, kept so the coordinator can re-send a
    /// PREPARE that died with a crashed leader (empty for ⊥ retries).
    std::map<ShardId, tcs::Payload> shard_payloads;
    Time last_driven = 0;  ///< when PREPAREs were last (re-)sent
  };

  // Fig. 1 handlers.
  void start_certification(TxnMeta meta, const tcs::Payload* full_payload,
                           std::function<void(tcs::Decision, Time)> local_cb);
  /// CERTIFY_BATCH: certify_batch_local's shape, but decisions go back to
  /// `client` as DECISION_CLIENT messages.
  void certify_batch_remote(ProcessId client,
                            const std::vector<CertifyRequest>& items);
  void handle_prepare(ProcessId from, const Prepare& m);            // line 4
  void handle_prepare_ack(ProcessId from, const PrepareAck& m);     // line 18
  void handle_accept(ProcessId from, const Accept& m);              // line 21
  void handle_accept_ack(ProcessId from, const AcceptAck& m);       // line 26
  void handle_decision(ProcessId from, const DecisionMsg& m);       // line 30

  // Batched variants: apply the items in order through the scalar logic,
  // then coalesce the outbound messages (one ack batch per destination).
  void handle_prepare_batch(ProcessId from, const PrepareBatch& m);
  void handle_prepare_ack_batch(ProcessId from, const PrepareAckBatch& m);
  void handle_accept_batch(ProcessId from, const AcceptBatch& m);
  void handle_accept_ack_batch(ProcessId from, const AcceptAckBatch& m);
  void handle_probe(ProcessId from, const Probe& m);                // line 40
  void handle_new_config(ProcessId from, const NewConfig& m);       // line 56
  void handle_new_state(ProcessId from, const NewState& m);         // line 61
  void handle_config_change(const configsvc::ConfigChange& m);      // line 67

  // recon::StackHooks — the substrate adapter for the shared reconfigurer
  // core (recon::Engine), which runs lines 33-55 + the CAS spare ledger.
  void fetch_latest(const std::vector<ShardId>& shards,
                    std::function<void(bool, recon::Snapshot)> cb) override;
  void fetch_members_at(
      ShardId shard, Epoch epoch,
      std::function<void(bool, std::vector<ProcessId>)> cb) override;
  void send_probe(ProcessId target, Epoch new_epoch) override;
  std::vector<ProcessId> reserve_spares(ShardId shard, std::size_t n) override;
  void release_spares(ShardId shard,
                      const std::vector<ProcessId>& spares) override;
  void submit(const recon::Proposal& proposal,
              std::function<void(bool)> done) override;
  void activate(const recon::Proposal& proposal) override;
  recon::PlacementContext placement_context(ShardId shard) override;

  /// Prepares a transaction at the leader and replies with PREPARE_ACK
  /// (lines 6-17).
  void prepare_and_ack(ProcessId coordinator, const Prepare& m);

  /// Lines 6-17 without the sends: appends (or re-reads) the slot and
  /// returns the ack to ship.  Shared by the scalar and batched paths.
  PrepareAck prepare_txn(const Prepare& m);

  /// Lines 19-20's bookkeeping without the sends: records the ack against
  /// the coordination and fills *accept for replication.  Returns false if
  /// the line-19 guard rejects the ack (stale epoch, unknown or decided
  /// coordination).
  bool note_prepare_ack(const PrepareAck& m, Accept* accept);

  /// Lines 22-25 without the send: applies the ACCEPT and fills *ack plus
  /// the coordinator it must go to.  Returns false if the line-22 guard
  /// rejects it.
  bool apply_accept(ProcessId from, const Accept& m, AcceptAck* ack,
                    ProcessId* coordinator);

  struct Witnesses {
    std::vector<const tcs::Payload*> l1, l2;
    std::vector<TxnId> committed, prepared;
  };
  /// The L1/L2 sets (and their transaction ids) for a vote at `slot` by
  /// flat log scan — kept as the reference implementation the witness index
  /// is cross-checked against (Options::check_certifier_index).
  Witnesses collect_witnesses(Slot slot) const;

  /// Computes the vote for the freshly appended slot (line 12) through the
  /// witness index, reporting the witness sets to the monitor.
  tcs::Decision compute_vote(Slot slot, const tcs::Payload& l);

  /// Aborts the process if the index's vote/witnesses for `slot` diverge
  /// from the flat scan (no-op unless check_certifier_index).
  void check_index_against_flat(Slot slot, tcs::Decision indexed_vote,
                                const tcs::Payload& l,
                                const WitnessIndex::Witnesses& w) const;

  /// Sets-only variant for forced-abort slots (Fig. 1 line 15): the vote is
  /// a protocol constant there, so only T_s/P_s are comparable to the flat
  /// scan (no-op unless check_certifier_index).
  void check_index_sets_against_flat(Slot slot,
                                     const WitnessIndex::Witnesses& w) const;

  /// Line 26's standing "when" condition, evaluated after every relevant
  /// event for the given transaction.
  void check_coordination(TxnId txn);

  /// Refiles every decided-commit log entry into the snapshot store under
  /// its csn (log replacement / leader takeover).
  void rebuild_snapshot_store();

  void arm_retry_timer();
  /// One retry-timer firing: collect the stale prepared slots, then
  /// rate-limit and re-drive each exactly once (line 70), then re-drive
  /// undecided coordinations.  Collect-then-act so nothing mutates
  /// prepared_at_ while it is being iterated.
  void run_retry_tick();
  /// Re-sends PREPAREs of undecided coordinated transactions to the current
  /// leaders (see the definition for why the line-70 retry cannot cover
  /// them).  `driven_this_tick` holds the transactions the slot-retry pass
  /// of the same tick already re-drove, to assert none is driven twice.
  void redrive_coordinations(const std::set<TxnId>& driven_this_tick);

  Options options_;
  configsvc::CsClient cs_;
  fd::Responder fd_responder_;
  Monitor* monitor_;
  /// The reconfigurer role (lines 33-55), shared with every other stack
  /// through recon::Engine; this replica only supplies the hooks above.
  recon::Engine engine_;

  // Fig. 1 process state.
  Status status_ = Status::kReconfiguring;
  bool initialized_ = false;
  Epoch new_epoch_ = kNoEpoch;
  std::map<ShardId, configsvc::ShardConfig> views_;  // epoch/members/leader arrays
  ReplicaLog log_;
  Slot next_ = 0;
  /// Object-indexed view of log_ (the certification hot path); maintained on
  /// every prepare/decide, rebuilt on log replacement and leader takeover.
  WitnessIndex index_;

  // Coordinator state.  Decided entries stay as slim tombstones (so a late
  // retry cannot re-coordinate); the index below keeps the re-drive scan
  // bounded by the undecided set.
  std::map<TxnId, CoordState> coord_;
  std::set<TxnId> undecided_coords_;

  // Local bookkeeping for the retry timer.
  std::map<Slot, Time> prepared_at_;

  /// Committed multi-version state, filed under Csn{csn_ts, txn}; rebuilt
  /// from the log on NEW_STATE / leader takeover.
  store::SnapshotStore store_;
};

}  // namespace ratc::commit
