// Incremental witness index over a replica's certification log — the
// certification hot path's replacement for the flat L1/L2 scan.
//
// The vote of Fig. 1 line 12 is f_s(L1, l) ⊓ g_s(L2, l) where
//   L1 = payloads of decided-commit slots before the voting slot,
//   L2 = payloads of prepared slots with commit votes before it.
// Rescanning the whole log per vote makes certification O(n²) per run.
// Both shipped certifiers are *object-local*: a pairwise check can only
// abort through an object both payloads touch, and the committed-side check
// is monotone in the committed payload's commit version ("abort iff
// commit_version > some per-object threshold").  That licenses an index:
//
//   * object -> the committed writer with the highest commit version
//     (ties broken towards the later slot) — checking only these per object
//     of l decides f_s(L1, l) exactly;
//   * object -> {prepared readers}, {prepared writers} (commit votes only)
//     — the union over l's objects is exactly the set of prepared payloads
//     whose pairwise g_s check can abort.
//
// The fold result is identical to the flat scan by construction (payloads
// skipped by the index return kCommit from the pairwise check); replicas
// can assert this per vote with Options::check_certifier_index, which keeps
// the flat path alive as a cross-check in sweeps.
//
// The index also keeps the slot-ordered L1/L2 id sets incrementally, so the
// monitor's witness reporting (constraint (10) of Fig. 6 pins T_s exactly)
// no longer rescans the log either.
//
// Maintenance contract (the embedding replica calls these):
//   * on_prepared(log, k)  — after slot k enters phase kPrepared with its
//     vote assigned (leader append, follower ACCEPT, one-sided RAccept);
//   * on_decided(log, k)   — after slot k enters phase kDecided;
//   * rebuild(log)         — after wholesale log replacement (NEW_STATE) or
//     leadership takeover (the log may hold entries this process never saw
//     individually).
// All structures reference log slots, never payload pointers: ReplicaLog
// grows by vector resize, so pointers into it are unstable.
#pragma once

#include <map>
#include <set>
#include <unordered_map>
#include <vector>

#include "commit/log.h"
#include "tcs/certifier.h"

namespace ratc::commit {

class WitnessIndex {
 public:
  /// The L1/L2 sets (and their transaction ids) for a vote at the top of
  /// the log, in slot order — what the flat scan used to produce.
  struct Witnesses {
    std::vector<const tcs::Payload*> l1, l2;
    std::vector<TxnId> committed, prepared;
  };

  void clear();

  /// Reindexes from scratch; the only path that scans the log.
  void rebuild(const ReplicaLog& log);

  /// Slot k is now prepared (vote and payload final for its prepared life).
  void on_prepared(const ReplicaLog& log, Slot k);

  /// Slot k is now decided (commit moves it to the committed side, abort
  /// drops it).
  void on_decided(const ReplicaLog& log, Slot k);

  /// f_s(L1, l) ⊓ g_s(L2, l) touching only payloads that share an object
  /// with l.  Exactly equal to certifier.vote over collect(log, slot) for
  /// any slot above every indexed slot (the leader always votes on the
  /// freshly appended top slot).
  tcs::Decision vote(const tcs::Certifier& certifier, const ReplicaLog& log,
                     const tcs::Payload& l) const;

  /// Full witness sets for slot `slot` (entries at slots < slot), in slot
  /// order; feeds the monitor's on_vote_computed.
  Witnesses collect(const ReplicaLog& log, Slot slot) const;

  std::size_t committed_size() const { return committed_.size(); }
  std::size_t prepared_size() const { return prepared_.size(); }

 private:
  struct CommittedWriter {
    Version version = 0;
    Slot slot = kNoSlot;
  };

  void index_prepared_objects(Slot k, const tcs::Payload& p);
  void unindex_prepared_objects(Slot k, const tcs::Payload& p);
  void index_committed_writer(Slot k, const tcs::Payload& p);

  /// Decided-commit slots in order -> txn id (the monitor's T_s).
  std::map<Slot, TxnId> committed_;
  /// Prepared slots with commit votes in order -> txn id (the monitor's P_s).
  std::map<Slot, TxnId> prepared_;
  /// object -> committed writer with the highest commit version.
  std::unordered_map<ObjectId, CommittedWriter> committed_writer_;
  /// object -> prepared (commit-vote) slots reading / writing it.
  std::unordered_map<ObjectId, std::set<Slot>> prepared_readers_;
  std::unordered_map<ObjectId, std::set<Slot>> prepared_writers_;
};

}  // namespace ratc::commit
